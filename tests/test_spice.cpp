// Tests for the SPICE-class engine: waveform measurements, Level-1 MOSFET
// physics, DC operating points, and transient accuracy against analytic
// references.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/circuit.h"
#include "spice/mosfet_eval.h"
#include "spice/simulator.h"
#include "spice/waveform.h"
#include "util/units.h"

namespace xtv {
namespace {

constexpr double kVdd = 3.0;

MosModel nmos_model() {
  MosModel m;
  m.type = MosType::kNmos;
  m.vt0 = 0.5;
  m.kp = 110e-6;
  m.lambda = 0.05;
  return m;
}

MosModel pmos_model() {
  MosModel m;
  m.type = MosType::kPmos;
  m.vt0 = 0.55;
  m.kp = 40e-6;
  m.lambda = 0.06;
  return m;
}

// ---------------------------------------------------------------- Waveform

TEST(Waveform, AppendAndInterpolate) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 2.0);
  w.append(2.0, 2.0);
  EXPECT_DOUBLE_EQ(w.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(5.0), 2.0);
  EXPECT_THROW(w.append(1.5, 0.0), std::runtime_error);
}

TEST(Waveform, PeakDeviationIsSigned) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 0.2);   // -0.8
  w.append(2.0, 1.5);   // +0.5
  EXPECT_DOUBLE_EQ(w.peak_deviation(), -0.8);
}

TEST(Waveform, CrossingTimes) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 3.0);
  w.append(2.0, 0.0);
  const auto rise = w.crossing_time(1.5, true);
  ASSERT_TRUE(rise.has_value());
  EXPECT_DOUBLE_EQ(*rise, 0.5);
  const auto fall = w.crossing_time(1.5, false);
  ASSERT_TRUE(fall.has_value());
  EXPECT_DOUBLE_EQ(*fall, 1.5);
  EXPECT_FALSE(w.crossing_time(5.0, true).has_value());
}

TEST(Waveform, Slew1090) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 3.0);  // linear ramp 0 -> 3 over 1s: 10%-90% = 0.8s
  const auto slew = w.slew_10_90(0.0, 3.0, true);
  ASSERT_TRUE(slew.has_value());
  EXPECT_NEAR(*slew, 0.8, 1e-12);
}

TEST(Waveform, MeasureDelayAt50Percent) {
  Waveform in;
  in.append(0.0, 0.0);
  in.append(1.0, 3.0);
  Waveform out;
  out.append(0.0, 3.0);
  out.append(0.5, 3.0);
  out.append(1.5, 0.0);
  const auto d = measure_delay(in, true, out, false, 0.0, 3.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 0.5, 1e-12);  // in crosses 1.5 at t=0.5, out at t=1.0
}

// ------------------------------------------------------------- MOSFET eval

TEST(MosfetEval, CutoffHasNoCurrent) {
  const MosfetOp op = eval_mosfet(nmos_model(), 1e-6, 0.25e-6, 3.0, 0.2, 0.0);
  EXPECT_DOUBLE_EQ(op.ids, 0.0);
  EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST(MosfetEval, SaturationCurrentMatchesFormula) {
  const MosModel m = nmos_model();
  const double w = 2e-6, l = 0.25e-6;
  const double vgs = 2.0, vds = 3.0;  // vds > vgs - vt -> saturation
  const MosfetOp op = eval_mosfet(m, w, l, vds, vgs, 0.0);
  const double beta = m.kp * w / l;
  const double expect = 0.5 * beta * (vgs - m.vt0) * (vgs - m.vt0) *
                        (1.0 + m.lambda * vds);
  EXPECT_NEAR(op.ids, expect, 1e-12);
  EXPECT_GT(op.gm, 0.0);
  EXPECT_GT(op.gds, 0.0);
}

TEST(MosfetEval, TriodeCurrentMatchesFormula) {
  const MosModel m = nmos_model();
  const double w = 1e-6, l = 0.25e-6;
  const double vgs = 2.5, vds = 0.5;  // triode
  const MosfetOp op = eval_mosfet(m, w, l, vds, vgs, 0.0);
  const double beta = m.kp * w / l;
  const double expect =
      beta * ((vgs - m.vt0) * vds - 0.5 * vds * vds) * (1.0 + m.lambda * vds);
  EXPECT_NEAR(op.ids, expect, 1e-12);
}

TEST(MosfetEval, PmosMirrorsNmos) {
  // A PMOS with reflected voltages must carry the reflected current.
  MosModel p = pmos_model();
  MosModel n = p;
  n.type = MosType::kNmos;
  const MosfetOp pop = eval_mosfet(p, 2e-6, 0.25e-6, -1.0, -2.0, 0.0);
  const MosfetOp nop = eval_mosfet(n, 2e-6, 0.25e-6, 1.0, 2.0, 0.0);
  EXPECT_NEAR(pop.ids, -nop.ids, 1e-15);
  EXPECT_NEAR(pop.gm, nop.gm, 1e-15);
  EXPECT_NEAR(pop.gds, nop.gds, 1e-15);
}

TEST(MosfetEval, SymmetricInDrainSourceExchange) {
  // ids(d, g, s) == -ids(s, g, d): the level-1 channel has no preferred side.
  const MosModel m = nmos_model();
  const MosfetOp fwd = eval_mosfet(m, 1e-6, 0.25e-6, 1.2, 2.0, 0.3);
  const MosfetOp rev = eval_mosfet(m, 1e-6, 0.25e-6, 0.3, 2.0, 1.2);
  EXPECT_NEAR(fwd.ids, -rev.ids, 1e-15);
}

TEST(MosfetEval, DerivativesMatchFiniteDifferences) {
  const MosModel m = nmos_model();
  const double w = 1.5e-6, l = 0.25e-6;
  for (double vgs : {0.8, 1.5, 2.8}) {
    for (double vds : {0.1, 1.0, 2.9}) {
      const MosfetOp op = eval_mosfet(m, w, l, vds, vgs, 0.0);
      const double h = 1e-6;
      const double di_dvg =
          (eval_mosfet(m, w, l, vds, vgs + h, 0.0).ids -
           eval_mosfet(m, w, l, vds, vgs - h, 0.0).ids) / (2 * h);
      const double di_dvd =
          (eval_mosfet(m, w, l, vds + h, vgs, 0.0).ids -
           eval_mosfet(m, w, l, vds - h, vgs, 0.0).ids) / (2 * h);
      EXPECT_NEAR(op.gm, di_dvg, 1e-7) << "vgs=" << vgs << " vds=" << vds;
      EXPECT_NEAR(op.gds, di_dvd, 1e-7) << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST(MosfetEval, CapsScaleWithGeometry) {
  const MosModel m = nmos_model();
  const MosfetCaps small = mosfet_caps(m, 1e-6, 0.25e-6);
  const MosfetCaps big = mosfet_caps(m, 4e-6, 0.25e-6);
  EXPECT_GT(big.cgs, small.cgs);
  EXPECT_NEAR(big.cdb / small.cdb, 4.0, 1e-9);
}

// ---------------------------------------------------------------------- DC

TEST(SimulatorDc, VoltageDivider) {
  Circuit c;
  const int top = c.add_node("top");
  const int mid = c.add_node("mid");
  c.add_vsource(top, Circuit::ground(), SourceWave::dc(3.0));
  c.add_resistor(top, mid, 1000.0);
  c.add_resistor(mid, Circuit::ground(), 2000.0);
  Simulator sim(c);
  const Vector v = sim.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(top)], 3.0, 1e-9);
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], 2.0, 1e-6);
}

TEST(SimulatorDc, CurrentSourceIntoResistor) {
  Circuit c;
  const int n = c.add_node();
  c.add_isource(Circuit::ground(), n, SourceWave::dc(1e-3));
  c.add_resistor(n, Circuit::ground(), 500.0);
  Simulator sim(c);
  EXPECT_NEAR(sim.dc_operating_point()[static_cast<std::size_t>(n)], 0.5, 1e-6);
}

TEST(SimulatorDc, FloatingNodeRegularizedByGmin) {
  Circuit c;
  const int n = c.add_node();
  c.add_capacitor(n, Circuit::ground(), 1e-15);
  Simulator sim(c);
  EXPECT_NEAR(sim.dc_operating_point()[static_cast<std::size_t>(n)], 0.0, 1e-9);
}

// CMOS inverter used by several tests.
struct Inverter {
  Circuit c;
  int vdd, in, out;
  Inverter(double wn = 1e-6, double wp = 2e-6) {
    vdd = c.add_node("vdd");
    in = c.add_node("in");
    out = c.add_node("out");
    const int nm = c.add_model(nmos_model());
    const int pm = c.add_model(pmos_model());
    c.add_vsource(vdd, Circuit::ground(), SourceWave::dc(kVdd));
    c.add_mosfet(out, in, Circuit::ground(), nm, wn, 0.25e-6);
    c.add_mosfet(out, in, vdd, pm, wp, 0.25e-6);
  }
};

TEST(SimulatorDc, InverterLogicLevels) {
  {
    Inverter inv;
    inv.c.add_vsource(inv.in, Circuit::ground(), SourceWave::dc(0.0));
    Simulator sim(inv.c);
    const Vector v = sim.dc_operating_point();
    EXPECT_NEAR(v[static_cast<std::size_t>(inv.out)], kVdd, 1e-3);
  }
  {
    Inverter inv;
    inv.c.add_vsource(inv.in, Circuit::ground(), SourceWave::dc(kVdd));
    Simulator sim(inv.c);
    const Vector v = sim.dc_operating_point();
    EXPECT_NEAR(v[static_cast<std::size_t>(inv.out)], 0.0, 1e-3);
  }
}

TEST(SimulatorDc, InverterTransferIsMonotonicallyFalling) {
  double prev = kVdd + 1.0;
  for (double vin = 0.0; vin <= kVdd + 1e-9; vin += 0.25) {
    Inverter inv;
    inv.c.add_vsource(inv.in, Circuit::ground(), SourceWave::dc(vin));
    Simulator sim(inv.c);
    const double vout =
        sim.dc_operating_point()[static_cast<std::size_t>(inv.out)];
    EXPECT_LT(vout, prev + 1e-6) << "vin=" << vin;
    prev = vout;
  }
}

// --------------------------------------------------------------- Transient

TEST(SimulatorTransient, RcStepResponseMatchesAnalytic) {
  // 1k / 1pF low-pass driven by a fast ramp: v(t) ~ Vdd(1 - e^{-t/RC}).
  Circuit c;
  const int in = c.add_node();
  const int out = c.add_node();
  c.add_vsource(in, Circuit::ground(), SourceWave::ramp(0.0, 1.0, 0.0, 1e-12));
  c.add_resistor(in, out, 1000.0);
  c.add_capacitor(out, Circuit::ground(), 1e-12);

  Simulator sim(c);
  TransientOptions opt;
  opt.tstop = 5e-9;
  opt.dt = 2e-12;
  const TransientResult res = sim.transient(opt, {out});
  const Waveform& w = res.probes[0];
  const double tau = 1e-9;
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expect = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(w.at(t), expect, 0.01) << "t=" << t;
  }
}

TEST(SimulatorTransient, TrapezoidalBeatsBackwardEulerOnRc) {
  // Smooth ramp input (no discontinuity, so TRAP's second-order accuracy
  // shows instead of its ringing): analytic ramp response of an RC.
  const double tau = 1e-9;
  const double T = 1e-9;  // ramp duration
  Circuit c;
  const int in = c.add_node();
  const int out = c.add_node();
  c.add_vsource(in, Circuit::ground(), SourceWave::ramp(0.0, 1.0, 0.0, T));
  c.add_resistor(in, out, 1000.0);
  c.add_capacitor(out, Circuit::ground(), 1e-12);

  auto analytic = [&](double t) {
    if (t <= T) return (t - tau * (1.0 - std::exp(-t / tau))) / T;
    const double vT = (T - tau * (1.0 - std::exp(-T / tau))) / T;
    // After the ramp: exponential approach to 1 from v(T).
    return 1.0 + (vT - 1.0) * std::exp(-(t - T) / tau);
  };
  auto err_with = [&](IntegrationMethod m) {
    Simulator sim(c);
    TransientOptions opt;
    opt.tstop = 4e-9;
    opt.dt = 100e-12;  // coarse on purpose
    opt.method = m;
    const Waveform w = sim.transient(opt, {out}).probes[0];
    double err = 0.0;
    for (double t = 0.1e-9; t < 4e-9; t += 0.1e-9)
      err = std::max(err, std::fabs(w.at(t) - analytic(t)));
    return err;
  };
  EXPECT_LT(err_with(IntegrationMethod::kTrapezoidal),
            0.5 * err_with(IntegrationMethod::kBackwardEuler));
}

TEST(SimulatorTransient, ChargeCouplingGlitch) {
  // Two nets coupled by Cc: a step on the aggressor bumps the victim held
  // by a weak resistor; peak ~ Cc/(Cc+Cg) before the holder recovers.
  Circuit c;
  const int agg_in = c.add_node();
  const int agg = c.add_node();
  const int vic = c.add_node();
  c.add_vsource(agg_in, Circuit::ground(), SourceWave::ramp(0.0, 3.0, 0.1e-9, 0.05e-9));
  c.add_resistor(agg_in, agg, 100.0);       // strong aggressor driver
  c.add_resistor(vic, Circuit::ground(), 10e3);  // weak victim holder
  c.add_capacitor(agg, vic, 20e-15, true);  // coupling
  c.add_capacitor(vic, Circuit::ground(), 20e-15);

  Simulator sim(c);
  TransientOptions opt;
  opt.tstop = 2e-9;
  opt.dt = 1e-12;
  const Waveform w = sim.transient(opt, {vic}).probes[0];
  const double peak = w.peak_deviation();
  EXPECT_GT(peak, 0.3);   // visible glitch
  EXPECT_LT(peak, 1.6);   // bounded by the cap divider
  // Victim recovers to ground afterwards.
  EXPECT_NEAR(w.last_value(), 0.0, 0.05);
}

TEST(SimulatorTransient, InverterSwitchesAndHasDelay) {
  Inverter inv;
  inv.c.add_vsource(inv.in, Circuit::ground(),
                    SourceWave::ramp(0.0, kVdd, 0.2e-9, 0.1e-9));
  const int load = inv.out;
  inv.c.add_capacitor(load, Circuit::ground(), 20e-15);

  Simulator sim(inv.c);
  TransientOptions opt;
  opt.tstop = 2e-9;
  opt.dt = 1e-12;
  const TransientResult res = sim.transient(opt, {inv.in, inv.out});
  const Waveform& win = res.probes[0];
  const Waveform& wout = res.probes[1];
  EXPECT_NEAR(wout.first_value(), kVdd, 1e-2);
  EXPECT_NEAR(wout.last_value(), 0.0, 1e-2);
  const auto d = measure_delay(win, true, wout, false, 0.0, kVdd);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 0.5e-9);
}

TEST(SimulatorTransient, BiggerLoadMeansLongerDelay) {
  auto delay_with_load = [&](double cl) {
    Inverter inv;
    inv.c.add_vsource(inv.in, Circuit::ground(),
                      SourceWave::ramp(0.0, kVdd, 0.2e-9, 0.1e-9));
    inv.c.add_capacitor(inv.out, Circuit::ground(), cl);
    Simulator sim(inv.c);
    TransientOptions opt;
    opt.tstop = 4e-9;
    opt.dt = 2e-12;
    const TransientResult res = sim.transient(opt, {inv.in, inv.out});
    const auto d =
        measure_delay(res.probes[0], true, res.probes[1], false, 0.0, kVdd);
    EXPECT_TRUE(d.has_value());
    return d.value_or(0.0);
  };
  const double d_small = delay_with_load(10e-15);
  const double d_big = delay_with_load(80e-15);
  EXPECT_GT(d_big, 1.5 * d_small);
}

// Linear resistive termination used to validate the OnePortDevice path.
class ResistiveClamp final : public OnePortDevice {
 public:
  ResistiveClamp(double v0, double ohms) : v0_(v0), g_(1.0 / ohms) {}
  double current(double v, double) const override { return g_ * (v0_ - v); }
  double conductance(double v, double) const override {
    (void)v;
    return -g_;
  }

 private:
  double v0_;
  double g_;
};

TEST(SimulatorTransient, TerminationActsLikeResistorToRail) {
  // Node tied through the clamp to 3.0 V and through a real 1k resistor to
  // ground: expect the 2k/1k divider value... clamp R=2k: v = 3 * 1k/(1k+2k).
  Circuit c;
  const int n = c.add_node();
  c.add_termination(n, std::make_shared<ResistiveClamp>(3.0, 2000.0));
  c.add_resistor(n, Circuit::ground(), 1000.0);
  Simulator sim(c);
  EXPECT_NEAR(sim.dc_operating_point()[static_cast<std::size_t>(n)], 1.0, 1e-6);
}

TEST(SimulatorTransient, StepCountsReported) {
  Circuit c;
  const int n = c.add_node();
  c.add_isource(Circuit::ground(), n, SourceWave::dc(1e-6));
  c.add_resistor(n, Circuit::ground(), 1000.0);
  Simulator sim(c);
  TransientOptions opt;
  opt.tstop = 1e-9;
  opt.dt = 0.1e-9;
  const TransientResult res = sim.transient(opt, {n});
  EXPECT_EQ(res.steps, 10u);
  EXPECT_GE(res.newton_iterations, res.steps);
  EXPECT_EQ(res.probes[0].size(), 11u);  // t=0 plus 10 accepted points
}


TEST(Waveform, AverageAndRms) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.0);
  w.append(1.0 + 1e-12, 2.0);  // near-square pulse
  w.append(2.0, 2.0);
  EXPECT_NEAR(w.average(), 1.0, 1e-3);
  EXPECT_NEAR(w.rms(), std::sqrt(2.0), 1e-3);
  Waveform dc;
  dc.append(0.0, -3.0);
  EXPECT_DOUBLE_EQ(dc.average(), -3.0);
  EXPECT_DOUBLE_EQ(dc.rms(), 3.0);
}

TEST(Waveform, RmsOfSine) {
  Waveform w;
  for (int i = 0; i <= 2000; ++i) {
    const double t = i / 2000.0;
    w.append(t, std::sin(2 * M_PI * 5 * t));
  }
  EXPECT_NEAR(w.rms(), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(w.average(), 0.0, 1e-3);
}

TEST(SimulatorTransient, AdaptiveSteppingTracksAnalyticRc) {
  // Adaptive run must hit the analytic curve with far fewer steps than the
  // equivalent fixed fine-step run.
  Circuit c;
  const int in = c.add_node();
  const int out = c.add_node();
  c.add_vsource(in, Circuit::ground(), SourceWave::ramp(0.0, 1.0, 0.5e-9, 0.2e-9));
  c.add_resistor(in, out, 1000.0);
  c.add_capacitor(out, Circuit::ground(), 1e-12);

  TransientOptions fine;
  fine.tstop = 8e-9;
  fine.dt = 2e-12;
  TransientOptions adaptive = fine;
  adaptive.adaptive = true;
  adaptive.lte_vtol = 2e-3;

  Simulator sim1(c);
  const TransientResult fixed_res = sim1.transient(fine, {out});
  Simulator sim2(c);
  const TransientResult adap_res = sim2.transient(adaptive, {out});

  EXPECT_LT(adap_res.steps, fixed_res.steps / 2);
  // Accuracy preserved against the fixed fine run.
  EXPECT_LT(adap_res.probes[0].max_abs_error(fixed_res.probes[0]), 5e-3);
}

TEST(SimulatorTransient, AdaptiveHandlesNonlinearInverter) {
  Inverter inv;
  inv.c.add_vsource(inv.in, Circuit::ground(),
                    SourceWave::ramp(0.0, kVdd, 0.5e-9, 0.2e-9));
  inv.c.add_capacitor(inv.out, Circuit::ground(), 30e-15);
  Simulator sim(inv.c);
  TransientOptions opt;
  opt.tstop = 4e-9;
  opt.dt = 2e-12;
  opt.adaptive = true;
  const TransientResult res = sim.transient(opt, {inv.out});
  EXPECT_NEAR(res.probes[0].first_value(), kVdd, 2e-2);
  EXPECT_NEAR(res.probes[0].last_value(), 0.0, 2e-2);
  EXPECT_LT(res.steps, 2000u);  // fewer than the fixed-step equivalent
}

}  // namespace
}  // namespace xtv
