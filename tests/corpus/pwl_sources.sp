* PWL sources, continuation lines, and comments
Vramp drv gnd PWL(0 0 0.5n 0
+ 1n 2.5 4n 2.5)
Iagg 0 vic PWL(0 0, 1n 0,
+ 1.2n 80u, 2n 0) ; aggressor injection
Rload drv vic 1k
Cc drv vic 6f
Cg vic 0 4f
; trailing comment card
.end
