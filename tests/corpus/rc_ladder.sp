* three-stage RC ladder driven by a DC source
V1 in 0 DC 2.5
R1 in n1 50
R2 n1 n2 50
R3 n2 out 50
C1 n1 0 5f
C2 n2 0 5f
C3 out 0 12f
.end
