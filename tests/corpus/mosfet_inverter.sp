* level-1 CMOS inverter with model cards
.model nch NMOS (VT0=0.5 KP=120u LAMBDA=0.05)
.model pch PMOS (VT0=-0.55 KP=40u LAMBDA=0.08)
Vdd vdd 0 DC 2.5
Vin in 0 PWL(0 0 0.2n 2.5)
Mn out in 0 0 nch W=1u L=0.25u
Mp out in vdd vdd pch W=2u L=0.25u
Cload out 0 20f
.end
