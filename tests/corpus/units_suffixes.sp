* engineering suffixes and unit annotations on every value class
R1 a b 2.5kohm
R2 b gnd 10MEG
C1 a 0 4fF
C2 b 0 0.001p
V1 a 0 DC 2500m
I1 0 b DC 1.5e-6
R3 a gnd 1g
.end
