* blank lines, odd spacing, early .end directive handling

R1	in	out	100

* a comment between cards

C1 out 0 1p
V1 in 0 1.0
.end
* cards after .end are still plain lines in this subset
