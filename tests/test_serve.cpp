// Verification service tests (src/serve, DESIGN.md §13).
//
// Unit layer: job specs round-trip bit-exactly (their hash is the job
// identity), malformed specs are rejected with a reason, and the
// admission queue / backoff schedule behave deterministically without
// sleeping. Integration layer: a real daemon is forked per test and
// driven over its Unix-domain socket — a served job must match a direct
// in-process verify bit-for-bit, resubmits must replay exactly once,
// and the robustness envelope (queue-full pushback, crash retry,
// wedged-runner reaping, retry-exhaustion concession, SIGTERM drain,
// daemon SIGKILL + restart recovery, client disconnect) must hold.
#include <gtest/gtest.h>

#include <dirent.h>
#include <netdb.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/journal.h"
#include "core/pruning.h"
#include "core/verifier.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/governor.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "wire_negatives.h"

namespace xtv {
namespace {

using serve::AdmissionQueue;
using serve::BackoffPolicy;
using serve::JobSpec;
using serve::JobState;
using serve::LaunchCandidate;
using serve::ResourceGovernor;

// ---------------------------------------------------------------------------
// Unit: spec canon and identity.

TEST(JobSpec, RoundTripsBitExactlyThroughText) {
  JobSpec spec;
  spec.options.glitch_threshold = 0.0625;
  spec.options.glitch.tstop = 3.1e-9;   // not exactly representable
  spec.options.certify = true;
  spec.options.cert_rel_tol = 0.034;
  spec.options.audit_fraction = 0.125;
  spec.options.latch_inputs_only = true;
  spec.processes = 3;
  spec.heartbeat_ms = 123.456;
  spec.deadline_ms = 2500.0;
  spec.retries = 7;

  JobSpec back;
  std::string err;
  ASSERT_TRUE(JobSpec::parse(spec.to_text(), &back, &err)) << err;
  EXPECT_EQ(back.to_text(), spec.to_text());
  EXPECT_EQ(back.key(), spec.key());
  // Bitwise, not approximate: the key hashes double bit patterns.
  EXPECT_EQ(back.options.glitch.tstop, spec.options.glitch.tstop);
}

TEST(JobSpec, EmptySpecSharesTheChipAuditDefaultKey) {
  // chip_audit parity: a bare submit and a bare chip_audit run must land
  // on one options hash (and therefore one interchangeable journal).
  JobSpec spec;
  std::string err;
  ASSERT_TRUE(JobSpec::parse("", &spec, &err)) << err;
  EXPECT_EQ(spec.key(), options_result_hash(spec.to_options()));
  EXPECT_EQ(spec.options.glitch_threshold, 0.10);
  EXPECT_TRUE(spec.options.glitch.align_aggressors);
}

TEST(JobSpec, SchedulingKnobsNeverChangeTheKey) {
  JobSpec a, b;
  b.processes = 7;
  b.heartbeat_ms = 10.0;
  b.restarts = 9;
  b.deadline_ms = 1.0;
  b.retries = 0;
  EXPECT_EQ(a.key(), b.key());
  // ...but a result-affecting knob does.
  b.options.glitch_threshold = 0.2;
  EXPECT_NE(a.key(), b.key());
}

TEST(JobSpec, RejectsMalformedAndOutOfRangeSpecs) {
  const char* bad[] = {
      "threshold=0",        "threshold=1.5",   "threshold=abc",
      "tstop=0",            "tstop=-1e-9",     "heartbeat_ms=0",
      "audit_fraction=1.5", "audit_fraction=-0.1",
      "cert_tol=0",         "cert_freqs=0",    "max_mor_order=0",
      "latch_only=yes",     "retries=2.5",     "frobnicate=1",
      "threshold",          "=1",
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    JobSpec spec;
    std::string err;
    EXPECT_FALSE(JobSpec::parse(text, &spec, &err));
    EXPECT_FALSE(err.empty());
  }
  // mor_order=0 is NOT an error: 0 means "automatic order selection".
  JobSpec spec;
  std::string err;
  EXPECT_TRUE(JobSpec::parse("mor_order=0", &spec, &err)) << err;
}

TEST(JobSpec, KeyHexRoundTripsAndRejectsGarbage) {
  const std::uint64_t key = 0xc07ebd46bf789f57ull;
  std::uint64_t back = 0;
  ASSERT_TRUE(serve::parse_job_key(serve::job_key_hex(key), &back));
  EXPECT_EQ(back, key);
  EXPECT_FALSE(serve::parse_job_key("", &back));
  EXPECT_FALSE(serve::parse_job_key("c07e", &back));
  EXPECT_FALSE(serve::parse_job_key("c07ebd46bf789f5g", &back));
  EXPECT_FALSE(serve::parse_job_key("c07ebd46bf789f57aa", &back));
}

TEST(JobSpec, EscapeRoundTripsArbitraryText) {
  for (const char* raw : {"", "plain", "two words", "100% done\nnext line",
                          "-leading dash", "\x01\x7f\xff"}) {
    const std::string s = raw;
    const std::string esc = serve::serve_escape(s);
    EXPECT_EQ(esc.find(' '), std::string::npos);
    EXPECT_EQ(esc.find('\n'), std::string::npos);
    std::string back;
    ASSERT_TRUE(serve::serve_unescape(esc, &back));
    EXPECT_EQ(back, s);
  }
}

TEST(JobSpec, SpecFilePersistsAttemptsAndRejectsTampering) {
  const std::string path = ::testing::TempDir() + "serve_spec_test.spec";
  JobSpec spec;
  spec.options.glitch_threshold = 0.25;
  std::string err;
  ASSERT_TRUE(serve::write_spec_file(path, spec, 3, &err)) << err;

  JobSpec back;
  std::size_t attempts = 0;
  ASSERT_TRUE(serve::load_spec_file(path, &back, &attempts, &err)) << err;
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(back.key(), spec.key());

  // Flip the spec body without updating the filed key: the re-parsed
  // spec no longer hashes to the key, and the load must refuse.
  std::ifstream in(path);
  std::string header, body;
  std::getline(in, header);
  std::getline(in, body);
  in.close();
  const std::size_t pos = body.find("threshold=");
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, std::strlen("threshold=0x1p-2"), "threshold=0x1p-3");
  std::ofstream out(path);
  out << header << '\n' << body << '\n';
  out.close();
  EXPECT_FALSE(serve::load_spec_file(path, &back, &attempts, &err));
  EXPECT_NE(err.find("hashes to"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(JobSpec, DoneFileRoundTripsAndRejectsNonTerminalStates) {
  const std::string path = ::testing::TempDir() + "serve_done_test.done";
  std::string err;
  ASSERT_TRUE(serve::write_done_file(path, 42, JobState::kConceded,
                                     "reason with spaces", &err))
      << err;
  std::uint64_t key = 0;
  JobState state = JobState::kQueued;
  std::string summary;
  ASSERT_TRUE(serve::load_done_file(path, &key, &state, &summary));
  EXPECT_EQ(key, 42u);
  EXPECT_EQ(state, JobState::kConceded);
  EXPECT_EQ(summary, "reason with spaces");

  // A "running" marker is nonsense for a terminal file.
  std::ofstream out(path);
  out << "xtvsd 000000000000002a running -\n";
  out.close();
  EXPECT_FALSE(serve::load_done_file(path, &key, &state, &summary));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Unit: backoff schedule and admission bound.

TEST(Backoff, GrowsExponentiallyAndCaps) {
  BackoffPolicy p;
  p.base_ms = 100.0;
  p.factor = 2.0;
  p.max_ms = 900.0;
  EXPECT_DOUBLE_EQ(p.delay_ms(0), 100.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(1), 200.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(2), 400.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(3), 800.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(4), 900.0);   // capped
  EXPECT_DOUBLE_EQ(p.delay_ms(60), 900.0);  // no overflow blowup
}

TEST(AdmissionQueue, BoundsAdmissionButNeverDropsRequeues) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3));  // explicit pushback, not growth
  EXPECT_EQ(q.size(), 2u);

  // A benched (failed-attempt) job still owns its slot, and benching is
  // allowed even at capacity: the job was already admitted.
  BackoffPolicy p;
  p.base_ms = 1000.0;
  std::uint64_t key = 0;
  ASSERT_TRUE(q.pop_ready(0.0, &key));
  EXPECT_EQ(key, 1u);
  q.push_backoff(1, 0, 0.0, p);
  EXPECT_TRUE(q.full());
  EXPECT_TRUE(q.contains(1));

  // Not ripe yet: the FIFO job runs first.
  ASSERT_TRUE(q.pop_ready(10.0, &key));
  EXPECT_EQ(key, 2u);
  EXPECT_FALSE(q.pop_ready(999.0, &key));  // bench not ripe, FIFO empty
  EXPECT_DOUBLE_EQ(q.next_ripe_ms(), 1000.0);
  ASSERT_TRUE(q.pop_ready(1000.0, &key));
  EXPECT_EQ(key, 1u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, RipeBackoffJobsRunBeforeTheFifo) {
  AdmissionQueue q(4);
  BackoffPolicy p;
  p.base_ms = 50.0;
  q.push(7);
  q.push_backoff(9, 0, 0.0, p);
  std::uint64_t key = 0;
  ASSERT_TRUE(q.pop_ready(60.0, &key));
  EXPECT_EQ(key, 9u);  // older by construction: it was admitted earlier
  ASSERT_TRUE(q.pop_ready(60.0, &key));
  EXPECT_EQ(key, 7u);
}

TEST(AdmissionQueue, EraseDropsEveryEntryForAKey) {
  AdmissionQueue q(4);
  BackoffPolicy p;
  q.push(5);
  q.push_backoff(5, 0, 0.0, p);
  EXPECT_EQ(q.erase(5), 2u);
  EXPECT_FALSE(q.contains(5));
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, PushFrontRequeuesAheadOfTheFifo) {
  AdmissionQueue q(4);
  q.push(1);
  q.push(2);
  q.push_front(3);  // a shed job reclaims the head, not the tail
  std::vector<std::uint64_t> ready;
  q.ready_keys(0.0, &ready);
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[0], 3u);
  EXPECT_EQ(ready[1], 1u);
  EXPECT_EQ(ready[2], 2u);

  // ready_keys is non-destructive; take() claims exactly one entry.
  EXPECT_TRUE(q.take(1));
  EXPECT_FALSE(q.take(1));
  q.ready_keys(0.0, &ready);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0], 3u);
  EXPECT_EQ(ready[1], 2u);
}

TEST(AdmissionQueue, ReadyKeysListsRipeBackoffBeforeTheFifo) {
  AdmissionQueue q(4);
  BackoffPolicy p;
  p.base_ms = 100.0;
  q.push(7);
  q.push_backoff(9, 0, 0.0, p);
  std::vector<std::uint64_t> ready;
  q.ready_keys(50.0, &ready);  // bench not ripe yet
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 7u);
  q.ready_keys(150.0, &ready);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0], 9u);
  EXPECT_EQ(ready[1], 7u);
}

// ---------------------------------------------------------------------------
// Unit: per-job design references and the key / options-hash split.

TEST(JobSpec, DesignRefSplitsTheKeyFromTheOptionsHash) {
  JobSpec resident, perjob;
  std::string err;
  ASSERT_TRUE(JobSpec::parse("nets=40", &perjob, &err)) << err;
  EXPECT_TRUE(perjob.has_design_ref());
  EXPECT_FALSE(resident.has_design_ref());

  // Same verifier options -> same journal-header hash; but the job
  // identity must also cover WHAT is being verified.
  EXPECT_EQ(resident.options_hash(), perjob.options_hash());
  EXPECT_EQ(resident.key(), resident.options_hash());
  EXPECT_NE(perjob.key(), perjob.options_hash());
  EXPECT_NE(perjob.key(), resident.key());

  JobSpec other;
  ASSERT_TRUE(JobSpec::parse("nets=41", &other, &err)) << err;
  EXPECT_NE(other.key(), perjob.key());

  // mem_mb is a scheduling hint, never identity.
  JobSpec heavy;
  ASSERT_TRUE(JobSpec::parse("nets=40 mem_mb=512", &heavy, &err)) << err;
  EXPECT_EQ(heavy.key(), perjob.key());
}

TEST(JobSpec, DesignRefRoundTripsThroughText) {
  JobSpec spec;
  std::string err;
  ASSERT_TRUE(JobSpec::parse("nets=40 rows=2 chip_seed=7", &spec, &err))
      << err;
  JobSpec back;
  ASSERT_TRUE(JobSpec::parse(spec.to_text(), &back, &err)) << err;
  EXPECT_EQ(back.to_text(), spec.to_text());
  EXPECT_EQ(back.key(), spec.key());
}

TEST(JobSpec, RejectsInconsistentDesignRefs) {
  const char* bad[] = {
      "rows=2",                      // rows without a per-job design
      "chip_seed=3",                 // seed without a per-job design
      "design=/nonexistent/xtvds",   // unreadable file dies at parse time
      "mem_mb=-1",
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    JobSpec spec;
    std::string err;
    EXPECT_FALSE(JobSpec::parse(text, &spec, &err));
    EXPECT_FALSE(err.empty());
  }
}

TEST(JobSpec, DesignFileResolvesToTheSameKeyAsInlineTokens) {
  const std::string path = ::testing::TempDir() + "serve_design_test.xtvds";
  {
    std::ofstream out(path);
    out << "xtvds nets=40 rows=2 seed=7\n";
  }
  JobSpec from_file, inline_spec;
  std::string err;
  ASSERT_TRUE(JobSpec::parse("design=" + path, &from_file, &err)) << err;
  ASSERT_TRUE(
      JobSpec::parse("nets=40 rows=2 chip_seed=7", &inline_spec, &err))
      << err;
  EXPECT_EQ(from_file.key(), inline_spec.key());

  JobSpec both;
  EXPECT_FALSE(JobSpec::parse("design=" + path + " nets=40", &both, &err));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Unit: cross-job resource governor.

TEST(Governor, ReservationLedgerTracksChargesAndReleases) {
  ResourceGovernor g(100.0);
  ASSERT_TRUE(g.enabled());
  EXPECT_TRUE(g.fits(60.0));
  g.reserve(1, 60.0);
  EXPECT_DOUBLE_EQ(g.reserved_mb(), 60.0);
  EXPECT_TRUE(g.fits(40.0));
  EXPECT_FALSE(g.fits(41.0));
  g.reserve(1, 30.0);  // re-reserving replaces, never accumulates
  EXPECT_DOUBLE_EQ(g.reserved_mb(), 30.0);
  g.release(1);
  g.release(1);  // double release is a no-op
  EXPECT_DOUBLE_EQ(g.reserved_mb(), 0.0);
  EXPECT_EQ(g.held(), 0u);
}

TEST(Governor, LoneOversizedJobRunsOnlyOnAnEmptyLedger) {
  ResourceGovernor g(100.0);
  EXPECT_TRUE(g.fits(150.0));  // nothing running: let it have the machine
  g.reserve(1, 10.0);
  EXPECT_FALSE(g.fits(150.0));
  g.release(1);
  EXPECT_TRUE(g.fits(150.0));
}

TEST(Governor, DisabledGovernorAdmitsStrictlyFifo) {
  ResourceGovernor g(0.0);
  EXPECT_FALSE(g.enabled());
  EXPECT_TRUE(g.fits(1e9));
  const std::vector<LaunchCandidate> ready = {{2, 500.0, 20.0},
                                              {1, 1.0, 10.0}};
  EXPECT_EQ(serve::pick_admission(ready, 100.0, 5000.0, g), 1u);  // oldest
}

TEST(Governor, LargestFittingReservationWins) {
  ResourceGovernor g(100.0);
  g.reserve(9, 40.0);
  const std::vector<LaunchCandidate> ready = {
      {1, 30.0, 10.0}, {2, 55.0, 20.0}, {3, 70.0, 5.0}};
  // 70 does not fit on top of 40; 55 is the largest that does.
  EXPECT_EQ(serve::pick_admission(ready, 100.0, 0.0, g), 1u);
  // Ties go to the older job.
  const std::vector<LaunchCandidate> tied = {{1, 55.0, 20.0},
                                             {2, 55.0, 10.0}};
  EXPECT_EQ(serve::pick_admission(tied, 100.0, 0.0, g), 1u);
}

TEST(Governor, AgedJobPromotesAndStallsTheLineUntilItFits) {
  ResourceGovernor g(100.0);
  g.reserve(9, 60.0);
  // now=10000, promote=5000: candidate 0 (enqueued at 0) is aged; its
  // 50 MiB does not fit on top of the 60 reserved, so the WHOLE line
  // stalls — candidate 1 would fit but must not overtake.
  const std::vector<LaunchCandidate> ready = {{1, 50.0, 0.0},
                                              {2, 60.0, 9000.0}};
  EXPECT_EQ(serve::pick_admission(ready, 10000.0, 5000.0, g),
            serve::kNoAdmission);
  g.release(9);
  EXPECT_EQ(serve::pick_admission(ready, 10000.0, 5000.0, g), 0u);
  // Without aging the largest fitting job would have won instead.
  EXPECT_EQ(serve::pick_admission(ready, 10000.0, 0.0, g), 1u);
}

// ---------------------------------------------------------------------------
// Integration: a live forked daemon driven over its socket.

/// Scoped environment variable (the serve chaos hooks are env-driven and
/// inherited by the forked daemon and its runners).
struct EnvGuard {
  std::string name;
  EnvGuard(const char* n, const std::string& v) : name(n) {
    ::setenv(n, v.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name.c_str()); }
};

class ServeFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kNets = 60;

  /// Parent-side replica of the daemon's resident design (identical
  /// construction: default technology, default characterization, DSP
  /// chip with only net_count overridden). Built once for the suite.
  struct Reference {
    Technology tech = Technology::default_250nm();
    CellLibrary lib;
    CharacterizedLibrary chars;
    Extractor extractor;
    ChipDesign design;
    Reference() : lib(tech), chars(lib), extractor(tech), design([&] {
      DspChipOptions chip;
      chip.net_count = kNets;
      return generate_dsp_chip(lib, chip);
    }()) {}
  };
  static Reference& ref() {
    static Reference* r = new Reference();
    return *r;
  }

  void SetUp() override {
    dir_ = ::testing::TempDir() + "serve_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    remove_tree(dir_);
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0) << dir_;
    socket_ = dir_ + "/s.sock";
    jobs_ = dir_ + "/jobs";
  }

  void TearDown() override {
    if (daemon_pid_ > 0) kill_daemon();
    reap_orphan_runners();
    remove_tree(dir_);
  }

  serve::DaemonOptions daemon_options() {
    serve::DaemonOptions opt;
    opt.socket_path = socket_;
    opt.jobs_dir = jobs_;
    opt.net_count = kNets;
    opt.default_processes = 2;
    opt.backoff.base_ms = 50.0;
    opt.backoff.max_ms = 200.0;
    return opt;
  }

  void start_daemon(const serve::DaemonOptions& opt) {
    ASSERT_LT(daemon_pid_, 0) << "daemon already running";
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      serve::ServeDaemon daemon(opt);
      ::_exit(daemon.run());
    }
    daemon_pid_ = pid;
    wait_ready();
  }

  /// Polls the socket until the daemon accepts connections (design
  /// generation and characterization happen before the bind).
  void wait_ready(double timeout_ms = 60000.0) {
    for (double waited = 0.0; waited < timeout_ms; waited += 50.0) {
      serve::ServeClient probe;
      std::string err;
      if (probe.connect(socket_, &err)) return;
      int status = 0;
      ASSERT_EQ(::waitpid(daemon_pid_, &status, WNOHANG), 0)
          << "daemon exited during startup, status " << status;
      ::usleep(50000);
    }
    FAIL() << "daemon never became ready on " << socket_;
  }

  /// SIGTERM + wait; returns the daemon's exit status info.
  int drain_daemon(double timeout_ms = 60000.0) {
    EXPECT_GT(daemon_pid_, 0);
    ::kill(daemon_pid_, SIGTERM);
    return await_daemon_exit(timeout_ms);
  }

  int await_daemon_exit(double timeout_ms = 60000.0) {
    int status = -1;
    for (double waited = 0.0; waited < timeout_ms; waited += 20.0) {
      const pid_t r = ::waitpid(daemon_pid_, &status, WNOHANG);
      if (r == daemon_pid_) {
        daemon_pid_ = -1;
        return status;
      }
      ::usleep(20000);
    }
    ADD_FAILURE() << "daemon did not exit in time";
    kill_daemon();
    return -1;
  }

  void kill_daemon() {
    if (daemon_pid_ <= 0) return;
    ::kill(daemon_pid_, SIGKILL);
    int status = 0;
    ::waitpid(daemon_pid_, &status, 0);
    daemon_pid_ = -1;
  }

  /// After a SIGKILLed daemon, runners may survive in their own process
  /// groups; the .pid files locate them (same mechanism the daemon's own
  /// recovery uses).
  void reap_orphan_runners() {
    DIR* d = ::opendir(jobs_.c_str());
    if (!d) return;
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() < 4 || name.substr(name.size() - 4) != ".pid") continue;
      std::ifstream in(jobs_ + "/" + name);
      long pid = 0;
      if (in >> pid && pid > 1) {
        ::kill(-static_cast<pid_t>(pid), SIGKILL);
        ::kill(static_cast<pid_t>(pid), SIGKILL);
      }
    }
    ::closedir(d);
  }

  static void remove_tree(const std::string& path) {
    DIR* d = ::opendir(path.c_str());
    if (d) {
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        remove_tree(path + "/" + name);
      }
      ::closedir(d);
      ::rmdir(path.c_str());
    } else {
      std::remove(path.c_str());
    }
  }

  /// Submits without waiting for completion. Returns "" on acceptance,
  /// the daemon's rejection reason otherwise.
  std::string submit_nowait(serve::ServeClient& client, const JobSpec& spec) {
    std::string token = "t";
    token += serve::job_key_hex(spec.key());
    std::string err;
    if (!client.send(WireType::kJobSubmit, token + " " + spec.to_text(),
                     &err))
      return "send: " + err;
    for (;;) {
      WireFrame f;
      if (!client.recv(&f, 15000.0, &err)) return "recv: " + err;
      if (f.payload.rfind(token + " ", 0) != 0) continue;
      if (f.type == WireType::kJobAccepted) return "";
      if (f.type == WireType::kJobRejected)
        return f.payload.substr(token.size() + 1);
    }
  }

  /// One-shot status poll on a fresh connection: "<state> attempts=N ...".
  std::string query_status(std::uint64_t key) {
    serve::ServeClient client;
    std::string err;
    if (!client.connect(socket_, &err)) return "";
    const std::string hex = serve::job_key_hex(key);
    if (!client.send(WireType::kJobQuery, "q " + hex, &err)) return "";
    for (;;) {
      WireFrame f;
      if (!client.recv(&f, 15000.0, &err)) return "";
      if (f.type == WireType::kJobStatus && f.payload.rfind(hex + " ", 0) == 0)
        return f.payload.substr(hex.size() + 1);
      if (f.type == WireType::kJobRejected) return "unknown-job";
    }
  }

  void wait_for_state(std::uint64_t key, const std::string& state,
                      double timeout_ms = 30000.0) {
    for (double waited = 0.0; waited < timeout_ms; waited += 50.0) {
      const std::string status = query_status(key);
      if (status.rfind(state + " ", 0) == 0 || status == state) return;
      ::usleep(50000);
    }
    FAIL() << "job " << serve::job_key_hex(key) << " never reached state "
           << state << " (last: " << query_status(key) << ")";
  }

  /// The TCP endpoint the daemon published at boot (bind_tcp writes
  /// "<ip>:<port>\n" so port 0 requests are resolvable).
  std::string read_tcp_endpoint(double timeout_ms = 30000.0) {
    const std::string path = jobs_ + "/daemon.tcp";
    for (double waited = 0.0; waited < timeout_ms; waited += 50.0) {
      std::ifstream in(path);
      std::string ep;
      if (std::getline(in, ep) && !ep.empty()) return ep;
      ::usleep(50000);
    }
    ADD_FAILURE() << "daemon never published " << path;
    return "";
  }

  /// Raw TCP connect for byte-level (mutated-frame) injection that
  /// ServeClient's framing would refuse to send.
  static int raw_tcp_connect(const std::string& endpoint) {
    std::string host, port;
    if (!serve::parse_tcp_endpoint(endpoint, &host, &port)) return -1;
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0)
      return -1;
    int fd = -1;
    for (addrinfo* ai = res; ai; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
  }

  /// Reads (and discards keepalives etc.) until the peer closes. True on
  /// EOF within the deadline, false on timeout or error.
  static bool drains_to_eof(int fd, double timeout_ms) {
    for (double waited = 0.0; waited < timeout_ms;) {
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);
      waited += 100.0;
      if (rc < 0 && errno == EINTR) continue;
      if (rc == 0) continue;
      char buf[4096];
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n == 0) return true;
      if (n < 0 && errno != EINTR) return false;
    }
    return false;
  }

  static std::size_t parse_attempts(const std::string& status) {
    const std::size_t pos = status.find("attempts=");
    if (pos == std::string::npos) return 0;
    return static_cast<std::size_t>(
        std::atol(status.c_str() + pos + std::strlen("attempts=")));
  }

  /// Direct in-process run with the spec's options — the bit-identity
  /// reference a served job must reproduce.
  static VerificationReport direct_report(const JobSpec& spec) {
    VerifierOptions vo = spec.to_options();
    vo.processes = 0;  // in-process == process-shard mode, per test_shard
    vo.threads = 1;
    ChipVerifier verifier(ref().extractor, ref().chars);
    return verifier.verify(ref().design, vo);
  }

  static void expect_matches_direct(const serve::JobResult& result,
                                    const VerificationReport& want) {
    ASSERT_EQ(result.findings.size(), want.findings.size());
    for (const VictimFinding& w : want.findings) {
      SCOPED_TRACE("victim net " + std::to_string(w.net));
      const auto it = result.findings.find(w.net);
      ASSERT_NE(it, result.findings.end());
      const VictimFinding& g = it->second.finding;
      EXPECT_EQ(g.peak, w.peak);  // bitwise: no tolerance
      EXPECT_EQ(g.peak_fraction, w.peak_fraction);
      EXPECT_EQ(g.violation, w.violation);
      EXPECT_EQ(g.status, w.status);
      EXPECT_EQ(g.error_code, w.error_code);
      EXPECT_EQ(g.aggressors_analyzed, w.aggressors_analyzed);
      EXPECT_EQ(g.reduced_order, w.reduced_order);
    }
  }

  std::string dir_, socket_, jobs_;
  pid_t daemon_pid_ = -1;
};

TEST_F(ServeFixture, ServedJobMatchesDirectVerifyBitExactly) {
  start_daemon(daemon_options());
  JobSpec spec;

  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  std::size_t streamed = 0;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err,
                                     [&](const JournalRecord&) {
                                       ++streamed;
                                     }))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
  EXPECT_EQ(streamed, result.findings.size());
  EXPECT_GT(result.findings.size(), 0u);

  // The on-disk journal is headed by the job key (identity invariant).
  std::ifstream journal(serve::job_paths(jobs_, spec.key()).journal);
  std::string header;
  ASSERT_TRUE(std::getline(journal, header));
  EXPECT_EQ(header, "xtvjh " + serve::job_key_hex(spec.key()));

  expect_matches_direct(result, direct_report(spec));
}

TEST_F(ServeFixture, ResubmitReplaysIdempotentlyWithoutRerunning) {
  start_daemon(daemon_options());
  JobSpec spec;

  serve::ServeClient first;
  std::string err;
  ASSERT_TRUE(first.connect(socket_, &err)) << err;
  serve::JobResult a;
  ASSERT_TRUE(serve::submit_and_wait(first, spec, 120000.0, &a, &err)) << err;
  ASSERT_EQ(a.state, JobState::kDone);

  // Same spec, fresh connection: the daemon replays the finished journal
  // instead of running anything — still exactly once per victim.
  serve::ServeClient second;
  ASSERT_TRUE(second.connect(socket_, &err)) << err;
  serve::JobResult b;
  ASSERT_TRUE(serve::submit_and_wait(second, spec, 30000.0, &b, &err)) << err;
  EXPECT_EQ(b.state, JobState::kDone);
  EXPECT_EQ(b.duplicate_findings, 0u);
  EXPECT_EQ(b.findings.size(), a.findings.size());
  EXPECT_EQ(parse_attempts(query_status(spec.key())), 1u);
}

TEST_F(ServeFixture, FullQueueRejectsExplicitly) {
  // First runner wedges forever (stall hook), pinning the single run
  // slot; capacity 1 then holds exactly one queued job.
  EnvGuard stall("XTV_TEST_SERVE_RUNNER_STALL", "1");
  serve::DaemonOptions opt = daemon_options();
  opt.queue_capacity = 1;
  opt.max_running = 1;
  start_daemon(opt);

  JobSpec running, queued, rejected;
  queued.options.glitch_threshold = 0.2;
  rejected.options.glitch_threshold = 0.3;

  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  ASSERT_EQ(submit_nowait(client, running), "");
  wait_for_state(running.key(), "running");

  ASSERT_EQ(submit_nowait(client, queued), "");
  const std::string reason = submit_nowait(client, rejected);
  EXPECT_EQ(reason.rfind("queue-full", 0), 0u) << reason;

  // The rejected job left no trace; the queued one is still admitted.
  EXPECT_EQ(query_status(rejected.key()), "unknown-job");
  EXPECT_EQ(query_status(queued.key()).rfind("queued", 0), 0u);
}

TEST_F(ServeFixture, CrashedRunnerRetriesAndSucceeds) {
  // The first runner attempt aborts at startup; the retry (after a short
  // backoff) must complete with the full result.
  EnvGuard crash("XTV_TEST_SERVE_RUNNER_CRASH", "1");
  start_daemon(daemon_options());
  JobSpec spec;

  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
  EXPECT_EQ(parse_attempts(query_status(spec.key())), 2u);
  expect_matches_direct(result, direct_report(spec));
}

TEST_F(ServeFixture, WedgedRunnerIsReapedByTheGraceTimeout) {
  // The first runner pauses forever before its first heartbeat; the
  // startup grace is the only thing that can catch it.
  EnvGuard stall("XTV_TEST_SERVE_RUNNER_STALL", "1");
  serve::DaemonOptions opt = daemon_options();
  opt.runner_grace_ms = 400.0;
  start_daemon(opt);
  JobSpec spec;

  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
  EXPECT_EQ(parse_attempts(query_status(spec.key())), 2u);
}

TEST_F(ServeFixture, RetryExhaustionConcedesEveryVictimExplicitly) {
  // Every attempt crashes; after 1 + retries attempts the daemon must
  // concede — and a concession is a complete, explicit answer: every
  // candidate victim gets a pessimistic kShardCrashed record.
  EnvGuard crash("XTV_TEST_SERVE_RUNNER_CRASH", "99");
  serve::DaemonOptions opt = daemon_options();
  opt.default_retries = 1;
  start_daemon(opt);
  JobSpec spec;

  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kConceded);
  EXPECT_EQ(result.duplicate_findings, 0u);
  EXPECT_EQ(parse_attempts(query_status(spec.key())), 2u);

  // Candidate count, recomputed the way the daemon does it.
  const std::vector<NetSummary> sums =
      chip_net_summaries(ref().design, ref().extractor, ref().chars);
  const PruneResult pruned = prune_couplings(sums, VerifierOptions().prune);
  std::size_t expected = 0;
  for (std::size_t v = 0; v < ref().design.nets.size(); ++v)
    if (!pruned.retained[v].empty()) ++expected;
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(result.findings.size(), expected);

  for (const auto& [net, rec] : result.findings) {
    SCOPED_TRACE("victim net " + std::to_string(net));
    EXPECT_EQ(rec.finding.status, FindingStatus::kShardCrashed);
    EXPECT_EQ(rec.finding.error_code, StatusCode::kWorkerCrashed);
    EXPECT_TRUE(rec.finding.violation);
    EXPECT_EQ(rec.finding.peak_fraction, 1.0);
    EXPECT_NE(rec.finding.error.find("conceded by serve daemon"),
              std::string::npos)
        << rec.finding.error;
  }
}

TEST_F(ServeFixture, SigtermDrainFinishesInFlightJobsAndExitsZero) {
  start_daemon(daemon_options());
  JobSpec spec;

  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  bool signalled = false;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err,
                                     [&](const JournalRecord&) {
                                       // Drain mid-run: the in-flight job
                                       // must still complete and stream.
                                       if (!signalled) {
                                         signalled = true;
                                         ::kill(daemon_pid_, SIGTERM);
                                       }
                                     }))
      << err;
  ASSERT_TRUE(signalled);
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);

  const int status = await_daemon_exit();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  expect_matches_direct(result, direct_report(spec));
}

TEST_F(ServeFixture, DaemonSigkillThenRestartRecoversTheJob) {
  start_daemon(daemon_options());
  JobSpec spec;

  {
    serve::ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socket_, &err)) << err;
    ASSERT_EQ(submit_nowait(client, spec), "");
    wait_for_state(spec.key(), "running");
  }
  ::usleep(150000);  // let the runner get some victims into the journal
  kill_daemon();
  reap_orphan_runners();

  // Restart over the same jobs directory: recovery either finds the
  // orphaned runner's finished journal or requeues the interrupted job
  // with its persisted attempt count — both converge to a full "done".
  start_daemon(daemon_options());
  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
  expect_matches_direct(result, direct_report(spec));
}

TEST_F(ServeFixture, ClientDisconnectDoesNotKillTheJob) {
  start_daemon(daemon_options());
  JobSpec spec;

  {
    serve::ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socket_, &err)) << err;
    ASSERT_EQ(submit_nowait(client, spec), "");
    // Vanish immediately: the daemon must keep running the job.
  }

  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
  EXPECT_GT(result.findings.size(), 0u);
}

TEST_F(ServeFixture, DrainingDaemonRejectsNewSubmissions) {
  start_daemon(daemon_options());

  // Give the drain something to wait on: submit, then immediately ask
  // for the drain and probe admission while it is in progress.
  JobSpec spec;
  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  ASSERT_EQ(submit_nowait(client, spec), "");
  ::kill(daemon_pid_, SIGTERM);
  ::usleep(50000);

  JobSpec late;
  late.options.glitch_threshold = 0.5;
  serve::ServeClient other;
  if (other.connect(socket_, &err)) {
    const std::string reason = submit_nowait(other, late);
    // Either the daemon saw the drain and rejects, or it exited first
    // and the recv fails — both are acceptable; silent admission is not.
    if (reason.empty()) {
      FAIL() << "draining daemon admitted a new job";
    }
    if (reason.rfind("recv:", 0) != 0 && reason.rfind("send:", 0) != 0) {
      EXPECT_EQ(reason.rfind("draining", 0), 0u) << reason;
    }
  }

  const int status = await_daemon_exit();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---------------------------------------------------------------------------
// Integration: concurrent runners, the TCP transport, and the governor.

TEST_F(ServeFixture, ConcurrentJobsAllCompleteBitExactly) {
  serve::DaemonOptions opt = daemon_options();
  opt.max_running = 3;
  start_daemon(opt);

  // audit_seed is part of the options hash but (with audit_fraction=0)
  // never of the findings: three distinct jobs, one expected answer.
  JobSpec specs[3];
  serve::ServeClient submitters[3];
  for (int i = 0; i < 3; ++i) {
    std::string err;
    ASSERT_TRUE(JobSpec::parse("audit_seed=" + std::to_string(i + 1),
                               &specs[i], &err))
        << err;
    ASSERT_TRUE(submitters[i].connect(socket_, &err)) << err;
    ASSERT_EQ(submit_nowait(submitters[i], specs[i]), "");
  }

  // At least two of the three must be observably in flight at once.
  bool saw_concurrent = false;
  for (double waited = 0.0; waited < 60000.0 && !saw_concurrent;
       waited += 100.0) {
    std::size_t running = 0, terminal = 0;
    for (const JobSpec& s : specs) {
      const std::string status = query_status(s.key());
      if (status.rfind("running", 0) == 0) ++running;
      if (status.rfind("done", 0) == 0 || status.rfind("conceded", 0) == 0)
        ++terminal;
    }
    if (running >= 2) saw_concurrent = true;
    if (terminal == 3) break;
    ::usleep(100000);
  }
  EXPECT_TRUE(saw_concurrent) << "never saw 2+ jobs running concurrently";

  // Every job completes, streams exactly once, and lands bit-identical
  // to the direct single-job reference.
  const VerificationReport want = direct_report(specs[0]);
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    serve::ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socket_, &err)) << err;
    serve::JobResult result;
    ASSERT_TRUE(
        serve::submit_and_wait(client, specs[i], 180000.0, &result, &err))
        << err;
    EXPECT_EQ(result.state, JobState::kDone);
    EXPECT_EQ(result.duplicate_findings, 0u);
    expect_matches_direct(result, want);
  }
}

TEST_F(ServeFixture, TcpSubmitMatchesDirectVerifyBitExactly) {
  serve::DaemonOptions opt = daemon_options();
  opt.listen_address = "127.0.0.1:0";
  start_daemon(opt);
  const std::string ep = read_tcp_endpoint();
  ASSERT_FALSE(ep.empty());

  JobSpec spec;
  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(ep, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
  EXPECT_GT(result.findings.size(), 0u);
  expect_matches_direct(result, direct_report(spec));
}

TEST_F(ServeFixture, TcpCorruptionSweepLatchesThatConnectionOnly) {
  serve::DaemonOptions opt = daemon_options();
  opt.listen_address = "127.0.0.1:0";
  opt.keepalive_ms = 0.0;  // quiet wire: EOF below means latch-and-close
  start_daemon(opt);
  const std::string ep = read_tcp_endpoint();
  ASSERT_FALSE(ep.empty());

  const std::string frame =
      wire_encode_frame(WireType::kJobQuery, "q 00000000000000aa");
  for (const auto& m : wiretest::negative_sweep(frame)) {
    SCOPED_TRACE(m.name);
    const int fd = raw_tcp_connect(ep);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::write(fd, m.bytes.data(), m.bytes.size()),
              static_cast<ssize_t>(m.bytes.size()));
    if (wiretest::classify(m.bytes) == wiretest::StreamVerdict::kCorrupt) {
      // The daemon must latch corruption and close THIS connection.
      EXPECT_TRUE(drains_to_eof(fd, 15000.0));
    }
    ::close(fd);
  }

  // ...without disrupting the daemon: a clean TCP submit still runs.
  JobSpec spec;
  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(ep, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
}

TEST_F(ServeFixture, ConnectionCapRejectsWithAnExplicitFrame) {
  serve::DaemonOptions opt = daemon_options();
  opt.listen_address = "127.0.0.1:0";
  opt.max_connections = 2;
  start_daemon(opt);
  const std::string ep = read_tcp_endpoint();
  ASSERT_FALSE(ep.empty());

  serve::ServeClient a, b;
  std::string err;
  ASSERT_TRUE(a.connect(ep, &err)) << err;
  ASSERT_TRUE(b.connect(ep, &err)) << err;
  // Round-trip on `a` so the daemon has provably registered both (and
  // processed the ready-probe's disconnect) before the third knocks.
  ASSERT_TRUE(a.send(WireType::kJobQuery, "q 0000000000000000", &err)) << err;
  WireFrame f;
  ASSERT_TRUE(a.recv(&f, 15000.0, &err)) << err;

  serve::ServeClient c;
  ASSERT_TRUE(c.connect(ep, &err)) << err;  // the accept queue takes it...
  WireFrame rej;
  ASSERT_TRUE(c.recv(&rej, 15000.0, &err)) << err;
  EXPECT_EQ(rej.type, WireType::kJobRejected);
  EXPECT_EQ(rej.payload.rfind("- conn-limit ", 0), 0u) << rej.payload;
  EXPECT_FALSE(c.recv(&rej, 15000.0, &err));  // ...then closes it
  EXPECT_NE(err.find("closed"), std::string::npos) << err;

  // Freeing a slot re-opens admission.
  a.close();
  for (double waited = 0.0; waited < 15000.0; waited += 100.0) {
    serve::ServeClient d;
    if (d.connect(ep, &err) &&
        d.send(WireType::kJobQuery, "q 0000000000000000", &err) &&
        d.recv(&f, 2000.0, &err))
      return;
    ::usleep(100000);
  }
  FAIL() << "slot never freed after a client disconnect";
}

TEST_F(ServeFixture, SlowLorisHalfFrameIsEvicted) {
  serve::DaemonOptions opt = daemon_options();
  opt.listen_address = "127.0.0.1:0";
  opt.io_timeout_ms = 500.0;
  start_daemon(opt);
  const std::string ep = read_tcp_endpoint();
  ASSERT_FALSE(ep.empty());

  const std::string frame =
      wire_encode_frame(WireType::kJobQuery, "q 00000000000000aa");
  const int fd = raw_tcp_connect(ep);
  ASSERT_GE(fd, 0);
  // Half a frame, then silence: the read deadline must evict us.
  ASSERT_EQ(::write(fd, frame.data(), frame.size() / 2),
            static_cast<ssize_t>(frame.size() / 2));
  EXPECT_TRUE(drains_to_eof(fd, 15000.0));
  ::close(fd);

  // An honest client on the same daemon is unaffected (idle connections
  // have nothing buffered, so the deadline does not apply to them).
  serve::ServeClient client;
  std::string err;
  ASSERT_TRUE(client.connect(ep, &err)) << err;
  ASSERT_TRUE(client.send(WireType::kJobQuery, "q 00000000000000aa", &err))
      << err;
  WireFrame f;
  ASSERT_TRUE(client.recv(&f, 15000.0, &err)) << err;
  EXPECT_EQ(f.type, WireType::kJobRejected);  // unknown-job — but served
}

TEST_F(ServeFixture, RestartAfterSigkillSweepsStaleSocketAndPidFile) {
  start_daemon(daemon_options());
  kill_daemon();

  // SIGKILL leaves both boot artifacts behind...
  struct stat st;
  EXPECT_EQ(::stat(socket_.c_str(), &st), 0);
  EXPECT_EQ(::stat((jobs_ + "/daemon.pid").c_str(), &st), 0);

  // ...and a cold restart must sweep them and come up serving.
  start_daemon(daemon_options());
  const int status = drain_daemon();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(ServeFixture, SecondDaemonRefusesTheLiveJobsDir) {
  start_daemon(daemon_options());
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    serve::ServeDaemon second(daemon_options());
    ::_exit(second.run());
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);  // refused: the pid file is live
}

TEST_F(ServeFixture, OversizedOrUnreadableDesignRefsDieAtAdmission) {
  serve::DaemonOptions opt = daemon_options();
  opt.max_job_nets = 100;
  start_daemon(opt);

  JobSpec spec;
  std::string err;
  ASSERT_TRUE(JobSpec::parse("nets=500", &spec, &err)) << err;
  serve::ServeClient client;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  const std::string reason = submit_nowait(client, spec);
  EXPECT_EQ(reason.rfind("oversized", 0), 0u) << reason;
  EXPECT_EQ(query_status(spec.key()), "unknown-job");  // no trace

  // An unreadable design= file dies at the same gate (raw frame: the
  // client-side parse would have refused to build this spec at all).
  ASSERT_TRUE(client.send(WireType::kJobSubmit,
                          "traw design=/nonexistent/xtv_missing.xtvds",
                          &err))
      << err;
  for (;;) {
    WireFrame f;
    ASSERT_TRUE(client.recv(&f, 15000.0, &err)) << err;
    if (f.payload.rfind("traw ", 0) != 0) continue;
    EXPECT_EQ(f.type, WireType::kJobRejected);
    EXPECT_EQ(f.payload.rfind("traw bad-spec ", 0), 0u) << f.payload;
    break;
  }
}

TEST_F(ServeFixture, PerJobDesignMatchesItsOwnDirectVerify) {
  start_daemon(daemon_options());
  JobSpec spec;
  std::string err;
  ASSERT_TRUE(JobSpec::parse("nets=40", &spec, &err)) << err;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  serve::JobResult result;
  ASSERT_TRUE(serve::submit_and_wait(client, spec, 120000.0, &result, &err))
      << err;
  EXPECT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.duplicate_findings, 0u);
  EXPECT_GT(result.findings.size(), 0u);

  // Reference on the job's OWN 40-net generated design — not the
  // daemon's 60-net resident one.
  DspChipOptions chip;
  chip.net_count = 40;
  const ChipDesign design = generate_dsp_chip(ref().lib, chip);
  VerifierOptions vo = spec.to_options();
  vo.processes = 0;
  vo.threads = 1;
  ChipVerifier verifier(ref().extractor, ref().chars);
  const VerificationReport want = verifier.verify(design, vo);
  ASSERT_EQ(result.findings.size(), want.findings.size());
  for (const VictimFinding& w : want.findings) {
    SCOPED_TRACE("victim net " + std::to_string(w.net));
    const auto it = result.findings.find(w.net);
    ASSERT_NE(it, result.findings.end());
    EXPECT_EQ(it->second.finding.peak, w.peak);
    EXPECT_EQ(it->second.finding.status, w.status);
  }
}

TEST_F(ServeFixture, MemoryPressureShedsTheYoungestAndRequeues) {
  const std::string rss = dir_ + "/rss_mb";
  {
    std::ofstream out(rss);
    out << "10\n";
  }
  EnvGuard rss_env("XTV_TEST_SERVE_RSS_FILE", rss);
  // Both first runners stall before their first heartbeat, holding the
  // two run slots while the test turns the pressure knob.
  EnvGuard stall("XTV_TEST_SERVE_RUNNER_STALL", "2");
  serve::DaemonOptions opt = daemon_options();
  opt.max_running = 2;
  opt.global_mem_soft_mb = 100.0;
  start_daemon(opt);

  // Explicit reservations that fit the budget TOGETHER (the structural
  // estimate for a 2-process job exceeds 100 MiB on its own, which would
  // serialize the jobs and leave nothing to shed).
  JobSpec a, b;
  std::string err;
  ASSERT_TRUE(JobSpec::parse("audit_seed=1 mem_mb=40", &a, &err)) << err;
  ASSERT_TRUE(JobSpec::parse("audit_seed=2 mem_mb=40", &b, &err)) << err;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect(socket_, &err)) << err;
  ASSERT_EQ(submit_nowait(client, a), "");
  wait_for_state(a.key(), "running");
  ASSERT_EQ(submit_nowait(client, b), "");
  wait_for_state(b.key(), "running");  // b launched strictly after a

  // Blow through the soft budget: the daemon must shed the YOUNGEST job
  // (b) back to queued with its attempt count refunded — and leave a
  // alone (shedding never reduces the service below one runner).
  {
    std::ofstream out(rss);
    out << "500\n";
  }
  wait_for_state(b.key(), "queued");
  EXPECT_EQ(parse_attempts(query_status(b.key())), 0u);
  EXPECT_EQ(query_status(a.key()).rfind("running", 0), 0u)
      << query_status(a.key());

  // While pressure holds, b stays parked (the launch gate reads the same
  // RSS signal).
  ::usleep(300000);
  EXPECT_EQ(query_status(b.key()).rfind("queued", 0), 0u)
      << query_status(b.key());

  // Pressure gone: b relaunches (its stall token is long spent) and
  // completes normally.
  {
    std::ofstream out(rss);
    out << "10\n";
  }
  wait_for_state(b.key(), "done", 120000.0);
}

}  // namespace
}  // namespace xtv
