// Unit + property tests for sparse storage, orderings, and the
// Gilbert–Peierls sparse LU that underpins the SPICE-class engine.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_lu.h"
#include "linalg/ordering.h"
#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"
#include "util/prng.h"

namespace xtv {
namespace {

// Random sparse diagonally-dominant matrix (circuit-like).
SparseMatrix random_circuit_matrix(std::size_t n, double density, Prng& rng) {
  TripletList t(n, n);
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.uniform() < density) {
        const double g = rng.uniform(0.1, 2.0);
        t.add(i, j, -g);
        diag[i] += g;
      }
    }
    t.add(i, i, diag[i] + rng.uniform(0.5, 1.5));
  }
  return SparseMatrix::from_triplets(t);
}

TEST(SparseMatrix, TripletsAccumulateDuplicates) {
  TripletList t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 1, -1.0);
  SparseMatrix m = SparseMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(SparseMatrix, DropZerosOnCancellation) {
  TripletList t(2, 2);
  t.add(0, 1, 1.0);
  t.add(0, 1, -1.0);
  t.add(1, 1, 2.0);
  EXPECT_EQ(SparseMatrix::from_triplets(t, /*drop_zeros=*/true).nnz(), 1u);
  EXPECT_EQ(SparseMatrix::from_triplets(t, /*drop_zeros=*/false).nnz(), 2u);
}

TEST(SparseMatrix, RowIndicesSortedWithinColumns) {
  TripletList t(4, 2);
  t.add(3, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 0, 3.0);
  SparseMatrix m = SparseMatrix::from_triplets(t);
  ASSERT_EQ(m.col_ptr()[1], 3u);
  EXPECT_EQ(m.row_idx()[0], 0u);
  EXPECT_EQ(m.row_idx()[1], 2u);
  EXPECT_EQ(m.row_idx()[2], 3u);
}

TEST(SparseMatrix, MatvecMatchesDense) {
  Prng rng(1);
  SparseMatrix m = random_circuit_matrix(20, 0.2, rng);
  DenseMatrix d = m.to_dense();
  Vector x(20);
  for (auto& v : x) v = rng.uniform(-1, 1);
  EXPECT_LT(max_abs_diff(m.matvec(x), matvec(d, x)), 1e-13);
  EXPECT_LT(max_abs_diff(m.matvec_transposed(x), matvec_transposed(d, x)), 1e-13);
}

TEST(Ordering, IdentityAndInverse) {
  auto id = identity_order(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(id[i], i);
  std::vector<std::size_t> p = {2, 0, 1};
  auto inv = invert_permutation(p);
  EXPECT_EQ(inv[2], 0u);
  EXPECT_EQ(inv[0], 1u);
  EXPECT_EQ(inv[1], 2u);
}

TEST(Ordering, MinDegreeIsPermutation) {
  Prng rng(2);
  SparseMatrix m = random_circuit_matrix(30, 0.1, rng);
  auto p = min_degree_order(m);
  ASSERT_EQ(p.size(), 30u);
  std::vector<bool> seen(30, false);
  for (std::size_t v : p) {
    ASSERT_LT(v, 30u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Ordering, MinDegreeReducesFillOnGrid) {
  // 2D grid Laplacian: natural order has much more fill than min-degree.
  const std::size_t k = 12;  // 12x12 grid = 144 nodes
  const std::size_t n = k * k;
  TripletList t(n, n);
  auto id = [k](std::size_t r, std::size_t c) { return r * k + c; };
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      double deg = 0.0;
      auto stamp = [&](std::size_t other) {
        t.add(id(r, c), other, -1.0);
        deg += 1.0;
      };
      if (r > 0) stamp(id(r - 1, c));
      if (r + 1 < k) stamp(id(r + 1, c));
      if (c > 0) stamp(id(r, c - 1));
      if (c + 1 < k) stamp(id(r, c + 1));
      t.add(id(r, c), id(r, c), deg + 0.01);
    }
  }
  SparseMatrix m = SparseMatrix::from_triplets(t);
  SparseLu natural(m);
  SparseLu ordered(m, min_degree_order(m));
  EXPECT_LT(ordered.factor_nnz(), natural.factor_nnz());
}

TEST(SparseLu, SolvesSmallDenseReference) {
  TripletList t(3, 3);
  t.add(0, 0, 4.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 3.0);
  t.add(1, 2, 1.0);
  t.add(2, 1, 1.0);
  t.add(2, 2, 2.0);
  SparseMatrix m = SparseMatrix::from_triplets(t);
  SparseLu lu(m);
  DenseLu ref(m.to_dense());
  Vector b = {1.0, -2.0, 0.5};
  EXPECT_LT(max_abs_diff(lu.solve(b), ref.solve(b)), 1e-12);
}

TEST(SparseLu, RequiresPivoting) {
  // Zero diagonal forces row exchanges.
  TripletList t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 2.0);
  SparseMatrix m = SparseMatrix::from_triplets(t);
  SparseLu lu(m);
  Vector x = lu.solve({3.0, 4.0});
  EXPECT_NEAR(x[0], 2.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(SparseLu, ThrowsOnSingular) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 1.0);  // column 1 empty -> structurally singular
  SparseMatrix m = SparseMatrix::from_triplets(t);
  EXPECT_THROW(SparseLu{m}, std::runtime_error);
}

TEST(SparseLu, RefactorWithNewValues) {
  Prng rng(3);
  SparseMatrix m1 = random_circuit_matrix(25, 0.15, rng);
  SparseLu lu(m1, min_degree_order(m1));
  // Same pattern, scaled values.
  TripletList t(25, 25);
  for (std::size_t c = 0; c < 25; ++c)
    for (std::size_t p = m1.col_ptr()[c]; p < m1.col_ptr()[c + 1]; ++p)
      t.add(m1.row_idx()[p], c, 2.0 * m1.values()[p]);
  SparseMatrix m2 = SparseMatrix::from_triplets(t);
  lu.refactor(m2);
  Vector b(25);
  for (auto& v : b) v = rng.uniform(-1, 1);
  EXPECT_LT(max_abs_diff(lu.solve(b), DenseLu(m2.to_dense()).solve(b)), 1e-10);
}

// Property sweep: sparse LU matches dense LU on random circuit-like
// matrices of varying size and density.
class SparseLuProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(SparseLuProperty, MatchesDenseSolve) {
  const auto [n, density] = GetParam();
  Prng rng(1000 + n * 7 + static_cast<std::size_t>(density * 100));
  SparseMatrix m = random_circuit_matrix(n, density, rng);
  SparseLu lu(m, min_degree_order(m));
  DenseLu ref(m.to_dense());
  for (int trial = 0; trial < 3; ++trial) {
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-1, 1);
    const Vector x = lu.solve(b);
    const Vector xr = ref.solve(b);
    EXPECT_LT(max_abs_diff(x, xr), 1e-8) << "n=" << n << " density=" << density;
    // Residual check against the matrix itself.
    EXPECT_LT(max_abs_diff(m.matvec(x), b), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseLuProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 10, 40, 120),
                       ::testing::Values(0.05, 0.2, 0.6)));

TEST(SparseLu, LargeTridiagonalSystem) {
  // RC-ladder-like tridiagonal system, n = 2000.
  const std::size_t n = 2000;
  TripletList t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0 + 1e-3);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  SparseMatrix m = SparseMatrix::from_triplets(t);
  SparseLu lu(m, min_degree_order(m));
  Vector xref(n, 1.0);
  const Vector b = m.matvec(xref);
  EXPECT_LT(max_abs_diff(lu.solve(b), xref), 1e-8);
  // Tridiagonal factors should stay O(n): no catastrophic fill.
  EXPECT_LT(lu.factor_nnz(), 4 * n);
}

}  // namespace
}  // namespace xtv
