// Tests for the core verification machinery: pruning, glitch analysis
// (MOR-vs-SPICE agreement — the Figure-3 property), delay analysis
// (Table-2 ordering), and aggressor alignment.
#include <gtest/gtest.h>

#include <cmath>

#include "core/delay_analyzer.h"
#include "core/glitch_analyzer.h"
#include "core/pruning.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

// Shared expensive fixtures (characterization runs once per suite).
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
  }
  static void TearDownTestSuite() {
    delete chars_;
    delete lib_;
    delete extractor_;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;

  static VictimSpec victim(double len_um, const std::string& cell = "INV_X1") {
    VictimSpec v;
    v.route = {len_um * units::um, 0.0};
    v.driver_cell = cell;
    v.held_high = true;
    v.receiver_cap = 10e-15;
    return v;
  }
  static AggressorSpec aggressor(double len_um, double overlap_um,
                                 const std::string& cell = "BUF_X8") {
    AggressorSpec a;
    a.route = {len_um * units::um, 0.0};
    a.driver_cell = cell;
    a.rising = false;  // pulls a high victim down
    a.input_slew = 0.1e-9;
    a.receiver_cap = 10e-15;
    a.run = {0, 0, overlap_um * units::um, 0.0, 0.0, 0.0};
    a.window = TimingWindow::of(0.0, 2e-9);
    return a;
  }
};

CellLibrary* CoreFixture::lib_ = nullptr;
CharacterizedLibrary* CoreFixture::chars_ = nullptr;
Extractor* CoreFixture::extractor_ = nullptr;

// ----------------------------------------------------------------- pruning

NetSummary make_net(std::size_t id, double cg, double rdrv) {
  NetSummary n;
  n.id = id;
  n.ground_cap = cg;
  n.driver_resistance = rdrv;
  return n;
}

TEST(Pruning, KeepsStrongDropsWeak) {
  std::vector<NetSummary> nets;
  nets.push_back(make_net(0, 100e-15, 1e3));
  nets.push_back(make_net(1, 100e-15, 1e3));
  nets.push_back(make_net(2, 100e-15, 1e3));
  nets[0].couplings = {{1, 50e-15}, {2, 0.8e-15}};  // strong, weak

  PruningOptions opt;
  opt.ratio_threshold = 0.02;
  const PruneResult res = prune_couplings(nets, opt);
  ASSERT_EQ(res.retained[0].size(), 1u);
  EXPECT_EQ(res.retained[0][0].other, 1u);
}

TEST(Pruning, AbsoluteFloorDropsTinyCaps) {
  std::vector<NetSummary> nets;
  nets.push_back(make_net(0, 1e-15, 1e3));  // tiny total -> huge ratios
  nets.push_back(make_net(1, 1e-15, 1e3));
  nets[0].couplings = {{1, 0.3e-15}};
  const PruneResult res = prune_couplings(nets, {});
  EXPECT_TRUE(res.retained[0].empty());
}

TEST(Pruning, DriverStrengthRaisesEffectiveRatio) {
  // Same cap; a weak victim holder vs strong aggressor must rank higher.
  NetSummary victim_weak = make_net(0, 100e-15, 4e3);
  NetSummary victim_strong = make_net(0, 100e-15, 0.25e3);
  NetSummary agg = make_net(1, 100e-15, 1e3);
  const double r_weak = coupling_ratio(victim_weak, agg, 5e-15, true);
  const double r_strong = coupling_ratio(victim_strong, agg, 5e-15, true);
  EXPECT_GT(r_weak, r_strong);
  // Disabled weighting: both equal the plain ratio.
  EXPECT_DOUBLE_EQ(coupling_ratio(victim_weak, agg, 5e-15, false),
                   coupling_ratio(victim_strong, agg, 5e-15, false));
}

TEST(Pruning, MaxAggressorCap) {
  std::vector<NetSummary> nets;
  nets.push_back(make_net(0, 10e-15, 1e3));
  for (std::size_t i = 1; i <= 20; ++i) {
    nets.push_back(make_net(i, 10e-15, 1e3));
    nets[0].couplings.push_back({i, 5e-15});
  }
  PruningOptions opt;
  opt.ratio_threshold = 0.01;  // let the count cap be the binding limit
  opt.max_aggressors = 12;
  const PruneResult res = prune_couplings(nets, opt);
  EXPECT_EQ(res.retained[0].size(), 12u);
}

TEST(Pruning, StatsReflectClusterShrink) {
  // Chain of 10 nets with strong + weak couplings: before = one big
  // component, after = small ones.
  std::vector<NetSummary> nets;
  for (std::size_t i = 0; i < 10; ++i) nets.push_back(make_net(i, 100e-15, 1e3));
  for (std::size_t i = 0; i + 1 < 10; ++i) {
    const double cap = (i % 3 == 0) ? 30e-15 : 0.9e-15;  // strong every 3rd
    nets[i].couplings.push_back({i + 1, cap});
    nets[i + 1].couplings.push_back({i, cap});
  }
  const PruneResult res = prune_couplings(nets, {});
  EXPECT_GT(res.stats.avg_cluster_before, res.stats.avg_cluster_after);
  EXPECT_GT(res.stats.avg_cluster_after, 0.0);
  EXPECT_LT(res.stats.couplings_after, res.stats.couplings_before);
}

TEST(Pruning, RejectsMisnumberedNets) {
  std::vector<NetSummary> nets;
  nets.push_back(make_net(5, 1e-15, 1e3));
  EXPECT_THROW(prune_couplings(nets, {}), std::runtime_error);
}

// ------------------------------------------------------------------ glitch

TEST_F(CoreFixture, GlitchGrowsWithCoupledLength) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;
  double prev = 0.0;
  for (double len : {100.0, 500.0, 2000.0}) {
    const GlitchResult r = analyzer.analyze(
        victim(len), {aggressor(len, len)}, opt);
    EXPECT_LT(r.peak, 0.0) << "falling aggressor pulls high victim down";
    EXPECT_GT(std::fabs(r.peak), prev) << "len=" << len;
    prev = std::fabs(r.peak);
  }
}

TEST_F(CoreFixture, MorMatchesSpiceWithFixedResistorDrivers) {
  // The Figure-3 property: identical linear circuits, two engines,
  // sub-percent peak error.
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kFixedResistor;
  opt.fixed_resistance = 1e3;
  opt.align_aggressors = false;
  opt.dt = 1e-12;
  const VictimSpec v = victim(800);
  const std::vector<AggressorSpec> aggs = {aggressor(800, 700),
                                           aggressor(600, 400, "INV_X4")};
  const GlitchResult mor = analyzer.analyze(v, aggs, opt);
  const GlitchResult spice = analyzer.analyze_spice(v, aggs, opt);
  ASSERT_GT(std::fabs(spice.peak), 0.05);
  EXPECT_NEAR(mor.peak / spice.peak, 1.0, 0.02);
}

TEST_F(CoreFixture, NonlinearModelTracksTransistorReference) {
  // The Table-4 property: table model within ~10-20% of transistor-level
  // SPICE on a solid glitch.
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.align_aggressors = false;
  opt.dt = 1e-12;
  const VictimSpec v = victim(1000);
  const std::vector<AggressorSpec> aggs = {aggressor(1000, 900)};

  opt.driver_model = DriverModelKind::kNonlinearTable;
  const GlitchResult table = analyzer.analyze(v, aggs, opt);
  opt.driver_model = DriverModelKind::kTransistor;
  const GlitchResult golden = analyzer.analyze_spice(v, aggs, opt);

  ASSERT_GT(std::fabs(golden.peak), 0.2);
  EXPECT_NEAR(table.peak / golden.peak, 1.0, 0.25);
}

TEST_F(CoreFixture, StrongerAggressorMakesBiggerGlitch) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;
  const GlitchResult weak =
      analyzer.analyze(victim(600), {aggressor(600, 500, "INV_X1")}, opt);
  const GlitchResult strong =
      analyzer.analyze(victim(600), {aggressor(600, 500, "INV_X16")}, opt);
  EXPECT_GT(std::fabs(strong.peak), std::fabs(weak.peak));
}

TEST_F(CoreFixture, WeakerVictimHolderSuffersMore) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;
  const GlitchResult weak_holder =
      analyzer.analyze(victim(600, "INV_X1"), {aggressor(600, 500)}, opt);
  const GlitchResult strong_holder =
      analyzer.analyze(victim(600, "INV_X8"), {aggressor(600, 500)}, opt);
  EXPECT_GT(std::fabs(weak_holder.peak), std::fabs(strong_holder.peak));
}

TEST_F(CoreFixture, AlignmentNeverReducesTheGlitch) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.dt = 1e-12;
  VictimSpec v = victim(800);
  // Two aggressors with different latencies (different lengths) and
  // staggered windows.
  std::vector<AggressorSpec> aggs = {aggressor(400, 350), aggressor(1200, 700)};
  aggs[0].window = TimingWindow::of(0.2e-9, 1.5e-9);
  aggs[1].window = TimingWindow::of(0.4e-9, 2.0e-9);

  opt.align_aggressors = false;
  const GlitchResult unaligned = analyzer.analyze(v, aggs, opt);
  opt.align_aggressors = true;
  const GlitchResult aligned = analyzer.analyze(v, aggs, opt);
  EXPECT_GE(std::fabs(aligned.peak), std::fabs(unaligned.peak) * 0.999);
  // Chosen switch times respect the windows.
  for (std::size_t k = 0; k < aggs.size(); ++k) {
    EXPECT_GE(aligned.switch_times[k], aggs[k].window.start - 1e-15);
    EXPECT_LE(aligned.switch_times[k], aggs[k].window.end + 1e-15);
  }
}

TEST_F(CoreFixture, MorPathRejectsTransistorModel) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kTransistor;
  EXPECT_THROW(analyzer.analyze(victim(100), {aggressor(100, 80)}, opt),
               std::runtime_error);
}

// ------------------------------------------------------------------- delay

TEST_F(CoreFixture, CoupledDelayWorseThanDecoupled) {
  // The Table-2 ordering: opposite-phase aggressors deteriorate the delay;
  // same-direction switching is optimistic.
  DelayAnalyzer analyzer(*extractor_, *chars_);
  DelayAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kLinearResistor;

  VictimSpec v = victim(2000);
  std::vector<AggressorSpec> aggs = {aggressor(2000, 2000),
                                     aggressor(2000, 2000)};
  const CoupledDelayResult r = analyzer.analyze(v, true, aggs, opt);
  EXPECT_GT(r.delay_coupled, r.delay_decoupled);
  EXPECT_LT(r.delay_same_dir, r.delay_decoupled);
  EXPECT_GT(r.delay_decoupled, 0.0);
}

TEST_F(CoreFixture, DelayDeteriorationGrowsWithLength) {
  DelayAnalyzer analyzer(*extractor_, *chars_);
  DelayAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kLinearResistor;
  double prev_ratio = 0.0;
  for (double len : {500.0, 2000.0}) {
    VictimSpec v = victim(len);
    std::vector<AggressorSpec> aggs = {aggressor(len, len), aggressor(len, len)};
    const CoupledDelayResult r = analyzer.analyze(v, false, aggs, opt);
    const double ratio = r.delay_coupled / r.delay_decoupled;
    EXPECT_GT(ratio, prev_ratio * 0.99) << "len=" << len;
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 1.05);  // clear deterioration at 2 mm
}

}  // namespace
}  // namespace xtv
