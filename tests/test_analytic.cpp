// Tests for the analytic estimates (Devgan noise bound, Sakurai delay
// expressions) and the verifier's noise screen built on them. The key
// property: the bound must be CONSERVATIVE — never below the simulated
// peak — across a parameterized sweep, or the screen would hide real
// violations.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chipgen/dsp_chip.h"
#include "core/analytic_estimates.h"
#include "core/glitch_analyzer.h"
#include "core/verifier.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

class AnalyticFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 9;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
  }
  static void TearDownTestSuite() {
    delete chars_;
    delete lib_;
    delete extractor_;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
};

CellLibrary* AnalyticFixture::lib_ = nullptr;
CharacterizedLibrary* AnalyticFixture::chars_ = nullptr;
Extractor* AnalyticFixture::extractor_ = nullptr;

TEST(DevganBound, BasicFormulaAndClamp) {
  // 1 kOhm holder, 100 fF coupling, 10 V/ns aggressor: bound = 1 V.
  EXPECT_NEAR(devgan_noise_bound(1e3, 100e-15, 1e10, 3.0), 1.0, 1e-12);
  // Clamps at Vdd.
  EXPECT_DOUBLE_EQ(devgan_noise_bound(1e6, 100e-15, 1e10, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(devgan_noise_bound(1e3, 0.0, 1e10, 3.0), 0.0);
}

TEST(SakuraiDelay, MatchesSimulatedDistributedLine) {
  // Driver resistance + distributed wire + load: the closed form must land
  // within ~15% of the simulated 50% delay (its documented accuracy).
  Extractor ex(kTech);
  const NetRoute route{1500 * units::um, 0.0};
  const double rd = 500.0;
  const double cl = 30e-15;
  const double rw = ex.route_resistance(route);
  const double cw = ex.route_ground_cap(route);

  RcNetwork net = ex.extract_net(route);
  Circuit c;
  const int drv = c.add_node("drv");
  const int rcv = c.add_node("rcv");
  net.export_to(c, {drv, rcv}, /*include_port_conductances=*/false);
  const int src = c.add_node("src");
  c.add_vsource(src, Circuit::ground(), SourceWave::ramp(0.0, 3.0, 0.1e-9, 1e-12));
  c.add_resistor(src, drv, rd);
  c.add_capacitor(rcv, Circuit::ground(), cl);
  Simulator sim(c);
  TransientOptions opt;
  opt.tstop = 4e-9;
  opt.dt = 1e-12;
  const Waveform w = sim.transient(opt, {rcv}).probes[0];
  const auto t50 = w.crossing_time(1.5, true);
  ASSERT_TRUE(t50.has_value());
  const double measured = *t50 - 0.1e-9;
  const double predicted = sakurai_delay50(rd, rw, cw, cl);
  EXPECT_NEAR(predicted / measured, 1.0, 0.15);
  // And the 90% time is larger than the 50% time by construction.
  EXPECT_GT(sakurai_rise90(rd, rw, cw, cl), predicted);
}

// The conservatism sweep: for many victim/aggressor configurations, the
// Devgan bound must be >= the simulated glitch peak.
class DevganConservative
    : public AnalyticFixture,
      public ::testing::WithParamInterface<std::tuple<double, const char*, const char*>> {};

TEST_P(DevganConservative, BoundDominatesSimulatedPeak) {
  const auto [len_um, vic_cell, agg_cell] = GetParam();
  VictimSpec victim;
  victim.route = {len_um * units::um, 0.0};
  victim.driver_cell = vic_cell;
  victim.held_high = true;
  victim.receiver_cap = 10e-15;
  AggressorSpec agg;
  agg.route = {len_um * units::um, 0.0};
  agg.driver_cell = agg_cell;
  agg.rising = false;
  agg.input_slew = 0.1e-9;
  agg.receiver_cap = 10e-15;
  agg.run = {0, 0, 0.8 * len_um * units::um, 0.0, 0.1 * len_um * units::um,
             0.1 * len_um * units::um};

  const double bound = devgan_noise_bound(victim, agg, *extractor_, *chars_);

  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;
  const GlitchResult res = analyzer.analyze(victim, {agg}, opt);

  EXPECT_GE(bound, std::fabs(res.peak) * 0.999)
      << vic_cell << "/" << agg_cell << " @ " << len_um << "um: bound "
      << bound << " vs peak " << res.peak;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DevganConservative,
    ::testing::Combine(::testing::Values(200.0, 800.0, 2500.0),
                       ::testing::Values("INV_X1", "INV_X8"),
                       ::testing::Values("INV_X4", "BUF_X8")));

TEST_F(AnalyticFixture, VerifierNoiseScreenIsSafeAndEffective) {
  DspChipOptions chip_opt;
  chip_opt.net_count = 120;
  chip_opt.tracks = 10;
  const ChipDesign design = generate_dsp_chip(*lib_, chip_opt);

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions base;
  base.glitch.align_aggressors = false;
  base.glitch.tstop = 3e-9;

  const VerificationReport full = verifier.verify(design, base);
  VerifierOptions screened = base;
  screened.use_noise_screen = true;
  const VerificationReport fast = verifier.verify(design, screened);

  // Safety: the set of violating nets must be identical — the screen may
  // only remove clusters that cannot violate.
  std::set<std::size_t> full_viol, fast_viol;
  for (const auto& f : full.findings)
    if (f.violation) full_viol.insert(f.net);
  for (const auto& f : fast.findings)
    if (f.violation) fast_viol.insert(f.net);
  EXPECT_EQ(fast_viol, full_viol);
  // And it removed real work.
  EXPECT_GT(fast.victims_screened_out, 0u);
  EXPECT_EQ(fast.victims_analyzed + fast.victims_screened_out,
            full.victims_analyzed);
}

}  // namespace
}  // namespace xtv
