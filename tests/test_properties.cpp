// Cross-cutting physical-property tests: reciprocity and passivity of
// reduced models, superposition in the linear analysis regime, worst-case
// monotonicities, and conservation checks on the golden engine — the
// invariants a signal-integrity tool must never violate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/glitch_analyzer.h"
#include "mor/reduced_sim.h"
#include "mor/sympvl.h"
#include "spice/simulator.h"
#include "util/prng.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

class PropertyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
  }
  static void TearDownTestSuite() {
    delete chars_;
    delete lib_;
    delete extractor_;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
};

CellLibrary* PropertyFixture::lib_ = nullptr;
CharacterizedLibrary* PropertyFixture::chars_ = nullptr;
Extractor* PropertyFixture::extractor_ = nullptr;

// ------------------------------------------------------------- reciprocity

// RC networks are reciprocal: the port transfer matrix H(s) must be
// symmetric at every s, and the reduction must preserve that.
class Reciprocity : public ::testing::TestWithParam<int> {};

TEST_P(Reciprocity, TransferMatrixIsSymmetric) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  Extractor ex(kTech);
  std::vector<NetRoute> nets;
  std::vector<CouplingRun> runs;
  const int n_nets = rng.uniform_int(2, 4);
  for (int k = 0; k < n_nets; ++k)
    nets.push_back({rng.log_uniform(100e-6, 1500e-6), 0.0});
  for (int k = 1; k < n_nets; ++k) {
    const double ov = 0.5 * std::min(nets[0].length,
                                     nets[static_cast<std::size_t>(k)].length);
    runs.push_back({0, static_cast<std::size_t>(k), ov, 0.0, 0.0, 0.0});
  }
  RcNetwork net = ex.extract_cluster(nets, runs);
  for (std::size_t p = 0; p < net.port_count(); ++p)
    net.stamp_port_conductance(p, rng.log_uniform(1e-6, 1e-2));

  const ReducedModel model = sympvl_reduce(net);
  for (double s : {0.0, 1e8, 1e10}) {
    const DenseMatrix h = model.transfer(s);
    for (std::size_t i = 0; i < h.rows(); ++i)
      for (std::size_t j = i + 1; j < h.cols(); ++j)
        EXPECT_NEAR(h(i, j), h(j, i), 1e-9 * (std::fabs(h(i, j)) + 1e-12))
            << "s=" << s;
  }
  EXPECT_TRUE(model.is_passive());
}

INSTANTIATE_TEST_SUITE_P(RandomClusters, Reciprocity, ::testing::Range(0, 8));

// ------------------------------------------------------------ superposition

TEST_F(PropertyFixture, LinearGlitchesSuperposeExactly) {
  // On one fixed linear network, the victim response to two simultaneous
  // aggressor injections equals the sum of the individual responses —
  // exact superposition, checked pointwise on the reduced model.
  Extractor& ex = *extractor_;
  RcNetwork net = ex.extract_cluster(
      {{1000e-6, 0.0}, {800e-6, 0.0}, {500e-6, 0.0}},
      {{0, 1, 600e-6, 0.0, 0.0, 0.0}, {0, 2, 300e-6, 0.0, 0.0, 0.0}});
  net.stamp_port_conductance(0, 1e-3);   // victim holder
  net.stamp_port_conductance(2, 5e-3);   // aggressor drivers
  net.stamp_port_conductance(4, 5e-3);
  for (std::size_t p : {1u, 3u, 5u}) net.stamp_port_conductance(p, 1e-9);
  const ReducedModel model = sympvl_reduce(net);

  const SourceWave kick1 = SourceWave::pwl({{0.0, 15e-3}, {0.5e-9, 15e-3},
                                            {0.6e-9, 0.0}});
  const SourceWave kick2 = SourceWave::pwl({{0.0, 15e-3}, {0.5e-9, 15e-3},
                                            {0.8e-9, 0.0}});
  auto run = [&](bool use1, bool use2) {
    ReducedSimulator sim(model);
    if (use1) sim.set_input(2, kick1);
    if (use2) sim.set_input(4, kick2);
    ReducedSimOptions opt;
    opt.tstop = 3e-9;
    opt.dt = 2e-12;
    return sim.run(opt).port_voltages[1];  // victim receiver
  };
  const Waveform both = run(true, true);
  const Waveform only1 = run(true, false);
  const Waveform only2 = run(false, true);
  for (double t = 0.0; t < 3e-9; t += 0.05e-9)
    EXPECT_NEAR(both.at(t), only1.at(t) + only2.at(t), 1e-6) << "t=" << t;
}

// ------------------------------------------------------------ monotonicity

class GlitchMonotonicity
    : public PropertyFixture,
      public ::testing::WithParamInterface<double> {};

TEST_P(GlitchMonotonicity, CouplingOverlapIncreasesGlitch) {
  const double len_um = GetParam();
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  VictimSpec victim;
  victim.route = {len_um * units::um, 0.0};
  victim.driver_cell = "INV_X2";
  victim.held_high = true;
  victim.receiver_cap = 10e-15;

  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;

  double prev = 0.0;
  for (double frac : {0.25, 0.5, 1.0}) {
    AggressorSpec agg;
    agg.route = {len_um * units::um, 0.0};
    agg.driver_cell = "BUF_X8";
    agg.rising = false;
    agg.input_slew = 0.1e-9;
    agg.receiver_cap = 10e-15;
    agg.run = {0, 0, frac * len_um * units::um, 0.0, 0.0, 0.0};
    const GlitchResult res = analyzer.analyze(victim, {agg}, opt);
    EXPECT_GT(std::fabs(res.peak), prev) << "overlap " << frac;
    prev = std::fabs(res.peak);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, GlitchMonotonicity,
                         ::testing::Values(300.0, 1000.0, 2500.0));

TEST_F(PropertyFixture, FasterAggressorEdgeMakesBiggerGlitch) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  VictimSpec victim;
  victim.route = {800 * units::um, 0.0};
  victim.driver_cell = "INV_X1";
  victim.held_high = true;
  victim.receiver_cap = 10e-15;
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;

  double prev = 1e9;
  for (double slew : {0.05e-9, 0.3e-9, 0.8e-9}) {
    AggressorSpec agg;
    agg.route = {800 * units::um, 0.0};
    agg.driver_cell = "INV_X8";
    agg.rising = false;
    agg.input_slew = slew;
    agg.receiver_cap = 10e-15;
    agg.run = {0, 0, 700 * units::um, 0.0, 0.0, 0.0};
    const GlitchResult res = analyzer.analyze(victim, {agg}, opt);
    EXPECT_LT(std::fabs(res.peak), prev + 1e-6) << "slew " << slew;
    prev = std::fabs(res.peak);
  }
}

// ------------------------------------------------------------- conservation

TEST_F(PropertyFixture, ChargeNeutralityAtSteadyState) {
  // After every transient settles, all capacitor currents must vanish:
  // the node voltages stop moving. Probe a coupled cluster's nodes.
  Circuit c;
  const int a = c.add_node();
  const int b = c.add_node();
  c.add_vsource(a, Circuit::ground(),
                SourceWave::pwl({{0.0, 0.0}, {0.5e-9, 3.0}}));
  c.add_resistor(a, b, 2e3);
  c.add_capacitor(b, Circuit::ground(), 50e-15);
  Simulator sim(c);
  TransientOptions opt;
  opt.tstop = 10e-9;
  opt.dt = 5e-12;
  const Waveform w = sim.transient(opt, {b}).probes[0];
  EXPECT_NEAR(w.last_value(), 3.0, 1e-4);
  EXPECT_NEAR(w.at(9.5e-9), w.last_value(), 1e-6);  // flat at the end
}

TEST_F(PropertyFixture, ReducedAndFullEnergyDecay) {
  // A passive network relaxing from an initial disturbance must decay
  // monotonically (no energy creation) in both engines.
  RcNetwork net = extractor_->extract_net({500 * units::um, 0.0});
  // Weak holder: relaxation time constant ~ C_total / g ~ nanoseconds, so
  // the decay is well above the numerical noise floor over the window.
  net.stamp_port_conductance(0, 1e-5);
  net.stamp_port_conductance(1, 1e-9);
  ReducedSimulator sim(sympvl_reduce(net));
  // Kick with a current pulse, then watch the relaxation.
  sim.set_input(0, SourceWave::pwl({{0.0, 1e-6}, {0.2e-9, 1e-6}, {0.21e-9, 0.0}}));
  ReducedSimOptions opt;
  opt.tstop = 5e-9;
  opt.dt = 2e-12;
  const ReducedSimResult res = sim.run(opt);
  const Waveform& w = res.port_voltages[1];
  ASSERT_GT(std::fabs(w.at(0.3e-9)), 1e-3);  // a real disturbance exists
  // After the kick ends, |v| must decay monotonically (within tolerance).
  double prev = 1e9;
  for (double t = 0.4e-9; t < 5e-9; t += 0.2e-9) {
    const double v = std::fabs(w.at(t));
    EXPECT_LE(v, prev * 1.0001) << "t=" << t;
    prev = v;
  }
}

TEST_F(PropertyFixture, TribufEnableGatesItsDrive) {
  // A disabled tri-state contributes no restoring force: the glitch on a
  // bus held by a disabled TRIBUF should be far larger than when enabled.
  // (The verifier's strongest-driver rule assumes an enabled holder; this
  // checks the underlying cell behavior end to end.)
  const CellMaster& master = lib_->by_name("TRIBUF_X4");
  for (bool enabled : {true, false}) {
    Circuit c;
    const int vdd = c.add_node("vdd");
    c.add_vsource(vdd, Circuit::ground(), SourceWave::dc(kTech.vdd));
    const int in = c.add_node();
    c.add_vsource(in, Circuit::ground(), SourceWave::dc(kTech.vdd));
    const int en = c.add_node();
    c.add_vsource(en, Circuit::ground(), SourceWave::dc(enabled ? kTech.vdd : 0.0));
    const int out = c.add_node();
    master.instantiate(c, {{"A", in}, {"EN", en}, {"Y", out}}, vdd);
    c.add_capacitor(out, Circuit::ground(), 20e-15);
    // Inject a pull-down pulse.
    c.add_isource(out, Circuit::ground(),
                  SourceWave::pwl({{0.0, 0.0}, {0.1e-9, 1e-3}, {0.6e-9, 1e-3},
                                   {0.61e-9, 0.0}}));
    Simulator sim(c);
    TransientOptions opt;
    opt.tstop = 2e-9;
    opt.dt = 2e-12;
    const Waveform w = sim.transient(opt, {out}).probes[0];
    if (enabled) {
      EXPECT_GT(w.min_value(), 1.5);             // holder fights the pulse
      EXPECT_NEAR(w.last_value(), kTech.vdd, 0.05);
    } else {
      EXPECT_LT(w.min_value(), 0.5);             // Hi-Z: pulse wins
    }
  }
}

}  // namespace
}  // namespace xtv
