// Negative-path tests for the xwf1 wire format (core/wire.h). The shard
// supervisor and the serve daemon both treat a corrupt stream as a
// crashed peer, so the decoder's job is to (a) never yield a frame that
// was not sent, (b) latch corruption permanently, and (c) treat a
// truncated tail as incomplete — not corrupt — because a torn final
// frame is the *expected* residue of a killed worker.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/wire.h"
#include "wire_negatives.h"

namespace xtv {
namespace {

using wiretest::kChecksumBytes;
using wiretest::kHeaderBytes;

std::vector<WireFrame> decode_all(const std::string& stream,
                                  WireDecoder* decoder) {
  decoder->feed(stream.data(), stream.size());
  std::vector<WireFrame> got;
  WireFrame f;
  while (decoder->next(&f)) got.push_back(f);
  return got;
}

// ---------------------------------------------------------------------------
// Truncation: every proper prefix of a frame is "incomplete", never
// "corrupt", and feeding the remaining bytes completes the frame.

TEST(WireNegative, TruncationAtEveryBoundaryByteIsIncompleteNotCorrupt) {
  const std::string payload = "42 some finding payload";
  const std::string frame =
      wire_encode_frame(WireType::kVictimDone, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size() + kChecksumBytes);

  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    WireDecoder d;
    d.feed(frame.data(), cut);
    WireFrame f;
    EXPECT_FALSE(d.next(&f));
    EXPECT_FALSE(d.corrupt());
    EXPECT_EQ(d.buffered(), cut);

    // The stream resumes: the tail bytes complete the frame bit-exactly.
    d.feed(frame.data() + cut, frame.size() - cut);
    ASSERT_TRUE(d.next(&f));
    EXPECT_EQ(f.type, WireType::kVictimDone);
    EXPECT_EQ(f.payload, payload);
    EXPECT_FALSE(d.corrupt());
    EXPECT_EQ(d.buffered(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Oversized declared length: the length field says "1 MiB + 1" — the
// decoder must reject it immediately instead of buffering forever while
// it waits for a payload that will never arrive.

TEST(WireNegative, OversizedDeclaredLengthLatchesCorrupt) {
  const std::string frame = wiretest::with_declared_length(
      wire_encode_frame(WireType::kHeartbeat, "7"), (1u << 20) + 1);

  WireDecoder d;
  WireFrame f;
  d.feed(frame.data(), frame.size());
  EXPECT_FALSE(d.next(&f));
  EXPECT_TRUE(d.corrupt());

  // Corruption is latched: even a pristine frame afterwards yields nothing.
  const std::string good = wire_encode_frame(WireType::kHeartbeat, "8");
  d.feed(good.data(), good.size());
  EXPECT_FALSE(d.next(&f));
  EXPECT_TRUE(d.corrupt());
}

// ---------------------------------------------------------------------------
// Type bytes outside the valid range are corruption, on both edges.

TEST(WireNegative, OutOfRangeTypeByteLatchesCorrupt) {
  for (std::uint8_t bad : wiretest::out_of_range_type_bytes()) {
    SCOPED_TRACE("type byte " + std::to_string(bad));
    const std::string frame = wiretest::with_type_byte(
        wire_encode_frame(WireType::kHello, "0 1"), bad);
    WireDecoder d;
    WireFrame f;
    d.feed(frame.data(), frame.size());
    EXPECT_FALSE(d.next(&f));
    EXPECT_TRUE(d.corrupt());
  }
}

TEST(WireNegative, BadMagicLatchesCorrupt) {
  const std::string frame =
      wiretest::with_bad_magic(wire_encode_frame(WireType::kHello, "0 1"));
  WireDecoder d;
  WireFrame f;
  d.feed(frame.data(), frame.size());
  EXPECT_FALSE(d.next(&f));
  EXPECT_TRUE(d.corrupt());
}

// ---------------------------------------------------------------------------
// Bit-flip fuzz: flip every single bit of a two-frame stream, one at a
// time. The safety property is not "the decoder always detects the flip"
// in the abstract — it is: any frame the decoder DOES yield is byte-equal
// to a frame that was actually sent. (A flip in frame 2 must not disturb
// frame 1; a flip in frame 1 must yield nothing from frame 1.)

TEST(WireNegative, SingleBitFlipNeverYieldsAForgedFrame) {
  const WireFrame sent[2] = {
      {WireType::kJobFinding, "00c0ffee00c0ffee net=5 peak=0x1.8p-3"},
      {WireType::kJobDone, "00c0ffee00c0ffee done eligible=80"},
  };
  const std::string f0 = wire_encode_frame(sent[0].type, sent[0].payload);
  const std::string f1 = wire_encode_frame(sent[1].type, sent[1].payload);
  const std::string stream = f0 + f1;

  for (std::size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE("flip byte " + std::to_string(byte) + " bit " +
                   std::to_string(bit));
      const std::string mutated = wiretest::with_bit_flip(stream, byte, bit);

      WireDecoder d;
      const std::vector<WireFrame> got = decode_all(mutated, &d);

      // Never more frames than were sent, and every yielded frame must
      // be one of the originals, in order.
      ASSERT_LE(got.size(), 2u);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].type, sent[i].type);
        EXPECT_EQ(got[i].payload, sent[i].payload);
      }

      // A flip inside frame 2 must leave frame 1 intact.
      if (byte >= f0.size()) {
        ASSERT_GE(got.size(), 1u);
        EXPECT_EQ(got[0].payload, sent[0].payload);
      }
      // A flip anywhere in the checksummed region (type, payload, or
      // checksum) of frame 1 must suppress frame 1.
      if (byte == 4 || (byte >= kHeaderBytes && byte < f0.size())) {
        EXPECT_TRUE(got.empty());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A length-field flip can only make the frame incomplete (larger length)
// or checksum-mismatched (smaller length); it can never resync onto a
// forged frame. Covered by the fuzz above, but this pins the "larger
// length stays quietly incomplete" half explicitly.

TEST(WireNegative, LengthGrowthWithinCapStaysIncomplete) {
  const std::string payload = "short";
  const std::string frame = wiretest::with_declared_length(
      wire_encode_frame(WireType::kHeartbeat, payload),
      static_cast<std::uint32_t>(payload.size()) + 64);

  WireDecoder d;
  WireFrame f;
  d.feed(frame.data(), frame.size());
  EXPECT_FALSE(d.next(&f));
  EXPECT_FALSE(d.corrupt());  // waiting for bytes, not corrupt
  EXPECT_EQ(d.buffered(), frame.size());
}

// ---------------------------------------------------------------------------
// The shared sweep (replayed over live TCP by test_serve.cpp) must never
// contain a mutation the decoder accepts as a frame — otherwise the serve
// sweep would "pass" by accident.

TEST(WireNegative, SharedSweepNeverYieldsAFrame) {
  const std::string frame =
      wire_encode_frame(WireType::kJobSubmit, "t0 nets=40");
  for (const auto& m : wiretest::negative_sweep(frame)) {
    SCOPED_TRACE(m.name);
    EXPECT_NE(wiretest::classify(m.bytes), wiretest::StreamVerdict::kYields);
  }
}

}  // namespace
}  // namespace xtv
