// Tests for the SyMPVL reduction: Padé moment matching, passivity,
// transfer-function accuracy, and reduced-vs-SPICE transient agreement —
// the properties the paper's Section 3 claims.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_lu.h"
#include "mor/reduced_sim.h"
#include "mor/sympvl.h"
#include "netlist/rc_network.h"
#include "spice/simulator.h"
#include "util/prng.h"
#include "util/units.h"

namespace xtv {
namespace {

// RC ladder: `stages` sections of series R and shunt C, driven at one port
// with a termination conductance.
RcNetwork make_ladder(int stages, double r = 50.0, double c = 5e-15,
                      double port_g = 1e-3) {
  RcNetwork net;
  int prev = net.add_node("in");
  net.add_port(prev);
  net.stamp_port_conductance(0, port_g);
  for (int i = 0; i < stages; ++i) {
    const int next = net.add_node();
    net.add_resistor(prev, next, r);
    net.add_capacitor(next, RcNetwork::kGround, c);
    prev = next;
  }
  return net;
}

// Two coupled RC lines (aggressor/victim) with ports at both drivers and
// both receivers.
RcNetwork make_coupled_pair(int stages = 6, double r = 40.0, double cg = 4e-15,
                            double cc = 6e-15) {
  RcNetwork net;
  std::vector<int> a(static_cast<std::size_t>(stages) + 1);
  std::vector<int> v(static_cast<std::size_t>(stages) + 1);
  for (int i = 0; i <= stages; ++i) {
    a[static_cast<std::size_t>(i)] = net.add_node("a" + std::to_string(i));
    v[static_cast<std::size_t>(i)] = net.add_node("v" + std::to_string(i));
  }
  for (int i = 0; i < stages; ++i) {
    net.add_resistor(a[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i) + 1], r);
    net.add_resistor(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i) + 1], r);
  }
  for (int i = 1; i <= stages; ++i) {
    net.add_capacitor(a[static_cast<std::size_t>(i)], RcNetwork::kGround, cg);
    net.add_capacitor(v[static_cast<std::size_t>(i)], RcNetwork::kGround, cg);
    net.add_capacitor(a[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)], cc, true);
  }
  net.add_port(a[0]);  // port 0: aggressor driver
  net.add_port(v[0]);  // port 1: victim driver
  net.add_port(a[static_cast<std::size_t>(stages)]);  // port 2: aggressor sink
  net.add_port(v[static_cast<std::size_t>(stages)]);  // port 3: victim sink
  net.stamp_port_conductance(0, 1e-2);   // strong aggressor driver (100 ohm)
  net.stamp_port_conductance(1, 1e-3);   // weaker victim holder (1k)
  net.stamp_port_conductance(2, 1e-9);   // receiver gmin
  net.stamp_port_conductance(3, 1e-9);
  return net;
}

TEST(Sympvl, MomentZeroMatchesExactly) {
  RcNetwork net = make_ladder(8);
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix b = net.b_matrix();
  ReducedModel m = sympvl_reduce(g, c, b);
  const DenseMatrix m0 = m.moment(0);
  const DenseMatrix e0 = exact_moment(g, c, b, 0);
  EXPECT_LT(m0.max_abs_diff(e0), 1e-9 * e0.frobenius_norm());
}

TEST(Sympvl, MatchesLeadingMomentsOfLadder) {
  RcNetwork net = make_ladder(12);
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix b = net.b_matrix();
  SympvlOptions opt;
  opt.max_order = 6;  // single port: matches 2*6 moments in exact arithmetic
  ReducedModel m = sympvl_reduce(g, c, b, opt);
  for (unsigned k = 0; k < 8; ++k) {
    const double exact = exact_moment(g, c, b, k)(0, 0);
    const double reduced = m.moment(k)(0, 0);
    EXPECT_NEAR(reduced / exact, 1.0, 1e-6) << "moment k=" << k;
  }
}

TEST(Sympvl, MultiportMomentMatching) {
  RcNetwork net = make_coupled_pair();
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix b = net.b_matrix();
  SympvlOptions opt;
  opt.max_order = 12;  // 4 ports: 3 block iterations -> >= 4 block moments
  ReducedModel m = sympvl_reduce(g, c, b, opt);
  for (unsigned k = 0; k < 4; ++k) {
    const DenseMatrix exact = exact_moment(g, c, b, k);
    const DenseMatrix red = m.moment(k);
    EXPECT_LT(red.max_abs_diff(exact), 1e-7 * (exact.frobenius_norm() + 1e-300))
        << "block moment k=" << k;
  }
}

TEST(Sympvl, ExactWhenOrderEqualsStateCount) {
  RcNetwork net = make_ladder(5);
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix b = net.b_matrix();
  SympvlOptions opt;
  opt.max_order = 6;  // == node count
  ReducedModel m = sympvl_reduce(g, c, b, opt);
  // Transfer function must agree at many frequencies, not just moments.
  for (double s : {0.0, 1e6, 1e8, 1e9, 1e10, 1e11}) {
    const std::size_t n = g.rows();
    DenseMatrix gsys(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) gsys(i, j) = g(i, j) + s * c(i, j);
    // Original H(s) = B^T (G + sC)^{-1} B; reduced is rho^T(I+sT)^{-1}rho.
    DenseLu lu(gsys);
    const DenseMatrix horig = matmul_at_b(b, lu.solve(b));
    // The reduced variable change absorbs G: H_red(s) defined on the
    // transformed system equals the original exactly when no deflation
    // occurred and order == n.
    const DenseMatrix hred = m.transfer(s);
    EXPECT_LT(hred.max_abs_diff(horig), 1e-6 * (horig.frobenius_norm() + 1e-30))
        << "s=" << s;
  }
}

TEST(Sympvl, ReducedTransferConvergesWithOrder) {
  RcNetwork net = make_coupled_pair(10);
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix b = net.b_matrix();
  const double s = 1e10;
  const std::size_t n = g.rows();
  DenseMatrix gsys(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) gsys(i, j) = g(i, j) + s * c(i, j);
  const DenseMatrix horig = matmul_at_b(b, DenseLu(gsys).solve(b));

  double prev_err = 1e300;
  for (std::size_t q : {4u, 8u, 16u}) {
    SympvlOptions opt;
    opt.max_order = q;
    const DenseMatrix hred = sympvl_reduce(g, c, b, opt).transfer(s);
    const double err = hred.max_abs_diff(horig) / (horig.frobenius_norm() + 1e-300);
    EXPECT_LT(err, prev_err * 1.5) << "order " << q;  // no blow-up
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);  // converged by order 16
}

// Property: passivity (T PSD) must hold for randomized RC clusters of any
// topology — the paper's headline guarantee.
class SympvlPassivity : public ::testing::TestWithParam<int> {};

TEST_P(SympvlPassivity, ReducedModelIsPassiveAndStable) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  RcNetwork net;
  const int n = rng.uniform_int(4, 40);
  std::vector<int> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(net.add_node());
  // Random connected resistive tree + extra links.
  for (int i = 1; i < n; ++i)
    net.add_resistor(nodes[static_cast<std::size_t>(i)],
                     nodes[static_cast<std::size_t>(rng.uniform_int(0, i - 1))],
                     rng.log_uniform(10.0, 1e3));
  for (int e = 0; e < n / 3; ++e) {
    const int a = rng.uniform_int(0, n - 1);
    const int b = rng.uniform_int(0, n - 1);
    if (a != b)
      net.add_resistor(nodes[static_cast<std::size_t>(a)],
                       nodes[static_cast<std::size_t>(b)],
                       rng.log_uniform(10.0, 1e3));
  }
  for (int i = 0; i < n; ++i)
    net.add_capacitor(nodes[static_cast<std::size_t>(i)], RcNetwork::kGround,
                      rng.log_uniform(0.5e-15, 50e-15));
  for (int e = 0; e < n / 2; ++e) {
    const int a = rng.uniform_int(0, n - 1);
    const int b = rng.uniform_int(0, n - 1);
    if (a != b)
      net.add_capacitor(nodes[static_cast<std::size_t>(a)],
                        nodes[static_cast<std::size_t>(b)],
                        rng.log_uniform(0.5e-15, 20e-15), true);
  }
  const int num_ports = rng.uniform_int(1, std::min(4, n));
  for (int p = 0; p < num_ports; ++p) {
    net.add_port(nodes[static_cast<std::size_t>(p)]);
    net.stamp_port_conductance(static_cast<std::size_t>(p),
                               rng.log_uniform(1e-6, 1e-2));
  }

  ReducedModel m = sympvl_reduce(net);
  EXPECT_TRUE(m.is_passive(1e-9)) << "min eig " << m.min_t_eigenvalue();
  EXPECT_GT(m.order(), 0u);
  EXPECT_LE(m.order(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(RandomClusters, SympvlPassivity, ::testing::Range(0, 20));

TEST(Sympvl, RejectsSingularG) {
  RcNetwork net;
  const int a = net.add_node();
  const int b = net.add_node();
  net.add_capacitor(a, b, 1e-15, true);
  net.add_port(a);  // no resistive path anywhere: G singular
  EXPECT_THROW(sympvl_reduce(net), std::runtime_error);
}

// ------------------------------------------------- reduced transient sim

TEST(ReducedSim, LinearStepMatchesAnalyticRc) {
  // Single-node "ladder": port with conductance g and cap C driven by a
  // current step I: V -> I/g with time constant C/g.
  RcNetwork net;
  const int nd = net.add_node();
  net.add_capacitor(nd, RcNetwork::kGround, 1e-12);
  net.add_port(nd);
  net.stamp_port_conductance(0, 1e-3);

  ReducedModel model = sympvl_reduce(net);
  ReducedSimulator sim(model);
  sim.set_input(0, SourceWave::ramp(0.0, 1e-3, 0.0, 1e-12));  // ~step to 1 mA

  ReducedSimOptions opt;
  opt.tstop = 5e-9;
  opt.dt = 2e-12;
  const ReducedSimResult res = sim.run(opt);
  const Waveform& v = res.port_voltages[0];
  const double tau = 1e-12 / 1e-3;  // 1 ns
  for (double t : {1e-9, 2e-9, 4e-9}) {
    const double expect = 1.0 * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(v.at(t), expect, 0.01) << "t=" << t;
  }
}

TEST(ReducedSim, MatchesFullSpiceOnLinearCluster) {
  // Coupled pair, aggressor driven by a Thevenin ramp (conductance stamped
  // pre-reduction, source as current injection); victim held by its
  // conductance. Compare the victim-driver port waveform against the full
  // SPICE solve of the identical circuit.
  RcNetwork net = make_coupled_pair(8);
  ReducedModel model = sympvl_reduce(net);
  ReducedSimulator rsim(model);
  const double g_agg = net.port_conductance(0);
  // Thevenin source 0->3V ramp through R = 1/g_agg: inject I = V(t)*g.
  rsim.set_input(0, SourceWave::pwl({{0.0, 0.0},
                                     {0.2e-9, 0.0},
                                     {0.35e-9, 3.0 * g_agg}}));
  ReducedSimOptions ropt;
  ropt.tstop = 3e-9;
  ropt.dt = 1e-12;
  const ReducedSimResult rres = rsim.run(ropt);

  // Full circuit: export network, add the Thevenin source explicitly.
  Circuit ckt;
  const int agg_pin = ckt.add_node("agg");
  const int vic_pin = ckt.add_node("vic");
  const int asink = ckt.add_node("asink");
  const int vsink = ckt.add_node("vsink");
  // Export WITHOUT the port conductances for port 0 (we model it as a
  // Thevenin source) — simpler: export all conductances as resistors to
  // ground and drive port 0 with the equivalent Norton current.
  net.export_to(ckt, {agg_pin, vic_pin, asink, vsink});
  ckt.add_isource(Circuit::ground(), agg_pin,
                  SourceWave::pwl({{0.0, 0.0},
                                   {0.2e-9, 0.0},
                                   {0.35e-9, 3.0 * g_agg}}));
  Simulator spice(ckt);
  TransientOptions sopt;
  sopt.tstop = 3e-9;
  sopt.dt = 1e-12;
  const TransientResult sres = spice.transient(sopt, {vic_pin, agg_pin});

  // Victim glitch peaks must agree closely (this is the Figure-3 claim:
  // sub-1% error for linear drive).
  const double peak_red = rres.port_voltages[1].peak_deviation();
  const double peak_spice = sres.probes[0].peak_deviation();
  ASSERT_GT(std::fabs(peak_spice), 0.01);  // a real glitch exists
  EXPECT_NEAR(peak_red / peak_spice, 1.0, 0.02);
  // And the whole waveform tracks.
  EXPECT_LT(rres.port_voltages[1].max_abs_error(sres.probes[0]), 0.02);
  EXPECT_LT(rres.port_voltages[0].max_abs_error(sres.probes[1]), 0.05);
}

// Nonlinear clamp: current into the node pulls toward v0 with conductance
// that stiffens with distance (a crude nonlinear holder).
class CubicClamp final : public OnePortDevice {
 public:
  CubicClamp(double v0, double g1, double g3) : v0_(v0), g1_(g1), g3_(g3) {}
  double current(double v, double) const override {
    const double e = v0_ - v;
    return g1_ * e + g3_ * e * e * e;
  }
  double conductance(double v, double) const override {
    const double e = v0_ - v;
    return -(g1_ + 3.0 * g3_ * e * e);
  }

 private:
  double v0_, g1_, g3_;
};

TEST(ReducedSim, NonlinearTerminationMatchesSpice) {
  RcNetwork net = make_coupled_pair(6);
  ReducedModel model = sympvl_reduce(net);
  ReducedSimulator rsim(model);
  const double g_agg = net.port_conductance(0);
  const auto clamp = std::make_shared<CubicClamp>(0.0, 5e-4, 2e-3);
  rsim.set_input(0, SourceWave::pwl({{0.0, 0.0},
                                     {0.2e-9, 0.0},
                                     {0.3e-9, 3.0 * g_agg}}));
  rsim.set_termination(1, clamp);
  ReducedSimOptions ropt;
  ropt.tstop = 2e-9;
  ropt.dt = 1e-12;
  const ReducedSimResult rres = rsim.run(ropt);

  Circuit ckt;
  const int agg_pin = ckt.add_node();
  const int vic_pin = ckt.add_node();
  const int asink = ckt.add_node();
  const int vsink = ckt.add_node();
  net.export_to(ckt, {agg_pin, vic_pin, asink, vsink});
  ckt.add_isource(Circuit::ground(), agg_pin,
                  SourceWave::pwl({{0.0, 0.0},
                                   {0.2e-9, 0.0},
                                   {0.3e-9, 3.0 * g_agg}}));
  ckt.add_termination(vic_pin, clamp);
  Simulator spice(ckt);
  TransientOptions sopt;
  sopt.tstop = 2e-9;
  sopt.dt = 1e-12;
  const TransientResult sres = spice.transient(sopt, {vic_pin});

  const double peak_red = rres.port_voltages[1].peak_deviation();
  const double peak_spice = sres.probes[0].peak_deviation();
  ASSERT_GT(std::fabs(peak_spice), 0.01);
  EXPECT_NEAR(peak_red / peak_spice, 1.0, 0.03);
  EXPECT_LT(rres.port_voltages[1].max_abs_error(sres.probes[0]), 0.02);
}

TEST(ReducedSim, DcFixedPointWithClamp) {
  RcNetwork net = make_ladder(4, 50.0, 5e-15, 1e-3);
  ReducedModel model = sympvl_reduce(net);
  ReducedSimulator sim(model);
  // Clamp pulls toward 2V with 1 mS against the 1 mS port holder: expect 1V.
  sim.set_termination(0, std::make_shared<CubicClamp>(2.0, 1e-3, 0.0));
  const Vector v = sim.dc_port_voltages();
  EXPECT_NEAR(v[0], 1.0, 1e-5);
}

TEST(ReducedSim, RejectsBadPortIndices) {
  RcNetwork net = make_ladder(3);
  ReducedSimulator sim(sympvl_reduce(net));
  EXPECT_THROW(sim.set_input(5, SourceWave::dc(0.0)), std::runtime_error);
  EXPECT_THROW(sim.set_termination(5, std::make_shared<CubicClamp>(0, 1e-3, 0)),
               std::runtime_error);
}

TEST(ReducedSim, BackwardEulerAlsoConverges) {
  RcNetwork net = make_coupled_pair(5);
  ReducedSimulator sim(sympvl_reduce(net));
  sim.set_input(0, SourceWave::ramp(0.0, 3e-2, 0.1e-9, 0.1e-9));
  ReducedSimOptions opt;
  opt.tstop = 2e-9;
  opt.dt = 1e-12;
  opt.trapezoidal = false;
  const ReducedSimResult res = sim.run(opt);
  EXPECT_EQ(res.port_voltages[0].size(), res.steps + 1);
  EXPECT_GT(res.port_voltages[0].last_value(), 0.0);
}

}  // namespace
}  // namespace xtv
