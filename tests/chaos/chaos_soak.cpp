// Chaos soak: randomized adversity against the verifier's failure-semantics
// contract (DESIGN.md §9).
//
// Each trial draws a random execution environment — worker threads, tight
// cluster deadlines, tiny memory budgets, armed fault-injection sites,
// forced memory pressure, and a simulated kill-9 (journal truncated at a
// random byte, then resumed) — runs a full verification of a fixed small
// design, and checks that:
//
//   1. verify() never lets an exception escape (no crash, no abort);
//   2. the accounting invariant holds: every eligible victim is reported
//      exactly once (analyzed + screened + fallback + failed);
//   3. every finding's status is internally consistent (a retry count,
//      error message, and peak_fraction matching what the status promises);
//   4. undisturbed victims — status kAnalyzed with zero retries — are
//      bit-identical to an unconstrained serial reference run: adversity
//      may degrade a victim's result, never silently change it.
//
// A second phase (--process-trials) attacks the process-shard backend:
// each trial draws a worker count, a victim, and a kill count, arms the
// supervisor's deterministic SIGKILL hook (XTV_TEST_SHARD_KILL_ON_START),
// and runs the same verification twice. It checks that no victim is ever
// lost, that the contract above still holds, and that the two replays
// reach bit-identical per-victim outcomes — crash recovery must be as
// deterministic as the crash injection.
//
// A third phase (--serve-trials) attacks the verification daemon
// (src/serve): each trial forks a real ServeDaemon, submits over its
// socket, and layers on a seed-drawn subset of {runner crashes, worker
// SIGKILLs inside the runner, a client disconnect, a daemon SIGKILL +
// restart mid-run}. Odd trials run CONCURRENT: three distinct jobs under
// max_running=4, submitted over the TCP listener instead of the Unix
// socket, with a memory-pressure spike mid-run that forces the governor
// to shed the youngest runner back to queued. Every job must still end
// "done" with every victim reported exactly once, undisturbed victims
// bit-identical to a direct in-process run of the same options, and the
// final SIGTERM drain must exit 0.
//
// A fourth phase (--remote-trials) attacks the leased multi-host fan-out
// (src/serve/remote): each trial forks a fleet of real xtv_worker
// processes, runs one verification through a RemoteExecutor over TCP, and
// layers on a seed-drawn subset of {a worker that _exits on a chosen
// unit, a worker partitioned by a heartbeat stall then healed, a worker
// dropping result frames, mid-run SIGKILLs of up to the whole fleet}. It
// checks that every victim settles exactly once, that every finding is
// either bit-identical to a direct in-process run or an explicit
// kShardCrashed quarantine concession (and concessions appear only under
// worker-killing adversity), and that losing all workers still completes
// the job through the local fallback.
//
// Exit status 0 iff every trial upholds the contract. Run the reduced
// smoke via ctest (ChaosSoak.Smoke) or the full soak directly:
//   ./build/tests/chaos/chaos_soak --trials 100 --process-trials 10
//       --serve-trials 6 --remote-trials 6 --seed 1
#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/journal.h"
#include "core/verifier.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/remote.h"
#include "util/fault_injection.h"
#include "util/prng.h"
#include "util/resource.h"

using namespace xtv;

namespace {

std::size_t g_checks_failed = 0;

void expect(bool ok, std::size_t trial, const char* what,
            const std::string& detail = "") {
  if (ok) return;
  ++g_checks_failed;
  std::fprintf(stderr, "trial %zu: CONTRACT VIOLATION: %s%s%s\n", trial, what,
               detail.empty() ? "" : ": ", detail.c_str());
}

struct TrialConfig {
  std::size_t threads = 1;
  std::size_t batch_width = 1;
  double deadline_ms = 0.0;
  double mem_mb = 0.0;
  bool pressure = false;
  bool kill_resume = false;
  bool certify = false;
  double audit_fraction = 0.0;
  double model_cache_mb = 0.0;
  std::vector<FaultSite> armed;
  std::vector<std::uint64_t> periods;
  std::vector<std::uint64_t> caps;

  std::string to_string() const {
    std::string s = "threads=" + std::to_string(threads);
    char buf[64];
    if (batch_width > 1) s += " batch=" + std::to_string(batch_width);
    if (deadline_ms > 0.0) {
      std::snprintf(buf, sizeof(buf), " deadline=%.0fms", deadline_ms);
      s += buf;
    }
    if (mem_mb > 0.0) {
      std::snprintf(buf, sizeof(buf), " mem=%.3fMiB", mem_mb);
      s += buf;
    }
    if (pressure) s += " pressure";
    if (kill_resume) s += " kill+resume";
    if (certify) s += " certify";
    if (audit_fraction > 0.0) {
      std::snprintf(buf, sizeof(buf), " audit=%.2f", audit_fraction);
      s += buf;
    }
    if (model_cache_mb > 0.0) {
      std::snprintf(buf, sizeof(buf), " cache=%.0fMiB", model_cache_mb);
      s += buf;
    }
    for (std::size_t i = 0; i < armed.size(); ++i) {
      std::snprintf(buf, sizeof(buf), " %s(p=%llu,cap=%llu)",
                    fault_site_name(armed[i]),
                    static_cast<unsigned long long>(periods[i]),
                    static_cast<unsigned long long>(caps[i]));
      s += buf;
    }
    return s;
  }
};

TrialConfig draw_config(Prng& rng) {
  TrialConfig cfg;
  cfg.threads = static_cast<std::size_t>(rng.uniform_int(1, 4));
  {
    // Lockstep batching alternates with scalar trials so faults, deadlines,
    // memory pressure, and kill+resume all exercise the lane path too.
    const std::size_t width_choices[] = {1, 2, 4, 8};
    cfg.batch_width = width_choices[rng.uniform_int(0, 3)];
  }
  if (rng.bernoulli(0.5)) {
    const double choices[] = {1.0, 5.0, 20.0};
    cfg.deadline_ms = choices[rng.uniform_int(0, 2)];
  }
  if (rng.bernoulli(0.5)) {
    const double choices[] = {0.004, 0.02, 0.1};
    cfg.mem_mb = choices[rng.uniform_int(0, 2)];
  }
  cfg.pressure = rng.bernoulli(0.2);
  cfg.kill_resume = rng.bernoulli(0.4);
  cfg.certify = rng.bernoulli(0.4);
  if (cfg.certify && rng.bernoulli(0.3)) cfg.audit_fraction = 0.15;
  // Reduced-model cache on in ~40% of trials: a hit skips the Cholesky /
  // Lanczos / passivity fault sites, so cache-on trials probe the failure
  // semantics of the reuse path interleaving with injected faults.
  if (rng.bernoulli(0.4)) cfg.model_cache_mb = 8.0;

  const FaultSite pool[] = {
      FaultSite::kCholeskyFactor, FaultSite::kLanczosSweep,
      FaultSite::kPassivityCheck, FaultSite::kReducedNewton,
      FaultSite::kSpiceNewton,    FaultSite::kWaveformFinite,
      FaultSite::kFpTrap,         FaultSite::kVictimTask,
      FaultSite::kCertifyProbe,   FaultSite::kBatchLane,
  };
  const int n_armed = rng.uniform_int(0, 2);
  for (int i = 0; i < n_armed; ++i) {
    const std::uint64_t period_choices[] = {1, 3, 5, 9};
    const std::uint64_t cap_choices[] = {0, 1, 3};
    cfg.armed.push_back(pool[rng.uniform_int(0, 9)]);
    cfg.periods.push_back(period_choices[rng.uniform_int(0, 3)]);
    cfg.caps.push_back(cap_choices[rng.uniform_int(0, 2)]);
  }
  return cfg;
}

/// Simulates a kill-9 mid-write: keep a random byte prefix of the journal
/// (possibly cutting a record — or the header — in half).
void truncate_journal(const std::string& path, Prng& rng) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (!f) return;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size > 0) {
    const long keep = static_cast<long>(rng.uniform(0.0, 1.0) * size);
    if (ftruncate(fileno(f), keep) != 0)
      std::fprintf(stderr, "warning: ftruncate(%s) failed\n", path.c_str());
  }
  std::fclose(f);
}

void check_contract(std::size_t trial, const VerificationReport& r,
                    const std::map<std::size_t, VictimFinding>& reference,
                    bool faults_armed, bool certify_on) {
  // Accounting invariant: nobody vanishes, nobody is double-counted.
  expect(r.victims_eligible == r.victims_analyzed + r.victims_screened_out +
                                   r.victims_fallback + r.victims_failed,
         trial, "accounting invariant broken");
  expect(r.victims_deadline_bound + r.victims_resource_bound +
                 r.victims_accuracy_bound + r.victims_shard_crashed <=
             r.victims_fallback,
         trial, "bound counters exceed fallback count");
  expect(r.victims_certified <= r.victims_analyzed, trial,
         "certified counter exceeds analyzed count");
  {
    // The certification/audit counters must agree with the findings.
    std::size_t certified = 0, accuracy_bound = 0, escalated = 0, audited = 0;
    for (const VictimFinding& f : r.findings) {
      if (f.status == FindingStatus::kCertified) ++certified;
      if (f.status == FindingStatus::kAccuracyBound) ++accuracy_bound;
      if (f.cert_order_escalations > 0) ++escalated;
      if (f.audited) ++audited;
    }
    expect(r.victims_certified == certified, trial,
           "victims_certified disagrees with findings");
    expect(r.victims_accuracy_bound == accuracy_bound, trial,
           "victims_accuracy_bound disagrees with findings");
    expect(r.victims_escalated == escalated, trial,
           "victims_escalated disagrees with findings");
    expect(r.victims_audited == audited, trial,
           "victims_audited disagrees with findings");
  }

  for (const VictimFinding& f : r.findings) {
    const std::string net = "net " + std::to_string(f.net);
    expect(f.peak_fraction >= 0.0 && f.peak_fraction <= 1.0 + 1e-12, trial,
           "peak_fraction out of [0,1]", net);
    switch (f.status) {
      case FindingStatus::kAnalyzed:
        expect(f.retries == 0, trial, "kAnalyzed with retries", net);
        expect(f.error.empty(), trial, "kAnalyzed with an error", net);
        break;
      case FindingStatus::kAnalyzedAfterRetry:
      case FindingStatus::kFellBackToFullSim:
      case FindingStatus::kFellBackToBound:
        expect(f.retries >= 1, trial, "degraded status without a retry", net);
        expect(!f.error.empty(), trial, "degraded status without an error",
               net);
        break;
      case FindingStatus::kDeadlineBound:
        expect(f.retries >= 1, trial, "kDeadlineBound without a retry", net);
        // error_code keeps the FIRST failure class seen, so with injected
        // faults an earlier rung's error may legitimately precede the
        // deadline; without faults the deadline must be the first error.
        expect(faults_armed || f.error_code == StatusCode::kDeadlineExceeded,
               trial, "kDeadlineBound without kDeadlineExceeded", net);
        break;
      case FindingStatus::kResourceBound:
        // Either a budget breach inside a rung (counted as a retry) or an
        // admission-control shed (no rung ever ran).
        expect(f.retries >= 1 || f.error.find("shed") != std::string::npos,
               trial, "kResourceBound neither breached nor shed", net);
        expect(faults_armed || f.error_code == StatusCode::kResourceExceeded,
               trial, "kResourceBound without kResourceExceeded", net);
        break;
      case FindingStatus::kFailed:
        expect(!f.error.empty(), trial, "kFailed without an error", net);
        expect(f.violation && f.peak_fraction == 1.0, trial,
               "kFailed not maximally pessimistic", net);
        break;
      case FindingStatus::kCertified:
        expect(certify_on, trial, "kCertified in a certify-off trial", net);
        expect(f.certified, trial, "kCertified without the certified flag",
               net);
        break;
      case FindingStatus::kAccuracyBound:
        expect(certify_on, trial, "kAccuracyBound in a certify-off trial",
               net);
        expect(!f.certified, trial, "kAccuracyBound claims certified", net);
        expect(!f.error.empty(), trial, "kAccuracyBound without an error",
               net);
        break;
      case FindingStatus::kShardCrashed:
        expect(!f.error.empty(), trial, "kShardCrashed without an error", net);
        expect(f.error_code == StatusCode::kWorkerCrashed, trial,
               "kShardCrashed without kWorkerCrashed", net);
        break;
    }
    if (!certify_on)
      expect(!f.certified && f.cert_order_escalations == 0, trial,
             "certification fields set in a certify-off trial", net);

    // Certification: an undisturbed victim must match the unconstrained
    // reference bit-for-bit — adversity degrades, never perturbs. With
    // certify on, a kCertified victim that never retried or escalated ran
    // the exact same accepted simulation the reference did — the
    // certificate only READS the model — so its numbers must also match.
    const bool undisturbed_analyzed =
        f.status == FindingStatus::kAnalyzed && f.retries == 0;
    const bool undisturbed_certified = f.status == FindingStatus::kCertified &&
                                       f.retries == 0 &&
                                       f.cert_order_escalations == 0;
    if (undisturbed_analyzed || undisturbed_certified) {
      const auto it = reference.find(f.net);
      expect(it != reference.end(), trial, "analyzed net missing in reference",
             net);
      if (it == reference.end()) continue;
      const VictimFinding& ref = it->second;
      if (ref.status != FindingStatus::kAnalyzed) continue;  // ref degraded
      const bool identical =
          f.peak == ref.peak && f.peak_fraction == ref.peak_fraction &&
          f.violation == ref.violation &&
          f.reduced_order == ref.reduced_order &&
          f.aggressors_analyzed == ref.aggressors_analyzed;
      expect(identical, trial, "certified finding differs from reference", net);
    }
  }
}

// ---------------------------------------------------------------------------
// Serve-phase plumbing (--serve-trials).

void remove_tree(const std::string& path) {
  DIR* d = ::opendir(path.c_str());
  if (d) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      remove_tree(path + "/" + name);
    }
    ::closedir(d);
    ::rmdir(path.c_str());
  } else {
    std::remove(path.c_str());
  }
}

pid_t fork_daemon(const serve::DaemonOptions& opt) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    serve::ServeDaemon daemon(opt);
    ::_exit(daemon.run());
  }
  return pid;
}

bool wait_daemon_ready(const std::string& socket_path, pid_t pid,
                       double timeout_ms) {
  for (double waited = 0.0; waited < timeout_ms; waited += 50.0) {
    serve::ServeClient probe;
    std::string err;
    if (probe.connect(socket_path, &err)) return true;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return false;
    ::usleep(50000);
  }
  return false;
}

/// SIGKILLs any runner left orphaned by a SIGKILLed daemon, via the same
/// .pid files the daemon's own recovery uses (the chaos harness must not
/// leak process groups between trials).
void kill_orphan_runners(const std::string& jobs_dir) {
  DIR* d = ::opendir(jobs_dir.c_str());
  if (!d) return;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() < 4 || name.substr(name.size() - 4) != ".pid") continue;
    std::FILE* f = std::fopen((jobs_dir + "/" + name).c_str(), "r");
    if (!f) continue;
    long pid = 0;
    if (std::fscanf(f, "%ld", &pid) == 1 && pid > 1) {
      ::kill(-static_cast<pid_t>(pid), SIGKILL);
      ::kill(static_cast<pid_t>(pid), SIGKILL);
    }
    std::fclose(f);
  }
  ::closedir(d);
}

// ---------------------------------------------------------------------------
// Remote-phase plumbing (--remote-trials).

/// Forks one xtv_worker serving a single coordinator; the bound ephemeral
/// endpoint is discovered through the atomically published file. Test
/// hooks travel to the worker through the environment, so callers set
/// them before this fork and clear them right after.
pid_t fork_remote_worker(const std::string& ep_file,
                         const std::string& cell_cache) {
  std::fflush(stdout);
  std::fflush(stderr);
  std::remove(ep_file.c_str());
  const pid_t pid = ::fork();
  if (pid == 0) {
    serve::WorkerOptions wo;
    wo.listen = "127.0.0.1:0";
    wo.endpoint_file = ep_file;
    wo.cell_cache = cell_cache;
    wo.max_coordinators = 1;
    ::_exit(serve::run_worker(wo));
  }
  return pid;
}

std::string read_worker_endpoint(const std::string& ep_file) {
  for (int i = 0; i < 200; ++i) {
    std::ifstream in(ep_file);
    std::string ep;
    if (in >> ep && !ep.empty()) return ep;
    ::usleep(50000);
  }
  return "";
}

/// Submits without waiting; "" on acceptance, the reason otherwise.
std::string serve_submit_nowait(serve::ServeClient& client,
                                const serve::JobSpec& spec) {
  std::string token = "c";
  token += serve::job_key_hex(spec.key());
  std::string err;
  if (!client.send(WireType::kJobSubmit, token + " " + spec.to_text(), &err))
    return "send: " + err;
  for (;;) {
    WireFrame f;
    if (!client.recv(&f, 30000.0, &err)) return "recv: " + err;
    if (f.payload.rfind(token + " ", 0) != 0) continue;
    if (f.type == WireType::kJobAccepted) return "";
    if (f.type == WireType::kJobRejected)
      return f.payload.substr(token.size() + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 50;
  std::size_t process_trials = 0;
  std::size_t serve_trials = 0;
  std::size_t remote_trials = 0;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      trials = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--process-trials") == 0 && i + 1 < argc)
      process_trials = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--serve-trials") == 0 && i + 1 < argc)
      serve_trials = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--remote-trials") == 0 && i + 1 < argc)
      remote_trials = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else {
      std::fprintf(stderr,
                   "usage: chaos_soak [--trials N] [--process-trials N] "
                   "[--serve-trials N] [--remote-trials N] [--seed S]\n");
      return 2;
    }
  }

  const Technology tech = Technology::default_250nm();
  CellLibrary library(tech);
  CharacterizeOptions copt;
  copt.iv_grid = 11;
  CharacterizedLibrary chars(library, copt);
  Extractor extractor(tech);
  DspChipOptions chip_opt;
  chip_opt.net_count = 80;
  chip_opt.tracks = 8;
  const ChipDesign design = generate_dsp_chip(library, chip_opt);

  VerifierOptions base;
  base.glitch.align_aggressors = false;
  base.glitch.tstop = 3e-9;

  ChipVerifier verifier(extractor, chars);
  std::printf("chaos_soak: %zu trials, seed %llu\n", trials,
              static_cast<unsigned long long>(seed));
  std::printf("reference run (unconstrained, serial)...\n");
  const VerificationReport ref_report = verifier.verify(design, base);
  std::map<std::size_t, VictimFinding> reference;
  for (const VictimFinding& f : ref_report.findings) reference[f.net] = f;
  std::printf("  %zu eligible victims, %zu violations\n",
              ref_report.victims_eligible, ref_report.violations);

  const std::string journal_path =
      "chaos_soak_" + std::to_string(::getpid()) + ".journal";
  Prng rng(seed);
  std::size_t escapes = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const TrialConfig cfg = draw_config(rng);
    VerifierOptions options = base;
    options.threads = cfg.threads;
    options.batch_width = cfg.batch_width;
    options.cluster_deadline_ms = cfg.deadline_ms;
    options.cluster_mem_mb = cfg.mem_mb;
    options.certify = cfg.certify;
    options.audit_fraction = cfg.audit_fraction;
    options.model_cache_mb = cfg.model_cache_mb;
    // A forever-firing kCertifyProbe would otherwise climb every victim to
    // the default ceiling; keep the chaos trials bounded.
    options.max_mor_order = 24;
    if (cfg.kill_resume) options.journal_path = journal_path;

    FaultInjector::instance().reset();
    for (std::size_t i = 0; i < cfg.armed.size(); ++i)
      FaultInjector::instance().arm(cfg.armed[i], cfg.periods[i], cfg.caps[i]);
    resource::MemoryGovernor::instance().force_pressure(cfg.pressure);

    bool escaped = false;
    VerificationReport report;
    try {
      report = verifier.verify(design, options);
      if (cfg.kill_resume) {
        // Kill-9 simulation: tear the journal at a random byte, then
        // resume. Injection is re-armed so the re-analyzed victims see
        // the same per-victim fault schedule.
        truncate_journal(journal_path, rng);
        FaultInjector::instance().reset();
        for (std::size_t i = 0; i < cfg.armed.size(); ++i)
          FaultInjector::instance().arm(cfg.armed[i], cfg.periods[i],
                                        cfg.caps[i]);
        options.resume = true;
        report = verifier.verify(design, options);
      }
    } catch (const std::exception& e) {
      escaped = true;
      ++escapes;
      ++g_checks_failed;
      std::fprintf(stderr, "trial %zu: ESCAPED EXCEPTION: %s [%s]\n", trial,
                   e.what(), cfg.to_string().c_str());
    }

    FaultInjector::instance().reset();
    resource::MemoryGovernor::instance().force_pressure(false);
    std::remove(journal_path.c_str());

    if (!escaped) {
      const std::size_t before = g_checks_failed;
      check_contract(trial, report, reference, !cfg.armed.empty(),
                     cfg.certify);
      std::printf(
          "trial %3zu: ok=%s analyzed=%zu fallback=%zu (ddl=%zu mem=%zu) "
          "failed=%zu [%s]\n",
          trial, g_checks_failed == before ? "yes" : "NO",
          report.victims_analyzed, report.victims_fallback,
          report.victims_deadline_bound, report.victims_resource_bound,
          report.victims_failed, cfg.to_string().c_str());
    }
  }

  // Phase two: deterministic process-kill trials against the shard backend.
  // Each trial SIGKILLs a worker mid-run (seed-keyed victim and kill count)
  // and replays the identical configuration; recovery must lose nothing and
  // must land on the same per-victim outcomes both times.
  for (std::size_t t = 0; t < process_trials; ++t) {
    const std::size_t trial = trials + t;
    const std::size_t processes =
        static_cast<std::size_t>(rng.uniform_int(2, 3));
    const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<int>(ref_report.findings.size()) - 1));
    const std::size_t victim = ref_report.findings[pick].net;
    const int kills = rng.uniform_int(1, 2);

    VerifierOptions options = base;
    options.processes = processes;
    options.journal_path = journal_path;

    const std::string hook =
        std::to_string(victim) + ":" + std::to_string(kills);
    ::setenv("XTV_TEST_SHARD_KILL_ON_START", hook.c_str(), 1);

    bool escaped = false;
    VerificationReport first, second;
    try {
      first = verifier.verify(design, options);
      std::remove(journal_path.c_str());
      second = verifier.verify(design, options);
    } catch (const std::exception& e) {
      escaped = true;
      ++escapes;
      ++g_checks_failed;
      std::fprintf(stderr,
                   "trial %zu: ESCAPED EXCEPTION: %s [procs=%zu kill=%s]\n",
                   trial, e.what(), processes, hook.c_str());
    }
    ::unsetenv("XTV_TEST_SHARD_KILL_ON_START");
    std::remove(journal_path.c_str());
    if (escaped) continue;

    const std::size_t before = g_checks_failed;
    check_contract(trial, first, reference, false, false);
    check_contract(trial, second, reference, false, false);

    // Nobody is lost: the kill must not shrink the victim population.
    expect(first.victims_eligible == ref_report.victims_eligible, trial,
           "process trial lost eligible victims");
    expect(first.findings.size() == ref_report.findings.size(), trial,
           "process trial lost findings");

    // One quarantine per trial; a worker dies once per armed kill; the
    // victim is conceded only when the solo retry is also killed.
    expect(first.worker_crashes == static_cast<std::size_t>(kills), trial,
           "worker crash count disagrees with armed kills");
    expect(first.victims_quarantined == 1, trial,
           "expected exactly one quarantined victim");
    expect(first.victims_shard_crashed == (kills >= 2 ? 1u : 0u), trial,
           "shard-crashed count disagrees with armed kills");

    // Replays are stable: identical per-victim outcomes, bit for bit.
    expect(second.findings.size() == first.findings.size(), trial,
           "replay changed the finding count");
    if (second.findings.size() == first.findings.size()) {
      for (std::size_t i = 0; i < first.findings.size(); ++i) {
        const VictimFinding& a = first.findings[i];
        const VictimFinding& b = second.findings[i];
        const std::string net = "net " + std::to_string(a.net);
        expect(a.net == b.net && a.status == b.status && a.peak == b.peak &&
                   a.peak_fraction == b.peak_fraction &&
                   a.violation == b.violation,
               trial, "replay diverged from first run", net);
      }
    }

    std::printf(
        "trial %3zu: ok=%s procs=%zu kill=%s crashes=%zu quarantined=%zu "
        "shard-crashed=%zu restarts=%zu\n",
        trial, g_checks_failed == before ? "yes" : "NO", processes,
        hook.c_str(), first.worker_crashes, first.victims_quarantined,
        first.victims_shard_crashed, first.shard_restarts);
  }

  // Phase three: daemon robustness trials. Each trial forks a real
  // ServeDaemon over a fresh jobs directory, layers seed-drawn adversity
  // on one submitted job, and holds the serve contract: the job ends
  // "done", every victim is streamed exactly once, undisturbed victims
  // are bit-identical to a direct run, and the drain exits 0.
  if (serve_trials > 0) {
    // Direct-run reference with the daemon's exact construction: default
    // characterization (not the soak's reduced grid) and the default DSP
    // chip at the serve net count — the daemon must reproduce this
    // bit-for-bit through fork, shard processes, and crash recovery.
    const std::size_t serve_nets = 60;
    CellLibrary serve_lib(tech);
    CharacterizedLibrary serve_chars(serve_lib);
    Extractor serve_extractor(tech);
    DspChipOptions serve_chip;
    serve_chip.net_count = serve_nets;
    const ChipDesign serve_design = generate_dsp_chip(serve_lib, serve_chip);
    serve::JobSpec spec;  // chip_audit-parity defaults
    VerifierOptions serve_vo = spec.to_options();
    serve_vo.threads = 1;
    serve_vo.processes = 0;
    ChipVerifier serve_verifier(serve_extractor, serve_chars);
    std::printf("serve reference run (direct, in-process)...\n");
    const VerificationReport serve_ref =
        serve_verifier.verify(serve_design, serve_vo);
    std::map<std::size_t, const VictimFinding*> serve_ref_by_net;
    for (const VictimFinding& f : serve_ref.findings)
      serve_ref_by_net[f.net] = &f;

    const std::string base_dir =
        "chaos_serve_" + std::to_string(::getpid());
    for (std::size_t t = 0; t < serve_trials; ++t) {
      const std::size_t trial = trials + process_trials + t;

      // Draw the adversity mix. Concurrency and the TCP transport
      // alternate deterministically so even a 2-trial smoke covers both
      // the single-job Unix-socket path and the 4-wide TCP path.
      const bool concurrent = (t % 2 == 1);
      const bool use_tcp = concurrent;
      const int runner_crashes = rng.uniform_int(0, 2);
      const bool disconnect = rng.bernoulli(0.3);
      const bool daemon_kill = rng.bernoulli(0.4);
      const bool worker_kill = rng.bernoulli(0.3);
      std::size_t kill_victim = 0;
      int worker_kills = 0;
      if (worker_kill) {
        const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(serve_ref.findings.size()) - 1));
        kill_victim = serve_ref.findings[pick].net;
        worker_kills = rng.uniform_int(1, 2);
      }

      const std::size_t before = g_checks_failed;
      const std::string dir = base_dir + "_" + std::to_string(t);
      remove_tree(dir);
      ::mkdir(dir.c_str(), 0755);
      serve::DaemonOptions opt;
      opt.socket_path = dir + "/s.sock";
      opt.jobs_dir = dir + "/jobs";
      opt.net_count = serve_nets;
      opt.default_processes = 2;
      opt.default_retries = 3;  // absorbs the worst crash draw (2)
      opt.backoff.base_ms = 50.0;
      opt.backoff.max_ms = 200.0;
      const std::string rss_path = dir + "/rss_mb";
      auto set_rss = [&](const char* mb) {
        std::ofstream out(rss_path);
        out << mb << "\n";
      };
      if (concurrent) {
        opt.max_running = 4;
        opt.listen_address = "127.0.0.1:0";
        // The governor watches this fake RSS reading; the trial spikes
        // it mid-run to force a shed.
        opt.global_mem_soft_mb = 100.0;
        set_rss("10");
        ::setenv("XTV_TEST_SERVE_RSS_FILE", rss_path.c_str(), 1);
      }

      if (runner_crashes > 0)
        ::setenv("XTV_TEST_SERVE_RUNNER_CRASH",
                 std::to_string(runner_crashes).c_str(), 1);
      if (worker_kill) {
        const std::string hook = std::to_string(kill_victim) + ":" +
                                 std::to_string(worker_kills);
        ::setenv("XTV_TEST_SHARD_KILL_ON_START", hook.c_str(), 1);
      }

      // One job on even trials; three distinct jobs (audit_seed is in
      // the job identity but, with auditing off, not in the findings) on
      // concurrent trials. Explicit per-job reservations keep all three
      // inside the 100 MiB budget at once — the structural estimate for
      // a 2-process job exceeds the whole budget, which would serialize
      // them and leave the shed spike with nothing to shed.
      std::vector<serve::JobSpec> specs(1, spec);
      if (concurrent) {
        specs[0].mem_mb = 25.0;
        for (std::size_t j = 1; j < 3; ++j) {
          serve::JobSpec s = specs[0];
          s.options.audit_seed = 1000 + j;
          specs.push_back(s);
        }
      }

      char cfg[192];
      std::snprintf(cfg, sizeof(cfg),
                    "jobs=%zu tcp=%d crashes=%d disconnect=%d daemon-kill=%d "
                    "worker-kill=%s",
                    specs.size(), use_tcp ? 1 : 0, runner_crashes,
                    disconnect ? 1 : 0, daemon_kill ? 1 : 0,
                    worker_kill ? (std::to_string(kill_victim) + ":" +
                                   std::to_string(worker_kills))
                                      .c_str()
                                : "-");

      // Resolve the submission endpoint: the Unix socket, or the TCP
      // endpoint the daemon published (re-read after every restart — an
      // ephemeral port never survives a SIGKILL).
      auto endpoint = [&]() -> std::string {
        if (!use_tcp) return opt.socket_path;
        const std::string path = opt.jobs_dir + "/daemon.tcp";
        for (int i = 0; i < 200; ++i) {
          std::ifstream in(path);
          std::string ep;
          if (std::getline(in, ep) && !ep.empty()) return ep;
          ::usleep(50000);
        }
        return "";
      };

      pid_t daemon_pid = fork_daemon(opt);
      bool ok = daemon_pid > 0 &&
                wait_daemon_ready(opt.socket_path, daemon_pid, 120000.0);
      expect(ok, trial, "daemon never became ready", cfg);

      // Submit from first clients — which may vanish right after.
      if (ok) {
        std::vector<std::unique_ptr<serve::ServeClient>> firsts;
        for (const serve::JobSpec& s : specs) {
          auto first = std::make_unique<serve::ServeClient>();
          std::string err;
          const std::string ep = endpoint();
          ok = !ep.empty() && first->connect(ep, &err) &&
               serve_submit_nowait(*first, s).empty();
          expect(ok, trial, "submission was not accepted", cfg);
          if (!ok) break;
          firsts.push_back(std::move(first));
        }
        if (!disconnect && ok) {
          // Keep the connections open a moment so the daemon exercises
          // live watchers; the scope exit is the disconnect case.
          ::usleep(10000);
        }
      }

      // Memory-pressure spike: the governor must shed the youngest
      // runner back to queued (attempt refunded) and recover once the
      // pressure clears — with zero effect on the final findings.
      if (ok && concurrent) {
        ::usleep(static_cast<useconds_t>(rng.uniform_int(50, 250)) * 1000);
        set_rss("500");
        ::usleep(300000);
        set_rss("10");
      }

      // Daemon SIGKILL mid-run, then a cold restart over the same state.
      if (ok && daemon_kill) {
        ::usleep(static_cast<useconds_t>(rng.uniform_int(30, 300)) * 1000);
        ::kill(daemon_pid, SIGKILL);
        int status = 0;
        ::waitpid(daemon_pid, &status, 0);
        std::remove((opt.jobs_dir + "/daemon.tcp").c_str());  // stale port
        daemon_pid = fork_daemon(opt);
        ok = daemon_pid > 0 &&
             wait_daemon_ready(opt.socket_path, daemon_pid, 120000.0);
        expect(ok, trial, "restarted daemon never became ready", cfg);
      }

      std::size_t collected = 0;
      if (ok) {
        for (const serve::JobSpec& s : specs) {
          serve::JobResult result;
          serve::ServeClient client;
          std::string err;
          const std::string ep = endpoint();
          const bool job_ok =
              !ep.empty() && client.connect(ep, &err) &&
              serve::submit_and_wait(client, s, 300000.0, &result, &err);
          expect(job_ok, trial, "job never reached a terminal state",
                 std::string(cfg) + (err.empty() ? "" : ": " + err));
          if (!job_ok) {
            ok = false;
            continue;
          }
          collected += result.findings.size();

          expect(result.state == serve::JobState::kDone, trial,
                 "job ended conceded despite an absorbable crash budget",
                 cfg);
          expect(result.duplicate_findings == 0, trial,
                 "a finding was streamed more than once", cfg);

          // Exactly one explicit outcome per victim: the streamed net
          // set must equal the reference victim set — nothing lost,
          // nothing invented.
          expect(result.findings.size() == serve_ref.findings.size(), trial,
                 "finding count differs from the direct run",
                 std::to_string(result.findings.size()) + " vs " +
                     std::to_string(serve_ref.findings.size()));
          for (const auto& [net, rec] : result.findings) {
            const auto it = serve_ref_by_net.find(net);
            expect(it != serve_ref_by_net.end(), trial,
                   "served finding for a net the direct run never reported",
                   "net " + std::to_string(net));
            if (it == serve_ref_by_net.end()) continue;
            const VictimFinding& want = *it->second;
            const VictimFinding& got = rec.finding;
            const bool identical =
                got.peak == want.peak &&
                got.peak_fraction == want.peak_fraction &&
                got.violation == want.violation &&
                got.status == want.status &&
                got.reduced_order == want.reduced_order;
            if (worker_kill && net == kill_victim) {
              // The kill budget is shared across concurrent jobs, so any
              // one job may have seen 0, 1 (recovered bit-exact), or 2
              // kills (explicit kShardCrashed concession) on this net.
              expect(identical ||
                         got.status == FindingStatus::kShardCrashed,
                     trial,
                     "killed victim neither bit-exact nor conceded",
                     "net " + std::to_string(net));
              if (!concurrent && worker_kills >= 2)
                // Single-job trials are deterministic: both kills landed
                // here, so it MUST be the typed concession.
                expect(got.status == FindingStatus::kShardCrashed, trial,
                       "twice-killed victim not conceded as kShardCrashed",
                       "net " + std::to_string(net));
              continue;
            }
            expect(identical, trial,
                   "served finding differs from the direct run",
                   "net " + std::to_string(net));
          }
        }
      }

      // Drain: SIGTERM must end the daemon with exit 0.
      if (daemon_pid > 0) {
        ::kill(daemon_pid, SIGTERM);
        int status = 0;
        ::waitpid(daemon_pid, &status, 0);
        if (ok)
          expect(WIFEXITED(status) && WEXITSTATUS(status) == 0, trial,
                 "drain did not exit 0", cfg);
      }

      ::unsetenv("XTV_TEST_SERVE_RUNNER_CRASH");
      ::unsetenv("XTV_TEST_SHARD_KILL_ON_START");
      ::unsetenv("XTV_TEST_SERVE_RSS_FILE");
      kill_orphan_runners(opt.jobs_dir);
      remove_tree(dir);
      std::printf("trial %3zu: ok=%s findings=%zu [%s]\n", trial,
                  ok && g_checks_failed == before ? "yes" : "NO", collected,
                  cfg);
    }
  }

  // Phase four: remote fan-out trials. Each trial forks a worker fleet,
  // runs one verification through a RemoteExecutor, and layers seed-drawn
  // worker adversity on top. The contract: every victim settles exactly
  // once, every finding is bit-identical to the direct run or an explicit
  // quarantine concession, and concessions only appear when something
  // actually killed workers.
  if (remote_trials > 0) {
    // Direct-run reference with the worker's exact construction: default
    // characterization and the default DSP chip at the spec'd net count.
    const std::size_t remote_nets = 60;
    CellLibrary remote_lib(tech);
    CharacterizedLibrary remote_chars(remote_lib);
    Extractor remote_extractor(tech);
    DspChipOptions remote_chip;
    remote_chip.net_count = remote_nets;
    const ChipDesign remote_design = generate_dsp_chip(remote_lib, remote_chip);
    serve::JobSpec rspec;  // chip_audit-parity defaults
    rspec.design_nets = remote_nets;
    ChipVerifier remote_verifier(remote_extractor, remote_chars);
    std::printf("remote reference run (direct, in-process)...\n");
    const VerificationReport remote_ref =
        remote_verifier.verify(remote_design, rspec.to_options());
    std::map<std::size_t, VictimFinding> remote_reference;
    for (const VictimFinding& f : remote_ref.findings)
      remote_reference[f.net] = f;

    // Warm cell cache: workers skip recharacterization, keeping each
    // trial's handshake in the milliseconds.
    const std::string tag = std::to_string(::getpid());
    const std::string cache = "chaos_remote_cells_" + tag + ".cache";
    const std::string rjournal = "chaos_remote_" + tag + ".journal";
    remote_chars.save(cache);

    for (std::size_t t = 0; t < remote_trials; ++t) {
      const std::size_t trial = trials + process_trials + serve_trials + t;
      const std::size_t n_workers =
          static_cast<std::size_t>(rng.uniform_int(1, 3));
      // Worker 0 may _exit on a chosen unit; the last worker may stall
      // through its lease (partition-then-heal); worker 1 may drop result
      // frames. With a small fleet the draws can collide on one worker —
      // crash beats stall beats drop, so each trial stays interpretable.
      const std::size_t crash_unit =
          static_cast<std::size_t>(rng.uniform_int(0, 3));
      const std::size_t drop_every =
          static_cast<std::size_t>(rng.uniform_int(2, 4));
      const bool crash_one = rng.bernoulli(0.35);
      const bool stall_one =
          rng.bernoulli(0.3) && !(crash_one && n_workers == 1);
      const bool drop_one =
          rng.bernoulli(0.3) &&
          !(n_workers == 1 && (crash_one || stall_one));
      const int sigkills = rng.uniform_int(0, static_cast<int>(n_workers));
      const int kill_delay_ms = rng.uniform_int(30, 250);
      const bool journal_on = rng.bernoulli(0.5);

      std::vector<pid_t> pids;
      std::vector<std::string> eps;
      bool ok = true;
      for (std::size_t w = 0; w < n_workers && ok; ++w) {
        const bool crash_here = crash_one && w == 0;
        const bool stall_here = stall_one && w == n_workers - 1 && !crash_here;
        const bool drop_here = drop_one && (n_workers == 1 || w == 1);
        if (crash_here)
          ::setenv("XTV_TEST_WORKER_CRASH_UNIT",
                   std::to_string(crash_unit).c_str(), 1);
        if (stall_here) ::setenv("XTV_TEST_WORKER_STALL_MS", "1200", 1);
        if (drop_here)
          ::setenv("XTV_TEST_DROP_FRAME_EVERY",
                   std::to_string(drop_every).c_str(), 1);
        const std::string ep_file =
            "chaos_remote_" + tag + "_" + std::to_string(w) + ".ep";
        const pid_t pid = fork_remote_worker(ep_file, cache);
        ::unsetenv("XTV_TEST_WORKER_CRASH_UNIT");
        ::unsetenv("XTV_TEST_WORKER_STALL_MS");
        ::unsetenv("XTV_TEST_DROP_FRAME_EVERY");
        if (pid <= 0) {
          expect(false, trial, "worker fork failed");
          ok = false;
          break;
        }
        pids.push_back(pid);
        const std::string ep = read_worker_endpoint(ep_file);
        std::remove(ep_file.c_str());
        if (ep.empty()) {
          expect(false, trial, "worker never published an endpoint");
          ok = false;
          break;
        }
        eps.push_back(ep);
      }

      char cfg[160];
      std::snprintf(cfg, sizeof(cfg),
                    "workers=%zu crash=%s stall=%d drop=%s sigkills=%d@%dms "
                    "journal=%d",
                    n_workers,
                    crash_one ? std::to_string(crash_unit).c_str() : "-",
                    stall_one ? 1 : 0,
                    drop_one ? std::to_string(drop_every).c_str() : "-",
                    sigkills, kill_delay_ms, journal_on ? 1 : 0);

      bool escaped = false;
      VerificationReport report;
      if (ok) {
        VerifierOptions vo = rspec.to_options();
        if (journal_on) vo.journal_path = rjournal;
        serve::RemoteExecOptions ro;
        ro.workers = eps;
        ro.heartbeat_ms = 100.0;  // a 1.2 s stall expires and heals in-trial
        ro.unit_victims = 4;
        ro.backoff_base_ms = 100.0;
        ro.journal_path = vo.journal_path;
        ro.options_hash = options_result_hash(vo);
        ro.spec_text = rspec.to_text();
        serve::RemoteExecutor exec(ro);
        vo.remote_backend = &exec;

        // Seed-keyed mid-run SIGKILLs, fleet-wide at the top draw — the
        // all-workers-dead trials must still complete via local fallback.
        std::thread killer;
        if (sigkills > 0) {
          std::vector<pid_t> targets(pids.begin(), pids.begin() + sigkills);
          killer = std::thread([targets, kill_delay_ms] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kill_delay_ms));
            for (pid_t pid : targets) ::kill(pid, SIGKILL);
          });
        }
        try {
          report = remote_verifier.verify(remote_design, vo);
        } catch (const std::exception& e) {
          escaped = true;
          ++escapes;
          ++g_checks_failed;
          std::fprintf(stderr, "trial %zu: ESCAPED EXCEPTION: %s [%s]\n",
                       trial, e.what(), cfg);
        }
        if (killer.joinable()) killer.join();
      }

      for (pid_t pid : pids) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
      std::remove(rjournal.c_str());

      if (ok && !escaped) {
        const std::size_t before = g_checks_failed;
        check_contract(trial, report, remote_reference, false, false);

        // Exactly once: the victim population survives any adversity.
        expect(report.victims_eligible == remote_ref.victims_eligible, trial,
               "remote trial lost eligible victims", cfg);
        expect(report.findings.size() == remote_ref.findings.size(), trial,
               "remote trial changed the finding count", cfg);

        // Every finding is the direct run's, bit for bit, or an explicit
        // quarantine concession — and concessions require worker deaths.
        const bool deadly = crash_one || sigkills > 0;
        std::size_t conceded = 0;
        for (const VictimFinding& f : report.findings) {
          const auto it = remote_reference.find(f.net);
          expect(it != remote_reference.end(), trial,
                 "remote finding for a net the direct run never reported",
                 "net " + std::to_string(f.net));
          if (it == remote_reference.end()) continue;
          if (f.status == FindingStatus::kShardCrashed) {
            ++conceded;
            expect(deadly, trial,
                   "quarantine concession without worker-killing adversity",
                   "net " + std::to_string(f.net));
            continue;
          }
          const VictimFinding& want = it->second;
          expect(f.peak == want.peak &&
                     f.peak_fraction == want.peak_fraction &&
                     f.violation == want.violation &&
                     f.status == want.status &&
                     f.reduced_order == want.reduced_order,
                 trial, "remote finding differs from the direct run",
                 "net " + std::to_string(f.net));
        }
        expect(report.victims_shard_crashed == conceded, trial,
               "shard-crashed counter disagrees with the findings", cfg);

        std::printf("trial %3zu: ok=%s findings=%zu conceded=%zu "
                    "restarts=%zu [%s]\n",
                    trial, g_checks_failed == before ? "yes" : "NO",
                    report.findings.size(), conceded, report.shard_restarts,
                    cfg);
      }
    }
    std::remove(cache.c_str());
  }

  std::printf("\nchaos_soak: %zu trials, %zu process trials, %zu serve "
              "trials, %zu remote trials, %zu contract violations, %zu "
              "escaped exceptions\n",
              trials, process_trials, serve_trials, remote_trials,
              g_checks_failed, escapes);
  return g_checks_failed == 0 ? 0 : 1;
}
