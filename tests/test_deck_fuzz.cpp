// Deterministic corpus-replay fuzz smoke for the SPICE deck parser.
//
// Contract under test: parse_spice_deck() on ANY byte string either returns a
// Circuit whose element values are finite, or throws std::runtime_error with a
// non-empty message. It must never crash, hang, or leak a different exception
// type. The corpus seeds in tests/corpus/ cover every card class the subset
// grammar knows; the mutation sweeps are seeded so every run replays the same
// inputs — a failure here is reproducible, not a flake.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "netlist/circuit.h"
#include "netlist/spice_deck.h"
#include "util/prng.h"

namespace xtv {
namespace {

struct Seed {
  std::string name;
  std::string text;
};

std::vector<Seed> load_corpus() {
  std::vector<Seed> corpus;
  for (const auto& entry : std::filesystem::directory_iterator(XTV_CORPUS_DIR)) {
    if (entry.path().extension() != ".sp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    corpus.push_back({entry.path().filename().string(), text.str()});
  }
  std::sort(corpus.begin(), corpus.end(),
            [](const Seed& a, const Seed& b) { return a.name < b.name; });
  return corpus;
}

// Runs one input through the parser and enforces the crash-safety contract.
// Returns true if the input parsed cleanly.
bool replay(const std::string& text, const std::string& label) {
  try {
    Circuit c = parse_spice_deck(text);
    for (const auto& r : c.resistors()) EXPECT_TRUE(std::isfinite(r.ohms)) << label;
    for (const auto& cap : c.capacitors())
      EXPECT_TRUE(std::isfinite(cap.farads)) << label;
    return true;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()), "") << label;
    return false;
  } catch (const std::exception& e) {
    ADD_FAILURE() << label << ": escaped non-runtime_error exception: " << e.what();
    return false;
  }
}

TEST(DeckFuzz, CorpusIsNonTrivial) {
  const auto corpus = load_corpus();
  ASSERT_GE(corpus.size(), 5u) << "corpus directory missing seeds: " << XTV_CORPUS_DIR;
}

TEST(DeckFuzz, CorpusSeedsParseAndRoundTrip) {
  for (const auto& seed : load_corpus()) {
    Circuit first;
    ASSERT_NO_THROW(first = parse_spice_deck(seed.text)) << seed.name;
    // write -> parse -> write must be a fixed point: the emitted deck is in
    // the same subset grammar, so one round trip canonicalizes it.
    const std::string emitted = write_spice_deck(first, seed.name);
    Circuit second;
    ASSERT_NO_THROW(second = parse_spice_deck(emitted)) << seed.name;
    EXPECT_EQ(first.resistors().size(), second.resistors().size()) << seed.name;
    EXPECT_EQ(first.capacitors().size(), second.capacitors().size()) << seed.name;
    EXPECT_EQ(first.vsources().size(), second.vsources().size()) << seed.name;
    EXPECT_EQ(first.isources().size(), second.isources().size()) << seed.name;
    EXPECT_EQ(first.mosfets().size(), second.mosfets().size()) << seed.name;
    EXPECT_EQ(emitted, write_spice_deck(second, seed.name)) << seed.name;
  }
}

// Known-bad decks exercising each explicit throw path in the parser. These
// are inline rather than corpus files so the expectation (must REJECT) stays
// next to the input.
TEST(DeckFuzz, MalformedDecksAreRejectedWithTypedErrors) {
  const std::vector<std::pair<const char*, const char*>> bad = {
      {"unknown card", "* t\nQ1 a b c 1\n.end\n"},
      {"missing value", "* t\nR1 a b\n.end\n"},
      {"malformed numeric", "* t\nR1 a b 12..5\n.end\n"},
      {"suffix overflow to inf", "* t\nR1 a b 1e308k\n.end\n"},
      {"continuation as first line", "+ 1n 2.5\n.end\n"},
      {"unknown model reference", "* t\nM1 d g s b nosuch W=1u L=1u\n.end\n"},
      {"bad model type", "* t\n.model x JFET (VT0=1)\n.end\n"},
      {"V without a source", "* t\nV1 a 0\n.end\n"},
      {"DC without a value", "* t\nV1 a 0 DC\n.end\n"},
      {"empty PWL", "* t\nV1 a 0 PWL()\n.end\n"},
      {"non-increasing PWL times", "* t\nV1 a 0 PWL(0 0 1n 1 1n 2)\n.end\n"},
      {"M with too few nodes", "* t\nM1 d g n\n.end\n"},
      {"negative resistor", "* t\nR1 a b -50\n.end\n"},
  };
  for (const auto& [what, deck] : bad) {
    EXPECT_THROW((void)parse_spice_deck(deck), std::runtime_error) << what;
  }
}

// Seeded mutation sweep: byte flips, span deletions/duplications, dictionary
// splices, and truncations over every corpus seed. ~1k inputs per seed, all
// reproducible from the fixed Prng seed.
TEST(DeckFuzz, MutatedCorpusNeverEscapesContract) {
  const auto corpus = load_corpus();
  Prng rng(0xDECCFA22u);
  const std::vector<std::string> dictionary = {
      "PWL(",  ")",    "DC",   ".model", ".end",  "MEG", "=",   "+",
      "*",     ";",    "\n+ ", "0",      "gnd",   "1e308k", "W=", "L=",
      "NMOS",  "PMOS", ",",    "\t",     "(",     "-",   "1e-"};
  std::size_t parsed = 0, rejected = 0;
  for (const auto& seed : corpus) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string mut = seed.text;
      const int edits = rng.uniform_int(1, 4);
      for (int e = 0; e < edits && !mut.empty(); ++e) {
        const std::size_t n = mut.size();
        switch (rng.uniform_int(0, 4)) {
          case 0: {  // flip one byte to a random printable (or newline)
            const char repl = static_cast<char>(rng.uniform_int(9, 126));
            mut[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1))] = repl;
            break;
          }
          case 1: {  // delete a span
            const std::size_t at =
                static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
            const std::size_t len = std::min<std::size_t>(
                static_cast<std::size_t>(rng.uniform_int(1, 16)), n - at);
            mut.erase(at, len);
            break;
          }
          case 2: {  // duplicate a span in place
            const std::size_t at =
                static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
            const std::size_t len = std::min<std::size_t>(
                static_cast<std::size_t>(rng.uniform_int(1, 24)), n - at);
            mut.insert(at, mut.substr(at, len));
            break;
          }
          case 3: {  // splice a grammar token from the dictionary
            const auto& tok = dictionary[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(dictionary.size()) - 1))];
            mut.insert(static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n))),
                       tok);
            break;
          }
          default:  // truncate
            mut.resize(static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n))));
        }
      }
      if (replay(mut, seed.name + " trial " + std::to_string(trial)))
        ++parsed;
      else
        ++rejected;
    }
  }
  // Sanity on the sweep itself: mutations must produce both outcomes, or the
  // fuzzer is only exploring one side of the contract.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(DeckFuzz, ValueParserFuzz) {
  Prng rng(0x5EEDu);
  const std::string charset = "0123456789.eE+-kKmMuUnNpPfFgGtT ";
  for (int trial = 0; trial < 5000; ++trial) {
    std::string text;
    const int len = rng.uniform_int(0, 12);
    for (int i = 0; i < len; ++i)
      text += charset[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(charset.size()) - 1))];
    try {
      const double v = parse_spice_value(text);
      EXPECT_TRUE(std::isfinite(v)) << "'" << text << "'";
    } catch (const std::runtime_error&) {
      // typed rejection is fine
    } catch (const std::exception& e) {
      ADD_FAILURE() << "'" << text << "' escaped: " << e.what();
    }
  }
}

}  // namespace
}  // namespace xtv
