// Robustness tests: the fault-injection harness, typed numerical errors,
// the verifier's retry/degradation ladder (every rung), the report's
// accounting invariant under periodic injection, and the hardened input
// validation in the deck parser / stats / PRNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "linalg/cholesky.h"
#include "linalg/dense_lu.h"
#include "netlist/spice_deck.h"
#include "spice/waveform.h"
#include "util/fault_injection.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/status.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

class RobustnessFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
    DspChipOptions chip_opt;
    chip_opt.net_count = 120;
    chip_opt.tracks = 8;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete chars_;
    delete lib_;
    delete extractor_;
    design_ = nullptr;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }

  static VerifierOptions fast_options() {
    VerifierOptions options;
    options.glitch.align_aggressors = false;
    options.glitch.tstop = 3e-9;
    return options;
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
};

CellLibrary* RobustnessFixture::lib_ = nullptr;
CharacterizedLibrary* RobustnessFixture::chars_ = nullptr;
Extractor* RobustnessFixture::extractor_ = nullptr;
ChipDesign* RobustnessFixture::design_ = nullptr;

// ---------------------------------------------------------------------------
// The injector itself: deterministic counter-keyed firing.

TEST_F(RobustnessFixture, InjectorFiresOnPeriodWithCap) {
  auto& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.should_fail(FaultSite::kCholeskyFactor));  // disarmed
  EXPECT_EQ(fi.hits(FaultSite::kCholeskyFactor), 0u);        // not counted

  fi.arm(FaultSite::kCholeskyFactor, /*period=*/3, /*max_fires=*/2);
  std::vector<bool> fired;
  for (int i = 0; i < 12; ++i)
    fired.push_back(fi.should_fail(FaultSite::kCholeskyFactor));
  // Fires on hits 3 and 6, then the cap stops it.
  const std::vector<bool> expect = {false, false, true, false, false, true,
                                    false, false, false, false, false, false};
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(fi.hits(FaultSite::kCholeskyFactor), 12u);
  EXPECT_EQ(fi.fires(FaultSite::kCholeskyFactor), 2u);

  // Sites are independent.
  EXPECT_FALSE(fi.should_fail(FaultSite::kDenseLuFactor));

  fi.disarm(FaultSite::kCholeskyFactor);
  EXPECT_FALSE(fi.should_fail(FaultSite::kCholeskyFactor));
  // Re-arming resets the site's counters.
  fi.arm(FaultSite::kCholeskyFactor, 1, 1);
  EXPECT_EQ(fi.hits(FaultSite::kCholeskyFactor), 0u);
  EXPECT_TRUE(fi.should_fail(FaultSite::kCholeskyFactor));
  fi.reset();
  EXPECT_FALSE(fi.should_fail(FaultSite::kCholeskyFactor));
}

// ---------------------------------------------------------------------------
// Typed errors out of the instrumented layers.

TEST_F(RobustnessFixture, InjectedFaultsThrowTypedNumericalErrors) {
  auto& fi = FaultInjector::instance();

  fi.arm(FaultSite::kCholeskyFactor);
  try {
    Cholesky chol(DenseMatrix::identity(3));
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCholeskyBreakdown);
  }
  fi.reset();

  fi.arm(FaultSite::kDenseLuFactor);
  try {
    DenseLu lu(DenseMatrix::identity(3));
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kSingularMatrix);
  }
  fi.reset();

  // NumericalError stays catchable as runtime_error, so pre-existing
  // callers (and tests) that expect runtime_error keep working.
  fi.arm(FaultSite::kCholeskyFactor);
  EXPECT_THROW(Cholesky(DenseMatrix::identity(2)), std::runtime_error);
}

TEST_F(RobustnessFixture, RealBreakdownsCarryCodesToo) {
  // A genuinely indefinite matrix, no injection: same typed error.
  DenseMatrix bad = DenseMatrix::identity(2);
  bad(1, 1) = -1.0;
  try {
    Cholesky chol(bad);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCholeskyBreakdown);
  }
  DenseMatrix sing(2, 2);  // all zeros
  try {
    DenseLu lu(sing);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kSingularMatrix);
  }
}

TEST_F(RobustnessFixture, WaveformFiniteGuard) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1e-9, 1.0);
  EXPECT_TRUE(w.all_finite());
  w.append(2e-9, std::nan(""));
  EXPECT_FALSE(w.all_finite());
  Waveform inf;
  inf.append(0.0, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inf.all_finite());
}

// ---------------------------------------------------------------------------
// The verifier ladder, rung by rung.

TEST_F(RobustnessFixture, LadderRetryRecoversAfterSingleFailure) {
  VerifierOptions options = fast_options();
  options.max_victims = 1;
  // First reduced-model run fails, the halved-timestep retry succeeds.
  FaultInjector::instance().arm(FaultSite::kReducedNewton, 1, /*max_fires=*/1);
  const VerificationReport report = ChipVerifier(*extractor_, *chars_)
                                        .verify(*design_, options);
  ASSERT_EQ(report.findings.size(), 1u);
  const VictimFinding& f = report.findings[0];
  EXPECT_EQ(f.status, FindingStatus::kAnalyzedAfterRetry);
  EXPECT_EQ(f.retries, 1u);
  EXPECT_EQ(f.error_code, StatusCode::kNewtonDivergence);
  EXPECT_FALSE(f.error.empty());
  EXPECT_EQ(report.victims_analyzed, 1u);
  EXPECT_EQ(report.victims_retried, 1u);
  EXPECT_EQ(report.victims_fallback, 0u);
  EXPECT_EQ(report.victims_failed, 0u);
  EXPECT_GT(std::fabs(f.peak), 0.0);
}

TEST_F(RobustnessFixture, LadderFallsBackToFullSimulation) {
  VerifierOptions options = fast_options();
  options.max_victims = 1;
  // Every reduced-model attempt fails (all three MOR rungs); the golden
  // engine is untouched, so the full simulation rung lands.
  FaultInjector::instance().arm(FaultSite::kReducedNewton, 1, /*max_fires=*/0);
  const VerificationReport report = ChipVerifier(*extractor_, *chars_)
                                        .verify(*design_, options);
  // max_victims caps victims_analyzed; a fallback doesn't count as
  // analyzed, so every eligible victim lands here. Check the first.
  ASSERT_GE(report.findings.size(), 1u);
  const VictimFinding& f = report.findings[0];
  EXPECT_EQ(f.status, FindingStatus::kFellBackToFullSim);
  EXPECT_EQ(f.retries, 3u);
  EXPECT_EQ(f.error_code, StatusCode::kNewtonDivergence);
  EXPECT_EQ(report.victims_analyzed, 0u);
  EXPECT_EQ(report.victims_fallback, report.findings.size());
  EXPECT_EQ(report.victims_failed, 0u);
  EXPECT_GT(std::fabs(f.peak), 0.0);
}

TEST_F(RobustnessFixture, LadderFallsBackToConservativeBound) {
  VerifierOptions options = fast_options();
  // Clean reference run first (also primes the cell characterization, so
  // the injected run never needs a fresh SPICE characterization solve).
  options.max_victims = 2;
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport clean = verifier.verify(*design_, options);
  ASSERT_GE(clean.findings.size(), 1u);

  // Both simulation engines fail on everything: only the bound is left.
  FaultInjector::instance().arm(FaultSite::kReducedNewton, 1, 0);
  FaultInjector::instance().arm(FaultSite::kSpiceNewton, 1, 0);
  const VerificationReport report = verifier.verify(*design_, options);
  ASSERT_GE(report.findings.size(), clean.findings.size());
  EXPECT_EQ(report.victims_failed, 0u);
  EXPECT_EQ(report.victims_analyzed, 0u);
  for (const VictimFinding& f : report.findings) {
    EXPECT_EQ(f.status, FindingStatus::kFellBackToBound) << "net " << f.net;
    EXPECT_EQ(f.retries, 4u);
    EXPECT_LE(f.peak, 0.0);  // held-high victim: glitch pulls down
    EXPECT_GE(f.peak_fraction, 0.0);
    EXPECT_LE(f.peak_fraction, 1.0);
  }
  // The bound is conservative: for every victim the clean run analyzed,
  // the bound-fallback peak dominates the simulated peak.
  for (const VictimFinding& ref : clean.findings) {
    bool found = false;
    for (const VictimFinding& f : report.findings) {
      if (f.net != ref.net) continue;
      found = true;
      EXPECT_GE(std::fabs(f.peak), std::fabs(ref.peak) - 1e-12)
          << "net " << f.net;
    }
    EXPECT_TRUE(found) << "net " << ref.net << " vanished from the report";
  }
}

TEST_F(RobustnessFixture, AccountingInvariantUnderPeriodicInjection) {
  VerifierOptions options = fast_options();
  options.use_noise_screen = true;
  // Roughly one reduced-model run in ten dies mid-chip.
  FaultInjector::instance().arm(FaultSite::kReducedNewton, /*period=*/10, 0);
  const VerificationReport report = ChipVerifier(*extractor_, *chars_)
                                        .verify(*design_, options);
  ASSERT_GE(report.victims_eligible, 3u);
  // Every victim is reported exactly once, never silently skipped.
  EXPECT_EQ(report.victims_eligible,
            report.victims_analyzed + report.victims_screened_out +
                report.victims_fallback + report.victims_failed);
  EXPECT_EQ(report.findings.size(),
            report.victims_eligible - report.victims_screened_out);
  std::set<std::size_t> nets;
  for (const VictimFinding& f : report.findings) {
    EXPECT_TRUE(nets.insert(f.net).second) << "net " << f.net << " duplicated";
    if (f.status != FindingStatus::kAnalyzed) {
      EXPECT_GE(f.retries, 1u);
      EXPECT_FALSE(f.error.empty());
    }
  }
  EXPECT_GE(report.victims_retried, 1u);
  EXPECT_EQ(report.victims_failed, 0u);  // the ladder always lands somewhere
}

TEST_F(RobustnessFixture, CleanRunsAreDeterministicAndLadderFree) {
  VerifierOptions options = fast_options();
  options.max_victims = 4;
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport a = verifier.verify(*design_, options);
  const VerificationReport b = verifier.verify(*design_, options);
  ASSERT_GE(a.findings.size(), 1u);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].net, b.findings[i].net);
    // Bit-identical: the ladder's rung 0 runs the untouched options.
    EXPECT_EQ(a.findings[i].peak, b.findings[i].peak);
    EXPECT_EQ(a.findings[i].status, FindingStatus::kAnalyzed);
    EXPECT_EQ(a.findings[i].retries, 0u);
    EXPECT_EQ(a.findings[i].error_code, StatusCode::kOk);
  }
  EXPECT_EQ(a.victims_retried, 0u);
  EXPECT_EQ(a.victims_fallback, 0u);
  EXPECT_EQ(a.victims_failed, 0u);
  EXPECT_EQ(a.victims_eligible,
            a.victims_analyzed + a.victims_screened_out);
}

// ---------------------------------------------------------------------------
// Hardened input validation (satellites).

TEST_F(RobustnessFixture, ParserRejectsNonFiniteValues) {
  EXPECT_NEAR(parse_spice_value("2.5k"), 2500.0, 1e-9);
  // std::stod accepts 1e308; the suffix scale overflows it to inf, which
  // must not leak into MNA stamps.
  EXPECT_THROW(parse_spice_value("1e308k"), std::runtime_error);
  EXPECT_THROW(parse_spice_value("1e999"), std::runtime_error);
  EXPECT_THROW(parse_spice_value("inf"), std::runtime_error);
  EXPECT_THROW(parse_spice_value("nan"), std::runtime_error);
}

TEST_F(RobustnessFixture, DeckErrorsNameTheLine) {
  const std::string deck =
      "* title\n"
      "R1 a b 1k\n"
      "C1 a 0 1e308k\n"
      ".end\n";
  try {
    parse_spice_deck(deck);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deck line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
  }
}

TEST_F(RobustnessFixture, StatsValidateInputs) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::runtime_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::runtime_error);
  EXPECT_THROW(percentile({}, 50.0), std::runtime_error);
  EXPECT_NO_THROW(Histogram(0.0, 1.0, 4));
}

TEST_F(RobustnessFixture, PrngValidatesInputs) {
  Prng rng(7);
  EXPECT_THROW(rng.uniform_int(5, 1), std::runtime_error);
  EXPECT_THROW(rng.log_uniform(-1.0, 2.0), std::runtime_error);
  EXPECT_THROW(rng.log_uniform(2.0, 1.0), std::runtime_error);
  EXPECT_THROW(rng.weighted_index({}), std::runtime_error);
  EXPECT_THROW(rng.weighted_index({0.0, -3.0}), std::runtime_error);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

}  // namespace
}  // namespace xtv
