// Resource-governance tests (DESIGN.md §9): the cluster memory-accounting
// arena and its typed budget breach, the RSS watchdog and pressure-driven
// shedding, scoped FP-exception trapping, victim-keyed deterministic fault
// injection, worker-task isolation outside the ladder, and the journal's
// options-hash resume guard.
#include <gtest/gtest.h>

#include <atomic>
#include <cfenv>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>

#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "linalg/dense_matrix.h"
#include "mor/sympvl.h"
#include "netlist/rc_network.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/fp_guard.h"
#include "util/resource.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xtv {
namespace {

// ---------------------------------------------------------------------------
// ClusterScope: accounting, breach, exemption.

TEST(ResourceScope, ReadRssReturnsNonZeroOnLinux) {
  EXPECT_GT(resource::read_rss_bytes(), 0u);
}

TEST(ResourceScope, AccountsChargesAndPeakAndReleases) {
  resource::ClusterScope scope;
  EXPECT_EQ(resource::ClusterScope::current(), &scope);
  {
    resource::MemCharge fixed(1000);
    resource::ScopedCharge grown;
    grown.add(500);
    grown.add(250);
    EXPECT_EQ(scope.used(), 1750u);
    EXPECT_EQ(grown.total(), 750u);
  }
  EXPECT_EQ(scope.used(), 0u);
  EXPECT_EQ(scope.peak(), 1750u);
}

TEST(ResourceScope, BreachThrowsTypedErrorAndRollsBack) {
  resource::ClusterScope scope(1000);
  resource::MemCharge ok(800);
  try {
    resource::MemCharge breach(300);
    FAIL() << "expected kResourceExceeded";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kResourceExceeded);
    EXPECT_NE(std::string(e.what()).find("memory budget exceeded"),
              std::string::npos);
  }
  // The rejected charge must not linger in the accounting.
  EXPECT_EQ(scope.used(), 800u);
}

TEST(ResourceScope, ExemptionSuspendsEnforcementNotAccounting) {
  resource::ClusterScope scope(1000);
  {
    resource::ClusterScope::Exemption exempt;
    resource::MemCharge big(5000);  // over limit, but exempt
    EXPECT_EQ(scope.used(), 5000u);
  }
  EXPECT_EQ(scope.used(), 0u);
  EXPECT_THROW(resource::MemCharge(5000), NumericalError);
}

TEST(ResourceScope, NestedScopesBillTheInnermost) {
  resource::ClusterScope outer;
  {
    resource::ClusterScope inner;
    EXPECT_EQ(resource::ClusterScope::current(), &inner);
    resource::MemCharge c(4096);
    EXPECT_EQ(inner.used(), 4096u);
    EXPECT_EQ(outer.used(), 0u);
  }
  EXPECT_EQ(resource::ClusterScope::current(), &outer);
}

TEST(ResourceScope, GovernorSeesLiveScopesAndReturnsToBaseline) {
  resource::MemoryGovernor& gov = resource::MemoryGovernor::instance();
  const std::size_t base_bytes = gov.scoped_bytes();
  const std::size_t base_scopes = gov.scope_count();
  {
    resource::ClusterScope scope;
    resource::MemCharge c(12345);
    EXPECT_EQ(gov.scope_count(), base_scopes + 1);
    EXPECT_EQ(gov.scoped_bytes(), base_bytes + 12345);
  }
  EXPECT_EQ(gov.scope_count(), base_scopes);
  EXPECT_EQ(gov.scoped_bytes(), base_bytes);
}

// ---------------------------------------------------------------------------
// DenseMatrix integration: storage is charged, a breach precedes the
// allocation, and copies/moves keep the accounting exact.

TEST(ResourceScope, DenseMatrixChargesItsStorage) {
  resource::ClusterScope scope;
  {
    DenseMatrix m(100, 50);
    EXPECT_EQ(scope.used(), 100u * 50u * sizeof(double));
    DenseMatrix copy = m;  // second charge
    EXPECT_EQ(scope.used(), 2u * 100u * 50u * sizeof(double));
    DenseMatrix moved = std::move(copy);  // transfer, no new charge
    EXPECT_EQ(scope.used(), 2u * 100u * 50u * sizeof(double));
  }
  EXPECT_EQ(scope.used(), 0u);
}

TEST(ResourceScope, DenseMatrixOverBudgetThrowsInsteadOfAllocating) {
  resource::ClusterScope scope(1 << 20);  // 1 MiB
  DenseMatrix small(200, 200);            // 320 KB: fits
  EXPECT_THROW(DenseMatrix(400, 400), NumericalError);  // 1.28 MB: breach
  EXPECT_EQ(scope.used(), 200u * 200u * sizeof(double));
}

TEST(ResourceScope, NoScopeMeansNoAccounting) {
  ASSERT_EQ(resource::ClusterScope::current(), nullptr);
  DenseMatrix m(64, 64);  // must not crash or charge anything
  EXPECT_EQ(m.rows(), 64u);
}

// ---------------------------------------------------------------------------
// RSS watchdog.

TEST(ResourceWatchdog, RaisesAndClearsPressure) {
  resource::MemoryGovernor& gov = resource::MemoryGovernor::instance();
  gov.force_pressure(false);
  gov.set_watchdog_pressure(false);
  ASSERT_FALSE(gov.under_pressure());
  {
    resource::RssWatchdog watchdog(1, /*poll_interval_ms=*/5);  // 1-byte limit
    for (int i = 0; i < 200 && !gov.under_pressure(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(gov.under_pressure());
  }
  // Destruction clears the flag so one verify() can't poison the next.
  EXPECT_FALSE(gov.under_pressure());
}

// ---------------------------------------------------------------------------
// FP-exception guard.

TEST(FpGuard, DetectsRaisedFlagAndNamesTheKernel) {
  FpKernelGuard guard("demo_kernel");
  std::feraiseexcept(FE_INVALID);
  try {
    guard.check();
    FAIL() << "expected kFpException";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kFpException);
    const std::string what = e.what();
    EXPECT_NE(what.find("demo_kernel"), std::string::npos);
    EXPECT_NE(what.find("invalid"), std::string::npos);
  }
  // check() cleared the flags: a second check passes.
  guard.check();
}

TEST(FpGuard, RearmForgivesTransientExcursions) {
  FpKernelGuard guard("iterative_kernel");
  std::feraiseexcept(FE_OVERFLOW);  // diverging iterate...
  guard.rearm();                    // ...recovered by damping
  guard.check();                    // converged path: clean
}

TEST(FpGuard, InjectionForcesATrap) {
  FaultInjector::instance().reset();
  FaultInjector::instance().arm(FaultSite::kFpTrap, 1);
  FpKernelGuard guard("injected_kernel");
  try {
    guard.check();
    FAIL() << "expected injected kFpException";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kFpException);
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
  FaultInjector::instance().reset();
}

// ---------------------------------------------------------------------------
// Thread pool: per-index isolation.

TEST(ThreadPoolIsolation, AllIndicesRunDespiteMultipleThrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> ran(100);
  EXPECT_THROW(pool.parallel_for(ran.size(),
                                 [&](std::size_t i) {
                                   ran[i].fetch_add(1);
                                   if (i % 10 == 0)
                                     throw std::runtime_error("task bug");
                                 }),
               std::runtime_error);
  for (std::size_t i = 0; i < ran.size(); ++i)
    EXPECT_EQ(ran[i].load(), 1) << "index " << i;
}

// ---------------------------------------------------------------------------
// SyMPVL cooperative cancellation.

TEST(SympvlCancel, PreCancelledTokenStopsTheReduction) {
  RcNetwork net;
  int prev = net.add_node("in");
  net.add_port(prev);
  net.stamp_port_conductance(0, 1e-3);
  for (int i = 0; i < 8; ++i) {
    const int next = net.add_node();
    net.add_resistor(prev, next, 50.0);
    net.add_capacitor(next, RcNetwork::kGround, 5e-15);
    prev = next;
  }
  CancelToken token;
  token.cancel();
  SympvlOptions opt;
  opt.cancel = &token;
  try {
    sympvl_reduce(net, true, opt);
    FAIL() << "expected kDeadlineExceeded";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("sympvl_reduce"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Verifier-level governance on a small chip.

const Technology kTech = Technology::default_250nm();

class ResourceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
    DspChipOptions chip_opt;
    chip_opt.net_count = 100;
    chip_opt.tracks = 8;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete chars_;
    delete lib_;
    delete extractor_;
    design_ = nullptr;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  void SetUp() override {
    FaultInjector::instance().reset();
    resource::MemoryGovernor::instance().force_pressure(false);
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    resource::MemoryGovernor::instance().force_pressure(false);
  }

  static VerifierOptions fast_options() {
    VerifierOptions options;
    options.glitch.align_aggressors = false;
    options.glitch.tstop = 3e-9;
    return options;
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }

  static void expect_reports_equal(const VerificationReport& a,
                                   const VerificationReport& b) {
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      SCOPED_TRACE("finding " + std::to_string(i));
      const VictimFinding& x = a.findings[i];
      const VictimFinding& y = b.findings[i];
      EXPECT_EQ(x.net, y.net);
      EXPECT_EQ(x.peak, y.peak);  // bitwise: no tolerance
      EXPECT_EQ(x.peak_fraction, y.peak_fraction);
      EXPECT_EQ(x.violation, y.violation);
      EXPECT_EQ(x.status, y.status);
      EXPECT_EQ(x.retries, y.retries);
      EXPECT_EQ(x.error_code, y.error_code);
      EXPECT_EQ(x.error, y.error);
      EXPECT_EQ(x.aggressors_analyzed, y.aggressors_analyzed);
      EXPECT_EQ(x.reduced_order, y.reduced_order);
      EXPECT_EQ(x.em_violation, y.em_violation);
    }
    EXPECT_EQ(a.victims_eligible, b.victims_eligible);
    EXPECT_EQ(a.victims_analyzed, b.victims_analyzed);
    EXPECT_EQ(a.victims_screened_out, b.victims_screened_out);
    EXPECT_EQ(a.victims_retried, b.victims_retried);
    EXPECT_EQ(a.victims_fallback, b.victims_fallback);
    EXPECT_EQ(a.victims_failed, b.victims_failed);
    EXPECT_EQ(a.victims_deadline_bound, b.victims_deadline_bound);
    EXPECT_EQ(a.victims_resource_bound, b.victims_resource_bound);
    EXPECT_EQ(a.violations, b.violations);
  }

  static void expect_accounting_invariant(const VerificationReport& r) {
    EXPECT_EQ(r.victims_eligible, r.victims_analyzed + r.victims_screened_out +
                                      r.victims_fallback + r.victims_failed);
    EXPECT_LE(r.victims_deadline_bound + r.victims_resource_bound,
              r.victims_fallback);
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
};

CellLibrary* ResourceFixture::lib_ = nullptr;
CharacterizedLibrary* ResourceFixture::chars_ = nullptr;
Extractor* ResourceFixture::extractor_ = nullptr;
ChipDesign* ResourceFixture::design_ = nullptr;

TEST_F(ResourceFixture, TinyClusterBudgetDegradesToResourceBound) {
  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.cluster_mem_mb = 0.004;  // ~4 KiB: every dense matrix breaches
  const VerificationReport report = verifier.verify(*design_, options);

  expect_accounting_invariant(report);
  EXPECT_GE(report.victims_resource_bound, 1u);
  EXPECT_EQ(report.victims_failed, 0u);  // a breach is recoverable, never fatal
  for (const auto& f : report.findings) {
    if (f.status != FindingStatus::kResourceBound) continue;
    EXPECT_EQ(f.error_code, StatusCode::kResourceExceeded);
    EXPECT_GE(f.retries, 1u);
    EXPECT_GE(f.peak_fraction, 0.0);
    EXPECT_LE(f.peak_fraction, 1.0);
  }
}

TEST_F(ResourceFixture, GenerousMemoryBudgetChangesNothing) {
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport baseline = verifier.verify(*design_, fast_options());
  VerifierOptions governed = fast_options();
  governed.cluster_mem_mb = 1024.0;
  governed.global_mem_soft_mb = 1024.0 * 1024.0;
  const VerificationReport report = verifier.verify(*design_, governed);
  expect_reports_equal(baseline, report);
  EXPECT_EQ(report.victims_resource_bound, 0u);
}

TEST_F(ResourceFixture, ForcedPressureShedsLargestClustersToBound) {
  ChipVerifier verifier(*extractor_, *chars_);
  resource::MemoryGovernor::instance().force_pressure(true);
  const VerificationReport report = verifier.verify(*design_, fast_options());
  resource::MemoryGovernor::instance().force_pressure(false);

  expect_accounting_invariant(report);
  EXPECT_GE(report.victims_resource_bound, 1u);
  bool saw_shed = false;
  for (const auto& f : report.findings) {
    if (f.status != FindingStatus::kResourceBound) continue;
    EXPECT_EQ(f.error_code, StatusCode::kResourceExceeded);
    if (f.error.find("shed") != std::string::npos) saw_shed = true;
  }
  EXPECT_TRUE(saw_shed);
}

TEST_F(ResourceFixture, FpTrapInjectionRecoversThroughTheLadder) {
  ChipVerifier verifier(*extractor_, *chars_);
  // Warm the lazy cell-characterization cache before arming: its SPICE
  // runs execute outside the ladder (shared, main-thread), so a fault
  // injected there tests nothing about per-victim recovery.
  verifier.verify(*design_, fast_options());
  // One forced FP trap per victim: rung 0 fails with the typed
  // kFpException, rung 1 succeeds.
  FaultInjector::instance().arm(FaultSite::kFpTrap, 1, /*max_fires=*/1);
  const VerificationReport report = verifier.verify(*design_, fast_options());
  FaultInjector::instance().reset();

  expect_accounting_invariant(report);
  EXPECT_GE(report.victims_retried, 1u);
  bool saw_fp = false;
  for (const auto& f : report.findings)
    if (f.error_code == StatusCode::kFpException) {
      saw_fp = true;
      EXPECT_GE(f.retries, 1u);
    }
  EXPECT_TRUE(saw_fp);
}

TEST_F(ResourceFixture, WorkerTaskFaultOutsideLadderIsIsolatedAndTyped) {
  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.threads = 3;
  FaultInjector::instance().arm(FaultSite::kVictimTask, 3);
  const VerificationReport report = verifier.verify(*design_, options);
  FaultInjector::instance().reset();

  expect_accounting_invariant(report);
  EXPECT_GE(report.victims_failed, 1u);
  for (const auto& f : report.findings) {
    if (f.status != FindingStatus::kFailed) continue;
    EXPECT_NE(f.error.find("worker-task"), std::string::npos);
    // Maximally pessimistic, flagged for manual review.
    EXPECT_TRUE(f.violation);
    EXPECT_EQ(f.peak_fraction, 1.0);
  }
}

TEST_F(ResourceFixture, VictimKeyedInjectionMakesParallelMatchSerial) {
  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions serial = fast_options();
  VerifierOptions parallel = fast_options();
  parallel.threads = 4;

  // Period 5 hits different victims depending on arrival order under the
  // legacy global counter; victim-keyed decisions must not.
  FaultInjector::instance().arm(FaultSite::kReducedNewton, 5);
  const VerificationReport a = verifier.verify(*design_, serial);
  FaultInjector::instance().arm(FaultSite::kReducedNewton, 5);
  const VerificationReport b = verifier.verify(*design_, parallel);
  FaultInjector::instance().reset();

  EXPECT_GE(a.victims_retried, 1u);
  expect_reports_equal(a, b);
}

TEST_F(ResourceFixture, ResumeRefusesAJournalWithDifferentOptions) {
  ChipVerifier verifier(*extractor_, *chars_);
  const std::string path = temp_path("xtv_resource_options.journal");
  VerifierOptions options = fast_options();
  options.journal_path = path;
  const VerificationReport first = verifier.verify(*design_, options);

  // Same result-affecting options: resume is accepted and reproduces the
  // uninterrupted report from the journal alone.
  options.resume = true;
  const VerificationReport resumed = verifier.verify(*design_, options);
  expect_reports_equal(first, resumed);

  // A result-affecting change must be refused with an actionable message.
  VerifierOptions changed = options;
  changed.glitch_threshold = 0.2;
  try {
    verifier.verify(*design_, changed);
    FAIL() << "expected kInvalidInput";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("options"), std::string::npos);
  }

  // Scheduling-only changes (threads) keep the hash — and the journal.
  VerifierOptions rethreaded = options;
  rethreaded.threads = 2;
  EXPECT_EQ(options_result_hash(options), options_result_hash(rethreaded));
  EXPECT_NE(options_result_hash(options), options_result_hash(changed));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtv
