// Tests for the a-posteriori MOR accuracy certification layer (DESIGN.md
// §10): the shifted-pencil exact solves, the certificate verdict on RC
// ladders (pass at sufficient order, fail at starved order, converge under
// escalation), the verifier's upward escalation ladder with kCertified /
// kAccuracyBound statuses, the victim-keyed SPICE cross-audit, and the v2
// journal fields.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/journal.h"
#include "core/verifier.h"
#include "linalg/dense_lu.h"
#include "linalg/shifted_solver.h"
#include "linalg/sym_eigen.h"
#include "mor/certify.h"
#include "mor/sympvl.h"
#include "netlist/rc_network.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace xtv {
namespace {

// RC ladder: `stages` sections of series R and shunt C, one driven port.
RcNetwork make_ladder(int stages, double r = 50.0, double c = 5e-15,
                      double port_g = 1e-3) {
  RcNetwork net;
  int prev = net.add_node("in");
  net.add_port(prev);
  net.stamp_port_conductance(0, port_g);
  for (int i = 0; i < stages; ++i) {
    const int next = net.add_node();
    net.add_resistor(prev, next, r);
    net.add_capacitor(next, RcNetwork::kGround, c);
    prev = next;
  }
  return net;
}

// ---------------------------------------------------------------------------
// Shifted-pencil exact transfer evaluation (the certificate's probes).

TEST(ShiftedSolver, MatchesDenseSolveAcrossShifts) {
  RcNetwork net = make_ladder(10);
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix b = net.b_matrix();
  ShiftedSparseSolver solver(net.g_sparse(), net.c_sparse());
  const std::size_t n = g.rows();
  for (double s : {1e6, 1e8, 1e10, 1e12}) {
    DenseMatrix gsys(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) gsys(i, j) = g(i, j) + s * c(i, j);
    const DenseMatrix dense = matmul_at_b(b, DenseLu(gsys).solve(b));
    const DenseMatrix sparse = solver.transfer(s, b);
    EXPECT_LT(sparse.max_abs_diff(dense),
              1e-10 * (dense.frobenius_norm() + 1e-300))
        << "s=" << s;
  }
}

TEST(ShiftedSolver, SparseStampsMatchDenseBuilders) {
  RcNetwork net = make_ladder(7);
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix gs = net.g_sparse().to_dense();
  const DenseMatrix cs = net.c_sparse().to_dense();
  EXPECT_LT(gs.max_abs_diff(g), 1e-18);
  EXPECT_LT(cs.max_abs_diff(c), 1e-30);
}

// ---------------------------------------------------------------------------
// The certificate itself.

TEST(Certify, PassesAtSufficientOrder) {
  RcNetwork net = make_ladder(12);
  SympvlOptions opt;
  opt.max_order = 12;
  ReducedModel model = sympvl_reduce(net, /*couple=*/true, opt);
  const Certificate cert = certify_reduced_model(net, model);
  EXPECT_TRUE(cert.passivity_ok);
  EXPECT_TRUE(cert.probe_error.empty());
  EXPECT_EQ(cert.order_used, model.order());
  EXPECT_EQ(cert.freqs.size(), 5u);
  EXPECT_LT(cert.max_rel_err, 1e-6);
  EXPECT_TRUE(cert.pass(0.02));
}

TEST(Certify, FailsAtStarvedOrder) {
  // 40 stages with q = 1: one block moment cannot capture the ladder's
  // high-frequency roll-off, and the certificate must say so.
  RcNetwork net = make_ladder(40);
  SympvlOptions opt;
  opt.max_order = 1;
  ReducedModel model = sympvl_reduce(net, true, opt);
  const Certificate cert = certify_reduced_model(net, model);
  EXPECT_TRUE(cert.probe_error.empty());
  EXPECT_GT(cert.max_rel_err, 0.02);
  EXPECT_FALSE(cert.pass(0.02));
}

TEST(Certify, EscalationConvergesOnLadder) {
  // The verifier's upward ladder in miniature: raise q until the
  // certificate passes; it must pass strictly before q reaches n.
  RcNetwork net = make_ladder(30);
  std::size_t q = 1;
  Certificate cert;
  std::size_t escalations = 0;
  for (;;) {
    SympvlOptions opt;
    opt.max_order = q;
    cert = certify_reduced_model(net, sympvl_reduce(net, true, opt));
    if (cert.pass(0.02)) break;
    ASSERT_LT(q, 31u) << "never certified; rel err " << cert.max_rel_err;
    q += 4;
    ++escalations;
  }
  EXPECT_GE(escalations, 1u);  // q = 1 must NOT have been enough
  EXPECT_LT(cert.order_used, 31u);
  EXPECT_TRUE(cert.passivity_ok);
}

TEST(Certify, CustomBandAndFreqCountAreHonored) {
  RcNetwork net = make_ladder(8);
  ReducedModel model = sympvl_reduce(net, true);
  CertifyOptions opt;
  opt.num_freqs = 9;
  opt.s_min = 1e9;
  opt.s_max = 1e11;
  const Certificate cert = certify_reduced_model(net, model, true, opt);
  ASSERT_EQ(cert.freqs.size(), 9u);
  EXPECT_DOUBLE_EQ(cert.freqs.front(), 1e9);
  EXPECT_NEAR(cert.freqs.back() / 1e11, 1.0, 1e-9);
  for (std::size_t i = 1; i < cert.freqs.size(); ++i)
    EXPECT_GT(cert.freqs[i], cert.freqs[i - 1]);
}

TEST(Certify, InjectedProbeFaultIsUncertifiableNotFatal) {
  RcNetwork net = make_ladder(6);
  ReducedModel model = sympvl_reduce(net, true);
  FaultInjector::instance().reset();
  FaultInjector::instance().arm(FaultSite::kCertifyProbe);
  const Certificate cert = certify_reduced_model(net, model);
  FaultInjector::instance().reset();
  EXPECT_FALSE(cert.probe_error.empty());
  EXPECT_FALSE(cert.pass(1e9));  // no tolerance rescues an unevaluated cert
  EXPECT_TRUE(std::isinf(cert.max_rel_err));
}

// ---------------------------------------------------------------------------
// sym_eigen's hard iteration cap (the certificate's passivity probe relies
// on eigenvalues that are actually converged).

TEST(SymEigenCap, RaisesTypedNoConvergenceInsteadOfSilentReturn) {
  // An indefinite matrix with strong off-diagonal coupling cannot reach
  // Frobenius tolerance in a single sweep; the cap must raise, not lie.
  const std::size_t n = 24;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = 1.0 / (1.0 + static_cast<double>(i + j));
  try {
    sym_eigen(a, /*tol=*/1e-15, /*max_sweeps=*/1);
    FAIL() << "expected NumericalError(kNoConvergence)";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.code(), StatusCode::kNoConvergence);
  }
  // With the default budget the same matrix converges fine.
  EXPECT_NO_THROW(sym_eigen(a));
}

// ---------------------------------------------------------------------------
// Verifier integration: escalation ladder, statuses, audit, determinism.

const Technology kTech = Technology::default_250nm();

class CertifyVerifierFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
    DspChipOptions chip_opt;
    chip_opt.net_count = 80;
    chip_opt.tracks = 8;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete chars_;
    delete lib_;
    delete extractor_;
    design_ = nullptr;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }

  static VerifierOptions certified_options() {
    VerifierOptions options;
    options.glitch.align_aggressors = false;
    options.glitch.tstop = 3e-9;
    options.certify = true;
    return options;
  }

  static void expect_certified_accounting(const VerificationReport& r) {
    EXPECT_EQ(r.victims_eligible, r.victims_analyzed + r.victims_screened_out +
                                      r.victims_fallback + r.victims_failed);
    EXPECT_LE(r.victims_certified, r.victims_analyzed);
    EXPECT_LE(r.victims_accuracy_bound, r.victims_fallback);
    std::size_t certified = 0, accuracy_bound = 0, escalated = 0, raises = 0;
    std::size_t audited = 0, audit_failures = 0;
    for (const auto& f : r.findings) {
      if (f.status == FindingStatus::kCertified) {
        ++certified;
        EXPECT_TRUE(f.certified) << "net " << f.net;
        EXPECT_LE(f.cert_max_rel_err, 0.02) << "net " << f.net;
      }
      if (f.status == FindingStatus::kAccuracyBound) {
        ++accuracy_bound;
        EXPECT_FALSE(f.certified) << "net " << f.net;
        EXPECT_FALSE(f.error.empty()) << "net " << f.net;
      }
      if (f.cert_order_escalations > 0) {
        ++escalated;
        raises += f.cert_order_escalations;
      }
      if (f.audited) {
        ++audited;
        if (!f.audit_pass) ++audit_failures;
      }
    }
    EXPECT_EQ(r.victims_certified, certified);
    EXPECT_EQ(r.victims_accuracy_bound, accuracy_bound);
    EXPECT_EQ(r.victims_escalated, escalated);
    EXPECT_EQ(r.order_escalations, raises);
    EXPECT_EQ(r.victims_audited, audited);
    EXPECT_EQ(r.audit_failures, audit_failures);
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
};

CellLibrary* CertifyVerifierFixture::lib_ = nullptr;
CharacterizedLibrary* CertifyVerifierFixture::chars_ = nullptr;
Extractor* CertifyVerifierFixture::extractor_ = nullptr;
ChipDesign* CertifyVerifierFixture::design_ = nullptr;

TEST_F(CertifyVerifierFixture, EveryMorResultCarriesAPassingCertificate) {
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport report =
      verifier.verify(*design_, certified_options());
  EXPECT_GT(report.victims_certified, 0u);
  for (const auto& f : report.findings) {
    // Under certification no finding may claim plain "analyzed": it is
    // either certified, escalated-then-certified, or conceded to a
    // bound/full-sim status.
    EXPECT_NE(f.status, FindingStatus::kAnalyzed) << "net " << f.net;
    EXPECT_NE(f.status, FindingStatus::kAnalyzedAfterRetry) << "net " << f.net;
  }
  expect_certified_accounting(report);
}

TEST_F(CertifyVerifierFixture, StarvedBaseOrderEscalatesThenCertifies) {
  VerifierOptions options = certified_options();
  options.glitch.mor.max_order = 1;  // starve rung 0 so certificates fail
  options.mor_order_step = 4;
  options.max_mor_order = 64;
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport report = verifier.verify(*design_, options);
  // At least one synthetic cluster must demonstrably escalate and then
  // certify (the acceptance criterion of the escalation ladder).
  bool escalated_and_certified = false;
  for (const auto& f : report.findings)
    if (f.status == FindingStatus::kCertified && f.cert_order_escalations > 0)
      escalated_and_certified = true;
  EXPECT_TRUE(escalated_and_certified);
  EXPECT_GT(report.order_escalations, 0u);
  expect_certified_accounting(report);
}

TEST_F(CertifyVerifierFixture, OrderCeilingConcedesToAccuracyBound) {
  VerifierOptions options = certified_options();
  options.glitch.mor.max_order = 1;
  options.mor_order_step = 1;
  options.max_mor_order = 2;  // ladder is cut off before it can converge
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport report = verifier.verify(*design_, options);
  EXPECT_GT(report.victims_accuracy_bound, 0u);
  for (const auto& f : report.findings) {
    if (f.status != FindingStatus::kAccuracyBound) continue;
    // Conservative semantics: the bound is reported, with the certificate
    // failure recorded as the typed error.
    EXPECT_EQ(f.error_code, StatusCode::kCertificationFailed) << "net " << f.net;
    EXPECT_GT(f.peak_fraction, 0.0) << "net " << f.net;
  }
  expect_certified_accounting(report);
}

TEST_F(CertifyVerifierFixture, AuditIsDeterministicAcrossThreadCounts) {
  VerifierOptions options = certified_options();
  options.audit_fraction = 0.5;
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport serial = verifier.verify(*design_, options);
  options.threads = 4;
  const VerificationReport parallel = verifier.verify(*design_, options);

  EXPECT_GT(serial.victims_audited, 0u);
  ASSERT_EQ(serial.findings.size(), parallel.findings.size());
  for (std::size_t i = 0; i < serial.findings.size(); ++i) {
    const VictimFinding& a = serial.findings[i];
    const VictimFinding& b = parallel.findings[i];
    EXPECT_EQ(a.net, b.net);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.peak, b.peak);  // bitwise
    EXPECT_EQ(a.certified, b.certified);
    EXPECT_EQ(a.cert_max_rel_err, b.cert_max_rel_err);
    EXPECT_EQ(a.cert_order_escalations, b.cert_order_escalations);
    EXPECT_EQ(a.audited, b.audited) << "net " << a.net;
    EXPECT_EQ(a.audit_pass, b.audit_pass);
    EXPECT_EQ(a.audit_peak_err, b.audit_peak_err);
    EXPECT_EQ(a.audit_time_err, b.audit_time_err);
  }
  EXPECT_EQ(serial.victims_audited, parallel.victims_audited);
  EXPECT_EQ(serial.audit_failures, parallel.audit_failures);
  expect_certified_accounting(serial);
  expect_certified_accounting(parallel);
}

TEST_F(CertifyVerifierFixture, AuditFractionOneWithinTolerance) {
  VerifierOptions options = certified_options();
  options.audit_fraction = 1.0;
  options.max_victims = 6;  // bounded: golden re-simulation is expensive
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport report = verifier.verify(*design_, options);
  ASSERT_GT(report.victims_audited, 0u);
  // The MOR engine with certified models must agree with golden SPICE on
  // every audited victim — this is the accuracy statement of the paper.
  EXPECT_EQ(report.audit_failures, 0u)
      << "worst peak delta " << report.audit_max_peak_err << " V, worst arrival delta "
      << report.audit_max_time_err << " s";
  expect_certified_accounting(report);
}

TEST_F(CertifyVerifierFixture, OptionsHashCoversCertificationKnobs) {
  VerifierOptions a = certified_options();
  VerifierOptions b = a;
  EXPECT_EQ(options_result_hash(a), options_result_hash(b));
  b.certify = false;
  EXPECT_NE(options_result_hash(a), options_result_hash(b));
  b = a;
  b.cert_rel_tol = 0.05;
  EXPECT_NE(options_result_hash(a), options_result_hash(b));
  b = a;
  b.max_mor_order = 32;
  EXPECT_NE(options_result_hash(a), options_result_hash(b));
  b = a;
  b.audit_fraction = 0.25;
  EXPECT_NE(options_result_hash(a), options_result_hash(b));
  b = a;
  b.audit_seed ^= 1;
  EXPECT_NE(options_result_hash(a), options_result_hash(b));
}

// ---------------------------------------------------------------------------
// Journal v2 round trip of the certification and audit fields.

TEST(JournalV2, CertificationFieldsRoundTripBitExactly) {
  JournalRecord rec;
  rec.finding.net = 17;
  rec.finding.status = FindingStatus::kCertified;
  rec.finding.certified = true;
  rec.finding.cert_max_rel_err = 3.25e-4;
  rec.finding.cert_order_escalations = 2;
  rec.finding.audited = true;
  rec.finding.audit_pass = true;
  rec.finding.audit_peak_err = 1.5e-3;
  rec.finding.audit_time_err = 2.75e-11;
  JournalRecord back;
  ASSERT_TRUE(journal_decode(journal_encode(rec), back));
  EXPECT_EQ(back.finding.status, FindingStatus::kCertified);
  EXPECT_TRUE(back.finding.certified);
  EXPECT_EQ(back.finding.cert_max_rel_err, rec.finding.cert_max_rel_err);
  EXPECT_EQ(back.finding.cert_order_escalations, 2u);
  EXPECT_TRUE(back.finding.audited);
  EXPECT_TRUE(back.finding.audit_pass);
  EXPECT_EQ(back.finding.audit_peak_err, rec.finding.audit_peak_err);
  EXPECT_EQ(back.finding.audit_time_err, rec.finding.audit_time_err);

  // kAccuracyBound and kCertificationFailed are valid on the wire; one
  // past them is not.
  rec.finding.status = FindingStatus::kAccuracyBound;
  rec.finding.error_code = StatusCode::kCertificationFailed;
  rec.finding.error = "accuracy certificate failed at order 2";
  ASSERT_TRUE(journal_decode(journal_encode(rec), back));
  EXPECT_EQ(back.finding.status, FindingStatus::kAccuracyBound);
  EXPECT_EQ(back.finding.error_code, StatusCode::kCertificationFailed);
}

// ---------------------------------------------------------------------------
// --fail-on support helpers.

TEST(FindingStatusParse, AcceptsBothSpellings) {
  FindingStatus s;
  ASSERT_TRUE(parse_finding_status("accuracy-bound", &s));
  EXPECT_EQ(s, FindingStatus::kAccuracyBound);
  ASSERT_TRUE(parse_finding_status("kAccuracyBound", &s));
  EXPECT_EQ(s, FindingStatus::kAccuracyBound);
  ASSERT_TRUE(parse_finding_status("certified", &s));
  EXPECT_EQ(s, FindingStatus::kCertified);
  ASSERT_TRUE(parse_finding_status("kFailed", &s));
  EXPECT_EQ(s, FindingStatus::kFailed);
  EXPECT_FALSE(parse_finding_status("not-a-status", &s));
  EXPECT_FALSE(parse_finding_status("", &s));
}

TEST(FindingStatusParse, SeverityOrdersCertifiedBestFailedWorst) {
  EXPECT_EQ(finding_status_severity(FindingStatus::kCertified), 0);
  EXPECT_LT(finding_status_severity(FindingStatus::kAnalyzed),
            finding_status_severity(FindingStatus::kFellBackToBound));
  EXPECT_LT(finding_status_severity(FindingStatus::kResourceBound),
            finding_status_severity(FindingStatus::kAccuracyBound));
  EXPECT_LT(finding_status_severity(FindingStatus::kAccuracyBound),
            finding_status_severity(FindingStatus::kFailed));
}

}  // namespace
}  // namespace xtv
