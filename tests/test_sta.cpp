// Tests for timing windows, arrival propagation, and logic correlation.
#include <gtest/gtest.h>

#include "sta/timing.h"

namespace xtv {
namespace {

TEST(TimingWindow, OverlapRules) {
  const auto a = TimingWindow::of(1.0, 3.0);
  const auto b = TimingWindow::of(2.5, 4.0);
  const auto c = TimingWindow::of(3.5, 5.0);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
  // Touching endpoints count as overlap (closed intervals).
  EXPECT_TRUE(TimingWindow::of(0.0, 1.0).overlaps(TimingWindow::of(1.0, 2.0)));
  // never() overlaps nothing.
  EXPECT_FALSE(TimingWindow::never().overlaps(a));
  EXPECT_FALSE(a.overlaps(TimingWindow::never()));
}

TEST(TimingWindow, ShiftAndHull) {
  const auto w = TimingWindow::of(1.0, 2.0).shifted(0.5, 1.5);
  EXPECT_DOUBLE_EQ(w.start, 1.5);
  EXPECT_DOUBLE_EQ(w.end, 3.5);
  const auto h = TimingWindow::of(0.0, 1.0).hull(TimingWindow::of(3.0, 4.0));
  EXPECT_DOUBLE_EQ(h.start, 0.0);
  EXPECT_DOUBLE_EQ(h.end, 4.0);
  EXPECT_FALSE(TimingWindow::never().shifted(1.0, 1.0).valid);
}

TEST(TimingGraph, LinearChainPropagation) {
  TimingGraph g;
  const auto a = g.add_net();
  const auto b = g.add_net();
  const auto c = g.add_net();
  g.add_arc(a, b, 0.1, 0.2);
  g.add_arc(b, c, 0.3, 0.5);
  g.set_window(a, TimingWindow::of(0.0, 1.0));
  g.propagate();
  EXPECT_DOUBLE_EQ(g.window(b).start, 0.1);
  EXPECT_DOUBLE_EQ(g.window(b).end, 1.2);
  EXPECT_DOUBLE_EQ(g.window(c).start, 0.4);
  EXPECT_DOUBLE_EQ(g.window(c).end, 1.7);
}

TEST(TimingGraph, ReconvergenceTakesHull) {
  // a -> c (fast) and a -> b -> c (slow): c's window spans both paths.
  TimingGraph g;
  const auto a = g.add_net();
  const auto b = g.add_net();
  const auto c = g.add_net();
  g.add_arc(a, c, 0.1, 0.1);
  g.add_arc(a, b, 0.5, 0.5);
  g.add_arc(b, c, 0.5, 0.5);
  g.set_window(a, TimingWindow::of(0.0, 0.0));
  g.propagate();
  EXPECT_DOUBLE_EQ(g.window(c).start, 0.1);
  EXPECT_DOUBLE_EQ(g.window(c).end, 1.0);
}

TEST(TimingGraph, UnreachedNetsNeverSwitch) {
  TimingGraph g;
  const auto a = g.add_net();
  const auto b = g.add_net();
  (void)b;
  g.set_window(a, TimingWindow::of(0.0, 1.0));
  g.propagate();
  EXPECT_FALSE(g.window(1).valid);
}

TEST(TimingGraph, DetectsCycles) {
  TimingGraph g;
  const auto a = g.add_net();
  const auto b = g.add_net();
  g.add_arc(a, b, 0.1, 0.1);
  g.add_arc(b, a, 0.1, 0.1);
  EXPECT_THROW(g.propagate(), std::runtime_error);
}

TEST(TimingGraph, ValidatesArcs) {
  TimingGraph g;
  const auto a = g.add_net();
  EXPECT_THROW(g.add_arc(a, 99, 0.0, 1.0), std::runtime_error);
  EXPECT_THROW(g.add_arc(a, a, 1.0, 0.5), std::runtime_error);
  EXPECT_THROW(g.set_window(99, TimingWindow::of(0, 1)), std::runtime_error);
}

TEST(LogicCorrelation, ComplementaryPairsCannotSwitchSameDirection) {
  LogicCorrelation lc;
  lc.add_complementary(1, 2);
  EXPECT_FALSE(lc.can_switch_same_direction(1, 2));
  EXPECT_FALSE(lc.can_switch_same_direction(2, 1));
  EXPECT_TRUE(lc.can_switch_together(1, 2));  // opposite directions allowed
  EXPECT_TRUE(lc.can_switch_same_direction(1, 3));
}

TEST(LogicCorrelation, MutexGroupsBlockAnySimultaneousSwitch) {
  LogicCorrelation lc;
  lc.add_mutex({4, 5, 6});
  EXPECT_FALSE(lc.can_switch_together(4, 5));
  EXPECT_FALSE(lc.can_switch_together(5, 6));
  EXPECT_FALSE(lc.can_switch_same_direction(4, 6));
  EXPECT_TRUE(lc.can_switch_together(4, 7));
  // A net is never mutexed with itself.
  EXPECT_TRUE(lc.can_switch_together(4, 4));
}

}  // namespace
}  // namespace xtv
