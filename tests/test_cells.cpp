// Tests for the cell library and characterization: transistor netlists,
// logic correctness of every family, timing tables, drive resistances, and
// the non-linear I-V surface (paper Section 4 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "cells/cell_library.h"
#include "cells/characterize.h"
#include "cells/driver_models.h"
#include "cells/table2d.h"
#include "spice/simulator.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

// Instantiates `master` on a bench with the switching pin driven at
// `vin_switching` and side pins at their ties; returns the DC output.
double dc_output(const CellMaster& master, double vin_switching) {
  Circuit c;
  const int vdd = c.add_node("vdd");
  c.add_vsource(vdd, Circuit::ground(), SourceWave::dc(kTech.vdd));
  const int in = c.add_node("in");
  c.add_vsource(in, Circuit::ground(), SourceWave::dc(vin_switching));
  const int out = c.add_node("out");
  std::map<std::string, int> pins{{master.switching_pin(), in},
                                  {master.output_pin(), out}};
  for (const auto& pin : master.input_pins()) {
    if (pin == master.switching_pin()) continue;
    const int tied = c.add_node();
    c.add_vsource(tied, Circuit::ground(),
                  SourceWave::dc(master.tie_high(pin) ? kTech.vdd : 0.0));
    pins[pin] = tied;
  }
  master.instantiate(c, pins, vdd);
  Simulator sim(c);
  return sim.dc_operating_point()[static_cast<std::size_t>(out)];
}

TEST(CellLibrary, HasFiftyThreeMasters) {
  CellLibrary lib(kTech);
  EXPECT_EQ(lib.size(), 53u);  // the paper's Table-4 cell count
}

TEST(CellLibrary, NamesAreUniqueAndFindable) {
  CellLibrary lib(kTech);
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const int found = lib.find(lib.at(i).name());
    EXPECT_EQ(found, static_cast<int>(i)) << lib.at(i).name();
  }
  EXPECT_EQ(lib.find("NOT_A_CELL"), -1);
  EXPECT_THROW(lib.by_name("NOT_A_CELL"), std::runtime_error);
}

TEST(CellLibrary, FamilyQuery) {
  CellLibrary lib(kTech);
  EXPECT_EQ(lib.family(CellFamily::kInv).size(), 6u);
  EXPECT_EQ(lib.family(CellFamily::kTribuf).size(), 5u);
}

// Every master must implement its logic function at DC for the switching
// pin (with side pins at non-controlling ties): full parameterized sweep.
class CellLogic : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CellLogic, SwitchingPinControlsOutput) {
  CellLibrary lib(kTech);
  const CellMaster& m = lib.at(GetParam());
  const double out_lo = dc_output(m, 0.0);
  const double out_hi = dc_output(m, kTech.vdd);
  if (m.inverting()) {
    EXPECT_NEAR(out_lo, kTech.vdd, 0.02) << m.name();
    EXPECT_NEAR(out_hi, 0.0, 0.02) << m.name();
  } else {
    EXPECT_NEAR(out_lo, 0.0, 0.02) << m.name();
    EXPECT_NEAR(out_hi, kTech.vdd, 0.02) << m.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllMasters, CellLogic, ::testing::Range<std::size_t>(0, 53));

TEST(CellMaster, StrongerDriveMeansWiderDevices) {
  CellLibrary lib(kTech);
  const CellMaster& x1 = lib.by_name("INV_X1");
  const CellMaster& x8 = lib.by_name("INV_X8");
  EXPECT_NEAR(x8.input_cap("A") / x1.input_cap("A"), 8.0, 0.5);
  EXPECT_GT(x8.output_cap(), x1.output_cap());
}

TEST(CellMaster, TribufHiZWhenDisabled) {
  CellLibrary lib(kTech);
  const CellMaster& m = lib.by_name("TRIBUF_X4");
  // Bench with EN = 0: output floats; a weak external holder keeps it at
  // an arbitrary level that the cell must not fight.
  Circuit c;
  const int vdd = c.add_node("vdd");
  c.add_vsource(vdd, Circuit::ground(), SourceWave::dc(kTech.vdd));
  const int in = c.add_node("in");
  c.add_vsource(in, Circuit::ground(), SourceWave::dc(kTech.vdd));
  const int en = c.add_node("en");
  c.add_vsource(en, Circuit::ground(), SourceWave::dc(0.0));
  const int out = c.add_node("out");
  // Weak holder to 1.17 V.
  const int hold = c.add_node("hold");
  c.add_vsource(hold, Circuit::ground(), SourceWave::dc(1.17));
  c.add_resistor(hold, out, 1e6);
  m.instantiate(c, {{"A", in}, {"EN", en}, {"Y", out}}, vdd);
  Simulator sim(c);
  const double v = sim.dc_operating_point()[static_cast<std::size_t>(out)];
  EXPECT_NEAR(v, 1.17, 0.05);  // Hi-Z: holder wins
}

TEST(CellMaster, InstantiateRejectsMissingPins) {
  CellLibrary lib(kTech);
  const CellMaster& m = lib.by_name("NAND2_X1");
  Circuit c;
  const int vdd = c.add_node();
  const int out = c.add_node();
  EXPECT_THROW(m.instantiate(c, {{"A", out}}, vdd), std::runtime_error);
}

TEST(Table2D, BilinearInterpolation) {
  Table2D t({0.0, 1.0}, {0.0, 2.0}, {0.0, 2.0, 10.0, 12.0});
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 2.0), 12.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.5, 1.0), 6.0);
  // Clamping outside the grid.
  EXPECT_DOUBLE_EQ(t.lookup(-1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(5.0, 5.0), 12.0);
}

TEST(Table2D, DerivativeAlongY) {
  Table2D t({0.0, 1.0}, {0.0, 2.0}, {0.0, 2.0, 10.0, 12.0});
  EXPECT_DOUBLE_EQ(t.d_dy(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.d_dy(1.0, 1.0), 1.0);
}

TEST(Table2D, RejectsBadAxes) {
  EXPECT_THROW(Table2D({1.0, 1.0}, {0.0, 1.0}, {0, 0, 0, 0}), std::runtime_error);
  EXPECT_THROW(Table2D({0.0, 1.0}, {0.0, 1.0}, {0, 0}), std::runtime_error);
}

// Characterization is the expensive part: do it once for a couple of cells
// and verify the derived models.
class CharacterizeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions opt;
    opt.iv_grid = 9;
    inv4_ = new CellModel(characterize_cell(lib_->by_name("INV_X4"), kTech, opt));
    inv1_ = new CellModel(characterize_cell(lib_->by_name("INV_X1"), kTech, opt));
  }
  static void TearDownTestSuite() {
    delete inv1_;
    delete inv4_;
    delete lib_;
    inv1_ = inv4_ = nullptr;
    lib_ = nullptr;
  }
  static CellLibrary* lib_;
  static CellModel* inv1_;
  static CellModel* inv4_;
};

CellLibrary* CharacterizeFixture::lib_ = nullptr;
CellModel* CharacterizeFixture::inv1_ = nullptr;
CellModel* CharacterizeFixture::inv4_ = nullptr;

TEST_F(CharacterizeFixture, DelayIncreasesWithLoad) {
  const auto& t = inv4_->rise.delay;
  const double slew = t.x_axis().front();
  double prev = 0.0;
  for (double load : t.y_axis()) {
    const double d = t.lookup(slew, load);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST_F(CharacterizeFixture, StrongerCellIsFaster) {
  const double slew = 0.2e-9, load = 80e-15;
  EXPECT_LT(inv4_->rise.delay.lookup(slew, load),
            inv1_->rise.delay.lookup(slew, load));
  EXPECT_LT(inv4_->drive_resistance_rise, inv1_->drive_resistance_rise);
}

TEST_F(CharacterizeFixture, DriveResistanceInPlausibleRange) {
  // X1 inverter at 0.25 um / 3 V: effective drive around 0.5-5 kOhm.
  EXPECT_GT(inv1_->drive_resistance_rise, 200.0);
  EXPECT_LT(inv1_->drive_resistance_rise, 8e3);
  EXPECT_GT(inv1_->drive_resistance_fall, 100.0);
  EXPECT_LT(inv1_->drive_resistance_fall, 8e3);
}

TEST_F(CharacterizeFixture, IvSurfaceSigns) {
  const auto& iv = inv1_->iv_surface;
  // Input low -> PMOS on: at vout = 0 the cell sources current INTO the
  // node (positive); at vout = vdd it is in equilibrium (≈ 0).
  EXPECT_GT(iv.lookup(0.0, 0.0), 1e-5);
  EXPECT_NEAR(iv.lookup(0.0, kTech.vdd), 0.0, 5e-5);
  // Input high -> NMOS on: at vout = vdd the cell sinks (negative).
  EXPECT_LT(iv.lookup(kTech.vdd, kTech.vdd), -1e-5);
  EXPECT_NEAR(iv.lookup(kTech.vdd, 0.0), 0.0, 5e-5);
}

TEST_F(CharacterizeFixture, IvSurfaceConductanceIsStabilizing) {
  // Around the held rail, d(i)/d(vout) must be negative (restoring).
  const auto& iv = inv1_->iv_surface;
  EXPECT_LT(iv.d_dy(0.0, kTech.vdd - 0.2), 0.0);
  EXPECT_LT(iv.d_dy(kTech.vdd, 0.2), 0.0);
}

TEST_F(CharacterizeFixture, TheveninDriverBehaves) {
  TheveninDriver d(SourceWave::dc(3.0), 1000.0);
  EXPECT_DOUBLE_EQ(d.current(0.0, 0.0), 3e-3);
  EXPECT_DOUBLE_EQ(d.current(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.conductance(1.0, 0.0), -1e-3);
  EXPECT_THROW(TheveninDriver(SourceWave::dc(0.0), -1.0), std::runtime_error);
}

TEST_F(CharacterizeFixture, NonlinearDriverTracksInputWave) {
  auto model = std::make_shared<CellModel>(*inv1_);
  NonlinearTableDriver drv(model, SourceWave::ramp(0.0, kTech.vdd, 1e-9, 1e-9));
  // Early (input low): sources current at vout=0.
  EXPECT_GT(drv.current(0.0, 0.0), 0.0);
  // Late (input high): sinks current at vout=vdd.
  EXPECT_LT(drv.current(kTech.vdd, 10e-9), 0.0);
  EXPECT_DOUBLE_EQ(drv.output_cap(), model->output_cap);
}

TEST_F(CharacterizeFixture, HoldingDriverKeepsVictimQuietInSpice) {
  // Put the nonlinear holding model on a node, inject a current pulse, and
  // check it restores the rail — the victim-holder role in glitch analysis.
  auto model = std::make_shared<CellModel>(*inv1_);
  Circuit c;
  const int n = c.add_node();
  // Input low -> output holds high.
  c.add_termination(n, std::make_shared<NonlinearTableDriver>(model, SourceWave::dc(0.0)));
  c.add_capacitor(n, Circuit::ground(), 20e-15);
  c.add_isource(n, Circuit::ground(),
                SourceWave::pwl({{0.0, 0.0}, {0.1e-9, 2e-3}, {0.3e-9, 2e-3}, {0.31e-9, 0.0}}));
  Simulator sim(c);
  TransientOptions opt;
  opt.tstop = 2e-9;
  opt.dt = 2e-12;
  const Waveform w = sim.transient(opt, {n}).probes[0];
  EXPECT_NEAR(w.first_value(), kTech.vdd, 0.05);   // held at rail
  EXPECT_LT(w.min_value(), kTech.vdd - 0.3);       // pulse dips it
  EXPECT_NEAR(w.last_value(), kTech.vdd, 0.05);    // restored
}

TEST(CharacterizedLibrary, CachesModels) {
  CellLibrary lib(kTech);
  CharacterizeOptions opt;
  opt.iv_grid = 5;
  opt.input_slews = {0.2e-9};
  opt.load_caps = {10e-15, 40e-15};
  CharacterizedLibrary chars(lib, opt);
  const CellModel& a = chars.model("INV_X2");
  const CellModel& b = chars.model("INV_X2");
  EXPECT_EQ(&a, &b);  // same cached object
  EXPECT_EQ(a.cell, "INV_X2");
}

}  // namespace
}  // namespace xtv
