// Tests for the synthetic DSP design generator and the end-to-end chip
// verification flow (pruning -> clusters -> MOR glitch analysis).
#include <gtest/gtest.h>

#include <set>

#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

DspChipOptions small_options() {
  DspChipOptions opt;
  opt.net_count = 200;
  opt.tracks = 16;
  opt.bus_count = 4;
  return opt;
}

TEST(DspChip, DeterministicInSeed) {
  CellLibrary lib(kTech);
  const ChipDesign a = generate_dsp_chip(lib, small_options());
  const ChipDesign b = generate_dsp_chip(lib, small_options());
  ASSERT_EQ(a.nets.size(), b.nets.size());
  ASSERT_EQ(a.couplings.size(), b.couplings.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nets[i].route.length, b.nets[i].route.length);
    EXPECT_EQ(a.nets[i].driver_cell, b.nets[i].driver_cell);
  }
}

TEST(DspChip, DifferentSeedsDiffer) {
  CellLibrary lib(kTech);
  DspChipOptions o1 = small_options();
  DspChipOptions o2 = small_options();
  o2.seed = 7777;
  const ChipDesign a = generate_dsp_chip(lib, o1);
  const ChipDesign b = generate_dsp_chip(lib, o2);
  int diffs = 0;
  for (std::size_t i = 0; i < a.nets.size(); ++i)
    if (a.nets[i].route.length != b.nets[i].route.length) ++diffs;
  EXPECT_GT(diffs, 100);
}

TEST(DspChip, StructuralInventory) {
  CellLibrary lib(kTech);
  const ChipDesign d = generate_dsp_chip(lib, small_options());
  EXPECT_EQ(d.nets.size(), 200u);
  EXPECT_GT(d.couplings.size(), 100u);  // crowded channels couple a lot

  std::size_t buses = 0, latches = 0;
  for (const auto& net : d.nets) {
    if (!net.bus_drivers.empty()) ++buses;
    if (net.latch_input) ++latches;
    EXPECT_GE(net.route.length, 50e-6);
    EXPECT_LE(net.route.length, 1.2e-3);
    EXPECT_GT(net.receiver_cap, 0.0);
    EXPECT_TRUE(net.window.valid);
    EXPECT_GE(lib.find(net.driver_cell), 0) << net.driver_cell;
  }
  EXPECT_EQ(buses, 4u);
  EXPECT_GT(latches, 10u);
  EXPECT_FALSE(d.complementary_pairs.empty());
}

TEST(DspChip, BusesUseStrongestTribufDriver) {
  CellLibrary lib(kTech);
  const ChipDesign d = generate_dsp_chip(lib, small_options());
  for (const auto& net : d.nets) {
    if (net.bus_drivers.empty()) continue;
    // The analysis driver must be the strongest of the bus drivers.
    double strongest = 0.0;
    for (const auto& name : net.bus_drivers)
      strongest = std::max(strongest, lib.by_name(name).drive());
    EXPECT_DOUBLE_EQ(lib.by_name(net.driver_cell).drive(), strongest);
    EXPECT_EQ(lib.by_name(net.driver_cell).family(), CellFamily::kTribuf);
  }
}

TEST(DspChip, CouplingsHaveValidGeometry) {
  CellLibrary lib(kTech);
  const ChipDesign d = generate_dsp_chip(lib, small_options());
  for (const auto& c : d.couplings) {
    ASSERT_LT(c.a, d.nets.size());
    ASSERT_LT(c.b, d.nets.size());
    EXPECT_NE(c.a, c.b);
    EXPECT_GT(c.overlap, 0.0);
    EXPECT_GT(c.spacing, 0.0);
    // Overlap cannot exceed either net's length.
    EXPECT_LE(c.overlap, d.nets[c.a].route.length + 1e-12);
    EXPECT_LE(c.overlap, d.nets[c.b].route.length + 1e-12);
    // Offsets keep the window inside the nets.
    EXPECT_LE(c.offset_a + c.overlap, d.nets[c.a].route.length + 1e-9);
    EXPECT_LE(c.offset_b + c.overlap, d.nets[c.b].route.length + 1e-9);
  }
}

TEST(DspChip, SummariesMatchDatabase) {
  CellLibrary lib(kTech);
  CharacterizedLibrary chars(lib);
  Extractor ex(kTech);
  const ChipDesign d = generate_dsp_chip(lib, small_options());
  const auto summaries = chip_net_summaries(d, ex, chars);
  ASSERT_EQ(summaries.size(), d.nets.size());
  std::size_t coupling_entries = 0;
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    EXPECT_EQ(summaries[i].id, i);
    EXPECT_GT(summaries[i].ground_cap, 0.0);
    EXPECT_GT(summaries[i].driver_resistance, 0.0);
    coupling_entries += summaries[i].couplings.size();
  }
  EXPECT_EQ(coupling_entries, 2 * d.couplings.size());  // both directions
}

TEST(DspChip, PruningShrinksClustersOnChip) {
  // The paper's §3 claim in miniature: dense pre-pruning clusters, small
  // post-pruning ones.
  CellLibrary lib(kTech);
  CharacterizedLibrary chars(lib);
  Extractor ex(kTech);
  DspChipOptions opt = small_options();
  opt.net_count = 600;
  opt.tracks = 12;  // crowd the channels
  const ChipDesign d = generate_dsp_chip(lib, opt);
  const auto summaries = chip_net_summaries(d, ex, chars);
  const PruneResult pruned = prune_couplings(summaries, {});
  EXPECT_GT(pruned.stats.avg_cluster_before, 20.0);
  EXPECT_LT(pruned.stats.avg_cluster_after, 8.0);
  EXPECT_GT(pruned.stats.avg_cluster_after, 1.5);
}

TEST(ChipVerifier, EndToEndFlowProducesFindings) {
  CellLibrary lib(kTech);
  CharacterizeOptions copt;
  copt.iv_grid = 9;
  CharacterizedLibrary chars(lib, copt);
  Extractor ex(kTech);
  const ChipDesign d = generate_dsp_chip(lib, small_options());

  ChipVerifier verifier(ex, chars);
  VerifierOptions vopt;
  vopt.max_victims = 8;
  vopt.glitch.align_aggressors = false;  // keep the test fast
  vopt.glitch.tstop = 3e-9;
  const VerificationReport report = verifier.verify(d, vopt);

  EXPECT_EQ(report.victims_analyzed, 8u);
  EXPECT_EQ(report.findings.size(), 8u);
  for (const auto& f : report.findings) {
    EXPECT_GT(f.aggressors_analyzed, 0u);
    EXPECT_GT(f.reduced_order, 0u);
    EXPECT_GE(f.peak_fraction, 0.0);
    // Victim held high: glitches pull down (or stay ~0).
    EXPECT_LE(f.peak, 1e-6);
  }
  EXPECT_FALSE(report.to_string().empty());
}

TEST(ChipVerifier, WindowFilteringDropsDisjointAggressors) {
  CellLibrary lib(kTech);
  CharacterizedLibrary chars(lib);
  Extractor ex(kTech);
  ChipDesign d = generate_dsp_chip(lib, small_options());
  // Force every net's window to be disjoint from net 0's.
  d.nets[0].window = TimingWindow::of(0.0, 0.1e-9);
  for (std::size_t i = 1; i < d.nets.size(); ++i)
    d.nets[i].window = TimingWindow::of(3e-9, 4e-9);

  const auto summaries = chip_net_summaries(d, ex, chars);
  const PruneResult pruned = prune_couplings(summaries, {});
  if (pruned.retained[0].empty()) GTEST_SKIP() << "net 0 kept no aggressors";

  ChipVerifier verifier(ex, chars);
  VictimFinding acct;
  const auto [victim, aggressors] =
      verifier.build_victim_cluster(d, summaries, pruned, 0, &acct);
  EXPECT_TRUE(aggressors.empty());
  EXPECT_EQ(acct.aggressors_dropped_by_window, pruned.retained[0].size());
}


TEST(DspChipOptions, NoBusesAndSingleTrackStillGenerate) {
  CellLibrary lib(kTech);
  DspChipOptions opt;
  opt.net_count = 40;
  opt.tracks = 1;     // everything on one track: no lateral neighbors
  opt.bus_count = 0;
  const ChipDesign d = generate_dsp_chip(lib, opt);
  EXPECT_EQ(d.nets.size(), 40u);
  EXPECT_TRUE(d.couplings.empty());  // gap >= 1 tracks needs >= 2 tracks
  for (const auto& net : d.nets) EXPECT_TRUE(net.bus_drivers.empty());
}

TEST(DspChipOptions, ManyBusesClampToNetCount) {
  CellLibrary lib(kTech);
  DspChipOptions opt;
  opt.net_count = 30;
  opt.tracks = 4;
  opt.bus_count = 100;  // more than nets: must clamp, not crash
  const ChipDesign d = generate_dsp_chip(lib, opt);
  std::size_t buses = 0;
  for (const auto& net : d.nets)
    if (!net.bus_drivers.empty()) ++buses;
  EXPECT_EQ(buses, 30u);
}

TEST(ExtractorVariants, WideWireLowersRRaisesC) {
  Extractor ex(kTech);
  const NetRoute narrow{500e-6, 0.0};
  const NetRoute wide{500e-6, 3 * kTech.min_width};
  EXPECT_LT(ex.route_resistance(wide), ex.route_resistance(narrow));
  EXPECT_GT(ex.route_ground_cap(wide), ex.route_ground_cap(narrow));
}

TEST(ExtractorVariants, SegmentLengthControlsGranularity) {
  Extractor coarse(kTech, 100e-6);
  Extractor fine(kTech, 10e-6);
  const NetRoute route{400e-6, 0.0};
  EXPECT_GT(fine.extract_net(route).node_count(),
            coarse.extract_net(route).node_count());
  EXPECT_THROW(Extractor(kTech, 0.0), std::runtime_error);
}

}  // namespace
}  // namespace xtv
