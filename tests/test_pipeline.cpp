// Staged-pipeline tests (DESIGN.md §11): the per-victim state machine,
// the cluster fingerprint, the reduced-model cache, and the per-thread
// workspace arena. The load-bearing contract: a cache hit, a parallel
// run, and a journal resume all produce findings bit-identical to a
// fresh serial no-cache run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/pipeline.h"
#include "core/verifier.h"
#include "mor/model_cache.h"
#include "netlist/rc_network.h"
#include "util/status.h"
#include "util/workspace.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
    // Row-tiled design: three identical 30-net rows, so every cluster
    // pencil of row 0 recurs in rows 1 and 2 — the cache's workload.
    DspChipOptions chip_opt;
    chip_opt.net_count = 90;
    chip_opt.tracks = 9;
    chip_opt.replicate_rows = 3;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete chars_;
    delete lib_;
    delete extractor_;
    design_ = nullptr;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }

  static VerifierOptions fast_options() {
    VerifierOptions options;
    options.glitch.align_aggressors = false;
    options.glitch.tstop = 3e-9;
    return options;
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }

  /// Full structural equality of two reports: every result field of every
  /// finding, bitwise, plus the accounting counters. Cache statistics are
  /// deliberately NOT compared — hit counts are allowed to differ while
  /// findings must not.
  static void expect_reports_equal(const VerificationReport& a,
                                   const VerificationReport& b) {
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      SCOPED_TRACE("finding " + std::to_string(i));
      const VictimFinding& x = a.findings[i];
      const VictimFinding& y = b.findings[i];
      EXPECT_EQ(x.net, y.net);
      EXPECT_EQ(x.peak, y.peak);  // bitwise: no tolerance
      EXPECT_EQ(x.peak_fraction, y.peak_fraction);
      EXPECT_EQ(x.violation, y.violation);
      EXPECT_EQ(x.status, y.status);
      EXPECT_EQ(x.retries, y.retries);
      EXPECT_EQ(x.error_code, y.error_code);
      EXPECT_EQ(x.error, y.error);
      EXPECT_EQ(x.aggressors_analyzed, y.aggressors_analyzed);
      EXPECT_EQ(x.reduced_order, y.reduced_order);
      EXPECT_EQ(x.driver_rms_current, y.driver_rms_current);
      EXPECT_EQ(x.em_violation, y.em_violation);
      EXPECT_EQ(x.certified, y.certified);
      EXPECT_EQ(x.cert_max_rel_err, y.cert_max_rel_err);
      EXPECT_EQ(x.cert_order_escalations, y.cert_order_escalations);
      EXPECT_EQ(x.audited, y.audited);
      EXPECT_EQ(x.audit_pass, y.audit_pass);
    }
    EXPECT_EQ(a.victims_eligible, b.victims_eligible);
    EXPECT_EQ(a.victims_analyzed, b.victims_analyzed);
    EXPECT_EQ(a.victims_screened_out, b.victims_screened_out);
    EXPECT_EQ(a.victims_retried, b.victims_retried);
    EXPECT_EQ(a.victims_fallback, b.victims_fallback);
    EXPECT_EQ(a.victims_failed, b.victims_failed);
    EXPECT_EQ(a.victims_certified, b.victims_certified);
    EXPECT_EQ(a.victims_accuracy_bound, b.victims_accuracy_bound);
    EXPECT_EQ(a.violations, b.violations);
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
};

CellLibrary* PipelineFixture::lib_ = nullptr;
CharacterizedLibrary* PipelineFixture::chars_ = nullptr;
Extractor* PipelineFixture::extractor_ = nullptr;
ChipDesign* PipelineFixture::design_ = nullptr;

// ---------------------------------------------------------------------------
// Workspace arena.

TEST_F(PipelineFixture, WorkspaceRecyclesCapacityAndZeroFills) {
  workspace::Workspace::Scope scope;  // isolated pool for exact stats
  workspace::reset_stats();
  std::vector<double> buf;
  workspace::acquire(buf, 256);
  ASSERT_EQ(buf.size(), 256u);
  for (auto& x : buf) x = 42.0;
  workspace::release(buf);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(scope.workspace().pooled_buffers(), 1u);

  // A smaller request reuses the pooled capacity and sees only zeros —
  // recycled storage must never leak one victim's values into the next.
  std::vector<double> again;
  workspace::acquire(again, 100);
  ASSERT_EQ(again.size(), 100u);
  for (double x : again) ASSERT_EQ(x, 0.0);
  EXPECT_EQ(scope.workspace().pooled_buffers(), 0u);

  const workspace::Stats stats = workspace::stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.pool_misses, 1u);
  EXPECT_EQ(stats.pool_hits, 1u);
  EXPECT_GE(stats.reused_bytes, 100u * sizeof(double));
}

TEST_F(PipelineFixture, WorkspacePoolIsBounded) {
  workspace::Workspace::Scope scope;
  std::vector<std::vector<double>> bufs(workspace::Workspace::kMaxBuffers + 8);
  for (auto& b : bufs) workspace::acquire(b, 64);
  for (auto& b : bufs) workspace::release(b);
  EXPECT_LE(scope.workspace().pooled_buffers(), workspace::Workspace::kMaxBuffers);
  scope.workspace().clear();
  EXPECT_EQ(scope.workspace().pooled_buffers(), 0u);
  EXPECT_EQ(scope.workspace().pooled_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Cluster fingerprint.

namespace fp {

/// Two electrically identical 3-node clusters whose elements are inserted
/// in different orders; `scale` perturbs one resistor for mismatch tests.
RcNetwork make_network(bool permuted, double scale = 1.0) {
  RcNetwork net;
  const int a = net.add_node("a");
  const int b = net.add_node("b");
  const int c = net.add_node("c");
  if (!permuted) {
    net.add_resistor(a, b, 100.0 * scale);
    net.add_resistor(b, c, 50.0);
    net.add_capacitor(a, RcNetwork::kGround, 1e-15);
    net.add_capacitor(b, c, 2e-15, /*coupling=*/true);
  } else {
    net.add_capacitor(b, c, 2e-15, /*coupling=*/true);
    net.add_capacitor(a, RcNetwork::kGround, 1e-15);
    net.add_resistor(b, c, 50.0);
    net.add_resistor(a, b, 100.0 * scale);
  }
  net.stamp_port_conductance(static_cast<std::size_t>(net.add_port(a)), 1e-3);
  net.stamp_port_conductance(static_cast<std::size_t>(net.add_port(c)), 2e-3);
  return net;
}

ClusterFingerprint print(const RcNetwork& net, const SympvlOptions& mor,
                         bool certify = false) {
  return cluster_fingerprint(net.g_matrix(), net.c_matrix(true),
                             net.b_matrix(), mor, certify,
                             /*cert_rel_tol=*/0.02, /*cert_freqs=*/5,
                             /*s_min=*/1e8, /*s_max=*/1e11);
}

}  // namespace fp

TEST_F(PipelineFixture, FingerprintInvariantToElementInsertionOrder) {
  SympvlOptions mor;
  mor.max_order = 8;
  const ClusterFingerprint f1 = fp::print(fp::make_network(false), mor);
  const ClusterFingerprint f2 = fp::print(fp::make_network(true), mor);
  // MNA assembly accumulates one addend per element per entry, and IEEE
  // addition of two values is commutative, so permuted insertion order
  // assembles bit-identical matrices: intentional collision.
  EXPECT_EQ(f1, f2);
}

TEST_F(PipelineFixture, FingerprintSeparatesValuesAndOptions) {
  SympvlOptions mor;
  mor.max_order = 8;
  const RcNetwork base = fp::make_network(false);
  const ClusterFingerprint f0 = fp::print(base, mor);

  // A perturbed element value must change the key.
  EXPECT_NE(f0, fp::print(fp::make_network(false, 1.0 + 1e-12), mor));

  // Every payload-shaping option is part of the key.
  SympvlOptions other = mor;
  other.max_order = 12;
  EXPECT_NE(f0, fp::print(base, other));
  other = mor;
  other.deflation_tol = 1e-9;
  EXPECT_NE(f0, fp::print(base, other));
  EXPECT_NE(f0, fp::print(base, mor, /*certify=*/true));
}

// ---------------------------------------------------------------------------
// Model cache.

namespace {

std::shared_ptr<CachedReducedModel> dummy_payload(std::size_t bytes,
                                                  std::size_t order) {
  auto payload = std::make_shared<CachedReducedModel>();
  payload->model.t = DenseMatrix(order, order);
  payload->bytes = bytes;
  return payload;
}

ClusterFingerprint key_of(std::uint64_t n) {
  return ClusterFingerprint{n, n * 0x9e37u + 1};
}

}  // namespace

TEST_F(PipelineFixture, ModelCacheMissThenHit) {
  ModelCache cache(/*max_bytes=*/1 << 20, /*shard_count=*/4);
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  cache.insert(key_of(1), dummy_payload(100, 4));
  const auto hit = cache.lookup(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->model.order(), 4u);
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(PipelineFixture, ModelCacheFirstInsertWins) {
  ModelCache cache(1 << 20, 1);
  cache.insert(key_of(7), dummy_payload(100, 4));
  cache.insert(key_of(7), dummy_payload(100, 6));  // racing duplicate
  const auto hit = cache.lookup(key_of(7));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->model.order(), 4u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(PipelineFixture, ModelCacheEvictsLeastRecentlyUsed) {
  // Single shard, budget for two 100-byte payloads.
  ModelCache cache(/*max_bytes=*/200, /*shard_count=*/1);
  cache.insert(key_of(1), dummy_payload(100, 2));
  cache.insert(key_of(2), dummy_payload(100, 2));
  ASSERT_NE(cache.lookup(key_of(1)), nullptr);  // refresh 1; 2 is now LRU
  cache.insert(key_of(3), dummy_payload(100, 2));
  EXPECT_EQ(cache.lookup(key_of(2)), nullptr);  // evicted
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);
  EXPECT_NE(cache.lookup(key_of(3)), nullptr);
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, 200u);
}

TEST_F(PipelineFixture, ModelCacheOversizedPayloadOccupiesShardAlone) {
  ModelCache cache(/*max_bytes=*/64, /*shard_count=*/1);
  cache.insert(key_of(1), dummy_payload(1000, 2));  // over budget by itself
  // The newest entry always stays: an oversized payload must not thrash.
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ---------------------------------------------------------------------------
// Stage transitions.

TEST_F(PipelineFixture, StageTraceOfCleanVictimIsTheCanonicalPath) {
  const VerifierOptions options = fast_options();
  const std::vector<NetSummary> summaries =
      chip_net_summaries(*design_, *extractor_, *chars_);
  const PruneResult pruned = prune_couplings(summaries, options.prune);
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  ChipVerifier verifier(*extractor_, *chars_);

  std::vector<std::string> trace;
  PipelineContext ctx;
  ctx.verifier = &verifier;
  ctx.extractor = extractor_;
  ctx.chars = chars_;
  ctx.analyzer = &analyzer;
  ctx.design = design_;
  ctx.summaries = &summaries;
  ctx.pruned = &pruned;
  ctx.options = &options;
  ctx.stage_trace = [&](std::size_t, PipelineStage s) {
    trace.push_back(pipeline_stage_name(s));
  };
  const VictimPipeline pipeline(ctx);

  bool checked = false;
  for (std::size_t v = 0; v < design_->nets.size() && !checked; ++v) {
    if (pruned.retained[v].empty()) continue;
    trace.clear();
    const auto rec = pipeline.run(v, /*shed=*/false);
    if (!rec || rec->screened ||
        rec->finding.status != FindingStatus::kAnalyzed)
      continue;
    // A clean rung-0 victim walks each stage exactly once: spec build,
    // screen pass-through, then one attempt (prepare/reduce/simulate),
    // the certify pass-through, and finalization in audit.
    const std::vector<std::string> expected = {
        "build-cluster", "noise-screen",     "build-cluster", "reduce",
        "simulate-reduced", "certify", "audit"};
    EXPECT_EQ(trace, expected);
    checked = true;
  }
  EXPECT_TRUE(checked) << "no cleanly analyzed victim found";
}

// ---------------------------------------------------------------------------
// End-to-end equivalences (the cache-correctness doctrine).

TEST_F(PipelineFixture, CachedRunBitIdenticalToFreshIncludingCertificates) {
  VerifierOptions fresh_opts = fast_options();
  fresh_opts.certify = true;  // cached certificates must replay verbatim
  VerifierOptions cached_opts = fresh_opts;
  cached_opts.model_cache_mb = 8.0;

  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport fresh = verifier.verify(*design_, fresh_opts);
  const VerificationReport cached = verifier.verify(*design_, cached_opts);

  // The tiled design repeats every row-0 pencil twice more, so the cache
  // must actually fire for this test to mean anything.
  EXPECT_GT(cached.model_cache_hits, 0u);
  EXPECT_GT(cached.model_cache_misses, 0u);
  expect_reports_equal(fresh, cached);
}

TEST_F(PipelineFixture, ParallelCacheSerialCacheAndSerialFreshAgree) {
  VerifierOptions serial_fresh = fast_options();
  VerifierOptions serial_cache = serial_fresh;
  serial_cache.model_cache_mb = 8.0;
  VerifierOptions parallel_cache = serial_cache;
  parallel_cache.threads = 4;

  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport a = verifier.verify(*design_, serial_fresh);
  const VerificationReport b = verifier.verify(*design_, serial_cache);
  const VerificationReport c = verifier.verify(*design_, parallel_cache);
  EXPECT_GT(b.model_cache_hits, 0u);
  EXPECT_GT(c.model_cache_hits, 0u);
  expect_reports_equal(a, b);
  expect_reports_equal(a, c);
}

TEST_F(PipelineFixture, CacheComposesWithJournalResume) {
  VerifierOptions options = fast_options();
  options.model_cache_mb = 8.0;
  options.journal_path = temp_path("pipeline_cache_journal.xtvj");
  std::remove(options.journal_path.c_str());

  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport full = verifier.verify(*design_, options);

  // Resume against the complete journal: every victim merges from disk,
  // and the merged report reproduces the cached run bit-exactly.
  VerifierOptions resume_opts = options;
  resume_opts.resume = true;
  const VerificationReport resumed = verifier.verify(*design_, resume_opts);
  expect_reports_equal(full, resumed);
  EXPECT_EQ(resumed.model_cache_hits, 0u);  // nothing re-analyzed

  // model_cache_mb is result-affecting (hits skip Krylov memory charges
  // under a budget), so the journal's options hash must cover it: a
  // resume under a different cache budget is refused, not merged.
  VerifierOptions mismatched = resume_opts;
  mismatched.model_cache_mb = 0.0;
  EXPECT_THROW(verifier.verify(*design_, mismatched), NumericalError);
  std::remove(options.journal_path.c_str());
}

TEST_F(PipelineFixture, OptionsHashCoversModelCacheBudget) {
  VerifierOptions a = fast_options();
  VerifierOptions b = a;
  b.model_cache_mb = 64.0;
  EXPECT_NE(options_result_hash(a), options_result_hash(b));
}

TEST_F(PipelineFixture, VerifyExercisesWorkspacePool) {
  workspace::reset_stats();
  ChipVerifier verifier(*extractor_, *chars_);
  (void)verifier.verify(*design_, fast_options());
  const workspace::Stats stats = workspace::stats();
  // Dense matrices, Krylov blocks, and Newton scratch all route through
  // the arena; after the first victim warms the pool, reuse dominates.
  EXPECT_GT(stats.acquires, 0u);
  EXPECT_GT(stats.pool_hits, stats.pool_misses);
}

// ---------------------------------------------------------------------------
// Row replication (chipgen).

TEST_F(PipelineFixture, ReplicatedRowsTileTheBaseRow) {
  DspChipOptions base_opt;
  base_opt.net_count = 30;
  base_opt.tracks = 3;
  base_opt.bus_count = 0;
  const ChipDesign base = generate_dsp_chip(*lib_, base_opt);

  DspChipOptions tiled_opt = base_opt;
  tiled_opt.net_count = 90;
  tiled_opt.tracks = 9;
  tiled_opt.replicate_rows = 3;
  const ChipDesign tiled = generate_dsp_chip(*lib_, tiled_opt);

  ASSERT_EQ(tiled.nets.size(), 3 * base.nets.size());
  ASSERT_EQ(tiled.couplings.size(), 3 * base.couplings.size());
  const std::size_t n0 = base.nets.size();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t i = 0; i < n0; ++i) {
      const ChipNet& src = base.nets[i];
      const ChipNet& dst = tiled.nets[r * n0 + i];
      EXPECT_EQ(dst.id, src.id + r * n0);
      EXPECT_EQ(dst.route.length, src.route.length);
      EXPECT_EQ(dst.driver_cell, src.driver_cell);
      EXPECT_EQ(dst.receiver_cap, src.receiver_cap);
    }
  }
  // Rows must be electrically independent: no coupling crosses rows.
  for (const ChipCoupling& c : tiled.couplings)
    EXPECT_EQ(c.a / n0, c.b / n0) << "coupling spans rows";
}

}  // namespace
}  // namespace xtv
