// Unit tests for src/util: PRNG determinism & distribution sanity,
// summary statistics, histograms, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/prng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/units.h"

namespace xtv {
namespace {

TEST(Prng, SameSeedSameStream) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, UniformMeanAndRange) {
  Prng rng(11);
  SummaryStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform(-2.0, 6.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_GE(s.min(), -2.0);
  EXPECT_LT(s.max(), 6.0);
}

TEST(Prng, UniformIntCoversRangeInclusive) {
  Prng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(2, 9));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Prng, NormalMoments) {
  Prng rng(13);
  SummaryStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Prng, LogUniformStaysInRange) {
  Prng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.log_uniform(1e-15, 1e-9);
    EXPECT_GE(x, 1e-15 * (1 - 1e-12));
    EXPECT_LE(x, 1e-9 * (1 + 1e-12));
  }
}

TEST(Prng, BernoulliEdgeCases) {
  Prng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Prng, WeightedIndexRespectsWeights) {
  Prng rng(23);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SummaryStats, Basics) {
  SummaryStats s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(SummaryStats, EmptyIsSafe) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryStats, SingleElement) {
  SummaryStats s;
  s.add(-3.5);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinEdgesAndCenters) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), -0.25);
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 5);
  Prng rng(31);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double total = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, AsciiRenderingHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  const std::string s = h.to_ascii();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"ckt", "glitch"});
  t.add_row({"ckt1", AsciiTable::num(0.123456, 3)});
  t.add_row({"ckt2", AsciiTable::num(1.5, 3)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("ckt1"), std::string::npos);
  EXPECT_NE(s.find("0.123"), std::string::npos);
  EXPECT_NE(s.find("1.500"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(AsciiTable, ScaledNumbers) {
  EXPECT_EQ(AsciiTable::num_scaled(2.5e-9, 1e-9, "ns", 2), "2.50 ns");
}

TEST(Units, Factors) {
  EXPECT_DOUBLE_EQ(100 * units::um, 1e-4);
  EXPECT_DOUBLE_EQ(2 * units::ns, 2e-9);
  EXPECT_DOUBLE_EQ(5 * units::fF, 5e-15);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(t.elapsed(), 0.0);
  t.restart();
  EXPECT_LT(t.elapsed(), 1.0);
}

}  // namespace
}  // namespace xtv
