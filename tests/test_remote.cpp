// Remote fan-out tests (DESIGN.md §14). Two layers:
//
//   LeaseTable — the pure failure-policy core, driven with a synthetic
//   clock: ownership, idempotent (unit, attempt) classification, settled
//   victims surviving reassignment, exponential backoff, the
//   distinct-holder / attempt-budget quarantine rungs, short completions,
//   and the all-workers-dead drain.
//
//   End to end — a real xtv_worker serve loop forked as a child process,
//   a real RemoteExecutor dialing it over TCP: crash-free bit-identity
//   against the in-process run, mid-unit SIGKILL recovery, the
//   options-hash rejection gate, dropped-frame redelivery, and the
//   stall -> lease expiry -> heal -> stale-frame-rejection cycle.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/journal.h"
#include "core/verifier.h"
#include "serve/job.h"
#include "serve/lease.h"
#include "serve/remote.h"

namespace xtv {
namespace serve {
namespace {

std::vector<std::size_t> iota_work(std::size_t n) {
  std::vector<std::size_t> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = i * 3 + 1;  // non-trivial ids
  return w;
}

// ---------------------------------------------------------------------------
// LeaseTable
// ---------------------------------------------------------------------------

TEST(LeaseTable, SlicesWorkIntoContiguousStableUnits) {
  LeaseOptions opt;
  opt.unit_victims = 4;
  const auto work = iota_work(10);
  LeaseTable table(work, opt);
  EXPECT_EQ(table.unit_count(), 3u);
  EXPECT_EQ(table.victims_total(), 10u);
  EXPECT_FALSE(table.all_settled());

  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("w1", 0.0, &a));
  EXPECT_EQ(a.unit, 0u);
  EXPECT_EQ(a.attempt, 1u);
  ASSERT_EQ(a.victims.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(a.victims[i], work[i]);

  // Last unit takes the remainder.
  LeaseAssignment b, c;
  ASSERT_TRUE(table.acquire("w1", 0.0, &b));
  ASSERT_TRUE(table.acquire("w2", 0.0, &c));
  EXPECT_EQ(c.victims.size(), 2u);
  EXPECT_EQ(table.leased_count(), 3u);
  // Nothing left to lease.
  LeaseAssignment d;
  EXPECT_FALSE(table.acquire("w3", 0.0, &d));
}

TEST(LeaseTable, ResultsSettleExactlyOnce) {
  LeaseOptions opt;
  opt.unit_victims = 3;
  const auto work = iota_work(3);
  LeaseTable table(work, opt);
  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("w1", 0.0, &a));

  EXPECT_EQ(table.result(a.unit, a.attempt, work[0]), LeaseVerdict::kAccepted);
  EXPECT_EQ(table.result(a.unit, a.attempt, work[0]),
            LeaseVerdict::kDuplicate);
  EXPECT_EQ(table.stats().duplicate_results, 1u);
  // A victim that is not a member of the unit is unclassifiable.
  EXPECT_EQ(table.result(a.unit, a.attempt, 999), LeaseVerdict::kUnknown);
  // Out-of-range unit id likewise.
  EXPECT_EQ(table.result(57, 1, work[1]), LeaseVerdict::kUnknown);

  EXPECT_EQ(table.result(a.unit, a.attempt, work[1]), LeaseVerdict::kAccepted);
  EXPECT_EQ(table.result(a.unit, a.attempt, work[2]), LeaseVerdict::kAccepted);
  EXPECT_EQ(table.complete(a.unit, a.attempt, 0.0), LeaseVerdict::kAccepted);
  EXPECT_TRUE(table.all_settled());
  // A completion echo for a finished unit is stale, not a second success.
  EXPECT_EQ(table.complete(a.unit, a.attempt, 0.0), LeaseVerdict::kStale);
}

TEST(LeaseTable, StaleAttemptFramesAreRejected) {
  LeaseOptions opt;
  opt.unit_victims = 4;
  opt.backoff_base_ms = 100.0;
  const auto work = iota_work(4);
  LeaseTable table(work, opt);

  LeaseAssignment first;
  ASSERT_TRUE(table.acquire("w1", 0.0, &first));
  table.fail_unit(first.unit, 1000.0);

  // Re-lease after backoff: fresh attempt number.
  LeaseAssignment second;
  ASSERT_TRUE(table.acquire("w2", 1200.0, &second));
  EXPECT_EQ(second.attempt, 2u);
  EXPECT_EQ(table.stats().reassignments, 1u);

  // The partitioned-then-healed first worker flushes its stale work.
  EXPECT_EQ(table.result(first.unit, first.attempt, work[0]),
            LeaseVerdict::kStale);
  EXPECT_EQ(table.complete(first.unit, first.attempt, 1300.0),
            LeaseVerdict::kStale);
  EXPECT_GE(table.stats().stale_frames, 2u);
  // The live lease still works.
  EXPECT_EQ(table.result(second.unit, second.attempt, work[0]),
            LeaseVerdict::kAccepted);
}

TEST(LeaseTable, SettledVictimsSurviveReassignment) {
  LeaseOptions opt;
  opt.unit_victims = 4;
  opt.backoff_base_ms = 50.0;
  const auto work = iota_work(4);
  LeaseTable table(work, opt);

  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("w1", 0.0, &a));
  EXPECT_EQ(table.result(a.unit, a.attempt, work[1]), LeaseVerdict::kAccepted);
  EXPECT_EQ(table.result(a.unit, a.attempt, work[3]), LeaseVerdict::kAccepted);
  EXPECT_EQ(table.victims_settled(), 2u);
  table.fail_holder("w1", 100.0);

  // The re-lease carries only the unsettled remainder, in stable order.
  LeaseAssignment b;
  ASSERT_TRUE(table.acquire("w2", 1000.0, &b));
  ASSERT_EQ(b.victims.size(), 2u);
  EXPECT_EQ(b.victims[0], work[0]);
  EXPECT_EQ(b.victims[1], work[2]);
}

TEST(LeaseTable, ExponentialBackoffDelaysRequeue) {
  LeaseOptions opt;
  opt.unit_victims = 2;
  opt.max_unit_attempts = 10;
  opt.backoff_base_ms = 100.0;
  opt.backoff_max_ms = 250.0;
  const auto work = iota_work(2);
  LeaseTable table(work, opt);

  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("w1", 0.0, &a));
  table.fail_unit(a.unit, 1000.0);
  // First failure: ready again at 1000 + 100.
  EXPECT_FALSE(table.acquire("w1", 1050.0, &a));
  EXPECT_DOUBLE_EQ(table.next_ready_ms(1050.0), 1100.0);
  ASSERT_TRUE(table.acquire("w1", 1100.0, &a));
  table.fail_unit(a.unit, 2000.0);
  // Second failure doubles the delay.
  EXPECT_FALSE(table.acquire("w1", 2150.0, &a));
  ASSERT_TRUE(table.acquire("w1", 2200.0, &a));
  table.fail_unit(a.unit, 3000.0);
  // Third failure would be 400 ms but the cap holds it at 250.
  ASSERT_TRUE(table.acquire("w1", 3250.0, &a));
}

TEST(LeaseTable, AttemptBudgetQuarantines) {
  LeaseOptions opt;
  opt.unit_victims = 2;
  opt.max_unit_attempts = 2;
  opt.quarantine_distinct_holders = 99;  // isolate the attempt rung
  opt.backoff_base_ms = 10.0;
  const auto work = iota_work(2);
  LeaseTable table(work, opt);

  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("w1", 0.0, &a));
  table.fail_unit(a.unit, 0.0);
  ASSERT_TRUE(table.acquire("w1", 100.0, &a));
  EXPECT_EQ(a.attempt, 2u);
  table.fail_unit(a.unit, 100.0);  // budget burned -> quarantine

  EXPECT_EQ(table.stats().units_quarantined, 1u);
  LeaseAssignment b;
  EXPECT_FALSE(table.acquire("w1", 10000.0, &b));
  const auto q = table.take_quarantined();
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0], work[0]);
  EXPECT_EQ(q[1], work[1]);
  EXPECT_TRUE(table.all_settled());
  // take_quarantined is a one-shot handover.
  EXPECT_TRUE(table.take_quarantined().empty());
}

TEST(LeaseTable, TwoDistinctHoldersQuarantine) {
  LeaseOptions opt;
  opt.unit_victims = 2;
  opt.max_unit_attempts = 99;  // isolate the distinct-holder rung
  opt.quarantine_distinct_holders = 2;
  opt.backoff_base_ms = 10.0;
  const auto work = iota_work(2);
  LeaseTable table(work, opt);

  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("hostA", 0.0, &a));
  table.fail_holder("hostA", 0.0);
  ASSERT_TRUE(table.acquire("hostA", 100.0, &a));
  table.fail_holder("hostA", 100.0);  // same host again: still one holder
  EXPECT_EQ(table.stats().units_quarantined, 0u);
  ASSERT_TRUE(table.acquire("hostB", 200.0, &a));
  table.fail_holder("hostB", 200.0);  // second distinct host -> poison unit
  EXPECT_EQ(table.stats().units_quarantined, 1u);
}

TEST(LeaseTable, ShortCompletionRequeuesWithoutCharge) {
  LeaseOptions opt;
  opt.unit_victims = 3;
  opt.backoff_base_ms = 500.0;
  const auto work = iota_work(3);
  LeaseTable table(work, opt);

  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("w1", 0.0, &a));
  EXPECT_EQ(table.result(a.unit, a.attempt, work[0]), LeaseVerdict::kAccepted);
  // Done arrives but two result frames were dropped in transit.
  EXPECT_EQ(table.complete(a.unit, a.attempt, 100.0), LeaseVerdict::kAccepted);
  EXPECT_EQ(table.stats().short_completions, 1u);
  EXPECT_EQ(table.stats().failures, 0u);  // the holder is not blamed

  // Requeued immediately (no backoff), remainder only.
  LeaseAssignment b;
  ASSERT_TRUE(table.acquire("w1", 100.0, &b));
  EXPECT_EQ(b.attempt, 2u);
  ASSERT_EQ(b.victims.size(), 2u);
  EXPECT_EQ(b.victims[0], work[1]);
  EXPECT_EQ(b.victims[1], work[2]);
}

TEST(LeaseTable, DrainRemainingSettlesEverythingSorted) {
  LeaseOptions opt;
  opt.unit_victims = 2;
  const auto work = iota_work(6);
  LeaseTable table(work, opt);

  LeaseAssignment a;
  ASSERT_TRUE(table.acquire("w1", 0.0, &a));
  EXPECT_EQ(table.result(a.unit, a.attempt, work[0]), LeaseVerdict::kAccepted);

  const auto rest = table.drain_remaining();
  ASSERT_EQ(rest.size(), 5u);
  for (std::size_t i = 1; i < rest.size(); ++i)
    EXPECT_LT(rest[i - 1], rest[i]);
  EXPECT_TRUE(table.all_settled());
  // Late frames from the abandoned lease classify stale, not accepted.
  EXPECT_EQ(table.result(a.unit, a.attempt, work[1]), LeaseVerdict::kStale);
  EXPECT_EQ(table.complete(a.unit, a.attempt, 1.0), LeaseVerdict::kStale);
}

// ---------------------------------------------------------------------------
// End to end: real worker process, real TCP, real verifier
// ---------------------------------------------------------------------------

constexpr std::size_t kNets = 60;

/// Scoped environment variable (the worker test hooks are env-driven and
/// inherited across fork).
struct EnvGuard {
  std::string name;
  EnvGuard(const char* n, const std::string& v) : name(n) {
    ::setenv(n, v.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name.c_str()); }
};

class RemoteFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(Technology::default_250nm());
    // Default characterization options: the worker rebuilds with defaults
    // too, and bit-identity across the wire rests on both sides deriving
    // the same models.
    chars_ = new CharacterizedLibrary(*lib_);
    extractor_ = new Extractor(Technology::default_250nm());
    DspChipOptions chip_opt;
    chip_opt.net_count = kNets;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));

    spec_ = new JobSpec();
    spec_->design_nets = kNets;
    baseline_ = new VerificationReport(
        ChipVerifier(*extractor_, *chars_).verify(*design_,
                                                  spec_->to_options()));
    // The baseline run characterized every cell the design uses; persist
    // the models so workers can skip the (deterministic) recomputation.
    cache_path_ = ::testing::TempDir() + "xtv_remote_cells_" +
                  std::to_string(::getpid()) + ".cache";
    chars_->save(cache_path_);
  }

  static void TearDownTestSuite() {
    std::remove(cache_path_.c_str());
    delete baseline_;
    delete spec_;
    delete design_;
    delete extractor_;
    delete chars_;
    delete lib_;
  }

  /// Forks an xtv_worker serving one coordinator; returns its pid and
  /// endpoint (discovered through the atomically published file). A warm
  /// `cell_cache` makes the worker ready milliseconds after setup; an
  /// empty one costs it a full characterization (seconds) — tests that
  /// need a deterministic assignment order exploit the gap.
  static pid_t spawn_worker(const std::string& tag, std::string* endpoint,
                            const std::string& cell_cache) {
    const std::string ep_file = ::testing::TempDir() + "xtv_remote_" + tag +
                                "_" + std::to_string(::getpid()) + ".ep";
    std::remove(ep_file.c_str());
    const pid_t pid = ::fork();
    if (pid == 0) {
      WorkerOptions wo;
      wo.listen = "127.0.0.1:0";
      wo.endpoint_file = ep_file;
      wo.cell_cache = cell_cache;
      wo.max_coordinators = 1;
      ::_exit(run_worker(wo));
    }
    // The endpoint file appears atomically once the listener is bound.
    for (int i = 0; i < 200; ++i) {
      std::ifstream in(ep_file);
      if (in >> *endpoint && !endpoint->empty()) break;
      ::usleep(50 * 1000);
    }
    std::remove(ep_file.c_str());
    EXPECT_FALSE(endpoint->empty()) << "worker never published an endpoint";
    return pid;
  }

  static void reap(pid_t pid) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }

  /// Runs the full verifier with a RemoteExecutor over `endpoints` and
  /// asserts the report's findings are bit-identical to the in-process
  /// baseline (the acceptance bar for a crash-free or fully recovered
  /// distributed run).
  static VerificationReport run_remote(const std::vector<std::string>& eps,
                                       RemoteExecStats* stats_out = nullptr,
                                       double heartbeat_ms = 100.0,
                                       std::size_t unit_victims = 8) {
    VerifierOptions vo = spec_->to_options();
    RemoteExecOptions ro;
    ro.workers = eps;
    ro.heartbeat_ms = heartbeat_ms;
    ro.unit_victims = unit_victims;
    ro.options_hash = options_result_hash(vo);
    ro.spec_text = spec_->to_text();
    RemoteExecutor exec(ro);
    vo.remote_backend = &exec;
    ChipVerifier verifier(*extractor_, *chars_);
    const VerificationReport report = verifier.verify(*design_, vo);
    if (stats_out) *stats_out = exec.remote_stats();
    return report;
  }

  static void expect_bit_identical(const VerificationReport& report) {
    ASSERT_EQ(report.findings.size(), baseline_->findings.size());
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
      const VictimFinding& a = baseline_->findings[i];
      const VictimFinding& b = report.findings[i];
      EXPECT_EQ(a.net, b.net);
      EXPECT_EQ(a.peak, b.peak) << "net " << a.net;
      EXPECT_EQ(a.peak_fraction, b.peak_fraction) << "net " << a.net;
      EXPECT_EQ(a.violation, b.violation) << "net " << a.net;
      EXPECT_EQ(static_cast<int>(a.status), static_cast<int>(b.status))
          << "net " << a.net;
    }
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
  static JobSpec* spec_;
  static VerificationReport* baseline_;
  static std::string cache_path_;
};

CellLibrary* RemoteFixture::lib_ = nullptr;
CharacterizedLibrary* RemoteFixture::chars_ = nullptr;
Extractor* RemoteFixture::extractor_ = nullptr;
ChipDesign* RemoteFixture::design_ = nullptr;
JobSpec* RemoteFixture::spec_ = nullptr;
VerificationReport* RemoteFixture::baseline_ = nullptr;
std::string RemoteFixture::cache_path_;

TEST_F(RemoteFixture, CrashFreeRunIsBitIdentical) {
  std::string ep;
  const pid_t pid = spawn_worker("clean", &ep, cache_path_);
  RemoteExecStats rs;
  const VerificationReport report = run_remote({ep}, &rs);
  reap(pid);
  EXPECT_EQ(rs.workers_connected, 1u);
  EXPECT_EQ(rs.lease.stale_frames, 0u);
  EXPECT_EQ(rs.lease.duplicate_results, 0u);
  EXPECT_EQ(rs.victims_local, 0u);
  expect_bit_identical(report);
}

TEST_F(RemoteFixture, WorkerCrashMidUnitRecoversOnSurvivor) {
  std::string ep_bad, ep_good;
  pid_t pid_bad;
  {
    // The crash hook is inherited across fork; scope it to the bad worker.
    // Warm cache: the doomed worker is ready long before the cold-cache
    // survivor, so it deterministically draws unit 0 and dies on it.
    EnvGuard crash("XTV_TEST_WORKER_CRASH_UNIT", "0");
    pid_bad = spawn_worker("crash", &ep_bad, cache_path_);
  }
  const pid_t pid_good = spawn_worker("survivor", &ep_good, "");

  RemoteExecStats rs;
  const VerificationReport report = run_remote({ep_bad, ep_good}, &rs);
  reap(pid_bad);
  reap(pid_good);

  EXPECT_EQ(rs.workers_connected, 2u);
  EXPECT_EQ(rs.workers_lost, 1u);
  EXPECT_GE(rs.lease.reassignments, 1u);
  EXPECT_EQ(rs.victims_local, 0u);  // the survivor absorbed everything
  EXPECT_EQ(report.victims_quarantined, 0u);  // one host death != poison
  expect_bit_identical(report);
}

TEST_F(RemoteFixture, AllWorkersLostFallsBackLocally) {
  std::string ep;
  pid_t pid;
  {
    EnvGuard crash("XTV_TEST_WORKER_CRASH_UNIT", "0");
    pid = spawn_worker("doomed", &ep, cache_path_);
  }
  RemoteExecStats rs;
  const VerificationReport report = run_remote({ep}, &rs);
  reap(pid);

  EXPECT_EQ(rs.workers_lost, 1u);
  EXPECT_GE(rs.victims_local, 1u);  // the drain picked up the remainder
  // The only worker died on its first unit, so (nearly) everything ran
  // through the local fallback — and the result is still bit-identical.
  expect_bit_identical(report);
}

TEST_F(RemoteFixture, OptionsHashMismatchIsTypedRejection) {
  std::string ep;
  const pid_t pid = spawn_worker("reject", &ep, cache_path_);

  VerifierOptions vo = spec_->to_options();
  RemoteExecOptions ro;
  ro.workers = {ep};
  ro.heartbeat_ms = 100.0;
  ro.options_hash = options_result_hash(vo) ^ 0xdeadbeefULL;  // wrong on purpose
  ro.spec_text = spec_->to_text();
  RemoteExecutor exec(ro);
  vo.remote_backend = &exec;
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport report = verifier.verify(*design_, vo);
  reap(pid);

  // The worker refuses (it derived the true hash; the coordinator lied),
  // no lease is ever granted, and the job still completes locally.
  EXPECT_EQ(exec.remote_stats().workers_rejected, 1u);
  EXPECT_EQ(exec.remote_stats().workers_connected, 0u);
  EXPECT_GE(exec.remote_stats().victims_local, 1u);
  EXPECT_EQ(exec.remote_stats().lease.leases, 0u);
  expect_bit_identical(report);
}

TEST_F(RemoteFixture, DroppedResultFramesAreRedelivered) {
  std::string ep;
  pid_t pid;
  {
    EnvGuard drop("XTV_TEST_DROP_FRAME_EVERY", "3");
    pid = spawn_worker("lossy", &ep, cache_path_);
  }
  RemoteExecStats rs;
  const VerificationReport report = run_remote({ep}, &rs);
  reap(pid);

  // Every dropped frame shows up as a short completion whose remainder is
  // re-leased until delivered — no failure charged, nothing quarantined.
  EXPECT_GE(rs.lease.short_completions, 1u);
  EXPECT_EQ(rs.lease.failures, 0u);
  EXPECT_EQ(report.victims_quarantined, 0u);
  expect_bit_identical(report);
}

TEST_F(RemoteFixture, StalledWorkerLosesLeaseThenHealsStale) {
  std::string ep;
  pid_t pid;
  {
    // Warm cache: the stall window must start promptly after setup, not
    // after seconds of characterization.
    EnvGuard stall("XTV_TEST_WORKER_STALL_MS", "1500");
    pid = spawn_worker("stall", &ep, cache_path_);
  }
  RemoteExecStats rs;
  // 100 ms heartbeat: the 1.5 s stall blows through the 1 s (10x) expiry
  // window but wakes inside the probation window, so the worker is
  // re-admitted, its first-attempt results are all classified stale, and
  // the unit is re-leased to it for a prompt second pass.
  const VerificationReport report =
      run_remote({ep}, &rs, /*heartbeat_ms=*/100.0, /*unit_victims=*/64);
  reap(pid);

  EXPECT_GE(rs.lease_expiries, 1u);
  EXPECT_GE(rs.lease.stale_frames, 1u);
  EXPECT_GE(rs.lease.reassignments, 1u);
  EXPECT_EQ(rs.lease.duplicate_results, 0u);
  expect_bit_identical(report);
}

}  // namespace
}  // namespace serve
}  // namespace xtv
