// Tests for parasitic extraction: rule scaling, distributed segmentation,
// coupling-window placement, and the Figure-1 3-wire structure.
#include <gtest/gtest.h>

#include <cmath>

#include "extract/extractor.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

TEST(ExtractorRules, ResistanceScalesInverselyWithWidth) {
  Extractor ex(kTech);
  EXPECT_DOUBLE_EQ(ex.r_per_m(), kTech.wire_r_per_m);
  EXPECT_NEAR(ex.r_per_m(2 * kTech.min_width), 0.5 * kTech.wire_r_per_m, 1e-9);
}

TEST(ExtractorRules, GroundCapGrowsWithWidth) {
  Extractor ex(kTech);
  EXPECT_GT(ex.cg_per_m(2 * kTech.min_width), ex.cg_per_m());
}

TEST(ExtractorRules, CouplingFallsWithSpacing) {
  Extractor ex(kTech);
  EXPECT_DOUBLE_EQ(ex.cc_per_m(), kTech.wire_cc_per_m);
  EXPECT_NEAR(ex.cc_per_m(2 * kTech.min_spacing), 0.5 * kTech.wire_cc_per_m, 1e-18);
}

TEST(ExtractorRules, CouplingDominatesAtMinimumSpacing) {
  // The deep-submicron premise: lateral coupling exceeds ground cap
  // ("capacitance could contribute in excess of 70% of total").
  Extractor ex(kTech);
  const double cc_both_sides = 2.0 * ex.cc_per_m();
  EXPECT_GT(cc_both_sides / (cc_both_sides + ex.cg_per_m()), 0.7);
}

TEST(ExtractNet, TotalsMatchRules) {
  Extractor ex(kTech);
  const NetRoute route{1000 * units::um, 0.0};
  RcNetwork net = ex.extract_net(route);

  double total_r = 0.0;
  for (const auto& r : net.resistors()) total_r += r.ohms;
  EXPECT_NEAR(total_r, ex.route_resistance(route), 1e-6 * total_r);

  double total_c = 0.0;
  for (const auto& c : net.capacitors()) total_c += c.farads;
  EXPECT_NEAR(total_c, ex.route_ground_cap(route), 1e-6 * total_c);
}

TEST(ExtractNet, PortsAtBothEnds) {
  Extractor ex(kTech);
  RcNetwork net = ex.extract_net({200 * units::um, 0.0});
  ASSERT_EQ(net.port_count(), 2u);
  EXPECT_NE(net.port_node(0), net.port_node(1));
}

TEST(ExtractNet, SegmentationRefinesWithLength) {
  Extractor ex(kTech, 25e-6);
  RcNetwork short_net = ex.extract_net({30 * units::um, 0.0});
  RcNetwork long_net = ex.extract_net({1000 * units::um, 0.0});
  EXPECT_GT(long_net.node_count(), short_net.node_count());
  EXPECT_GE(short_net.node_count(), 2);
}

TEST(ExtractNet, RejectsZeroLength) {
  Extractor ex(kTech);
  EXPECT_THROW(ex.extract_net({0.0, 0.0}), std::runtime_error);
}

TEST(ExtractCluster, CouplingCapTotalMatchesRun) {
  Extractor ex(kTech);
  const NetRoute wire{500 * units::um, 0.0};
  const CouplingRun run{0, 1, 300 * units::um, 0.0, 100 * units::um, 50 * units::um};
  RcNetwork net = ex.extract_cluster({wire, wire}, {run});

  double total_cc = 0.0;
  for (const auto& c : net.capacitors())
    if (c.coupling) total_cc += c.farads;
  EXPECT_NEAR(total_cc, ex.run_coupling_cap(run), 1e-6 * total_cc);
  EXPECT_EQ(net.port_count(), 4u);
}

TEST(ExtractCluster, CouplingOnlyInsideWindow) {
  Extractor ex(kTech, 25e-6);
  const NetRoute wire{400 * units::um, 0.0};
  // Narrow window in the middle of net 0.
  const CouplingRun run{0, 1, 100 * units::um, 0.0, 150 * units::um, 150 * units::um};
  RcNetwork net = ex.extract_cluster({wire, wire}, {run});
  // Caps must not attach to the end nodes of net 0 (the ports).
  const int driver0 = net.port_node(ClusterPorts::driver(0));
  const int recv0 = net.port_node(ClusterPorts::receiver(0));
  for (const auto& c : net.capacitors()) {
    if (!c.coupling) continue;
    EXPECT_NE(c.a, driver0);
    EXPECT_NE(c.a, recv0);
  }
}

TEST(ExtractCluster, RejectsBadRuns) {
  Extractor ex(kTech);
  const NetRoute wire{100 * units::um, 0.0};
  EXPECT_THROW(ex.extract_cluster({wire, wire}, {{0, 0, 50e-6, 0, 0, 0}}),
               std::runtime_error);
  EXPECT_THROW(ex.extract_cluster({wire}, {{0, 5, 50e-6, 0, 0, 0}}),
               std::runtime_error);
  EXPECT_THROW(ex.extract_cluster({}, {}), std::runtime_error);
}

TEST(ExtractParallel3, SymmetricStructure) {
  Extractor ex(kTech);
  RcNetwork net = ex.extract_parallel3(1000 * units::um);
  EXPECT_EQ(net.port_count(), 6u);  // 3 nets x 2 ports
  // Victim (net 0) couples to both aggressors with equal total cap.
  const double expected =
      ex.cc_per_m() * 1000 * units::um;  // per neighbor
  double total_cc = 0.0;
  for (const auto& c : net.capacitors())
    if (c.coupling) total_cc += c.farads;
  EXPECT_NEAR(total_cc, 2 * expected, 1e-6 * total_cc);
}

// Property sweep: longer coupled length -> strictly more coupling cap and
// more wire resistance (the Table-1 monotonicity at the extraction level).
class ExtractionMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(ExtractionMonotonic, ParasiticsGrowWithLength) {
  Extractor ex(kTech);
  const double len = GetParam();
  const NetRoute route{len, 0.0};
  EXPECT_GT(ex.route_resistance(route), 0.0);
  const NetRoute longer{len * 2, 0.0};
  EXPECT_GT(ex.route_resistance(longer), ex.route_resistance(route));
  EXPECT_GT(ex.route_ground_cap(longer), ex.route_ground_cap(route));
  EXPECT_GT(ex.run_coupling_cap({0, 1, len * 2, 0, 0, 0}),
            ex.run_coupling_cap({0, 1, len, 0, 0, 0}));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ExtractionMonotonic,
                         ::testing::Values(10e-6, 100e-6, 1000e-6, 4000e-6));

}  // namespace
}  // namespace xtv
