// Unit tests for the netlist layer: source waveforms, circuit construction
// and merging, the RC-network MNA stamps, and SPICE deck round-trips.
#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "netlist/circuit.h"
#include "netlist/rc_network.h"
#include "netlist/spice_deck.h"
#include "util/units.h"

namespace xtv {
namespace {

TEST(SourceWave, DcIsConstant) {
  SourceWave w = SourceWave::dc(3.0);
  EXPECT_TRUE(w.is_dc());
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.0);
  EXPECT_DOUBLE_EQ(w.value(1e9), 3.0);
  EXPECT_DOUBLE_EQ(w.max_slope(), 0.0);
}

TEST(SourceWave, PwlInterpolatesAndClamps) {
  SourceWave w = SourceWave::pwl({{1.0, 0.0}, {2.0, 10.0}});
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);   // clamp before
  EXPECT_DOUBLE_EQ(w.value(1.5), 5.0);   // midpoint
  EXPECT_DOUBLE_EQ(w.value(3.0), 10.0);  // clamp after
  EXPECT_DOUBLE_EQ(w.max_slope(), 10.0);
}

TEST(SourceWave, PwlRejectsNonIncreasingTimes) {
  EXPECT_THROW(SourceWave::pwl({{1.0, 0.0}, {1.0, 1.0}}), std::runtime_error);
  EXPECT_THROW(SourceWave::pwl({}), std::runtime_error);
}

TEST(SourceWave, PulseShape) {
  SourceWave w = SourceWave::pulse(0.0, 3.0, 1e-9, 0.1e-9, 2e-9, 0.2e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1e-9), 0.0);
  EXPECT_NEAR(w.value(1.05e-9), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.value(2e-9), 3.0);
  EXPECT_DOUBLE_EQ(w.value(10e-9), 0.0);
}

TEST(SourceWave, RampEdges) {
  SourceWave r = SourceWave::ramp(0.0, 3.0, 0.5e-9, 0.2e-9);
  EXPECT_DOUBLE_EQ(r.value(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(r.value(0.7e-9), 3.0);
  SourceWave f = SourceWave::ramp(3.0, 0.0, 0.0, 0.2e-9);
  EXPECT_DOUBLE_EQ(f.value(0.0), 3.0);
  EXPECT_DOUBLE_EQ(f.value(0.2e-9), 0.0);
}

TEST(Circuit, NodesAndNames) {
  Circuit c;
  EXPECT_EQ(c.node_count(), 1);  // ground
  const int a = c.add_node("vdd");
  const int b = c.add_node();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(c.node_name(a), "vdd");
  EXPECT_EQ(c.find_node("vdd"), a);
  EXPECT_EQ(c.find_node("nope"), -1);
}

TEST(Circuit, ValidatesElements) {
  Circuit c;
  const int a = c.add_node();
  EXPECT_THROW(c.add_resistor(a, 99, 100.0), std::runtime_error);
  EXPECT_THROW(c.add_resistor(a, 0, -5.0), std::runtime_error);
  EXPECT_THROW(c.add_capacitor(a, 0, -1e-15), std::runtime_error);
  EXPECT_THROW(c.add_mosfet(a, a, a, 0, 1e-6, 1e-6), std::runtime_error);
}

TEST(Circuit, MergeConnectsAndTranslates) {
  Circuit sub;
  const int in = sub.add_node("in");
  const int mid = sub.add_node("mid");
  sub.add_resistor(in, mid, 1000.0);
  sub.add_capacitor(mid, Circuit::ground(), 1e-15);

  Circuit top;
  const int port = top.add_node("port");
  const auto xlat = top.merge(sub, {in}, {port});
  EXPECT_EQ(xlat[static_cast<std::size_t>(in)], port);
  EXPECT_EQ(top.resistors().size(), 1u);
  EXPECT_EQ(top.resistors()[0].a, port);
  EXPECT_EQ(top.capacitors().size(), 1u);
  EXPECT_EQ(top.capacitors()[0].b, Circuit::ground());
  // `mid` imported as a fresh node distinct from port.
  EXPECT_NE(xlat[static_cast<std::size_t>(mid)], port);
}

TEST(Circuit, MergeShiftsModelIndices) {
  Circuit sub;
  MosModel nm;
  const int m = sub.add_model(nm);
  const int d = sub.add_node();
  const int g = sub.add_node();
  sub.add_mosfet(d, g, Circuit::ground(), m, 1e-6, 0.25e-6);

  Circuit top;
  MosModel pm;
  pm.type = MosType::kPmos;
  top.add_model(pm);  // occupies index 0
  top.merge(sub, {}, {});
  ASSERT_EQ(top.mosfets().size(), 1u);
  EXPECT_EQ(top.mosfets()[0].model, 1);
  EXPECT_EQ(top.models()[1].type, MosType::kNmos);
}

TEST(RcNetwork, GMatrixStamps) {
  RcNetwork net;
  const int a = net.add_node("a");
  const int b = net.add_node("b");
  net.add_resistor(a, b, 2.0);               // g = 0.5
  net.add_resistor(b, RcNetwork::kGround, 4.0);  // g = 0.25
  DenseMatrix g = net.g_matrix();
  EXPECT_DOUBLE_EQ(g(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(g(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(g(1, 0), -0.5);
  EXPECT_DOUBLE_EQ(g(1, 1), 0.75);
}

TEST(RcNetwork, CMatrixCoupledVsDecoupled) {
  RcNetwork net;
  const int a = net.add_node();
  const int b = net.add_node();
  net.add_capacitor(a, RcNetwork::kGround, 10e-15);
  net.add_capacitor(a, b, 4e-15, /*coupling=*/true);

  DenseMatrix c = net.c_matrix(true);
  EXPECT_DOUBLE_EQ(c(0, 0), 14e-15);
  EXPECT_DOUBLE_EQ(c(0, 1), -4e-15);
  EXPECT_DOUBLE_EQ(c(1, 1), 4e-15);

  // Decoupled: coupling cap grounded at both ends, off-diagonal vanishes.
  DenseMatrix cd = net.c_matrix(false);
  EXPECT_DOUBLE_EQ(cd(0, 0), 14e-15);
  EXPECT_DOUBLE_EQ(cd(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cd(1, 1), 4e-15);
}

TEST(RcNetwork, PortsAndConductances) {
  RcNetwork net;
  const int a = net.add_node();
  net.add_resistor(a, RcNetwork::kGround, 1e3);
  const int p = net.add_port(a);
  EXPECT_EQ(p, 0);
  EXPECT_THROW(net.add_port(a), std::runtime_error);  // duplicate
  net.stamp_port_conductance(0, 1e-3);
  EXPECT_DOUBLE_EQ(net.port_conductance(0), 1e-3);
  EXPECT_DOUBLE_EQ(net.g_matrix()(0, 0), 1e-3 + 1e-3);
  DenseMatrix bmat = net.b_matrix();
  EXPECT_DOUBLE_EQ(bmat(0, 0), 1.0);
}

TEST(RcNetwork, GIsSpdWhenGrounded) {
  // A 3-node RC ladder with a driver-side port conductance: Cholesky must
  // succeed (the paper's SPD assumption on G).
  RcNetwork net;
  int prev = net.add_node();
  net.add_port(prev);
  net.stamp_port_conductance(0, 1e-3);
  for (int i = 0; i < 2; ++i) {
    const int next = net.add_node();
    net.add_resistor(prev, next, 50.0);
    net.add_capacitor(next, RcNetwork::kGround, 5e-15);
    prev = next;
  }
  EXPECT_NO_THROW(Cholesky{net.g_matrix()});
}

TEST(RcNetwork, NodeTotalCap) {
  RcNetwork net;
  const int a = net.add_node();
  const int b = net.add_node();
  net.add_capacitor(a, RcNetwork::kGround, 3e-15);
  net.add_capacitor(a, b, 2e-15, true);
  EXPECT_DOUBLE_EQ(net.node_total_cap(a), 5e-15);
  EXPECT_DOUBLE_EQ(net.node_total_cap(b), 2e-15);
}

TEST(RcNetwork, ExportToCircuitPreservesElements) {
  RcNetwork net;
  const int a = net.add_node();
  const int b = net.add_node();
  net.add_resistor(a, b, 100.0);
  net.add_capacitor(b, RcNetwork::kGround, 1e-15);
  net.add_port(a);
  net.stamp_port_conductance(0, 1e-3);

  Circuit c;
  const int pin = c.add_node("pin");
  net.export_to(c, {pin});
  ASSERT_EQ(c.resistors().size(), 2u);  // R + exported port conductance
  EXPECT_EQ(c.resistors()[0].a, pin);
  EXPECT_DOUBLE_EQ(c.resistors()[1].ohms, 1e3);
  ASSERT_EQ(c.capacitors().size(), 1u);
  EXPECT_EQ(c.capacitors()[0].b, Circuit::ground());
}

TEST(SpiceValue, SuffixParsing) {
  EXPECT_DOUBLE_EQ(parse_spice_value("100"), 100.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("10MEG"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_value("4f"), 4e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("3p"), 3e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5n"), 1.5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("2u"), 2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("7m"), 7e-3);
  EXPECT_THROW(parse_spice_value("abc"), std::runtime_error);
  EXPECT_THROW(parse_spice_value(""), std::runtime_error);
}

TEST(SpiceDeck, ParseBasicElements) {
  const std::string deck = R"(* test deck
R1 in out 1k
C1 out 0 10f
V1 in 0 DC 3.0
.end
)";
  Circuit c = parse_spice_deck(deck);
  ASSERT_EQ(c.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(c.resistors()[0].ohms, 1000.0);
  ASSERT_EQ(c.capacitors().size(), 1u);
  EXPECT_DOUBLE_EQ(c.capacitors()[0].farads, 10e-15);
  ASSERT_EQ(c.vsources().size(), 1u);
  EXPECT_DOUBLE_EQ(c.vsources()[0].wave.value(0.0), 3.0);
}

TEST(SpiceDeck, ParsePwlAndContinuation) {
  const std::string deck = R"(title card
V1 a 0 PWL(0 0
+ 1n 3.0 2n 3.0)
.end
)";
  Circuit c = parse_spice_deck(deck);
  ASSERT_EQ(c.vsources().size(), 1u);
  EXPECT_DOUBLE_EQ(c.vsources()[0].wave.value(0.5e-9), 1.5);
}

TEST(SpiceDeck, ParseMosfetWithModel) {
  const std::string deck = R"(inverter
.model nch NMOS (VT0=0.5 KP=110u LAMBDA=0.05)
M1 out in 0 0 nch W=2u L=0.25u
.end
)";
  Circuit c = parse_spice_deck(deck);
  ASSERT_EQ(c.mosfets().size(), 1u);
  EXPECT_DOUBLE_EQ(c.mosfets()[0].w, 2e-6);
  EXPECT_DOUBLE_EQ(c.mosfets()[0].l, 0.25e-6);
  ASSERT_EQ(c.models().size(), 1u);
  EXPECT_DOUBLE_EQ(c.models()[0].kp, 110e-6);
}

TEST(SpiceDeck, RoundTripThroughWriter) {
  Circuit c;
  const int in = c.add_node("in");
  const int out = c.add_node("out");
  c.add_resistor(in, out, 1234.0);
  c.add_capacitor(out, Circuit::ground(), 5e-15);
  c.add_vsource(in, Circuit::ground(),
                SourceWave::pwl({{0.0, 0.0}, {1e-9, 3.0}}));
  const std::string deck = write_spice_deck(c);
  Circuit back = parse_spice_deck(deck);
  ASSERT_EQ(back.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(back.resistors()[0].ohms, 1234.0);
  ASSERT_EQ(back.vsources().size(), 1u);
  EXPECT_NEAR(back.vsources()[0].wave.value(0.5e-9), 1.5, 1e-12);
}

TEST(SpiceDeck, ErrorsCarryLineNumbers) {
  const std::string deck = "title\nR1 a\n.end\n";
  try {
    parse_spice_deck(deck);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace xtv
