// Integration tests: end-to-end flows across modules — characterization
// persistence, the on-demand transistor-level driver (the paper's future-
// work extension), verifier timing recalculation, deck export of extracted
// clusters, and cross-engine parity sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "cells/transistor_driver.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "netlist/spice_deck.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
  }
  static void TearDownTestSuite() {
    delete chars_;
    delete lib_;
    delete extractor_;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
};

CellLibrary* IntegrationFixture::lib_ = nullptr;
CharacterizedLibrary* IntegrationFixture::chars_ = nullptr;
Extractor* IntegrationFixture::extractor_ = nullptr;

TEST_F(IntegrationFixture, CellModelCacheRoundTrips) {
  const std::string path = "/tmp/xtv_test_cache.txt";
  const CellModel& original = chars_->model("INV_X2");
  EXPECT_GE(chars_->save(path), 1u);

  CharacterizedLibrary fresh(*lib_);
  EXPECT_EQ(fresh.load(path), 1u);
  EXPECT_TRUE(fresh.has_model("INV_X2"));
  const CellModel& loaded = fresh.model("INV_X2");

  EXPECT_DOUBLE_EQ(loaded.input_cap, original.input_cap);
  EXPECT_DOUBLE_EQ(loaded.drive_resistance_rise, original.drive_resistance_rise);
  EXPECT_LT(loaded.iv_surface.lookup(1.5, 1.5) -
                original.iv_surface.lookup(1.5, 1.5),
            1e-18);
  EXPECT_DOUBLE_EQ(loaded.rise.delay.lookup(0.2e-9, 40e-15),
                   original.rise.delay.lookup(0.2e-9, 40e-15));
  const CellModel::Warp wo = original.warp(true, 0.2e-9, 40e-15);
  const CellModel::Warp wl = loaded.warp(true, 0.2e-9, 40e-15);
  EXPECT_DOUBLE_EQ(wo.shift, wl.shift);
  EXPECT_DOUBLE_EQ(wo.stretch, wl.stretch);
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, LoadIgnoresStaleCache) {
  const std::string path = "/tmp/xtv_stale_cache.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("xtv-cellmodels-v1 1\ncell BOGUS\n", f);
    std::fclose(f);
  }
  CharacterizedLibrary fresh(*lib_);
  EXPECT_EQ(fresh.load(path), 0u);
  EXPECT_EQ(fresh.load("/nonexistent/path"), 0u);
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, LoadRejectsCorruptCurrentCacheNamingTheLine) {
  // A file that *claims* to be a current cache but is damaged must throw
  // (pointing at the bad line), never feed garbage models into analysis.
  const std::string path = "/tmp/xtv_corrupt_cache.txt";
  auto write = [&](const char* text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(text, f);
    std::fclose(f);
  };
  auto expect_rejected = [&](const char* text, const char* needle) {
    write(text);
    CharacterizedLibrary fresh(*lib_);
    try {
      fresh.load(path);
      FAIL() << "expected NumericalError for: " << text;
    } catch (const NumericalError& e) {
      EXPECT_EQ(e.code(), StatusCode::kInvalidInput);
      EXPECT_NE(std::string(e.what()).find(path + ":"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
    // The failed load must leave the cache empty — no partial ingestion.
    EXPECT_FALSE(fresh.has_model("INV_X2"));
  };

  // Truncated mid-record.
  expect_rejected("xtv-cellmodels-v3 1\ncell INV_X2\n1e-15 2e-15\n",
                  "truncated");
  // Malformed numeric field.
  expect_rejected("xtv-cellmodels-v3 1\ncell INV_X2\n1e-15 2e-15 abc 100\n",
                  "malformed");
  // Non-finite table data is data corruption, not a model.
  expect_rejected(
      "xtv-cellmodels-v3 1\ncell INV_X2\n1e-15 2e-15 100 100\n"
      "table rise_delay 2 2\n1e-10 2e-10\n1e-15 2e-15\n1 2 nan 4\n",
      "non-finite");
  // A wrong record header at the top level.
  expect_rejected("xtv-cellmodels-v3 1\nnotacell INV_X2\n", "expected cell");
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, TransistorDcDriverMatchesDirectDcSolve) {
  const CellMaster& master = lib_->by_name("INV_X2");
  TransistorDcDriver driver(master, kTech, SourceWave::dc(0.0), 0.02);
  // Input low -> PMOS pulls up: positive current into a grounded output.
  EXPECT_GT(driver.current(0.0, 0.0), 1e-5);
  // Near the held rail the current vanishes and conductance is restoring.
  EXPECT_NEAR(driver.current(kTech.vdd, 0.0), 0.0, 5e-5);
  EXPECT_LT(driver.conductance(kTech.vdd - 0.1, 0.0), 0.0);
  EXPECT_GT(driver.solves(), 0u);
}

TEST_F(IntegrationFixture, TransistorDriverTightensTableModel) {
  // The future-work extension: on a cluster where we can compare, the
  // on-demand transistor driver must agree with transistor-level SPICE at
  // least as well as the pre-characterized table (for the quiet victim
  // holder role, where quasi-static is exact).
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  VictimSpec victim;
  victim.route = {600 * units::um, 0.0};
  victim.driver_cell = "INV_X2";
  victim.held_high = true;
  victim.receiver_cap = 10e-15;
  AggressorSpec agg;
  agg.route = {600 * units::um, 0.0};
  agg.driver_cell = "INV_X8";
  agg.rising = false;
  agg.input_slew = 0.1e-9;
  agg.receiver_cap = 10e-15;
  agg.run = {0, 0, 500 * units::um, 0.0, 0.0, 0.0};

  GlitchAnalysisOptions opt;
  opt.align_aggressors = false;
  opt.driver_model = DriverModelKind::kTransistor;
  const GlitchResult golden = analyzer.analyze_spice(victim, {agg}, opt);

  // Manually assemble the MOR run with the on-demand transistor drivers.
  RcNetwork net = extractor_->extract_cluster(
      {victim.route, agg.route}, {{0, 1, agg.run.overlap, 0.0, 0.0, 0.0}});
  net.add_capacitor(net.port_node(1), RcNetwork::kGround, victim.receiver_cap);
  net.add_capacitor(net.port_node(3), RcNetwork::kGround, agg.receiver_cap);
  // The golden circuit carries the driver cells' intrinsic output caps;
  // the memoryless transistor-DC driver needs them added to the network.
  net.add_capacitor(net.port_node(0), RcNetwork::kGround,
                    lib_->by_name("INV_X2").output_cap());
  net.add_capacitor(net.port_node(2), RcNetwork::kGround,
                    lib_->by_name("INV_X8").output_cap());
  for (std::size_t p = 0; p < net.port_count(); ++p)
    net.stamp_port_conductance(p, 1e-9);
  ReducedSimulator sim(sympvl_reduce(net));
  sim.set_termination(0, std::make_shared<TransistorDcDriver>(
                             lib_->by_name("INV_X2"), kTech, SourceWave::dc(0.0)));
  sim.set_termination(2, std::make_shared<TransistorDcDriver>(
                             lib_->by_name("INV_X8"), kTech,
                             SourceWave::ramp(0.0, kTech.vdd, 0.5e-9, 0.1e-9)));
  ReducedSimOptions ropt;
  ropt.tstop = 3e-9;
  ropt.dt = 2e-12;
  const ReducedSimResult res = sim.run(ropt);
  const double peak = res.port_voltages[1].peak_deviation();
  ASSERT_GT(std::fabs(golden.peak), 0.1);
  EXPECT_NEAR(peak / golden.peak, 1.0, 0.06);
}

TEST_F(IntegrationFixture, VerifierTimingRecalculation) {
  DspChipOptions chip_opt;
  chip_opt.net_count = 150;
  chip_opt.tracks = 10;
  const ChipDesign design = generate_dsp_chip(*lib_, chip_opt);

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options;
  options.max_victims = 4;
  options.analyze_delay_change = true;
  options.glitch.align_aggressors = false;
  options.glitch.tstop = 3e-9;
  const VerificationReport report = verifier.verify(design, options);
  ASSERT_GE(report.findings.size(), 1u);
  std::size_t with_delays = 0;
  for (const auto& f : report.findings) {
    if (f.delay_decoupled <= 0.0) continue;
    ++with_delays;
    // Worst-case coupling can only slow the victim down (1 ps integration
    // tolerance for the short-net cases where both delays are ~10 ps).
    EXPECT_GE(f.delay_coupled, f.delay_decoupled - 1e-12) << "net " << f.net;
  }
  EXPECT_GE(with_delays, 1u);
}

TEST_F(IntegrationFixture, ExtractedClusterSurvivesDeckRoundTrip) {
  RcNetwork net = extractor_->extract_parallel3(300 * units::um);
  for (std::size_t p = 0; p < net.port_count(); ++p)
    net.stamp_port_conductance(p, 1e-3);
  Circuit ckt;
  std::vector<int> pins;
  for (std::size_t p = 0; p < net.port_count(); ++p)
    pins.push_back(ckt.add_node("p" + std::to_string(p)));
  net.export_to(ckt, pins);

  const std::string deck = write_spice_deck(ckt, "cluster");
  const Circuit back = parse_spice_deck(deck);
  EXPECT_EQ(back.resistors().size(), ckt.resistors().size());
  EXPECT_EQ(back.capacitors().size(), ckt.capacitors().size());
  double r_orig = 0.0, r_back = 0.0;
  for (const auto& r : ckt.resistors()) r_orig += r.ohms;
  for (const auto& r : back.resistors()) r_back += r.ohms;
  EXPECT_NEAR(r_back / r_orig, 1.0, 1e-9);
}

// Cross-engine parity sweep: MOR-with-table-model vs transistor SPICE for
// a matrix of victim cells and coupled lengths (a compressed Table-4).
class EngineParity
    : public IntegrationFixture,
      public ::testing::WithParamInterface<std::tuple<const char*, double>> {};

TEST_P(EngineParity, TableModelTracksTransistorReference) {
  const auto [cell, len_um] = GetParam();
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  VictimSpec victim;
  victim.route = {len_um * units::um, 0.0};
  victim.driver_cell = cell;
  victim.held_high = false;
  victim.receiver_cap = 10e-15;
  AggressorSpec agg;
  agg.route = {len_um * units::um, 0.0};
  agg.driver_cell = "INV_X8";
  agg.rising = true;
  agg.input_slew = 0.1e-9;
  agg.receiver_cap = 10e-15;
  agg.run = {0, 0, 0.9 * len_um * units::um, 0.0, 0.0, 0.0};

  GlitchAnalysisOptions opt;
  opt.align_aggressors = false;
  opt.driver_model = DriverModelKind::kTransistor;
  const GlitchResult golden = analyzer.analyze_spice(victim, {agg}, opt);
  opt.driver_model = DriverModelKind::kNonlinearTable;
  const GlitchResult table = analyzer.analyze(victim, {agg}, opt);

  if (std::fabs(golden.peak) < 0.05) GTEST_SKIP() << "no measurable glitch";
  EXPECT_NEAR(table.peak / golden.peak, 1.0, 0.12)
      << cell << " @ " << len_um << "um";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineParity,
    ::testing::Combine(::testing::Values("INV_X1", "INV_X8", "NAND2_X2",
                                         "NOR2_X4", "BUF_X4", "DFF_X2"),
                       ::testing::Values(200.0, 1000.0, 3000.0)));

TEST_F(IntegrationFixture, FullFlowEndToEnd) {
  // The quickstart flow with assertions: generate -> prune -> analyze ->
  // classify, entirely through public APIs.
  DspChipOptions chip_opt;
  chip_opt.net_count = 120;
  chip_opt.tracks = 8;
  const ChipDesign design = generate_dsp_chip(*lib_, chip_opt);
  const auto summaries = chip_net_summaries(design, *extractor_, *chars_);
  const PruneResult pruned = prune_couplings(summaries, {});
  EXPECT_GT(pruned.stats.couplings_before, pruned.stats.couplings_after);

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options;
  options.max_victims = 6;
  options.glitch.align_aggressors = true;
  const VerificationReport report = verifier.verify(design, options);
  EXPECT_GT(report.victims_analyzed, 0u);
  EXPECT_LE(report.violations, report.victims_analyzed);
  // Every analyzed victim carries a sane reduced order and nonneg time.
  for (const auto& f : report.findings) {
    EXPECT_GT(f.reduced_order, 0u);
    EXPECT_GE(f.cpu_seconds, 0.0);
    EXPECT_LE(f.peak_fraction, 1.5);
  }
}

}  // namespace
}  // namespace xtv
