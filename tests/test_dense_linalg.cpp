// Unit + property tests for dense linear algebra: matrix ops, LU,
// Cholesky (SyMPVL's symmetrization step), Jacobi eigendecomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/dense_lu.h"
#include "linalg/dense_matrix.h"
#include "linalg/sym_eigen.h"
#include "util/prng.h"

namespace xtv {
namespace {

DenseMatrix random_matrix(std::size_t n, Prng& rng) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

// Random SPD matrix: A^T A + n*I.
DenseMatrix random_spd(std::size_t n, Prng& rng) {
  DenseMatrix a = random_matrix(n, rng);
  DenseMatrix s = matmul_at_b(a, a);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

TEST(DenseMatrix, IdentityAndIndexing) {
  DenseMatrix i3 = DenseMatrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  i3(2, 1) = 5.0;
  EXPECT_DOUBLE_EQ(i3(2, 1), 5.0);
}

TEST(DenseMatrix, TransposeRoundTrip) {
  Prng rng(1);
  DenseMatrix a(3, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) a(i, j) = rng.uniform();
  EXPECT_DOUBLE_EQ(a.transposed().transposed().max_abs_diff(a), 0.0);
}

TEST(DenseMatrix, MatvecMatchesManual) {
  DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  Vector y = matvec(a, {1.0, -1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(DenseMatrix, MatvecTransposedMatchesExplicitTranspose) {
  Prng rng(2);
  DenseMatrix a(4, 6);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) a(i, j) = rng.uniform(-1, 1);
  Vector x(4);
  for (auto& v : x) v = rng.uniform(-1, 1);
  EXPECT_LT(max_abs_diff(matvec_transposed(a, x), matvec(a.transposed(), x)),
            1e-14);
}

TEST(DenseMatrix, MatmulAssociatesWithIdentity) {
  Prng rng(3);
  DenseMatrix a = random_matrix(5, rng);
  DenseMatrix i5 = DenseMatrix::identity(5);
  EXPECT_LT(matmul(a, i5).max_abs_diff(a), 1e-15);
  EXPECT_LT(matmul(i5, a).max_abs_diff(a), 1e-15);
}

TEST(DenseMatrix, MatmulAtBMatchesExplicit) {
  Prng rng(4);
  DenseMatrix a(6, 3);
  DenseMatrix b(6, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  EXPECT_LT(matmul_at_b(a, b).max_abs_diff(matmul(a.transposed(), b)), 1e-14);
}

TEST(DenseLu, SolvesRandomSystems) {
  Prng rng(5);
  for (std::size_t n : {1u, 2u, 5u, 20u, 50u}) {
    DenseMatrix a = random_matrix(n, rng);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // keep well-posed
    Vector xref(n);
    for (auto& v : xref) v = rng.uniform(-2, 2);
    const Vector b = matvec(a, xref);
    DenseLu lu(a);
    EXPECT_LT(max_abs_diff(lu.solve(b), xref), 1e-9) << "n=" << n;
  }
}

TEST(DenseLu, PivotsOnZeroDiagonal) {
  // [[0, 1], [1, 0]] requires pivoting.
  DenseMatrix a = DenseMatrix::from_rows({{0, 1}, {1, 0}});
  DenseLu lu(a);
  Vector x = lu.solve(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(DenseLu, ThrowsOnSingular) {
  DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_THROW(DenseLu{a}, std::runtime_error);
}

TEST(DenseLu, DeterminantOfKnownMatrix) {
  DenseMatrix a = DenseMatrix::from_rows({{2, 0}, {0, 3}});
  EXPECT_NEAR(DenseLu(a).determinant(), 6.0, 1e-12);
  DenseMatrix b = DenseMatrix::from_rows({{0, 1}, {1, 0}});
  EXPECT_NEAR(DenseLu(b).determinant(), -1.0, 1e-12);
}

TEST(DenseLu, MatrixRhsSolve) {
  Prng rng(6);
  DenseMatrix a = random_spd(8, rng);
  DenseMatrix b(8, 3);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 3; ++j) b(i, j) = rng.uniform(-1, 1);
  DenseLu lu(a);
  DenseMatrix x = lu.solve(b);
  EXPECT_LT(matmul(a, x).max_abs_diff(b), 1e-9);
}

TEST(Cholesky, ReconstructsGFromFactor) {
  Prng rng(7);
  for (std::size_t n : {1u, 3u, 10u, 40u}) {
    DenseMatrix g = random_spd(n, rng);
    Cholesky chol(g);
    const DenseMatrix& f = chol.factor();
    // G == F^T F.
    EXPECT_LT(matmul_at_b(f, f).max_abs_diff(g), 1e-9 * (1.0 + static_cast<double>(n)))
        << "n=" << n;
    // F upper triangular.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(f(i, j), 0.0);
  }
}

TEST(Cholesky, TriangularSolvesInvertApply) {
  Prng rng(8);
  DenseMatrix g = random_spd(12, rng);
  Cholesky chol(g);
  Vector v(12);
  for (auto& x : v) x = rng.uniform(-1, 1);
  // solve_f(apply_f(v)) == v.
  EXPECT_LT(max_abs_diff(chol.solve_f(chol.apply_f(v)), v), 1e-10);
  // G * solve(b) == b.
  const Vector b = matvec(g, v);
  EXPECT_LT(max_abs_diff(chol.solve(b), v), 1e-9);
}

TEST(Cholesky, SolveFtIsTransposeInverse) {
  Prng rng(9);
  DenseMatrix g = random_spd(6, rng);
  Cholesky chol(g);
  Vector b(6);
  for (auto& x : b) x = rng.uniform(-1, 1);
  // F^T * solve_ft(b) == b.
  const Vector x = chol.solve_ft(b);
  const DenseMatrix ft = chol.factor().transposed();
  EXPECT_LT(max_abs_diff(matvec(ft, x), b), 1e-10);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  DenseMatrix g = DenseMatrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{g}, std::runtime_error);
}

TEST(SymEigen, DiagonalMatrix) {
  DenseMatrix a = DenseMatrix::from_rows({{3, 0}, {0, 1}});
  SymEigen e = sym_eigen(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
}

TEST(SymEigen, KnownEigenpairs) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  DenseMatrix a = DenseMatrix::from_rows({{2, 1}, {1, 2}});
  SymEigen e = sym_eigen(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
}

// Property: Q A Q^T = diag(d) and Q Q^T = I for random symmetric matrices.
class SymEigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymEigenProperty, DecompositionIsExact) {
  const std::size_t n = GetParam();
  Prng rng(100 + n);
  DenseMatrix a = random_matrix(n, rng);
  // Symmetrize.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) a(j, i) = a(i, j);

  SymEigen e = sym_eigen(a);
  // Orthogonality: Q Q^T = I.
  DenseMatrix qqt = matmul(e.q, e.q.transposed());
  EXPECT_LT(qqt.max_abs_diff(DenseMatrix::identity(n)), 1e-10) << "n=" << n;
  // Q A Q^T = diag(d).
  DenseMatrix d = matmul(matmul(e.q, a), e.q.transposed());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(d(i, i), e.eigenvalues[i], 1e-9);
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        EXPECT_NEAR(d(i, j), 0.0, 1e-9);
      }
    }
  }
  // Eigenvalues ascending.
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_LE(e.eigenvalues[i - 1], e.eigenvalues[i] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigenProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(SymEigen, TraceAndDeterminantPreserved) {
  Prng rng(10);
  DenseMatrix a = random_spd(9, rng);
  SymEigen e = sym_eigen(a);
  double trace_a = 0.0;
  for (std::size_t i = 0; i < 9; ++i) trace_a += a(i, i);
  double trace_d = 0.0;
  double det_d = 1.0;
  for (double lam : e.eigenvalues) {
    trace_d += lam;
    det_d *= lam;
  }
  EXPECT_NEAR(trace_a, trace_d, 1e-9 * std::fabs(trace_a));
  EXPECT_NEAR(DenseLu(a).determinant(), det_d, 1e-6 * std::fabs(det_d));
}

TEST(SymEigen, SpdHasPositiveSpectrum) {
  Prng rng(11);
  DenseMatrix a = random_spd(15, rng);
  SymEigen e = sym_eigen(a);
  for (double lam : e.eigenvalues) EXPECT_GT(lam, 0.0);
}

}  // namespace
}  // namespace xtv
