// Shared negative-case generators for the xwf1 wire format.
//
// test_wire.cpp runs these mutations through a bare WireDecoder;
// test_serve.cpp replays the same sweep over a live TCP connection to the
// daemon, asserting that a mutation a local decoder classifies as corrupt
// makes the daemon latch-and-close that one connection without disturbing
// the rest of the service. Keeping the generators here guarantees both
// suites exercise the identical byte streams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/wire.h"

namespace xtv {
namespace wiretest {

constexpr std::size_t kHeaderBytes = 4 + 1 + 4;  // magic + type + length
constexpr std::size_t kChecksumBytes = 8;

/// Patches the u32 LE declared-length field (bytes 5..8).
inline std::string with_declared_length(std::string frame,
                                        std::uint32_t len) {
  for (int i = 0; i < 4; ++i)
    frame[5 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  return frame;
}

/// Patches the type byte (byte 4), leaving the checksum stale.
inline std::string with_type_byte(std::string frame, std::uint8_t type) {
  frame[4] = static_cast<char>(type);
  return frame;
}

inline std::string with_bad_magic(std::string frame) {
  frame[0] = 'y';
  return frame;
}

inline std::string with_bit_flip(std::string frame, std::size_t byte,
                                 int bit) {
  frame[byte] = static_cast<char>(frame[byte] ^ (1 << bit));
  return frame;
}

/// The type bytes just outside the valid kHello..kUnitDone range, plus
/// the extremes.
inline std::vector<std::uint8_t> out_of_range_type_bytes() {
  return {std::uint8_t{0},
          static_cast<std::uint8_t>(
              static_cast<std::uint8_t>(WireType::kUnitDone) + 1),
          std::uint8_t{0xff}};
}

struct Mutation {
  std::string name;
  std::string bytes;
};

/// The canonical negative sweep over one encoded frame: oversized
/// declared length, every out-of-range type byte, bad magic, truncation
/// at a few interior boundaries, and a single-bit flip in each structural
/// region (magic, type, length, payload, checksum). Some entries are
/// corrupt, some merely incomplete — classify() tells them apart.
inline std::vector<Mutation> negative_sweep(const std::string& frame) {
  std::vector<Mutation> out;
  out.push_back({"oversize-length",
                 with_declared_length(frame, (1u << 20) + 1)});
  for (std::uint8_t t : out_of_range_type_bytes())
    out.push_back({"type-byte-" + std::to_string(t),
                   with_type_byte(frame, t)});
  out.push_back({"bad-magic", with_bad_magic(frame)});
  for (std::size_t cut : {std::size_t{2}, kHeaderBytes, frame.size() - 1})
    out.push_back({"truncate-at-" + std::to_string(cut),
                   frame.substr(0, cut)});
  const std::size_t flips[] = {0, 4, 5, kHeaderBytes, frame.size() - 1};
  for (std::size_t byte : flips)
    out.push_back({"bit-flip-byte-" + std::to_string(byte),
                   with_bit_flip(frame, byte, 3)});
  return out;
}

enum class StreamVerdict { kYields, kIncomplete, kCorrupt };

/// What a fresh decoder makes of `bytes`: a verified frame, a quiet wait
/// for more input, or the latched corruption flag.
inline StreamVerdict classify(const std::string& bytes) {
  WireDecoder d;
  d.feed(bytes.data(), bytes.size());
  WireFrame f;
  if (d.next(&f)) return StreamVerdict::kYields;
  return d.corrupt() ? StreamVerdict::kCorrupt : StreamVerdict::kIncomplete;
}

}  // namespace wiretest
}  // namespace xtv
