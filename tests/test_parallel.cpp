// Execution-model tests: the worker pool, the per-cluster deadline, and
// the crash-safe result journal. The contract under test is DESIGN.md §8:
// a parallel run is bit-identical to the serial one, a budget-expired
// cluster degrades to the conservative bound without stalling the pool,
// and a killed-and-resumed run reproduces the uninterrupted report while
// re-analyzing only the victims the journal lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "chipgen/dsp_chip.h"
#include "core/journal.h"
#include "core/verifier.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

class ParallelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
    DspChipOptions chip_opt;
    chip_opt.net_count = 100;
    chip_opt.tracks = 8;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete chars_;
    delete lib_;
    delete extractor_;
    design_ = nullptr;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }

  static VerifierOptions fast_options() {
    VerifierOptions options;
    options.glitch.align_aggressors = false;
    options.glitch.tstop = 3e-9;
    return options;
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }

  /// Full structural equality of two reports: every finding field (CPU
  /// time only when `compare_cpu` — fresh re-analysis re-times it) plus
  /// every accounting counter.
  static void expect_reports_equal(const VerificationReport& a,
                                   const VerificationReport& b,
                                   bool compare_cpu) {
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      SCOPED_TRACE("finding " + std::to_string(i));
      const VictimFinding& x = a.findings[i];
      const VictimFinding& y = b.findings[i];
      EXPECT_EQ(x.net, y.net);
      EXPECT_EQ(x.peak, y.peak);  // bitwise: no tolerance
      EXPECT_EQ(x.peak_fraction, y.peak_fraction);
      EXPECT_EQ(x.violation, y.violation);
      EXPECT_EQ(x.status, y.status);
      EXPECT_EQ(x.retries, y.retries);
      EXPECT_EQ(x.error_code, y.error_code);
      EXPECT_EQ(x.error, y.error);
      EXPECT_EQ(x.aggressors_analyzed, y.aggressors_analyzed);
      EXPECT_EQ(x.aggressors_dropped_by_correlation,
                y.aggressors_dropped_by_correlation);
      EXPECT_EQ(x.aggressors_dropped_by_window, y.aggressors_dropped_by_window);
      EXPECT_EQ(x.reduced_order, y.reduced_order);
      EXPECT_EQ(x.delay_decoupled, y.delay_decoupled);
      EXPECT_EQ(x.delay_coupled, y.delay_coupled);
      EXPECT_EQ(x.driver_rms_current, y.driver_rms_current);
      EXPECT_EQ(x.em_violation, y.em_violation);
      if (compare_cpu) EXPECT_EQ(x.cpu_seconds, y.cpu_seconds);
    }
    EXPECT_EQ(a.victims_eligible, b.victims_eligible);
    EXPECT_EQ(a.victims_analyzed, b.victims_analyzed);
    EXPECT_EQ(a.victims_screened_out, b.victims_screened_out);
    EXPECT_EQ(a.victims_retried, b.victims_retried);
    EXPECT_EQ(a.victims_fallback, b.victims_fallback);
    EXPECT_EQ(a.victims_failed, b.victims_failed);
    EXPECT_EQ(a.victims_deadline_bound, b.victims_deadline_bound);
    EXPECT_EQ(a.violations, b.violations);
  }

  static void expect_accounting_invariant(const VerificationReport& r) {
    EXPECT_EQ(r.victims_eligible, r.victims_analyzed + r.victims_screened_out +
                                      r.victims_fallback + r.victims_failed);
    EXPECT_LE(r.victims_deadline_bound, r.victims_fallback);
    std::size_t retried = 0;
    for (const auto& f : r.findings)
      if (f.retries > 0) ++retried;
    EXPECT_EQ(r.victims_retried, retried);
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
};

CellLibrary* ParallelFixture::lib_ = nullptr;
CharacterizedLibrary* ParallelFixture::chars_ = nullptr;
Extractor* ParallelFixture::extractor_ = nullptr;
ChipDesign* ParallelFixture::design_ = nullptr;

// ---------------------------------------------------------------------------
// The pool itself.

TEST_F(ParallelFixture, ThreadPoolRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  std::vector<std::atomic<int>> counts(257);
  pool.parallel_for(counts.size(), [&](std::size_t i) {
    counts[i].fetch_add(1);
    sum.fetch_add(i);
  });
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  EXPECT_EQ(sum.load(), counts.size() * (counts.size() - 1) / 2);
}

TEST_F(ParallelFixture, ThreadPoolPropagatesTaskExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](std::size_t i) {
                                   if (i == 7)
                                     throw std::runtime_error("task 7 died");
                                 }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

// ---------------------------------------------------------------------------
// Journal encode/decode.

TEST_F(ParallelFixture, JournalRecordRoundTripsBitExactly) {
  JournalRecord rec;
  rec.screened = false;
  rec.finding.net = 42;
  rec.finding.peak = -1.2345678901234567e-3;
  rec.finding.peak_fraction = 0.49999999999999994;
  rec.finding.violation = true;
  rec.finding.status = FindingStatus::kDeadlineBound;
  rec.finding.retries = 3;
  rec.finding.error_code = StatusCode::kDeadlineExceeded;
  rec.finding.error = "ReducedSimulator: 100% budget -gone\nnext line";
  rec.finding.aggressors_analyzed = 5;
  rec.finding.aggressors_dropped_by_correlation = 2;
  rec.finding.aggressors_dropped_by_window = 7;
  rec.finding.cpu_seconds = 1.5e-3;
  rec.finding.reduced_order = 12;
  rec.finding.delay_decoupled = 3.1e-10;
  rec.finding.delay_coupled = 4.7e-10;
  rec.finding.driver_rms_current = 8.25e-4;
  rec.finding.em_violation = true;

  const std::string payload = journal_encode(rec);
  EXPECT_EQ(payload.find('\n'), std::string::npos);
  JournalRecord back;
  ASSERT_TRUE(journal_decode(payload, back));
  EXPECT_EQ(back.screened, rec.screened);
  EXPECT_EQ(back.finding.net, rec.finding.net);
  EXPECT_EQ(back.finding.peak, rec.finding.peak);
  EXPECT_EQ(back.finding.peak_fraction, rec.finding.peak_fraction);
  EXPECT_EQ(back.finding.violation, rec.finding.violation);
  EXPECT_EQ(back.finding.status, rec.finding.status);
  EXPECT_EQ(back.finding.retries, rec.finding.retries);
  EXPECT_EQ(back.finding.error_code, rec.finding.error_code);
  EXPECT_EQ(back.finding.error, rec.finding.error);
  EXPECT_EQ(back.finding.aggressors_analyzed, rec.finding.aggressors_analyzed);
  EXPECT_EQ(back.finding.cpu_seconds, rec.finding.cpu_seconds);
  EXPECT_EQ(back.finding.reduced_order, rec.finding.reduced_order);
  EXPECT_EQ(back.finding.delay_decoupled, rec.finding.delay_decoupled);
  EXPECT_EQ(back.finding.delay_coupled, rec.finding.delay_coupled);
  EXPECT_EQ(back.finding.driver_rms_current, rec.finding.driver_rms_current);
  EXPECT_EQ(back.finding.em_violation, rec.finding.em_violation);

  // Screened records round-trip too (empty error encodes as "-").
  JournalRecord screened;
  screened.screened = true;
  screened.finding.net = 7;
  screened.finding.cpu_seconds = 2.5e-5;
  JournalRecord screened_back;
  ASSERT_TRUE(journal_decode(journal_encode(screened), screened_back));
  EXPECT_TRUE(screened_back.screened);
  EXPECT_EQ(screened_back.finding.net, 7u);
  EXPECT_EQ(screened_back.finding.cpu_seconds, 2.5e-5);
  EXPECT_TRUE(screened_back.finding.error.empty());
}

TEST_F(ParallelFixture, JournalDecodeRejectsMalformedPayloads) {
  JournalRecord rec;
  rec.finding.net = 3;
  const std::string good = journal_encode(rec);
  JournalRecord out;
  EXPECT_FALSE(journal_decode("", out));
  EXPECT_FALSE(journal_decode(good + " extra-field", out));
  EXPECT_FALSE(journal_decode(good.substr(0, good.size() / 2), out));
  std::string bad_status = good;
  bad_status[2] = 'x';  // corrupt a field in place
  EXPECT_FALSE(journal_decode(bad_status, out) &&
               journal_encode(out) == bad_status);
}

TEST_F(ParallelFixture, JournalLoadStopsAtTornTail) {
  const std::string path = temp_path("xtv_torn.journal");
  {
    ResultJournal journal(path, /*resume=*/false);
    for (std::size_t n = 0; n < 3; ++n) {
      JournalRecord rec;
      rec.finding.net = n;
      rec.finding.peak = 0.1 * static_cast<double>(n + 1);
      journal.append(rec);
    }
  }
  auto intact = ResultJournal::load(path);
  ASSERT_EQ(intact.records.size(), 3u);
  EXPECT_FALSE(intact.tail_discarded);

  // A crash mid-append leaves a torn, checksum-less final line.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "xtvj2 0 partial-record-cut-by-the-cra";
  }
  auto torn = ResultJournal::load(path);
  EXPECT_EQ(torn.records.size(), 3u);
  EXPECT_TRUE(torn.tail_discarded);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(torn.records[n].finding.net, n);
    EXPECT_EQ(torn.records[n].finding.peak, 0.1 * static_cast<double>(n + 1));
  }

  // Re-opening with resume=true truncates the torn tail, and appends land
  // after the intact prefix.
  {
    ResultJournal journal(path, /*resume=*/true);
    JournalRecord rec;
    rec.finding.net = 99;
    journal.append(rec);
  }
  auto resumed = ResultJournal::load(path);
  ASSERT_EQ(resumed.records.size(), 4u);
  EXPECT_FALSE(resumed.tail_discarded);
  EXPECT_EQ(resumed.records[3].finding.net, 99u);

  // A bit-flip inside an intact-looking line fails its checksum.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(intact.valid_bytes + 8);
    f.put('#');
  }
  auto corrupt = ResultJournal::load(path);
  EXPECT_EQ(corrupt.records.size(), 3u);
  EXPECT_TRUE(corrupt.tail_discarded);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Parallel == serial.

TEST_F(ParallelFixture, ParallelRunMatchesSerialBitExactly) {
  VerifierOptions options = fast_options();
  ChipVerifier verifier(*extractor_, *chars_);

  options.threads = 1;
  const VerificationReport serial = verifier.verify(*design_, options);
  ASSERT_GT(serial.findings.size(), 0u);
  expect_accounting_invariant(serial);

  options.threads = 4;
  const VerificationReport parallel = verifier.verify(*design_, options);
  expect_reports_equal(serial, parallel, /*compare_cpu=*/false);
  expect_accounting_invariant(parallel);
}

TEST_F(ParallelFixture, ParallelMatchesSerialUnderEveryHitInjection) {
  // period 1 fires on every hit, so each cluster fails identically no
  // matter which worker reaches it first — the reports must still match.
  VerifierOptions options = fast_options();
  ChipVerifier verifier(*extractor_, *chars_);
  auto& fi = FaultInjector::instance();

  fi.arm(FaultSite::kReducedNewton, /*period=*/1);
  options.threads = 1;
  const VerificationReport serial = verifier.verify(*design_, options);

  fi.arm(FaultSite::kReducedNewton, /*period=*/1);  // re-arm: fresh counters
  options.threads = 4;
  const VerificationReport parallel = verifier.verify(*design_, options);
  fi.reset();

  EXPECT_GT(serial.victims_fallback + serial.victims_failed, 0u);
  EXPECT_EQ(serial.victims_analyzed, 0u);  // every MOR attempt was killed
  expect_reports_equal(serial, parallel, /*compare_cpu=*/false);
  expect_accounting_invariant(serial);
  expect_accounting_invariant(parallel);
}

TEST_F(ParallelFixture, AccountingInvariantHoldsUnderParallelPeriodicInjection) {
  // Periodic (non-every-hit) injection is order-dependent under threads,
  // so only the invariants are asserted, not bit-equality.
  VerifierOptions options = fast_options();
  options.threads = 4;
  ChipVerifier verifier(*extractor_, *chars_);
  auto& fi = FaultInjector::instance();
  fi.arm(FaultSite::kReducedNewton, /*period=*/5);
  fi.arm(FaultSite::kLanczosSweep, /*period=*/7);
  const VerificationReport report = verifier.verify(*design_, options);
  fi.reset();

  EXPECT_GT(report.victims_retried, 0u);
  expect_accounting_invariant(report);
}

// ---------------------------------------------------------------------------
// Deadlines.

TEST_F(ParallelFixture, ExpiredClusterBudgetDegradesToDeadlineBound) {
  VerifierOptions options = fast_options();
  options.threads = 4;
  options.cluster_deadline_ms = 1e-6;  // expires before the first poll
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport report = verifier.verify(*design_, options);

  ASSERT_GT(report.findings.size(), 0u);
  expect_accounting_invariant(report);
  EXPECT_EQ(report.victims_analyzed, 0u);
  EXPECT_EQ(report.victims_failed, 0u);
  EXPECT_EQ(report.victims_deadline_bound, report.findings.size());
  for (const auto& f : report.findings) {
    EXPECT_EQ(f.status, FindingStatus::kDeadlineBound);
    EXPECT_EQ(f.error_code, StatusCode::kDeadlineExceeded);
    EXPECT_GT(f.retries, 0u);
    // The bound is conservative: a pass under it is a real pass.
    EXPECT_GE(f.peak_fraction, 0.0);
    EXPECT_LE(f.peak_fraction, 1.0);
  }
}

TEST_F(ParallelFixture, GenerousBudgetChangesNothing) {
  VerifierOptions options = fast_options();
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport plain = verifier.verify(*design_, options);
  options.cluster_deadline_ms = 600000.0;  // ten minutes per cluster
  const VerificationReport budgeted = verifier.verify(*design_, options);
  expect_reports_equal(plain, budgeted, /*compare_cpu=*/false);
}

// ---------------------------------------------------------------------------
// Journal + resume.

TEST_F(ParallelFixture, ResumeAfterSimulatedKillReproducesTheReport) {
  const std::string path = temp_path("xtv_resume.journal");
  VerifierOptions options = fast_options();
  options.journal_path = path;
  ChipVerifier verifier(*extractor_, *chars_);
  auto& fi = FaultInjector::instance();

  // Hit-count MOR reductions without ever firing: hits == victims that
  // actually entered analysis.
  fi.arm(FaultSite::kLanczosSweep, /*period=*/std::uint64_t{1} << 62);
  const VerificationReport full = verifier.verify(*design_, options);
  const std::uint64_t hits_full = fi.hits(FaultSite::kLanczosSweep);
  ASSERT_GT(hits_full, 0u);

  // Simulate a mid-run kill: keep roughly half the journal and tear the
  // next record in two.
  std::ostringstream kept;
  {
    std::ifstream in(path, std::ios::binary);
    std::string line;
    std::size_t total = 0;
    while (std::getline(in, line)) ++total;
    in.clear();
    in.seekg(0);
    for (std::size_t n = 0; n < total / 2 && std::getline(in, line); ++n)
      kept << line << '\n';
    if (std::getline(in, line)) kept << line.substr(0, line.size() / 2);
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << kept.str();
  }

  options.resume = true;
  fi.arm(FaultSite::kLanczosSweep, /*period=*/std::uint64_t{1} << 62);
  const VerificationReport resumed = verifier.verify(*design_, options);
  const std::uint64_t hits_resume = fi.hits(FaultSite::kLanczosSweep);
  fi.reset();

  // Only the un-journaled victims were re-analyzed...
  EXPECT_GT(hits_resume, 0u);
  EXPECT_LT(hits_resume, hits_full);
  // ...and the merged report is the uninterrupted one.
  expect_reports_equal(full, resumed, /*compare_cpu=*/false);
  expect_accounting_invariant(resumed);

  // Resuming from the now-complete journal re-analyzes nothing and even
  // restores per-victim CPU times bit-exactly (hexfloat round-trip) —
  // against the resumed run, whose journal re-timed the re-analyzed tail.
  fi.arm(FaultSite::kLanczosSweep, /*period=*/std::uint64_t{1} << 62);
  const VerificationReport replay = verifier.verify(*design_, options);
  EXPECT_EQ(fi.hits(FaultSite::kLanczosSweep), 0u);
  fi.reset();
  expect_reports_equal(resumed, replay, /*compare_cpu=*/true);
  EXPECT_EQ(resumed.total_cpu_seconds, replay.total_cpu_seconds);
  std::remove(path.c_str());
}

TEST_F(ParallelFixture, ResumeWithoutJournalPathIsRejected) {
  VerifierOptions options = fast_options();
  options.resume = true;
  ChipVerifier verifier(*extractor_, *chars_);
  EXPECT_THROW(verifier.verify(*design_, options), std::runtime_error);
}

}  // namespace
}  // namespace xtv
