// Edge-case and error-path coverage: logging levels, analyzer option
// validation, degenerate clusters, deck writer corner cases, and the
// behaviors a production tool must not mishandle at the boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "cells/transistor_driver.h"
#include "core/delay_analyzer.h"
#include "core/glitch_analyzer.h"
#include "mor/reduced_sim.h"
#include "netlist/spice_deck.h"
#include "util/log.h"
#include "util/units.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

TEST(Log, LevelGatingRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log(LogLevel::kDebug, "suppressed");
  logf(LogLevel::kInfo, "suppressed %d", 42);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(SpiceDeck, WriterHandlesMosfetsAndTerminationComment) {
  Circuit c;
  const int d = c.add_node("d");
  const int g = c.add_node("g");
  MosModel nm;
  const int model = c.add_model(nm);
  c.add_mosfet(d, g, Circuit::ground(), model, 2e-6, 0.25e-6);

  class Dummy final : public OnePortDevice {
    double current(double, double) const override { return 0.0; }
    double conductance(double, double) const override { return 0.0; }
  };
  c.add_termination(d, std::make_shared<Dummy>());
  const std::string deck = write_spice_deck(c);
  EXPECT_NE(deck.find(".model m0 NMOS"), std::string::npos);
  EXPECT_NE(deck.find("W=2e-06"), std::string::npos);
  EXPECT_NE(deck.find("termination(s) omitted"), std::string::npos);
}

TEST(SpiceDeck, ParserSkipsBlankAndCommentLines) {
  const std::string deck = "title\n\n* comment\n; another\nR1 a 0 1k\n.end\n";
  const Circuit c = parse_spice_deck(deck);
  EXPECT_EQ(c.resistors().size(), 1u);
}

class EdgeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 9;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
  }
  static void TearDownTestSuite() {
    delete chars_;
    delete lib_;
    delete extractor_;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }
  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
};

CellLibrary* EdgeFixture::lib_ = nullptr;
CharacterizedLibrary* EdgeFixture::chars_ = nullptr;
Extractor* EdgeFixture::extractor_ = nullptr;

TEST_F(EdgeFixture, GlitchWithNoAggressorsIsQuiet) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  VictimSpec victim;
  victim.route = {500 * units::um, 0.0};
  victim.driver_cell = "INV_X2";
  victim.held_high = true;
  victim.receiver_cap = 10e-15;
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  const GlitchResult res = analyzer.analyze(victim, {}, opt);
  EXPECT_NEAR(res.peak, 0.0, 5e-3);
  EXPECT_TRUE(res.switch_times.empty());
}

TEST_F(EdgeFixture, TinyOverlapStillAnalyzes) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  VictimSpec victim;
  victim.route = {100 * units::um, 0.0};
  victim.driver_cell = "INV_X1";
  victim.held_high = true;
  victim.receiver_cap = 5e-15;
  AggressorSpec agg;
  agg.route = {100 * units::um, 0.0};
  agg.driver_cell = "INV_X1";
  agg.rising = false;
  agg.receiver_cap = 5e-15;
  agg.run = {0, 0, 6 * units::um, 0.0, 0.0, 0.0};  // barely a run
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;
  const GlitchResult res = analyzer.analyze(victim, {agg}, opt);
  EXPECT_LT(std::fabs(res.peak), 0.2);  // a sliver of coupling: small glitch
}

TEST_F(EdgeFixture, RisingAndFallingGlitchesAreRoughlyMirrored) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;
  auto run = [&](bool held_high) {
    VictimSpec victim;
    victim.route = {800 * units::um, 0.0};
    victim.driver_cell = "INV_X2";
    victim.held_high = held_high;
    victim.receiver_cap = 10e-15;
    AggressorSpec agg;
    agg.route = {800 * units::um, 0.0};
    agg.driver_cell = "INV_X8";
    agg.rising = !held_high;  // push away from the held rail
    agg.input_slew = 0.1e-9;
    agg.receiver_cap = 10e-15;
    agg.run = {0, 0, 700 * units::um, 0.0, 0.0, 0.0};
    return analyzer.analyze(victim, {agg}, opt).peak;
  };
  const double falling = run(true);   // held high, pulled down: negative
  const double rising = run(false);   // held low, pulled up: positive
  EXPECT_LT(falling, 0.0);
  EXPECT_GT(rising, 0.0);
  // NMOS holds low more strongly than PMOS holds high (beta ratio), so the
  // rising glitch is the smaller of the two — but within a factor ~2.
  EXPECT_NEAR(std::fabs(rising) / std::fabs(falling), 1.0, 0.8);
}

TEST_F(EdgeFixture, TransistorDriverValidatesGridStep) {
  EXPECT_THROW(TransistorDcDriver(lib_->by_name("INV_X1"), kTech,
                                  SourceWave::dc(0.0), -1.0),
               std::runtime_error);
}

TEST_F(EdgeFixture, ReducedSimTstopValidation) {
  RcNetwork net = extractor_->extract_net({100 * units::um, 0.0});
  net.stamp_port_conductance(0, 1e-3);
  net.stamp_port_conductance(1, 1e-9);
  ReducedSimulator sim(sympvl_reduce(net));
  ReducedSimOptions opt;
  opt.tstop = 0.0;
  EXPECT_THROW(sim.run(opt), std::runtime_error);
}

TEST_F(EdgeFixture, SimulatorTstopValidation) {
  Circuit c;
  const int n = c.add_node();
  c.add_resistor(n, Circuit::ground(), 1e3);
  Simulator sim(c);
  TransientOptions opt;
  opt.tstop = -1.0;
  EXPECT_THROW(sim.transient(opt, {n}), std::runtime_error);
}

TEST_F(EdgeFixture, DelayAnalyzerReportsMissingTransition) {
  // A victim whose driver never switches within the window must fail
  // loudly, not return garbage: force it by an absurdly short tstop.
  DelayAnalyzer analyzer(*extractor_, *chars_);
  VictimSpec victim;
  victim.route = {2000 * units::um, 0.0};
  victim.driver_cell = "INV_X1";
  victim.receiver_cap = 10e-15;
  DelayAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kLinearResistor;
  opt.tstop = 0.3e-9;  // shorter than the switch time
  opt.victim_switch_time = 0.5e-9;
  EXPECT_THROW(analyzer.analyze(victim, true, {}, opt), std::runtime_error);
}

TEST_F(EdgeFixture, MorMaxOrderOneStillRuns) {
  RcNetwork net = extractor_->extract_net({300 * units::um, 0.0});
  net.stamp_port_conductance(0, 1e-3);
  net.stamp_port_conductance(1, 1e-9);
  SympvlOptions opt;
  opt.max_order = 1;
  const ReducedModel model = sympvl_reduce(net, true, opt);
  EXPECT_EQ(model.order(), 1u);
  EXPECT_TRUE(model.is_passive());
  // Moment 0 of a rank-1 projection still matches in the (1,1) entry sense
  // of the dominant input direction: just require finiteness here.
  EXPECT_TRUE(std::isfinite(model.moment(0)(0, 0)));
}


TEST_F(EdgeFixture, ElectromigrationCurrentsReported) {
  // A strong aggressor forces the victim holder to conduct: the EM audit
  // must report a nonzero RMS/peak current that grows with the coupling.
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kNonlinearTable;
  opt.align_aggressors = false;
  auto run = [&](double overlap_um) {
    VictimSpec victim;
    victim.route = {1000 * units::um, 0.0};
    victim.driver_cell = "INV_X2";
    victim.held_high = true;
    victim.receiver_cap = 10e-15;
    AggressorSpec agg;
    agg.route = {1000 * units::um, 0.0};
    agg.driver_cell = "BUF_X8";
    agg.rising = false;
    agg.input_slew = 0.1e-9;
    agg.receiver_cap = 10e-15;
    agg.run = {0, 0, overlap_um * units::um, 0.0, 0.0, 0.0};
    return analyzer.analyze(victim, {agg}, opt);
  };
  const GlitchResult small = run(100);
  const GlitchResult big = run(900);
  EXPECT_GT(small.victim_driver_peak_current, 0.0);
  EXPECT_GE(small.victim_driver_peak_current, small.victim_driver_rms_current);
  EXPECT_GT(big.victim_driver_rms_current, small.victim_driver_rms_current);
  EXPECT_LT(big.victim_driver_peak_current, 50e-3);  // physically sane
}

TEST_F(EdgeFixture, LinearModelReportsNoEmCurrents) {
  GlitchAnalyzer analyzer(*extractor_, *chars_);
  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kFixedResistor;
  opt.align_aggressors = false;
  VictimSpec victim;
  victim.route = {500 * units::um, 0.0};
  victim.driver_cell = "INV_X2";
  victim.held_high = true;
  victim.receiver_cap = 10e-15;
  AggressorSpec agg;
  agg.route = {500 * units::um, 0.0};
  agg.driver_cell = "BUF_X8";
  agg.rising = false;
  agg.receiver_cap = 10e-15;
  agg.run = {0, 0, 400 * units::um, 0.0, 0.0, 0.0};
  const GlitchResult res = analyzer.analyze(victim, {agg}, opt);
  EXPECT_DOUBLE_EQ(res.victim_driver_rms_current, 0.0);
}

}  // namespace
}  // namespace xtv
