// Batched reduced-model simulation (DESIGN.md §16): the lockstep batch
// engine must be bit-compatible with the scalar ReducedSimulator lane by
// lane, a diverging lane must never disturb its neighbors, and the
// verifier's batch scheduler must produce findings bit-identical to the
// scalar sweep at every width. Canonical (permutation/tolerance-invariant)
// cache keys ride along: a tolerant hit is reused only after its
// certificate re-passes against the requesting cluster's exact pencil.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "mor/batch_sim.h"
#include "mor/model_cache.h"
#include "mor/reduced_sim.h"
#include "mor/sympvl.h"
#include "netlist/rc_network.h"
#include "util/deadline.h"
#include "util/fault_injection.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

// ---------------------------------------------------------------------------
// Lockstep engine vs the scalar simulator.

/// Nonlinear clamp pulling toward v0 (stiffening cubic): exercises the
/// batched Newton/Woodbury path, not just the linear diagonal solve.
class CubicClamp final : public OnePortDevice {
 public:
  CubicClamp(double v0, double g1, double g3) : v0_(v0), g1_(g1), g3_(g3) {}
  double current(double v, double) const override {
    const double e = v0_ - v;
    return g1_ * e + g3_ * e * e * e;
  }
  double conductance(double v, double) const override {
    const double e = v0_ - v;
    return -(g1_ + 3.0 * g3_ * e * e);
  }

 private:
  double v0_, g1_, g3_;
};

/// Two coupled RC lines with driver/receiver ports (test_mor.cpp's
/// cluster shape); `r` varies electricals per lane.
RcNetwork make_coupled_pair(int stages, double r) {
  RcNetwork net;
  std::vector<int> a(static_cast<std::size_t>(stages) + 1);
  std::vector<int> v(static_cast<std::size_t>(stages) + 1);
  for (int i = 0; i <= stages; ++i) {
    a[static_cast<std::size_t>(i)] = net.add_node();
    v[static_cast<std::size_t>(i)] = net.add_node();
  }
  for (int i = 0; i < stages; ++i) {
    net.add_resistor(a[static_cast<std::size_t>(i)],
                     a[static_cast<std::size_t>(i) + 1], r);
    net.add_resistor(v[static_cast<std::size_t>(i)],
                     v[static_cast<std::size_t>(i) + 1], r);
  }
  for (int i = 1; i <= stages; ++i) {
    net.add_capacitor(a[static_cast<std::size_t>(i)], RcNetwork::kGround, 4e-15);
    net.add_capacitor(v[static_cast<std::size_t>(i)], RcNetwork::kGround, 4e-15);
    net.add_capacitor(a[static_cast<std::size_t>(i)],
                      v[static_cast<std::size_t>(i)], 6e-15, true);
  }
  net.add_port(a[0]);
  net.add_port(v[0]);
  net.add_port(a[static_cast<std::size_t>(stages)]);
  net.add_port(v[static_cast<std::size_t>(stages)]);
  net.stamp_port_conductance(0, 1e-2);
  net.stamp_port_conductance(1, 1e-3);
  net.stamp_port_conductance(2, 1e-9);
  net.stamp_port_conductance(3, 1e-9);
  return net;
}

/// A configured simulator plus its scalar reference options.
struct LaneSetup {
  std::unique_ptr<ReducedSimulator> sim;
  ReducedSimOptions options;
};

LaneSetup make_lane(int stages, double r, bool nonlinear) {
  RcNetwork net = make_coupled_pair(stages, r);
  const double g_agg = net.port_conductance(0);
  LaneSetup lane;
  lane.sim = std::make_unique<ReducedSimulator>(sympvl_reduce(net));
  lane.sim->set_input(0, SourceWave::pwl({{0.0, 0.0},
                                          {0.2e-9, 0.0},
                                          {0.35e-9, 3.0 * g_agg}}));
  if (nonlinear)
    lane.sim->set_termination(1, std::make_shared<CubicClamp>(0.0, 5e-4, 2e-3));
  lane.options.tstop = 2e-9;
  lane.options.dt = 1e-12;
  return lane;
}

void expect_waves_bitwise_equal(const ReducedSimResult& a,
                                const ReducedSimResult& b) {
  ASSERT_EQ(a.port_voltages.size(), b.port_voltages.size());
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.newton_iterations, b.newton_iterations);
  EXPECT_EQ(a.step_rejections, b.step_rejections);
  for (std::size_t p = 0; p < a.port_voltages.size(); ++p) {
    SCOPED_TRACE("port " + std::to_string(p));
    ASSERT_EQ(a.port_voltages[p].size(), b.port_voltages[p].size());
    EXPECT_EQ(a.port_voltages[p].times(), b.port_voltages[p].times());
    EXPECT_EQ(a.port_voltages[p].values(), b.port_voltages[p].values());
  }
}

TEST(BatchSim, LanesMatchScalarBitwise) {
  // Heterogeneous lanes (different pencils, linear and nonlinear
  // terminations) integrated in lockstep: every lane's waveforms, step
  // count, and Newton iteration count must equal its own scalar run
  // bit for bit — the engine replicates the arithmetic, not just the
  // answer.
  std::vector<LaneSetup> setups;
  setups.push_back(make_lane(6, 40.0, false));
  setups.push_back(make_lane(6, 80.0, true));
  setups.push_back(make_lane(5, 25.0, true));
  setups.push_back(make_lane(7, 60.0, false));

  std::vector<ReducedSimResult> scalar;
  for (auto& s : setups) scalar.push_back(s.sim->run(s.options));

  std::vector<BatchLane> lanes;
  for (std::size_t i = 0; i < setups.size(); ++i) {
    BatchLane lane;
    lane.sim = setups[i].sim.get();
    lane.options = setups[i].options;
    lane.victim_net = i;
    lanes.push_back(lane);
  }
  const std::vector<BatchLaneResult> batched = run_batch(lanes);
  ASSERT_EQ(batched.size(), setups.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    ASSERT_EQ(batched[i].error, nullptr);
    EXPECT_FALSE(batched[i].fell_back_scalar);
    expect_waves_bitwise_equal(batched[i].result, scalar[i]);
  }
}

TEST(BatchSim, ExpiredLaneFailsAloneNeighborsUnaffected) {
  // Lane 1 enters the batch with an already-exhausted budget: it must
  // carry the scalar path's deadline exception while lanes 0 and 2
  // complete bit-identically to their solo runs — one lane's divergence
  // is masked out, never propagated.
  std::vector<LaneSetup> setups;
  setups.push_back(make_lane(6, 40.0, true));
  setups.push_back(make_lane(6, 55.0, false));
  setups.push_back(make_lane(5, 30.0, true));
  std::vector<ReducedSimResult> scalar;
  scalar.push_back(setups[0].sim->run(setups[0].options));
  scalar.push_back(setups[2].sim->run(setups[2].options));

  const CancelToken expired{Deadline::after_seconds(0.0)};
  std::vector<BatchLane> lanes;
  for (std::size_t i = 0; i < setups.size(); ++i) {
    BatchLane lane;
    lane.sim = setups[i].sim.get();
    lane.options = setups[i].options;
    if (i == 1) lane.options.cancel = &expired;
    lane.victim_net = i;
    lanes.push_back(lane);
  }
  const std::vector<BatchLaneResult> batched = run_batch(lanes);
  ASSERT_EQ(batched.size(), 3u);
  ASSERT_NE(batched[1].error, nullptr);
  try {
    std::rethrow_exception(batched[1].error);
    FAIL() << "expected a deadline exception";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("budget exhausted"),
              std::string::npos)
        << e.what();
  }
  ASSERT_EQ(batched[0].error, nullptr);
  ASSERT_EQ(batched[2].error, nullptr);
  expect_waves_bitwise_equal(batched[0].result, scalar[0]);
  expect_waves_bitwise_equal(batched[2].result, scalar[1]);
}

TEST(BatchSim, PoisonedLanesFallBackToScalarEngine) {
  // The kBatchLane fault site poisons lanes before any batch arithmetic
  // runs (victim-keyed, so max_fires caps per victim): with period 1
  // every lane takes the scalar ReducedSimulator::run fallback — same
  // results bit for bit, fell_back_scalar set. Partial poisoning (some
  // lanes batched, some fallen back, findings unchanged) is exercised at
  // the verifier level in LaneFaultFallsBackWithoutChangingFindings.
  std::vector<LaneSetup> setups;
  setups.push_back(make_lane(6, 40.0, false));
  setups.push_back(make_lane(6, 70.0, true));
  setups.push_back(make_lane(5, 35.0, false));
  std::vector<ReducedSimResult> scalar;
  for (auto& s : setups) scalar.push_back(s.sim->run(s.options));

  std::vector<BatchLane> lanes;
  for (std::size_t i = 0; i < setups.size(); ++i) {
    BatchLane lane;
    lane.sim = setups[i].sim.get();
    lane.options = setups[i].options;
    lane.victim_net = 100 + i;
    lanes.push_back(lane);
  }
  FaultInjector::instance().reset();
  FaultInjector::instance().arm(FaultSite::kBatchLane, /*period=*/1,
                                /*max_fires=*/1);
  const std::vector<BatchLaneResult> batched = run_batch(lanes);
  FaultInjector::instance().reset();

  ASSERT_EQ(batched.size(), setups.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    ASSERT_EQ(batched[i].error, nullptr);
    EXPECT_TRUE(batched[i].fell_back_scalar);
    expect_waves_bitwise_equal(batched[i].result, scalar[i]);
  }
}

// ---------------------------------------------------------------------------
// Canonical fingerprints.

/// Hand-built cluster pencil in the GlitchAnalyzer layout: victim net 0
/// (2 nodes) plus two aggressor nets (2 nodes each); net k owns matrix
/// rows 2k..2k+1 and B port columns 2k (driver), 2k+1 (receiver).
/// `swap_aggressors` enumerates the aggressors in the opposite order;
/// `skew` scales one aggressor's coupling cap.
struct Pencil {
  DenseMatrix g, c, b;
  std::vector<std::size_t> net_node_begin;
};

Pencil make_pencil(bool swap_aggressors, double skew = 0.0) {
  // Nodes are added in enumeration order so the per-net block layout
  // (rows 2k..2k+1 for cluster net k) matches the aggressor ordering.
  RcNetwork net;
  std::vector<int> vn, an, bn;
  auto two_nodes = [&](std::vector<int>& dst) {
    dst.push_back(net.add_node());
    dst.push_back(net.add_node());
  };
  two_nodes(vn);
  net.add_resistor(vn[0], vn[1], 50.0);
  net.add_capacitor(vn[1], RcNetwork::kGround, 3e-15);
  // Aggressor A (stronger coupling) and B, enumerated either way round.
  auto add_net = [&](std::vector<int>& dst, double r, double cc) {
    two_nodes(dst);
    net.add_resistor(dst[0], dst[1], r);
    net.add_capacitor(dst[1], RcNetwork::kGround, 2e-15);
    net.add_capacitor(dst[1], vn[1], cc, true);
  };
  if (!swap_aggressors) {
    add_net(an, 40.0, 6e-15 * (1.0 + skew));
    add_net(bn, 90.0, 2e-15);
  } else {
    add_net(bn, 90.0, 2e-15);
    add_net(an, 40.0, 6e-15 * (1.0 + skew));
  }
  // Driver + receiver port per net, in net order (the glitch-analyzer
  // cluster layout: net k owns B columns 2k and 2k+1).
  for (const std::vector<int>* nodes : {&vn, swap_aggressors ? &bn : &an,
                                        swap_aggressors ? &an : &bn}) {
    const int driver = net.add_port((*nodes)[0]);
    net.stamp_port_conductance(static_cast<std::size_t>(driver), 1e-3);
    const int receiver = net.add_port((*nodes)[1]);
    net.stamp_port_conductance(static_cast<std::size_t>(receiver), 1e-9);
  }
  Pencil p;
  p.g = net.g_matrix();
  p.c = net.c_matrix(true);
  p.b = net.b_matrix();
  p.net_node_begin = {0, 2, 4, 6};
  return p;
}

CanonicalKey canonical_of(const Pencil& p, double tol) {
  SympvlOptions mor;
  mor.max_order = 8;
  return canonical_cluster_fingerprint(p.g, p.c, p.b, p.net_node_begin, tol,
                                       mor, /*certify=*/false,
                                       /*cert_rel_tol=*/0.02, /*cert_freqs=*/5,
                                       /*s_min=*/1e8, /*s_max=*/1e11);
}

ClusterFingerprint exact_of(const Pencil& p) {
  SympvlOptions mor;
  mor.max_order = 8;
  return cluster_fingerprint(p.g, p.c, p.b, mor, /*certify=*/false,
                             /*cert_rel_tol=*/0.02, /*cert_freqs=*/5,
                             /*s_min=*/1e8, /*s_max=*/1e11);
}

TEST(CanonicalKey, InvariantToAggressorEnumerationOrder) {
  const Pencil fwd = make_pencil(false);
  const Pencil rev = make_pencil(true);
  // Reordering aggressors renumbers nodes: the exact fingerprints differ
  // by design...
  EXPECT_NE(exact_of(fwd), exact_of(rev));
  // ...but the canonical keys collide, and the recorded aggressor orders
  // compose into the permutation between the two enumerations.
  const CanonicalKey kf = canonical_of(fwd, 0.0);
  const CanonicalKey kr = canonical_of(rev, 0.0);
  EXPECT_EQ(kf.key, kr.key);
  ASSERT_EQ(kf.agg_order.size(), 2u);
  ASSERT_EQ(kr.agg_order.size(), 2u);
  // The same canonical slot names aggressor A in both pencils: net 1 in
  // the forward enumeration, net 2 in the reversed one.
  EXPECT_NE(kf.agg_order, kr.agg_order);
}

TEST(CanonicalKey, QuantizationAbsorbsSubToleranceSkewOnly) {
  const Pencil base = make_pencil(false);
  const Pencil tiny = make_pencil(false, /*skew=*/1e-9);
  const Pencil big = make_pencil(false, /*skew=*/0.2);
  // Exact keys see every bit.
  EXPECT_NE(exact_of(base), exact_of(tiny));
  // A sub-tolerance skew collides under quantization; a 20% skew cannot.
  EXPECT_EQ(canonical_of(base, 1e-6).key, canonical_of(tiny, 1e-6).key);
  EXPECT_NE(canonical_of(base, 1e-6).key, canonical_of(big, 1e-6).key);
  // tol <= 0 keeps exact bits (permutation invariance only).
  EXPECT_NE(canonical_of(base, 0.0).key, canonical_of(tiny, 0.0).key);
}

// ---------------------------------------------------------------------------
// Model-cache canonical index.

std::shared_ptr<CachedReducedModel> dummy_payload(std::size_t bytes,
                                                  std::size_t order) {
  auto payload = std::make_shared<CachedReducedModel>();
  payload->model.t = DenseMatrix(order, order);
  payload->bytes = bytes;
  return payload;
}

ClusterFingerprint key_of(std::uint64_t n) {
  return ClusterFingerprint{n, n * 0x9e37u + 1};
}

TEST(ModelCacheCanonical, LookupInsertAndVerdictCounters) {
  ModelCache cache(1 << 20, 4);
  EXPECT_FALSE(cache.canonical_lookup(key_of(1)).has_value());
  cache.canonical_insert(key_of(1), {2, 1}, dummy_payload(100, 4));
  const auto hit = cache.canonical_lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload->model.order(), 4u);
  EXPECT_EQ(hit->agg_order, (std::vector<std::size_t>{2, 1}));
  // The caller reports the certificate verdict; the cache only counts.
  cache.count_canonical_hit();
  cache.count_canonical_cert_reject();
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.canonical_hits, 1u);
  EXPECT_EQ(s.canonical_cert_rejects, 1u);
  EXPECT_EQ(s.canonical_entries, 1u);
}

TEST(ModelCacheCanonical, FirstInsertWins) {
  ModelCache cache(1 << 20, 1);
  cache.canonical_insert(key_of(7), {1, 2}, dummy_payload(100, 4));
  cache.canonical_insert(key_of(7), {2, 1}, dummy_payload(100, 6));
  const auto hit = cache.canonical_lookup(key_of(7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload->model.order(), 4u);
  EXPECT_EQ(hit->agg_order, (std::vector<std::size_t>{1, 2}));
}

TEST(ModelCacheStats, SnapshotsStayConsistentUnderConcurrency) {
  // The stats race regression: writers hammer lookup/insert across
  // shards while a reader loops stats(). Snapshots must be internally
  // consistent (monotone counters, entries bounded by insertions) and
  // the final tally must balance exactly — per-shard counters under the
  // shard mutex, stats() locking all shards, make this TSan-clean.
  ModelCache cache(1 << 20, 4);
  constexpr int kWriters = 4;
  constexpr int kLookupsPerWriter = 4000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    ModelCache::Stats prev;
    while (!done.load(std::memory_order_acquire)) {
      const ModelCache::Stats s = cache.stats();
      EXPECT_GE(s.hits, prev.hits);
      EXPECT_GE(s.misses, prev.misses);
      EXPECT_GE(s.insertions, prev.insertions);
      EXPECT_LE(s.entries, s.insertions);
      prev = s;
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kLookupsPerWriter; ++i) {
        const auto key = key_of(static_cast<std::uint64_t>(
            (w * kLookupsPerWriter + i) % 64));
        if (cache.lookup(key) == nullptr)
          cache.insert(key, dummy_payload(64, 2));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::size_t>(kWriters) * kLookupsPerWriter);
}

// ---------------------------------------------------------------------------
// Verifier-level equivalences.

class BatchVerifyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
    DspChipOptions chip_opt;
    chip_opt.net_count = 90;
    chip_opt.tracks = 9;
    chip_opt.replicate_rows = 3;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete chars_;
    delete lib_;
    delete extractor_;
    design_ = nullptr;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
  }

  static VerifierOptions fast_options() {
    VerifierOptions options;
    options.glitch.align_aggressors = false;
    options.glitch.tstop = 3e-9;
    return options;
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }

  /// Bitwise equality of every result field (test_pipeline.cpp's
  /// doctrine); cache statistics are allowed to differ, findings not.
  static void expect_reports_equal(const VerificationReport& a,
                                   const VerificationReport& b) {
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      SCOPED_TRACE("finding " + std::to_string(i));
      const VictimFinding& x = a.findings[i];
      const VictimFinding& y = b.findings[i];
      EXPECT_EQ(x.net, y.net);
      EXPECT_EQ(x.peak, y.peak);  // bitwise: no tolerance
      EXPECT_EQ(x.peak_fraction, y.peak_fraction);
      EXPECT_EQ(x.violation, y.violation);
      EXPECT_EQ(x.status, y.status);
      EXPECT_EQ(x.retries, y.retries);
      EXPECT_EQ(x.error_code, y.error_code);
      EXPECT_EQ(x.error, y.error);
      EXPECT_EQ(x.aggressors_analyzed, y.aggressors_analyzed);
      EXPECT_EQ(x.reduced_order, y.reduced_order);
      EXPECT_EQ(x.driver_rms_current, y.driver_rms_current);
      EXPECT_EQ(x.em_violation, y.em_violation);
      EXPECT_EQ(x.certified, y.certified);
      EXPECT_EQ(x.cert_max_rel_err, y.cert_max_rel_err);
      EXPECT_EQ(x.cert_order_escalations, y.cert_order_escalations);
      EXPECT_EQ(x.audited, y.audited);
      EXPECT_EQ(x.audit_pass, y.audit_pass);
    }
    EXPECT_EQ(a.victims_eligible, b.victims_eligible);
    EXPECT_EQ(a.victims_analyzed, b.victims_analyzed);
    EXPECT_EQ(a.victims_screened_out, b.victims_screened_out);
    EXPECT_EQ(a.victims_retried, b.victims_retried);
    EXPECT_EQ(a.victims_fallback, b.victims_fallback);
    EXPECT_EQ(a.victims_failed, b.victims_failed);
    EXPECT_EQ(a.victims_certified, b.victims_certified);
    EXPECT_EQ(a.victims_accuracy_bound, b.victims_accuracy_bound);
    EXPECT_EQ(a.violations, b.violations);
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
};

CellLibrary* BatchVerifyFixture::lib_ = nullptr;
CharacterizedLibrary* BatchVerifyFixture::chars_ = nullptr;
Extractor* BatchVerifyFixture::extractor_ = nullptr;
ChipDesign* BatchVerifyFixture::design_ = nullptr;

TEST_F(BatchVerifyFixture, BatchedRunBitIdenticalToScalarAtEveryWidth) {
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport scalar = verifier.verify(*design_, fast_options());
  for (std::size_t width : {4u, 16u}) {
    SCOPED_TRACE("width " + std::to_string(width));
    VerifierOptions batched_opts = fast_options();
    batched_opts.batch_width = width;
    const VerificationReport batched =
        verifier.verify(*design_, batched_opts);
    EXPECT_GT(batched.batched_victims, 0u);
    expect_reports_equal(scalar, batched);
  }
}

TEST_F(BatchVerifyFixture, BatchedThreadedAndCachedAgreeWithScalar) {
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport scalar = verifier.verify(*design_, fast_options());

  VerifierOptions batched = fast_options();
  batched.batch_width = 8;
  batched.model_cache_mb = 8.0;
  batched.threads = 4;
  const VerificationReport threaded = verifier.verify(*design_, batched);
  EXPECT_GT(threaded.batched_victims, 0u);
  EXPECT_GT(threaded.model_cache_hits, 0u);
  expect_reports_equal(scalar, threaded);
}

TEST_F(BatchVerifyFixture, BatchedJournalResumesBitIdentical) {
  VerifierOptions options = fast_options();
  options.batch_width = 8;
  options.journal_path = temp_path("batch_journal.xtvj");
  std::remove(options.journal_path.c_str());

  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport full = verifier.verify(*design_, options);
  EXPECT_GT(full.batched_victims, 0u);

  // Resume against the complete batched journal; and a scalar resume of
  // the same journal must also merge cleanly — batch_width is not part
  // of the options hash, exactly like threads.
  VerifierOptions resume_opts = options;
  resume_opts.resume = true;
  resume_opts.batch_width = 1;
  const VerificationReport resumed = verifier.verify(*design_, resume_opts);
  expect_reports_equal(full, resumed);
  std::remove(options.journal_path.c_str());
}

TEST_F(BatchVerifyFixture, LaneFaultFallsBackWithoutChangingFindings) {
  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport scalar = verifier.verify(*design_, fast_options());

  VerifierOptions batched = fast_options();
  batched.batch_width = 8;
  FaultInjector::instance().reset();
  FaultInjector::instance().arm(FaultSite::kBatchLane, /*period=*/3);
  const VerificationReport faulted = verifier.verify(*design_, batched);
  FaultInjector::instance().reset();
  EXPECT_GT(faulted.batch_lane_fallbacks, 0u);
  expect_reports_equal(scalar, faulted);
}

TEST_F(BatchVerifyFixture, CanonicalCacheReusesAcrossSkewedReplicas) {
  // Replicated rows with a sub-tolerance receiver-load skew: exact keys
  // never re-match across rows, the canonical index does — and every
  // reuse passed the certificate gate against the requester's pencil.
  DspChipOptions chip_opt;
  chip_opt.net_count = 90;
  chip_opt.tracks = 9;
  chip_opt.replicate_rows = 3;
  chip_opt.cluster_repeat_skew = 1e-8;
  const ChipDesign skewed = generate_dsp_chip(*lib_, chip_opt);

  VerifierOptions exact_opts = fast_options();
  exact_opts.model_cache_mb = 8.0;
  VerifierOptions canon_opts = exact_opts;
  canon_opts.canonical_cache = true;
  canon_opts.canonical_cache_tol = 1e-6;

  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport exact = verifier.verify(skewed, exact_opts);
  const VerificationReport canon = verifier.verify(skewed, canon_opts);
  // The canonical index recovers certified reuse the exact keys lost to
  // the skew: its hit count must at least match (in practice dwarf) the
  // exact-only run's.
  EXPECT_GT(canon.canonical_hits, 0u);
  EXPECT_GE(canon.model_cache_hits + canon.canonical_hits,
            exact.model_cache_hits);
  EXPECT_EQ(canon.victims_analyzed, exact.victims_analyzed);
}

TEST_F(BatchVerifyFixture, CanonicalCertRejectFallsBackToFreshReduce) {
  // An unpassably tight certificate tolerance turns every canonical
  // candidate into a reject: the run must count the rejects, reuse
  // nothing tolerantly, and produce findings bit-identical to a plain
  // exact-cache run — reject means miss, never a degraded result.
  DspChipOptions chip_opt;
  chip_opt.net_count = 90;
  chip_opt.tracks = 9;
  chip_opt.replicate_rows = 3;
  chip_opt.cluster_repeat_skew = 1e-8;
  const ChipDesign skewed = generate_dsp_chip(*lib_, chip_opt);

  VerifierOptions exact_opts = fast_options();
  exact_opts.model_cache_mb = 8.0;
  exact_opts.cert_rel_tol = 1e-15;  // nothing certifies this tightly
  VerifierOptions canon_opts = exact_opts;
  canon_opts.canonical_cache = true;
  canon_opts.canonical_cache_tol = 1e-6;

  ChipVerifier verifier(*extractor_, *chars_);
  const VerificationReport exact = verifier.verify(skewed, exact_opts);
  const VerificationReport canon = verifier.verify(skewed, canon_opts);
  EXPECT_GT(canon.canonical_cert_rejects, 0u);
  EXPECT_EQ(canon.canonical_hits, 0u);
  expect_reports_equal(exact, canon);
}

TEST_F(BatchVerifyFixture, OptionsHashCoversCanonicalButNotBatchWidth) {
  VerifierOptions a = fast_options();
  VerifierOptions b = a;
  b.canonical_cache = true;
  EXPECT_NE(options_result_hash(a), options_result_hash(b));
  VerifierOptions c = b;
  c.canonical_cache_tol = 1e-3;
  EXPECT_NE(options_result_hash(b), options_result_hash(c));
  // batch_width only schedules (like threads): same hash, so journals
  // written at any width resume under any other.
  VerifierOptions d = a;
  d.batch_width = 16;
  EXPECT_EQ(options_result_hash(a), options_result_hash(d));
}

// ---------------------------------------------------------------------------
// chipgen skew.

TEST(ClusterRepeatSkew, DeterministicBoundedAndOffByDefault) {
  const Technology tech = Technology::default_250nm();
  CellLibrary lib(tech);
  DspChipOptions opt;
  opt.net_count = 60;
  opt.tracks = 6;
  opt.bus_count = 0;
  opt.replicate_rows = 2;
  const ChipDesign plain = generate_dsp_chip(lib, opt);

  DspChipOptions skewed_opt = opt;
  skewed_opt.cluster_repeat_skew = 0.05;
  const ChipDesign s1 = generate_dsp_chip(lib, skewed_opt);
  const ChipDesign s2 = generate_dsp_chip(lib, skewed_opt);

  ASSERT_EQ(s1.nets.size(), plain.nets.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < s1.nets.size(); ++i) {
    // Deterministic in the seed: two generations agree bitwise.
    EXPECT_EQ(s1.nets[i].receiver_cap, s2.nets[i].receiver_cap);
    // Bounded multiplicative jitter around the unskewed load.
    const double ratio = s1.nets[i].receiver_cap / plain.nets[i].receiver_cap;
    EXPECT_GE(ratio, 1.0 - skewed_opt.cluster_repeat_skew);
    EXPECT_LE(ratio, 1.0 + skewed_opt.cluster_repeat_skew);
    if (s1.nets[i].receiver_cap != plain.nets[i].receiver_cap)
      any_differs = true;
  }
  EXPECT_TRUE(any_differs);

  // Replica rows are no longer bit-identical to row 0 under skew.
  const std::size_t n0 = plain.nets.size() / 2;
  bool rows_differ = false;
  for (std::size_t i = 0; i < n0; ++i)
    if (s1.nets[i].receiver_cap != s1.nets[n0 + i].receiver_cap)
      rows_differ = true;
  EXPECT_TRUE(rows_differ);
}

}  // namespace
}  // namespace xtv
