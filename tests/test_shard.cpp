// Process-isolated shard execution tests (DESIGN.md §12). The contract
// under test: a clean multi-process run is bit-identical to the
// in-process one; a worker that dies (abort, SIGSEGV, SIGKILL) loses only
// its in-flight victim, which is quarantined into a fresh process and —
// if it crashes that process too — conceded as kShardCrashed with a
// finite conservative bound; the merged journal is written atomically and
// resumes cleanly, including after a killed supervisor leaves shard
// journals behind.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/journal.h"
#include "core/verifier.h"
#include "core/wire.h"
#include "util/fault_injection.h"
#include "util/subprocess.h"

namespace xtv {
namespace {

const Technology kTech = Technology::default_250nm();

/// Scoped environment variable (the shard test hooks are env-driven).
struct EnvGuard {
  std::string name;
  EnvGuard(const char* n, const std::string& v) : name(n) {
    ::setenv(n, v.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name.c_str()); }
};

class ShardFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new CellLibrary(kTech);
    CharacterizeOptions copt;
    copt.iv_grid = 11;
    chars_ = new CharacterizedLibrary(*lib_, copt);
    extractor_ = new Extractor(kTech);
    DspChipOptions chip_opt;
    chip_opt.net_count = 100;
    chip_opt.tracks = 8;
    design_ = new ChipDesign(generate_dsp_chip(*lib_, chip_opt));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete chars_;
    delete lib_;
    delete extractor_;
    delete baseline_;
    design_ = nullptr;
    chars_ = nullptr;
    lib_ = nullptr;
    extractor_ = nullptr;
    baseline_ = nullptr;
  }
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }

  static VerifierOptions fast_options() {
    VerifierOptions options;
    options.glitch.align_aggressors = false;
    options.glitch.tstop = 3e-9;
    return options;
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }

  /// Crash-free in-process reference run, computed once for the suite.
  static const VerificationReport& baseline_report() {
    if (!baseline_) {
      ChipVerifier verifier(*extractor_, *chars_);
      baseline_ =
          new VerificationReport(verifier.verify(*design_, fast_options()));
    }
    return *baseline_;
  }

  /// Bitwise equality of two reports' findings and accounting, optionally
  /// exempting one victim net (the deliberately crashed one). CPU times
  /// are re-measured per run and never compared.
  static void expect_reports_equal_except(const VerificationReport& a,
                                          const VerificationReport& b,
                                          long long exclude_net = -1) {
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      SCOPED_TRACE("finding " + std::to_string(i));
      const VictimFinding& x = a.findings[i];
      const VictimFinding& y = b.findings[i];
      EXPECT_EQ(x.net, y.net);
      if (static_cast<long long>(x.net) == exclude_net) continue;
      EXPECT_EQ(x.peak, y.peak);  // bitwise: no tolerance
      EXPECT_EQ(x.peak_fraction, y.peak_fraction);
      EXPECT_EQ(x.violation, y.violation);
      EXPECT_EQ(x.status, y.status);
      EXPECT_EQ(x.retries, y.retries);
      EXPECT_EQ(x.error_code, y.error_code);
      EXPECT_EQ(x.error, y.error);
      EXPECT_EQ(x.aggressors_analyzed, y.aggressors_analyzed);
      EXPECT_EQ(x.reduced_order, y.reduced_order);
      EXPECT_EQ(x.driver_rms_current, y.driver_rms_current);
      EXPECT_EQ(x.em_violation, y.em_violation);
    }
    EXPECT_EQ(a.victims_eligible, b.victims_eligible);
    EXPECT_EQ(a.victims_screened_out, b.victims_screened_out);
    if (exclude_net < 0) {
      EXPECT_EQ(a.victims_analyzed, b.victims_analyzed);
      EXPECT_EQ(a.victims_fallback, b.victims_fallback);
      EXPECT_EQ(a.victims_failed, b.victims_failed);
      EXPECT_EQ(a.violations, b.violations);
    }
  }

  static void expect_accounting_invariant(const VerificationReport& r) {
    EXPECT_EQ(r.victims_eligible, r.victims_analyzed + r.victims_screened_out +
                                      r.victims_fallback + r.victims_failed);
    EXPECT_LE(r.victims_shard_crashed, r.victims_fallback);
  }

  /// The finding for `net`, or nullptr.
  static const VictimFinding* find_net(const VerificationReport& r,
                                       std::size_t net) {
    for (const auto& f : r.findings)
      if (f.net == net) return &f;
    return nullptr;
  }

  static CellLibrary* lib_;
  static CharacterizedLibrary* chars_;
  static Extractor* extractor_;
  static ChipDesign* design_;
  static VerificationReport* baseline_;
};

CellLibrary* ShardFixture::lib_ = nullptr;
CharacterizedLibrary* ShardFixture::chars_ = nullptr;
Extractor* ShardFixture::extractor_ = nullptr;
ChipDesign* ShardFixture::design_ = nullptr;
VerificationReport* ShardFixture::baseline_ = nullptr;

// ---------------------------------------------------------------------------
// Wire format.

TEST_F(ShardFixture, WireFramesRoundTripThroughArbitraryChunking) {
  JournalRecord rec;
  rec.finding.net = 42;
  rec.finding.peak = -1.2345678901234567e-3;
  rec.finding.status = FindingStatus::kDeadlineBound;
  rec.finding.error = "with spaces\nand a newline";

  std::vector<WireFrame> sent;
  sent.push_back({WireType::kHello, "0 1234"});
  sent.push_back({WireType::kVictimStart, "42"});
  sent.push_back({WireType::kHeartbeat, "7"});
  sent.push_back({WireType::kVictimDone, journal_encode(rec)});
  sent.push_back({WireType::kVictimSkipped, "43"});
  sent.push_back({WireType::kShardDone, "1"});

  std::string stream;
  for (const auto& f : sent) stream += wire_encode_frame(f.type, f.payload);

  // Feed one byte at a time: pipes deliver arbitrary chunks.
  WireDecoder decoder;
  std::vector<WireFrame> got;
  WireFrame frame;
  for (char c : stream) {
    decoder.feed(&c, 1);
    while (decoder.next(&frame)) got.push_back(frame);
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].type, sent[i].type) << i;
    EXPECT_EQ(got[i].payload, sent[i].payload) << i;
  }
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);

  // The victim-done payload decodes back bit-exactly.
  JournalRecord back;
  ASSERT_TRUE(journal_decode(got[3].payload, back));
  EXPECT_EQ(back.finding.peak, rec.finding.peak);
  EXPECT_EQ(back.finding.error, rec.finding.error);
}

TEST_F(ShardFixture, WireDecoderLatchesCorruptionAndKeepsTornTails) {
  const std::string good = wire_encode_frame(WireType::kVictimStart, "5");

  // A truncated final frame is not corruption — it is the expected torn
  // tail of a crashed worker.
  WireDecoder torn;
  torn.feed(good.data(), good.size());
  torn.feed(good.data(), good.size() / 2);
  WireFrame frame;
  ASSERT_TRUE(torn.next(&frame));
  EXPECT_EQ(frame.payload, "5");
  EXPECT_FALSE(torn.next(&frame));
  EXPECT_FALSE(torn.corrupt());
  EXPECT_GT(torn.buffered(), 0u);

  // A flipped payload byte fails the checksum and latches corrupt.
  std::string flipped = good;
  flipped[flipped.size() - 9] ^= 0x01;  // last payload byte
  WireDecoder bad;
  bad.feed(flipped.data(), flipped.size());
  EXPECT_FALSE(bad.next(&frame));
  EXPECT_TRUE(bad.corrupt());
  // ...permanently: a following pristine frame is not trusted either.
  bad.feed(good.data(), good.size());
  EXPECT_FALSE(bad.next(&frame));

  // Garbage where magic should be latches immediately.
  WireDecoder garbage;
  garbage.feed("not-a-frame-at-all", 18);
  EXPECT_FALSE(garbage.next(&frame));
  EXPECT_TRUE(garbage.corrupt());
}

// ---------------------------------------------------------------------------
// Crash markers and atomic journal finalization.

TEST_F(ShardFixture, CrashMarkerWritesParseAndResumeTruncatesThem) {
  const std::string path = temp_path("xtv_marker.journal");
  {
    ResultJournal journal(path, /*resume=*/false, /*options_hash=*/0x5eed,
                          /*flush_every=*/1);
    JournalRecord rec;
    rec.finding.net = 5;
    journal.append(rec);
    // What the async-signal-safe handler would emit on SIGSEGV.
    subprocess::write_crash_marker(journal.fd(), 77, SIGSEGV);
  }
  auto loaded = ResultJournal::load(path);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].finding.net, 5u);
  ASSERT_EQ(loaded.crash_markers.size(), 1u);
  EXPECT_EQ(loaded.crash_markers[0].victim, 77u);
  EXPECT_EQ(loaded.crash_markers[0].sig, SIGSEGV);
  // The marker is *outside* the intact prefix: resume truncates it away.
  EXPECT_TRUE(loaded.tail_discarded);

  { ResultJournal reopened(path, /*resume=*/true, 0x5eed); }
  auto after = ResultJournal::load(path);
  EXPECT_EQ(after.records.size(), 1u);
  EXPECT_TRUE(after.crash_markers.empty());
  EXPECT_FALSE(after.tail_discarded);
  std::remove(path.c_str());
}

TEST_F(ShardFixture, AtomicFinalizeLeavesNoTmpAndRoundTrips) {
  const std::string path = temp_path("xtv_atomic.journal");
  std::vector<JournalRecord> recs(3);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    recs[i].finding.net = 10 + i;
    recs[i].finding.peak = -0.125 * static_cast<double>(i + 1);
  }
  std::vector<const JournalRecord*> ptrs;
  for (const auto& r : recs) ptrs.push_back(&r);
  ResultJournal::write_atomic(path, ptrs, /*options_hash=*/0xabcd);

  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
  auto loaded = ResultJournal::load(path);
  EXPECT_TRUE(loaded.has_header);
  EXPECT_EQ(loaded.header_hash, 0xabcdu);
  ASSERT_EQ(loaded.records.size(), 3u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(loaded.records[i].finding.net, recs[i].finding.net);
    EXPECT_EQ(loaded.records[i].finding.peak, recs[i].finding.peak);
  }

  // A rewrite fully replaces the old journal — no stale tail survives.
  ptrs.resize(1);
  ResultJournal::write_atomic(path, ptrs, 0xabcd);
  auto rewritten = ResultJournal::load(path);
  ASSERT_EQ(rewritten.records.size(), 1u);
  EXPECT_FALSE(rewritten.tail_discarded);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Clean multi-process runs.

TEST_F(ShardFixture, ProcessRunMatchesInProcessBitExactly) {
  const VerificationReport& serial = baseline_report();
  ASSERT_GT(serial.findings.size(), 0u);

  ChipVerifier verifier(*extractor_, *chars_);
  const std::string j1 = temp_path("xtv_shard_p1.journal");
  const std::string j4 = temp_path("xtv_shard_p4.journal");

  VerifierOptions options = fast_options();
  options.processes = 1;
  options.journal_path = j1;
  const VerificationReport one = verifier.verify(*design_, options);

  options.processes = 4;
  options.journal_path = j4;
  const VerificationReport four = verifier.verify(*design_, options);

  expect_reports_equal_except(serial, one);
  expect_reports_equal_except(serial, four);
  expect_accounting_invariant(four);
  EXPECT_EQ(four.worker_crashes, 0u);
  EXPECT_EQ(four.shard_restarts, 0u);
  EXPECT_EQ(four.victims_quarantined, 0u);
  EXPECT_EQ(four.victims_shard_crashed, 0u);

  // Both merged journals hold the same records in the same stable order
  // (CPU time is the one per-run field).
  auto a = ResultJournal::load(j1);
  auto b = ResultJournal::load(j4);
  EXPECT_TRUE(a.has_header);
  EXPECT_EQ(a.header_hash, b.header_hash);
  ASSERT_EQ(a.records.size(), b.records.size());
  ASSERT_EQ(a.records.size(), serial.victims_eligible);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].finding.net, b.records[i].finding.net);
    EXPECT_EQ(a.records[i].finding.peak, b.records[i].finding.peak);
    EXPECT_EQ(a.records[i].finding.status, b.records[i].finding.status);
  }
  // Shard journals were retired after finalization.
  EXPECT_NE(::access(journal_shard_path(j4, 0).c_str(), F_OK), 0);
  std::remove(j1.c_str());
  std::remove(j4.c_str());
}

// ---------------------------------------------------------------------------
// The quarantine ladder.

TEST_F(ShardFixture, CrashedVictimIsQuarantinedThenConcededWithFiniteBound) {
  const VerificationReport& clean = baseline_report();
  ASSERT_GT(clean.findings.size(), 4u);
  const std::size_t victim = clean.findings[1].net;

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.processes = 2;
  options.journal_path = temp_path("xtv_shard_crash.journal");

  VerificationReport crashed;
  {
    EnvGuard net("XTV_TEST_CRASH_VICTIM", std::to_string(victim));
    EnvGuard mode("XTV_TEST_CRASH_MODE", "segv");
    crashed = verifier.verify(*design_, options);
  }

  // The shard crashed at the victim, its solo quarantine retry crashed
  // again (the hook re-fires in the fresh process), and a bound-only
  // process conceded it.
  EXPECT_EQ(crashed.worker_crashes, 2u);
  EXPECT_EQ(crashed.victims_quarantined, 1u);
  EXPECT_EQ(crashed.shard_restarts, 1u);
  EXPECT_EQ(crashed.victims_shard_crashed, 1u);
  expect_accounting_invariant(crashed);

  const VictimFinding* f = find_net(crashed, victim);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->status, FindingStatus::kShardCrashed);
  EXPECT_EQ(f->error_code, StatusCode::kWorkerCrashed);
  EXPECT_FALSE(f->error.empty());
  // The conceded bound is finite and conservative.
  const double vdd = kTech.vdd;
  EXPECT_TRUE(std::isfinite(f->peak));
  EXPECT_LE(std::abs(f->peak), vdd * (1.0 + 1e-12));
  EXPECT_GE(f->peak_fraction, 0.0);
  EXPECT_LE(f->peak_fraction, 1.0);

  // Every other victim is bit-identical to the crash-free run.
  expect_reports_equal_except(clean, crashed,
                              static_cast<long long>(victim));
  std::remove(options.journal_path.c_str());
}

TEST_F(ShardFixture, CrashOnceRecoversFullyViaTheQuarantineRetry) {
  const VerificationReport& clean = baseline_report();
  const std::size_t victim = clean.findings[1].net;
  const std::string once = temp_path("xtv_crash_once.marker");
  std::remove(once.c_str());

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.processes = 2;

  VerificationReport report;
  {
    EnvGuard net("XTV_TEST_CRASH_VICTIM", std::to_string(victim));
    EnvGuard guard("XTV_TEST_CRASH_ONCE_FILE", once);
    report = verifier.verify(*design_, options);
  }
  std::remove(once.c_str());

  // One crash, one quarantine — and the solo fresh-process retry ran
  // clean, so the report is indistinguishable from a crash-free run.
  EXPECT_EQ(report.worker_crashes, 1u);
  EXPECT_EQ(report.victims_quarantined, 1u);
  EXPECT_EQ(report.victims_shard_crashed, 0u);
  expect_reports_equal_except(clean, report);
  expect_accounting_invariant(report);
}

TEST_F(ShardFixture, InjectedSigkillConcedesVictimAndJournalResumesCleanly) {
  // The acceptance scenario: --processes 4, a worker SIGKILLed on a known
  // victim twice (initial + quarantine retry), so the victim is conceded
  // with a finite conservative bound; everything else is bit-identical,
  // and the merged journal resumes cleanly.
  const VerificationReport& clean = baseline_report();
  const std::size_t victim = clean.findings[2].net;

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.processes = 4;
  options.journal_path = temp_path("xtv_shard_kill.journal");

  VerificationReport killed;
  {
    EnvGuard hook("XTV_TEST_SHARD_KILL_ON_START",
                  std::to_string(victim) + ":2");
    killed = verifier.verify(*design_, options);
  }
  EXPECT_EQ(killed.worker_crashes, 2u);
  EXPECT_EQ(killed.victims_quarantined, 1u);
  EXPECT_EQ(killed.victims_shard_crashed, 1u);
  const VictimFinding* f = find_net(killed, victim);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->status, FindingStatus::kShardCrashed);
  EXPECT_TRUE(std::isfinite(f->peak));
  EXPECT_LE(std::abs(f->peak), kTech.vdd * (1.0 + 1e-12));
  expect_reports_equal_except(clean, killed, static_cast<long long>(victim));

  // The merged journal is complete: a resume re-analyzes nothing and
  // reproduces the report (CPU times included — hexfloat round-trip).
  auto& fi = FaultInjector::instance();
  options.resume = true;
  options.processes = 0;
  fi.arm(FaultSite::kLanczosSweep, /*period=*/std::uint64_t{1} << 62);
  const VerificationReport resumed = verifier.verify(*design_, options);
  EXPECT_EQ(fi.hits(FaultSite::kLanczosSweep), 0u);
  fi.reset();
  expect_reports_equal_except(killed, resumed, -1);
  const VictimFinding* rf = find_net(resumed, victim);
  ASSERT_NE(rf, nullptr);
  EXPECT_EQ(rf->status, FindingStatus::kShardCrashed);
  EXPECT_EQ(rf->cpu_seconds, f->cpu_seconds);
  std::remove(options.journal_path.c_str());
}

TEST_F(ShardFixture, SupervisorSynthesizesRecordWhenEvenTheBoundCrashes) {
  // Kill the worker on the victim three times: initial shard, quarantine
  // retry, and the bound-only concession process. The supervisor then
  // has nothing left to run and synthesizes the maximally pessimistic
  // record itself.
  const VerificationReport& clean = baseline_report();
  const std::size_t victim = clean.findings[3].net;

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.processes = 2;

  VerificationReport report;
  {
    EnvGuard hook("XTV_TEST_SHARD_KILL_ON_START",
                  std::to_string(victim) + ":3");
    report = verifier.verify(*design_, options);
  }
  EXPECT_EQ(report.worker_crashes, 3u);
  EXPECT_EQ(report.victims_shard_crashed, 1u);
  const VictimFinding* f = find_net(report, victim);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->status, FindingStatus::kShardCrashed);
  EXPECT_EQ(f->error_code, StatusCode::kWorkerCrashed);
  EXPECT_EQ(f->peak, -kTech.vdd);  // |peak| = Vdd: still finite
  EXPECT_EQ(f->peak_fraction, 1.0);
  EXPECT_TRUE(f->violation);
  expect_reports_equal_except(clean, report, static_cast<long long>(victim));
}

// ---------------------------------------------------------------------------
// Resume after a killed supervisor.

TEST_F(ShardFixture, ResumeFoldsLeftoverShardJournalsIn) {
  const std::string path = temp_path("xtv_shard_fold.journal");
  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.processes = 2;
  options.journal_path = path;
  const VerificationReport full = verifier.verify(*design_, options);
  ASSERT_GT(full.victims_eligible, 8u);

  // Simulate a supervisor killed mid-run: the base journal holds the
  // first half of the records, a leftover shard journal holds the next
  // quarter, and the rest was never analyzed.
  std::vector<std::string> lines;
  {
    std::ifstream in(path, std::ios::binary);
    for (std::string line; std::getline(in, line);) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 8u);  // header + records
  const std::string& header = lines[0];
  const std::size_t records = lines.size() - 1;
  const std::size_t base_keep = records / 2;
  const std::size_t shard_keep = records / 4;
  {
    std::ofstream base(path, std::ios::binary | std::ios::trunc);
    base << header << '\n';
    for (std::size_t i = 0; i < base_keep; ++i) base << lines[1 + i] << '\n';
  }
  {
    std::ofstream shard(journal_shard_path(path, 0),
                        std::ios::binary | std::ios::trunc);
    shard << header << '\n';
    for (std::size_t i = 0; i < shard_keep; ++i)
      shard << lines[1 + base_keep + i] << '\n';
  }

  options.resume = true;
  const VerificationReport resumed = verifier.verify(*design_, options);
  expect_reports_equal_except(full, resumed);
  // The leftover shard journal was consumed and retired.
  EXPECT_NE(::access(journal_shard_path(path, 0).c_str(), F_OK), 0);
  auto merged = ResultJournal::load(path);
  EXPECT_EQ(merged.records.size(), full.victims_eligible);

  // The folded journal is complete: an in-process resume replay
  // re-analyzes nothing.
  auto& fi = FaultInjector::instance();
  options.processes = 0;
  fi.arm(FaultSite::kLanczosSweep, /*period=*/std::uint64_t{1} << 62);
  const VerificationReport replay = verifier.verify(*design_, options);
  EXPECT_EQ(fi.hits(FaultSite::kLanczosSweep), 0u);
  fi.reset();
  expect_reports_equal_except(resumed, replay);
  std::remove(path.c_str());
}

TEST_F(ShardFixture, NonContiguousStaleShardJournalsAreSwept) {
  const std::string path = temp_path("xtv_shard_stale.journal");
  std::remove(path.c_str());

  // Stale leftovers from an older interrupted run under a different
  // worker count: indices 3 and 12, no .shard0. A probe-until-first-miss
  // scan would see none of them; the directory scan must see both.
  for (std::size_t k : {std::size_t{3}, std::size_t{12}}) {
    std::ofstream shard(journal_shard_path(path, k),
                        std::ios::binary | std::ios::trunc);
    shard << "xtvjh 0123456789abcdef\n";  // hash matches no real options
  }
  // A .tmp straggler must not be mistaken for a shard index.
  {
    std::ofstream tmp(journal_shard_path(path, 3) + ".tmp");
    tmp << "partial";
  }
  EXPECT_EQ(journal_list_shards(path),
            (std::vector<std::size_t>{3, 12}));

  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.processes = 2;
  options.journal_path = path;
  const VerificationReport report = verifier.verify(*design_, options);
  expect_reports_equal_except(baseline_report(), report);

  // The fully successful run retired every shard file on disk — the
  // stale non-contiguous ones included — so a later --resume has
  // nothing foreign to fold.
  EXPECT_TRUE(journal_list_shards(path).empty());
  auto merged = ResultJournal::load(path);
  EXPECT_TRUE(merged.has_header);
  EXPECT_EQ(merged.records.size(), report.victims_eligible);
  std::remove((journal_shard_path(path, 3) + ".tmp").c_str());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Guard rails.

TEST_F(ShardFixture, MaxVictimsForcesTheInProcessPath) {
  ChipVerifier verifier(*extractor_, *chars_);
  VerifierOptions options = fast_options();
  options.processes = 4;
  options.max_victims = 3;
  const VerificationReport report = verifier.verify(*design_, options);
  // The cap is honored (process mode would have ignored it) and no
  // process-shard machinery ran.
  EXPECT_LE(report.victims_analyzed, 3u);
  EXPECT_EQ(report.worker_crashes, 0u);
}

}  // namespace
}  // namespace xtv
