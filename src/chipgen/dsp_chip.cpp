#include "chipgen/dsp_chip.h"

#include <algorithm>
#include <cmath>

#include "util/prng.h"

namespace xtv {

namespace {

/// Driver-cell candidates for ordinary (non-bus) nets. A deliberately
/// small set keeps one-time characterization cheap while spanning weak-to-
/// strong drive (the key axis for crosstalk severity).
const char* kDriverPool[] = {
    "INV_X1",  "INV_X2",  "INV_X4",  "INV_X8",  "BUF_X2",  "BUF_X8",
    "NAND2_X1", "NAND2_X4", "NOR2_X2", "AOI21_X2", "DFF_X2", "DFF_X4",
};

/// Receiver cells whose input caps load the nets.
const char* kLoadPool[] = {
    "INV_X1", "INV_X4", "NAND2_X2", "NOR2_X1", "DFF_X1", "DLAT_X2", "BUF_X4",
};

/// splitmix64 finalizer: a stateless, platform-stable hash of the final
/// (post-offset) net id used to derive per-replica load jitter. Keyed on
/// the id — not the row loop — so the jitter a net receives is a property
/// of the design, independent of stamping order.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [-1, 1] from a hashed id (53 mantissa bits).
double signed_unit(std::uint64_t hashed) {
  const double u01 =
      static_cast<double>(hashed >> 11) * 0x1.0p-53;  // [0, 1)
  return 2.0 * u01 - 1.0;
}

}  // namespace

ChipDesign generate_dsp_chip(const CellLibrary& library,
                             const DspChipOptions& options) {
  if (options.replicate_rows > 1) {
    // Row-tiled chip: generate one base row, then stamp it with offset
    // net ids and tracks. Replicas are bit-identical electrically, so a
    // verification run over the tiled chip repeats the base row's
    // cluster pencils rows-fold (the model cache's best case — and an
    // honest one: real standard-cell rows repeat exactly like this).
    DspChipOptions row = options;
    row.replicate_rows = 1;
    const std::size_t rows = options.replicate_rows;
    row.net_count = std::max<std::size_t>(options.net_count / rows, 2);
    row.tracks = std::max<std::size_t>(options.tracks / rows, 3);
    row.bus_count = options.bus_count / rows;
    const ChipDesign base = generate_dsp_chip(library, row);

    ChipDesign design;
    design.clock_period = base.clock_period;
    const std::size_t n0 = base.nets.size();
    // Inter-row gap of 2 empty tracks: the coupling scan reaches at most
    // 2 tracks, so rows never couple to each other.
    const std::size_t track_stride = row.tracks + 2;
    design.nets.reserve(n0 * rows);
    design.couplings.reserve(base.couplings.size() * rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (const ChipNet& src : base.nets) {
        ChipNet net = src;
        net.id = src.id + r * n0;
        net.track = src.track + r * track_stride;
        if (options.cluster_repeat_skew > 0.0) {
          // De-repeat the replicas: perturb each stamped net's receiver
          // load by a hash of its final id, mixed with the seed so two
          // chips differing only in seed also differ in jitter.
          const double u = signed_unit(
              mix64(static_cast<std::uint64_t>(net.id) ^ options.seed));
          net.receiver_cap *= 1.0 + options.cluster_repeat_skew * u;
        }
        design.nets.push_back(std::move(net));
      }
      for (const ChipCoupling& src : base.couplings) {
        ChipCoupling c = src;
        c.a += r * n0;
        c.b += r * n0;
        design.couplings.push_back(c);
      }
      for (const auto& [a, b] : base.complementary_pairs) {
        design.correlations.add_complementary(a + r * n0, b + r * n0);
        design.complementary_pairs.emplace_back(a + r * n0, b + r * n0);
      }
    }
    return design;
  }

  Prng rng(options.seed);
  ChipDesign design;
  design.clock_period = options.clock_period;

  const double pitch = library.tech().min_width + library.tech().min_spacing;

  // --- Nets on routing tracks. ---
  design.nets.resize(options.net_count);
  for (std::size_t i = 0; i < options.net_count; ++i) {
    ChipNet& net = design.nets[i];
    net.id = i;
    net.route.length = rng.log_uniform(options.min_net_len, options.max_net_len);
    net.route.width = 0.0;  // minimum width
    net.track = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(options.tracks) - 1));
    net.start = rng.uniform(0.0, std::max(options.chip_span - net.route.length, 0.0));
    net.driver_cell =
        kDriverPool[rng.uniform_int(0, static_cast<int>(std::size(kDriverPool)) - 1)];
    // Fanout 1-3 receivers.
    const int fanout = rng.uniform_int(1, 3);
    net.receiver_cap = 0.0;
    bool latch = false;
    for (int f = 0; f < fanout; ++f) {
      const char* load =
          kLoadPool[rng.uniform_int(0, static_cast<int>(std::size(kLoadPool)) - 1)];
      const CellMaster& m = library.by_name(load);
      net.receiver_cap += m.input_cap(m.switching_pin());
      if (m.family() == CellFamily::kDff || m.family() == CellFamily::kDlat)
        latch = true;
    }
    if (latch || rng.bernoulli(options.latch_fraction * 0.3)) net.latch_input = true;
    net.input_slew = rng.uniform(0.05e-9, 0.5e-9);
    // Switching window inside the cycle.
    const double w0 = rng.uniform(0.0, 0.6 * options.clock_period);
    const double w1 = w0 + rng.uniform(0.05, 0.35) * options.clock_period;
    net.window = TimingWindow::of(w0, std::min(w1, options.clock_period));
  }

  // --- Tri-state buses: overwrite the first bus_count long nets. ---
  std::vector<std::size_t> by_len(options.net_count);
  for (std::size_t i = 0; i < options.net_count; ++i) by_len[i] = i;
  std::sort(by_len.begin(), by_len.end(), [&](std::size_t a, std::size_t b) {
    return design.nets[a].route.length > design.nets[b].route.length;
  });
  const auto tribufs = library.family(CellFamily::kTribuf);
  for (std::size_t b = 0; b < options.bus_count && b < by_len.size(); ++b) {
    ChipNet& net = design.nets[by_len[b]];
    net.bus_drivers.clear();
    double best_drive = 0.0;
    for (std::size_t d = 0; d < options.bus_drivers; ++d) {
      const CellMaster* m =
          tribufs[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(tribufs.size()) - 1))];
      net.bus_drivers.push_back(m->name());
      if (m->drive() > best_drive) {
        best_drive = m->drive();
        // Conservative rule (paper Section 2): analyze with the strongest
        // of the bus drivers switching.
        net.driver_cell = m->name();
      }
    }
    // The inactive drivers on the bus are mutually exclusive aggressor
    // sources with the active one; record the bus nets as a mutex group
    // placeholder at the net level (one net, so nothing to add here).
  }

  // --- Complementary flip-flop output pairs (Q/QN). ---
  for (std::size_t i = 0; i + 1 < options.net_count; ++i) {
    const ChipNet& a = design.nets[i];
    if (a.driver_cell.rfind("DFF", 0) != 0) continue;
    if (!rng.bernoulli(0.5)) continue;
    // Pair with the next DFF-driven net as its QN.
    for (std::size_t j = i + 1; j < std::min(options.net_count, i + 20); ++j) {
      if (design.nets[j].driver_cell.rfind("DFF", 0) != 0) continue;
      design.correlations.add_complementary(i, j);
      design.complementary_pairs.emplace_back(i, j);
      break;
    }
  }

  // --- Couplings: nets on nearby tracks with overlapping extents. ---
  // Bucket nets per track for the neighbor scan.
  std::vector<std::vector<std::size_t>> per_track(options.tracks);
  for (const ChipNet& net : design.nets) per_track[net.track].push_back(net.id);

  auto try_couple = [&](std::size_t ia, std::size_t ib, int track_gap) {
    const ChipNet& a = design.nets[ia];
    const ChipNet& b = design.nets[ib];
    const double lo = std::max(a.start, b.start);
    const double hi = std::min(a.start + a.route.length, b.start + b.route.length);
    const double overlap = hi - lo;
    if (overlap <= 5e-6) return;  // sub-5um runs are noise
    ChipCoupling c;
    c.a = ia;
    c.b = ib;
    c.overlap = overlap;
    c.spacing = pitch * static_cast<double>(track_gap) -
                0.0;  // center-to-center gap minus width ~= spacing model
    c.offset_a = lo - a.start;
    c.offset_b = lo - b.start;
    design.couplings.push_back(c);
  };
  for (std::size_t t = 0; t < options.tracks; ++t) {
    for (std::size_t gap = 1; gap <= 2; ++gap) {
      if (t + gap >= options.tracks) continue;
      for (std::size_t ia : per_track[t])
        for (std::size_t ib : per_track[t + gap])
          try_couple(ia, ib, static_cast<int>(gap));
    }
  }
  return design;
}

std::vector<NetSummary> chip_net_summaries(const ChipDesign& design,
                                           const Extractor& extractor,
                                           CharacterizedLibrary& chars) {
  std::vector<NetSummary> summaries(design.nets.size());
  for (std::size_t i = 0; i < design.nets.size(); ++i) {
    const ChipNet& net = design.nets[i];
    NetSummary& s = summaries[i];
    s.id = i;
    s.ground_cap = extractor.route_ground_cap(net.route) + net.receiver_cap;
    const CellModel& model = chars.model(net.driver_cell);
    s.driver_resistance =
        0.5 * (model.drive_resistance_rise + model.drive_resistance_fall);
  }
  for (const ChipCoupling& c : design.couplings) {
    const double cap =
        extractor.cc_per_m(c.spacing) * c.overlap;
    summaries[c.a].couplings.push_back({c.b, cap});
    summaries[c.b].couplings.push_back({c.a, cap});
  }
  return summaries;
}

}  // namespace xtv
