// Synthetic DSP-like design generator.
//
// Stand-in for the paper's proprietary TI DSP case study: a deterministic
// generator that produces a chip-level routed design with the structural
// features the evaluation exercises — thousands of nets in crowded routing
// channels (dense pre-pruning coupling graphs, ~100-net clusters),
// tri-state buses with multiple drivers, latch-input victim nets
// (Figures 6/7 pick 101 of these), complementary flip-flop output pairs
// (logic correlation), and per-net switching windows (timing correlation).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cells/cell_library.h"
#include "cells/characterize.h"
#include "core/pruning.h"
#include "extract/extractor.h"
#include "sta/timing.h"

namespace xtv {

/// One routed chip net with its driver and load bookkeeping.
struct ChipNet {
  std::size_t id = 0;
  NetRoute route;
  std::size_t track = 0;       ///< routing track index
  double start = 0.0;          ///< position of the driver end along the track (m)

  std::string driver_cell;     ///< master driving the net (strongest, for buses)
  std::vector<std::string> bus_drivers;  ///< all tri-state drivers (empty = point-to-point)
  double receiver_cap = 0.0;   ///< total input cap of the fanout
  bool latch_input = false;    ///< feeds a DFF/DLAT D-pin (Fig 6/7 victims)
  double input_slew = 0.2e-9;  ///< transition slew at the driver input
  TimingWindow window;         ///< switching window within the cycle
};

/// A lateral coupling between two chip nets (window geometry included).
struct ChipCoupling {
  std::size_t a = 0;
  std::size_t b = 0;
  double overlap = 0.0;
  double spacing = 0.0;
  double offset_a = 0.0;
  double offset_b = 0.0;
};

struct ChipDesign {
  std::vector<ChipNet> nets;
  std::vector<ChipCoupling> couplings;
  LogicCorrelation correlations;
  std::vector<std::pair<std::size_t, std::size_t>> complementary_pairs;
  double clock_period = 5e-9;
};

struct DspChipOptions {
  std::uint64_t seed = 1999;     ///< DATE '99
  std::size_t net_count = 1500;
  std::size_t tracks = 48;       ///< routing tracks per channel model
  double chip_span = 2e-3;       ///< channel length (m)
  double min_net_len = 50e-6;
  double max_net_len = 1.2e-3;
  std::size_t bus_count = 20;    ///< tri-state bus nets
  std::size_t bus_drivers = 4;   ///< tri-state drivers per bus
  double latch_fraction = 0.15;  ///< fraction of nets feeding latches
  double clock_period = 5e-9;    ///< 200 MHz-class DSP
  /// Tile the chip out of identical routing rows (>= 2 activates). One
  /// base row of net_count/rows nets on tracks/rows tracks is generated,
  /// then stamped `rows` times with net ids and tracks offset per row —
  /// the standard-cell-row repetition real chips exhibit, and the
  /// workload the reduced-model cache exploits: every replica presents
  /// the same (G, C, B) pencils. Rows are electrically independent
  /// (inter-row track gap exceeds the coupling scan range).
  std::size_t replicate_rows = 1;
  /// Multiplicative receiver-load jitter across replicated rows (0 keeps
  /// replicas bit-identical). Each stamped net's receiver_cap is scaled
  /// by (1 + skew*u), u in [-1, 1] deterministic in the final net id —
  /// low-repetition workloads where exact model fingerprints never
  /// re-match, but a tolerance-canonical key with tol >= skew still
  /// does. Only meaningful with replicate_rows >= 2.
  double cluster_repeat_skew = 0.0;
};

/// Generates the design. Deterministic in the seed.
ChipDesign generate_dsp_chip(const CellLibrary& library,
                             const DspChipOptions& options = {});

/// Builds the pruning database from a design: lumped ground caps and wire
/// resistance from the extractor rules, effective driver resistances from
/// the characterized models (tri-state buses use the strongest driver, the
/// paper's conservative rule).
std::vector<NetSummary> chip_net_summaries(const ChipDesign& design,
                                           const Extractor& extractor,
                                           CharacterizedLibrary& chars);

}  // namespace xtv
