// Symmetric eigendecomposition (cyclic Jacobi).
//
// The reduced-system integrator diagonalizes the (small, symmetric) reduced
// matrix T = Q^T D Q once per cluster (paper Section 3, eq. (5)); Jacobi is
// simple, unconditionally stable, and more than fast enough at reduced
// orders of a few tens.
#pragma once

#include "linalg/dense_matrix.h"

namespace xtv {

/// Result of a symmetric eigendecomposition A = Q^T diag(d) Q, where the
/// rows of Q are orthonormal eigenvectors (i.e. Q A Q^T = diag(d)).
struct SymEigen {
  Vector eigenvalues;  ///< ascending order
  DenseMatrix q;       ///< row i is the eigenvector for eigenvalues[i]
};

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method. The input is symmetrized as (A + A^T)/2 first, so tiny
/// asymmetries from accumulation do not matter. Converges to off-diagonal
/// Frobenius norm <= tol * ||A||_F. max_sweeps is a HARD cap: a matrix
/// still above the target after that many full cyclic sweeps raises the
/// typed, ladder-recoverable NumericalError(kNoConvergence) instead of
/// returning silently inaccurate eigenvalues (or spinning between the
/// caller's CancelToken polls).
SymEigen sym_eigen(const DenseMatrix& a, double tol = 1e-14,
                   int max_sweeps = 64);

}  // namespace xtv
