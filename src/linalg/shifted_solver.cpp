#include "linalg/shifted_solver.h"

#include <stdexcept>

#include "linalg/ordering.h"
#include "util/status.h"

namespace xtv {

ShiftedSparseSolver::ShiftedSparseSolver(SparseMatrix g, SparseMatrix c)
    : n_(g.rows()), g_(std::move(g)), c_(std::move(c)) {
  if (g_.rows() != g_.cols() || c_.rows() != c_.cols() || g_.rows() != c_.rows())
    throw std::runtime_error("ShiftedSparseSolver: G and C must be square and equal-sized");
  // Order on the union pattern (assembled at s = 1 so no entry cancels
  // structurally); every shift shares the same symbolic structure.
  col_order_ = min_degree_order(shifted(1.0));
}

SparseMatrix ShiftedSparseSolver::shifted(double s) const {
  TripletList t(n_, n_);
  for (std::size_t col = 0; col < n_; ++col) {
    for (std::size_t k = g_.col_ptr()[col]; k < g_.col_ptr()[col + 1]; ++k)
      t.add(g_.row_idx()[k], col, g_.values()[k]);
    for (std::size_t k = c_.col_ptr()[col]; k < c_.col_ptr()[col + 1]; ++k)
      t.add(c_.row_idx()[k], col, s * c_.values()[k]);
  }
  return SparseMatrix::from_triplets(t);
}

DenseMatrix ShiftedSparseSolver::solve(double s, const DenseMatrix& b) const {
  if (b.rows() != n_)
    throw std::runtime_error("ShiftedSparseSolver: rhs row count mismatch");
  SparseLu lu(shifted(s), col_order_);
  DenseMatrix x(n_, b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j)
    x.set_column(j, lu.solve(b.column(j)));
  return x;
}

DenseMatrix ShiftedSparseSolver::transfer(double s, const DenseMatrix& b) const {
  return matmul_at_b(b, solve(s, b));
}

}  // namespace xtv
