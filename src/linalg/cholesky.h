// Dense Cholesky factorization of symmetric positive definite matrices.
//
// SyMPVL's first step collapses the MNA pair (G, C) into a single symmetric
// operator via G = F^T F (paper Section 3, eq. (1)->(2)); this class provides
// that factorization together with the triangular solves needed to apply
// F^{-1} and F^{-T} without ever forming A = F^{-T} C F^{-1} column products
// through an explicit inverse.
#pragma once

#include "linalg/dense_matrix.h"

namespace xtv {

/// Upper-triangular Cholesky: G = F^T F with F upper triangular and positive
/// diagonal. (Equivalent to the conventional lower form L L^T with F = L^T;
/// the upper form matches the paper's notation x = F v.)
class Cholesky {
 public:
  /// Factors the SPD matrix `g`. Throws std::runtime_error if `g` is not
  /// positive definite within `tol` (relative to the largest diagonal).
  explicit Cholesky(const DenseMatrix& g, double tol = 1e-13);

  std::size_t size() const { return f_.rows(); }

  /// The factor F (upper triangular).
  const DenseMatrix& factor() const { return f_; }

  /// x = F v (upper-triangular multiply).
  Vector apply_f(const Vector& v) const;

  /// Solves F x = b (back substitution), i.e. x = F^{-1} b.
  Vector solve_f(const Vector& b) const;

  /// Solves F^T x = b (forward substitution), i.e. x = F^{-T} b.
  Vector solve_ft(const Vector& b) const;

  /// Solves G x = b via the two triangular solves.
  Vector solve(const Vector& b) const;

  /// Column-wise solve_ft of a matrix: returns F^{-T} B.
  DenseMatrix solve_ft(const DenseMatrix& b) const;

 private:
  DenseMatrix f_;
};

}  // namespace xtv
