#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace xtv {

void TripletList::add(std::size_t r, std::size_t c, double v) {
  assert(r < rows_ && c < cols_);
  rows_idx_.push_back(r);
  cols_idx_.push_back(c);
  values_.push_back(v);
}

SparseMatrix SparseMatrix::from_triplets(const TripletList& t, bool drop_zeros) {
  SparseMatrix m;
  m.rows_ = t.rows_;
  m.cols_ = t.cols_;

  // Count entries per column, then bucket.
  std::vector<std::size_t> count(t.cols_ + 1, 0);
  for (std::size_t c : t.cols_idx_) ++count[c + 1];
  std::partial_sum(count.begin(), count.end(), count.begin());

  std::vector<std::size_t> rows(t.entries());
  std::vector<double> vals(t.entries());
  {
    std::vector<std::size_t> next(count.begin(), count.end() - 1);
    for (std::size_t k = 0; k < t.entries(); ++k) {
      const std::size_t slot = next[t.cols_idx_[k]]++;
      rows[slot] = t.rows_idx_[k];
      vals[slot] = t.values_[k];
    }
  }

  // Per column: sort by row, merge duplicates.
  m.col_ptr_.assign(t.cols_ + 1, 0);
  for (std::size_t c = 0; c < t.cols_; ++c) {
    const std::size_t lo = count[c];
    const std::size_t hi = count[c + 1];
    std::vector<std::size_t> order(hi - lo);
    std::iota(order.begin(), order.end(), lo);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return rows[a] < rows[b]; });

    std::size_t emitted = 0;
    for (std::size_t oi = 0; oi < order.size();) {
      const std::size_t r = rows[order[oi]];
      double v = 0.0;
      while (oi < order.size() && rows[order[oi]] == r) v += vals[order[oi++]];
      if (drop_zeros && v == 0.0) continue;
      m.row_idx_.push_back(r);
      m.values_.push_back(v);
      ++emitted;
    }
    m.col_ptr_[c + 1] = m.col_ptr_[c] + emitted;
  }
  return m;
}

Vector SparseMatrix::matvec(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    if (xc == 0.0) continue;
    for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p)
      y[row_idx_[p]] += values_[p] * xc;
  }
  return y;
}

Vector SparseMatrix::matvec_transposed(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    double s = 0.0;
    for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p)
      s += values_[p] * x[row_idx_[p]];
    y[c] = s;
  }
  return y;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  const auto begin = row_idx_.begin() + static_cast<long>(col_ptr_[c]);
  const auto end = row_idx_.begin() + static_cast<long>(col_ptr_[c + 1]);
  const auto it = std::lower_bound(begin, end, r);
  if (it == end || *it != r) return 0.0;
  return values_[static_cast<std::size_t>(it - row_idx_.begin())];
}

DenseMatrix SparseMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t c = 0; c < cols_; ++c)
    for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p)
      d(row_idx_[p], c) += values_[p];
  return d;
}

}  // namespace xtv
