// Dense matrix/vector kernels.
//
// Post-pruning coupling clusters are small (tens to a few hundred nodes), so
// the model-order-reduction pipeline (Cholesky, Lanczos, eigen) runs on dense
// storage. Row-major `DenseMatrix` plus free-function BLAS-1/2/3 style
// helpers cover everything the MOR and reduced-simulation code needs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/resource.h"
#include "util/workspace.h"

namespace xtv {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles. Storage is charged against the
/// thread's active resource::ClusterScope (if any), so an over-budget
/// cluster raises the typed kResourceExceeded at the allocation that
/// breaches — before the allocation happens. Physical storage is checked
/// out of the thread's workspace arena and recycled on destruction, so
/// per-victim hot loops stop round-tripping the allocator; the logical
/// MemCharge is unaffected by pooling.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), charge_(rows * cols * sizeof(double)) {
    workspace::acquire(data_, rows * cols);
  }

  ~DenseMatrix() { workspace::release(data_); }

  DenseMatrix(const DenseMatrix& other)
      : rows_(other.rows_), cols_(other.cols_), charge_(other.charge_) {
    workspace::acquire(data_, other.data_.size());
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  }

  DenseMatrix& operator=(const DenseMatrix& other) {
    if (this != &other) {
      DenseMatrix tmp(other);  // may throw (budget) before we change *this
      *this = std::move(tmp);
    }
    return *this;
  }

  DenseMatrix(DenseMatrix&& other) noexcept
      : rows_(other.rows_),
        cols_(other.cols_),
        charge_(std::move(other.charge_)),
        data_(std::move(other.data_)) {
    other.rows_ = other.cols_ = 0;
  }

  DenseMatrix& operator=(DenseMatrix&& other) noexcept {
    if (this != &other) {
      workspace::release(data_);
      rows_ = other.rows_;
      cols_ = other.cols_;
      charge_ = std::move(other.charge_);
      data_ = std::move(other.data_);
      other.rows_ = other.cols_ = 0;
    }
    return *this;
  }

  /// Identity matrix of size n.
  static DenseMatrix identity(std::size_t n);

  /// Matrix from nested initializer data (rows of equal length).
  static DenseMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row pointer (row-major contiguous).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// Transposed copy.
  DenseMatrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Maximum |a_ij - b_ij|; matrices must have equal shape.
  double max_abs_diff(const DenseMatrix& other) const;

  /// Column c as a vector.
  Vector column(std::size_t c) const;
  /// Overwrites column c.
  void set_column(std::size_t c, const Vector& v);

  /// Human-readable rendering (for debugging/tests).
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Declared before data_: the budget check runs (and may throw) before
  // the storage is allocated, and releases after it is freed.
  resource::MemCharge charge_;
  std::vector<double> data_;
};

/// y = A * x. Requires x.size() == A.cols().
Vector matvec(const DenseMatrix& a, const Vector& x);

/// y = A * x into caller-owned storage (resized; same arithmetic as
/// matvec). Lets hot loops reuse scratch instead of allocating per call.
void matvec_into(const DenseMatrix& a, const Vector& x, Vector& y);

/// y = A^T * x. Requires x.size() == A.rows().
Vector matvec_transposed(const DenseMatrix& a, const Vector& x);

/// y = A^T * x into caller-owned storage (resized; same arithmetic as
/// matvec_transposed).
void matvec_transposed_into(const DenseMatrix& a, const Vector& x, Vector& y);

/// C = A * B.
DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

/// C = A^T * B.
DenseMatrix matmul_at_b(const DenseMatrix& a, const DenseMatrix& b);

/// Dot product; vectors must have equal length.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// y += alpha * x (in place).
void axpy(double alpha, const Vector& x, Vector& y);

/// v *= alpha (in place).
void scale(Vector& v, double alpha);

/// Maximum |a_i - b_i|; vectors must have equal length.
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace xtv
