// Dense matrix/vector kernels.
//
// Post-pruning coupling clusters are small (tens to a few hundred nodes), so
// the model-order-reduction pipeline (Cholesky, Lanczos, eigen) runs on dense
// storage. Row-major `DenseMatrix` plus free-function BLAS-1/2/3 style
// helpers cover everything the MOR and reduced-simulation code needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/resource.h"

namespace xtv {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles. Storage is charged against the
/// thread's active resource::ClusterScope (if any), so an over-budget
/// cluster raises the typed kResourceExceeded at the allocation that
/// breaches — before the allocation happens.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        charge_(rows * cols * sizeof(double)),
        data_(rows * cols, 0.0) {}

  /// Identity matrix of size n.
  static DenseMatrix identity(std::size_t n);

  /// Matrix from nested initializer data (rows of equal length).
  static DenseMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row pointer (row-major contiguous).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// Transposed copy.
  DenseMatrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Maximum |a_ij - b_ij|; matrices must have equal shape.
  double max_abs_diff(const DenseMatrix& other) const;

  /// Column c as a vector.
  Vector column(std::size_t c) const;
  /// Overwrites column c.
  void set_column(std::size_t c, const Vector& v);

  /// Human-readable rendering (for debugging/tests).
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Declared before data_: the budget check runs (and may throw) before
  // the storage is allocated, and releases after it is freed.
  resource::MemCharge charge_;
  std::vector<double> data_;
};

/// y = A * x. Requires x.size() == A.cols().
Vector matvec(const DenseMatrix& a, const Vector& x);

/// y = A^T * x. Requires x.size() == A.rows().
Vector matvec_transposed(const DenseMatrix& a, const Vector& x);

/// C = A * B.
DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

/// C = A^T * B.
DenseMatrix matmul_at_b(const DenseMatrix& a, const DenseMatrix& b);

/// Dot product; vectors must have equal length.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// y += alpha * x (in place).
void axpy(double alpha, const Vector& x, Vector& y);

/// v *= alpha (in place).
void scale(Vector& v, double alpha);

/// Maximum |a_i - b_i|; vectors must have equal length.
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace xtv
