// Sparse LU factorization (left-looking Gilbert–Peierls with partial
// pivoting), in the spirit of the kernels inside production circuit
// simulators.
//
// The SPICE-class baseline engine factors the MNA Jacobian at every Newton
// iteration; extracted nets have thousands of nodes but only a handful of
// nonzeros per row, so a sparse left-looking LU with a fill-reducing column
// ordering is the difference between seconds and hours.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace xtv {

/// LU = P A Q factorization with partial row pivoting. Q is a caller-
/// supplied fill-reducing column order (e.g. min_degree_order); P is chosen
/// by threshold-free partial pivoting during the numeric sweep.
class SparseLu {
 public:
  /// Factors `a` (square) with the given column order (empty = identity).
  /// Throws std::runtime_error on structural or numerical singularity.
  explicit SparseLu(const SparseMatrix& a,
                    std::vector<std::size_t> col_order = {});

  std::size_t size() const { return n_; }

  /// Number of stored nonzeros in L + U (a fill metric for ablations).
  std::size_t factor_nnz() const;

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Re-runs the numeric factorization for a matrix with the *same sparsity
  /// pattern* but new values (the common case across Newton iterations and
  /// time steps). Pivot order is recomputed, pattern analysis is redone —
  /// this is a convenience wrapper kept simple on purpose; the symbolic cost
  /// is a small fraction of the numeric cost at our sizes.
  void refactor(const SparseMatrix& a);

 private:
  void factor(const SparseMatrix& a);

  std::size_t n_ = 0;
  std::vector<std::size_t> q_;     // column order: column q_[k] eliminated k-th
  std::vector<long> pinv_;         // row -> pivot position
  // L (unit diagonal implicit) and U in pivot-position space, per column.
  std::vector<std::vector<std::pair<std::size_t, double>>> l_cols_;
  std::vector<std::vector<std::pair<std::size_t, double>>> u_cols_;
  std::vector<double> u_diag_;
};

}  // namespace xtv
