#include "linalg/dense_matrix.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace xtv {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  DenseMatrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double DenseMatrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

Vector DenseMatrix::column(std::size_t c) const {
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void DenseMatrix::set_column(std::size_t c, const Vector& v) {
  assert(v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

std::string DenseMatrix::to_string(int precision) const {
  std::ostringstream out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "% .*e ", precision, (*this)(r, c));
      out << buf;
    }
    out << '\n';
  }
  return out.str();
}

Vector matvec(const DenseMatrix& a, const Vector& x) {
  Vector y;
  matvec_into(a, x, y);
  return y;
}

void matvec_into(const DenseMatrix& a, const Vector& x, Vector& y) {
  assert(x.size() == a.cols());
  y.assign(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += row[c] * x[c];
    y[r] = s;
  }
}

Vector matvec_transposed(const DenseMatrix& a, const Vector& x) {
  Vector y;
  matvec_transposed_into(a, x, y);
  return y;
}

void matvec_transposed_into(const DenseMatrix& a, const Vector& x, Vector& y) {
  assert(x.size() == a.rows());
  y.assign(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
}

DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

DenseMatrix matmul_at_b(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows() == b.rows());
  DenseMatrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row(k);
    const double* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vector& v, double alpha) {
  for (double& x : v) x *= alpha;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace xtv
