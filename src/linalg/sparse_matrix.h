// Compressed-sparse-column matrix storage.
//
// Extracted interconnect is huge and very sparse (paper Section 3: "millions
// of resistors and capacitors"); the SPICE-class baseline engine assembles
// MNA systems into this CSC format and factors them with the sparse LU in
// sparse_lu.h.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.h"

namespace xtv {

/// Coordinate-format accumulation buffer. Duplicate (row, col) entries are
/// summed when compressed — exactly the semantics of MNA stamping.
class TripletList {
 public:
  explicit TripletList(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  /// Adds value v at (r, c); duplicates accumulate.
  void add(std::size_t r, std::size_t c, double v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entries() const { return rows_idx_.size(); }

  friend class SparseMatrix;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> rows_idx_;
  std::vector<std::size_t> cols_idx_;
  std::vector<double> values_;
};

/// Immutable CSC sparse matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Compresses a triplet list: sums duplicates, sorts row indices within
  /// each column, drops explicit zeros produced by cancellation only if
  /// `drop_zeros` is set.
  static SparseMatrix from_triplets(const TripletList& t, bool drop_zeros = false);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return row_idx_.size(); }

  const std::vector<std::size_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::size_t>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A x (dense vector).
  Vector matvec(const Vector& x) const;

  /// y = A^T x.
  Vector matvec_transposed(const Vector& x) const;

  /// Entry lookup (binary search within the column); 0 if not present.
  double at(std::size_t r, std::size_t c) const;

  /// Densifies (for tests on small matrices only).
  DenseMatrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> col_ptr_;  // size cols+1
  std::vector<std::size_t> row_idx_;  // size nnz, ascending within column
  std::vector<double> values_;        // size nnz
};

}  // namespace xtv
