// Shifted sparse solves: factor (G + s C) once per shift and solve many
// right-hand sides.
//
// The a-posteriori MOR certificate (mor/certify.h) needs the EXACT port
// transfer function of an unreduced cluster, H(s) = B^T (G + s C)^{-1} B,
// at a handful of sample frequencies. Clusters are sparse (a few nonzeros
// per row), so each sample is one sparse LU of the shifted pencil plus p
// triangular solves — far cheaper than densifying, and independent of the
// reduction being audited.
#pragma once

#include <cstddef>
#include <memory>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"

namespace xtv {

/// Factors the pencil (G + s C) for caller-chosen real shifts s >= 0 and
/// solves against dense right-hand-side blocks. The union sparsity pattern
/// and the fill-reducing column order are computed once at construction;
/// each shift pays only the numeric factorization.
class ShiftedSparseSolver {
 public:
  /// `g` and `c` must be square and the same size. The min-degree order is
  /// computed on the union pattern so every shift reuses it.
  ShiftedSparseSolver(SparseMatrix g, SparseMatrix c);

  std::size_t size() const { return n_; }

  /// Solves (G + s C) X = B for the dense block `b` (n x k). Throws the
  /// typed NumericalError(kSingularMatrix) when the shifted pencil is
  /// singular at this s (possible at s = 0 for a G without resistive paths
  /// to ground — the certificate treats that as a failed probe).
  DenseMatrix solve(double s, const DenseMatrix& b) const;

  /// Convenience: the p x p port transfer H(s) = B^T (G + s C)^{-1} B.
  DenseMatrix transfer(double s, const DenseMatrix& b) const;

 private:
  /// Assembles G + s C on the union pattern.
  SparseMatrix shifted(double s) const;

  std::size_t n_ = 0;
  SparseMatrix g_;
  SparseMatrix c_;
  std::vector<std::size_t> col_order_;
};

}  // namespace xtv
