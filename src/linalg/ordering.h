// Fill-reducing orderings for sparse factorization.
//
// Circuit matrices factor with dramatically less fill under a minimum-degree
// permutation; this is the classic (non-approximate) minimum-degree
// algorithm on the symmetrized pattern of A, sufficient for the matrix
// sizes this engine factors (single extracted nets and clusters).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse_matrix.h"

namespace xtv {

/// Computes a minimum-degree elimination order on the pattern of A + A^T.
/// Returns `perm` such that column/row perm[k] of A should be eliminated
/// k-th. A must be square.
std::vector<std::size_t> min_degree_order(const SparseMatrix& a);

/// Identity permutation of length n.
std::vector<std::size_t> identity_order(std::size_t n);

/// Returns the inverse permutation: inv[perm[k]] = k.
std::vector<std::size_t> invert_permutation(const std::vector<std::size_t>& perm);

}  // namespace xtv
