#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/fault_injection.h"
#include "util/status.h"

namespace xtv {

SparseLu::SparseLu(const SparseMatrix& a, std::vector<std::size_t> col_order)
    : q_(std::move(col_order)) {
  if (a.rows() != a.cols())
    throw std::runtime_error("SparseLu: matrix must be square");
  n_ = a.rows();
  if (q_.empty()) {
    q_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) q_[i] = i;
  }
  if (q_.size() != n_)
    throw std::runtime_error("SparseLu: column order has wrong length");
  factor(a);
}

void SparseLu::refactor(const SparseMatrix& a) {
  if (a.rows() != n_ || a.cols() != n_)
    throw std::runtime_error("SparseLu::refactor: shape mismatch");
  factor(a);
}

void SparseLu::factor(const SparseMatrix& a) {
  if (XTV_INJECT_FAULT(FaultSite::kSparseLuFactor))
    throw NumericalError(StatusCode::kSingularMatrix,
                         "SparseLu: injected factorization fault");
  pinv_.assign(n_, -1);
  l_cols_.assign(n_, {});
  u_cols_.assign(n_, {});
  u_diag_.assign(n_, 0.0);

  // During factorization, L columns are stored with *original* row indices;
  // they are remapped to pivot positions at the end.
  std::vector<double> x(n_, 0.0);
  std::vector<int> mark(n_, -1);
  std::vector<std::size_t> pattern;        // topological order (reversed DFS finish)
  std::vector<std::size_t> dfs_stack;
  std::vector<std::size_t> dfs_ptr;        // per stack frame: next child index

  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t col = q_[k];
    pattern.clear();

    // --- Symbolic: pattern = Reach_L({rows of A(:,col)}) via DFS. ---
    for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p) {
      const std::size_t root = a.row_idx()[p];
      if (mark[root] == static_cast<int>(k)) continue;
      dfs_stack.assign(1, root);
      dfs_ptr.assign(1, 0);
      mark[root] = static_cast<int>(k);
      static const std::vector<std::pair<std::size_t, double>> kNoChildren;
      while (!dfs_stack.empty()) {
        const std::size_t node = dfs_stack.back();
        const long piv = pinv_[node];
        const auto& children =
            (piv >= 0) ? l_cols_[static_cast<std::size_t>(piv)] : kNoChildren;
        bool descended = false;
        std::size_t& ptr = dfs_ptr.back();
        while (ptr < children.size()) {
          const std::size_t child = children[ptr].first;
          ++ptr;
          if (mark[child] != static_cast<int>(k)) {
            mark[child] = static_cast<int>(k);
            dfs_stack.push_back(child);
            dfs_ptr.push_back(0);
            descended = true;
            break;
          }
        }
        if (!descended && ptr >= children.size()) {
          pattern.push_back(node);  // post-order
          dfs_stack.pop_back();
          dfs_ptr.pop_back();
        }
      }
    }
    // Topological order = reverse post-order.
    std::reverse(pattern.begin(), pattern.end());

    // --- Numeric: x = L \ A(:,col) over the pattern. ---
    for (std::size_t i : pattern) x[i] = 0.0;
    for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p)
      x[a.row_idx()[p]] = a.values()[p];
    for (std::size_t i : pattern) {
      const long piv = pinv_[i];
      if (piv < 0) continue;  // row not yet pivotal: no elimination from it
      const double xi = x[i];
      if (xi == 0.0) continue;
      for (const auto& [r, lv] : l_cols_[static_cast<std::size_t>(piv)])
        x[r] -= lv * xi;
    }

    // --- Partial pivot among non-pivotal rows. ---
    std::size_t ipiv = n_;
    double best = 0.0;
    for (std::size_t i : pattern) {
      if (pinv_[i] >= 0) continue;
      const double v = std::fabs(x[i]);
      if (v > best) {
        best = v;
        ipiv = i;
      }
    }
    if (ipiv == n_ || best <= 0.0)
      throw NumericalError(StatusCode::kSingularMatrix,
                           "SparseLu: matrix is singular at column " +
                               std::to_string(col));

    const double pivot = x[ipiv];
    pinv_[ipiv] = static_cast<long>(k);
    u_diag_[k] = pivot;

    for (std::size_t i : pattern) {
      if (i == ipiv) continue;
      const long piv = pinv_[i];
      if (piv >= 0 && static_cast<std::size_t>(piv) != k) {
        // Row already pivotal: entry of U at (position piv, column k).
        if (x[i] != 0.0)
          u_cols_[k].emplace_back(static_cast<std::size_t>(piv), x[i]);
      } else if (piv < 0) {
        // Below the diagonal: entry of L (original row index, remapped later).
        if (x[i] != 0.0) l_cols_[k].emplace_back(i, x[i] / pivot);
      }
    }
  }

  // Remap L row indices to pivot positions.
  for (auto& col : l_cols_)
    for (auto& [r, v] : col) {
      assert(pinv_[r] >= 0);
      r = static_cast<std::size_t>(pinv_[r]);
    }
}

std::size_t SparseLu::factor_nnz() const {
  std::size_t nnz = n_;  // U diagonal
  for (const auto& c : l_cols_) nnz += c.size();
  for (const auto& c : u_cols_) nnz += c.size();
  return nnz;
}

Vector SparseLu::solve(const Vector& b) const {
  assert(b.size() == n_);
  Vector y(n_, 0.0);
  // Apply row permutation: y = P b.
  for (std::size_t i = 0; i < n_; ++i)
    y[static_cast<std::size_t>(pinv_[i])] = b[i];
  // Forward: L y (unit diagonal).
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = y[k];
    if (yk == 0.0) continue;
    for (const auto& [pos, lv] : l_cols_[k]) y[pos] -= lv * yk;
  }
  // Backward: U x = y.
  for (std::size_t kk = n_; kk-- > 0;) {
    y[kk] /= u_diag_[kk];
    const double yk = y[kk];
    if (yk == 0.0) continue;
    for (const auto& [pos, uv] : u_cols_[kk]) y[pos] -= uv * yk;
  }
  // Undo column permutation: x[q[k]] = y[k].
  Vector xout(n_);
  for (std::size_t k = 0; k < n_; ++k) xout[q_[k]] = y[k];
  return xout;
}

}  // namespace xtv
