#include "linalg/cholesky.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/fault_injection.h"
#include "util/fp_guard.h"
#include "util/status.h"

namespace xtv {

Cholesky::Cholesky(const DenseMatrix& g, double tol) {
  if (g.rows() != g.cols())
    throw std::runtime_error("Cholesky: matrix must be square");
  if (XTV_INJECT_FAULT(FaultSite::kCholeskyFactor))
    throw NumericalError(StatusCode::kCholeskyBreakdown,
                         "Cholesky: injected factorization fault");
  const std::size_t n = g.rows();
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_diag = std::max(max_diag, std::fabs(g(i, i)));
  const double floor = tol * (max_diag > 0.0 ? max_diag : 1.0);

  // Build the upper factor row by row: F(i,j) for j >= i, so that
  // G = F^T F. This is the classic algorithm on the transposed convention.
  FpKernelGuard fp("cholesky_factor");
  f_ = DenseMatrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double s = g(i, j);
      for (std::size_t k = 0; k < i; ++k) s -= f_(k, i) * f_(k, j);
      if (i == j) {
        if (s <= floor)
          throw NumericalError(StatusCode::kCholeskyBreakdown,
                               "Cholesky: matrix is not positive definite");
        f_(i, i) = std::sqrt(s);
      } else {
        f_(i, j) = s / f_(i, i);
      }
    }
  }
  fp.check();
}

Vector Cholesky::apply_f(const Vector& v) const {
  const std::size_t n = size();
  assert(v.size() == n);
  Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = f_.row(i);
    double s = 0.0;
    for (std::size_t j = i; j < n; ++j) s += row[j] * v[j];
    x[i] = s;
  }
  return x;
}

Vector Cholesky::solve_f(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(b);
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = f_.row(ii);
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= row[j] * x[j];
    x[ii] = s / row[ii];
  }
  return x;
}

Vector Cholesky::solve_ft(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  // F^T is lower triangular with (F^T)(i,j) = F(j,i).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= f_(j, i) * x[j];
    x[i] = s / f_(i, i);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const { return solve_f(solve_ft(b)); }

DenseMatrix Cholesky::solve_ft(const DenseMatrix& b) const {
  assert(b.rows() == size());
  DenseMatrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c)
    x.set_column(c, solve_ft(b.column(c)));
  return x;
}

}  // namespace xtv
