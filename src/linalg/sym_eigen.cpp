#include "linalg/sym_eigen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/status.h"

namespace xtv {

SymEigen sym_eigen(const DenseMatrix& a_in, double tol, int max_sweeps) {
  if (a_in.rows() != a_in.cols())
    throw std::runtime_error("sym_eigen: matrix must be square");
  const std::size_t n = a_in.rows();

  // Work on the symmetrized copy.
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));

  DenseMatrix v = DenseMatrix::identity(n);  // accumulated rotations (rows)
  const double norm = a.frobenius_norm();
  const double target = tol * (norm > 0.0 ? norm : 1.0);

  bool converged = n <= 1;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += 2.0 * a(i, j) * a(i, j);
    if (std::sqrt(off) <= target) {
      converged = true;
      break;
    }

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A <- J^T A J where J rotates the (p, q) plane.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector rows.
        for (std::size_t k = 0; k < n; ++k) {
          const double vpk = v(p, k);
          const double vqk = v(q, k);
          v(p, k) = c * vpk - s * vqk;
          v(q, k) = s * vpk + c * vqk;
        }
      }
    }
  }

  // Hard iteration cap: a matrix that has not met the off-diagonal target
  // after max_sweeps full cyclic sweeps (a pathological T — NaN-poisoned or
  // wildly scaled) must surface as a typed, ladder-recoverable condition,
  // not as silently inaccurate eigenvalues. The final off-norm is
  // recomputed because the loop may have exhausted its budget mid-sweep.
  if (!converged) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += 2.0 * a(i, j) * a(i, j);
    if (!(std::sqrt(off) <= target))
      throw NumericalError(StatusCode::kNoConvergence,
                           "sym_eigen: Jacobi sweep hit the iteration cap (" +
                               std::to_string(max_sweeps) +
                               " sweeps) without converging");
  }

  // Sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

  SymEigen out;
  out.eigenvalues.resize(n);
  out.q = DenseMatrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.eigenvalues[i] = a(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) out.q(i, k) = v(order[i], k);
  }
  return out;
}

}  // namespace xtv
