// Dense LU factorization with partial pivoting.
//
// Used for reduced-system solves and as the reference factorization in
// tests; the SPICE engine itself uses the sparse LU in sparse_lu.h.
#pragma once

#include "linalg/dense_matrix.h"

namespace xtv {

/// PA = LU factorization with partial (row) pivoting. L has unit diagonal
/// and is stored together with U in a single matrix.
class DenseLu {
 public:
  /// Factors `a` (square). Throws std::runtime_error if the matrix is
  /// numerically singular (pivot below the absolute tolerance).
  explicit DenseLu(DenseMatrix a, double pivot_tol = 1e-300);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// det(A) (product of pivots with permutation sign).
  double determinant() const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is row perm_[i] of A
  int perm_sign_ = 1;
};

}  // namespace xtv
