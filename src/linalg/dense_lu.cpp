#include "linalg/dense_lu.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/fault_injection.h"
#include "util/status.h"

namespace xtv {

DenseLu::DenseLu(DenseMatrix a, double pivot_tol) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::runtime_error("DenseLu: matrix must be square");
  if (XTV_INJECT_FAULT(FaultSite::kDenseLuFactor))
    throw NumericalError(StatusCode::kSingularMatrix,
                         "DenseLu: injected factorization fault");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best <= pivot_tol)
      throw NumericalError(StatusCode::kSingularMatrix,
                           "DenseLu: matrix is singular");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      const double* urow = lu_.row(k);
      double* irow = lu_.row(i);
      for (std::size_t c = k + 1; c < n; ++c) irow[c] -= m * urow[c];
    }
  }
}

Vector DenseLu::solve(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  // Forward substitution with permutation: L y = P b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    const double* row = lu_.row(i);
    for (std::size_t j = 0; j < i; ++j) s -= row[j] * x[j];
    x[i] = s;
  }
  // Back substitution: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    const double* row = lu_.row(ii);
    for (std::size_t j = ii + 1; j < n; ++j) s -= row[j] * x[j];
    x[ii] = s / row[ii];
  }
  return x;
}

DenseMatrix DenseLu::solve(const DenseMatrix& b) const {
  assert(b.rows() == size());
  DenseMatrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c)
    x.set_column(c, solve(b.column(c)));
  return x;
}

double DenseLu::determinant() const {
  double d = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace xtv
