#include "linalg/ordering.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xtv {

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  return p;
}

std::vector<std::size_t> invert_permutation(const std::vector<std::size_t>& perm) {
  std::vector<std::size_t> inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) inv[perm[k]] = k;
  return inv;
}

std::vector<std::size_t> min_degree_order(const SparseMatrix& a) {
  if (a.rows() != a.cols())
    throw std::runtime_error("min_degree_order: matrix must be square");
  const std::size_t n = a.rows();

  // Build symmetric adjacency (sorted, deduped, no self loops).
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t p = a.col_ptr()[c]; p < a.col_ptr()[c + 1]; ++p) {
      const std::size_t r = a.row_idx()[p];
      if (r == c) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }

  std::vector<bool> eliminated(n, false);
  std::vector<std::size_t> perm;
  perm.reserve(n);

  // Bucketless minimum-degree: scan for the smallest current degree. For
  // the node counts we factor (<= a few thousand) the quadratic scan is
  // cheap relative to the numeric factorization it accelerates.
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t best_deg = n + 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (eliminated[i]) continue;
      const std::size_t deg = adj[i].size();
      if (deg < best_deg) {
        best_deg = deg;
        best = i;
        if (deg <= 1) break;  // cannot do better than a leaf/isolated node
      }
    }
    assert(best < n);
    eliminated[best] = true;
    perm.push_back(best);

    // Eliminate: connect all still-active neighbors pairwise (clique), and
    // remove `best` from their lists.
    std::vector<std::size_t> active;
    active.reserve(adj[best].size());
    for (std::size_t nb : adj[best])
      if (!eliminated[nb]) active.push_back(nb);

    for (std::size_t nb : active) {
      auto& lst = adj[nb];
      lst.erase(std::remove(lst.begin(), lst.end(), best), lst.end());
      // Merge in the clique (sorted union).
      std::vector<std::size_t> merged;
      merged.reserve(lst.size() + active.size());
      std::merge(lst.begin(), lst.end(), active.begin(), active.end(),
                 std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      merged.erase(std::remove(merged.begin(), merged.end(), nb), merged.end());
      lst = std::move(merged);
    }
    adj[best].clear();
    adj[best].shrink_to_fit();
  }
  return perm;
}

}  // namespace xtv
