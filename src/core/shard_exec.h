// Process-isolated shard execution for chip verification (DESIGN.md §12).
//
// The in-process thread pool (core/parallel.h) shares one address space:
// a single SIGSEGV in a numerical kernel — or an OOM kill — forfeits the
// whole run. For multi-hour chip audits the verifier can instead fork N
// worker *processes*, each assigned a contiguous shard of the eligible
// victims. Fork-without-exec means every worker inherits the fully built
// design, extractor, and characterization tables — no serialization of
// the assignment is needed — and runs the existing per-victim pipeline
// unchanged, streaming findings and heartbeats back over a checksummed
// pipe (core/wire.h) while appending to its own crash-safe shard journal
// (`<journal>.shard<k>`).
//
// The supervisor owns the failure policy — the quarantine ladder:
//
//   1. A worker dies (signal, nonzero exit, heartbeat silence, or wire
//      corruption). The in-flight victim is identified from the journal
//      crash marker, falling back to the last victim-start frame.
//   2. That suspect victim is *quarantined*: retried alone in a fresh
//      process. The rest of the shard restarts in another fresh process,
//      consuming one unit of the shard's restart budget.
//   3. If the solo retry crashes too, the victim is *conceded*: a
//      bound-only process computes its conservative Devgan bound and the
//      supervisor stamps the record FindingStatus::kShardCrashed.
//   4. If even the bound-only process dies, the supervisor synthesizes a
//      maximally pessimistic record (peak = Vdd) itself — pure struct
//      assembly, nothing left to crash.
//
// A shard whose restart budget is exhausted has its remaining victims
// conceded through the same rung-3/4 path. Either way every victim is
// accounted for exactly once, and a crash-free multi-process run merges
// to a result bit-identical to the serial one (findings travel as
// hexfloat journal payloads end to end).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/journal.h"

namespace xtv {

struct ShardExecOptions {
  /// Worker processes to fork (>= 1; the caller gates the 0 case).
  std::size_t processes = 2;
  /// Worker heartbeat period (ms). Silence for 10x this long SIGKILLs the
  /// worker and routes it through the crash ladder. 0 disables stall
  /// monitoring (death is still seen as pipe EOF).
  double heartbeat_ms = 250.0;
  /// Worker restarts a shard may consume before its remaining victims are
  /// conceded to the conservative bound.
  std::size_t max_shard_restarts = 2;
  /// Base journal path; workers write `<base>.shard<k>` (empty = workers
  /// stream only, no shard journals — crash attribution then relies on
  /// victim-start frames alone).
  std::string journal_path;
  /// Options hash stamped into every shard journal header.
  std::uint64_t options_hash = 0;
};

struct ShardExecStats {
  std::size_t worker_crashes = 0;       ///< deaths: signal/exit/stall/corruption
  std::size_t shard_restarts = 0;       ///< shard respawns after a crash
  std::size_t victims_quarantined = 0;  ///< solo fresh-process retries
  /// Total workers spawned == number of `<base>.shard<k>` files written
  /// (k is the spawn index); the caller unlinks [0, spawned) after the
  /// merged journal is finalized.
  std::size_t workers_spawned = 0;
};

/// Hooks the verifier passes in so this module stays ignorant of the
/// analysis pipeline.
struct ShardCallbacks {
  /// WORKER side: analyze one victim. `bound_only` requests the cheap
  /// conservative Devgan bound (concession rung). Returns nullopt when the
  /// victim turns out ineligible (no retained aggressors). Must catch its
  /// own analysis exceptions (returning a kFailed record) — an escaping
  /// exception is a worker crash.
  std::function<std::optional<JournalRecord>(std::size_t victim,
                                             bool bound_only)> analyze;
  /// WORKER side, once per fork, before the victim loop: per-process setup
  /// (RSS watchdog, FP traps). May be null.
  std::function<void()> worker_init;
  /// SUPERVISOR side: synthesize the last-resort pessimistic record for a
  /// victim whose bound-only process also died (peak = Vdd). Must be pure
  /// struct assembly — it cannot be allowed to fail.
  std::function<JournalRecord(std::size_t victim, const std::string& why)>
      concede;
  /// SUPERVISOR side, optional: invoked with each record the moment it
  /// becomes final (streamed, journal-recovered, concession-stamped, or
  /// synthesized) — settle order, not stable net order. Runs on the
  /// supervisor thread, serialized. Must not throw; the serve daemon uses
  /// it to stream findings per-victim while the run is still going.
  std::function<void(const JournalRecord&)> on_result;
  /// SUPERVISOR side, optional: liveness tick, once per poll-loop
  /// iteration (~50 ms) while workers are live. Rate-limit in the callee.
  std::function<void()> on_tick;
};

/// Runs `work` (victim nets, in stable order) across forked worker
/// processes and returns one record per victim, keyed by net. Records of
/// conceded victims arrive stamped FindingStatus::kShardCrashed /
/// StatusCode::kWorkerCrashed with the crash description in `error`.
///
/// The caller must be effectively single-threaded when this is invoked
/// (fork duplicates only the calling thread; a live thread pool in the
/// parent would leave locked mutexes behind in the children).
///
/// Test hooks (env, all off in production):
///   XTV_TEST_CRASH_VICTIM=<net>        worker crashes on reaching <net>
///   XTV_TEST_CRASH_MODE=abort|segv|fpe|exit42   (default abort)
///   XTV_TEST_CRASH_ONCE_FILE=<path>    crash only while <path> is absent
///   XTV_TEST_SHARD_KILL_ON_START=<net>:<times>  supervisor SIGKILLs the
///       worker announcing victim-start for <net>, up to <times> times
std::map<std::size_t, JournalRecord> run_process_shards(
    const std::vector<std::size_t>& work, const ShardCallbacks& callbacks,
    const ShardExecOptions& options, ShardExecStats* stats);

}  // namespace xtv
