#include "core/journal.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>

#include "util/log.h"
#include "util/status.h"
#include "util/subprocess.h"

namespace xtv {

namespace {

// Record format v2 ("xtvj2") appends the certification and audit fields;
// v1 journals fail the magic check and are treated as a torn tail, and a
// resume across the version bump is independently refused by the options
// hash (the new knobs are hashed).
constexpr const char* kMagic = "xtvj2";
constexpr const char* kHeaderMagic = "xtvjh";
constexpr std::size_t kFieldCount = 25;

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Error messages may contain spaces (and in principle any byte); encode
/// them %XX-escaped into a single token. Empty encodes as "-".
std::string escape(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(s.size());
  char buf[4];
  for (std::size_t i = 0; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c <= 0x20 || c > 0x7e || c == '%' || (i == 0 && c == '-')) {
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

bool unescape(const std::string& s, std::string& out) {
  out.clear();
  if (s == "-") return true;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) return false;
      char* end = nullptr;
      const char hex[3] = {s[i + 1], s[i + 2], '\0'};
      const long v = std::strtol(hex, &end, 16);
      if (end != hex + 2) return false;
      out += static_cast<char>(v);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return true;
}

/// Hexfloat formatting round-trips doubles bit-exactly, which is what
/// makes a resumed report identical to an uninterrupted one.
std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_size(const std::string& s, std::size_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// One checksummed journal line for `record` (newline included).
std::string format_record_line(const JournalRecord& record) {
  const std::string payload = journal_encode(record);
  char checksum[24];
  std::snprintf(checksum, sizeof(checksum), "%016" PRIx64, fnv1a64(payload));
  return std::string(kMagic) + ' ' + payload + ' ' + checksum + '\n';
}

std::string format_header_line(std::uint64_t options_hash) {
  char line[40];
  std::snprintf(line, sizeof(line), "%s %016" PRIx64 "\n", kHeaderMagic,
                options_hash);
  return line;
}

/// fsyncs the directory containing `path`, making a just-completed
/// rename() durable (a crash after rename but before the directory hits
/// disk could otherwise resurrect the old name).
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string journal_shard_path(const std::string& base, std::size_t k) {
  return base + ".shard" + std::to_string(k);
}

std::vector<std::size_t> journal_list_shards(const std::string& base) {
  const std::size_t slash = base.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : base.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? base : base.substr(slash + 1)) + ".shard";

  std::vector<std::size_t> shards;
  DIR* d = ::opendir(dir.empty() ? "/" : dir.c_str());
  if (!d) return shards;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
      continue;
    const std::string suffix = name.substr(prefix.size());
    std::size_t k = 0;
    if (!parse_size(suffix, k)) continue;  // e.g. ".shard0.tmp"
    shards.push_back(k);
  }
  ::closedir(d);
  std::sort(shards.begin(), shards.end());
  return shards;
}

std::string journal_encode(const JournalRecord& record) {
  const VictimFinding& f = record.finding;
  std::ostringstream out;
  out << (record.screened ? 1 : 0) << ' ' << f.net << ' '
      << static_cast<int>(f.status) << ' ' << f.retries << ' '
      << static_cast<int>(f.error_code) << ' ' << escape(f.error) << ' '
      << fmt_double(f.peak) << ' ' << fmt_double(f.peak_fraction) << ' '
      << (f.violation ? 1 : 0) << ' ' << f.aggressors_analyzed << ' '
      << f.aggressors_dropped_by_correlation << ' '
      << f.aggressors_dropped_by_window << ' ' << fmt_double(f.cpu_seconds)
      << ' ' << f.reduced_order << ' ' << fmt_double(f.delay_decoupled) << ' '
      << fmt_double(f.delay_coupled) << ' '
      << fmt_double(f.driver_rms_current) << ' ' << (f.em_violation ? 1 : 0)
      << ' ' << (f.certified ? 1 : 0) << ' ' << fmt_double(f.cert_max_rel_err)
      << ' ' << f.cert_order_escalations << ' ' << (f.audited ? 1 : 0) << ' '
      << (f.audit_pass ? 1 : 0) << ' ' << fmt_double(f.audit_peak_err) << ' '
      << fmt_double(f.audit_time_err);
  return out.str();
}

bool journal_decode(const std::string& payload, JournalRecord& record) {
  std::vector<std::string> tok;
  std::istringstream in(payload);
  for (std::string t; in >> t;) tok.push_back(std::move(t));
  if (tok.size() != kFieldCount) return false;

  VictimFinding f;
  std::size_t screened = 0, status = 0, code = 0, violation = 0, em = 0;
  std::size_t certified = 0, audited = 0, audit_pass = 0;
  if (!parse_size(tok[0], screened) || screened > 1) return false;
  if (!parse_size(tok[1], f.net)) return false;
  if (!parse_size(tok[2], status) ||
      status > static_cast<std::size_t>(FindingStatus::kShardCrashed))
    return false;
  if (!parse_size(tok[3], f.retries)) return false;
  if (!parse_size(tok[4], code) ||
      code > static_cast<std::size_t>(StatusCode::kWorkerCrashed))
    return false;
  if (!unescape(tok[5], f.error)) return false;
  if (!parse_double(tok[6], f.peak)) return false;
  if (!parse_double(tok[7], f.peak_fraction)) return false;
  if (!parse_size(tok[8], violation) || violation > 1) return false;
  if (!parse_size(tok[9], f.aggressors_analyzed)) return false;
  if (!parse_size(tok[10], f.aggressors_dropped_by_correlation)) return false;
  if (!parse_size(tok[11], f.aggressors_dropped_by_window)) return false;
  if (!parse_double(tok[12], f.cpu_seconds)) return false;
  if (!parse_size(tok[13], f.reduced_order)) return false;
  if (!parse_double(tok[14], f.delay_decoupled)) return false;
  if (!parse_double(tok[15], f.delay_coupled)) return false;
  if (!parse_double(tok[16], f.driver_rms_current)) return false;
  if (!parse_size(tok[17], em) || em > 1) return false;
  if (!parse_size(tok[18], certified) || certified > 1) return false;
  if (!parse_double(tok[19], f.cert_max_rel_err)) return false;
  if (!parse_size(tok[20], f.cert_order_escalations)) return false;
  if (!parse_size(tok[21], audited) || audited > 1) return false;
  if (!parse_size(tok[22], audit_pass) || audit_pass > 1) return false;
  if (!parse_double(tok[23], f.audit_peak_err)) return false;
  if (!parse_double(tok[24], f.audit_time_err)) return false;

  f.status = static_cast<FindingStatus>(status);
  f.error_code = static_cast<StatusCode>(code);
  f.violation = violation != 0;
  f.em_violation = em != 0;
  f.certified = certified != 0;
  f.audited = audited != 0;
  f.audit_pass = audit_pass != 0;
  record.screened = screened != 0;
  record.finding = std::move(f);
  return true;
}

ResultJournal::LoadResult ResultJournal::load(const std::string& path) {
  LoadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;

  long file_bytes = 0;
  {
    in.seekg(0, std::ios::end);
    file_bytes = static_cast<long>(in.tellg());
    in.seekg(0, std::ios::beg);
  }

  const std::size_t magic_len = std::strlen(kMagic);
  std::string line;
  bool first_line = true;
  while (std::getline(in, line)) {
    // A record is only intact if its terminating newline made it to disk:
    // getline at EOF without the delimiter is exactly the torn-write case.
    const bool has_newline =
        result.valid_bytes + static_cast<long>(line.size()) < file_bytes;
    if (!has_newline) break;
    if (first_line) {
      first_line = false;
      // Optional header: "xtvjh <16-hex options hash>".
      if (line.compare(0, magic_len, kHeaderMagic) == 0 &&
          line.size() > magic_len + 1 && line[magic_len] == ' ') {
        const std::string hash_text = line.substr(magic_len + 1);
        char* end = nullptr;
        const std::uint64_t hash =
            std::strtoull(hash_text.c_str(), &end, 16);
        if (hash_text.empty() ||
            end != hash_text.c_str() + hash_text.size())
          break;
        result.has_header = true;
        result.header_hash = hash;
        result.valid_bytes += static_cast<long>(line.size()) + 1;
        continue;
      }
    }
    // Crash marker ("xtvjc <victim> <signal>"): the worker's signal
    // handler wrote its last words. Read them for attribution, then stop
    // — the process died here, nothing intact can follow, and the marker
    // itself is left OUTSIDE valid_bytes so a resume truncates it.
    if (line.compare(0, std::strlen(subprocess::kCrashMarkerMagic),
                     subprocess::kCrashMarkerMagic) == 0) {
      std::istringstream marker_in(
          line.substr(std::strlen(subprocess::kCrashMarkerMagic)));
      CrashMarker marker;
      if (marker_in >> marker.victim >> marker.sig)
        result.crash_markers.push_back(marker);
      break;
    }
    if (line.compare(0, magic_len, kMagic) != 0 ||
        line.size() <= magic_len + 1 || line[magic_len] != ' ')
      break;
    const std::size_t checksum_at = line.rfind(' ');
    if (checksum_at == std::string::npos || checksum_at <= magic_len) break;
    const std::string payload =
        line.substr(magic_len + 1, checksum_at - magic_len - 1);
    char* end = nullptr;
    const std::string checksum_text = line.substr(checksum_at + 1);
    const std::uint64_t checksum =
        std::strtoull(checksum_text.c_str(), &end, 16);
    if (checksum_text.empty() || end != checksum_text.c_str() + checksum_text.size())
      break;
    if (checksum != fnv1a64(payload)) break;
    JournalRecord record;
    if (!journal_decode(payload, record)) break;
    result.records.push_back(std::move(record));
    result.valid_bytes += static_cast<long>(line.size()) + 1;
  }
  result.tail_discarded = result.valid_bytes < file_bytes;
  return result;
}

ResultJournal::ResultJournal(const std::string& path, bool resume,
                             std::uint64_t options_hash,
                             std::size_t flush_every)
    : path_(path), flush_every_(flush_every > 0 ? flush_every : 1) {
  bool write_header = true;
  if (resume) {
    // Cut the torn tail (if any) so fresh appends follow intact records.
    const LoadResult prior = load(path);
    if (prior.tail_discarded)
      logf(LogLevel::kWarn,
           "journal %s: discarding torn tail past %zu intact record(s) "
           "(interrupted write); resuming from the intact prefix",
           path.c_str(), prior.records.size());
    if (prior.valid_bytes > 0) {
      // Findings are only comparable across runs with identical
      // result-affecting options; the header is the proof.
      if (!prior.has_header)
        throw NumericalError(StatusCode::kInvalidInput,
                             "ResultJournal: cannot resume " + path +
                                 ": journal has no options header");
      if (prior.header_hash != options_hash) {
        char msg[160];
        std::snprintf(msg, sizeof(msg),
                      "journal options hash %016" PRIx64
                      " does not match current options hash %016" PRIx64
                      "; re-run without --resume",
                      prior.header_hash, options_hash);
        throw NumericalError(StatusCode::kInvalidInput,
                             "ResultJournal: cannot resume " + path + ": " +
                                 msg);
      }
    }
    file_ = std::fopen(path.c_str(), prior.valid_bytes > 0 ? "r+b" : "wb");
    if (file_ && prior.valid_bytes > 0) {
      if (ftruncate(fileno(file_), prior.valid_bytes) != 0) {
        std::fclose(file_);
        file_ = nullptr;
      } else {
        std::fseek(file_, 0, SEEK_END);
        write_header = false;  // intact header already on disk
      }
    }
  } else {
    file_ = std::fopen(path.c_str(), "wb");
  }
  if (!file_)
    throw NumericalError(StatusCode::kInvalidInput,
                         "ResultJournal: cannot open " + path);
  if (write_header) {
    const std::string line = format_header_line(options_hash);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
    fsync(fileno(file_));
  }
}

void ResultJournal::write_atomic(const std::string& path,
                                 const std::vector<const JournalRecord*>& records,
                                 std::uint64_t options_hash) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f)
    throw NumericalError(StatusCode::kInvalidInput,
                         "ResultJournal: cannot open " + tmp);
  bool ok = true;
  const std::string header = format_header_line(options_hash);
  ok = ok && std::fwrite(header.data(), 1, header.size(), f) == header.size();
  for (const JournalRecord* rec : records) {
    const std::string line = format_record_line(*rec);
    ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size();
  }
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw NumericalError(StatusCode::kInternal,
                         "ResultJournal: short write finalizing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw NumericalError(StatusCode::kInternal,
                         "ResultJournal: cannot rename " + tmp + " over " + path);
  }
  fsync_parent_dir(path);
}

ResultJournal::~ResultJournal() {
  if (!file_) return;
  std::fflush(file_);
  fsync(fileno(file_));
  std::fclose(file_);
}

void ResultJournal::append(const JournalRecord& record) {
  const std::string line = format_record_line(record);

  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  if (++unflushed_ >= flush_every_) {
    std::fflush(file_);
    fsync(fileno(file_));
    unflushed_ = 0;
  }
}

int ResultJournal::fd() const { return file_ ? fileno(file_) : -1; }

void ResultJournal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(file_);
  fsync(fileno(file_));
  unflushed_ = 0;
}

}  // namespace xtv
