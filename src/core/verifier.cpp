#include "core/verifier.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/analytic_estimates.h"
#include "core/delay_analyzer.h"
#include "util/timer.h"

namespace xtv {

namespace {

/// Keeps the FIRST failure the cluster exhibited: later ladder rungs may
/// fail differently, but the root cause is what the report should show.
void record_first_error(VictimFinding& finding, const std::exception& e) {
  if (!finding.error.empty()) return;
  finding.error = e.what();
  const auto* numerical = dynamic_cast<const NumericalError*>(&e);
  finding.error_code =
      numerical ? numerical->code() : StatusCode::kInternal;
}

}  // namespace

ChipVerifier::ChipVerifier(const Extractor& extractor, CharacterizedLibrary& chars)
    : extractor_(extractor), chars_(chars) {}

std::pair<VictimSpec, std::vector<AggressorSpec>> ChipVerifier::build_victim_cluster(
    const ChipDesign& design, const std::vector<NetSummary>& summaries,
    const PruneResult& pruned, std::size_t victim_net,
    VictimFinding* accounting) const {
  const ChipNet& vnet = design.nets.at(victim_net);

  VictimSpec victim;
  victim.route = vnet.route;
  victim.driver_cell = vnet.driver_cell;  // strongest bus driver pre-applied
  victim.held_high = true;                // worst case analyzed per level; high here
  victim.receiver_cap = vnet.receiver_cap;
  victim.window = vnet.window;

  std::vector<AggressorSpec> aggressors;
  for (const auto& coupling : pruned.retained.at(victim_net)) {
    const ChipNet& anet = design.nets.at(coupling.other);

    // Timing correlation: an aggressor whose switching window cannot
    // overlap the victim's sensitive window cannot hurt it.
    if (!anet.window.overlaps(vnet.window)) {
      if (accounting) ++accounting->aggressors_dropped_by_window;
      continue;
    }
    // Logic correlation: the worst-case glitch on a high victim has every
    // aggressor falling; complementary (Q/QN) aggressors cannot fall
    // together with one already falling — veto against any previously
    // accepted aggressor.
    bool vetoed = false;
    for (const AggressorSpec& prev : aggressors) {
      if (!design.correlations.can_switch_same_direction(prev.net_id,
                                                         coupling.other) ||
          !design.correlations.can_switch_together(prev.net_id, coupling.other)) {
        vetoed = true;
        break;
      }
    }
    // The victim itself may be correlated with the aggressor: a quiet
    // victim is compatible with any aggressor switching, so only mutexes
    // (bus enables) apply.
    if (!vetoed &&
        !design.correlations.can_switch_together(victim_net, coupling.other))
      vetoed = true;
    if (vetoed) {
      if (accounting) ++accounting->aggressors_dropped_by_correlation;
      continue;
    }

    AggressorSpec agg;
    agg.route = anet.route;
    agg.driver_cell = anet.driver_cell;
    agg.rising = !victim.held_high;  // drive toward the opposite rail
    agg.input_slew = anet.input_slew;
    agg.receiver_cap = anet.receiver_cap;
    agg.window = anet.window;
    agg.net_id = coupling.other;
    // Reconstruct the geometric run from the design's coupling list.
    for (const ChipCoupling& c : design.couplings) {
      if ((c.a == victim_net && c.b == coupling.other)) {
        agg.run = {0, 0, c.overlap, c.spacing, c.offset_a, c.offset_b};
        break;
      }
      if (c.b == victim_net && c.a == coupling.other) {
        agg.run = {0, 0, c.overlap, c.spacing, c.offset_b, c.offset_a};
        break;
      }
    }
    if (agg.run.overlap <= 0.0) {
      // Database coupling without geometry (shouldn't happen with the
      // generator) — synthesize an equivalent mid-net run.
      agg.run.overlap = std::min(vnet.route.length, anet.route.length) * 0.5;
      agg.run.spacing = 0.0;
    }
    aggressors.push_back(std::move(agg));
  }
  (void)summaries;
  return {std::move(victim), std::move(aggressors)};
}

VerificationReport ChipVerifier::verify(const ChipDesign& design,
                                        const VerifierOptions& options) {
  VerificationReport report;
  Timer total;

  const std::vector<NetSummary> summaries =
      chip_net_summaries(design, extractor_, chars_);
  const PruneResult pruned = prune_couplings(summaries, options.prune);
  report.prune_stats = pruned.stats;

  GlitchAnalyzer analyzer(extractor_, chars_);
  const double vdd = extractor_.tech().vdd;

  for (std::size_t v = 0; v < design.nets.size(); ++v) {
    if (pruned.retained[v].empty()) continue;
    if (options.latch_inputs_only && !design.nets[v].latch_input) continue;
    if (options.max_victims > 0 && report.victims_analyzed >= options.max_victims)
      break;

    VictimFinding finding;
    finding.net = v;
    bool counted_eligible = false;
    try {
      auto [victim, aggressors] =
          build_victim_cluster(design, summaries, pruned, v, &finding);
      if (aggressors.empty()) continue;
      counted_eligible = true;
      ++report.victims_eligible;

      if (options.use_noise_screen) {
        // Conservative pre-screen: the sum of per-aggressor Devgan bounds
        // caps the combined glitch; below the margin, skip the simulation.
        double bound = 0.0;
        for (const AggressorSpec& agg : aggressors)
          bound += devgan_noise_bound(victim, agg, extractor_, chars_);
        if (bound < options.glitch_threshold * extractor_.tech().vdd) {
          ++report.victims_screened_out;
          continue;
        }
      }

      // Recovery ladder. Rung 0 runs the options untouched so a clean pass
      // is bit-identical to a build without the ladder; each later rung
      // trades accuracy or speed for robustness, and the last (analytic
      // bound) cannot fail, so no cluster is ever silently skipped.
      GlitchResult res;
      bool have_sim = false;
      try {
        res = analyzer.analyze(victim, aggressors, options.glitch);
        have_sim = true;
        finding.status = FindingStatus::kAnalyzed;
      } catch (const std::exception& e) {
        record_first_error(finding, e);
        ++finding.retries;
      }
      if (!have_sim) {
        ++report.victims_retried;
        // Rung 1: halved timestep (Newton on a stiff cluster often
        // converges once the per-step excitation change shrinks).
        GlitchAnalysisOptions retry = options.glitch;
        retry.dt =
            0.5 * (retry.dt > 0.0 ? retry.dt : retry.tstop / 2000.0);
        try {
          res = analyzer.analyze(victim, aggressors, retry);
          have_sim = true;
          finding.status = FindingStatus::kAnalyzedAfterRetry;
        } catch (const std::exception& e) {
          record_first_error(finding, e);
          ++finding.retries;
        }
        // Rung 2: halved timestep + doubled reduced order (a too-small
        // Krylov space shows up as a non-passive or inaccurate model).
        if (!have_sim) {
          const std::size_t base_order =
              retry.mor.max_order > 0 ? retry.mor.max_order
                                      : 8 * (1 + aggressors.size());
          retry.mor.max_order = 2 * base_order;
          try {
            res = analyzer.analyze(victim, aggressors, retry);
            have_sim = true;
            finding.status = FindingStatus::kAnalyzedAfterRetry;
          } catch (const std::exception& e) {
            record_first_error(finding, e);
            ++finding.retries;
          }
        }
        // Rung 3: full unreduced-cluster simulation on the golden engine —
        // slow, but immune to every reduction-side breakdown.
        if (!have_sim) {
          try {
            res = analyzer.analyze_spice(victim, aggressors, options.glitch);
            have_sim = true;
            finding.status = FindingStatus::kFellBackToFullSim;
          } catch (const std::exception& e) {
            record_first_error(finding, e);
            ++finding.retries;
          }
        }
      }
      if (have_sim) {
        finding.peak = res.peak;
        finding.peak_fraction = std::fabs(res.peak) / vdd;
        finding.violation = finding.peak_fraction >= options.glitch_threshold;
        finding.aggressors_analyzed = aggressors.size();
        finding.cpu_seconds = res.cpu_seconds;
        finding.reduced_order = res.reduced_order;
        finding.driver_rms_current = res.victim_driver_rms_current;
        finding.em_violation =
            options.em_rms_limit > 0.0 &&
            res.victim_driver_rms_current > options.em_rms_limit;

        if (options.analyze_delay_change) {
          // Timing recalculation: the victim as a SWITCHING net, aggressors
          // forced opposite (worst case) vs the decoupled classic load.
          DelayAnalyzer delays(extractor_, chars_);
          DelayAnalysisOptions dopt;
          dopt.driver_model = options.glitch.driver_model ==
                                      DriverModelKind::kNonlinearTable
                                  ? DriverModelKind::kNonlinearTable
                                  : DriverModelKind::kLinearResistor;
          dopt.victim_input_slew = design.nets[v].input_slew;
          dopt.mor = options.glitch.mor;
          try {
            const CoupledDelayResult d =
                delays.analyze(victim, /*victim_rising=*/true, aggressors, dopt);
            finding.delay_decoupled = d.delay_decoupled;
            finding.delay_coupled = d.delay_coupled;
          } catch (const std::exception&) {
            // A victim that never completes its transition within the window
            // is reported with zeroed delays rather than aborting the audit.
          }
        }
      } else {
        // Rung 4: Devgan analytic bound. Conservative (each term is an
        // upper bound on that aggressor's contribution), so the reported
        // peak is >= the true peak and a pass here is a real pass.
        double bound = 0.0;
        for (const AggressorSpec& agg : aggressors)
          bound += devgan_noise_bound(victim, agg, extractor_, chars_);
        bound = std::min(bound, vdd);
        finding.status = FindingStatus::kFellBackToBound;
        finding.peak = victim.held_high ? -bound : bound;
        finding.peak_fraction = bound / vdd;
        finding.violation = finding.peak_fraction >= options.glitch_threshold;
        finding.aggressors_analyzed = aggressors.size();
      }
    } catch (const std::exception& e) {
      // Per-cluster isolation: even a failure outside the ladder (cluster
      // construction, screening, the bound itself) must not abort the chip
      // sweep. The victim is reported maximally pessimistically for manual
      // review.
      record_first_error(finding, e);
      if (!counted_eligible) ++report.victims_eligible;
      finding.status = FindingStatus::kFailed;
      finding.peak = -vdd;
      finding.peak_fraction = 1.0;
      finding.violation = true;
    }

    report.findings.push_back(finding);
    switch (finding.status) {
      case FindingStatus::kAnalyzed:
      case FindingStatus::kAnalyzedAfterRetry:
        ++report.victims_analyzed;
        break;
      case FindingStatus::kFellBackToFullSim:
      case FindingStatus::kFellBackToBound:
        ++report.victims_fallback;
        break;
      case FindingStatus::kFailed:
        ++report.victims_failed;
        break;
    }
    if (finding.violation) ++report.violations;
  }
  report.total_cpu_seconds = total.elapsed();
  return report;
}

std::string VerificationReport::to_string() const {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "pruning: %zu nets, couplings %zu -> %zu, avg cluster %.1f -> %.1f "
                "(max %zu)\n",
                prune_stats.nets, prune_stats.couplings_before,
                prune_stats.couplings_after, prune_stats.avg_cluster_before,
                prune_stats.avg_cluster_after, prune_stats.max_cluster_after);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "analyzed %zu victims (%zu screened out analytically), "
                "%zu violations, %.2f s total\n",
                victims_analyzed, victims_screened_out, violations,
                total_cpu_seconds);
  out << buf;
  if (victims_retried + victims_fallback + victims_failed > 0) {
    std::snprintf(buf, sizeof(buf),
                  "recovery: %zu of %zu victims retried, %zu fell back "
                  "(full-sim or bound), %zu failed every rung\n",
                  victims_retried, victims_eligible, victims_fallback,
                  victims_failed);
    out << buf;
  }
  for (const auto& f : findings) {
    if (!f.violation) continue;
    std::snprintf(buf, sizeof(buf),
                  "  VIOLATION net %zu: peak %+.3f V (%.0f%% of Vdd), "
                  "%zu aggressors (dropped: %zu window, %zu correlation)%s%s\n",
                  f.net, f.peak, 100.0 * f.peak_fraction, f.aggressors_analyzed,
                  f.aggressors_dropped_by_window,
                  f.aggressors_dropped_by_correlation,
                  f.status == FindingStatus::kAnalyzed ? "" : " via ",
                  f.status == FindingStatus::kAnalyzed
                      ? ""
                      : finding_status_name(f.status));
    out << buf;
  }
  return out.str();
}

}  // namespace xtv
