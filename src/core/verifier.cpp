#include "core/verifier.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <tuple>

#include "core/journal.h"
#include "core/pipeline.h"
#include "core/shard_exec.h"
#include "mor/model_cache.h"
#include "util/fault_injection.h"
#include "util/log.h"
#include "util/resource.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xtv {

namespace {

bool counts_as_analyzed(FindingStatus s) {
  return s == FindingStatus::kAnalyzed ||
         s == FindingStatus::kAnalyzedAfterRetry ||
         s == FindingStatus::kCertified;
}

/// FNV-1a accumulator for options hashing. Doubles hash by bit pattern:
/// two option sets are "the same" exactly when every field is bit-equal,
/// which is also the precondition for bit-identical findings.
struct OptionsHasher {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    bytes(&bits, sizeof(bits));
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
};

}  // namespace

std::uint64_t options_result_hash(const VerifierOptions& o) {
  OptionsHasher h;
  h.f64(o.prune.ratio_threshold);
  h.f64(o.prune.abs_floor);
  h.u64(o.prune.max_aggressors);
  h.u64(o.prune.use_driver_strength ? 1 : 0);
  h.u64(static_cast<std::uint64_t>(o.glitch.driver_model));
  h.f64(o.glitch.fixed_resistance);
  h.f64(o.glitch.tstop);
  h.f64(o.glitch.dt);
  h.u64(o.glitch.mor.max_order);
  h.f64(o.glitch.mor.deflation_tol);
  h.u64(o.glitch.align_aggressors ? 1 : 0);
  h.u64(o.glitch.spice_exploit_linearity ? 1 : 0);
  h.f64(o.glitch.default_switch_time);
  h.f64(o.glitch_threshold);
  h.u64(o.latch_inputs_only ? 1 : 0);
  h.u64(o.max_victims);
  h.u64(o.analyze_delay_change ? 1 : 0);
  h.u64(o.use_noise_screen ? 1 : 0);
  h.f64(o.em_rms_limit);
  // Budgets affect results (they decide which findings become bounds);
  // threads/journal_path/resume affect only scheduling and are excluded.
  h.f64(o.cluster_deadline_ms);
  // The model cache reuses bit-identical payloads, but a cache hit skips
  // the Krylov-stage memory charges, so under a cluster memory budget the
  // cache on/off decision can steer a finding between kAnalyzed and
  // kResourceBound — result-affecting, hence hashed.
  h.f64(o.model_cache_mb);
  h.f64(o.cluster_mem_mb);
  h.f64(o.global_mem_soft_mb);
  // Certification and audit knobs all steer statuses, escalations, or the
  // audit fields of findings.
  h.u64(o.certify ? 1 : 0);
  h.f64(o.cert_rel_tol);
  h.u64(o.cert_freqs);
  h.u64(o.max_mor_order);
  h.u64(o.mor_order_step);
  h.f64(o.audit_fraction);
  h.u64(o.audit_seed);
  h.f64(o.audit_peak_tol_frac);
  h.f64(o.audit_time_tol);
  // Canonical caching changes which payload serves a victim (certified-
  // equivalent, not bit-identical), so both knobs are result-affecting.
  // Appended at the end to keep the field order stable for older fields;
  // batch_width is deliberately absent — like threads, it only schedules.
  h.u64(o.canonical_cache ? 1 : 0);
  h.f64(o.canonical_cache_tol);
  return h.h;
}

bool parse_finding_status(const std::string& name, FindingStatus* out) {
  static constexpr struct {
    const char* enumerator;
    FindingStatus status;
  } kTable[] = {
      {"kAnalyzed", FindingStatus::kAnalyzed},
      {"kAnalyzedAfterRetry", FindingStatus::kAnalyzedAfterRetry},
      {"kFellBackToFullSim", FindingStatus::kFellBackToFullSim},
      {"kFellBackToBound", FindingStatus::kFellBackToBound},
      {"kDeadlineBound", FindingStatus::kDeadlineBound},
      {"kResourceBound", FindingStatus::kResourceBound},
      {"kFailed", FindingStatus::kFailed},
      {"kCertified", FindingStatus::kCertified},
      {"kAccuracyBound", FindingStatus::kAccuracyBound},
      {"kShardCrashed", FindingStatus::kShardCrashed},
  };
  for (const auto& entry : kTable) {
    if (name == entry.enumerator ||
        name == finding_status_name(entry.status)) {
      *out = entry.status;
      return true;
    }
  }
  return false;
}

ChipVerifier::ChipVerifier(const Extractor& extractor, CharacterizedLibrary& chars)
    : extractor_(extractor), chars_(chars) {}

std::pair<VictimSpec, std::vector<AggressorSpec>> ChipVerifier::build_victim_cluster(
    const ChipDesign& design, const std::vector<NetSummary>& summaries,
    const PruneResult& pruned, std::size_t victim_net,
    VictimFinding* accounting) const {
  const ChipNet& vnet = design.nets.at(victim_net);

  VictimSpec victim;
  victim.route = vnet.route;
  victim.driver_cell = vnet.driver_cell;  // strongest bus driver pre-applied
  victim.held_high = true;                // worst case analyzed per level; high here
  victim.receiver_cap = vnet.receiver_cap;
  victim.window = vnet.window;

  std::vector<AggressorSpec> aggressors;
  for (const auto& coupling : pruned.retained.at(victim_net)) {
    const ChipNet& anet = design.nets.at(coupling.other);

    // Timing correlation: an aggressor whose switching window cannot
    // overlap the victim's sensitive window cannot hurt it.
    if (!anet.window.overlaps(vnet.window)) {
      if (accounting) ++accounting->aggressors_dropped_by_window;
      continue;
    }
    // Logic correlation: the worst-case glitch on a high victim has every
    // aggressor falling; complementary (Q/QN) aggressors cannot fall
    // together with one already falling — veto against any previously
    // accepted aggressor.
    bool vetoed = false;
    for (const AggressorSpec& prev : aggressors) {
      if (!design.correlations.can_switch_same_direction(prev.net_id,
                                                         coupling.other) ||
          !design.correlations.can_switch_together(prev.net_id, coupling.other)) {
        vetoed = true;
        break;
      }
    }
    // The victim itself may be correlated with the aggressor: a quiet
    // victim is compatible with any aggressor switching, so only mutexes
    // (bus enables) apply.
    if (!vetoed &&
        !design.correlations.can_switch_together(victim_net, coupling.other))
      vetoed = true;
    if (vetoed) {
      if (accounting) ++accounting->aggressors_dropped_by_correlation;
      continue;
    }

    AggressorSpec agg;
    agg.route = anet.route;
    agg.driver_cell = anet.driver_cell;
    agg.rising = !victim.held_high;  // drive toward the opposite rail
    agg.input_slew = anet.input_slew;
    agg.receiver_cap = anet.receiver_cap;
    agg.window = anet.window;
    agg.net_id = coupling.other;
    // Reconstruct the geometric run from the design's coupling list.
    for (const ChipCoupling& c : design.couplings) {
      if ((c.a == victim_net && c.b == coupling.other)) {
        agg.run = {0, 0, c.overlap, c.spacing, c.offset_a, c.offset_b};
        break;
      }
      if (c.b == victim_net && c.a == coupling.other) {
        agg.run = {0, 0, c.overlap, c.spacing, c.offset_b, c.offset_a};
        break;
      }
    }
    if (agg.run.overlap <= 0.0) {
      // Database coupling without geometry (shouldn't happen with the
      // generator) — synthesize an equivalent mid-net run.
      agg.run.overlap = std::min(vnet.route.length, anet.route.length) * 0.5;
      agg.run.spacing = 0.0;
    }
    aggressors.push_back(std::move(agg));
  }
  (void)summaries;
  return {std::move(victim), std::move(aggressors)};
}

// --- ChipVerifier::Prepared -------------------------------------------

struct ChipVerifier::Prepared::Impl {
  const ChipDesign& design;
  const VerifierOptions& options;
  std::vector<NetSummary> summaries;
  PruneResult pruned;
  GlitchAnalyzer analyzer;
  std::unique_ptr<ModelCache> model_cache;
  PipelineContext ctx;
  std::unique_ptr<VictimPipeline> pipeline;
  std::vector<std::size_t> candidates;
  std::size_t shed_threshold = 0;
  double vdd = 0.0;

  Impl(ChipVerifier& verifier, const ChipDesign& d, const VerifierOptions& o)
      : design(d),
        options(o),
        summaries(chip_net_summaries(d, verifier.extractor_, verifier.chars_)),
        pruned(prune_couplings(summaries, o.prune)),
        analyzer(verifier.extractor_, verifier.chars_),
        vdd(verifier.extractor_.tech().vdd) {
    // Shared reduced-model cache (off by default; see VerifierOptions).
    // Hits are bit-identical to fresh computation, so sharing it across
    // worker threads cannot perturb findings.
    if (o.model_cache_mb > 0.0)
      model_cache = std::make_unique<ModelCache>(
          static_cast<std::size_t>(o.model_cache_mb * 1024.0 * 1024.0));

    // Every victim runs through the staged pipeline (core/pipeline.h);
    // one stateless pipeline instance serves all workers.
    ctx.verifier = &verifier;
    ctx.extractor = &verifier.extractor_;
    ctx.chars = &verifier.chars_;
    ctx.analyzer = &analyzer;
    ctx.design = &d;
    ctx.summaries = &summaries;
    ctx.pruned = &pruned;
    ctx.options = &o;
    ctx.model_cache = model_cache.get();
    pipeline = std::make_unique<VictimPipeline>(ctx);

    // Candidate victims in stable net order — the report order,
    // regardless of which worker (or which prior run) produced each
    // result.
    for (std::size_t v = 0; v < d.nets.size(); ++v) {
      if (pruned.retained[v].empty()) continue;
      if (o.latch_inputs_only && !d.nets[v].latch_input) continue;
      candidates.push_back(v);
    }
    set_shed_from(candidates);
  }

  std::size_t footprint(std::size_t v) const {
    return pruned.retained[v].size();
  }

  // Admission control: while the RSS watchdog reports memory pressure,
  // victims with the largest retained clusters (the dominant memory
  // axis) are shed to their conservative Devgan bound instead of being
  // admitted to simulation. The threshold is the median footprint of the
  // work list, so shedding targets the largest half first.
  void set_shed_from(const std::vector<std::size_t>& work) {
    shed_threshold = 0;
    if (work.empty()) return;
    std::vector<std::size_t> sizes;
    sizes.reserve(work.size());
    for (std::size_t v : work) sizes.push_back(footprint(v));
    std::sort(sizes.begin(), sizes.end());
    shed_threshold = sizes[sizes.size() / 2];
  }
};

ChipVerifier::Prepared::Prepared(ChipVerifier& verifier,
                                 const ChipDesign& design,
                                 const VerifierOptions& options)
    : impl_(std::make_unique<Impl>(verifier, design, options)) {}

ChipVerifier::Prepared::~Prepared() = default;

const std::vector<std::size_t>& ChipVerifier::Prepared::candidates() const {
  return impl_->candidates;
}

const PruneResult& ChipVerifier::Prepared::prune_result() const {
  return impl_->pruned;
}

std::size_t ChipVerifier::Prepared::footprint(std::size_t victim) const {
  return impl_->footprint(victim);
}

void ChipVerifier::Prepared::set_shed_work(
    const std::vector<std::size_t>& work) {
  impl_->set_shed_from(work);
}

double ChipVerifier::Prepared::vdd() const { return impl_->vdd; }

namespace {

/// The kFailed envelope shared by every Prepared entry point: a failure
/// outside the ladder (task setup, the journal, the pessimistic path
/// itself) becomes a typed finding attached to this victim — never a
/// lost index or a dead worker.
JournalRecord failed_record(std::size_t victim, double vdd,
                            const std::exception& e) {
  JournalRecord rec;
  rec.finding.net = victim;
  record_first_error(rec.finding, e);
  rec.finding.status = FindingStatus::kFailed;
  rec.finding.peak = -vdd;
  rec.finding.peak_fraction = 1.0;
  rec.finding.violation = true;
  return rec;
}

}  // namespace

struct ChipVerifier::Prepared::BeginOutcome {
  std::optional<JournalRecord> record;
  std::unique_ptr<ParkedVictim> parked;
};

/// Thin ownership wrapper over the pipeline's parked state: keeps the
/// victim id next to it so finish-side fault injection and the kFailed
/// envelope key on the right victim.
class ChipVerifier::Prepared::ParkedVictim {
 public:
  std::size_t victim_net() const { return victim_; }
  std::size_t order() const { return parked_->order(); }
  DriverModelKind driver_model() const { return parked_->driver_model(); }
  double tstop() const { return parked_->tstop(); }
  double dt() const { return parked_->dt(); }
  BatchLane lane() { return parked_->lane(); }

 private:
  friend class ChipVerifier::Prepared;
  std::size_t victim_ = 0;
  std::unique_ptr<VictimPipeline::Parked> parked_;
};

std::optional<JournalRecord> ChipVerifier::Prepared::analyze(
    std::size_t victim, bool bound_only) {
  // Injection decisions inside this task are keyed on the victim id, so
  // a threaded (or sharded, or remote) run disturbs exactly the victims
  // a serial run would.
  FaultInjector::ScopedVictim victim_ctx(victim);
  try {
    if (!bound_only && XTV_INJECT_FAULT(FaultSite::kVictimTask))
      throw std::runtime_error(
          "ChipVerifier: injected worker-task fault outside the ladder");
    const bool shed =
        bound_only ||
        (resource::MemoryGovernor::instance().under_pressure() &&
         impl_->footprint(victim) >= impl_->shed_threshold);
    return impl_->pipeline->run(victim, shed);
  } catch (const std::exception& e) {
    return failed_record(victim, impl_->vdd, e);
  }
}

ChipVerifier::Prepared::BeginOutcome ChipVerifier::Prepared::analyze_begin(
    std::size_t victim) {
  FaultInjector::ScopedVictim victim_ctx(victim);
  BeginOutcome out;
  try {
    if (XTV_INJECT_FAULT(FaultSite::kVictimTask))
      throw std::runtime_error(
          "ChipVerifier: injected worker-task fault outside the ladder");
    const bool shed = resource::MemoryGovernor::instance().under_pressure() &&
                      impl_->footprint(victim) >= impl_->shed_threshold;
    VictimPipeline::Outcome po = impl_->pipeline->begin(victim, shed);
    if (po.parked) {
      out.parked = std::unique_ptr<ParkedVictim>(new ParkedVictim);
      out.parked->victim_ = victim;
      out.parked->parked_ = std::move(po.parked);
    } else {
      out.record = std::move(po.record);  // may stay empty: ineligible
    }
  } catch (const std::exception& e) {
    out.record = failed_record(victim, impl_->vdd, e);
  }
  return out;
}

JournalRecord ChipVerifier::Prepared::analyze_finish(ParkedVictim& parked,
                                                     BatchLaneResult lane) {
  FaultInjector::ScopedVictim victim_ctx(parked.victim_);
  try {
    return impl_->pipeline->finish(*parked.parked_, std::move(lane));
  } catch (const std::exception& e) {
    return failed_record(parked.victim_, impl_->vdd, e);
  }
}

JournalRecord ChipVerifier::Prepared::concede(std::size_t victim,
                                              const std::string& why) const {
  JournalRecord rec;
  rec.finding.net = victim;
  rec.finding.status = FindingStatus::kShardCrashed;
  rec.finding.error_code = StatusCode::kWorkerCrashed;
  rec.finding.error = "conceded pessimistically: " + why;
  rec.finding.peak = -impl_->vdd;
  rec.finding.peak_fraction = 1.0;
  rec.finding.violation = true;
  return rec;
}

void ChipVerifier::Prepared::fill_cache_stats(
    VerificationReport* report) const {
  if (!impl_->model_cache) return;
  const ModelCache::Stats cs = impl_->model_cache->stats();
  report->model_cache_hits = cs.hits;
  report->model_cache_misses = cs.misses;
  report->model_cache_insertions = cs.insertions;
  report->model_cache_evictions = cs.evictions;
  report->model_cache_entries = cs.entries;
  report->model_cache_bytes = cs.bytes;
  report->canonical_hits = cs.canonical_hits;
  report->canonical_cert_rejects = cs.canonical_cert_rejects;
}

// --- verify() ----------------------------------------------------------

VerificationReport ChipVerifier::verify(const ChipDesign& design,
                                        const VerifierOptions& options) {
  if (options.resume && options.journal_path.empty())
    throw std::runtime_error("ChipVerifier: resume requires journal_path");

  VerificationReport report;
  Timer total;

  Prepared prep(*this, design, options);
  report.prune_stats = prep.prune_result().stats;
  const std::vector<std::size_t>& candidates = prep.candidates();

  // Remote fan-out (DESIGN.md §14) hands the sweep to the leased-unit
  // scheduler; process-isolated execution (DESIGN.md §12) replaces the
  // thread pool with forked worker processes. max_victims is defined by
  // serial analysis order, which spans shard and unit boundaries — it
  // forces the in-process path.
  const bool use_remote =
      options.remote_backend != nullptr && options.max_victims == 0;
  if (options.remote_backend && !use_remote)
    logf(LogLevel::kWarn,
         "ChipVerifier: a remote backend requires max_victims == 0; "
         "falling back to the in-process path");
  const bool use_processes =
      !use_remote && options.processes > 0 && options.max_victims == 0;
  if (options.processes > 0 && options.max_victims > 0)
    logf(LogLevel::kWarn,
         "ChipVerifier: processes > 0 requires max_victims == 0; "
         "falling back to the in-process path");

  // Lockstep batching (DESIGN.md §16) applies only to the in-process
  // paths: shard and remote workers run their victims serially anyway,
  // and max_victims is defined by one-at-a-time serial outcomes.
  const bool batch_capable =
      !use_processes && !use_remote && options.max_victims == 0;
  const std::size_t batch_width =
      batch_capable ? std::max<std::size_t>(std::size_t{1}, options.batch_width)
                    : 1;
  if (options.batch_width > 1 && batch_width <= 1)
    logf(LogLevel::kWarn,
         "ChipVerifier: batch_width > 1 requires the in-process path with "
         "max_victims == 0; integrating victims on the scalar engine");

  // Resume: intact journal records stand in for re-analysis; the journal
  // itself is truncated past its intact prefix so fresh appends follow.
  // The journal header must carry the current options hash — findings
  // produced under different options are not comparable, so a mismatched
  // resume is refused rather than silently merged.
  const std::uint64_t ohash = options_result_hash(options);
  std::map<std::size_t, JournalRecord> journaled;
  std::unique_ptr<ResultJournal> journal;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      ResultJournal::LoadResult prior = ResultJournal::load(options.journal_path);
      if (prior.valid_bytes > 0 &&
          (!prior.has_header || prior.header_hash != ohash)) {
        char hashes[96];
        std::snprintf(hashes, sizeof(hashes),
                      "(journal hash %016" PRIx64 ", current %016" PRIx64 ")",
                      prior.has_header ? prior.header_hash : 0, ohash);
        throw NumericalError(StatusCode::kInvalidInput,
                             "ChipVerifier: journal " + options.journal_path +
                                 " was written with different "
                                 "result-affecting options " +
                                 hashes +
                                 "; re-run without --resume to start fresh");
      }
      for (auto& rec : prior.records)
        journaled.insert_or_assign(rec.finding.net, std::move(rec));
      // A killed process-mode supervisor leaves shard journals holding
      // progress past the base journal; fold the intact, hash-matching
      // ones in, then durably rewrite the base so a second crash cannot
      // lose that progress.
      bool folded = false;
      for (std::size_t k : journal_list_shards(options.journal_path)) {
        const std::string spath = journal_shard_path(options.journal_path, k);
        ResultJournal::LoadResult sprior = ResultJournal::load(spath);
        if (sprior.has_header && sprior.header_hash == ohash) {
          for (auto& rec : sprior.records) {
            journaled.insert_or_assign(rec.finding.net, std::move(rec));
            folded = true;
          }
        } else if (sprior.valid_bytes > 0) {
          logf(LogLevel::kWarn,
               "ChipVerifier: ignoring shard journal %s (options hash "
               "mismatch)",
               spath.c_str());
        }
        ::unlink(spath.c_str());
      }
      if (folded) {
        std::vector<const JournalRecord*> recs;
        recs.reserve(journaled.size());
        for (const auto& [net, rec] : journaled) recs.push_back(&rec);
        ResultJournal::write_atomic(options.journal_path, recs, ohash);
      }
    } else {
      // Stale shard files from an older interrupted run must not leak
      // into this run's merge.
      for (std::size_t k : journal_list_shards(options.journal_path))
        ::unlink(journal_shard_path(options.journal_path, k).c_str());
    }
    // In process and remote modes the workers (or the remote scheduler)
    // append to shard journals and the parent writes the merged journal
    // once, atomically, after the sweep — an open append handle here
    // would alias the rename target.
    if (!use_processes && !use_remote)
      journal = std::make_unique<ResultJournal>(options.journal_path,
                                                options.resume, ohash);
  }

  std::vector<std::size_t> work;
  for (std::size_t v : candidates)
    if (!journaled.count(v)) work.push_back(v);
  prep.set_shed_work(work);

  std::map<std::size_t, JournalRecord> fresh;
  std::mutex fresh_mutex;
  auto emit = [&](std::size_t v, std::optional<JournalRecord> outcome) {
    if (!outcome) return;
    if (journal) journal->append(*outcome);
    if (options.on_record) {
      try {
        options.on_record(*outcome);
      } catch (...) {
        // A listener failure must not cost the victim its record.
      }
    }
    std::lock_guard<std::mutex> lock(fresh_mutex);
    fresh.emplace(v, std::move(*outcome));
  };
  auto run_one = [&](std::size_t v) { emit(v, prep.analyze(v, false)); };

  // Batch scheduler (batch_width > 1): begins every victim of a chunk,
  // groups the parked ones into compatible lockstep lanes, integrates
  // them together, and finishes each through the identical state
  // machine. Records are emitted in the chunk's original (net) order, so
  // journal append order matches the scalar serial sweep.
  std::atomic<std::size_t> batched_victims{0};
  std::atomic<std::size_t> batch_lane_fallbacks{0};
  auto run_batch_chunk = [&](const std::size_t* chunk, std::size_t n) {
    struct Pending {
      std::size_t v = 0;
      std::optional<JournalRecord> record;
      std::unique_ptr<ChipVerifier::Prepared::ParkedVictim> parked;
    };
    std::vector<Pending> pending(n);
    for (std::size_t i = 0; i < n; ++i) {
      pending[i].v = chunk[i];
      Prepared::BeginOutcome bo = prep.analyze_begin(chunk[i]);
      pending[i].record = std::move(bo.record);
      pending[i].parked = std::move(bo.parked);
    }
    // Lanes may share a lockstep round only when the reduced order,
    // driver-model class, and timestep policy agree.
    std::map<std::tuple<std::size_t, int, double, double>,
             std::vector<std::size_t>>
        groups;
    for (std::size_t i = 0; i < n; ++i) {
      if (!pending[i].parked) continue;
      const auto& p = *pending[i].parked;
      groups[{p.order(), static_cast<int>(p.driver_model()), p.tstop(),
              p.dt()}]
          .push_back(i);
    }
    for (auto& [key, members] : groups) {
      for (std::size_t at = 0; at < members.size(); at += batch_width) {
        const std::size_t width = std::min(batch_width, members.size() - at);
        std::vector<BatchLane> lanes;
        lanes.reserve(width);
        for (std::size_t k = 0; k < width; ++k)
          lanes.push_back(pending[members[at + k]].parked->lane());
        std::vector<BatchLaneResult> results = run_batch(lanes);
        for (std::size_t k = 0; k < width; ++k) {
          Pending& p = pending[members[at + k]];
          ++batched_victims;
          if (results[k].fell_back_scalar) ++batch_lane_fallbacks;
          p.record = prep.analyze_finish(*p.parked, std::move(results[k]));
          p.parked.reset();
        }
      }
    }
    for (Pending& p : pending) emit(p.v, std::move(p.record));
  };
  // Chunk size: wide enough that heterogeneous victims still fill lanes,
  // small enough that journal-append latency stays bounded.
  const std::size_t batch_chunk = batch_width * 4;

  // RSS watchdog for the duration of the sweep (no-op when disabled).
  // Process mode must keep the parent single-threaded until the workers
  // are forked (fork duplicates only the calling thread), so there each
  // worker starts its own watchdog instead. The remote coordinator never
  // forks, so it runs the watchdog itself — it may end up analyzing
  // victims locally (concessions, the all-workers-dead fallback).
  std::optional<resource::RssWatchdog> watchdog;
  if (options.global_mem_soft_mb > 0.0 && !use_processes)
    watchdog.emplace(static_cast<std::size_t>(options.global_mem_soft_mb *
                                              1024.0 * 1024.0));

  ShardExecStats shard_stats;
  if (use_processes || use_remote) {
    ShardCallbacks scb;
    // Worker side. Identical semantics to run_one above, except the
    // record is returned (streamed over the wire and shard-journaled by
    // the executor) instead of being appended locally, and `bound_only`
    // routes straight to the terminal Devgan-bound stage (the concession
    // rung of the quarantine ladder).
    scb.analyze = [&](std::size_t v,
                      bool bound_only) -> std::optional<JournalRecord> {
      return prep.analyze(v, bound_only);
    };
    scb.worker_init = [&] {
      if (options.global_mem_soft_mb > 0.0)
        watchdog.emplace(static_cast<std::size_t>(options.global_mem_soft_mb *
                                                  1024.0 * 1024.0));
    };
    // Last-resort record when even the bound-only analysis died:
    // maximally pessimistic (|peak| = Vdd), pure struct assembly.
    scb.concede = [&](std::size_t v, const std::string& why) {
      return prep.concede(v, why);
    };
    if (options.on_record)
      scb.on_result = [&](const JournalRecord& rec) {
        try {
          options.on_record(rec);
        } catch (...) {
        }
      };
    if (options.on_tick)
      scb.on_tick = [&] {
        try {
          options.on_tick();
        } catch (...) {
        }
      };

    if (use_remote) {
      fresh = options.remote_backend->run(work, scb, &shard_stats);
    } else {
      ShardExecOptions sopt;
      sopt.processes = options.processes;
      sopt.heartbeat_ms = options.shard_heartbeat_ms;
      sopt.max_shard_restarts = options.max_shard_restarts;
      sopt.journal_path = options.journal_path;
      sopt.options_hash = ohash;
      fresh = run_process_shards(work, scb, sopt, &shard_stats);
    }
    report.worker_crashes = shard_stats.worker_crashes;
    report.shard_restarts = shard_stats.shard_restarts;
    report.victims_quarantined = shard_stats.victims_quarantined;
  } else if (options.threads <= 1 || options.max_victims > 0) {
    if (batch_width > 1) {
      for (std::size_t i = 0; i < work.size(); i += batch_chunk)
        run_batch_chunk(work.data() + i,
                        std::min(batch_chunk, work.size() - i));
    } else {
      // max_victims caps *analyzed* victims, which only a serial sweep
      // can define deterministically (the cap depends on each prior
      // victim's outcome) — bounded debug runs stay single-threaded.
      std::size_t analyzed = 0;
      for (const auto& [v, rec] : journaled)
        if (!rec.screened && counts_as_analyzed(rec.finding.status)) ++analyzed;
      for (std::size_t v : work) {
        if (options.max_victims > 0 && analyzed >= options.max_victims) break;
        run_one(v);
        const auto it = fresh.find(v);
        if (it != fresh.end() && !it->second.screened &&
            counts_as_analyzed(it->second.finding.status))
          ++analyzed;
      }
    }
  } else {
    // Smallest clusters first: when pressure arises mid-run, what remains
    // queued is the largest clusters — exactly what shedding targets.
    // Merge order (below) and victim-keyed injection are both execution-
    // order independent, so this cannot change a clean run's report.
    std::stable_sort(work.begin(), work.end(), [&](std::size_t a, std::size_t b) {
      return prep.footprint(a) < prep.footprint(b);
    });
    ThreadPool pool(options.threads);
    if (batch_width > 1) {
      const std::size_t n_chunks =
          (work.size() + batch_chunk - 1) / batch_chunk;
      pool.parallel_for(n_chunks, [&](std::size_t c) {
        const std::size_t at = c * batch_chunk;
        run_batch_chunk(work.data() + at,
                        std::min(batch_chunk, work.size() - at));
      });
    } else {
      pool.parallel_for(work.size(),
                        [&](std::size_t i) { run_one(work[i]); });
    }
  }
  report.batched_victims = batched_victims.load();
  report.batch_lane_fallbacks = batch_lane_fallbacks.load();
  if (journal) journal->flush();

  // Merge in candidate order: journaled and fresh results interleave into
  // the exact report an uninterrupted serial run would have produced.
  for (std::size_t v : candidates) {
    const JournalRecord* rec = nullptr;
    if (const auto it = journaled.find(v); it != journaled.end())
      rec = &it->second;
    else if (const auto it2 = fresh.find(v); it2 != fresh.end())
      rec = &it2->second;
    if (!rec) continue;  // ineligible, or past the max_victims cutoff

    ++report.victims_eligible;
    report.total_cpu_seconds += rec->finding.cpu_seconds;
    if (rec->screened) {
      ++report.victims_screened_out;
      continue;
    }
    report.findings.push_back(rec->finding);
    const VictimFinding& f = report.findings.back();
    switch (f.status) {
      case FindingStatus::kAnalyzed:
      case FindingStatus::kAnalyzedAfterRetry:
        ++report.victims_analyzed;
        break;
      case FindingStatus::kCertified:
        ++report.victims_analyzed;
        ++report.victims_certified;
        break;
      case FindingStatus::kFellBackToFullSim:
      case FindingStatus::kFellBackToBound:
        ++report.victims_fallback;
        break;
      case FindingStatus::kDeadlineBound:
        ++report.victims_fallback;
        ++report.victims_deadline_bound;
        break;
      case FindingStatus::kResourceBound:
        ++report.victims_fallback;
        ++report.victims_resource_bound;
        break;
      case FindingStatus::kAccuracyBound:
        ++report.victims_fallback;
        ++report.victims_accuracy_bound;
        break;
      case FindingStatus::kShardCrashed:
        ++report.victims_fallback;
        ++report.victims_shard_crashed;
        break;
      case FindingStatus::kFailed:
        ++report.victims_failed;
        break;
    }
    if (f.retries > 0) ++report.victims_retried;
    if (f.cert_order_escalations > 0) {
      ++report.victims_escalated;
      report.order_escalations += f.cert_order_escalations;
    }
    if (f.audited) {
      ++report.victims_audited;
      if (!f.audit_pass) ++report.audit_failures;
      report.audit_max_peak_err =
          std::max(report.audit_max_peak_err, f.audit_peak_err);
      report.audit_max_time_err =
          std::max(report.audit_max_time_err, f.audit_time_err);
    }
    if (f.violation) ++report.violations;
  }
  // Process/remote finalization: one atomic write of the merged journal
  // in stable candidate order (bit-identical to what an uninterrupted
  // in-process run would have journaled), then the shard journals are
  // retired — they were only ever crash insurance.
  if ((use_processes || use_remote) && !options.journal_path.empty()) {
    std::vector<const JournalRecord*> recs;
    recs.reserve(journaled.size() + fresh.size());
    for (std::size_t v : candidates) {
      if (const auto it = journaled.find(v); it != journaled.end())
        recs.push_back(&it->second);
      else if (const auto it2 = fresh.find(v); it2 != fresh.end())
        recs.push_back(&it2->second);
    }
    ResultJournal::write_atomic(options.journal_path, recs, ohash);
    // Retire every shard file on disk, not just [0, workers_spawned):
    // non-contiguous leftovers from an older run would otherwise survive
    // a fully successful run and be re-folded on the next resume.
    for (std::size_t k : journal_list_shards(options.journal_path))
      ::unlink(journal_shard_path(options.journal_path, k).c_str());
  }
  prep.fill_cache_stats(&report);
  report.wall_seconds = total.elapsed();
  return report;
}

std::string VerificationReport::to_string() const {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "pruning: %zu nets, couplings %zu -> %zu, avg cluster %.1f -> %.1f "
                "(max %zu)\n",
                prune_stats.nets, prune_stats.couplings_before,
                prune_stats.couplings_after, prune_stats.avg_cluster_before,
                prune_stats.avg_cluster_after, prune_stats.max_cluster_after);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "analyzed %zu victims (%zu screened out analytically), "
                "%zu violations, %.2f s cpu / %.2f s wall\n",
                victims_analyzed, victims_screened_out, violations,
                total_cpu_seconds, wall_seconds);
  out << buf;
  if (victims_retried + victims_fallback + victims_failed > 0) {
    std::snprintf(buf, sizeof(buf),
                  "recovery: %zu of %zu victims retried, %zu fell back "
                  "(full-sim or bound, %zu on deadline, %zu on memory, "
                  "%zu on accuracy), %zu failed every rung\n",
                  victims_retried, victims_eligible, victims_fallback,
                  victims_deadline_bound, victims_resource_bound,
                  victims_accuracy_bound, victims_failed);
    out << buf;
  }
  if (worker_crashes + shard_restarts + victims_quarantined +
          victims_shard_crashed >
      0) {
    std::snprintf(buf, sizeof(buf),
                  "process shards: %zu worker crash(es), %zu shard "
                  "restart(s), %zu victim(s) quarantined, %zu conceded as "
                  "shard-crashed\n",
                  worker_crashes, shard_restarts, victims_quarantined,
                  victims_shard_crashed);
    out << buf;
  }
  if (victims_certified + victims_accuracy_bound + victims_escalated > 0) {
    std::snprintf(buf, sizeof(buf),
                  "certified: %zu victims carry a passing certificate "
                  "(%zu escalated, %zu order raises total), "
                  "%zu accuracy-bound\n",
                  victims_certified, victims_escalated, order_escalations,
                  victims_accuracy_bound);
    out << buf;
  }
  if (model_cache_hits + model_cache_misses > 0) {
    const double lookups =
        static_cast<double>(model_cache_hits + model_cache_misses);
    std::snprintf(buf, sizeof(buf),
                  "model cache: %zu hits / %zu lookups (%.0f%% hit rate), "
                  "%zu entries / %.1f MiB live, %zu evictions\n",
                  model_cache_hits, model_cache_hits + model_cache_misses,
                  100.0 * static_cast<double>(model_cache_hits) / lookups,
                  model_cache_entries,
                  static_cast<double>(model_cache_bytes) / (1024.0 * 1024.0),
                  model_cache_evictions);
    out << buf;
  }
  if (canonical_hits + canonical_cert_rejects > 0) {
    std::snprintf(buf, sizeof(buf),
                  "canonical cache: %zu certified tolerant reuse(s), "
                  "%zu candidate(s) rejected by re-certification\n",
                  canonical_hits, canonical_cert_rejects);
    out << buf;
  }
  if (batched_victims > 0) {
    std::snprintf(buf, sizeof(buf),
                  "batched: %zu victims integrated in lockstep lanes, "
                  "%zu lane(s) fell back to the scalar engine\n",
                  batched_victims, batch_lane_fallbacks);
    out << buf;
  }
  if (victims_audited > 0) {
    std::snprintf(buf, sizeof(buf),
                  "audit: %zu victims cross-checked on the golden engine, "
                  "%zu out of tolerance (worst peak delta %.4g V, "
                  "worst arrival delta %.3g s)\n",
                  victims_audited, audit_failures, audit_max_peak_err,
                  audit_max_time_err);
    out << buf;
  }
  for (const auto& f : findings) {
    if (!f.violation) continue;
    std::snprintf(buf, sizeof(buf),
                  "  VIOLATION net %zu: peak %+.3f V (%.0f%% of Vdd), "
                  "%zu aggressors (dropped: %zu window, %zu correlation)%s%s\n",
                  f.net, f.peak, 100.0 * f.peak_fraction, f.aggressors_analyzed,
                  f.aggressors_dropped_by_window,
                  f.aggressors_dropped_by_correlation,
                  f.status == FindingStatus::kAnalyzed ? "" : " via ",
                  f.status == FindingStatus::kAnalyzed
                      ? ""
                      : finding_status_name(f.status));
    out << buf;
  }
  return out.str();
}

}  // namespace xtv
