#include "core/verifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "core/analytic_estimates.h"
#include "core/delay_analyzer.h"
#include "core/journal.h"
#include "util/deadline.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xtv {

namespace {

/// Keeps the FIRST failure the cluster exhibited: later ladder rungs may
/// fail differently, but the root cause is what the report should show.
void record_first_error(VictimFinding& finding, const std::exception& e) {
  if (!finding.error.empty()) return;
  finding.error = e.what();
  const auto* numerical = dynamic_cast<const NumericalError*>(&e);
  finding.error_code =
      numerical ? numerical->code() : StatusCode::kInternal;
}

bool is_deadline_error(const std::exception& e) {
  const auto* numerical = dynamic_cast<const NumericalError*>(&e);
  return numerical && numerical->code() == StatusCode::kDeadlineExceeded;
}

/// Full analysis of one victim cluster: eligibility, the Devgan screen,
/// the retry/degradation ladder under the per-cluster deadline, and the
/// optional delay/EM passes. Runs on a worker thread; everything it
/// touches is either const, internally synchronized (CharacterizedLibrary,
/// FaultInjector), or local. Returns nullopt for ineligible victims (no
/// retained aggressor survives the window/correlation filters).
std::optional<JournalRecord> analyze_victim(
    const ChipVerifier& verifier, const Extractor& extractor,
    CharacterizedLibrary& chars, GlitchAnalyzer& analyzer,
    const ChipDesign& design, const std::vector<NetSummary>& summaries,
    const PruneResult& pruned, std::size_t v, const VerifierOptions& options) {
  const double vdd = extractor.tech().vdd;

  ThreadCpuTimer victim_timer;
  CancelToken budget(options.cluster_deadline_ms > 0.0
                         ? Deadline::after_seconds(options.cluster_deadline_ms *
                                                   1e-3)
                         : Deadline::unlimited());

  JournalRecord record;
  VictimFinding& finding = record.finding;
  finding.net = v;
  bool eligible = false;
  try {
    auto [victim, aggressors] =
        verifier.build_victim_cluster(design, summaries, pruned, v, &finding);
    if (aggressors.empty()) return std::nullopt;
    eligible = true;

    if (options.use_noise_screen) {
      // Conservative pre-screen: the sum of per-aggressor Devgan bounds
      // caps the combined glitch; below the margin, skip the simulation.
      double bound = 0.0;
      for (const AggressorSpec& agg : aggressors)
        bound += devgan_noise_bound(victim, agg, extractor, chars);
      if (bound < options.glitch_threshold * vdd) {
        record.screened = true;
        finding.cpu_seconds = victim_timer.elapsed();
        return record;
      }
    }

    // Recovery ladder. Rung 0 runs the options untouched (plus the
    // cluster budget token) so a clean pass is bit-identical to a serial
    // or ladder-free run; each later rung trades accuracy or speed for
    // robustness, and the last (analytic bound) cannot fail, so no
    // cluster is ever silently skipped. A rung cancelled by the deadline
    // skips straight to the bound — the remaining rungs share the same
    // expired budget and could only burn more wall time failing.
    GlitchResult res;
    bool have_sim = false;
    bool deadline_expired = false;
    GlitchAnalysisOptions base = options.glitch;
    base.cancel = &budget;
    try {
      res = analyzer.analyze(victim, aggressors, base);
      have_sim = true;
      finding.status = FindingStatus::kAnalyzed;
    } catch (const std::exception& e) {
      record_first_error(finding, e);
      ++finding.retries;
      deadline_expired = is_deadline_error(e);
    }
    if (!have_sim && !deadline_expired) {
      // Rung 1: halved timestep (Newton on a stiff cluster often
      // converges once the per-step excitation change shrinks).
      GlitchAnalysisOptions retry = base;
      retry.dt =
          0.5 * (retry.dt > 0.0 ? retry.dt : retry.tstop / 2000.0);
      try {
        res = analyzer.analyze(victim, aggressors, retry);
        have_sim = true;
        finding.status = FindingStatus::kAnalyzedAfterRetry;
      } catch (const std::exception& e) {
        record_first_error(finding, e);
        ++finding.retries;
        deadline_expired = is_deadline_error(e);
      }
      // Rung 2: halved timestep + doubled reduced order (a too-small
      // Krylov space shows up as a non-passive or inaccurate model).
      if (!have_sim && !deadline_expired) {
        const std::size_t base_order =
            retry.mor.max_order > 0 ? retry.mor.max_order
                                    : 8 * (1 + aggressors.size());
        retry.mor.max_order = 2 * base_order;
        try {
          res = analyzer.analyze(victim, aggressors, retry);
          have_sim = true;
          finding.status = FindingStatus::kAnalyzedAfterRetry;
        } catch (const std::exception& e) {
          record_first_error(finding, e);
          ++finding.retries;
          deadline_expired = is_deadline_error(e);
        }
      }
      // Rung 3: full unreduced-cluster simulation on the golden engine —
      // slow, but immune to every reduction-side breakdown.
      if (!have_sim && !deadline_expired) {
        try {
          res = analyzer.analyze_spice(victim, aggressors, base);
          have_sim = true;
          finding.status = FindingStatus::kFellBackToFullSim;
        } catch (const std::exception& e) {
          record_first_error(finding, e);
          ++finding.retries;
          deadline_expired = is_deadline_error(e);
        }
      }
    }
    if (have_sim) {
      finding.peak = res.peak;
      finding.peak_fraction = std::fabs(res.peak) / vdd;
      finding.violation = finding.peak_fraction >= options.glitch_threshold;
      finding.aggressors_analyzed = aggressors.size();
      finding.reduced_order = res.reduced_order;
      finding.driver_rms_current = res.victim_driver_rms_current;
      finding.em_violation =
          options.em_rms_limit > 0.0 &&
          res.victim_driver_rms_current > options.em_rms_limit;

      if (options.analyze_delay_change) {
        // Timing recalculation: the victim as a SWITCHING net, aggressors
        // forced opposite (worst case) vs the decoupled classic load.
        DelayAnalyzer delays(extractor, chars);
        DelayAnalysisOptions dopt;
        dopt.driver_model = options.glitch.driver_model ==
                                    DriverModelKind::kNonlinearTable
                                ? DriverModelKind::kNonlinearTable
                                : DriverModelKind::kLinearResistor;
        dopt.victim_input_slew = design.nets[v].input_slew;
        dopt.mor = options.glitch.mor;
        try {
          const CoupledDelayResult d =
              delays.analyze(victim, /*victim_rising=*/true, aggressors, dopt);
          finding.delay_decoupled = d.delay_decoupled;
          finding.delay_coupled = d.delay_coupled;
        } catch (const std::exception&) {
          // A victim that never completes its transition within the window
          // (or whose budget ran out mid-pass) is reported with zeroed
          // delays rather than aborting the audit.
        }
      }
    } else {
      // Rung 4: Devgan analytic bound. Conservative (each term is an
      // upper bound on that aggressor's contribution), so the reported
      // peak is >= the true peak and a pass here is a real pass. A
      // budget-expired cluster lands here as kDeadlineBound: still
      // accounted, still conservative, and the pool slot is freed.
      double bound = 0.0;
      for (const AggressorSpec& agg : aggressors)
        bound += devgan_noise_bound(victim, agg, extractor, chars);
      bound = std::min(bound, vdd);
      finding.status = deadline_expired ? FindingStatus::kDeadlineBound
                                        : FindingStatus::kFellBackToBound;
      finding.peak = victim.held_high ? -bound : bound;
      finding.peak_fraction = bound / vdd;
      finding.violation = finding.peak_fraction >= options.glitch_threshold;
      finding.aggressors_analyzed = aggressors.size();
    }
  } catch (const std::exception& e) {
    // Per-cluster isolation: even a failure outside the ladder (cluster
    // construction, screening, the bound itself) must not abort the chip
    // sweep. The victim is reported maximally pessimistically for manual
    // review.
    record_first_error(finding, e);
    eligible = true;
    finding.status = FindingStatus::kFailed;
    finding.peak = -vdd;
    finding.peak_fraction = 1.0;
    finding.violation = true;
  }
  if (!eligible) return std::nullopt;
  finding.cpu_seconds = victim_timer.elapsed();
  return record;
}

bool counts_as_analyzed(FindingStatus s) {
  return s == FindingStatus::kAnalyzed ||
         s == FindingStatus::kAnalyzedAfterRetry;
}

}  // namespace

ChipVerifier::ChipVerifier(const Extractor& extractor, CharacterizedLibrary& chars)
    : extractor_(extractor), chars_(chars) {}

std::pair<VictimSpec, std::vector<AggressorSpec>> ChipVerifier::build_victim_cluster(
    const ChipDesign& design, const std::vector<NetSummary>& summaries,
    const PruneResult& pruned, std::size_t victim_net,
    VictimFinding* accounting) const {
  const ChipNet& vnet = design.nets.at(victim_net);

  VictimSpec victim;
  victim.route = vnet.route;
  victim.driver_cell = vnet.driver_cell;  // strongest bus driver pre-applied
  victim.held_high = true;                // worst case analyzed per level; high here
  victim.receiver_cap = vnet.receiver_cap;
  victim.window = vnet.window;

  std::vector<AggressorSpec> aggressors;
  for (const auto& coupling : pruned.retained.at(victim_net)) {
    const ChipNet& anet = design.nets.at(coupling.other);

    // Timing correlation: an aggressor whose switching window cannot
    // overlap the victim's sensitive window cannot hurt it.
    if (!anet.window.overlaps(vnet.window)) {
      if (accounting) ++accounting->aggressors_dropped_by_window;
      continue;
    }
    // Logic correlation: the worst-case glitch on a high victim has every
    // aggressor falling; complementary (Q/QN) aggressors cannot fall
    // together with one already falling — veto against any previously
    // accepted aggressor.
    bool vetoed = false;
    for (const AggressorSpec& prev : aggressors) {
      if (!design.correlations.can_switch_same_direction(prev.net_id,
                                                         coupling.other) ||
          !design.correlations.can_switch_together(prev.net_id, coupling.other)) {
        vetoed = true;
        break;
      }
    }
    // The victim itself may be correlated with the aggressor: a quiet
    // victim is compatible with any aggressor switching, so only mutexes
    // (bus enables) apply.
    if (!vetoed &&
        !design.correlations.can_switch_together(victim_net, coupling.other))
      vetoed = true;
    if (vetoed) {
      if (accounting) ++accounting->aggressors_dropped_by_correlation;
      continue;
    }

    AggressorSpec agg;
    agg.route = anet.route;
    agg.driver_cell = anet.driver_cell;
    agg.rising = !victim.held_high;  // drive toward the opposite rail
    agg.input_slew = anet.input_slew;
    agg.receiver_cap = anet.receiver_cap;
    agg.window = anet.window;
    agg.net_id = coupling.other;
    // Reconstruct the geometric run from the design's coupling list.
    for (const ChipCoupling& c : design.couplings) {
      if ((c.a == victim_net && c.b == coupling.other)) {
        agg.run = {0, 0, c.overlap, c.spacing, c.offset_a, c.offset_b};
        break;
      }
      if (c.b == victim_net && c.a == coupling.other) {
        agg.run = {0, 0, c.overlap, c.spacing, c.offset_b, c.offset_a};
        break;
      }
    }
    if (agg.run.overlap <= 0.0) {
      // Database coupling without geometry (shouldn't happen with the
      // generator) — synthesize an equivalent mid-net run.
      agg.run.overlap = std::min(vnet.route.length, anet.route.length) * 0.5;
      agg.run.spacing = 0.0;
    }
    aggressors.push_back(std::move(agg));
  }
  (void)summaries;
  return {std::move(victim), std::move(aggressors)};
}

VerificationReport ChipVerifier::verify(const ChipDesign& design,
                                        const VerifierOptions& options) {
  if (options.resume && options.journal_path.empty())
    throw std::runtime_error("ChipVerifier: resume requires journal_path");

  VerificationReport report;
  Timer total;

  const std::vector<NetSummary> summaries =
      chip_net_summaries(design, extractor_, chars_);
  const PruneResult pruned = prune_couplings(summaries, options.prune);
  report.prune_stats = pruned.stats;

  GlitchAnalyzer analyzer(extractor_, chars_);

  // Candidate victims in stable net order — the report order, regardless
  // of which worker (or which prior run) produced each result.
  std::vector<std::size_t> candidates;
  for (std::size_t v = 0; v < design.nets.size(); ++v) {
    if (pruned.retained[v].empty()) continue;
    if (options.latch_inputs_only && !design.nets[v].latch_input) continue;
    candidates.push_back(v);
  }

  // Resume: intact journal records stand in for re-analysis; the journal
  // itself is truncated past its intact prefix so fresh appends follow.
  std::map<std::size_t, JournalRecord> journaled;
  std::unique_ptr<ResultJournal> journal;
  if (!options.journal_path.empty()) {
    if (options.resume)
      for (auto& rec : ResultJournal::load(options.journal_path).records)
        journaled.insert_or_assign(rec.finding.net, std::move(rec));
    journal = std::make_unique<ResultJournal>(options.journal_path,
                                              options.resume);
  }

  std::vector<std::size_t> work;
  for (std::size_t v : candidates)
    if (!journaled.count(v)) work.push_back(v);

  std::map<std::size_t, JournalRecord> fresh;
  std::mutex fresh_mutex;
  auto run_one = [&](std::size_t v) {
    std::optional<JournalRecord> outcome =
        analyze_victim(*this, extractor_, chars_, analyzer, design, summaries,
                       pruned, v, options);
    if (!outcome) return;
    if (journal) journal->append(*outcome);
    std::lock_guard<std::mutex> lock(fresh_mutex);
    fresh.emplace(v, std::move(*outcome));
  };

  // max_victims caps *analyzed* victims, which only a serial sweep can
  // define deterministically (the cap depends on each prior victim's
  // outcome) — bounded debug runs stay single-threaded.
  if (options.threads <= 1 || options.max_victims > 0) {
    std::size_t analyzed = 0;
    for (const auto& [v, rec] : journaled)
      if (!rec.screened && counts_as_analyzed(rec.finding.status)) ++analyzed;
    for (std::size_t v : work) {
      if (options.max_victims > 0 && analyzed >= options.max_victims) break;
      run_one(v);
      const auto it = fresh.find(v);
      if (it != fresh.end() && !it->second.screened &&
          counts_as_analyzed(it->second.finding.status))
        ++analyzed;
    }
  } else {
    ThreadPool pool(options.threads);
    pool.parallel_for(work.size(),
                      [&](std::size_t i) { run_one(work[i]); });
  }
  if (journal) journal->flush();

  // Merge in candidate order: journaled and fresh results interleave into
  // the exact report an uninterrupted serial run would have produced.
  for (std::size_t v : candidates) {
    const JournalRecord* rec = nullptr;
    if (const auto it = journaled.find(v); it != journaled.end())
      rec = &it->second;
    else if (const auto it2 = fresh.find(v); it2 != fresh.end())
      rec = &it2->second;
    if (!rec) continue;  // ineligible, or past the max_victims cutoff

    ++report.victims_eligible;
    report.total_cpu_seconds += rec->finding.cpu_seconds;
    if (rec->screened) {
      ++report.victims_screened_out;
      continue;
    }
    report.findings.push_back(rec->finding);
    const VictimFinding& f = report.findings.back();
    switch (f.status) {
      case FindingStatus::kAnalyzed:
      case FindingStatus::kAnalyzedAfterRetry:
        ++report.victims_analyzed;
        break;
      case FindingStatus::kFellBackToFullSim:
      case FindingStatus::kFellBackToBound:
        ++report.victims_fallback;
        break;
      case FindingStatus::kDeadlineBound:
        ++report.victims_fallback;
        ++report.victims_deadline_bound;
        break;
      case FindingStatus::kFailed:
        ++report.victims_failed;
        break;
    }
    if (f.retries > 0) ++report.victims_retried;
    if (f.violation) ++report.violations;
  }
  report.wall_seconds = total.elapsed();
  return report;
}

std::string VerificationReport::to_string() const {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "pruning: %zu nets, couplings %zu -> %zu, avg cluster %.1f -> %.1f "
                "(max %zu)\n",
                prune_stats.nets, prune_stats.couplings_before,
                prune_stats.couplings_after, prune_stats.avg_cluster_before,
                prune_stats.avg_cluster_after, prune_stats.max_cluster_after);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "analyzed %zu victims (%zu screened out analytically), "
                "%zu violations, %.2f s cpu / %.2f s wall\n",
                victims_analyzed, victims_screened_out, violations,
                total_cpu_seconds, wall_seconds);
  out << buf;
  if (victims_retried + victims_fallback + victims_failed > 0) {
    std::snprintf(buf, sizeof(buf),
                  "recovery: %zu of %zu victims retried, %zu fell back "
                  "(full-sim or bound, %zu on deadline), %zu failed every rung\n",
                  victims_retried, victims_eligible, victims_fallback,
                  victims_deadline_bound, victims_failed);
    out << buf;
  }
  for (const auto& f : findings) {
    if (!f.violation) continue;
    std::snprintf(buf, sizeof(buf),
                  "  VIOLATION net %zu: peak %+.3f V (%.0f%% of Vdd), "
                  "%zu aggressors (dropped: %zu window, %zu correlation)%s%s\n",
                  f.net, f.peak, 100.0 * f.peak_fraction, f.aggressors_analyzed,
                  f.aggressors_dropped_by_window,
                  f.aggressors_dropped_by_correlation,
                  f.status == FindingStatus::kAnalyzed ? "" : " via ",
                  f.status == FindingStatus::kAnalyzed
                      ? ""
                      : finding_status_name(f.status));
    out << buf;
  }
  return out.str();
}

}  // namespace xtv
