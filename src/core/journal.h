// Crash-safe result journal for resumable chip verification.
//
// A full-chip audit is a multi-hour batch job; a killed process must not
// forfeit the victims already analyzed. The verifier therefore appends
// one record per *completed* eligible victim (screened-out or fully
// analyzed) to an append-only text journal:
//
//   xtvjh <options-hash>                      (header, first line)
//   xtvj1 <payload> <fnv1a-64 checksum of payload>\n
//
// The header stamps the FNV-1a hash of the result-affecting
// VerifierOptions (see options_result_hash); a --resume against a journal
// written under different options is refused instead of silently merging
// incomparable findings.
//
// Doubles are serialized as C hexfloats, so a journaled finding
// round-trips bit-exactly and a resumed run reproduces the uninterrupted
// report verbatim. Appends are batched and fsync'd every `flush_every`
// records (and on close), bounding lost work to one batch.
//
// A process killed mid-write leaves a torn final line; load() verifies
// each record's checksum and field count and stops at the first bad one,
// returning only the intact prefix plus its byte offset so the writer
// can truncate the torn tail before appending fresh records.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/verifier.h"

namespace xtv {

/// One journaled victim outcome. Screened victims carry only accounting
/// fields (net, cpu, aggressor-drop counters); analyzed ones the full
/// finding.
struct JournalRecord {
  bool screened = false;
  VictimFinding finding;
};

/// Serializes a record to its single-line journal payload (no checksum
/// framing) and back. Exposed for tests; round-trips bit-exactly.
std::string journal_encode(const JournalRecord& record);

/// Decodes a payload line; returns false on any malformed field.
bool journal_decode(const std::string& payload, JournalRecord& record);

/// Shard journal path for worker `k` of a process-sharded run:
/// `<base>.shard<k>` (core/shard_exec.h). Centralized so the supervisor,
/// resume, and cleanup agree on the naming.
std::string journal_shard_path(const std::string& base, std::size_t k);

/// Shard indices `k` for which `<base>.shard<k>` exists on disk, sorted
/// ascending. Scans the containing directory rather than probing k = 0,
/// 1, ... until the first miss: leftover shard files need not be
/// contiguous (a crashed run under a different worker count can leave
/// `.shard3` behind without `.shard0`), and every cleanup/fold site must
/// see all of them or stale records get re-folded into a later resume.
std::vector<std::size_t> journal_list_shards(const std::string& base);

class ResultJournal {
 public:
  /// One crash-marker line (`xtvjc <victim> <signal>`) found in a shard
  /// journal — written by the worker's async-signal-safe crash handler
  /// (util/subprocess.h) so the supervisor can attribute the death to a
  /// victim without guessing from the heartbeat gap.
  struct CrashMarker {
    std::size_t victim = 0;
    int sig = 0;
  };

  struct LoadResult {
    std::vector<JournalRecord> records;
    /// Byte offset just past the last intact record — the truncation
    /// point for a writer resuming after a crash. A crash marker is NOT
    /// counted valid: resume truncates it away after it has been read.
    long valid_bytes = 0;
    /// True when bytes past valid_bytes were present (torn/corrupt tail,
    /// or a crash marker).
    bool tail_discarded = false;
    /// Header line present and intact; `header_hash` is its options hash.
    bool has_header = false;
    std::uint64_t header_hash = 0;
    /// Crash markers found after the intact record prefix.
    std::vector<CrashMarker> crash_markers;
  };

  /// Reads every intact record of `path`. A missing file is an empty
  /// journal, not an error.
  static LoadResult load(const std::string& path);

  /// Opens `path` for appending. With `resume` false the file is
  /// truncated and a header stamping `options_hash` is written; with
  /// `resume` true it is truncated only past the intact prefix (discarding
  /// a torn tail), appends continue after it, and the existing header must
  /// match `options_hash` — a mismatch (or a header-less non-empty
  /// journal) throws NumericalError(kInvalidInput), as does a file that
  /// cannot be opened. Records are fsync'd every `flush_every` appends.
  ResultJournal(const std::string& path, bool resume,
                std::uint64_t options_hash = 0, std::size_t flush_every = 16);
  ~ResultJournal();

  ResultJournal(const ResultJournal&) = delete;
  ResultJournal& operator=(const ResultJournal&) = delete;

  /// Appends one record (thread-safe; workers call this directly).
  void append(const JournalRecord& record);

  /// Flushes buffered records to the OS and fsyncs.
  void flush();

  /// Torn-write-proof one-shot journal write: serializes the header and
  /// `records` into `path + ".tmp"`, fsyncs the file, atomically
  /// rename()s it over `path`, then fsyncs the containing directory — a
  /// reader (or a resume) sees either the complete old journal or the
  /// complete new one, never a half-written merge. Used by the shard
  /// supervisor to finalize the stable-order merged journal.
  static void write_atomic(const std::string& path,
                           const std::vector<const JournalRecord*>& records,
                           std::uint64_t options_hash);

  const std::string& path() const { return path_; }

  /// Raw descriptor of the open journal (workers register it with the
  /// crash-marker signal handler; see util/subprocess.h).
  int fd() const;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t flush_every_;
  std::size_t unflushed_ = 0;
  std::mutex mutex_;
};

}  // namespace xtv
