#include "core/glitch_analyzer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/fault_injection.h"
#include "util/resource.h"
#include "util/status.h"
#include "util/timer.h"

namespace xtv {

namespace {

/// NaN/Inf sweep on engine outputs: a waveform with a non-finite sample
/// means the integration silently blew up; report it as a typed condition
/// so the verifier's ladder can retry instead of trusting a garbage peak.
void check_finite_waves(const std::vector<Waveform>& waves, const char* engine) {
  bool bad = XTV_INJECT_FAULT(FaultSite::kWaveformFinite);
  for (std::size_t i = 0; !bad && i < waves.size(); ++i)
    bad = !waves[i].all_finite();
  if (bad)
    throw NumericalError(StatusCode::kNonFiniteWaveform,
                         std::string(engine) + ": non-finite waveform output");
}

/// Input tie level that makes `cell` hold its output at `held_high`.
double victim_input_level(const CellMaster& cell, bool held_high, double vdd) {
  const bool input_high = cell.inverting() ? !held_high : held_high;
  return input_high ? vdd : 0.0;
}

/// Direction of the aggressor INPUT transition for a given output direction.
bool aggressor_input_rising(const CellMaster& cell, bool output_rising) {
  return cell.inverting() ? !output_rising : output_rising;
}

}  // namespace

GlitchAnalyzer::GlitchAnalyzer(const Extractor& extractor,
                               CharacterizedLibrary& chars)
    : extractor_(extractor), chars_(chars) {}

GlitchAnalyzer::BuiltCluster GlitchAnalyzer::build_cluster(
    const VictimSpec& victim, const std::vector<AggressorSpec>& aggressors,
    const GlitchAnalysisOptions& options) {
  std::vector<NetRoute> nets;
  nets.push_back(victim.route);
  std::vector<CouplingRun> runs;
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    nets.push_back(aggressors[k].route);
    CouplingRun run = aggressors[k].run;
    run.net_a = 0;
    run.net_b = k + 1;
    runs.push_back(run);
  }

  BuiltCluster built;
  built.network = extractor_.extract_cluster(nets, runs);
  RcNetwork& net = built.network;

  // Receiver loads at the far ends.
  net.add_capacitor(net.port_node(ClusterPorts::receiver(0)), RcNetwork::kGround,
                    victim.receiver_cap);
  for (std::size_t k = 0; k < aggressors.size(); ++k)
    net.add_capacitor(net.port_node(ClusterPorts::receiver(k + 1)),
                      RcNetwork::kGround, aggressors[k].receiver_cap);

  const double kGminPort = 1e-9;
  // Receiver ports: regularization only (capacitive terminations, paper §3).
  net.stamp_port_conductance(ClusterPorts::receiver(0), kGminPort);
  for (std::size_t k = 0; k < aggressors.size(); ++k)
    net.stamp_port_conductance(ClusterPorts::receiver(k + 1), kGminPort);

  // Victim driver.
  const CellModel& vic_model = chars_.model(victim.driver_cell);
  switch (options.driver_model) {
    case DriverModelKind::kLinearResistor:
      built.victim_drive_r = victim.held_high ? vic_model.drive_resistance_rise
                                              : vic_model.drive_resistance_fall;
      break;
    case DriverModelKind::kFixedResistor:
      built.victim_drive_r = options.fixed_resistance;
      break;
    case DriverModelKind::kNonlinearTable:
    case DriverModelKind::kTransistor:
      built.victim_drive_r = 0.0;  // nonlinear termination handles holding
      break;
  }
  net.stamp_port_conductance(ClusterPorts::driver(0),
                             built.victim_drive_r > 0.0
                                 ? 1.0 / built.victim_drive_r
                                 : kGminPort);
  if (options.driver_model == DriverModelKind::kNonlinearTable)
    net.add_capacitor(net.port_node(ClusterPorts::driver(0)), RcNetwork::kGround,
                      vic_model.output_cap);

  // Aggressor drivers.
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    const AggressorSpec& agg = aggressors[k];
    const CellModel& model = chars_.model(agg.driver_cell);
    double r = 0.0;
    switch (options.driver_model) {
      case DriverModelKind::kLinearResistor:
        r = agg.rising ? model.drive_resistance_rise : model.drive_resistance_fall;
        break;
      case DriverModelKind::kFixedResistor:
        r = options.fixed_resistance;
        break;
      case DriverModelKind::kNonlinearTable:
      case DriverModelKind::kTransistor:
        r = 0.0;
        break;
    }
    built.agg_drive_r.push_back(r);
    net.stamp_port_conductance(ClusterPorts::driver(k + 1),
                               r > 0.0 ? 1.0 / r : kGminPort);
    if (options.driver_model == DriverModelKind::kNonlinearTable)
      net.add_capacitor(net.port_node(ClusterPorts::driver(k + 1)),
                        RcNetwork::kGround, model.output_cap);
  }
  return built;
}

SourceWave GlitchAnalyzer::aggressor_output_ramp(const AggressorSpec& agg,
                                                 double switch_time,
                                                 const GlitchAnalysisOptions& options) {
  const CellModel& model = chars_.model(agg.driver_cell);
  const double vdd = extractor_.tech().vdd;
  // Load the driver sees: its wire plus receiver plus coupling to victim.
  const double load = extractor_.route_ground_cap(agg.route) + agg.receiver_cap +
                      extractor_.run_coupling_cap(agg.run);
  const TimingTable& table = agg.rising ? model.rise : model.fall;
  const double delay = table.delay.lookup(agg.input_slew, load);
  const double slew = table.output_slew.lookup(agg.input_slew, load);
  const double start = std::max(switch_time + delay - 0.5 * slew, 0.0);
  (void)options;
  return agg.rising ? SourceWave::ramp(0.0, vdd, start, slew)
                    : SourceWave::ramp(vdd, 0.0, start, slew);
}

std::vector<double> GlitchAnalyzer::align_switch_times(
    const VictimSpec& victim, const std::vector<AggressorSpec>& aggressors,
    const GlitchAnalysisOptions& options) {
  std::vector<double> times(aggressors.size(), options.default_switch_time);
  if (!options.align_aggressors || aggressors.size() <= 1) {
    for (std::size_t k = 0; k < aggressors.size(); ++k) {
      const TimingWindow& w = aggressors[k].window;
      if (w.valid)
        times[k] = std::clamp(options.default_switch_time, w.start, w.end);
    }
    return times;
  }

  // Single-aggressor probe runs: find each aggressor's victim-peak latency.
  // Probes always run on the (cheap) MOR path; the transistor abstraction
  // is probed with its nonlinear table model.
  GlitchAnalysisOptions probe = options;
  probe.align_aggressors = false;
  probe.certify = false;  // probes inform alignment only; certifying them
                          // would charge the exact-solve cost per aggressor
  if (probe.driver_model == DriverModelKind::kTransistor)
    probe.driver_model = DriverModelKind::kNonlinearTable;
  std::vector<double> latency(aggressors.size(), 0.0);
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    AggressorSpec solo = aggressors[k];
    solo.window = TimingWindow::of(probe.default_switch_time,
                                   probe.default_switch_time);
    const GlitchResult r = analyze(victim, {solo}, probe);
    // Time of the victim's peak relative to the aggressor's switch time.
    double t_peak = probe.default_switch_time;
    double best = 0.0;
    const Waveform& w = r.victim_wave;
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double dev = std::fabs(w.value(i) - w.first_value());
      if (dev > best) {
        best = dev;
        t_peak = w.time(i);
      }
    }
    latency[k] = t_peak - probe.default_switch_time;
  }

  // Common peak time: the earliest every aggressor can reach within its
  // window; each switch time is then clamped into its own window.
  double t_star = 0.0;
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    const TimingWindow& w = aggressors[k].window;
    const double earliest = (w.valid ? w.start : 0.0) + latency[k];
    t_star = std::max(t_star, earliest);
  }
  t_star = std::max(t_star, options.default_switch_time);
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    const TimingWindow& w = aggressors[k].window;
    double s = t_star - latency[k];
    if (w.valid) s = std::clamp(s, w.start, w.end);
    times[k] = std::max(s, 0.0);
  }
  return times;
}

GlitchAnalyzer::PreparedCluster GlitchAnalyzer::prepare(
    const VictimSpec& victim, const std::vector<AggressorSpec>& aggressors,
    const GlitchAnalysisOptions& options) {
  if (options.driver_model == DriverModelKind::kTransistor)
    throw std::runtime_error(
        "GlitchAnalyzer::analyze: transistor drivers need the SPICE path");
  PreparedCluster prepared;
  prepared.switch_times = align_switch_times(victim, aggressors, options);
  prepared.built = build_cluster(victim, aggressors, options);
  return prepared;
}

GlitchAnalyzer::ReducedOutcome GlitchAnalyzer::reduce(
    const PreparedCluster& prepared, const GlitchAnalysisOptions& options) {
  poll_cancel(options.cancel, "GlitchAnalyzer::analyze");
  SympvlOptions mor = options.mor;
  mor.cancel = options.cancel;  // deadlines reach into the Krylov sweep

  // Certificate band: the frequencies this transient resolves (slowest
  // feature 1/tstop up to a few samples per step).
  const double dt_eff = options.dt > 0.0 ? options.dt : options.tstop / 2000.0;
  const double s_min = 1.0 / options.tstop;
  const double s_max = 1.0 / (4.0 * dt_eff);

  ReducedOutcome out;
  ModelCache* cache = options.model_cache;
  ClusterFingerprint fp{};
  CanonicalKey canon{};
  const bool use_canonical = cache && options.canonical_cache;
  // The dense pencil is assembled once: it keys the cache, and on a miss
  // it feeds the reduction (the RcNetwork overload of sympvl_reduce
  // assembles exactly these matrices).
  const DenseMatrix g = prepared.built.network.g_matrix();
  const DenseMatrix c = prepared.built.network.c_matrix(true);
  const DenseMatrix b = prepared.built.network.b_matrix();
  if (cache) {
    fp = cluster_fingerprint(g, c, b, options.mor, options.certify,
                             options.cert_rel_tol, options.cert_freqs, s_min,
                             s_max);
    if (auto hit = cache->lookup(fp)) {
      out.payload = std::move(hit);
      out.from_cache = true;
      return out;
    }
  }
  if (use_canonical) {
    // Exact key missed: try the canonical (permutation/tolerance-
    // invariant) index. Cluster nets own contiguous node blocks, each
    // starting at its driver port node (extract_cluster layout).
    const RcNetwork& net = prepared.built.network;
    const std::size_t nets = net.port_count() / 2;
    std::vector<std::size_t> net_node_begin;
    net_node_begin.reserve(nets + 1);
    for (std::size_t k = 0; k < nets; ++k)
      net_node_begin.push_back(
          static_cast<std::size_t>(net.port_node(ClusterPorts::driver(k))));
    net_node_begin.push_back(static_cast<std::size_t>(net.node_count()));
    canon = canonical_cluster_fingerprint(
        g, c, b, net_node_begin, options.canonical_cache_tol, options.mor,
        options.certify, options.cert_rel_tol, options.cert_freqs, s_min,
        s_max);
    auto chit = cache->canonical_lookup(canon.key);
    if (chit && chit->agg_order.size() == canon.agg_order.size() &&
        chit->payload->model.port_count() == 2 * nets) {
      // Re-express the donor payload in this cluster's port order:
      // canonical slot c pairs the donor aggressor chit->agg_order[c]
      // with our aggressor canon.agg_order[c].
      std::vector<std::size_t> port_from(2 * nets);
      port_from[0] = 0;
      port_from[1] = 1;
      for (std::size_t slot = 0; slot < canon.agg_order.size(); ++slot) {
        const std::size_t req = canon.agg_order[slot];
        const std::size_t don = chit->agg_order[slot];
        port_from[2 * req] = 2 * don;
        port_from[2 * req + 1] = 2 * don + 1;
      }
      std::shared_ptr<CachedReducedModel> candidate =
          permute_payload_ports(*chit->payload, port_from);
      // Certificate gate — always, even when the run does not certify
      // fresh reductions: a tolerant hit is only trusted once its model
      // re-passes the a-posteriori certificate against THIS cluster's
      // exact pencil. Deadline expiry propagates as usual.
      CertifyOptions copt;
      copt.num_freqs = options.cert_freqs;
      copt.s_min = s_min;
      copt.s_max = s_max;
      copt.cancel = options.cancel;
      const Certificate gate =
          certify_reduced_model(net, candidate->model, true, copt);
      if (gate.pass(options.cert_rel_tol)) {
        // Attach the gate certificate only when the run certifies anyway,
        // so certify=false findings look identical to the fresh path.
        if (options.certify) {
          candidate->certificate = gate;
          candidate->have_certificate = true;
          candidate->certified = true;
        }
        candidate->account();
        cache->count_canonical_hit();
        out.payload = std::move(candidate);
        out.from_cache = true;
        out.canonical = true;
        return out;
      }
      cache->count_canonical_cert_reject();
    }
  }

  ReducedModel model = sympvl_reduce(g, c, b, mor);

  // A-posteriori certificate against the exact cluster. Never throws on
  // accuracy failure — the verifier's escalation ladder reads the verdict;
  // deadline expiry still propagates.
  Certificate certificate;
  bool certified = false;
  if (options.certify) {
    CertifyOptions copt;
    copt.num_freqs = options.cert_freqs;
    copt.s_min = s_min;
    copt.s_max = s_max;
    copt.cancel = options.cancel;
    certificate = certify_reduced_model(prepared.built.network, model, true,
                                        copt);
    certified = certificate.pass(options.cert_rel_tol);
  }

  ReducedEigenSystem eigen = diagonalize_reduced(model);

  if (cache) {
    // Deep-copy the payload outside any ClusterScope: cache-owned storage
    // outlives this victim, so it must not bind a charge to the victim's
    // (soon dead) accounting scope.
    std::shared_ptr<CachedReducedModel> payload;
    {
      resource::ClusterScope::Suspension off_the_books;
      payload = std::make_shared<CachedReducedModel>();
      payload->model = model;
      payload->eigen.d = eigen.d;
      payload->eigen.eta = eigen.eta;
      payload->certificate = certificate;
      payload->have_certificate = options.certify;
      payload->certified = certified;
      payload->account();
    }
    cache->insert(fp, payload);
    if (use_canonical)
      cache->canonical_insert(canon.key, std::move(canon.agg_order), payload);
    out.payload = std::move(payload);
  } else {
    // No cache: the payload lives and dies with this victim, so the
    // victim-scoped charges simply move along with the storage.
    auto payload = std::make_shared<CachedReducedModel>();
    payload->model = std::move(model);
    payload->eigen = std::move(eigen);
    payload->certificate = std::move(certificate);
    payload->have_certificate = options.certify;
    payload->certified = certified;
    payload->account();
    out.payload = std::move(payload);
  }
  return out;
}

GlitchAnalyzer::SimulateSetup GlitchAnalyzer::prepare_simulate(
    const VictimSpec& victim, const std::vector<AggressorSpec>& aggressors,
    const PreparedCluster& prepared, const ReducedOutcome& reduced,
    const GlitchAnalysisOptions& options) {
  const BuiltCluster& built = prepared.built;
  const std::vector<double>& switch_times = prepared.switch_times;
  const CachedReducedModel& payload = *reduced.payload;
  const double vdd = extractor_.tech().vdd;

  // Copy the (possibly shared, immutable) diagonalization into the
  // simulator under the victim's scope. Cached and fresh payloads are
  // bit-identical by the fingerprint contract, so the transient below
  // cannot tell them apart.
  SimulateSetup setup{
      ReducedSimulator(
          ReducedEigenSystem{payload.eigen.d, payload.eigen.eta}),
      ReducedSimOptions{},
      nullptr,
      reduced.payload,
      switch_times,
      aggressors.size()};
  ReducedSimulator& sim = setup.sim;

  // Victim driver.
  const CellModel& vic_model = chars_.model(victim.driver_cell);
  if (options.driver_model == DriverModelKind::kNonlinearTable) {
    const double vin = victim_input_level(
        chars_.library().by_name(victim.driver_cell), victim.held_high, vdd);
    setup.victim_holder = std::make_shared<NonlinearTableDriver>(
        std::make_shared<CellModel>(vic_model), SourceWave::dc(vin));
    sim.set_termination(ClusterPorts::driver(0), setup.victim_holder);
  } else if (victim.held_high && built.victim_drive_r > 0.0) {
    // Norton equivalent of the Thevenin holder to Vdd.
    sim.set_input(ClusterPorts::driver(0),
                  SourceWave::dc(vdd / built.victim_drive_r));
  }

  // Aggressor drivers.
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    const AggressorSpec& agg = aggressors[k];
    const std::size_t port = ClusterPorts::driver(k + 1);
    if (options.driver_model == DriverModelKind::kNonlinearTable) {
      const CellMaster& master = chars_.library().by_name(agg.driver_cell);
      const CellModel& model = chars_.model(agg.driver_cell);
      const bool in_rising = aggressor_input_rising(master, agg.rising);
      const SourceWave input =
          in_rising ? SourceWave::ramp(0.0, vdd, switch_times[k], agg.input_slew)
                    : SourceWave::ramp(vdd, 0.0, switch_times[k], agg.input_slew);
      const double load = extractor_.route_ground_cap(agg.route) +
                          agg.receiver_cap +
                          extractor_.run_coupling_cap(agg.run);
      sim.set_termination(port, std::make_shared<NonlinearTableDriver>(
                                    std::make_shared<CellModel>(model), input,
                                    model.warp(agg.rising, agg.input_slew, load)));
    } else {
      const double g = 1.0 / built.agg_drive_r[k];
      const SourceWave vout =
          aggressor_output_ramp(agg, switch_times[k], options);
      // Norton injection: i(t) = Vout(t) * g.
      std::vector<std::pair<double, double>> pts;
      for (const auto& [t, v] : vout.breakpoints()) pts.emplace_back(t, v * g);
      sim.set_input(port, pts.size() == 1 ? SourceWave::dc(pts.front().second)
                                          : SourceWave::pwl(std::move(pts)));
    }
  }

  setup.ropt.tstop = options.tstop;
  setup.ropt.dt = options.dt;
  setup.ropt.cancel = options.cancel;
  return setup;
}

GlitchResult GlitchAnalyzer::measure_reduced(const SimulateSetup& setup,
                                             const ReducedSimResult& res,
                                             double cpu_seconds) {
  check_finite_waves(res.port_voltages, "GlitchAnalyzer::analyze");

  const CachedReducedModel& payload = *setup.payload;
  GlitchResult out;
  out.cpu_seconds = cpu_seconds;
  out.reduced_order = payload.model.order();
  out.certificate = payload.certificate;  // copy: the payload may be shared
  out.certified = payload.certified;
  out.victim_wave = res.port_voltages[ClusterPorts::receiver(0)];
  out.peak = out.victim_wave.peak_deviation();
  out.peak_at_driver =
      res.port_voltages[ClusterPorts::driver(0)].peak_deviation();
  if (setup.aggressor_count > 0)
    out.aggressor_wave = res.port_voltages[ClusterPorts::receiver(1)];
  out.switch_times = setup.switch_times;

  // Electromigration audit: reconstruct the victim holder's current from
  // its port-voltage waveform through the (memoryless) driver model.
  if (setup.victim_holder) {
    const Waveform& vd = res.port_voltages[ClusterPorts::driver(0)];
    Waveform current;
    current.reserve(vd.size());
    for (std::size_t i = 0; i < vd.size(); ++i)
      current.append(vd.time(i),
                     setup.victim_holder->current(vd.value(i), vd.time(i)));
    out.victim_driver_rms_current = current.rms();
    out.victim_driver_peak_current =
        std::max(std::fabs(current.max_value()), std::fabs(current.min_value()));
  }
  return out;
}

GlitchResult GlitchAnalyzer::simulate_reduced(
    const VictimSpec& victim, const std::vector<AggressorSpec>& aggressors,
    const PreparedCluster& prepared, const ReducedOutcome& reduced,
    const GlitchAnalysisOptions& options) {
  Timer timer;
  SimulateSetup setup =
      prepare_simulate(victim, aggressors, prepared, reduced, options);
  const ReducedSimResult res = setup.sim.run(setup.ropt);
  return measure_reduced(setup, res, timer.elapsed());
}

GlitchResult GlitchAnalyzer::analyze(const VictimSpec& victim,
                                     const std::vector<AggressorSpec>& aggressors,
                                     const GlitchAnalysisOptions& options) {
  const PreparedCluster prepared = prepare(victim, aggressors, options);
  Timer timer;
  const ReducedOutcome reduced = reduce(prepared, options);
  GlitchResult out = simulate_reduced(victim, aggressors, prepared, reduced,
                                      options);
  out.cpu_seconds = timer.elapsed();  // reduce + transient, as before
  return out;
}

GlitchResult GlitchAnalyzer::analyze_spice(const VictimSpec& victim,
                                           const std::vector<AggressorSpec>& aggressors,
                                           const GlitchAnalysisOptions& options) {
  const std::vector<double> switch_times =
      align_switch_times(victim, aggressors, options);

  // For apples-to-apples engine comparisons the SPICE path uses the exact
  // circuit of the MOR path. Transistor drivers bring their own junction
  // caps and conductances, so their cluster is built with bare (gmin-only)
  // ports and no model output caps.
  GlitchAnalysisOptions build_opts = options;
  if (options.driver_model == DriverModelKind::kTransistor) {
    build_opts.driver_model = DriverModelKind::kFixedResistor;
    build_opts.fixed_resistance = 1e18;  // gmin-class stamp, no model caps
  }
  BuiltCluster built = build_cluster(victim, aggressors, build_opts);

  const double vdd = extractor_.tech().vdd;
  Circuit ckt;
  std::vector<int> port_nodes;
  for (std::size_t p = 0; p < built.network.port_count(); ++p)
    port_nodes.push_back(ckt.add_node("port" + std::to_string(p)));
  built.network.export_to(ckt, port_nodes);

  const int vic_drv = port_nodes[ClusterPorts::driver(0)];
  const int vic_rcv = port_nodes[ClusterPorts::receiver(0)];

  Timer timer;
  switch (options.driver_model) {
    case DriverModelKind::kLinearResistor:
    case DriverModelKind::kFixedResistor: {
      if (victim.held_high && built.victim_drive_r > 0.0)
        ckt.add_isource(Circuit::ground(), vic_drv,
                        SourceWave::dc(vdd / built.victim_drive_r));
      for (std::size_t k = 0; k < aggressors.size(); ++k) {
        const double g = 1.0 / built.agg_drive_r[k];
        const SourceWave vout =
            aggressor_output_ramp(aggressors[k], switch_times[k], options);
        std::vector<std::pair<double, double>> pts;
        for (const auto& [t, v] : vout.breakpoints()) pts.emplace_back(t, v * g);
        ckt.add_isource(Circuit::ground(),
                        port_nodes[ClusterPorts::driver(k + 1)],
                        pts.size() == 1 ? SourceWave::dc(pts.front().second)
                                        : SourceWave::pwl(std::move(pts)));
      }
      break;
    }
    case DriverModelKind::kNonlinearTable: {
      const double vin = victim_input_level(
          chars_.library().by_name(victim.driver_cell), victim.held_high, vdd);
      ckt.add_termination(vic_drv, std::make_shared<NonlinearTableDriver>(
                                       std::make_shared<CellModel>(
                                           chars_.model(victim.driver_cell)),
                                       SourceWave::dc(vin)));
      for (std::size_t k = 0; k < aggressors.size(); ++k) {
        const AggressorSpec& agg = aggressors[k];
        const CellMaster& master = chars_.library().by_name(agg.driver_cell);
        const CellModel& model = chars_.model(agg.driver_cell);
        const bool in_rising = aggressor_input_rising(master, agg.rising);
        const SourceWave input =
            in_rising
                ? SourceWave::ramp(0.0, vdd, switch_times[k], agg.input_slew)
                : SourceWave::ramp(vdd, 0.0, switch_times[k], agg.input_slew);
        const double load = extractor_.route_ground_cap(agg.route) +
                            agg.receiver_cap +
                            extractor_.run_coupling_cap(agg.run);
        ckt.add_termination(
            port_nodes[ClusterPorts::driver(k + 1)],
            std::make_shared<NonlinearTableDriver>(
                std::make_shared<CellModel>(model), input,
                model.warp(agg.rising, agg.input_slew, load)));
      }
      break;
    }
    case DriverModelKind::kTransistor: {
      const int vdd_node = ckt.add_node("vdd");
      ckt.add_vsource(vdd_node, Circuit::ground(), SourceWave::dc(vdd));
      auto tie_side_pins = [&](const CellMaster& master,
                               std::map<std::string, int>& pins) {
        for (const auto& pin : master.input_pins()) {
          if (pins.count(pin)) continue;
          const int tied = ckt.add_node();
          ckt.add_vsource(tied, Circuit::ground(),
                          SourceWave::dc(master.tie_high(pin) ? vdd : 0.0));
          pins[pin] = tied;
        }
      };
      // Victim holder cell.
      {
        const CellMaster& master = chars_.library().by_name(victim.driver_cell);
        const int in = ckt.add_node("vic_in");
        ckt.add_vsource(in, Circuit::ground(),
                        SourceWave::dc(victim_input_level(master, victim.held_high, vdd)));
        std::map<std::string, int> pins{{master.switching_pin(), in},
                                        {master.output_pin(), vic_drv}};
        tie_side_pins(master, pins);
        master.instantiate(ckt, pins, vdd_node);
      }
      // Aggressor driver cells with switching inputs.
      for (std::size_t k = 0; k < aggressors.size(); ++k) {
        const AggressorSpec& agg = aggressors[k];
        const CellMaster& master = chars_.library().by_name(agg.driver_cell);
        const bool in_rising = aggressor_input_rising(master, agg.rising);
        const int in = ckt.add_node("agg_in" + std::to_string(k));
        ckt.add_vsource(in, Circuit::ground(),
                        in_rising
                            ? SourceWave::ramp(0.0, vdd, switch_times[k], agg.input_slew)
                            : SourceWave::ramp(vdd, 0.0, switch_times[k], agg.input_slew));
        std::map<std::string, int> pins{
            {master.switching_pin(), in},
            {master.output_pin(), port_nodes[ClusterPorts::driver(k + 1)]}};
        tie_side_pins(master, pins);
        master.instantiate(ckt, pins, vdd_node);
      }
      break;
    }
  }

  Simulator sim(ckt);
  TransientOptions topt;
  topt.tstop = options.tstop;
  topt.dt = options.dt;
  topt.exploit_linearity = options.spice_exploit_linearity;
  topt.cancel = options.cancel;
  const TransientResult res = sim.transient(
      topt, {vic_rcv, vic_drv,
             aggressors.empty() ? vic_rcv
                                : port_nodes[ClusterPorts::receiver(1)]});
  check_finite_waves(res.probes, "GlitchAnalyzer::analyze_spice");

  GlitchResult out;
  out.cpu_seconds = timer.elapsed();
  out.victim_wave = res.probes[0];
  out.peak = out.victim_wave.peak_deviation();
  out.peak_at_driver = res.probes[1].peak_deviation();
  if (!aggressors.empty()) out.aggressor_wave = res.probes[2];
  out.switch_times = switch_times;
  return out;
}

}  // namespace xtv
