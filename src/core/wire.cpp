#include "core/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

namespace xtv {

namespace {

constexpr char kMagic[4] = {'x', 'w', 'f', '1'};
constexpr std::size_t kHeaderBytes = 4 + 1 + 4;  // magic + type + length
constexpr std::size_t kChecksumBytes = 8;
/// Findings are a few hundred bytes; anything near this cap means the
/// stream is garbage, not a big frame.
constexpr std::uint32_t kMaxPayload = 1u << 20;

std::uint64_t fnv1a64(std::uint8_t type, const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  h ^= type;
  h *= 1099511628211ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

}  // namespace

const char* wire_type_name(WireType t) {
  switch (t) {
    case WireType::kHello: return "hello";
    case WireType::kVictimStart: return "victim-start";
    case WireType::kVictimDone: return "victim-done";
    case WireType::kVictimSkipped: return "victim-skipped";
    case WireType::kHeartbeat: return "heartbeat";
    case WireType::kShardDone: return "shard-done";
    case WireType::kJobSubmit: return "job-submit";
    case WireType::kJobAccepted: return "job-accepted";
    case WireType::kJobRejected: return "job-rejected";
    case WireType::kJobStatus: return "job-status";
    case WireType::kJobFinding: return "job-finding";
    case WireType::kJobDone: return "job-done";
    case WireType::kJobQuery: return "job-query";
    case WireType::kWorkerSetup: return "worker-setup";
    case WireType::kWorkerReady: return "worker-ready";
    case WireType::kWorkerReject: return "worker-reject";
    case WireType::kUnitAssign: return "unit-assign";
    case WireType::kUnitResult: return "unit-result";
    case WireType::kUnitDone: return "unit-done";
  }
  return "unknown";
}

std::string wire_encode_frame(WireType type, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  out.append(kMagic, sizeof(kMagic));
  out += static_cast<char>(type);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  put_u64(out, fnv1a64(static_cast<std::uint8_t>(type), payload.data(),
                       payload.size()));
  return out;
}

void WireDecoder::feed(const char* data, std::size_t n) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

bool WireDecoder::next(WireFrame* frame) {
  if (corrupt_) return false;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderBytes) return false;
  const char* p = buffer_.data() + consumed_;
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    corrupt_ = true;
    return false;
  }
  const std::uint8_t type = static_cast<std::uint8_t>(p[4]);
  const std::uint32_t len = get_u32(p + 5);
  if (type < static_cast<std::uint8_t>(WireType::kHello) ||
      type > static_cast<std::uint8_t>(WireType::kUnitDone) ||
      len > kMaxPayload) {
    corrupt_ = true;
    return false;
  }
  if (avail < kHeaderBytes + len + kChecksumBytes) return false;
  const char* payload = p + kHeaderBytes;
  const std::uint64_t want = get_u64(payload + len);
  if (fnv1a64(type, payload, len) != want) {
    corrupt_ = true;
    return false;
  }
  frame->type = static_cast<WireType>(type);
  frame->payload.assign(payload, len);
  consumed_ += kHeaderBytes + len + kChecksumBytes;
  return true;
}

bool WireWriter::send(WireType type, const std::string& payload) {
  const std::string frame = wire_encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t w = ::write(fd_, frame.data() + off, frame.size() - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;  // EPIPE: supervisor gone; worker should wind down
    }
  }
  return true;
}

}  // namespace xtv
