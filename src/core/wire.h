// Length-prefixed, checksummed wire format between shard workers and the
// supervisor (DESIGN.md §12).
//
// A worker process streams its findings back over an anonymous pipe; a
// worker can die at any byte, so the stream must be self-delimiting and
// self-validating. Every frame is
//
//   "xwf1" | type (1 byte) | payload length (u32 LE) | payload
//        | fnv1a-64 over (type byte + payload) (u64 LE)
//
// The decoder consumes bytes incrementally (pipes deliver arbitrary
// chunks), yields only frames whose magic, length, and checksum all
// verify, and latches a permanent `corrupt` flag on the first violation —
// a corrupted stream means the worker's memory can no longer be trusted,
// and the supervisor treats it exactly like a crash.
//
// Payloads are text: victim-finding frames reuse the journal codec
// (core/journal.h journal_encode/journal_decode), whose hexfloat doubles
// round-trip bit-exactly — the property the bit-identical multi-process
// merge rests on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace xtv {

enum class WireType : std::uint8_t {
  kHello = 1,        ///< worker alive; payload "<shard index> <pid>"
  kVictimStart,      ///< payload "<victim net>" — in-flight marker
  kVictimDone,       ///< payload journal_encode(record)
  kVictimSkipped,    ///< payload "<victim net>" — ineligible, no record
  kHeartbeat,        ///< payload "<sequence>"
  kShardDone,        ///< payload "<records streamed>" — clean completion

  // --- Verification service (src/serve, DESIGN.md §13) ---
  // The daemon speaks the same framing — bytes, checksums, and corruption
  // latch unchanged — on its Unix-domain client sockets, its optional TCP
  // listener, and the daemon <-> job-runner pipes; only the connection
  // envelope (deadlines, caps, keepalive) differs per transport, and it
  // lives entirely in serve/daemon.cpp. Payloads are text; the first
  // token is a correlation token (client direction) or the 16-hex job
  // key. kHeartbeat doubles as the daemon's idle TCP keepalive, and a
  // kJobRejected with token "-" is a connection-level verdict (e.g. the
  // connection cap) rather than an answer to one submission.
  kJobSubmit,        ///< client->daemon: "<token> <job spec k=v ...>"
  kJobAccepted,      ///< daemon->client: "<token> <job key> <state>"
  kJobRejected,      ///< daemon->client: "<token> <reason> <detail>"
  kJobStatus,        ///< daemon->client: "<job key> <state> <k=v ...>"
  kJobFinding,       ///< "<job key> <journal payload>" — one settled victim
  kJobDone,          ///< "<job key> <done|conceded> <k=v ...>" — terminal
  kJobQuery,         ///< client->daemon: "<token> <job key>" — status poll

  // --- Remote shard fan-out (src/serve/remote.h, DESIGN.md §14) ---
  // A coordinator (chip_audit --workers, or a daemon job runner) dials
  // xtv_worker processes over TCP and leases work units — contiguous
  // victim slices — to them. Same framing; payloads are text. Every
  // unit-scoped frame carries "<unit id> <attempt>" so completions from a
  // partitioned-then-healed worker are recognized as stale and dropped
  // idempotently. kHeartbeat (above) doubles as the worker liveness
  // signal, exactly like a shard worker's pipe heartbeat.
  kWorkerSetup,      ///< coord->worker: "<options hash hex> <spec text>"
  kWorkerReady,      ///< worker->coord: "<options hash hex> <pid>"
  kWorkerReject,     ///< worker->coord: "<reason> <detail>" — typed refusal
  kUnitAssign,       ///< coord->worker: "<unit id> <attempt> <victims...>"
  kUnitResult,       ///< worker->coord: "<unit id> <attempt> r <journal payload>"
                     ///<            or "<unit id> <attempt> s <victim>" (skip)
  kUnitDone,         ///< worker->coord: "<unit id> <attempt> <results streamed>"
};

const char* wire_type_name(WireType t);

struct WireFrame {
  WireType type = WireType::kHello;
  std::string payload;
};

/// Serializes one frame (exposed for tests and the writer).
std::string wire_encode_frame(WireType type, const std::string& payload);

/// Incremental frame parser over an arbitrary byte stream.
class WireDecoder {
 public:
  /// Appends raw bytes from the pipe.
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete, verified frame. Returns false when the
  /// buffer holds no complete frame (or the stream is corrupt).
  bool next(WireFrame* frame);

  /// Latched on the first magic/length/checksum violation.
  bool corrupt() const { return corrupt_; }

  /// Bytes buffered but not yet consumed (a non-zero value at worker EOF
  /// is the torn tail of an interrupted frame — expected on a crash).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

/// Thread-safe framed writer over a pipe fd. Worker-side: the victim loop
/// and the heartbeat thread share one writer, so frames never interleave.
class WireWriter {
 public:
  explicit WireWriter(int fd) : fd_(fd) {}

  /// Writes one frame atomically w.r.t. other send() calls (EINTR-safe
  /// full write). Returns false when the pipe is gone (EPIPE — the
  /// supervisor abandoned this worker); callers treat that as "stop".
  bool send(WireType type, const std::string& payload);

 private:
  int fd_;
  std::mutex mutex_;
};

}  // namespace xtv
