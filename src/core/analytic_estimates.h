// Closed-form crosstalk and delay estimates from the paper's reference
// list, used as a fast conservative screening layer ahead of the MOR
// analysis:
//
//  * Devgan's coupled-noise upper bound (ICCAD'97, the paper's ref. [7]):
//    for a victim held through resistance R against an aggressor ramping
//    with slew rate mu through coupling capacitance Cc, the victim
//    excursion never exceeds mu * Cc * R_total — exact in the limit of an
//    aggressor much slower than the victim's RC, conservative otherwise.
//
//  * Sakurai's distributed-RC delay expressions (Trans. ED 1993, the
//    paper's ref. [18]): 50% delay of a driver + distributed line + load,
//    t50 = 0.377 Rw Cw + 0.693 (Rd Cw + Rd CL + Rw CL).
//
// The ChipVerifier can use the Devgan bound to skip clusters that cannot
// possibly violate the noise margin (VerifierOptions::use_noise_screen),
// which is exactly the role such estimates played in production flows.
#pragma once

#include "cells/characterize.h"
#include "core/cluster.h"
#include "extract/extractor.h"

namespace xtv {

/// Devgan-style upper bound on the victim glitch peak (volts, positive).
/// `r_victim` is the victim's holding resistance (driver) plus the shared
/// wire resistance to the coupling region; `cc` the total coupling cap;
/// `slew_rate` the aggressor's output dV/dt (V/s). Clamped to `vdd`.
double devgan_noise_bound(double r_victim, double cc, double slew_rate,
                          double vdd);

/// Convenience wrapper: computes the bound for a victim/aggressor spec
/// pair using extractor rules and the characterized driver models
/// (aggressor slew from its timing table at its load).
double devgan_noise_bound(const VictimSpec& victim, const AggressorSpec& agg,
                          const Extractor& extractor,
                          CharacterizedLibrary& chars);

/// Sakurai 50% delay of a driver (resistance rd) driving a distributed RC
/// line (total rw, cw) into a load cl:
///   t50 = 0.377 rw cw + 0.693 (rd cw + rd cl + rw cl).
double sakurai_delay50(double rd, double rw, double cw, double cl);

/// Sakurai 90% rise time of the same structure:
///   t90 = 1.02 rw cw + 2.21 (rd cw + rd cl + rw cl).
double sakurai_rise90(double rd, double rw, double cw, double cl);

}  // namespace xtv
