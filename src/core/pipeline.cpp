#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "core/analytic_estimates.h"
#include "core/delay_analyzer.h"
#include "util/deadline.h"
#include "util/resource.h"
#include "util/timer.h"

namespace xtv {

namespace {

bool is_deadline_error(const std::exception& e) {
  const auto* numerical = dynamic_cast<const NumericalError*>(&e);
  return numerical && numerical->code() == StatusCode::kDeadlineExceeded;
}

bool is_resource_error(const std::exception& e) {
  const auto* numerical = dynamic_cast<const NumericalError*>(&e);
  return numerical && numerical->code() == StatusCode::kResourceExceeded;
}

/// splitmix64 finalizer — the audit lottery must be a pure function of
/// (victim, seed) so a parallel run audits exactly what a serial run would.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool audit_selected(std::size_t v, const VerifierOptions& options) {
  if (options.audit_fraction <= 0.0) return false;
  if (options.audit_fraction >= 1.0) return true;
  const std::uint64_t h =
      mix64(static_cast<std::uint64_t>(v) ^ mix64(options.audit_seed));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53 < options.audit_fraction;
}

/// Time of the waveform's largest deviation from its initial value — the
/// quantity the audit compares across engines (glitch peak arrival).
double wave_peak_time(const Waveform& w) {
  double best = -1.0, t_peak = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double dev = std::fabs(w.value(i) - w.first_value());
    if (dev > best) {
      best = dev;
      t_peak = w.time(i);
    }
  }
  return t_peak;
}

}  // namespace

const char* pipeline_stage_name(PipelineStage s) {
  switch (s) {
    case PipelineStage::kBuildCluster: return "build-cluster";
    case PipelineStage::kNoiseScreen: return "noise-screen";
    case PipelineStage::kReduce: return "reduce";
    case PipelineStage::kSimulateReduced: return "simulate-reduced";
    case PipelineStage::kFullSim: return "full-sim";
    case PipelineStage::kCertify: return "certify";
    case PipelineStage::kAudit: return "audit";
    case PipelineStage::kBound: return "bound";
    case PipelineStage::kDone: return "done";
  }
  return "unknown";
}

void record_first_error(VictimFinding& finding, const std::exception& e) {
  if (!finding.error.empty()) return;
  finding.error = e.what();
  const auto* numerical = dynamic_cast<const NumericalError*>(&e);
  finding.error_code = numerical ? numerical->code() : StatusCode::kInternal;
}

/// Mutable per-run state shared by the stages. Lives on the worker's
/// stack for exactly one victim; the pipeline object itself stays const.
struct VictimPipeline::RunState {
  std::size_t v = 0;
  bool shed = false;
  double vdd = 0.0;
  const CancelToken* budget = nullptr;

  JournalRecord record;
  bool specs_built = false;
  bool ineligible = false;

  VictimSpec victim;
  std::vector<AggressorSpec> aggressors;

  /// Rung 0 options (cluster budget token + certification knobs applied).
  GlitchAnalysisOptions base;
  /// Options of the attempt currently in flight (rung or escalation).
  GlitchAnalysisOptions attempt;
  /// Options that produced the accepted MOR result — escalation raises
  /// order FROM these, and the audit replays them on the golden engine.
  GlitchAnalysisOptions mor_used;

  GlitchAnalyzer::PreparedCluster prepared;
  GlitchAnalyzer::ReducedOutcome reduced;
  GlitchResult res;

  int rung = 0;  ///< 0 = base, 1 = halved dt, 2 = + doubled order, 3 = full sim
  bool have_sim = false;
  bool deadline_expired = false;
  bool resource_exhausted = false;
  bool accuracy_failed = false;

  // Certification escalation loop bookkeeping.
  bool cert_entered = false;
  bool escalating = false;
  bool escalation_stopped = false;
  std::size_t q = 0;
};

VictimPipeline::VictimPipeline(PipelineContext ctx) : ctx_(std::move(ctx)) {}

VictimPipeline::Parked::Parked(Deadline deadline, std::size_t mem_limit_bytes)
    : scope_(std::make_unique<resource::ClusterScope>(mem_limit_bytes)),
      budget_(deadline),
      state_(std::make_unique<RunState>()) {}

VictimPipeline::Parked::~Parked() = default;

std::size_t VictimPipeline::Parked::victim_net() const { return state_->v; }

std::size_t VictimPipeline::Parked::order() const { return setup_->sim.order(); }

DriverModelKind VictimPipeline::Parked::driver_model() const {
  return state_->attempt.driver_model;
}

double VictimPipeline::Parked::tstop() const { return setup_->ropt.tstop; }

double VictimPipeline::Parked::dt() const { return setup_->ropt.dt; }

BatchLane VictimPipeline::Parked::lane() {
  BatchLane lane;
  lane.sim = &setup_->sim;
  lane.options = setup_->ropt;
  lane.victim_net = static_cast<std::uint64_t>(state_->v);
  lane.scope = scope_.get();
  return lane;
}

std::optional<JournalRecord> VictimPipeline::run(std::size_t victim_net,
                                                 bool shed) const {
  Outcome out = begin(victim_net, shed);
  if (!out.parked) return std::move(out.record);
  // Scalar completion of the parked attempt: integrate here, on this
  // thread, exactly as the pre-batching stage would have. The integration
  // CPU time is folded back so finding.cpu_seconds accounts for it.
  Parked& parked = *out.parked;
  BatchLaneResult lane;
  ThreadCpuTimer integration_timer;
  try {
    resource::ClusterScope::Activation activation(parked.scope_.get());
    lane.result = parked.setup_->sim.run(parked.setup_->ropt);
  } catch (...) {
    lane.error = std::current_exception();
  }
  parked.cpu_begin_ += integration_timer.elapsed();
  return finish(parked, std::move(lane));
}

PipelineStage VictimPipeline::run_machine(RunState& s, PipelineStage stage,
                                          bool can_park) const {
  while (stage != PipelineStage::kDone) {
    // Park point: the FIRST reduced-transient attempt (and only it) may
    // be handed to the batch scheduler. Retries (rung > 0) and
    // certification escalations re-simulate on the scalar path.
    if (can_park && stage == PipelineStage::kSimulateReduced && s.rung == 0 &&
        !s.escalating)
      return stage;
    if (ctx_.stage_trace) ctx_.stage_trace(s.v, stage);
    // Attempt stages are the ones the recovery ladder owns: a failure
    // there advances the rung (or the escalation loop) instead of
    // abandoning the victim. Everything else (spec build, screening,
    // the bound itself) escapes to the pessimistic kFailed envelope.
    const bool attempt_stage =
        (stage == PipelineStage::kBuildCluster && s.specs_built) ||
        stage == PipelineStage::kReduce ||
        stage == PipelineStage::kSimulateReduced ||
        stage == PipelineStage::kFullSim;
    try {
      stage = step(s, stage);
    } catch (const std::exception& e) {
      if (!attempt_stage) throw;
      stage = on_attempt_failure(s, e);
    }
    if (s.ineligible) return PipelineStage::kDone;
  }
  return PipelineStage::kDone;
}

VictimPipeline::Outcome VictimPipeline::begin(std::size_t victim_net,
                                              bool shed) const {
  const VerifierOptions& options = *ctx_.options;

  ThreadCpuTimer victim_timer;
  // Detach from any ambient scope so the victim's own scope nests on
  // nothing: a parked scope outlives this call and must never point back
  // into another victim's (or the scheduler's) accounting.
  resource::ClusterScope* const outer =
      resource::ClusterScope::exchange_current(nullptr);
  struct RestoreCurrent {
    resource::ClusterScope* outer;
    ~RestoreCurrent() { resource::ClusterScope::exchange_current(outer); }
  } restore{outer};

  // Wall-clock and memory budgets for everything this victim does (dense
  // matrices, Krylov blocks, waveforms, and — when parked — its batch
  // lane). A breach surfaces as the typed kResourceExceeded inside an
  // attempt stage.
  auto parked = std::unique_ptr<Parked>(new Parked(
      options.cluster_deadline_ms > 0.0
          ? Deadline::after_seconds(options.cluster_deadline_ms * 1e-3)
          : Deadline::unlimited(),
      options.cluster_mem_mb > 0.0
          ? static_cast<std::size_t>(options.cluster_mem_mb * 1024.0 * 1024.0)
          : 0));
  RunState& s = *parked->state_;
  s.v = victim_net;
  s.shed = shed;
  s.vdd = ctx_.extractor->tech().vdd;
  s.budget = &parked->budget_;
  VictimFinding& finding = s.record.finding;
  finding.net = victim_net;

  Outcome out;
  try {
    PipelineStage stage =
        run_machine(s, PipelineStage::kBuildCluster, /*can_park=*/true);
    if (stage == PipelineStage::kSimulateReduced) {
      if (ctx_.stage_trace) ctx_.stage_trace(victim_net, stage);
      try {
        Timer setup_timer;
        parked->setup_.emplace(ctx_.analyzer->prepare_simulate(
            s.victim, s.aggressors, s.prepared, s.reduced, s.attempt));
        parked->setup_seconds_ = setup_timer.elapsed();
        parked->cpu_begin_ = victim_timer.elapsed();
        out.parked = std::move(parked);
        return out;
      } catch (const std::exception& e) {
        // Simulator setup failures take the same ladder the monolithic
        // simulate stage would have.
        run_machine(s, on_attempt_failure(s, e), /*can_park=*/false);
      }
    }
    if (s.ineligible) return out;  // both members empty: run()'s nullopt
  } catch (const std::exception& e) {
    // Per-cluster isolation: even a failure outside the ladder (cluster
    // construction, screening, the bound itself) must not abort the chip
    // sweep. The victim is reported maximally pessimistically for manual
    // review.
    record_first_error(finding, e);
    finding.status = FindingStatus::kFailed;
    finding.peak = -s.vdd;
    finding.peak_fraction = 1.0;
    finding.violation = true;
  }
  finding.cpu_seconds = victim_timer.elapsed();
  out.record = std::move(s.record);
  return out;
}

JournalRecord VictimPipeline::finish(Parked& parked,
                                     BatchLaneResult lane) const {
  RunState& s = *parked.state_;
  ThreadCpuTimer victim_timer;
  resource::ClusterScope::Activation activation(parked.scope_.get());
  VictimFinding& finding = s.record.finding;
  try {
    PipelineStage stage = PipelineStage::kCertify;
    try {
      if (lane.error) std::rethrow_exception(lane.error);
      GlitchResult got = ctx_.analyzer->measure_reduced(
          *parked.setup_, lane.result, parked.setup_seconds_);
      // The scalar stage's non-escalating acceptance, verbatim: parked
      // victims are always first attempts (rung 0, no escalation).
      s.res = std::move(got);
      s.have_sim = true;
      finding.status = FindingStatus::kAnalyzed;
      s.mor_used = s.attempt;
    } catch (const std::exception& e) {
      stage = on_attempt_failure(s, e);
    }
    run_machine(s, stage, /*can_park=*/false);
  } catch (const std::exception& e) {
    record_first_error(finding, e);
    finding.status = FindingStatus::kFailed;
    finding.peak = -s.vdd;
    finding.peak_fraction = 1.0;
    finding.violation = true;
  }
  finding.cpu_seconds = parked.cpu_begin_ + victim_timer.elapsed();
  return std::move(s.record);
}

PipelineStage VictimPipeline::step(RunState& s, PipelineStage stage) const {
  switch (stage) {
    case PipelineStage::kBuildCluster: return stage_build_cluster(s);
    case PipelineStage::kNoiseScreen: return stage_noise_screen(s);
    case PipelineStage::kReduce: return stage_reduce(s);
    case PipelineStage::kSimulateReduced: return stage_simulate_reduced(s);
    case PipelineStage::kFullSim: return stage_full_sim(s);
    case PipelineStage::kCertify: return stage_certify(s);
    case PipelineStage::kAudit: return stage_audit(s);
    case PipelineStage::kBound: return stage_bound(s);
    case PipelineStage::kDone: break;
  }
  return PipelineStage::kDone;
}

PipelineStage VictimPipeline::stage_build_cluster(RunState& s) const {
  if (!s.specs_built) {
    // First entry: victim/aggressor specs from the pruned database.
    auto cluster = ctx_.verifier->build_victim_cluster(
        *ctx_.design, *ctx_.summaries, *ctx_.pruned, s.v, &s.record.finding);
    s.victim = std::move(cluster.first);
    s.aggressors = std::move(cluster.second);
    s.specs_built = true;
    if (s.aggressors.empty()) {
      s.ineligible = true;
      return PipelineStage::kDone;
    }
    const VerifierOptions& options = *ctx_.options;
    s.base = options.glitch;
    s.base.cancel = s.budget;
    s.base.certify = options.certify;
    s.base.cert_rel_tol = options.cert_rel_tol;
    s.base.cert_freqs = options.cert_freqs;
    s.base.model_cache = ctx_.model_cache;
    s.base.canonical_cache = options.canonical_cache;
    s.base.canonical_cache_tol = options.canonical_cache_tol;
    s.attempt = s.base;
    s.mor_used = s.base;
    // A memory-budget breach, like an expired deadline, skips the
    // simulation rungs; a shed victim starts there — admission control
    // decided it must not be admitted to simulation at all.
    s.resource_exhausted = s.shed;
    if (s.shed) {
      s.record.finding.error = "shed under global memory pressure";
      s.record.finding.error_code = StatusCode::kResourceExceeded;
    }
    return PipelineStage::kNoiseScreen;
  }
  // Attempt entry (one per ladder rung / escalation step): worst-case
  // alignment and extraction under the attempt's own options — a changed
  // timestep changes the alignment probes, so this stage re-runs.
  s.prepared = ctx_.analyzer->prepare(s.victim, s.aggressors, s.attempt);
  return PipelineStage::kReduce;
}

PipelineStage VictimPipeline::stage_noise_screen(RunState& s) const {
  const VerifierOptions& options = *ctx_.options;
  if (options.use_noise_screen && !s.shed) {
    // Conservative pre-screen: the sum of per-aggressor Devgan bounds
    // caps the combined glitch; below the margin, skip the simulation.
    double bound = 0.0;
    for (const AggressorSpec& agg : s.aggressors)
      bound += devgan_noise_bound(s.victim, agg, *ctx_.extractor, *ctx_.chars);
    if (bound < options.glitch_threshold * s.vdd) {
      s.record.screened = true;
      return PipelineStage::kDone;
    }
  }
  return s.resource_exhausted ? PipelineStage::kBound
                              : PipelineStage::kBuildCluster;
}

PipelineStage VictimPipeline::stage_reduce(RunState& s) const {
  s.reduced = ctx_.analyzer->reduce(s.prepared, s.attempt);
  return PipelineStage::kSimulateReduced;
}

PipelineStage VictimPipeline::stage_simulate_reduced(RunState& s) const {
  GlitchResult got = ctx_.analyzer->simulate_reduced(
      s.victim, s.aggressors, s.prepared, s.reduced, s.attempt);
  if (s.escalating) {
    // Escalation step accepted: adopt the raised-order result. If the
    // Krylov basis stopped growing, raising the order again is a no-op —
    // the model is already as exact as this cluster permits.
    ++s.record.finding.cert_order_escalations;
    const bool grew = got.reduced_order > s.res.reduced_order;
    s.res = std::move(got);
    s.mor_used = s.attempt;
    if (!grew) s.escalation_stopped = true;
    return PipelineStage::kCertify;
  }
  s.res = std::move(got);
  s.have_sim = true;
  s.record.finding.status = s.rung == 0 ? FindingStatus::kAnalyzed
                                        : FindingStatus::kAnalyzedAfterRetry;
  s.mor_used = s.attempt;
  return PipelineStage::kCertify;
}

PipelineStage VictimPipeline::stage_full_sim(RunState& s) const {
  // Ladder rung 3: full unreduced-cluster simulation on the golden
  // engine — slow, but immune to every reduction-side breakdown.
  s.res = ctx_.analyzer->analyze_spice(s.victim, s.aggressors, s.base);
  s.have_sim = true;
  s.record.finding.status = FindingStatus::kFellBackToFullSim;
  return PipelineStage::kCertify;
}

PipelineStage VictimPipeline::on_attempt_failure(
    RunState& s, const std::exception& e) const {
  VictimFinding& finding = s.record.finding;
  record_first_error(finding, e);
  ++finding.retries;
  s.deadline_expired = is_deadline_error(e);
  s.resource_exhausted = is_resource_error(e);
  if (s.escalating) {
    // Escalation failures finalize the verdict with the last accepted
    // (uncertified) result; stage_certify routes to the proper bound.
    s.escalation_stopped = true;
    return PipelineStage::kCertify;
  }
  // A rung cancelled by the deadline skips straight to the bound — the
  // remaining rungs share the same expired budget and could only burn
  // more wall time failing. A memory breach likewise: every later rung
  // uses MORE memory (doubled order, full unreduced circuit).
  if (s.deadline_expired || s.resource_exhausted) return PipelineStage::kBound;
  switch (s.rung) {
    case 0:
      // Rung 1: halved timestep (Newton on a stiff cluster often
      // converges once the per-step excitation change shrinks).
      s.rung = 1;
      s.attempt = s.base;
      s.attempt.dt =
          0.5 * (s.attempt.dt > 0.0 ? s.attempt.dt : s.attempt.tstop / 2000.0);
      return PipelineStage::kBuildCluster;
    case 1: {
      // Rung 2: halved timestep + doubled reduced order (a too-small
      // Krylov space shows up as a non-passive or inaccurate model).
      s.rung = 2;
      const std::size_t base_order =
          s.attempt.mor.max_order > 0 ? s.attempt.mor.max_order
                                      : 8 * (1 + s.aggressors.size());
      s.attempt.mor.max_order = 2 * base_order;
      return PipelineStage::kBuildCluster;
    }
    case 2:
      s.rung = 3;
      return PipelineStage::kFullSim;
    default:
      return PipelineStage::kBound;
  }
}

PipelineStage VictimPipeline::stage_certify(RunState& s) const {
  const VerifierOptions& options = *ctx_.options;
  VictimFinding& finding = s.record.finding;
  if (!s.cert_entered) {
    // Certification only vouches for MOR results; a full-sim fallback
    // (or a certify-off run) passes straight through to finalization.
    const bool mor_result =
        s.have_sim && (finding.status == FindingStatus::kAnalyzed ||
                       finding.status == FindingStatus::kAnalyzedAfterRetry);
    if (!(options.certify && mor_result))
      return s.have_sim ? PipelineStage::kAudit : PipelineStage::kBound;
    s.cert_entered = true;
    s.q = std::max(s.res.reduced_order, s.mor_used.mor.max_order);
  }
  // Upward escalation: a failed certificate re-reduces at raised Krylov
  // order — each step adds moments, tightening the Padé approximant —
  // until it certifies, the ceiling is hit, or the basis is exhausted.
  // Budget expiry mid-escalation routes to the usual deadline/resource
  // statuses instead: an uncertified-but-plausible peak is NOT reported
  // as if it were trustworthy.
  if (!s.res.certified && !s.deadline_expired && !s.resource_exhausted &&
      !s.escalation_stopped && s.q < options.max_mor_order) {
    s.q = std::min(s.q + options.mor_order_step, options.max_mor_order);
    s.attempt = s.mor_used;
    s.attempt.mor.max_order = s.q;
    s.escalating = true;
    return PipelineStage::kBuildCluster;
  }
  finding.certified = s.res.certified;
  finding.cert_max_rel_err = s.res.certificate.max_rel_err;
  if (s.res.certified) {
    finding.status = FindingStatus::kCertified;
    return PipelineStage::kAudit;
  }
  // The accepted result cannot vouch for itself: discard it and let the
  // bound stage report conservatively.
  s.have_sim = false;
  if (!s.deadline_expired && !s.resource_exhausted) {
    s.accuracy_failed = true;
    if (finding.error.empty()) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "%.3g",
                    s.res.certificate.max_rel_err);
      finding.error = "accuracy certificate failed at order " +
                      std::to_string(s.res.reduced_order) + ": rel err " +
                      detail;
      if (!s.res.certificate.passivity_ok)
        finding.error += " (passivity/boundedness lost)";
      if (!s.res.certificate.probe_error.empty())
        finding.error += "; probe: " + s.res.certificate.probe_error;
      finding.error_code = StatusCode::kCertificationFailed;
    }
  }
  return PipelineStage::kBound;
}

PipelineStage VictimPipeline::stage_audit(RunState& s) const {
  const VerifierOptions& options = *ctx_.options;
  VictimFinding& finding = s.record.finding;
  finding.peak = s.res.peak;
  finding.peak_fraction = std::fabs(s.res.peak) / s.vdd;
  finding.violation = finding.peak_fraction >= options.glitch_threshold;
  finding.aggressors_analyzed = s.aggressors.size();
  finding.reduced_order = s.res.reduced_order;
  finding.driver_rms_current = s.res.victim_driver_rms_current;
  finding.em_violation =
      options.em_rms_limit > 0.0 &&
      s.res.victim_driver_rms_current > options.em_rms_limit;

  // Sampled SPICE cross-audit: a deterministic victim-keyed lottery
  // re-simulates this cluster on the golden engine (same abstraction
  // the accepted MOR result used) and diffs glitch peak and arrival
  // time. The audit only adds information — a finding never degrades
  // because its golden run was refused by the deadline or the budget.
  const bool mor_based =
      finding.status == FindingStatus::kAnalyzed ||
      finding.status == FindingStatus::kAnalyzedAfterRetry ||
      finding.status == FindingStatus::kCertified;
  if (mor_based && audit_selected(s.v, options)) {
    try {
      GlitchAnalysisOptions gold_opts = s.mor_used;
      gold_opts.certify = false;
      const GlitchResult gold =
          ctx_.analyzer->analyze_spice(s.victim, s.aggressors, gold_opts);
      finding.audited = true;
      finding.audit_peak_err = std::fabs(s.res.peak - gold.peak);
      finding.audit_time_err = std::fabs(wave_peak_time(s.res.victim_wave) -
                                         wave_peak_time(gold.victim_wave));
      finding.audit_pass =
          finding.audit_peak_err <= options.audit_peak_tol_frac * s.vdd &&
          finding.audit_time_err <= options.audit_time_tol;
    } catch (const std::exception&) {
      // Golden run refused (deadline/budget) or broke down: the victim
      // goes unaudited; its own result stands untouched.
    }
  }

  if (options.analyze_delay_change) {
    // Timing recalculation: the victim as a SWITCHING net, aggressors
    // forced opposite (worst case) vs the decoupled classic load.
    DelayAnalyzer delays(*ctx_.extractor, *ctx_.chars);
    DelayAnalysisOptions dopt;
    dopt.driver_model =
        options.glitch.driver_model == DriverModelKind::kNonlinearTable
            ? DriverModelKind::kNonlinearTable
            : DriverModelKind::kLinearResistor;
    dopt.victim_input_slew = ctx_.design->nets[s.v].input_slew;
    dopt.mor = options.glitch.mor;
    try {
      const CoupledDelayResult d =
          delays.analyze(s.victim, /*victim_rising=*/true, s.aggressors, dopt);
      finding.delay_decoupled = d.delay_decoupled;
      finding.delay_coupled = d.delay_coupled;
    } catch (const std::exception&) {
      // A victim that never completes its transition within the window
      // (or whose budget ran out mid-pass) is reported with zeroed
      // delays rather than aborting the audit.
    }
  }
  return PipelineStage::kDone;
}

PipelineStage VictimPipeline::stage_bound(RunState& s) const {
  const VerifierOptions& options = *ctx_.options;
  VictimFinding& finding = s.record.finding;
  // Terminal rung: Devgan analytic bound. Conservative (each term is an
  // upper bound on that aggressor's contribution), so the reported peak
  // is >= the true peak and a pass here is a real pass. The exemption
  // makes this stage live up to "cannot fail": computing the bound for
  // an already-over-budget cluster must not re-raise the breach.
  resource::ClusterScope::Exemption exempt;
  double bound = 0.0;
  for (const AggressorSpec& agg : s.aggressors)
    bound += devgan_noise_bound(s.victim, agg, *ctx_.extractor, *ctx_.chars);
  bound = std::min(bound, s.vdd);
  finding.status = s.resource_exhausted ? FindingStatus::kResourceBound
                   : s.deadline_expired ? FindingStatus::kDeadlineBound
                   : s.accuracy_failed  ? FindingStatus::kAccuracyBound
                                        : FindingStatus::kFellBackToBound;
  finding.peak = s.victim.held_high ? -bound : bound;
  finding.peak_fraction = bound / s.vdd;
  finding.violation = finding.peak_fraction >= options.glitch_threshold;
  finding.aggressors_analyzed = s.aggressors.size();
  return PipelineStage::kDone;
}

}  // namespace xtv
