// Coupling-ratio pruning and cluster formation (paper Section 3).
//
// Chip-level extraction yields millions of coupled elements; pruning
// "identifies potentially problematic nets and reduces the size of
// potentially problematic clusters by decoupling weak crosstalk". The
// filter keeps a victim-aggressor coupling when its capacitance ratio
// (optionally weighted by relative driver strength — the paper's "cell and
// context information") clears a threshold; clusters are then the
// connected components of the retained coupling graph. On the paper's DSP
// this took average cluster size from ~105 nets to 2-5.
#pragma once

#include <cstddef>
#include <vector>

namespace xtv {

/// Chip-level per-net summary consumed by pruning.
struct NetSummary {
  std::size_t id = 0;
  double ground_cap = 0.0;        ///< grounded (non-coupling) cap (F)
  double driver_resistance = 1e3; ///< effective holding/drive resistance (ohm)

  struct Coupling {
    std::size_t other = 0;
    double cap = 0.0;  ///< coupling cap to `other` (F)
  };
  std::vector<Coupling> couplings;
};

struct PruningOptions {
  double ratio_threshold = 0.05;   ///< keep if cc/ctotal (weighted) >= this
  double abs_floor = 0.5e-15;      ///< always drop couplings below this (F)
  std::size_t max_aggressors = 12; ///< keep at most this many per victim
  bool use_driver_strength = true; ///< weight the ratio by relative drive
};

struct PruneStats {
  std::size_t nets = 0;
  std::size_t couplings_before = 0;
  std::size_t couplings_after = 0;
  /// Mean analyzed-cluster size (victim + aggressors) before pruning
  /// (every directly-coupled neighbor counts) and after (retained only).
  double avg_cluster_before = 0.0;
  double avg_cluster_after = 0.0;
  std::size_t max_cluster_after = 0;
};

struct PruneResult {
  /// retained[v] = aggressor couplings kept for victim v (sorted by
  /// descending weighted ratio).
  std::vector<std::vector<NetSummary::Coupling>> retained;
  PruneStats stats;
};

/// Runs the pruning filter over a chip-level database. `nets[i].id` must
/// equal i.
PruneResult prune_couplings(const std::vector<NetSummary>& nets,
                            const PruningOptions& options = {});

/// Weighted coupling ratio used by the filter (exposed for tests and
/// threshold-sweep ablations): cc / ctotal(victim), scaled by
/// 2 * Rv / (Rv + Ra) when driver strength is enabled — an aggressor
/// stronger than the victim's holder raises the effective ratio.
double coupling_ratio(const NetSummary& victim, const NetSummary& aggressor,
                      double cap, bool use_driver_strength);

}  // namespace xtv
