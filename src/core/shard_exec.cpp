#include "core/shard_exec.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "core/wire.h"
#include "util/log.h"
#include "util/status.h"
#include "util/subprocess.h"

namespace xtv {

namespace {

bool parse_index(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str()) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// --- Test hooks (env-driven, inert in production) ---

/// Worker-side: crash deterministically on reaching a chosen victim.
struct CrashHook {
  bool armed = false;
  std::size_t victim = 0;
  enum Mode { kAbort, kSegv, kFpe, kExit42 } mode = kAbort;
  std::string once_file;

  static CrashHook from_env() {
    CrashHook h;
    const char* v = std::getenv("XTV_TEST_CRASH_VICTIM");
    if (!v || !*v || !parse_index(v, &h.victim)) return h;
    h.armed = true;
    if (const char* m = std::getenv("XTV_TEST_CRASH_MODE")) {
      if (std::strcmp(m, "segv") == 0) h.mode = kSegv;
      else if (std::strcmp(m, "fpe") == 0) h.mode = kFpe;
      else if (std::strcmp(m, "exit42") == 0) h.mode = kExit42;
    }
    if (const char* f = std::getenv("XTV_TEST_CRASH_ONCE_FILE")) h.once_file = f;
    return h;
  }

  void maybe_crash(std::size_t net) const {
    if (!armed || net != victim) return;
    if (!once_file.empty()) {
      // O_CREAT|O_EXCL succeeds exactly once across all worker processes:
      // the first reaching the victim crashes, retries run clean.
      const int fd =
          ::open(once_file.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
      if (fd < 0) return;
      ::close(fd);
    }
    switch (mode) {
      case kSegv: ::raise(SIGSEGV); break;
      case kFpe: ::raise(SIGFPE); break;
      case kExit42: ::_exit(42);
      case kAbort: std::abort();
    }
  }
};

/// Supervisor-side: SIGKILL the worker that announces victim-start for a
/// chosen net, up to a count. Victim-keyed (not record-count-keyed) so the
/// injection is deterministic across replays regardless of shard pacing.
struct KillOnStartHook {
  bool armed = false;
  std::size_t victim = 0;
  int remaining = 0;

  static KillOnStartHook from_env() {
    KillOnStartHook h;
    const char* v = std::getenv("XTV_TEST_SHARD_KILL_ON_START");
    if (!v || !*v) return h;
    errno = 0;
    char* end = nullptr;
    const unsigned long long net = std::strtoull(v, &end, 10);
    if (errno != 0 || end == v) return h;
    h.armed = true;
    h.victim = static_cast<std::size_t>(net);
    h.remaining = (end && *end == ':') ? std::atoi(end + 1) : 1;
    return h;
  }
};

// --- Worker ---

[[noreturn]] void worker_main(int pipe_fd, std::size_t spawn_index,
                              const std::vector<std::size_t>& victims,
                              bool bound_only, const ShardCallbacks& cb,
                              const ShardExecOptions& opt) {
  subprocess::ignore_sigpipe();
  std::unique_ptr<ResultJournal> journal;
  if (!opt.journal_path.empty()) {
    try {
      // flush_every=1: the stdio buffer is empty whenever a signal can
      // arrive, so the crash marker never interleaves a buffered record.
      journal = std::make_unique<ResultJournal>(
          journal_shard_path(opt.journal_path, spawn_index), /*resume=*/false,
          opt.options_hash, /*flush_every=*/1);
    } catch (const std::exception& e) {
      logf(LogLevel::kWarn, "shard %zu: cannot open shard journal: %s",
           spawn_index, e.what());
    }
  }
  subprocess::install_crash_marker_handler(journal ? journal->fd() : -1);
  if (cb.worker_init) {
    try {
      cb.worker_init();
    } catch (const std::exception& e) {
      logf(LogLevel::kWarn, "shard %zu: worker_init failed: %s", spawn_index,
           e.what());
    }
  }

  WireWriter writer(pipe_fd);
  writer.send(WireType::kHello, std::to_string(spawn_index) + " " +
                                    std::to_string(::getpid()));

  // Heartbeat thread: proves liveness while a large cluster computes.
  // The writer's internal mutex keeps its frames from interleaving the
  // victim loop's; the condition variable makes shutdown prompt.
  std::mutex beat_mutex;
  std::condition_variable beat_cv;
  bool stop = false;
  std::thread beater;
  if (opt.heartbeat_ms > 0) {
    beater = std::thread([&] {
      std::uint64_t seq = 0;
      const auto period =
          std::chrono::duration<double, std::milli>(opt.heartbeat_ms);
      std::unique_lock<std::mutex> lock(beat_mutex);
      while (!beat_cv.wait_for(lock, period, [&] { return stop; }))
        writer.send(WireType::kHeartbeat, std::to_string(seq++));
    });
  }

  const CrashHook hook = CrashHook::from_env();
  const KillOnStartHook kill_hook = KillOnStartHook::from_env();
  std::size_t streamed = 0;
  bool pipe_ok = true;
  for (std::size_t v : victims) {
    subprocess::set_crash_marker_victim(v);
    if (!writer.send(WireType::kVictimStart, std::to_string(v))) {
      pipe_ok = false;
      break;
    }
    // Kill-on-start test hook: pause after announcing the targeted victim
    // so the supervisor's SIGKILL deterministically lands before analysis
    // can outrun the signal (the Devgan-bound rung finishes in
    // microseconds otherwise).
    if (kill_hook.armed && v == kill_hook.victim) ::usleep(250 * 1000);
    // The hook is skipped on the bound-only rung so tests can observe a
    // successful concession (rung 3) distinctly from the synthesized
    // last-resort record (rung 4, reachable via the kill-on-start hook).
    if (!bound_only) hook.maybe_crash(v);
    std::optional<JournalRecord> rec;
    try {
      rec = cb.analyze(v, bound_only);
    } catch (...) {
      // analyze() contractually absorbs analysis failures; an escape means
      // this process is no longer trustworthy — die loudly so the
      // supervisor quarantines the victim.
      std::abort();
    }
    subprocess::set_crash_marker_victim(subprocess::kNoCrashVictim);
    if (!rec) {
      if (!writer.send(WireType::kVictimSkipped, std::to_string(v))) {
        pipe_ok = false;
        break;
      }
      continue;
    }
    // Journal before streaming: on a crash between the two, the record is
    // recovered from the shard journal instead of being re-analyzed.
    if (journal) journal->append(*rec);
    if (!writer.send(WireType::kVictimDone, journal_encode(*rec))) {
      pipe_ok = false;
      break;
    }
    ++streamed;
  }
  if (journal) journal->flush();
  {
    std::lock_guard<std::mutex> lock(beat_mutex);
    stop = true;
  }
  beat_cv.notify_all();
  if (beater.joinable()) beater.join();
  if (pipe_ok) writer.send(WireType::kShardDone, std::to_string(streamed));
  // _exit, not exit: atexit handlers and static destructors belong to the
  // supervisor image this process was forked from.
  ::_exit(0);
}

// --- Supervisor ---

struct Worker {
  pid_t pid = -1;
  int fd = -1;
  std::size_t spawn_index = 0;
  std::size_t restarts = 0;  ///< restart budget consumed by this shard chain
  std::vector<std::size_t> pending;  ///< victims not yet done/skipped
  bool bound_only = false;
  bool quarantine_retry = false;
  long long in_flight = -1;
  std::chrono::steady_clock::time_point last_heard;
  WireDecoder decoder;
  bool shard_done = false;
  bool eof = false;
  bool killed_for_stall = false;
  bool killed_for_corruption = false;
};

class ShardSupervisor {
 public:
  ShardSupervisor(const ShardCallbacks& cb, const ShardExecOptions& opt,
                  ShardExecStats* stats)
      : cb_(cb), opt_(opt), stats_(stats),
        kill_hook_(KillOnStartHook::from_env()) {}

  std::map<std::size_t, JournalRecord> run(
      const std::vector<std::size_t>& work) {
    const std::size_t n = work.size();
    const std::size_t shards = std::max<std::size_t>(
        1, std::min(opt_.processes, n ? n : std::size_t{1}));
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shards && begin < n; ++s) {
      const std::size_t count = n / shards + (s < n % shards ? 1 : 0);
      spawn(std::vector<std::size_t>(work.begin() + begin,
                                     work.begin() + begin + count),
            /*restarts=*/0, /*bound_only=*/false, /*quarantine_retry=*/false);
      begin += count;
    }

    const double stall_ms =
        opt_.heartbeat_ms > 0 ? 10.0 * opt_.heartbeat_ms : 0.0;
    while (!live_.empty()) {
      std::vector<struct pollfd> fds;
      fds.reserve(live_.size());
      for (const auto& w : live_) fds.push_back({w->fd, POLLIN, 0});
      const int rc =
          ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
      if (rc < 0 && errno != EINTR)
        throw NumericalError(StatusCode::kInternal,
                             std::string("shard supervisor poll failed: ") +
                                 std::strerror(errno));
      if (cb_.on_tick) cb_.on_tick();
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < live_.size(); ++i) {
        Worker& w = *live_[i];
        if (rc > 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
          w.eof = pump(w);
        if (!w.eof && !w.killed_for_stall && stall_ms > 0 &&
            ms_between(w.last_heard, now) > stall_ms) {
          logf(LogLevel::kWarn,
               "shard worker %d silent for >%.0f ms; presuming wedged and "
               "killing it",
               static_cast<int>(w.pid), stall_ms);
          w.killed_for_stall = true;
          ::kill(w.pid, SIGKILL);
        }
      }
      // Detach EOFed workers first (finish_worker may spawn replacements,
      // which must not be classified against this round's pollfds).
      std::vector<std::unique_ptr<Worker>> done;
      for (auto it = live_.begin(); it != live_.end();) {
        if ((*it)->eof) {
          done.push_back(std::move(*it));
          it = live_.erase(it);
        } else {
          ++it;
        }
      }
      for (auto& w : done) finish_worker(std::move(w));
    }
    return std::move(results_);
  }

 private:
  void spawn(std::vector<std::size_t> victims, std::size_t restarts,
             bool bound_only, bool quarantine_retry) {
    if (victims.empty()) return;
    subprocess::Pipe pipe;
    try {
      pipe = subprocess::make_pipe();
    } catch (const std::exception& e) {
      for (std::size_t v : victims)
        concede_now(v, std::string("pipe creation failed: ") + e.what());
      return;
    }
    const std::size_t index = spawn_counter_;
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(pipe.read_fd);
      for (const auto& w : live_)
        if (w->fd >= 0) ::close(w->fd);
      worker_main(pipe.write_fd, index, victims, bound_only, cb_, opt_);
    }
    if (pid < 0) {
      ::close(pipe.read_fd);
      ::close(pipe.write_fd);
      for (std::size_t v : victims) concede_now(v, "fork failed");
      return;
    }
    ++spawn_counter_;
    if (stats_) stats_->workers_spawned = spawn_counter_;
    ::close(pipe.write_fd);
    subprocess::set_nonblocking(pipe.read_fd);
    auto w = std::make_unique<Worker>();
    w->pid = pid;
    w->fd = pipe.read_fd;
    w->spawn_index = index;
    w->restarts = restarts;
    w->pending = std::move(victims);
    w->bound_only = bound_only;
    w->quarantine_retry = quarantine_retry;
    w->last_heard = std::chrono::steady_clock::now();
    live_.push_back(std::move(w));
  }

  /// Drains the worker's pipe into its decoder. Returns true on EOF.
  bool pump(Worker& w) {
    char buf[65536];
    for (;;) {
      const ssize_t n = ::read(w.fd, buf, sizeof(buf));
      if (n > 0) {
        w.decoder.feed(buf, static_cast<std::size_t>(n));
        WireFrame f;
        while (w.decoder.next(&f)) handle_frame(w, f);
        if (w.decoder.corrupt() && !w.killed_for_corruption) {
          w.killed_for_corruption = true;
          ::kill(w.pid, SIGKILL);
        }
        continue;
      }
      if (n == 0) return true;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return true;  // unexpected read error: treat like worker death
    }
  }

  void handle_frame(Worker& w, const WireFrame& f) {
    w.last_heard = std::chrono::steady_clock::now();
    switch (f.type) {
      case WireType::kHello:
      case WireType::kHeartbeat:
        break;
      case WireType::kVictimStart: {
        std::size_t v = 0;
        if (!parse_index(f.payload, &v)) break;
        w.in_flight = static_cast<long long>(v);
        if (kill_hook_.armed && kill_hook_.remaining > 0 &&
            v == kill_hook_.victim) {
          --kill_hook_.remaining;
          ::kill(w.pid, SIGKILL);
        }
        break;
      }
      case WireType::kVictimSkipped: {
        std::size_t v = 0;
        if (!parse_index(f.payload, &v)) break;
        settle(w, v);
        break;
      }
      case WireType::kVictimDone: {
        JournalRecord rec;
        if (!journal_decode(f.payload, rec)) {
          // Checksummed frame carrying an undecodable record: the worker's
          // memory is suspect — same treatment as stream corruption.
          if (!w.killed_for_corruption) {
            w.killed_for_corruption = true;
            ::kill(w.pid, SIGKILL);
          }
          break;
        }
        const std::size_t v = rec.finding.net;
        if (w.bound_only) stamp_concession(rec);
        results_[v] = std::move(rec);
        publish(results_[v]);
        settle(w, v);
        break;
      }
      case WireType::kShardDone:
        w.shard_done = true;
        break;
      default:
        break;  // serve-protocol types never originate from shard workers
    }
  }

  /// Streams a just-finalized record to the caller's listener (if any).
  void publish(const JournalRecord& rec) {
    if (cb_.on_result) cb_.on_result(rec);
  }

  void settle(Worker& w, std::size_t v) {
    w.pending.erase(std::remove(w.pending.begin(), w.pending.end(), v),
                    w.pending.end());
    if (w.in_flight == static_cast<long long>(v)) w.in_flight = -1;
  }

  void finish_worker(std::unique_ptr<Worker> w) {
    ::close(w->fd);
    w->fd = -1;
    subprocess::ExitStatus st;
    subprocess::wait_for(w->pid, &st);
    std::string reason;
    if (w->killed_for_stall) {
      reason = "heartbeat silence (worker presumed wedged; killed)";
    } else if (w->killed_for_corruption) {
      reason = "wire stream corruption";
    } else if (!st.clean()) {
      reason = st.describe();
    } else if (!w->shard_done || !w->pending.empty()) {
      reason = "worker exited without completing its shard";
    } else {
      return;  // clean completion
    }
    handle_crash(*w, reason);
  }

  void handle_crash(Worker& w, const std::string& reason) {
    if (stats_) ++stats_->worker_crashes;
    std::vector<std::size_t> remaining = w.pending;
    long long suspect = -1;

    // The shard journal outlives the worker: recover records it appended
    // but never streamed, and read its crash marker for attribution.
    if (!opt_.journal_path.empty()) {
      const auto prior = ResultJournal::load(
          journal_shard_path(opt_.journal_path, w.spawn_index));
      for (const auto& rec : prior.records) {
        const std::size_t v = rec.finding.net;
        const auto it = std::find(remaining.begin(), remaining.end(), v);
        if (it == remaining.end()) continue;
        JournalRecord merged = rec;
        if (w.bound_only) stamp_concession(merged);
        results_[v] = std::move(merged);
        publish(results_[v]);
        remaining.erase(it);
      }
      for (const auto& m : prior.crash_markers)
        if (m.victim != subprocess::kNoCrashVictim)
          suspect = static_cast<long long>(m.victim);
    }
    if (suspect < 0) suspect = w.in_flight;  // last victim-start frame
    if (suspect >= 0 &&
        std::find(remaining.begin(), remaining.end(),
                  static_cast<std::size_t>(suspect)) == remaining.end())
      suspect = -1;  // already accounted for; cannot be the culprit

    logf(LogLevel::kWarn,
         "shard worker %d (spawn %zu%s) died: %s; suspect victim %lld, %zu "
         "victim(s) outstanding",
         static_cast<int>(w.pid), w.spawn_index,
         w.bound_only ? ", bound-only"
                      : (w.quarantine_retry ? ", quarantine retry" : ""),
         reason.c_str(), suspect, remaining.size());

    if (w.bound_only) {
      // Rung 4: even the conservative-bound process died. Synthesize the
      // suspect's record in-supervisor and respawn for the rest.
      if (suspect >= 0) {
        const std::size_t v = static_cast<std::size_t>(suspect);
        concede_now(v, reason_for(v) + "; conservative-bound computation "
                                       "also crashed (" +
                           reason + ")");
        remaining.erase(std::remove(remaining.begin(), remaining.end(), v),
                        remaining.end());
      } else {
        for (std::size_t v : remaining)
          concede_now(v, reason_for(v) + "; conservative-bound computation "
                                         "also crashed (" +
                             reason + ")");
        remaining.clear();
      }
      spawn(std::move(remaining), w.restarts, /*bound_only=*/true,
            /*quarantine_retry=*/false);
      return;
    }

    if (w.quarantine_retry) {
      // Rung 3: the solo fresh-process retry crashed too. Concede through
      // a bound-only process; the stamp rewrites its records.
      for (std::size_t v : remaining)
        concede_reason_[v] =
            "worker process crashed twice analyzing this victim (" + reason +
            ")";
      spawn(std::move(remaining), w.restarts, /*bound_only=*/true,
            /*quarantine_retry=*/false);
      return;
    }

    // Rungs 1/2: quarantine the suspect into a solo fresh process and
    // restart the rest of the shard against its restart budget.
    if (suspect >= 0) {
      const std::size_t v = static_cast<std::size_t>(suspect);
      concede_reason_[v] =
          "worker process crashed analyzing this victim (" + reason + ")";
      if (stats_) ++stats_->victims_quarantined;
      remaining.erase(std::remove(remaining.begin(), remaining.end(), v),
                      remaining.end());
      spawn({v}, w.restarts, /*bound_only=*/false, /*quarantine_retry=*/true);
    }
    if (remaining.empty()) return;
    if (w.restarts >= opt_.max_shard_restarts) {
      logf(LogLevel::kWarn,
           "shard restart budget (%zu) exhausted; conceding %zu victim(s) to "
           "the conservative bound",
           opt_.max_shard_restarts, remaining.size());
      for (std::size_t v : remaining)
        concede_reason_[v] =
            "shard restart budget exhausted after repeated worker crashes (" +
            reason + ")";
      spawn(std::move(remaining), w.restarts, /*bound_only=*/true,
            /*quarantine_retry=*/false);
    } else {
      if (stats_) ++stats_->shard_restarts;
      spawn(std::move(remaining), w.restarts + 1, /*bound_only=*/false,
            /*quarantine_retry=*/false);
    }
  }

  /// Rewrites a bound-only worker's record into the concession contract:
  /// the conservative peak stands, the status says why it was conceded.
  void stamp_concession(JournalRecord& rec) {
    rec.screened = false;
    rec.finding.status = FindingStatus::kShardCrashed;
    rec.finding.error_code = StatusCode::kWorkerCrashed;
    rec.finding.error =
        "conceded to conservative bound: " + reason_for(rec.finding.net);
  }

  std::string reason_for(std::size_t victim) const {
    const auto it = concede_reason_.find(victim);
    return it != concede_reason_.end()
               ? it->second
               : std::string("worker process crashed repeatedly");
  }

  /// Last resort: a record synthesized by the supervisor itself.
  void concede_now(std::size_t victim, const std::string& why) {
    logf(LogLevel::kWarn,
         "victim %zu: synthesizing pessimistic record in supervisor: %s",
         victim, why.c_str());
    results_[victim] = cb_.concede(victim, why);
    publish(results_[victim]);
  }

  const ShardCallbacks& cb_;
  const ShardExecOptions& opt_;
  ShardExecStats* stats_;
  KillOnStartHook kill_hook_;
  std::vector<std::unique_ptr<Worker>> live_;
  std::map<std::size_t, JournalRecord> results_;
  /// victim -> crash description, recorded when the quarantine ladder
  /// decides a victim will be conceded (consumed by stamp_concession).
  std::map<std::size_t, std::string> concede_reason_;
  std::size_t spawn_counter_ = 0;
};

}  // namespace

std::map<std::size_t, JournalRecord> run_process_shards(
    const std::vector<std::size_t>& work, const ShardCallbacks& callbacks,
    const ShardExecOptions& options, ShardExecStats* stats) {
  ShardSupervisor supervisor(callbacks, options, stats);
  return supervisor.run(work);
}

}  // namespace xtv
