// Staged per-victim verification pipeline (DESIGN.md §11).
//
// One victim's journey through the verifier is an explicit state machine:
//
//   BuildCluster -> NoiseScreen -> Reduce -> SimulateReduced -> Certify
//        ^                                                        |
//        +--------------- (escalation / retry rungs) -------------+
//        |                                                        |
//     FullSim (rung 3)                                      Audit / Bound
//
// The retry/degradation ladder and the certification escalation loop are
// *stage transitions*, not nested branches: a failed attempt routes back
// to BuildCluster with the next rung's options (halved timestep, doubled
// Krylov order), then to FullSim, and finally to the Devgan Bound stage,
// which cannot fail. Every victim leaves the machine through Audit (an
// accepted simulation result) or Bound (a conservative analytic one), so
// no victim is ever silently dropped — the same accounting contract the
// monolithic analyze_victim() upheld, now with one stage per concern.
//
// Semantics are a faithful port of the pre-staged verifier: rung option
// derivation, first-error retention, deadline/resource short-circuits,
// certification verdicts and upward escalation, the audit lottery, the
// delay pass, and the pessimistic kFailed envelope are bit-compatible.
// Parallel, cached, resumed, and serial runs produce identical findings.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/glitch_analyzer.h"
#include "core/journal.h"
#include "core/pruning.h"
#include "core/verifier.h"
#include "mor/model_cache.h"

namespace xtv {

/// Stages a victim can occupy. kBuildCluster is re-entered once per
/// analysis attempt (each rung re-runs alignment and extraction under its
/// own options); kFullSim is the golden-engine fallback rung; kBound is
/// the terminal conservative rung that cannot fail.
enum class PipelineStage {
  kBuildCluster = 0,  ///< victim/aggressor specs, alignment, extraction
  kNoiseScreen,       ///< Devgan pre-screen (skip simulation when safe)
  kReduce,            ///< SyMPVL + certificate + eigen (cache-aware)
  kSimulateReduced,   ///< reduced transient, peak/EM measurement
  kFullSim,           ///< full unreduced golden simulation (ladder rung 3)
  kCertify,           ///< certificate verdict + upward order escalation
  kAudit,             ///< result finalization, SPICE lottery, delay pass
  kBound,             ///< conservative Devgan bound (terminal fallback)
  kDone,
};

const char* pipeline_stage_name(PipelineStage s);

/// Keeps the FIRST failure a cluster exhibited: later ladder rungs may
/// fail differently, but the root cause is what the report should show.
void record_first_error(VictimFinding& finding, const std::exception& e);

/// Everything a VictimPipeline needs to analyze victims. All pointers are
/// non-owning and must outlive the pipeline; the referenced objects are
/// either const, internally synchronized (CharacterizedLibrary,
/// ModelCache), or only touched through thread-safe entry points, so one
/// context may be shared by every worker thread.
struct PipelineContext {
  const ChipVerifier* verifier = nullptr;
  const Extractor* extractor = nullptr;
  CharacterizedLibrary* chars = nullptr;
  GlitchAnalyzer* analyzer = nullptr;
  const ChipDesign* design = nullptr;
  const std::vector<NetSummary>* summaries = nullptr;
  const PruneResult* pruned = nullptr;
  const VerifierOptions* options = nullptr;
  /// Shared reduced-model cache (null = reuse disabled).
  ModelCache* model_cache = nullptr;
  /// Optional stage-entry hook (tests/benches observe transitions). Runs
  /// on the worker thread; must be thread-safe and must not throw.
  std::function<void(std::size_t victim, PipelineStage stage)> stage_trace;
};

/// Drives one victim at a time through the stages. Stateless between
/// run() calls — safe to share across worker threads.
class VictimPipeline {
 public:
  explicit VictimPipeline(PipelineContext ctx);

  /// Full analysis of one victim cluster under the context's options.
  /// `shed` marks a victim refused admission by the memory governor (it
  /// enters the machine already resource-exhausted and exits through
  /// kBound). Returns nullopt for ineligible victims (no retained
  /// aggressor survives the window/correlation filters).
  std::optional<JournalRecord> run(std::size_t victim_net, bool shed) const;

 private:
  struct RunState;

  PipelineStage step(RunState& s, PipelineStage stage) const;
  PipelineStage on_attempt_failure(RunState& s, const std::exception& e) const;

  PipelineStage stage_build_cluster(RunState& s) const;
  PipelineStage stage_noise_screen(RunState& s) const;
  PipelineStage stage_reduce(RunState& s) const;
  PipelineStage stage_simulate_reduced(RunState& s) const;
  PipelineStage stage_full_sim(RunState& s) const;
  PipelineStage stage_certify(RunState& s) const;
  PipelineStage stage_audit(RunState& s) const;
  PipelineStage stage_bound(RunState& s) const;

  PipelineContext ctx_;
};

}  // namespace xtv
