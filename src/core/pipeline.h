// Staged per-victim verification pipeline (DESIGN.md §11).
//
// One victim's journey through the verifier is an explicit state machine:
//
//   BuildCluster -> NoiseScreen -> Reduce -> SimulateReduced -> Certify
//        ^                                                        |
//        +--------------- (escalation / retry rungs) -------------+
//        |                                                        |
//     FullSim (rung 3)                                      Audit / Bound
//
// The retry/degradation ladder and the certification escalation loop are
// *stage transitions*, not nested branches: a failed attempt routes back
// to BuildCluster with the next rung's options (halved timestep, doubled
// Krylov order), then to FullSim, and finally to the Devgan Bound stage,
// which cannot fail. Every victim leaves the machine through Audit (an
// accepted simulation result) or Bound (a conservative analytic one), so
// no victim is ever silently dropped — the same accounting contract the
// monolithic analyze_victim() upheld, now with one stage per concern.
//
// Semantics are a faithful port of the pre-staged verifier: rung option
// derivation, first-error retention, deadline/resource short-circuits,
// certification verdicts and upward escalation, the audit lottery, the
// delay pass, and the pessimistic kFailed envelope are bit-compatible.
// Parallel, cached, resumed, and serial runs produce identical findings.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/glitch_analyzer.h"
#include "core/journal.h"
#include "core/pruning.h"
#include "core/verifier.h"
#include "mor/batch_sim.h"
#include "mor/model_cache.h"
#include "util/deadline.h"
#include "util/resource.h"

namespace xtv {

/// Stages a victim can occupy. kBuildCluster is re-entered once per
/// analysis attempt (each rung re-runs alignment and extraction under its
/// own options); kFullSim is the golden-engine fallback rung; kBound is
/// the terminal conservative rung that cannot fail.
enum class PipelineStage {
  kBuildCluster = 0,  ///< victim/aggressor specs, alignment, extraction
  kNoiseScreen,       ///< Devgan pre-screen (skip simulation when safe)
  kReduce,            ///< SyMPVL + certificate + eigen (cache-aware)
  kSimulateReduced,   ///< reduced transient, peak/EM measurement
  kFullSim,           ///< full unreduced golden simulation (ladder rung 3)
  kCertify,           ///< certificate verdict + upward order escalation
  kAudit,             ///< result finalization, SPICE lottery, delay pass
  kBound,             ///< conservative Devgan bound (terminal fallback)
  kDone,
};

const char* pipeline_stage_name(PipelineStage s);

/// Keeps the FIRST failure a cluster exhibited: later ladder rungs may
/// fail differently, but the root cause is what the report should show.
void record_first_error(VictimFinding& finding, const std::exception& e);

/// Everything a VictimPipeline needs to analyze victims. All pointers are
/// non-owning and must outlive the pipeline; the referenced objects are
/// either const, internally synchronized (CharacterizedLibrary,
/// ModelCache), or only touched through thread-safe entry points, so one
/// context may be shared by every worker thread.
struct PipelineContext {
  const ChipVerifier* verifier = nullptr;
  const Extractor* extractor = nullptr;
  CharacterizedLibrary* chars = nullptr;
  GlitchAnalyzer* analyzer = nullptr;
  const ChipDesign* design = nullptr;
  const std::vector<NetSummary>* summaries = nullptr;
  const PruneResult* pruned = nullptr;
  const VerifierOptions* options = nullptr;
  /// Shared reduced-model cache (null = reuse disabled).
  ModelCache* model_cache = nullptr;
  /// Optional stage-entry hook (tests/benches observe transitions). Runs
  /// on the worker thread; must be thread-safe and must not throw.
  std::function<void(std::size_t victim, PipelineStage stage)> stage_trace;
};

/// Drives one victim at a time through the stages. Stateless between
/// run() calls — safe to share across worker threads.
///
/// Batch scheduling (DESIGN.md §16): begin() runs the machine up to the
/// victim's FIRST reduced-transient attempt and parks it there with a
/// fully configured simulator; the scheduler groups compatible parked
/// victims into lockstep batches (mor/batch_sim.h) and feeds each lane's
/// integration result back through finish(), which resumes the identical
/// state machine (measurement, certification, escalation, audit, the
/// retry ladder). run() is begin() + a scalar integration + finish(), so
/// batched and scalar runs share one code path for every decision that
/// shapes a finding.
class VictimPipeline {
 private:
  struct RunState;

 public:
  explicit VictimPipeline(PipelineContext ctx);

  /// A victim parked at its first SimulateReduced attempt. Owns the
  /// victim's memory scope (detached from the calling thread while
  /// parked), wall-clock budget, run state, and configured simulator;
  /// opaque beyond the grouping keys the batch scheduler needs. Destroy
  /// only after finish() (or never calling it — abandonment is safe).
  class Parked {
   public:
    ~Parked();
    Parked(const Parked&) = delete;
    Parked& operator=(const Parked&) = delete;

    std::size_t victim_net() const;

    /// Batch grouping keys: lanes may integrate in lockstep only when
    /// the reduced order, driver-model class, and timestep policy agree
    /// (the lockstep engine shares per-round scratch sized by these).
    std::size_t order() const;
    DriverModelKind driver_model() const;
    double tstop() const;
    double dt() const;

    /// The lane handed to run_batch(); views into this object, which
    /// must stay alive (and unfinished) until the batch returns.
    BatchLane lane();

   private:
    friend class VictimPipeline;
    Parked(Deadline deadline, std::size_t mem_limit_bytes);

    // Scope first: destroyed last, after every memory charge held by the
    // simulator/state below has been released back to it.
    std::unique_ptr<resource::ClusterScope> scope_;
    CancelToken budget_;
    std::unique_ptr<RunState> state_;
    std::optional<GlitchAnalyzer::SimulateSetup> setup_;
    double setup_seconds_ = 0.0;  ///< prepare_simulate() wall seconds
    double cpu_begin_ = 0.0;      ///< CPU seconds begin() consumed
  };

  /// Result of begin(): at most one member is set. `record` — the victim
  /// completed without a batchable attempt (screened, ineligible-adjacent
  /// failures, bounds). `parked` — it waits for a batch slot. Both empty
  /// — the victim is ineligible (no retained aggressor), exactly run()'s
  /// nullopt.
  struct Outcome {
    std::optional<JournalRecord> record;
    std::unique_ptr<Parked> parked;
  };

  /// Full analysis of one victim cluster under the context's options.
  /// `shed` marks a victim refused admission by the memory governor (it
  /// enters the machine already resource-exhausted and exits through
  /// kBound). Returns nullopt for ineligible victims (no retained
  /// aggressor survives the window/correlation filters).
  std::optional<JournalRecord> run(std::size_t victim_net, bool shed) const;

  /// Batch-scheduling entry point: runs the machine until the victim
  /// completes or reaches its FIRST reduced-transient attempt (rung 0,
  /// not escalating), where it parks. Retry rungs, certification
  /// escalations, and full-sim fallbacks never park — finish() resumes
  /// them on the scalar path, so every FindingStatus and ladder
  /// transition is decided by exactly the code a scalar run uses.
  Outcome begin(std::size_t victim_net, bool shed) const;

  /// Completes a parked victim from its integration result (or error):
  /// measurement, certification, escalation, audit, and the retry ladder
  /// all resume here. Pairs with exactly one begin() that parked.
  JournalRecord finish(Parked& parked, BatchLaneResult lane) const;

 private:
  PipelineStage run_machine(RunState& s, PipelineStage stage,
                            bool can_park) const;
  PipelineStage step(RunState& s, PipelineStage stage) const;
  PipelineStage on_attempt_failure(RunState& s, const std::exception& e) const;

  PipelineStage stage_build_cluster(RunState& s) const;
  PipelineStage stage_noise_screen(RunState& s) const;
  PipelineStage stage_reduce(RunState& s) const;
  PipelineStage stage_simulate_reduced(RunState& s) const;
  PipelineStage stage_full_sim(RunState& s) const;
  PipelineStage stage_certify(RunState& s) const;
  PipelineStage stage_audit(RunState& s) const;
  PipelineStage stage_bound(RunState& s) const;

  PipelineContext ctx_;
};

}  // namespace xtv
