// Coupled-delay analysis (paper Section 2, Table 2).
//
// Measures the interconnect delay of a switching victim in two worlds:
// "decoupled" (coupling caps grounded at both ends — the classic lumped-
// load assumption) and "coupled" with aggressors switching, worst case
// being the opposite direction to the victim (Miller amplification) and
// optimistic being the same direction. The deterioration between the two
// is the signal-integrity timing effect the paper quantifies.
#pragma once

#include "cells/characterize.h"
#include "core/cluster.h"
#include "core/glitch_analyzer.h"

namespace xtv {

struct DelayAnalysisOptions {
  DriverModelKind driver_model = DriverModelKind::kLinearResistor;
  double fixed_resistance = 1e3;
  double tstop = 6e-9;
  double dt = 2e-12;
  double victim_input_slew = 0.1e-9;
  double victim_switch_time = 0.5e-9;
  SympvlOptions mor;
};

/// Victim 50%-crossing interconnect delay (driver-end ramp start to
/// receiver-end crossing) for one victim transition direction.
struct CoupledDelayResult {
  double delay_decoupled = 0.0;  ///< coupling caps grounded
  double delay_coupled = 0.0;    ///< aggressors switching opposite (worst)
  double delay_same_dir = 0.0;   ///< aggressors switching with the victim
};

class DelayAnalyzer {
 public:
  DelayAnalyzer(const Extractor& extractor, CharacterizedLibrary& chars);

  /// Analyzes the victim switching in direction `victim_rising`, with every
  /// aggressor switching simultaneously. Aggressor `rising` flags in the
  /// specs are ignored — directions are forced opposite/same per scenario.
  CoupledDelayResult analyze(const VictimSpec& victim, bool victim_rising,
                             std::vector<AggressorSpec> aggressors,
                             const DelayAnalysisOptions& options);

 private:
  /// One scenario run on the MOR path; `decouple` grounds coupling caps,
  /// `aggressors_move` selects whether aggressors switch at all.
  double run_scenario(const VictimSpec& victim, bool victim_rising,
                      const std::vector<AggressorSpec>& aggressors,
                      bool decouple, bool aggressors_move, bool same_direction,
                      const DelayAnalysisOptions& options);

  const Extractor& extractor_;
  CharacterizedLibrary& chars_;
};

}  // namespace xtv
