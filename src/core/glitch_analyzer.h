// Crosstalk glitch analysis of one cluster — the tool's central operation.
//
// Two engines analyze the *same* cluster:
//   * the MOR path (the paper's contribution): extract -> SyMPVL reduce ->
//     reduced transient with the chosen driver model;
//   * the SPICE path (the golden reference): extract -> export the full RC
//     circuit -> nonlinear transient, with drivers either at the same
//     abstraction (for apples-to-apples engine comparison, Figure 3) or as
//     full transistor-level cell netlists (Figures 6/7, Tables 3/4).
//
// Worst-case aggressor alignment follows the paper's methodology: each
// aggressor's individual victim-response peak is found first (superposition
// holds in the linear interconnect), switch times are then chosen inside
// the aggressors' timing windows so the peaks coincide inside the victim's
// sensitive window, and logic correlations veto impossible combinations.
#pragma once

#include <memory>
#include <optional>

#include "cells/characterize.h"
#include "cells/driver_models.h"
#include "core/cluster.h"
#include "mor/certify.h"
#include "mor/model_cache.h"
#include "mor/reduced_sim.h"
#include "spice/simulator.h"
#include "spice/waveform.h"

namespace xtv {

/// Driver abstraction used for an analysis run.
enum class DriverModelKind {
  kLinearResistor,   ///< Section 4.1: timing-library resistance + ramp source
  kFixedResistor,    ///< a caller-specified resistance (Figure 3 uses 1 kOhm)
  kNonlinearTable,   ///< Section 4.2: pre-characterized I(Vin, Vout) surface
  kTransistor,       ///< full cell netlist (SPICE path only)
};

struct GlitchAnalysisOptions {
  DriverModelKind driver_model = DriverModelKind::kNonlinearTable;
  double fixed_resistance = 1e3;   ///< used by kFixedResistor
  double tstop = 4e-9;
  double dt = 2e-12;
  SympvlOptions mor;               ///< reduction controls (MOR path)
  bool align_aggressors = true;    ///< worst-case peak alignment pass
  /// Allow the golden engine to reuse factorizations on linear circuits
  /// (set false to benchmark classic refactor-every-step SPICE behavior).
  bool spice_exploit_linearity = true;
  double default_switch_time = 0.5e-9;  ///< aggressor input start when not aligned
  /// Per-cluster wall-clock budget: forwarded into both engines' stepping
  /// loops (including alignment probe runs); an expired token aborts the
  /// analysis with kDeadlineExceeded. Null = unbounded. Not owned.
  const CancelToken* cancel = nullptr;

  // --- A-posteriori certification (DESIGN.md §10, MOR path only) ---

  /// Certify the reduced model against the exact cluster transfer function
  /// after every reduction; the Certificate (and its verdict at
  /// cert_rel_tol) is attached to the GlitchResult. analyze() never throws
  /// on a failed certificate — escalation is the verifier's job.
  bool certify = false;
  /// Max relative transfer-function error the certificate may carry.
  double cert_rel_tol = 0.02;
  /// Sample frequencies probed (log-spaced over the band the transient
  /// resolves: 1/tstop .. 1/(4 dt)).
  std::size_t cert_freqs = 5;

  /// Reduced-model cache shared across victims (mor/model_cache.h); null
  /// disables reuse. A fingerprint hit skips SyMPVL, certification, and
  /// the eigendecomposition entirely and is bit-identical to the fresh
  /// computation by the fingerprint contract. Not owned; must outlive the
  /// analysis (alignment probe runs inherit it).
  ModelCache* model_cache = nullptr;

  /// Canonical (permutation/tolerance-invariant) cache keys: when an
  /// exact lookup misses, consult the cache's canonical index, and reuse
  /// a tolerant hit only after its model re-passes the a-posteriori
  /// certificate against THIS cluster's exact (G, C, B) at cert_rel_tol
  /// (a failed certificate counts as a miss). Off by default: exact-bit
  /// keying remains the only mode whose reuse is bit-identical.
  bool canonical_cache = false;
  /// Relative quantization tolerance of the canonical key (values within
  /// this relative distance usually collide; see
  /// canonical_cluster_fingerprint).
  double canonical_cache_tol = 1e-6;
};

struct GlitchResult {
  double peak = 0.0;            ///< signed victim glitch peak (V) at the receiver
  double peak_at_driver = 0.0;  ///< signed peak at the victim driver end
  Waveform victim_wave;         ///< receiver-end victim waveform
  Waveform aggressor_wave;      ///< first aggressor's receiver waveform
  double cpu_seconds = 0.0;
  std::size_t reduced_order = 0;  ///< MOR path only
  std::vector<double> switch_times;  ///< chosen aggressor input start times

  /// Victim driver current during the event (electromigration audit, MOR
  /// path with the nonlinear model only; zero otherwise): the current the
  /// holding cell sources/sinks while fighting the glitch.
  double victim_driver_rms_current = 0.0;   ///< A (RMS over the window)
  double victim_driver_peak_current = 0.0;  ///< A (max |i|)

  /// A-posteriori accuracy certificate of the reduced model (filled by the
  /// MOR path when GlitchAnalysisOptions::certify is set).
  Certificate certificate;
  /// certificate.pass(options.cert_rel_tol) — the verdict at the tolerance
  /// the run was configured with.
  bool certified = false;
};

class GlitchAnalyzer {
 public:
  /// Both references must outlive the analyzer. `chars` characterizes
  /// lazily, so the first analysis with a given cell pays its one-time
  /// cost.
  GlitchAnalyzer(const Extractor& extractor, CharacterizedLibrary& chars);

  /// MOR path (SyMPVL + reduced nonlinear transient). Equivalent to
  /// prepare() -> reduce() -> simulate_reduced(); kept as the convenience
  /// entry point for callers outside the staged pipeline.
  GlitchResult analyze(const VictimSpec& victim,
                       const std::vector<AggressorSpec>& aggressors,
                       const GlitchAnalysisOptions& options);

  /// SPICE path (full circuit, golden).
  GlitchResult analyze_spice(const VictimSpec& victim,
                             const std::vector<AggressorSpec>& aggressors,
                             const GlitchAnalysisOptions& options);

  // --- Staged MOR path (core/pipeline.h drives these directly) ---

  struct BuiltCluster {
    RcNetwork network;
    std::vector<double> agg_drive_r;    ///< per-aggressor effective R
    double victim_drive_r = 0.0;        ///< victim holding resistance
  };

  /// Typed output of the BuildCluster stage: worst-case-aligned switch
  /// times plus the extracted, terminated cluster network.
  struct PreparedCluster {
    std::vector<double> switch_times;
    BuiltCluster built;
  };

  /// Typed output of the Reduce stage: the (possibly cache-served)
  /// certified reduced model + diagonalization.
  struct ReducedOutcome {
    std::shared_ptr<const CachedReducedModel> payload;  ///< never null
    bool from_cache = false;
    /// The payload came from a canonical (tolerant) hit: it is
    /// certificate-equivalent to a fresh reduction, not bit-identical.
    bool canonical = false;
  };

  /// Everything the SimulateReduced stage sets up before integrating: the
  /// configured simulator, its run options, and the measurement context.
  /// Splitting setup from measurement lets the batch scheduler
  /// (mor/batch_sim.h) integrate many victims' simulators in lockstep and
  /// feed each lane's result back through the identical measurement code.
  struct SimulateSetup {
    ReducedSimulator sim;
    ReducedSimOptions ropt;
    /// Victim holding device (EM audit context; null for linear holders).
    std::shared_ptr<const OnePortDevice> victim_holder;
    std::shared_ptr<const CachedReducedModel> payload;
    std::vector<double> switch_times;
    std::size_t aggressor_count = 0;
  };

  /// BuildCluster stage: alignment probes (when enabled) + extraction.
  PreparedCluster prepare(const VictimSpec& victim,
                          const std::vector<AggressorSpec>& aggressors,
                          const GlitchAnalysisOptions& options);

  /// Reduce stage: SyMPVL + optional certificate + eigendecomposition,
  /// consulting options.model_cache first when present.
  ReducedOutcome reduce(const PreparedCluster& prepared,
                        const GlitchAnalysisOptions& options);

  /// SimulateReduced stage: terminations, reduced transient, peak/EM
  /// measurements. Pure consumer of the previous stages' outputs.
  /// Equivalent to prepare_simulate() -> ReducedSimulator::run ->
  /// measure_reduced().
  GlitchResult simulate_reduced(const VictimSpec& victim,
                                const std::vector<AggressorSpec>& aggressors,
                                const PreparedCluster& prepared,
                                const ReducedOutcome& reduced,
                                const GlitchAnalysisOptions& options);

  /// First half of SimulateReduced: builds the configured simulator and
  /// run options without integrating. The batch scheduler parks victims
  /// here and integrates their simulators together.
  SimulateSetup prepare_simulate(const VictimSpec& victim,
                                 const std::vector<AggressorSpec>& aggressors,
                                 const PreparedCluster& prepared,
                                 const ReducedOutcome& reduced,
                                 const GlitchAnalysisOptions& options);

  /// Second half of SimulateReduced: finiteness check, peak and EM
  /// measurements on an integration result (scalar or batch lane).
  /// `cpu_seconds` is recorded verbatim in the result.
  GlitchResult measure_reduced(const SimulateSetup& setup,
                               const ReducedSimResult& res,
                               double cpu_seconds);

 private:
  /// Extracts the cluster network, adds receiver loads and driver output
  /// caps, stamps port conductances per the chosen model.
  BuiltCluster build_cluster(const VictimSpec& victim,
                             const std::vector<AggressorSpec>& aggressors,
                             const GlitchAnalysisOptions& options);

  /// Output-voltage ramp an aggressor presents under the Thevenin models.
  SourceWave aggressor_output_ramp(const AggressorSpec& agg, double switch_time,
                                   const GlitchAnalysisOptions& options);

  /// Picks worst-case-aligned switch times (one per aggressor).
  std::vector<double> align_switch_times(const VictimSpec& victim,
                                         const std::vector<AggressorSpec>& aggressors,
                                         const GlitchAnalysisOptions& options);

  const Extractor& extractor_;
  CharacterizedLibrary& chars_;
};

}  // namespace xtv
