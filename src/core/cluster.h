// Cluster descriptions for crosstalk analysis.
//
// After pruning, a cluster is one victim net plus its significant
// aggressors (paper: 2-12 aggressors post-pruning on the DSP design).
// These specs carry everything the analyzers need: routed geometry,
// coupling windows, driver cells, transition parameters, and loads.
#pragma once

#include <string>
#include <vector>

#include "extract/extractor.h"
#include "sta/timing.h"

namespace xtv {

/// The quiet victim of a glitch analysis (or the switching net of a
/// coupled-delay analysis).
struct VictimSpec {
  NetRoute route;
  std::string driver_cell;     ///< master name of the driving cell
  bool held_high = true;       ///< quiet level for glitch analysis
  double receiver_cap = 10e-15;///< capacitive load at the far end
  TimingWindow window = TimingWindow::of(0.0, 1e-9);  ///< sensitive window
};

/// One switching aggressor.
struct AggressorSpec {
  NetRoute route;
  std::string driver_cell;
  bool rising = true;          ///< direction of the aggressor OUTPUT transition
  double input_slew = 0.2e-9;  ///< slew of the transition at the driver input
  double receiver_cap = 10e-15;
  CouplingRun run;             ///< geometry vs the victim (net ids are
                               ///< assigned by the analyzer: victim=0,
                               ///< aggressor k = k+1)
  TimingWindow window = TimingWindow::of(0.0, 1e-9);  ///< switching window
  std::size_t net_id = 0;      ///< chip-level net id (for correlation lookups)
};

}  // namespace xtv
