#include "core/delay_analyzer.h"

#include <cmath>
#include <stdexcept>

namespace xtv {

DelayAnalyzer::DelayAnalyzer(const Extractor& extractor,
                             CharacterizedLibrary& chars)
    : extractor_(extractor), chars_(chars) {}

CoupledDelayResult DelayAnalyzer::analyze(const VictimSpec& victim,
                                          bool victim_rising,
                                          std::vector<AggressorSpec> aggressors,
                                          const DelayAnalysisOptions& options) {
  CoupledDelayResult out;
  out.delay_decoupled = run_scenario(victim, victim_rising, aggressors,
                                     /*decouple=*/true, /*move=*/false,
                                     /*same=*/false, options);
  out.delay_coupled = run_scenario(victim, victim_rising, aggressors,
                                   /*decouple=*/false, /*move=*/true,
                                   /*same=*/false, options);
  out.delay_same_dir = run_scenario(victim, victim_rising, aggressors,
                                    /*decouple=*/false, /*move=*/true,
                                    /*same=*/true, options);
  return out;
}

double DelayAnalyzer::run_scenario(const VictimSpec& victim, bool victim_rising,
                                   const std::vector<AggressorSpec>& aggressors,
                                   bool decouple, bool aggressors_move,
                                   bool same_direction,
                                   const DelayAnalysisOptions& options) {
  const double vdd = extractor_.tech().vdd;

  // --- Cluster geometry (victim = net 0). ---
  std::vector<NetRoute> nets;
  nets.push_back(victim.route);
  std::vector<CouplingRun> runs;
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    nets.push_back(aggressors[k].route);
    CouplingRun run = aggressors[k].run;
    run.net_a = 0;
    run.net_b = k + 1;
    runs.push_back(run);
  }
  RcNetwork network = extractor_.extract_cluster(nets, runs);
  network.add_capacitor(network.port_node(ClusterPorts::receiver(0)),
                        RcNetwork::kGround, victim.receiver_cap);
  for (std::size_t k = 0; k < aggressors.size(); ++k)
    network.add_capacitor(network.port_node(ClusterPorts::receiver(k + 1)),
                          RcNetwork::kGround, aggressors[k].receiver_cap);

  const double kGminPort = 1e-9;
  network.stamp_port_conductance(ClusterPorts::receiver(0), kGminPort);
  for (std::size_t k = 0; k < aggressors.size(); ++k)
    network.stamp_port_conductance(ClusterPorts::receiver(k + 1), kGminPort);

  const bool nonlinear = options.driver_model == DriverModelKind::kNonlinearTable;

  const CellModel& vic_model = chars_.model(victim.driver_cell);
  double vic_r = options.fixed_resistance;
  if (options.driver_model == DriverModelKind::kLinearResistor)
    vic_r = victim_rising ? vic_model.drive_resistance_rise
                          : vic_model.drive_resistance_fall;
  network.stamp_port_conductance(ClusterPorts::driver(0),
                                 nonlinear ? kGminPort : 1.0 / vic_r);

  std::vector<double> agg_r(aggressors.size(), options.fixed_resistance);
  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    const bool agg_rising = same_direction ? victim_rising : !victim_rising;
    if (options.driver_model == DriverModelKind::kLinearResistor) {
      const CellModel& m = chars_.model(aggressors[k].driver_cell);
      agg_r[k] = agg_rising ? m.drive_resistance_rise : m.drive_resistance_fall;
    }
    network.stamp_port_conductance(ClusterPorts::driver(k + 1),
                                   nonlinear ? kGminPort : 1.0 / agg_r[k]);
  }

  if (decouple) network = network.decoupled_copy();

  // --- Reduce and excite. ---
  ReducedModel model = sympvl_reduce(network, true, options.mor);
  ReducedSimulator sim(model);

  const double t0 = options.victim_switch_time;
  auto out_ramp = [&](const CellModel& m, bool rising, double slew_in,
                      double load) {
    const TimingTable& t = rising ? m.rise : m.fall;
    const double slew = t.output_slew.lookup(slew_in, load);
    return rising ? SourceWave::ramp(0.0, vdd, t0, slew)
                  : SourceWave::ramp(vdd, 0.0, t0, slew);
  };
  const double vic_load =
      extractor_.route_ground_cap(victim.route) + victim.receiver_cap;

  SourceWave vic_ramp =
      out_ramp(vic_model, victim_rising, options.victim_input_slew, vic_load);
  if (nonlinear) {
    const CellMaster& master = chars_.library().by_name(victim.driver_cell);
    const bool in_rising = master.inverting() ? !victim_rising : victim_rising;
    const SourceWave input =
        in_rising ? SourceWave::ramp(0.0, vdd, t0, options.victim_input_slew)
                  : SourceWave::ramp(vdd, 0.0, t0, options.victim_input_slew);
    sim.set_termination(
        ClusterPorts::driver(0),
        std::make_shared<NonlinearTableDriver>(
            std::make_shared<CellModel>(vic_model), input,
            vic_model.warp(victim_rising, options.victim_input_slew, vic_load)));
  } else {
    std::vector<std::pair<double, double>> pts;
    for (const auto& [t, v] : vic_ramp.breakpoints())
      pts.emplace_back(t, v / vic_r);
    sim.set_input(ClusterPorts::driver(0), SourceWave::pwl(std::move(pts)));
  }

  for (std::size_t k = 0; k < aggressors.size(); ++k) {
    const bool agg_rising = same_direction ? victim_rising : !victim_rising;
    const AggressorSpec& agg = aggressors[k];
    const CellModel& m = chars_.model(agg.driver_cell);
    const double load =
        extractor_.route_ground_cap(agg.route) + agg.receiver_cap;
    const double hold_level = agg_rising ? 0.0 : vdd;  // pre-transition level
    if (nonlinear) {
      const CellMaster& master = chars_.library().by_name(agg.driver_cell);
      const bool in_rising = master.inverting() ? !agg_rising : agg_rising;
      SourceWave input = SourceWave::dc(master.inverting()
                                            ? (hold_level > 0 ? 0.0 : vdd)
                                            : hold_level);
      if (aggressors_move)
        input = in_rising
                    ? SourceWave::ramp(0.0, vdd, t0, agg.input_slew)
                    : SourceWave::ramp(vdd, 0.0, t0, agg.input_slew);
      sim.set_termination(
          ClusterPorts::driver(k + 1),
          std::make_shared<NonlinearTableDriver>(
              std::make_shared<CellModel>(m), input,
              aggressors_move ? std::optional<CellModel::Warp>(
                                    m.warp(agg_rising, agg.input_slew, load))
                              : std::nullopt));
    } else {
      SourceWave vout = aggressors_move
                            ? out_ramp(m, agg_rising, agg.input_slew, load)
                            : SourceWave::dc(hold_level);
      std::vector<std::pair<double, double>> pts;
      for (const auto& [t, v] : vout.breakpoints())
        pts.emplace_back(t, v / agg_r[k]);
      sim.set_input(ClusterPorts::driver(k + 1),
                    pts.size() == 1 ? SourceWave::dc(pts.front().second)
                                    : SourceWave::pwl(std::move(pts)));
    }
  }

  ReducedSimOptions ropt;
  ropt.tstop = options.tstop;
  ropt.dt = options.dt;
  const ReducedSimResult res = sim.run(ropt);

  // Interconnect delay: driver-port 50% crossing to receiver-port 50%.
  const double mid = 0.5 * vdd;
  const Waveform& wd = res.port_voltages[ClusterPorts::driver(0)];
  const Waveform& wr = res.port_voltages[ClusterPorts::receiver(0)];
  const auto td = wd.crossing_time(mid, victim_rising, t0 * 0.5);
  if (!td)
    throw std::runtime_error("DelayAnalyzer: victim driver never crossed 50%");
  // The receiver crossing is searched independently: with same-direction
  // aggressor switching the far end can cross BEFORE the driver end
  // (negative interconnect delay — the optimistic case of Table 2).
  const auto tr = wr.crossing_time(mid, victim_rising, t0 * 0.5);
  if (!tr)
    throw std::runtime_error("DelayAnalyzer: victim receiver never crossed 50%");
  return *tr - *td;
}

}  // namespace xtv
