#include "core/analytic_estimates.h"

#include <algorithm>

namespace xtv {

double devgan_noise_bound(double r_victim, double cc, double slew_rate,
                          double vdd) {
  const double bound = r_victim * cc * slew_rate;
  return std::clamp(bound, 0.0, vdd);
}

double devgan_noise_bound(const VictimSpec& victim, const AggressorSpec& agg,
                          const Extractor& extractor,
                          CharacterizedLibrary& chars) {
  const Technology& tech = extractor.tech();
  const CellModel& vic_model = chars.model(victim.driver_cell);
  const double r_hold = victim.held_high ? vic_model.drive_resistance_rise
                                         : vic_model.drive_resistance_fall;
  // Shared wire resistance up to the middle of the coupling window.
  const double r_wire =
      extractor.r_per_m(victim.route.width) *
      std::min(agg.run.offset_a + 0.5 * agg.run.overlap, victim.route.length);

  const CellModel& agg_model = chars.model(agg.driver_cell);
  const double load = extractor.route_ground_cap(agg.route) + agg.receiver_cap +
                      extractor.run_coupling_cap(agg.run);
  const TimingTable& table = agg.rising ? agg_model.rise : agg_model.fall;
  const double out_slew =
      std::max(table.output_slew.lookup(agg.input_slew, load), 1e-12);
  // 10-90 slew covers 80% of the swing: dV/dt = 0.8 Vdd / t_slew.
  const double slew_rate = 0.8 * tech.vdd / out_slew;

  return devgan_noise_bound(r_hold + r_wire,
                            extractor.run_coupling_cap(agg.run), slew_rate,
                            tech.vdd);
}

double sakurai_delay50(double rd, double rw, double cw, double cl) {
  return 0.377 * rw * cw + 0.693 * (rd * cw + rd * cl + rw * cl);
}

double sakurai_rise90(double rd, double rw, double cw, double cl) {
  return 1.02 * rw * cw + 2.21 * (rd * cw + rd * cl + rw * cl);
}

}  // namespace xtv
