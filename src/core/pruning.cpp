#include "core/pruning.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace xtv {

double coupling_ratio(const NetSummary& victim, const NetSummary& aggressor,
                      double cap, bool use_driver_strength) {
  double ctotal = victim.ground_cap;
  for (const auto& c : victim.couplings) ctotal += c.cap;
  if (ctotal <= 0.0) return 0.0;
  double ratio = cap / ctotal;
  if (use_driver_strength) {
    const double rv = victim.driver_resistance;
    const double ra = aggressor.driver_resistance;
    if (rv + ra > 0.0) ratio *= 2.0 * rv / (rv + ra);
  }
  return ratio;
}

PruneResult prune_couplings(const std::vector<NetSummary>& nets,
                            const PruningOptions& options) {
  const std::size_t n = nets.size();
  for (std::size_t i = 0; i < n; ++i)
    if (nets[i].id != i)
      throw std::runtime_error("prune_couplings: nets[i].id must equal i");

  PruneResult result;
  result.retained.resize(n);
  result.stats.nets = n;

  double total_before = 0.0;
  std::size_t clusters_before = 0;

  for (std::size_t v = 0; v < n; ++v) {
    const NetSummary& victim = nets[v];
    // Pre-pruning cluster size: victim + every distinct coupled neighbor.
    std::vector<std::size_t> neighbors;
    for (const auto& c : victim.couplings) neighbors.push_back(c.other);
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    if (!neighbors.empty()) {
      total_before += static_cast<double>(1 + neighbors.size());
      ++clusters_before;
    }
    // Rank every coupling by weighted ratio.
    std::vector<std::pair<double, NetSummary::Coupling>> ranked;
    for (const auto& c : victim.couplings) {
      ++result.stats.couplings_before;
      if (c.cap < options.abs_floor) continue;
      const double ratio =
          coupling_ratio(victim, nets.at(c.other), c.cap,
                         options.use_driver_strength);
      if (ratio < options.ratio_threshold) continue;
      ranked.emplace_back(ratio, c);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (ranked.size() > options.max_aggressors)
      ranked.resize(options.max_aggressors);

    for (const auto& [ratio, c] : ranked) {
      (void)ratio;
      result.retained[v].push_back(c);
      ++result.stats.couplings_after;
    }
  }

  // "Cluster" semantics follow the paper: the analyzed cluster is the
  // victim plus its aggressors (aggressor nets are modeled as driven
  // sources, cutting further propagation); pruning shrinks the aggressor
  // list from every coupled neighbor down to the significant few.
  result.stats.avg_cluster_before =
      clusters_before == 0 ? 0.0
                           : total_before / static_cast<double>(clusters_before);
  double total_after = 0.0;
  std::size_t clusters_after = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (result.retained[v].empty()) continue;
    const std::size_t size = 1 + result.retained[v].size();
    total_after += static_cast<double>(size);
    ++clusters_after;
    result.stats.max_cluster_after =
        std::max(result.stats.max_cluster_after, size);
  }
  result.stats.avg_cluster_after =
      clusters_after == 0 ? 0.0
                          : total_after / static_cast<double>(clusters_after);
  return result;
}

}  // namespace xtv
