// Chip-level crosstalk verification flow — the end-to-end "tool" of the
// paper: prune the chip-level coupling database into clusters, build each
// victim's cluster with timing-window and logic-correlation filtering
// (plus the tri-state-bus strongest-driver rule applied upstream), analyze
// every cluster with the MOR engine, and report glitch violations against
// a noise-margin threshold.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/glitch_analyzer.h"
#include "core/pruning.h"
#include "mor/batch_sim.h"
#include "util/status.h"

namespace xtv {

struct JournalRecord;    // core/journal.h (which includes this header)
struct ShardCallbacks;   // core/shard_exec.h
struct ShardExecStats;   // core/shard_exec.h

/// Pluggable execution backend for the remote fan-out path (implemented
/// by serve/remote.h RemoteExecutor; core stays ignorant of sockets).
/// run() receives the un-journaled work list in stable net order plus the
/// same ShardCallbacks the process-shard supervisor gets, and must return
/// exactly one record per victim, keyed by net — the contract of
/// run_process_shards. A backend that loses every worker is expected to
/// finish the remainder locally through callbacks.analyze rather than
/// dropping victims.
class RemoteBackend {
 public:
  virtual ~RemoteBackend() = default;
  virtual std::map<std::size_t, JournalRecord> run(
      const std::vector<std::size_t>& work, const ShardCallbacks& callbacks,
      ShardExecStats* stats) = 0;
};

struct VerifierOptions {
  PruningOptions prune;
  GlitchAnalysisOptions glitch;
  /// Glitch threshold as a fraction of Vdd: peaks above it are violations
  /// (the paper reports bins at 10% and 20% of supply).
  double glitch_threshold = 0.10;
  /// Restrict analysis to latch-input victims (the Fig 6/7 victim set);
  /// false analyzes every net that retains aggressors.
  bool latch_inputs_only = false;
  /// Cap on analyzed victims (0 = no cap) for bounded runs.
  std::size_t max_victims = 0;
  /// Also run the timing-recalculation pass: coupled vs decoupled victim
  /// interconnect delay (the paper's Table-2-style signal-integrity timing
  /// audit), filling the delay fields of each finding.
  bool analyze_delay_change = false;
  /// Pre-screen clusters with the Devgan analytic noise bound (the
  /// paper's ref. [7]): when the summed conservative bounds fall below the
  /// glitch threshold, the cluster cannot violate and its MOR simulation
  /// is skipped. Safe (the bound is an upper bound) and fast.
  bool use_noise_screen = false;
  /// Electromigration audit limit on the victim driver's RMS current
  /// during the worst-case event (A); 0 disables the check. Findings whose
  /// RMS current exceeds it are flagged as EM violations.
  double em_rms_limit = 0.0;

  // --- Execution model: parallelism, deadlines, resume (DESIGN.md §8) ---

  /// Worker threads sharding the eligible victims (<= 1 = serial).
  /// Findings are merged in victim-net order, so a clean parallel run
  /// reproduces the serial report. max_victims > 0 forces serial
  /// execution: the cap is defined by serial analysis order.
  std::size_t threads = 1;
  /// Lockstep batch width for the reduced-transient stage (<= 1 =
  /// scalar, the default). Victims reaching their first reduced
  /// transient are parked, grouped by (reduced order, driver-model
  /// class, timestep policy), and integrated together in
  /// structure-of-arrays lanes (mor/batch_sim.h, DESIGN.md §16).
  /// Per-lane convergence, deadline polling, and scalar fallback keep
  /// every FindingStatus and retry-ladder decision identical to a
  /// scalar run, and a clean batched run's findings are bit-identical
  /// to the serial ones. Pure scheduling knob like `threads` (NOT part
  /// of options_result_hash); ignored (scalar) under max_victims,
  /// process shards, and remote fan-out.
  std::size_t batch_width = 1;
  /// Per-cluster wall-clock budget (ms; 0 = unlimited). A cluster that
  /// exhausts it mid-simulation is cancelled cooperatively and reported
  /// through the conservative Devgan bound as FindingStatus::kDeadlineBound
  /// instead of stalling its worker.
  double cluster_deadline_ms = 0.0;
  /// When non-empty, every completed eligible victim is appended to this
  /// crash-safe journal (see core/journal.h) so a killed run can resume.
  std::string journal_path;
  /// Resume from journal_path: victims with an intact journal record are
  /// merged from it without re-analysis (a torn tail from the crash is
  /// discarded); the rest run normally. Requires journal_path, and the
  /// journal's options-hash header must match the current options. In
  /// process mode, leftover shard journals of a killed supervisor are
  /// merged too.
  bool resume = false;

  // --- Process-isolated shard execution (DESIGN.md §12) ---

  /// Worker *processes* sharding the eligible victims (0 = in-process
  /// path, i.e. the `threads` pool above). Each worker is forked, runs
  /// its contiguous victim shard serially, streams findings back over a
  /// checksummed pipe, and writes its own crash-safe shard journal — a
  /// worker that dies on SIGSEGV/SIGKILL/abort loses nothing but its
  /// in-flight victim, which is quarantined and retried in a fresh
  /// process (see core/shard_exec.h). A clean multi-process run is
  /// bit-identical to the serial one. Like `threads`, this is a pure
  /// scheduling knob and is NOT part of options_result_hash;
  /// max_victims > 0 forces the in-process serial path.
  std::size_t processes = 0;
  /// Worker heartbeat period (ms). A worker silent for 10x this long is
  /// presumed wedged, SIGKILLed, and handled as a crash (0 = stall
  /// monitoring off; process death is still detected via pipe EOF).
  double shard_heartbeat_ms = 250.0;
  /// Crash budget per shard: after this many worker restarts a shard's
  /// remaining victims are conceded to the conservative bound
  /// (FindingStatus::kShardCrashed) instead of respawning forever.
  std::size_t max_shard_restarts = 2;

  // --- Remote fan-out (DESIGN.md §14; scheduling-only, NOT hashed) ---

  /// When set (and max_victims == 0), eligible un-journaled victims are
  /// executed by this backend — leased work units on remote xtv_worker
  /// hosts — instead of local threads or forked processes; `processes`
  /// is ignored for the sweep itself. Non-owning: the backend must
  /// outlive verify(). Like threads/processes this is a pure scheduling
  /// knob: a clean remote run's merged journal is bit-identical to the
  /// serial one, and every remote failure mode degrades to an explicit
  /// FindingStatus, never a lost victim.
  RemoteBackend* remote_backend = nullptr;

  // --- Streaming hooks (scheduling-only; NOT in options_result_hash) ---

  /// Invoked once per settled eligible victim, with the record exactly as
  /// it is journaled/merged (after any concession stamping). In process
  /// mode it runs serialized on the supervisor side; on the in-process
  /// path it runs on whichever worker thread finished the victim, so it
  /// must be thread-safe when threads > 1. Exceptions are swallowed — a
  /// broken listener must never fail the run. The serve daemon
  /// (src/serve) uses this to stream findings as they certify.
  std::function<void(const JournalRecord&)> on_record;
  /// Liveness tick from the process-mode supervisor's poll loop (~50 ms
  /// cadence while shard workers are live; never fires on the in-process
  /// path). Rate-limit in the callback.
  std::function<void()> on_tick;

  // --- Resource governance: memory budgets and shedding (DESIGN.md §9) ---

  /// Reduced-model cache budget (MiB; 0 = cache off). When set, every
  /// victim's assembled (G, C, B) pencil is fingerprinted and the
  /// certified reduced model of a repeated cluster is reused instead of
  /// re-running SyMPVL, certification, and the eigendecomposition. A hit
  /// is bit-identical to the fresh computation (mor/model_cache.h), so
  /// findings never change — but which *fault-injection sites* execute
  /// does, which is why the library default is off and chip_audit turns
  /// it on. Result-affecting under memory budgets (a hit skips the
  /// Krylov charges), hence part of options_result_hash.
  double model_cache_mb = 0.0;

  /// Canonical (permutation/tolerance-invariant) model-cache keys
  /// (DESIGN.md §16): when an exact fingerprint lookup misses, a
  /// tolerant canonical hit may stand in for a fresh reduction — but
  /// only after its model re-passes the a-posteriori certificate
  /// against the requesting cluster's exact (G, C, B) at cert_rel_tol;
  /// a failed certificate counts as a miss (canonical_cert_rejects).
  /// Result-affecting (a certified tolerant reuse is equivalent within
  /// the certificate tolerance, not bit-identical), hence hashed. Off
  /// by default: exact keying remains the only bit-identical mode.
  bool canonical_cache = false;
  /// Relative quantization tolerance of the canonical key (values
  /// within it usually collide; see canonical_cluster_fingerprint).
  double canonical_cache_tol = 1e-6;

  /// Per-cluster memory budget (MiB; 0 = unlimited) covering dense
  /// matrices, Krylov blocks, and waveform storage of one victim's
  /// analysis. A cluster that breaches it degrades to the conservative
  /// Devgan bound (FindingStatus::kResourceBound) instead of OOMing.
  double cluster_mem_mb = 0.0;
  /// Process-wide soft RSS limit (MiB; 0 = watchdog off). While resident
  /// set stays above it, admission control sheds the largest queued
  /// clusters to their Devgan bound instead of letting the kernel's OOM
  /// killer end the run.
  double global_mem_soft_mb = 0.0;

  // --- Certified accuracy (DESIGN.md §10) ---

  /// Certify every reduced model a-posteriori against the exact cluster
  /// transfer function; a failed certificate climbs the UPWARD escalation
  /// ladder (raised Krylov order) before conceding to the conservative
  /// bound as FindingStatus::kAccuracyBound.
  bool certify = false;
  /// Max relative transfer-function error a passing certificate may carry.
  double cert_rel_tol = 0.02;
  /// Sample frequencies per certificate (cost: one sparse LU solve each).
  std::size_t cert_freqs = 5;
  /// Ceiling on the Krylov order the escalation ladder may request.
  std::size_t max_mor_order = 64;
  /// Order increment per escalation step (q -> q + step, capped above).
  std::size_t mor_order_step = 4;

  // --- Sampled SPICE cross-audit of certified results ---

  /// Fraction of MOR-analyzed victims re-simulated on the golden SPICE
  /// path and diffed against the reduced result (0 = off, 1 = all).
  /// Selection is a pure hash of (victim net, audit_seed), so a parallel
  /// run audits exactly the victims a serial run would.
  double audit_fraction = 0.0;
  /// Seed of the victim-keyed audit lottery.
  std::uint64_t audit_seed = 0xA0D17u;
  /// Peak-glitch agreement tolerance, as a fraction of Vdd.
  double audit_peak_tol_frac = 0.02;
  /// Time-of-peak agreement tolerance (s).
  double audit_time_tol = 5e-11;
};

/// FNV-1a hash over the result-affecting fields of `options` (pruning,
/// analysis, thresholds, budgets — NOT threads/journal_path/resume, which
/// change scheduling but never a finding). Stamped into the journal
/// header; resume refuses a journal written under a different hash.
std::uint64_t options_result_hash(const VerifierOptions& options);

/// How a victim's reported numbers were obtained. Production runs must
/// account for every victim: a cluster whose reduced-model analysis breaks
/// down numerically is retried and degraded through cheaper/safer engines
/// rather than silently dropped (see ChipVerifier::verify).
enum class FindingStatus {
  kAnalyzed = 0,        ///< clean reduced-model (MOR) analysis
  kAnalyzedAfterRetry,  ///< MOR succeeded after a timestep/order retry
  kFellBackToFullSim,   ///< full unreduced-cluster (golden SPICE) simulation
  kFellBackToBound,     ///< conservative Devgan analytic bound (peak >= true)
  kDeadlineBound,       ///< cluster wall-clock budget expired; Devgan bound
  kResourceBound,       ///< memory budget breached or shed; Devgan bound
  kFailed,              ///< every rung failed; peak pessimistically = Vdd
  // Appended after kFailed so serialized journal values stay stable.
  kCertified,           ///< MOR analysis with a PASSING accuracy certificate
  kAccuracyBound,       ///< certificate never passed (even escalated); Devgan bound
  kShardCrashed,        ///< worker process died on this victim twice; Devgan bound
};

inline const char* finding_status_name(FindingStatus s) {
  switch (s) {
    case FindingStatus::kAnalyzed: return "analyzed";
    case FindingStatus::kAnalyzedAfterRetry: return "analyzed-after-retry";
    case FindingStatus::kFellBackToFullSim: return "full-sim-fallback";
    case FindingStatus::kFellBackToBound: return "bound-fallback";
    case FindingStatus::kDeadlineBound: return "deadline-bound";
    case FindingStatus::kResourceBound: return "resource-bound";
    case FindingStatus::kFailed: return "failed";
    case FindingStatus::kCertified: return "certified";
    case FindingStatus::kAccuracyBound: return "accuracy-bound";
    case FindingStatus::kShardCrashed: return "shard-crashed";
  }
  return "unknown";
}

/// Severity ranking for CI gating (chip_audit --fail-on): 0 is the best
/// outcome; larger is worse. "--fail-on X" trips on any finding at least
/// as severe as X.
inline int finding_status_severity(FindingStatus s) {
  switch (s) {
    case FindingStatus::kCertified: return 0;
    case FindingStatus::kAnalyzed: return 1;
    case FindingStatus::kAnalyzedAfterRetry: return 2;
    case FindingStatus::kFellBackToFullSim: return 3;
    case FindingStatus::kFellBackToBound: return 4;
    case FindingStatus::kDeadlineBound: return 5;
    case FindingStatus::kResourceBound: return 6;
    case FindingStatus::kAccuracyBound: return 7;
    case FindingStatus::kShardCrashed: return 8;
    case FindingStatus::kFailed: return 9;
  }
  return 9;
}

/// Parses a FindingStatus from either its report name ("accuracy-bound")
/// or its enumerator name ("kAccuracyBound"). Returns false on no match.
bool parse_finding_status(const std::string& name, FindingStatus* out);

struct VictimFinding {
  std::size_t net = 0;
  double peak = 0.0;               ///< signed glitch peak (V)
  double peak_fraction = 0.0;      ///< |peak| / Vdd
  bool violation = false;
  FindingStatus status = FindingStatus::kAnalyzed;
  std::size_t retries = 0;            ///< failed analysis attempts before this result
  StatusCode error_code = StatusCode::kOk;  ///< first failure class seen
  std::string error;                  ///< first failure message (empty when clean)
  std::size_t aggressors_analyzed = 0;
  std::size_t aggressors_dropped_by_correlation = 0;
  std::size_t aggressors_dropped_by_window = 0;
  /// Compute time this victim consumed on its worker thread (all ladder
  /// rungs, screening, and the delay pass included) — summable across
  /// workers, unlike the report's wall_seconds.
  double cpu_seconds = 0.0;
  std::size_t reduced_order = 0;

  /// Timing recalculation (filled when VerifierOptions::analyze_delay_change
  /// is set): victim rise delay without and with worst-case coupling.
  double delay_decoupled = 0.0;
  double delay_coupled = 0.0;

  /// Electromigration audit (nonlinear driver model runs).
  double driver_rms_current = 0.0;  ///< A
  bool em_violation = false;        ///< RMS current above the configured limit

  /// Certified accuracy (filled when VerifierOptions::certify is set and
  /// the result came from the MOR path).
  bool certified = false;           ///< accuracy certificate passed
  double cert_max_rel_err = 0.0;    ///< worst sampled transfer-fn rel. error
  std::size_t cert_order_escalations = 0;  ///< upward order raises taken

  /// Sampled SPICE cross-audit (when this victim won the audit lottery and
  /// the golden re-simulation completed).
  bool audited = false;
  bool audit_pass = false;          ///< within peak and time-of-peak tolerance
  double audit_peak_err = 0.0;      ///< |MOR peak - SPICE peak| (V)
  double audit_time_err = 0.0;      ///< |MOR t_peak - SPICE t_peak| (s)
};

struct VerificationReport {
  PruneStats prune_stats;
  std::vector<VictimFinding> findings;
  /// Victims that entered analysis (>= 1 retained aggressor after window /
  /// correlation filtering). Always equals victims_analyzed +
  /// victims_screened_out + victims_fallback + victims_failed — every
  /// victim is reported exactly once, never silently skipped.
  std::size_t victims_eligible = 0;
  std::size_t victims_analyzed = 0;      ///< MOR analysis succeeded (incl. retries)
  std::size_t victims_screened_out = 0;  ///< skipped by the Devgan bound
  std::size_t victims_retried = 0;       ///< needed >= 1 recovery-ladder step
  std::size_t victims_fallback = 0;      ///< full-sim or analytic-bound result
  std::size_t victims_failed = 0;        ///< every ladder rung failed
  std::size_t victims_deadline_bound = 0;  ///< budget expired (subset of fallback)
  std::size_t victims_resource_bound = 0;  ///< memory budget/shed (subset of fallback)
  /// Process-shard accounting (processes > 0 runs).
  std::size_t victims_shard_crashed = 0;  ///< conceded after repeated worker death (subset of fallback)
  std::size_t victims_quarantined = 0;    ///< isolated for a fresh-process retry
  std::size_t worker_crashes = 0;         ///< worker deaths (signal, exit, stall, wire corruption)
  std::size_t shard_restarts = 0;         ///< shard worker respawns after a crash
  /// Certified-accuracy accounting (certify runs).
  std::size_t victims_certified = 0;       ///< passing certificate (subset of analyzed)
  std::size_t victims_accuracy_bound = 0;  ///< certificate never passed (subset of fallback)
  std::size_t victims_escalated = 0;       ///< needed >= 1 upward order raise
  std::size_t order_escalations = 0;       ///< total order raises across victims
  /// SPICE cross-audit accounting (audit_fraction > 0 runs).
  std::size_t victims_audited = 0;
  std::size_t audit_failures = 0;          ///< audited victims out of tolerance
  double audit_max_peak_err = 0.0;         ///< worst |MOR - SPICE| peak (V)
  double audit_max_time_err = 0.0;         ///< worst time-of-peak delta (s)
  std::size_t violations = 0;
  /// Reduced-model cache accounting (model_cache_mb > 0 runs).
  std::size_t model_cache_hits = 0;
  std::size_t model_cache_misses = 0;
  std::size_t model_cache_insertions = 0;
  std::size_t model_cache_evictions = 0;
  std::size_t model_cache_entries = 0;  ///< live entries at end of run
  std::size_t model_cache_bytes = 0;    ///< live payload bytes at end of run
  /// Canonical-cache accounting (canonical_cache runs).
  std::size_t canonical_hits = 0;          ///< certified tolerant reuses
  std::size_t canonical_cert_rejects = 0;  ///< tolerant hits failing re-cert
  /// Batched-execution accounting (batch_width > 1 runs).
  std::size_t batched_victims = 0;       ///< victims integrated in batch lanes
  std::size_t batch_lane_fallbacks = 0;  ///< lanes rerouted to the scalar engine
  /// Summed per-victim compute time across all workers. Under N threads
  /// this exceeds wall_seconds by up to a factor of N; the ratio is the
  /// realized parallel efficiency.
  double total_cpu_seconds = 0.0;
  /// End-to-end wall time of the verify() call (pruning included).
  double wall_seconds = 0.0;

  std::string to_string() const;
};

class ChipVerifier {
 public:
  ChipVerifier(const Extractor& extractor, CharacterizedLibrary& chars);

  /// The per-run analysis engine, extracted from verify() so any
  /// execution model — the in-process pool, forked shard workers, or a
  /// remote xtv_worker that rebuilt the design from a job spec — drives
  /// the identical per-victim semantics. See the definition below.
  class Prepared;

  VerificationReport verify(const ChipDesign& design,
                            const VerifierOptions& options);

  /// Builds the analyzable cluster (victim + filtered aggressor specs) for
  /// one victim net: applies the retained-coupling list, timing-window
  /// overlap, and logic-correlation vetoes. Exposed for the figure
  /// benches, which need per-cluster control.
  std::pair<VictimSpec, std::vector<AggressorSpec>> build_victim_cluster(
      const ChipDesign& design, const std::vector<NetSummary>& summaries,
      const PruneResult& pruned, std::size_t victim_net,
      VictimFinding* accounting = nullptr) const;

 private:
  const Extractor& extractor_;
  CharacterizedLibrary& chars_;
};

/// Everything one verification run needs to analyze victims: summaries,
/// pruned coupling database, analyzer, model cache, and the staged
/// pipeline, built once from (design, options). analyze() reproduces the
/// exact worker-task semantics of verify() — victim-keyed fault
/// injection, the kVictimTask site, pressure shedding, and the
/// pessimistic kFailed envelope — so results are bit-identical no matter
/// which execution model calls it. `design` and `options` are captured by
/// reference and must outlive the Prepared.
class ChipVerifier::Prepared {
 public:
  Prepared(ChipVerifier& verifier, const ChipDesign& design,
           const VerifierOptions& options);
  ~Prepared();
  Prepared(const Prepared&) = delete;
  Prepared& operator=(const Prepared&) = delete;

  /// Candidate victims (>= 1 retained coupling, latch filter applied) in
  /// stable net order — the report and journal order.
  const std::vector<std::size_t>& candidates() const;

  const PruneResult& prune_result() const;

  /// Retained-cluster size: the dominant memory axis, used as the
  /// shedding key under RSS pressure.
  std::size_t footprint(std::size_t victim) const;

  /// Recomputes the pressure-shed threshold as the median footprint of
  /// `work` (verify() passes its un-journaled work list; a remote worker
  /// passes the full candidate list). Until called, the threshold is the
  /// median over candidates().
  void set_shed_work(const std::vector<std::size_t>& work);

  double vdd() const;

  /// Analyzes one victim. `bound_only` routes straight to the terminal
  /// conservative Devgan bound (the concession rung). Returns nullopt for
  /// ineligible victims (no retained aggressor survives the filters);
  /// never throws — any escaping failure becomes a kFailed record with
  /// peak pessimistically at Vdd.
  std::optional<JournalRecord> analyze(std::size_t victim, bool bound_only);

  /// A victim parked at its first reduced-transient attempt, waiting
  /// for a batch slot (opaque; defined in verifier.cpp). Exposes the
  /// lockstep grouping keys and its BatchLane to the scheduler.
  class ParkedVictim;

  /// Result of analyze_begin(): at most one of {record, parked} is set;
  /// both empty means the victim was ineligible (analyze()'s nullopt).
  /// Defined in verifier.cpp (JournalRecord is incomplete here — the
  /// journal header includes this one).
  struct BeginOutcome;

  /// First half of analyze() for the batch scheduler (DESIGN.md §16):
  /// runs the victim to completion or parks it at its first reduced-
  /// transient attempt. Same injection keying, shedding, and kFailed
  /// envelope as analyze().
  BeginOutcome analyze_begin(std::size_t victim);

  /// Second half: completes a parked victim from its batch-lane
  /// integration result (or error). Never throws — failures become the
  /// kFailed envelope analyze() produces. Pairs with exactly one
  /// analyze_begin() that parked.
  JournalRecord analyze_finish(ParkedVictim& parked, BatchLaneResult lane);

  /// The last-resort pessimistic record (peak = Vdd, kShardCrashed /
  /// kWorkerCrashed) for a victim whose concession analysis itself died.
  /// Pure struct assembly — cannot fail.
  JournalRecord concede(std::size_t victim, const std::string& why) const;

  /// Copies the model-cache counters into the report (no-op when the
  /// cache is off).
  void fill_cache_stats(VerificationReport* report) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xtv
