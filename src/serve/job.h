// Job model for the verification service (DESIGN.md §13).
//
// A job is one ChipVerifier run, described by a short text spec
// ("threshold=0.1 certify=1 ...") that maps onto the result-affecting
// VerifierOptions plus a few scheduling knobs. A spec may also carry its
// own design reference (nets=/rows=/chip_seed=, or design=PATH naming a
// daemon-host file that resolves to those parameters); without one the
// job runs against the daemon's resident design. The job key mixes the
// options_result_hash of the resulting options with the design reference,
// so a client that resubmits after a dropped connection lands on the job
// it already submitted (idempotent dedup). Journal headers always carry
// the bare options hash (options_hash()) — what verify() itself stamps —
// which equals the key exactly when no design reference is set, keeping
// resident-design journals interchangeable with one-shot chip_audit runs.
//
// Everything a job needs to survive a daemon crash lives in the jobs
// directory as plain files keyed by the job:
//
//   job_<key>.spec   canonical spec + persisted attempt count (atomic)
//   job_<key>.xtvj   the job's crash-safe result journal (+ .shard<k>)
//   job_<key>.done   terminal marker: "xtvsd <key> <done|conceded> <summary>"
//   job_<key>.pid    live runner pid, for orphan reaping after a restart
#pragma once

#include <cstdint>
#include <string>

#include "core/verifier.h"

namespace xtv {
namespace serve {

/// Lifecycle of a job inside the daemon. Queued and backoff jobs exist
/// only as spec files plus queue entries; done/conceded jobs keep their
/// journal for idempotent replay.
enum class JobState {
  kQueued,    ///< admitted, waiting for a scheduler slot
  kRunning,   ///< a forked job runner is executing verify()
  kBackoff,   ///< an attempt failed; waiting out the exponential backoff
  kDone,      ///< completed normally; journal is final
  kConceded,  ///< retry budget exhausted; every missing victim was conceded
};

const char* job_state_name(JobState s);
bool parse_job_state(const std::string& name, JobState* out);

/// One verification job: result-affecting analysis options plus
/// scheduling knobs the daemon resolves at launch.
struct JobSpec {
  /// Result-affecting options. Defaults mirror chip_audit's (10%-of-Vdd
  /// threshold, worst-case aggressor alignment, 4 ns window, 64 MiB
  /// model cache), so an empty spec reproduces a bare `chip_audit` run
  /// bit-for-bit. journal_path/resume/threads/processes are owned by the
  /// daemon and cannot be set from a spec.
  VerifierOptions options;

  // --- Design reference (part of the job key) ---
  // design_nets == 0 means "the daemon's resident design"; rows/seed must
  // then also be 0. A nonzero design_nets names a generated chip with that
  // many nets (design_rows row tiles, chipgen seed design_seed; 0 = the
  // generator defaults). `design=PATH` in a spec resolves a daemon-host
  // design file into these fields at parse time.
  std::size_t design_nets = 0;
  std::size_t design_rows = 0;
  std::uint64_t design_seed = 0;

  // --- Scheduling (never part of the job key) ---
  std::size_t processes = 0;   ///< shard workers per attempt (0 = daemon default)
  double heartbeat_ms = 250.0; ///< shard worker heartbeat period
  std::size_t restarts = 2;    ///< shard restart budget inside one attempt
  double deadline_ms = -1.0;   ///< per-attempt wall clock (<0 = daemon default, 0 = unlimited)
  long retries = -1;           ///< attempts after the first (<0 = daemon default)
  double mem_mb = 0.0;         ///< reservation hint for the cross-job governor (0 = estimate)
  std::size_t batch_width = 0; ///< lockstep lanes per batch (0 = daemon default);
                               ///< scheduling-only, never part of the job key

  JobSpec();

  /// Parses "key=value ..." text. Unknown keys, malformed values, and
  /// out-of-range values (threshold outside (0,1], audit_fraction outside
  /// [0,1], ...) are rejected with a message in `error`.
  static bool parse(const std::string& text, JobSpec* spec,
                    std::string* error);

  /// Canonical serialization; parse(to_text()) round-trips bit-exactly
  /// (doubles travel as hexfloats).
  std::string to_text() const;

  /// The options a runner executes: `options` with the scheduling knobs
  /// folded in (journal path/resume are filled by the daemon).
  VerifierOptions to_options() const;

  bool has_design_ref() const { return design_nets != 0; }

  /// The hash verify() stamps into this job's journal header:
  /// options_result_hash(to_options()). Design fields never enter it.
  std::uint64_t options_hash() const;

  /// Job identity: options_hash() with the design reference folded in.
  /// Equal to options_hash() (and thus the journal header) when the job
  /// targets the resident design.
  std::uint64_t key() const;
};

/// Parses a design file ("xtvds nets=N [rows=R] [seed=S]") into design
/// reference fields. Unreadable or malformed files fail with a message.
bool load_design_ref_file(const std::string& path, std::size_t* nets,
                          std::size_t* rows, std::uint64_t* seed,
                          std::string* error);

/// 16-hex rendering of a job key and its inverse.
std::string job_key_hex(std::uint64_t key);
bool parse_job_key(const std::string& hex, std::uint64_t* key);

/// On-disk locations of a job's state files.
struct JobPaths {
  std::string spec;
  std::string journal;
  std::string done;
  std::string pid;
};
JobPaths job_paths(const std::string& jobs_dir, std::uint64_t key);

/// %XX-escapes free-form text (crash reasons, summaries) into a single
/// space-free token for wire payloads; empty encodes as "-".
std::string serve_escape(const std::string& s);
bool serve_unescape(const std::string& s, std::string* out);

/// Atomically (tmp + fsync + rename) persists a spec file:
///   xtvss <key> <attempts>\n<canonical spec text>\n
/// Written at admission (so queued jobs survive a daemon crash) and
/// rewritten before each launch (so the retry ladder survives one too).
bool write_spec_file(const std::string& path, const JobSpec& spec,
                     std::size_t attempts, std::string* error);
bool load_spec_file(const std::string& path, JobSpec* spec,
                    std::size_t* attempts, std::string* error);

/// Atomically persists the terminal marker:
///   xtvsd <key> <done|conceded> <escaped summary>\n
/// Written by the runner on clean completion (so an orphaned runner can
/// still finish its job durably) and by the daemon on concession.
bool write_done_file(const std::string& path, std::uint64_t key,
                     JobState terminal, const std::string& summary,
                     std::string* error);
bool load_done_file(const std::string& path, std::uint64_t* key,
                    JobState* terminal, std::string* summary);

}  // namespace serve
}  // namespace xtv
