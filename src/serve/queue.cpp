#include "serve/queue.h"

#include <algorithm>

namespace xtv {
namespace serve {

double BackoffPolicy::delay_ms(std::size_t failures) const {
  double delay = base_ms;
  for (std::size_t i = 0; i < failures; ++i) {
    delay *= factor;
    if (delay >= max_ms) return max_ms;
  }
  return std::min(delay, max_ms);
}

bool AdmissionQueue::push(std::uint64_t key) {
  if (full()) return false;
  fifo_.push_back(key);
  return true;
}

void AdmissionQueue::push_backoff(std::uint64_t key, std::size_t failures,
                                  double now_ms,
                                  const BackoffPolicy& policy) {
  backoff_.push_back(Benched{key, now_ms + policy.delay_ms(failures)});
}

bool AdmissionQueue::pop_ready(double now_ms, std::uint64_t* key) {
  for (auto it = backoff_.begin(); it != backoff_.end(); ++it) {
    if (it->ripe_ms <= now_ms) {
      *key = it->key;
      backoff_.erase(it);
      return true;
    }
  }
  if (!fifo_.empty()) {
    *key = fifo_.front();
    fifo_.pop_front();
    return true;
  }
  return false;
}

void AdmissionQueue::push_front(std::uint64_t key) {
  fifo_.push_front(key);
}

void AdmissionQueue::ready_keys(double now_ms,
                                std::vector<std::uint64_t>* out) const {
  out->clear();
  for (const Benched& b : backoff_)
    if (b.ripe_ms <= now_ms) out->push_back(b.key);
  for (std::uint64_t k : fifo_) out->push_back(k);
}

bool AdmissionQueue::take(std::uint64_t key) {
  for (auto it = backoff_.begin(); it != backoff_.end(); ++it) {
    if (it->key == key) {
      backoff_.erase(it);
      return true;
    }
  }
  for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
    if (*it == key) {
      fifo_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t AdmissionQueue::erase(std::uint64_t key) {
  std::size_t dropped = 0;
  for (auto it = fifo_.begin(); it != fifo_.end();) {
    if (*it == key) {
      it = fifo_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  for (auto it = backoff_.begin(); it != backoff_.end();) {
    if (it->key == key) {
      it = backoff_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

bool AdmissionQueue::contains(std::uint64_t key) const {
  if (std::find(fifo_.begin(), fifo_.end(), key) != fifo_.end()) return true;
  for (const Benched& b : backoff_)
    if (b.key == key) return true;
  return false;
}

double AdmissionQueue::next_ripe_ms() const {
  double best = -1.0;
  for (const Benched& b : backoff_)
    if (best < 0.0 || b.ripe_ms < best) best = b.ripe_ms;
  return best;
}

}  // namespace serve
}  // namespace xtv
