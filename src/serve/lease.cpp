#include "serve/lease.h"

#include <algorithm>

namespace xtv {
namespace serve {

LeaseTable::LeaseTable(const std::vector<std::size_t>& work,
                       const LeaseOptions& opt)
    : opt_(opt) {
  if (opt_.unit_victims == 0) opt_.unit_victims = 1;
  if (opt_.max_unit_attempts == 0) opt_.max_unit_attempts = 1;
  if (opt_.quarantine_distinct_holders == 0)
    opt_.quarantine_distinct_holders = 1;
  for (std::size_t off = 0; off < work.size(); off += opt_.unit_victims) {
    Unit u;
    const std::size_t end = std::min(off + opt_.unit_victims, work.size());
    u.victims.assign(work.begin() + off, work.begin() + end);
    u.remaining.insert(u.victims.begin(), u.victims.end());
    for (std::size_t v : u.victims) victim_unit_[v] = units_.size();
    units_.push_back(std::move(u));
  }
  victims_total_ = work.size();
}

std::size_t LeaseTable::leased_count() const {
  std::size_t n = 0;
  for (const Unit& u : units_)
    if (u.state == UnitState::kLeased) ++n;
  return n;
}

bool LeaseTable::acquire(const std::string& holder, double now_ms,
                         LeaseAssignment* out) {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    Unit& u = units_[i];
    if (u.state != UnitState::kQueued) continue;
    if (u.backoff_until_ms > now_ms) continue;
    u.state = UnitState::kLeased;
    u.holder = holder;
    ++u.attempt;
    ++stats_.leases;
    if (u.attempt > 1) ++stats_.reassignments;
    out->unit = i;
    out->attempt = u.attempt;
    out->victims.assign(u.remaining.begin(), u.remaining.end());
    return true;
  }
  return false;
}

LeaseVerdict LeaseTable::result(std::size_t unit, std::size_t attempt,
                                std::size_t victim) {
  if (unit >= units_.size()) return LeaseVerdict::kUnknown;
  Unit& u = units_[unit];
  const auto member = victim_unit_.find(victim);
  if (member == victim_unit_.end() || member->second != unit)
    return LeaseVerdict::kUnknown;
  if (u.state != UnitState::kLeased || attempt != u.attempt) {
    ++stats_.stale_frames;
    return LeaseVerdict::kStale;
  }
  if (!u.remaining.erase(victim)) {
    ++stats_.duplicate_results;
    return LeaseVerdict::kDuplicate;
  }
  ++victims_settled_;
  return LeaseVerdict::kAccepted;
}

LeaseVerdict LeaseTable::complete(std::size_t unit, std::size_t attempt,
                                  double now_ms) {
  if (unit >= units_.size()) return LeaseVerdict::kUnknown;
  Unit& u = units_[unit];
  if (u.state != UnitState::kLeased || attempt != u.attempt) {
    ++stats_.stale_frames;
    return LeaseVerdict::kStale;
  }
  u.holder.clear();
  if (u.remaining.empty()) {
    u.state = UnitState::kDone;
    return LeaseVerdict::kAccepted;
  }
  // Short completion: the worker finished the unit but some result
  // frames never arrived. Requeue what's left right away — dropped
  // frames are a transport fault, not evidence against the holder.
  ++stats_.short_completions;
  u.state = UnitState::kQueued;
  u.backoff_until_ms = now_ms;
  return LeaseVerdict::kAccepted;
}

void LeaseTable::fail_locked(Unit& u, double now_ms) {
  ++stats_.failures;
  ++u.failures;
  if (!u.holder.empty()) u.failed_holders.insert(u.holder);
  u.holder.clear();
  if (u.failed_holders.size() >= opt_.quarantine_distinct_holders ||
      u.attempt >= opt_.max_unit_attempts) {
    u.state = UnitState::kQuarantined;
    ++stats_.units_quarantined;
    return;
  }
  double delay = opt_.backoff_base_ms;
  for (std::size_t i = 1; i < u.failures && delay < opt_.backoff_max_ms; ++i)
    delay *= 2.0;
  u.state = UnitState::kQueued;
  u.backoff_until_ms = now_ms + std::min(delay, opt_.backoff_max_ms);
}

void LeaseTable::fail_unit(std::size_t unit, double now_ms) {
  if (unit >= units_.size()) return;
  Unit& u = units_[unit];
  if (u.state != UnitState::kLeased) return;
  fail_locked(u, now_ms);
}

void LeaseTable::fail_holder(const std::string& holder, double now_ms) {
  for (Unit& u : units_)
    if (u.state == UnitState::kLeased && u.holder == holder)
      fail_locked(u, now_ms);
}

std::vector<std::size_t> LeaseTable::take_quarantined() {
  std::vector<std::size_t> out;
  for (Unit& u : units_) {
    if (u.state != UnitState::kQuarantined || u.quarantine_taken) continue;
    u.quarantine_taken = true;
    u.state = UnitState::kDone;
    // Stable victim order within the unit (remaining is an ordered set).
    for (std::size_t v : u.remaining) out.push_back(v);
    victims_settled_ += u.remaining.size();
    u.remaining.clear();
  }
  return out;
}

std::vector<std::size_t> LeaseTable::drain_remaining() {
  std::vector<std::size_t> out;
  for (Unit& u : units_) {
    if (u.state == UnitState::kDone) continue;
    u.state = UnitState::kDone;
    u.holder.clear();
    // Live leases are abandoned: attempt stays where it was, so any late
    // frame re-checks against a kDone unit and classifies kStale.
    for (std::size_t v : u.remaining) out.push_back(v);
    victims_settled_ += u.remaining.size();
    u.remaining.clear();
  }
  std::sort(out.begin(), out.end());
  return out;
}

double LeaseTable::next_ready_ms(double now_ms) const {
  bool any = false;
  double earliest = 0.0;
  for (const Unit& u : units_) {
    if (u.state != UnitState::kQueued) continue;
    if (u.backoff_until_ms <= now_ms) return 0.0;
    if (!any || u.backoff_until_ms < earliest) earliest = u.backoff_until_ms;
    any = true;
  }
  return any ? earliest : -1.0;
}

}  // namespace serve
}  // namespace xtv
