// Fault-tolerant multi-host shard fan-out (DESIGN.md §14).
//
// Two halves of one protocol:
//
//   RemoteExecutor — the coordinator. Plugged into VerifierOptions::
//     remote_backend, it dials a fleet of xtv_worker processes over TCP,
//     replays the job spec to each (kWorkerSetup), validates that every
//     worker derives the *same options-result hash* (a worker built from
//     a different binary or spec must refuse work, not silently produce
//     incomparable findings), and then leases contiguous work units
//     (serve/lease.h) to idle workers. Results stream back as journal
//     payloads — the same hexfloat codec the process shards use — so a
//     crash-free multi-host run merges bit-identical to the single-host
//     one.
//
//   run_worker — the worker serve loop behind the xtv_worker binary. It
//     binds a TCP listener (port 0 = ephemeral; the bound endpoint is
//     published atomically via --endpoint-file), accepts one coordinator
//     at a time, rebuilds the spec'd design locally (same generator
//     parameters -> same chip, so only the spec text crosses the wire),
//     and analyzes assigned victims with the verifier's own per-victim
//     engine (ChipVerifier::Prepared).
//
// Failure policy, in one table:
//
//   worker connection lost      fail its leases -> backoff requeue
//   heartbeat silence (10x)     fail its leases; worker kept connected
//                               and re-admitted on any fresh frame
//   silence persists (another   close + mark dead — a wedged-forever
//     10x window)               worker must not hold a poll slot
//   unit died on 2 distinct     quarantine: concede its remaining victims
//     holders (or attempt       locally as kShardCrashed with the
//     budget burned)            conservative Devgan bound (PR 6 ladder)
//   late/duplicate frames       (unit, attempt) mismatch -> dropped
//   options hash mismatch       typed kWorkerReject; worker never leased
//   ALL workers dead            degrade gracefully: remaining victims run
//                               local in-process, every victim still
//                               lands in an explicit FindingStatus
//
// Test hooks (env, all off in production):
//   XTV_TEST_WORKER_CRASH_UNIT=<id>   worker _exits on that unit's assign
//   XTV_TEST_WORKER_STALL_MS=<ms>     worker stalls (heartbeats
//                                     suppressed) before its first unit
//   XTV_TEST_DROP_FRAME_EVERY=<n>     worker drops every n-th kUnitResult
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/journal.h"
#include "core/shard_exec.h"
#include "core/verifier.h"
#include "serve/lease.h"

namespace xtv {
namespace serve {

struct RemoteExecOptions {
  /// Worker endpoints ("host:port" / "tcp:host:port").
  std::vector<std::string> workers;
  /// Expected worker heartbeat period (ms), sent to each worker in the
  /// setup frame. Silence for 10x this expires the worker's leases;
  /// another 10x window closes the connection. 0 disables stall eviction.
  double heartbeat_ms = 250.0;
  /// Victims per leased unit / lease-failure policy (serve/lease.h).
  std::size_t unit_victims = 16;
  std::size_t max_unit_attempts = 4;
  double backoff_base_ms = 200.0;
  double backoff_max_ms = 5000.0;
  /// Per-worker connect + setup-handshake deadline (a worker rebuilds and
  /// characterizes the design before answering, so this is generous).
  double setup_timeout_ms = 60000.0;
  /// Base journal path; the coordinator appends accepted results to
  /// `<base>.shard0` (flush-every-1) as crash insurance, exactly like a
  /// process-shard worker journal. Empty = no insurance journal.
  std::string journal_path;
  /// Options-result hash every worker must independently derive.
  std::uint64_t options_hash = 0;
  /// JobSpec::to_text() of the job — replayed to workers verbatim.
  std::string spec_text;
};

/// Coordinator-side stats, over and above the ShardExecStats mapping
/// (worker_crashes = connection losses + stall evictions, shard_restarts
/// = lease reassignments, victims_quarantined = quarantine concessions).
struct RemoteExecStats {
  std::size_t workers_connected = 0;  ///< setup handshakes completed
  std::size_t workers_rejected = 0;   ///< typed kWorkerReject refusals
  std::size_t workers_lost = 0;       ///< closed: EOF, error, corrupt, wedged
  std::size_t lease_expiries = 0;     ///< heartbeat-silence lease failures
  std::size_t stale_frames = 0;       ///< late frames dropped (unit, attempt)
  std::size_t victims_local = 0;      ///< all-workers-dead local fallback
  LeaseTableStats lease;
};

/// The coordinator. Stateless between runs; construct per job.
class RemoteExecutor : public RemoteBackend {
 public:
  explicit RemoteExecutor(const RemoteExecOptions& options)
      : opt_(options) {}

  /// Runs `work` across the worker fleet; returns one record per victim,
  /// keyed by net (exactly run_process_shards' contract — the verifier
  /// merges either backend's map the same way). Never throws on worker
  /// failure: every victim settles as a real result, a local-fallback
  /// result, or an explicit concession.
  std::map<std::size_t, JournalRecord> run(
      const std::vector<std::size_t>& work, const ShardCallbacks& callbacks,
      ShardExecStats* stats) override;

  const RemoteExecStats& remote_stats() const { return rstats_; }

 private:
  RemoteExecOptions opt_;
  RemoteExecStats rstats_;
};

struct WorkerOptions {
  /// Listen address, "host:port"; port 0 binds an ephemeral port.
  std::string listen = "127.0.0.1:0";
  /// When set, the bound "host:port\n" is published here atomically
  /// (util/atomic_file.h) — scripts and tests discover the ephemeral
  /// port by reading this file.
  std::string endpoint_file;
  /// Characterization cache file shared with the coordinator (optional;
  /// characterization is deterministic, the cache only saves time).
  std::string cell_cache;
  /// Serve this many coordinator connections, then return (0 = forever).
  /// Tests use 1-shot workers; production workers loop.
  std::size_t max_coordinators = 0;
};

/// The worker serve loop (blocks; the xtv_worker binary calls this).
/// Returns a process exit code: 0 on a clean max_coordinators exit,
/// nonzero when the listener cannot be bound.
int run_worker(const WorkerOptions& options);

}  // namespace serve
}  // namespace xtv
