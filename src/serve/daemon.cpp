#include "serve/daemon.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>

#include "core/journal.h"
#include "core/verifier.h"
#include "serve/remote.h"
#include "util/atomic_file.h"
#include "util/log.h"
#include "util/resource.h"
#include "util/subprocess.h"

namespace xtv {
namespace serve {

namespace {

double now_ms() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

// Shared with the signal handlers; lock-free stores/loads only.
volatile sig_atomic_t g_drain_requested = 0;
int g_wake_fd = -1;

extern "C" void serve_signal_handler(int sig) {
  if (sig == SIGTERM || sig == SIGINT) g_drain_requested = 1;
  const int fd = g_wake_fd;
  if (fd >= 0) {
    const char b = 0;
    // Best effort: a full pipe already guarantees a wakeup.
    const ssize_t rc = ::write(fd, &b, 1);
    (void)rc;
  }
}

/// /proc/<pid>/comm, newline stripped; empty when the pid is gone. Used
/// to make sure a recovered .pid file still names one of OUR runners and
/// not an unrelated process that recycled the pid.
std::string read_comm(pid_t pid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%ld/comm",
                static_cast<long>(pid));
  std::FILE* f = std::fopen(path, "rb");
  if (!f) return "";
  char buf[64] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string comm(buf, n);
  while (!comm.empty() && (comm.back() == '\n' || comm.back() == '\0'))
    comm.pop_back();
  return comm;
}

/// Chaos hook: when `env` is set to N, the first N runner launches each
/// claim one O_EXCL counter file in the jobs directory and misbehave;
/// later launches run normally. The files make the budget survive daemon
/// restarts, which the crash-recovery chaos trials need.
bool claim_test_slot(const std::string& jobs_dir, const char* env,
                     const char* tag) {
  const char* v = std::getenv(env);
  if (!v) return false;
  const long times = std::atol(v);
  for (long i = 0; i < times; ++i) {
    const std::string path =
        jobs_dir + "/" + tag + "." + std::to_string(i);
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
  }
  return false;
}

/// A client that stops reading while a big job streams would otherwise
/// buffer without bound; past this the daemon drops the connection (the
/// client can resubmit — replay is idempotent).
constexpr std::size_t kMaxClientBuffer = 8u << 20;

/// Inbound mirror of kMaxClientBuffer: a peer that streams frame bytes
/// faster than the daemon dispatches them (or declares a huge frame and
/// trickles it) is bounded here. Legitimate requests are tiny.
constexpr std::size_t kMaxClientInbound = 4u << 20;

/// A shed runner that ignores its SIGTERM is escalated to SIGKILL after
/// this long (it still requeues; the journal keeps its progress).
constexpr double kShedEscalateMs = 5000.0;

/// Minimum spacing between sheds, so one RSS spike cannot cascade into
/// killing every runner before the first shed's memory is returned.
constexpr double kShedHysteresisMs = 500.0;

/// Daemon RSS in MiB. XTV_TEST_SERVE_RSS_FILE overrides the /proc reading
/// with a number read from the named file — the deterministic lever the
/// shed tests and chaos trials use to fake memory pressure.
double effective_rss_mb() {
  if (const char* path = std::getenv("XTV_TEST_SERVE_RSS_FILE")) {
    std::FILE* f = std::fopen(path, "rb");
    if (f) {
      double mb = 0.0;
      const bool ok = std::fscanf(f, "%lf", &mb) == 1;
      std::fclose(f);
      if (ok) return mb;
    }
  }
  return static_cast<double>(resource::read_rss_bytes()) / (1024.0 * 1024.0);
}

std::string daemon_pid_path(const std::string& jobs_dir) {
  return jobs_dir + "/daemon.pid";
}

/// Chipgen parameters for a spec carrying its own design reference.
/// 0-valued rows/seed keep the generator defaults, so `nets=N` alone
/// names the same chip a daemon booted with `--nets N` would serve.
DspChipOptions chip_options_for(const JobSpec& spec) {
  DspChipOptions chip;
  chip.net_count = spec.design_nets;
  if (spec.design_rows != 0) chip.replicate_rows = spec.design_rows;
  if (spec.design_seed != 0) chip.seed = spec.design_seed;
  return chip;
}

std::string daemon_tcp_path(const std::string& jobs_dir) {
  return jobs_dir + "/daemon.tcp";
}

}  // namespace

ServeDaemon::ServeDaemon(const DaemonOptions& options)
    : opt_(options),
      tech_(Technology::default_250nm()),
      library_(tech_),
      chars_(library_),
      extractor_(tech_),
      queue_(options.queue_capacity),
      governor_(options.global_mem_soft_mb) {}

ServeDaemon::~ServeDaemon() {
  for (Client& c : clients_)
    if (c.fd >= 0) ::close(c.fd);
  for (auto& [key, job] : jobs_)
    if (job.pipe_fd >= 0) ::close(job.pipe_fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opt_.socket_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    ::unlink(daemon_tcp_path(opt_.jobs_dir).c_str());
  }
  if (wrote_pid_file_) ::unlink(daemon_pid_path(opt_.jobs_dir).c_str());
  g_wake_fd = -1;
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void ServeDaemon::build_design() {
  ::mkdir(opt_.jobs_dir.c_str(), 0755);  // EEXIST is fine
  if (!opt_.cell_cache.empty()) chars_.load(opt_.cell_cache);
  DspChipOptions chip;
  chip.net_count = opt_.net_count;
  chip.replicate_rows = opt_.replicate_rows;
  design_ = generate_dsp_chip(library_, chip);
  // Summaries warm the characterization tables every forked runner
  // inherits, and pruned_ fixes the candidate set the daemon needs when
  // it must concede a job itself. Specs cannot change pruning options,
  // so one PruneResult serves every job.
  summaries_ = chip_net_summaries(design_, extractor_, chars_);
  pruned_ = prune_couplings(summaries_, VerifierOptions().prune);
  if (!opt_.cell_cache.empty()) chars_.save(opt_.cell_cache);
  logf(LogLevel::kInfo,
       "serve: resident design ready: %zu nets, %zu couplings",
       design_.nets.size(), design_.couplings.size());
}

bool ServeDaemon::bind_socket(std::string* error) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + opt_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  // Cold-start hygiene: a SIGKILLed daemon leaves its socket file (and
  // daemon.pid) behind. The pid file decides whether the jobs dir is
  // still owned — a live daemon whose pid still runs this binary must not
  // be hijacked; anything else is stale and gets swept so bind() cannot
  // fail on the leftovers.
  const std::string pid_path = daemon_pid_path(opt_.jobs_dir);
  std::FILE* pf = std::fopen(pid_path.c_str(), "rb");
  if (pf) {
    long pid = 0;
    const bool parsed = std::fscanf(pf, "%ld", &pid) == 1;
    std::fclose(pf);
    const std::string own_comm = read_comm(::getpid());
    if (parsed && pid > 1 && pid != static_cast<long>(::getpid()) &&
        !own_comm.empty() &&
        read_comm(static_cast<pid_t>(pid)) == own_comm) {
      *error = "daemon pid " + std::to_string(pid) + " already owns " +
               opt_.jobs_dir + " (" + pid_path + ")";
      return false;
    }
    ::unlink(pid_path.c_str());
  }

  // Belt and braces for daemons predating the pid file (or a recycled pid
  // running this binary for an unrelated jobs dir): probe with a connect
  // before sweeping the socket file.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr));
    ::close(probe);
    if (rc == 0) {
      *error = "another daemon is already serving " + opt_.socket_path;
      return false;
    }
  }
  ::unlink(opt_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    *error = std::string("bind/listen on ") + opt_.socket_path + ": " +
             std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  subprocess::set_nonblocking(listen_fd_);

  // Atomic write: a reader racing our startup must never see a torn pid
  // (the liveness check would probe the wrong process).
  if (write_file_atomic(pid_path,
                        std::to_string(static_cast<long>(::getpid())) + "\n"))
    wrote_pid_file_ = true;
  return true;
}

bool ServeDaemon::bind_tcp(std::string* error) {
  const std::size_t colon = opt_.listen_address.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    *error = "--listen expects host:port, got \"" + opt_.listen_address + "\"";
    return false;
  }
  const std::string host = opt_.listen_address.substr(0, colon);
  const std::string port = opt_.listen_address.substr(colon + 1);

  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    *error = "cannot resolve " + opt_.listen_address + ": " +
             ::gai_strerror(gai);
    return false;
  }
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      tcp_listen_fd_ = fd;
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (tcp_listen_fd_ < 0) {
    *error = "cannot bind TCP listener on " + opt_.listen_address + ": " +
             std::strerror(errno);
    return false;
  }
  subprocess::set_nonblocking(tcp_listen_fd_);

  // Publish the bound endpoint (port 0 resolves to an ephemeral port) so
  // clients and tests can discover it without parsing logs.
  sockaddr_storage bound;
  socklen_t blen = sizeof(bound);
  char bhost[NI_MAXHOST] = {0};
  char bport[NI_MAXSERV] = {0};
  if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &blen) == 0 &&
      ::getnameinfo(reinterpret_cast<sockaddr*>(&bound), blen, bhost,
                    sizeof(bhost), bport, sizeof(bport),
                    NI_NUMERICHOST | NI_NUMERICSERV) == 0) {
    // Atomic write: tests and clients poll this file; a torn endpoint
    // (half a port number) would send them dialing a stranger's socket.
    write_file_atomic(daemon_tcp_path(opt_.jobs_dir),
                      std::string(bhost) + ":" + bport + "\n");
    logf(LogLevel::kInfo, "serve: TCP listener on %s:%s", bhost, bport);
  }
  return true;
}

void ServeDaemon::recover_jobs_dir() {
  DIR* d = ::opendir(opt_.jobs_dir.c_str());
  if (!d) return;
  std::vector<std::uint64_t> keys;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    // job_<16 hex>.spec
    if (name.size() != 4 + 16 + 5 || name.compare(0, 4, "job_") != 0 ||
        name.compare(20, 5, ".spec") != 0)
      continue;
    std::uint64_t key = 0;
    if (parse_job_key(name.substr(4, 16), &key)) keys.push_back(key);
  }
  ::closedir(d);

  const std::string own_comm = read_comm(::getpid());
  const double now = now_ms();
  for (std::uint64_t key : keys) {
    const JobPaths paths = job_paths(opt_.jobs_dir, key);
    Job job;
    std::string err;
    if (!load_spec_file(paths.spec, &job.spec, &job.attempts, &err)) {
      logf(LogLevel::kWarn, "serve: recovery skipping %s: %s",
           paths.spec.c_str(), err.c_str());
      continue;
    }

    // Already terminal: keep it replayable, nothing to do.
    std::uint64_t dkey = 0;
    JobState dstate = JobState::kDone;
    std::string dsummary;
    if (load_done_file(paths.done, &dkey, &dstate, &dsummary) &&
        dkey == key) {
      job.state = dstate;
      job.terminal_summary = dsummary;
      jobs_.emplace(key, std::move(job));
      continue;
    }

    // A runner orphaned by a SIGKILLed daemon may still be alive (or its
    // pid may have been recycled — hence the comm check). Reap it and
    // its process group; its journals keep whatever it finished.
    std::FILE* pf = std::fopen(paths.pid.c_str(), "rb");
    if (pf) {
      long pid = 0;
      if (std::fscanf(pf, "%ld", &pid) == 1 && pid > 1 &&
          !own_comm.empty() && read_comm(static_cast<pid_t>(pid)) == own_comm) {
        logf(LogLevel::kWarn,
             "serve: reaping orphaned runner pid %ld for job %s", pid,
             job_key_hex(key).c_str());
        ::kill(-static_cast<pid_t>(pid), SIGKILL);
        ::kill(static_cast<pid_t>(pid), SIGKILL);
      }
      std::fclose(pf);
      ::unlink(paths.pid.c_str());
    }

    const long retries =
        job.spec.retries >= 0 ? job.spec.retries : opt_.default_retries;
    const std::size_t allowed = static_cast<std::size_t>(retries) + 1;
    auto [it, inserted] = jobs_.emplace(key, std::move(job));
    (void)inserted;
    if (it->second.attempts >= allowed) {
      concede_job(key, it->second,
                  "interrupted with its retry budget already spent");
    } else {
      it->second.state = JobState::kBackoff;
      it->second.enqueued_ms = now;
      queue_.push_backoff(key, it->second.attempts, now, opt_.backoff);
      logf(LogLevel::kInfo,
           "serve: recovered interrupted job %s (attempt %zu/%zu)",
           job_key_hex(key).c_str(), it->second.attempts, allowed);
    }
  }
}

bool ServeDaemon::memory_gate_open() const {
  if (resource::MemoryGovernor::instance().under_pressure()) return false;
  if (opt_.global_mem_soft_mb > 0.0 &&
      effective_rss_mb() > opt_.global_mem_soft_mb)
    return false;
  return true;
}

double ServeDaemon::job_reserve_mb(const JobSpec& spec) const {
  if (spec.mem_mb > 0.0) return spec.mem_mb;  // client knows best
  // Estimate: each shard worker is a fork of the daemon image (CoW, but
  // it dirties its shard's clusters and model cache) plus the runner
  // supervisor; the per-net term covers cluster state scaling with the
  // job's design size.
  const std::size_t nets =
      spec.has_design_ref() ? spec.design_nets : design_.nets.size();
  const std::size_t procs =
      spec.processes != 0 ? spec.processes
                          : std::max<std::size_t>(1, opt_.default_processes);
  return 48.0 * static_cast<double>(procs + 1) +
         0.02 * static_cast<double>(nets) * static_cast<double>(procs);
}

std::vector<std::size_t> ServeDaemon::candidates_for(const JobSpec& spec) {
  // Mirrors ChipVerifier::verify's candidate loop (same prune options:
  // specs cannot alter them). Jobs with their own design reference are
  // rare on this path (only concession needs it), so the design is
  // regenerated rather than cached.
  const ChipDesign* target = &design_;
  ChipDesign job_design;
  PruneResult job_pruned;
  const PruneResult* pruned = &pruned_;
  if (spec.has_design_ref()) {
    job_design = generate_dsp_chip(library_, chip_options_for(spec));
    const std::vector<NetSummary> sums =
        chip_net_summaries(job_design, extractor_, chars_);
    job_pruned = prune_couplings(sums, VerifierOptions().prune);
    target = &job_design;
    pruned = &job_pruned;
  }
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < target->nets.size(); ++v) {
    if (pruned->retained[v].empty()) continue;
    if (spec.options.latch_inputs_only && !target->nets[v].latch_input)
      continue;
    out.push_back(v);
  }
  return out;
}

// --- Client plumbing ---------------------------------------------------

void ServeDaemon::send_frame(Client& c, WireType type,
                             const std::string& payload) {
  if (c.fd < 0) return;
  c.outbuf += wire_encode_frame(type, payload);
  c.last_tx_ms = now_ms();
  if (c.outbuf.size() > kMaxClientBuffer) {
    logf(LogLevel::kWarn, "serve: dropping unresponsive client (%zu buffered)",
         c.outbuf.size());
    ::close(c.fd);
    c.fd = -1;
    return;
  }
  flush_client(c);
}

void ServeDaemon::flush_client(Client& c) {
  while (c.fd >= 0 && !c.outbuf.empty()) {
    const ssize_t n = ::write(c.fd, c.outbuf.data(), c.outbuf.size());
    if (n > 0) {
      c.outbuf.erase(0, static_cast<std::size_t>(n));
      c.last_progress_ms = now_ms();
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // POLLOUT will resume
    } else {
      ::close(c.fd);  // client went away mid-stream; jobs keep running
      c.fd = -1;
      return;
    }
  }
}

void ServeDaemon::stream_finding(std::uint64_t key, Job& job,
                                 std::size_t net,
                                 const std::string& payload) {
  (void)job;
  const std::string hex = job_key_hex(key);
  for (Client& c : clients_) {
    if (c.fd < 0 || !c.watching.count(key)) continue;
    auto& sent = c.sent[key];
    if (!sent.insert(net).second) continue;  // exactly-once per client
    send_frame(c, WireType::kJobFinding, hex + " " + payload);
  }
}

// --- Protocol handlers -------------------------------------------------

void ServeDaemon::on_submit(Client& c, const std::string& payload) {
  std::istringstream in(payload);
  std::string token;
  if (!(in >> token)) return;  // not answerable without a token
  std::string spec_text;
  std::getline(in, spec_text);

  if (draining_) {
    send_frame(c, WireType::kJobRejected,
               token + " draining " +
                   serve_escape("daemon is draining; resubmit later"));
    return;
  }
  JobSpec spec;
  std::string perr;
  // Parse rejects malformed specs AND unreadable design= files (the file
  // is resolved right here, at admission, not at launch).
  if (!JobSpec::parse(spec_text, &spec, &perr)) {
    send_frame(c, WireType::kJobRejected,
               token + " bad-spec " + serve_escape(perr));
    return;
  }
  if (opt_.max_job_nets != 0 && spec.design_nets > opt_.max_job_nets) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "design of %zu nets exceeds --max-job-nets %zu",
                  spec.design_nets, opt_.max_job_nets);
    send_frame(c, WireType::kJobRejected,
               token + " oversized " + serve_escape(detail));
    return;
  }

  const std::uint64_t key = spec.key();
  const std::string hex = job_key_hex(key);
  auto it = jobs_.find(key);
  if (it != jobs_.end()) {
    // Idempotent resubmit: attach to the existing job and replay what it
    // already has. The per-client sent set keeps the stream exactly-once
    // even across repeated resubmits.
    Job& job = it->second;
    send_frame(c, WireType::kJobAccepted,
               token + " " + hex + " " + job_state_name(job.state));
    c.watching.insert(key);
    if (job.state == JobState::kDone || job.state == JobState::kConceded) {
      finalize_terminal(key, job);  // replays to every watcher incl. this one
    } else {
      auto& sent = c.sent[key];
      for (const auto& [net, pl] : job.findings)
        if (sent.insert(net).second)
          send_frame(c, WireType::kJobFinding, hex + " " + pl);
    }
    return;
  }

  if (!queue_.push(key)) {
    char detail[64];
    std::snprintf(detail, sizeof(detail),
                  "admission queue at capacity (%zu)", queue_.capacity());
    send_frame(c, WireType::kJobRejected,
               token + " queue-full " + serve_escape(detail));
    return;
  }

  Job job;
  job.spec = spec;
  job.enqueued_ms = now_ms();
  const JobPaths paths = job_paths(opt_.jobs_dir, key);
  std::string werr;
  if (!write_spec_file(paths.spec, spec, 0, &werr)) {
    queue_.erase(key);
    send_frame(c, WireType::kJobRejected,
               token + " io-error " + serve_escape(werr));
    return;
  }
  jobs_.emplace(key, std::move(job));
  c.watching.insert(key);
  send_frame(c, WireType::kJobAccepted, token + " " + hex + " queued");
  logf(LogLevel::kInfo, "serve: admitted job %s (%zu queued)", hex.c_str(),
       queue_.size());
}

void ServeDaemon::on_query(Client& c, const std::string& payload) {
  std::istringstream in(payload);
  std::string token, hex;
  if (!(in >> token)) return;
  std::uint64_t key = 0;
  if (!(in >> hex) || !parse_job_key(hex, &key) || !jobs_.count(key)) {
    send_frame(c, WireType::kJobRejected,
               token + " unknown-job " + serve_escape(hex));
    return;
  }
  const Job& job = jobs_.at(key);
  std::ostringstream out;
  out << hex << ' ' << job_state_name(job.state) << " attempts="
      << job.attempts << " findings=" << job.findings.size();
  if (!job.terminal_summary.empty())
    out << ' ' << job.terminal_summary;
  send_frame(c, WireType::kJobStatus, out.str());
}

void ServeDaemon::handle_client_frames(Client& c, double now) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      c.decoder.feed(buf, static_cast<std::size_t>(n));
      c.last_rx_ms = now;
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      ::close(c.fd);  // EOF or hard error: client disconnected
      c.fd = -1;
      return;
    }
  }
  WireFrame f;
  while (c.fd >= 0 && c.decoder.next(&f)) {
    switch (f.type) {
      case WireType::kJobSubmit:
        on_submit(c, f.payload);
        break;
      case WireType::kJobQuery:
        on_query(c, f.payload);
        break;
      default:
        break;  // daemon->client types echoed back; ignore
    }
  }
  if (c.fd >= 0 && c.decoder.corrupt()) {
    // Latch-and-close: the decoder never resynchronizes a corrupt stream,
    // so neither does the daemon. The client reconnects and resubmits
    // (replay is idempotent).
    logf(LogLevel::kWarn, "serve: dropping client with corrupt stream");
    ::close(c.fd);
    c.fd = -1;
  }
  if (c.fd >= 0 && c.decoder.buffered() > kMaxClientInbound) {
    logf(LogLevel::kWarn,
         "serve: dropping client flooding %zu undispatched bytes",
         c.decoder.buffered());
    ::close(c.fd);
    c.fd = -1;
  }
}

void ServeDaemon::handle_listen(int listen_fd, bool tcp) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error; poll retries
    }

    std::size_t live = 0;
    for (const Client& c : clients_)
      if (c.fd >= 0) ++live;
    if (opt_.max_connections != 0 && live >= opt_.max_connections) {
      // Before refusing, sweep peers that already sent FIN with nothing
      // left to read (one-shot status pollers, the startup ready probe):
      // their EOF may be queued behind this accept in the same poll
      // batch, and a dead connection holds no claim on a slot.
      for (Client& c : clients_) {
        if (c.fd < 0) continue;
        char peek;
        if (::recv(c.fd, &peek, 1, MSG_PEEK | MSG_DONTWAIT) == 0) {
          ::close(c.fd);
          c.fd = -1;
          --live;
        }
      }
    }
    if (opt_.max_connections != 0 && live >= opt_.max_connections) {
      // Explicit pushback, not a silent RST: one best-effort kJobRejected
      // frame, then close. The fd is still blocking here, but the frame
      // is tiny (fits any socket buffer), so this cannot wedge the loop.
      char detail[64];
      std::snprintf(detail, sizeof(detail), "connection cap (%zu) reached",
                    opt_.max_connections);
      const std::string frame = wire_encode_frame(
          WireType::kJobRejected,
          std::string("- conn-limit ") + serve_escape(detail));
      const ssize_t rc = ::write(fd, frame.data(), frame.size());
      (void)rc;
      ::close(fd);
      logf(LogLevel::kWarn, "serve: refused connection: %s", detail);
      continue;
    }

    subprocess::set_nonblocking(fd);
    if (tcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    Client c;
    c.fd = fd;
    c.tcp = tcp;
    const double now = now_ms();
    c.last_rx_ms = now;
    c.last_tx_ms = now;
    c.last_progress_ms = now;
    clients_.push_back(std::move(c));
  }
}

void ServeDaemon::police_clients(double now) {
  for (Client& c : clients_) {
    if (c.fd < 0) continue;
    if (opt_.io_timeout_ms > 0.0) {
      // Slow loris: a partial frame parked in the decoder with no new
      // bytes arriving holds daemon memory hostage — evict.
      if (c.decoder.buffered() > 0 && now - c.last_rx_ms > opt_.io_timeout_ms) {
        logf(LogLevel::kWarn,
             "serve: evicting connection stalled mid-frame (%zu bytes, "
             "silent %.0f ms)",
             c.decoder.buffered(), now - c.last_rx_ms);
        ::close(c.fd);
        c.fd = -1;
        continue;
      }
      // Write deadline: a peer that stops reading while output is queued
      // is evicted once no write makes progress for the timeout.
      if (!c.outbuf.empty() &&
          now - c.last_progress_ms > opt_.io_timeout_ms) {
        logf(LogLevel::kWarn,
             "serve: evicting connection not draining %zu queued bytes",
             c.outbuf.size());
        ::close(c.fd);
        c.fd = -1;
        continue;
      }
    }
    // Idle keepalive (TCP only): dead peers surface as write errors
    // instead of lingering forever; live clients skip the frame.
    if (c.tcp && opt_.keepalive_ms > 0.0 && c.outbuf.empty() &&
        now - c.last_tx_ms > opt_.keepalive_ms)
      send_frame(c, WireType::kHeartbeat, "0");
  }
}

// --- Runner lifecycle --------------------------------------------------

int ServeDaemon::runner_main(const Job& job, int write_fd) {
  // The child inherited the daemon's signal plumbing; detach from it so
  // verify()'s own child management and pgid kills behave normally.
  g_wake_fd = -1;
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGCHLD, SIG_DFL);
  subprocess::ignore_sigpipe();

  const std::uint64_t key = job.spec.key();
  const std::string hex = job_key_hex(key);
  const JobPaths paths = job_paths(opt_.jobs_dir, key);
  WireWriter writer(write_fd);
  writer.send(WireType::kHello, hex);

  // Chaos hooks (see claim_test_slot).
  if (claim_test_slot(opt_.jobs_dir, "XTV_TEST_SERVE_RUNNER_CRASH",
                      "runner_crash"))
    ::abort();
  if (claim_test_slot(opt_.jobs_dir, "XTV_TEST_SERVE_RUNNER_STALL",
                      "runner_stall"))
    for (;;) ::pause();

  VerifierOptions vo = job.spec.to_options();
  // Always run process shards: the supervisor finalizes the journal with
  // one stable-order atomic write, which is what makes a served job's
  // journal bit-identical to a one-shot chip_audit run — and what lets a
  // SIGKILLed runner resume from its shard journals.
  if (vo.processes == 0)
    vo.processes = std::max<std::size_t>(1, opt_.default_processes);
  if (vo.batch_width == 0)
    vo.batch_width = std::max<std::size_t>(1, opt_.default_batch_width);
  vo.threads = 1;
  vo.journal_path = paths.journal;
  vo.resume = true;  // journal ctor creates a fresh journal when absent

  double last_hb = now_ms();
  std::uint64_t seq = 0;
  const double hb_period = job.spec.heartbeat_ms;
  vo.on_tick = [&] {
    const double t = now_ms();
    if (t - last_hb < hb_period) return;
    last_hb = t;
    char s[32];
    std::snprintf(s, sizeof(s), "%llu",
                  static_cast<unsigned long long>(seq++));
    writer.send(WireType::kHeartbeat, s);
  };
  vo.on_record = [&](const JournalRecord& rec) {
    writer.send(WireType::kJobFinding, hex + " " + journal_encode(rec));
  };

  // Remote fan-out: lease this job's victims to the configured xtv_worker
  // fleet (serve/remote.h). Workers rebuild the design from the spec text,
  // so a resident-design job gets the daemon's generator parameters
  // stamped in as an explicit design reference first.
  std::unique_ptr<RemoteExecutor> remote;
  if (!opt_.workers.empty()) {
    JobSpec wspec = job.spec;
    if (!wspec.has_design_ref()) {
      wspec.design_nets = opt_.net_count;
      if (opt_.replicate_rows > 1) wspec.design_rows = opt_.replicate_rows;
    }
    RemoteExecOptions ro;
    ro.workers = opt_.workers;
    ro.heartbeat_ms = opt_.worker_heartbeat_ms;
    ro.unit_victims = opt_.unit_victims;
    ro.max_unit_attempts = opt_.max_unit_attempts;
    ro.journal_path = vo.journal_path;
    ro.options_hash = options_result_hash(vo);
    ro.spec_text = wspec.to_text();
    remote = std::make_unique<RemoteExecutor>(ro);
    vo.remote_backend = remote.get();
  }

  try {
    // A spec with its own design reference gets a chip generated in the
    // runner (the fork keeps the daemon's library/characterization warm);
    // everything else runs against the inherited resident design.
    const ChipDesign* target = &design_;
    ChipDesign job_design;
    if (job.spec.has_design_ref()) {
      job_design = generate_dsp_chip(library_, chip_options_for(job.spec));
      target = &job_design;
    }
    ChipVerifier verifier(extractor_, chars_);
    const VerificationReport report = verifier.verify(*target, vo);
    char summary[256];
    std::snprintf(summary, sizeof(summary),
                  "eligible=%zu analyzed=%zu screened=%zu fallback=%zu "
                  "failed=%zu shard_crashed=%zu violations=%zu",
                  report.victims_eligible, report.victims_analyzed,
                  report.victims_screened_out, report.victims_fallback,
                  report.victims_failed, report.victims_shard_crashed,
                  report.violations);
    // The runner writes its own terminal marker: even a runner orphaned
    // by a daemon SIGKILL then finishes its job durably, and the
    // restarted daemon finds the .done file instead of re-running.
    std::string derr;
    if (!write_done_file(paths.done, key, JobState::kDone, summary, &derr)) {
      logf(LogLevel::kError, "serve runner %s: %s", hex.c_str(),
           derr.c_str());
      return 1;
    }
    writer.send(WireType::kJobDone, hex + " done " + std::string(summary));
    return 0;
  } catch (const std::exception& e) {
    logf(LogLevel::kError, "serve runner %s: verify failed: %s", hex.c_str(),
         e.what());
    return 1;
  }
}

bool ServeDaemon::launch(std::uint64_t key, Job& job, double now) {
  const JobPaths paths = job_paths(opt_.jobs_dir, key);
  ++job.attempts;
  std::string werr;
  // Persist the attempt BEFORE the fork: if the daemon is SIGKILLed right
  // after, recovery still sees the attempt as spent and the retry ladder
  // cannot run forever.
  if (!write_spec_file(paths.spec, job.spec, job.attempts, &werr)) {
    logf(LogLevel::kError, "serve: cannot persist %s: %s",
         paths.spec.c_str(), werr.c_str());
    job.state = JobState::kBackoff;
    queue_.push_backoff(key, job.attempts, now, opt_.backoff);
    return false;
  }

  subprocess::Pipe pipe;
  try {
    pipe = subprocess::make_pipe();
  } catch (const std::exception& e) {
    logf(LogLevel::kError, "serve: %s", e.what());
    job.state = JobState::kBackoff;
    queue_.push_backoff(key, job.attempts, now, opt_.backoff);
    return false;
  }

  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe.read_fd);
    ::close(pipe.write_fd);
    logf(LogLevel::kError, "serve: fork(): %s", std::strerror(errno));
    job.state = JobState::kBackoff;
    queue_.push_backoff(key, job.attempts, now, opt_.backoff);
    return false;
  }
  if (pid == 0) {
    // Runner child: own process group (so one SIGKILL reaps it together
    // with its forked shard workers), daemon fds closed.
    ::setpgid(0, 0);
    ::close(pipe.read_fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
    for (Client& c : clients_)
      if (c.fd >= 0) ::close(c.fd);
    for (auto& [k, other] : jobs_)
      if (other.pipe_fd >= 0) ::close(other.pipe_fd);
    ::_exit(runner_main(job, pipe.write_fd));
  }
  ::setpgid(pid, pid);  // also set from the parent: closes the race
  ::close(pipe.write_fd);
  subprocess::set_nonblocking(pipe.read_fd);

  job.pid = pid;
  job.pipe_fd = pipe.read_fd;
  job.decoder = WireDecoder();
  job.heard_any = false;
  job.kill_sent = false;
  job.shed_pending = false;
  job.shed_sent_ms = 0.0;
  job.kill_reason.clear();
  job.launched_ms = now;
  job.last_heard_ms = now;
  job.state = JobState::kRunning;
  job.reserve_mb = job_reserve_mb(job.spec);
  governor_.reserve(key, job.reserve_mb);

  // Atomic write: recovery reads this file to reap orphaned runners; a
  // torn pid would aim the reaper at an unrelated process.
  write_file_atomic(paths.pid,
                    std::to_string(static_cast<long>(pid)) + "\n");
  logf(LogLevel::kInfo, "serve: job %s attempt %zu running as pid %ld",
       job_key_hex(key).c_str(), job.attempts, static_cast<long>(pid));
  return true;
}

void ServeDaemon::kill_runner(Job& job) {
  if (job.pid <= 0 || job.kill_sent) return;
  ::kill(-job.pid, SIGKILL);  // whole runner group: shard workers included
  ::kill(job.pid, SIGKILL);
  job.kill_sent = true;
}

void ServeDaemon::handle_runner_frames(Job& job, double now) {
  const std::uint64_t key = job.spec.key();
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(job.pipe_fd, buf, sizeof(buf));
    if (n > 0) {
      job.decoder.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      // EOF/error. NOT a death verdict by itself (shard workers inherit
      // the write end); try_wait in reap_runners() is authoritative.
      ::close(job.pipe_fd);
      job.pipe_fd = -1;
      break;
    }
  }
  WireFrame f;
  while (job.decoder.next(&f)) {
    switch (f.type) {
      case WireType::kHeartbeat:
        job.heard_any = true;
        job.last_heard_ms = now;
        break;
      case WireType::kJobFinding: {
        job.heard_any = true;
        job.last_heard_ms = now;
        const std::size_t sp = f.payload.find(' ');
        if (sp == std::string::npos) break;
        const std::string payload = f.payload.substr(sp + 1);
        JournalRecord rec;
        if (!journal_decode(payload, rec)) break;
        job.findings[rec.finding.net] = payload;
        stream_finding(key, job, rec.finding.net, payload);
        break;
      }
      case WireType::kJobDone:
      case WireType::kHello:
        job.last_heard_ms = now;
        break;
      default:
        break;
    }
  }
  if (job.decoder.corrupt() && !job.kill_sent) {
    job.kill_reason = "corrupt runner stream";
    kill_runner(job);
  }
}

std::map<std::size_t, JournalRecord> ServeDaemon::collect_results(
    const Job& job) const {
  const std::uint64_t key = job.spec.key();
  // Journal headers carry what verify() stamps: the bare options hash
  // (== key only for resident-design jobs).
  const std::uint64_t jhash = job.spec.options_hash();
  const JobPaths paths = job_paths(opt_.jobs_dir, key);
  std::map<std::size_t, JournalRecord> results;
  auto fold = [&](const std::string& path) {
    ResultJournal::LoadResult prior = ResultJournal::load(path);
    if (!prior.has_header || prior.header_hash != jhash) return;
    for (auto& rec : prior.records)
      results.insert_or_assign(rec.finding.net, std::move(rec));
  };
  fold(paths.journal);
  for (std::size_t k : journal_list_shards(paths.journal))
    fold(journal_shard_path(paths.journal, k));
  // Live-streamed findings may be ahead of the (batched) shard journals.
  for (const auto& [net, payload] : job.findings) {
    JournalRecord rec;
    if (journal_decode(payload, rec)) results.insert_or_assign(net, rec);
  }
  return results;
}

void ServeDaemon::concede_job(std::uint64_t key, Job& job,
                              const std::string& why) {
  const JobPaths paths = job_paths(opt_.jobs_dir, key);
  std::map<std::size_t, JournalRecord> results = collect_results(job);
  const std::vector<std::size_t> cands = candidates_for(job.spec);
  std::size_t synthesized = 0;
  for (std::size_t v : cands) {
    if (results.count(v)) continue;
    // Rung-4 contract (core/shard_exec.h): pure struct assembly, maximally
    // pessimistic, explicitly typed — never silence.
    JournalRecord rec;
    rec.screened = false;
    rec.finding.net = v;
    rec.finding.status = FindingStatus::kShardCrashed;
    rec.finding.error_code = StatusCode::kWorkerCrashed;
    rec.finding.error = "conceded by serve daemon: " + why;
    rec.finding.peak = -tech_.vdd;
    rec.finding.peak_fraction = 1.0;
    rec.finding.violation = true;
    results.emplace(v, std::move(rec));
    ++synthesized;
  }
  std::vector<const JournalRecord*> recs;
  recs.reserve(results.size());
  for (const auto& [net, rec] : results) recs.push_back(&rec);
  try {
    ResultJournal::write_atomic(paths.journal, recs, job.spec.options_hash());
  } catch (const std::exception& e) {
    logf(LogLevel::kError, "serve: conceding %s: %s",
         job_key_hex(key).c_str(), e.what());
  }
  for (std::size_t k : journal_list_shards(paths.journal))
    ::unlink(journal_shard_path(paths.journal, k).c_str());

  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "victims=%zu conceded=%zu reason=%s", results.size(),
                synthesized, serve_escape(why).c_str());
  std::string derr;
  if (!write_done_file(paths.done, key, JobState::kConceded, summary, &derr))
    logf(LogLevel::kError, "serve: %s", derr.c_str());
  job.state = JobState::kConceded;
  job.terminal_summary = summary;
  queue_.erase(key);
  governor_.release(key);
  logf(LogLevel::kWarn, "serve: job %s conceded: %s",
       job_key_hex(key).c_str(), why.c_str());
  finalize_terminal(key, job);
}

void ServeDaemon::finalize_terminal(std::uint64_t key, Job& job) {
  // The on-disk journal is the authority on what the job produced; the
  // live findings map may have holes (resumed victims are merged without
  // re-running, so the runner never re-streams them).
  const JobPaths paths = job_paths(opt_.jobs_dir, key);
  ResultJournal::LoadResult prior = ResultJournal::load(paths.journal);
  if (prior.has_header && prior.header_hash == job.spec.options_hash())
    for (const auto& rec : prior.records)
      job.findings[rec.finding.net] = journal_encode(rec);

  const std::string hex = job_key_hex(key);
  const std::string verdict =
      job.state == JobState::kConceded ? "conceded" : "done";
  for (Client& c : clients_) {
    if (c.fd < 0 || !c.watching.count(key)) continue;
    auto& sent = c.sent[key];
    for (const auto& [net, payload] : job.findings)
      if (sent.insert(net).second)
        send_frame(c, WireType::kJobFinding, hex + " " + payload);
    send_frame(c, WireType::kJobDone,
               hex + " " + verdict + " " + job.terminal_summary);
  }
}

void ServeDaemon::attempt_failed(std::uint64_t key, Job& job, double now,
                                 const std::string& why) {
  const long retries =
      job.spec.retries >= 0 ? job.spec.retries : opt_.default_retries;
  const std::size_t allowed = static_cast<std::size_t>(retries) + 1;
  logf(LogLevel::kWarn, "serve: job %s attempt %zu/%zu failed: %s",
       job_key_hex(key).c_str(), job.attempts, allowed, why.c_str());
  if (job.attempts >= allowed) {
    char reason[192];
    std::snprintf(reason, sizeof(reason),
                  "retry budget exhausted after %zu attempts (last: %s)",
                  job.attempts, why.c_str());
    concede_job(key, job, reason);
    return;
  }
  job.state = JobState::kBackoff;
  queue_.push_backoff(key, job.attempts, now, opt_.backoff);
}

void ServeDaemon::reap_runners(double now) {
  for (auto& [key, job] : jobs_) {
    if (job.pid <= 0) continue;
    subprocess::ExitStatus status;
    if (!subprocess::try_wait(job.pid, &status)) continue;

    // Drain any frames the runner wrote right before exiting.
    if (job.pipe_fd >= 0) {
      handle_runner_frames(job, now);
      if (job.pipe_fd >= 0) {
        ::close(job.pipe_fd);
        job.pipe_fd = -1;
      }
    }
    const pid_t pid = job.pid;
    job.pid = -1;
    ::kill(-pid, SIGKILL);  // straggler shard workers of a crashed runner
    const JobPaths paths = job_paths(opt_.jobs_dir, key);
    ::unlink(paths.pid.c_str());
    governor_.release(key);

    // The done file is authoritative even when the exit status is not
    // clean: a runner that finalized its journal and durable marker, then
    // lost a race with a shed SIGTERM (or a drain kill), still finished
    // its job — re-running it would only redo completed work.
    std::uint64_t dkey = 0;
    JobState dstate = JobState::kDone;
    std::string dsummary;
    if (load_done_file(paths.done, &dkey, &dstate, &dsummary) &&
        dkey == key) {
      job.shed_pending = false;
      job.state = dstate;
      job.terminal_summary = dsummary;
      logf(LogLevel::kInfo, "serve: job %s done (%s)",
           job_key_hex(key).c_str(), dsummary.c_str());
      finalize_terminal(key, job);
    } else if (job.shed_pending) {
      // Shed under memory pressure: this termination was the daemon's
      // doing, not the job's failure, so the attempt is refunded and the
      // job goes back to the FIFO *head* with its original enqueue time
      // (aging will promote it once pressure clears).
      job.shed_pending = false;
      if (job.attempts > 0) --job.attempts;
      std::string werr;
      if (!write_spec_file(paths.spec, job.spec, job.attempts, &werr))
        logf(LogLevel::kWarn, "serve: cannot refund attempt for %s: %s",
             job_key_hex(key).c_str(), werr.c_str());
      job.state = JobState::kQueued;
      queue_.push_front(key);
      logf(LogLevel::kInfo,
           "serve: job %s shed under memory pressure; requeued with "
           "attempt count intact (%zu)",
           job_key_hex(key).c_str(), job.attempts);
    } else {
      const std::string why =
          !job.kill_reason.empty() ? job.kill_reason : status.describe();
      attempt_failed(key, job, now, why);
    }
  }
}

void ServeDaemon::supervise(double now) {
  for (auto& [key, job] : jobs_) {
    if (job.pid <= 0 || job.kill_sent) continue;
    if (job.shed_pending) {
      // Already SIGTERMed by the shed path; only the SIGKILL escalation
      // applies (deadline/stall verdicts would steal the refund).
      if (now - job.shed_sent_ms > kShedEscalateMs) kill_runner(job);
      continue;
    }
    const double deadline = job.spec.deadline_ms >= 0.0
                                ? job.spec.deadline_ms
                                : opt_.default_deadline_ms;
    if (deadline > 0.0 && now - job.launched_ms > deadline) {
      job.kill_reason = "per-attempt deadline exceeded";
      kill_runner(job);
      continue;
    }
    if (!job.heard_any) {
      // Silent startup phase (pruning, characterization): only the long
      // grace applies until the first heartbeat or finding.
      if (opt_.runner_grace_ms > 0.0 &&
          now - job.launched_ms > opt_.runner_grace_ms) {
        job.kill_reason = "no heartbeat within the startup grace period";
        kill_runner(job);
      }
      continue;
    }
    const double stall = 10.0 * job.spec.heartbeat_ms;
    if (stall > 0.0 && now - job.last_heard_ms > stall) {
      job.kill_reason = "runner heartbeat silence (presumed wedged)";
      kill_runner(job);
    }
  }
}

void ServeDaemon::maybe_shed(double now) {
  if (opt_.global_mem_soft_mb <= 0.0) return;
  if (effective_rss_mb() <= opt_.global_mem_soft_mb) return;
  if (now - last_shed_ms_ < kShedHysteresisMs) return;

  // Shed only while >= 2 runners are live: with one job left, killing it
  // would just thrash (the launch gate already stalls new launches, and
  // per-cluster budgets inside the runner bound its growth).
  Job* youngest = nullptr;
  std::uint64_t youngest_key = 0;
  std::size_t running = 0;
  for (auto& [key, job] : jobs_) {
    if (job.pid <= 0 || job.kill_sent || job.shed_pending) continue;
    ++running;
    if (!youngest || job.launched_ms > youngest->launched_ms) {
      youngest = &job;
      youngest_key = key;
    }
  }
  if (running < 2 || !youngest) return;

  // SIGTERM the runner group, not SIGKILL: the shard supervisor dies
  // quickly (default disposition), shard journals keep the progress, and
  // a runner that was one write away from finishing may still finalize —
  // the reap path honors its done file either way.
  logf(LogLevel::kWarn,
       "serve: RSS %.0f MiB over soft budget %.0f MiB; shedding youngest "
       "job %s back to queued",
       effective_rss_mb(), opt_.global_mem_soft_mb,
       job_key_hex(youngest_key).c_str());
  youngest->shed_pending = true;
  youngest->shed_sent_ms = now;
  youngest->kill_reason = "shed under memory pressure";
  ::kill(-youngest->pid, SIGTERM);
  ::kill(youngest->pid, SIGTERM);
  last_shed_ms_ = now;
}

void ServeDaemon::schedule(double now) {
  for (;;) {
    std::size_t running = 0;
    for (const auto& [key, job] : jobs_)
      if (job.pid > 0) ++running;
    if (running >= opt_.max_running) return;
    if (!memory_gate_open()) return;  // stays queued; retried next tick

    // Collect every runnable job and let the admission policy pick:
    // largest-fitting reservation under the governor, aging promotion,
    // plain FIFO when the budget is off (see serve/governor.h).
    std::vector<std::uint64_t> ready;
    queue_.ready_keys(now, &ready);
    std::vector<LaunchCandidate> cands;
    std::vector<std::uint64_t> stale;
    for (std::uint64_t key : ready) {
      auto it = jobs_.find(key);
      if (it == jobs_.end() || it->second.state == JobState::kDone ||
          it->second.state == JobState::kConceded || it->second.pid > 0) {
        stale.push_back(key);  // cancelled/terminal/running stale entry
        continue;
      }
      cands.push_back(LaunchCandidate{key, job_reserve_mb(it->second.spec),
                                      it->second.enqueued_ms});
    }
    for (std::uint64_t key : stale) queue_.take(key);

    const std::size_t pick =
        pick_admission(cands, now, opt_.age_promote_ms, governor_);
    if (pick == kNoAdmission) return;
    const std::uint64_t key = cands[pick].key;
    queue_.take(key);
    launch(key, jobs_.at(key), now);
  }
}

int ServeDaemon::run() {
  try {
    build_design();
  } catch (const std::exception& e) {
    logf(LogLevel::kError, "serve: startup failed: %s", e.what());
    return 2;
  }
  std::string err;
  if (!bind_socket(&err)) {
    logf(LogLevel::kError, "serve: %s", err.c_str());
    return 2;
  }
  if (!opt_.listen_address.empty() && !bind_tcp(&err)) {
    logf(LogLevel::kError, "serve: %s", err.c_str());
    return 2;
  }
  try {
    const subprocess::Pipe wake = subprocess::make_pipe();
    wake_read_fd_ = wake.read_fd;
    wake_write_fd_ = wake.write_fd;
  } catch (const std::exception& e) {
    logf(LogLevel::kError, "serve: %s", e.what());
    return 2;
  }
  subprocess::set_nonblocking(wake_read_fd_);
  subprocess::set_nonblocking(wake_write_fd_);
  g_wake_fd = wake_write_fd_;
  g_drain_requested = 0;

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &serve_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGCHLD, &sa, nullptr);
  subprocess::ignore_sigpipe();

  recover_jobs_dir();
  logf(LogLevel::kInfo, "serve: listening on %s (queue %zu, %zu runner%s)",
       opt_.socket_path.c_str(), opt_.queue_capacity, opt_.max_running,
       opt_.max_running == 1 ? "" : "s");

  for (;;) {
    const double now = now_ms();
    if (g_drain_requested && !draining_) {
      draining_ = true;
      drain_started_ms_ = now;
      logf(LogLevel::kInfo,
           "serve: drain requested; finishing running jobs "
           "(%zu queued job(s) persist for the next start)",
           queue_.size());
    }

    reap_runners(now);
    maybe_shed(now);
    supervise(now);
    police_clients(now);
    if (!draining_) {
      schedule(now);
    } else {
      std::size_t running = 0;
      for (const auto& [key, job] : jobs_)
        if (job.pid > 0) ++running;
      if (running == 0) break;
      if (opt_.drain_timeout_ms > 0.0 &&
          now - drain_started_ms_ > opt_.drain_timeout_ms) {
        logf(LogLevel::kWarn,
             "serve: drain timeout; killing %zu runner group(s) "
             "(their journals keep the progress)",
             running);
        for (auto& [key, job] : jobs_) {
          if (job.pid <= 0) continue;
          job.kill_reason = "killed by drain timeout";
          kill_runner(job);
        }
      }
    }

    // Poll set: listeners, wake pipe, clients, runner pipes.
    enum { kListen, kListenTcp, kWake, kClient, kRunner };
    struct Tag {
      int kind;
      std::size_t index;
      std::uint64_t key;
    };
    std::vector<pollfd> fds;
    std::vector<Tag> tags;
    fds.push_back({listen_fd_, POLLIN, 0});
    tags.push_back({kListen, 0, 0});
    if (tcp_listen_fd_ >= 0) {
      fds.push_back({tcp_listen_fd_, POLLIN, 0});
      tags.push_back({kListenTcp, 0, 0});
    }
    fds.push_back({wake_read_fd_, POLLIN, 0});
    tags.push_back({kWake, 0, 0});
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i].fd < 0) continue;
      short events = POLLIN;
      if (!clients_[i].outbuf.empty()) events |= POLLOUT;
      fds.push_back({clients_[i].fd, events, 0});
      tags.push_back({kClient, i, 0});
    }
    for (auto& [key, job] : jobs_) {
      if (job.pid <= 0 || job.pipe_fd < 0) continue;
      fds.push_back({job.pipe_fd, POLLIN, 0});
      tags.push_back({kRunner, 0, key});
    }

    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc < 0 && errno != EINTR) {
      logf(LogLevel::kError, "serve: poll(): %s", std::strerror(errno));
      return 1;
    }
    if (rc <= 0) continue;

    // Client and runner events first, accepts last: a disconnect in this
    // same poll batch frees its slot before the connection-cap check
    // counts live clients, so a just-closed peer (the startup ready
    // probe, a one-shot status poll) can never bounce a new connection.
    const double after = now_ms();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      switch (tags[i].kind) {
        case kListen:
        case kListenTcp:
          break;  // second pass
        case kWake: {
          char buf[64];
          while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
          }
          break;
        }
        case kClient: {
          Client& c = clients_[tags[i].index];
          if (c.fd < 0) break;
          if (fds[i].revents & POLLOUT) flush_client(c);
          if (c.fd >= 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
            handle_client_frames(c, after);
          break;
        }
        case kRunner: {
          auto it = jobs_.find(tags[i].key);
          if (it != jobs_.end() && it->second.pipe_fd >= 0)
            handle_runner_frames(it->second, after);
          break;
        }
      }
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (tags[i].kind == kListen)
        handle_listen(listen_fd_, /*tcp=*/false);
      else if (tags[i].kind == kListenTcp)
        handle_listen(tcp_listen_fd_, /*tcp=*/true);
    }
    clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                  [](const Client& c) { return c.fd < 0; }),
                   clients_.end());
  }

  logf(LogLevel::kInfo, "serve: drained; exiting");
  return 0;
}

}  // namespace serve
}  // namespace xtv
