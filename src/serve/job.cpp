#include "serve/job.h"

#include <fcntl.h>
#include <unistd.h>

#include "util/atomic_file.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace xtv {
namespace serve {

namespace {

constexpr const char* kSpecMagic = "xtvss";
constexpr const char* kDoneMagic = "xtvsd";

/// Hexfloat round-trip keeps a re-parsed spec's options bit-identical to
/// the submitted ones — the property the job key (an options hash over
/// double bit patterns) depends on.
std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_double_text(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_size_text(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_long_text(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_bool_text(const std::string& s, bool* out) {
  if (s == "0") { *out = false; return true; }
  if (s == "1") { *out = true; return true; }
  return false;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kBackoff: return "backoff";
    case JobState::kDone: return "done";
    case JobState::kConceded: return "conceded";
  }
  return "unknown";
}

bool parse_job_state(const std::string& name, JobState* out) {
  for (JobState s : {JobState::kQueued, JobState::kRunning, JobState::kBackoff,
                     JobState::kDone, JobState::kConceded}) {
    if (name == job_state_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

JobSpec::JobSpec() {
  // chip_audit parity (see examples/chip_audit.cpp): an empty spec and a
  // bare chip_audit invocation share one options hash, so their journals
  // are interchangeable and bit-identical.
  options.glitch_threshold = 0.10;
  options.glitch.align_aggressors = true;
  options.glitch.tstop = 4e-9;
  options.model_cache_mb = 64.0;
}

bool JobSpec::parse(const std::string& text, JobSpec* spec,
                    std::string* error) {
  JobSpec out;
  bool saw_inline_design = false;  // nets=/rows=/chip_seed=
  bool saw_design_file = false;    // design=PATH
  std::istringstream in(text);
  for (std::string tok; in >> tok;) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error) *error = "malformed token \"" + tok + "\" (want key=value)";
      return false;
    }
    const std::string k = tok.substr(0, eq);
    const std::string v = tok.substr(eq + 1);
    auto bad = [&](const char* want) {
      if (error) *error = k + " expects " + want + ", got \"" + v + "\"";
      return false;
    };
    double d = 0.0;
    std::size_t z = 0;
    long l = 0;
    bool b = false;
    if (k == "threshold") {
      if (!parse_double_text(v, &d) || d <= 0.0 || d > 1.0)
        return bad("a fraction in (0,1]");
      out.options.glitch_threshold = d;
    } else if (k == "latch_only") {
      if (!parse_bool_text(v, &b)) return bad("0 or 1");
      out.options.latch_inputs_only = b;
    } else if (k == "delay") {
      if (!parse_bool_text(v, &b)) return bad("0 or 1");
      out.options.analyze_delay_change = b;
    } else if (k == "screen") {
      if (!parse_bool_text(v, &b)) return bad("0 or 1");
      out.options.use_noise_screen = b;
    } else if (k == "em_limit") {
      if (!parse_double_text(v, &d) || d < 0.0) return bad("a value >= 0");
      out.options.em_rms_limit = d;
    } else if (k == "align") {
      if (!parse_bool_text(v, &b)) return bad("0 or 1");
      out.options.glitch.align_aggressors = b;
    } else if (k == "tstop") {
      if (!parse_double_text(v, &d) || d <= 0.0) return bad("a time > 0");
      out.options.glitch.tstop = d;
    } else if (k == "mor_order") {
      if (!parse_size_text(v, &z)) return bad("an integer (0 = automatic)");
      out.options.glitch.mor.max_order = z;
    } else if (k == "certify") {
      if (!parse_bool_text(v, &b)) return bad("0 or 1");
      out.options.certify = b;
    } else if (k == "cert_tol") {
      if (!parse_double_text(v, &d) || d <= 0.0) return bad("a value > 0");
      out.options.cert_rel_tol = d;
    } else if (k == "cert_freqs") {
      if (!parse_size_text(v, &z) || z < 1) return bad("an integer >= 1");
      out.options.cert_freqs = z;
    } else if (k == "max_mor_order") {
      if (!parse_size_text(v, &z) || z < 1) return bad("an integer >= 1");
      out.options.max_mor_order = z;
    } else if (k == "mor_step") {
      if (!parse_size_text(v, &z) || z < 1) return bad("an integer >= 1");
      out.options.mor_order_step = z;
    } else if (k == "audit_fraction") {
      if (!parse_double_text(v, &d) || d < 0.0 || d > 1.0)
        return bad("a fraction in [0,1]");
      out.options.audit_fraction = d;
    } else if (k == "audit_seed") {
      if (!parse_size_text(v, &z)) return bad("an unsigned integer");
      out.options.audit_seed = z;
    } else if (k == "cache_mb") {
      if (!parse_double_text(v, &d) || d < 0.0) return bad("a size >= 0");
      out.options.model_cache_mb = d;
    } else if (k == "canonical_cache") {
      if (!parse_bool_text(v, &b)) return bad("0 or 1");
      out.options.canonical_cache = b;
    } else if (k == "canonical_tol") {
      if (!parse_double_text(v, &d) || d <= 0.0 || d > 1.0)
        return bad("a relative tolerance in (0,1]");
      out.options.canonical_cache_tol = d;
    } else if (k == "cluster_deadline_ms") {
      if (!parse_double_text(v, &d) || d < 0.0) return bad("a value >= 0");
      out.options.cluster_deadline_ms = d;
    } else if (k == "cluster_mem_mb") {
      if (!parse_double_text(v, &d) || d < 0.0) return bad("a size >= 0");
      out.options.cluster_mem_mb = d;
    } else if (k == "processes") {
      if (!parse_size_text(v, &z)) return bad("an integer >= 0");
      out.processes = z;
    } else if (k == "heartbeat_ms") {
      if (!parse_double_text(v, &d) || d <= 0.0) return bad("a period > 0");
      out.heartbeat_ms = d;
    } else if (k == "restarts") {
      if (!parse_size_text(v, &z)) return bad("an integer >= 0");
      out.restarts = z;
    } else if (k == "batch_width") {
      if (!parse_size_text(v, &z)) return bad("an integer >= 0");
      out.batch_width = z;
    } else if (k == "deadline_ms") {
      if (!parse_double_text(v, &d)) return bad("a value in ms");
      out.deadline_ms = d;
    } else if (k == "retries") {
      if (!parse_long_text(v, &l)) return bad("an integer");
      out.retries = l;
    } else if (k == "nets") {
      if (!parse_size_text(v, &z)) return bad("an integer (0 = resident design)");
      out.design_nets = z;
      saw_inline_design = saw_inline_design || z != 0;
    } else if (k == "rows") {
      if (!parse_size_text(v, &z)) return bad("an integer (0 = generator default)");
      out.design_rows = z;
      saw_inline_design = saw_inline_design || z != 0;
    } else if (k == "chip_seed") {
      if (!parse_size_text(v, &z)) return bad("an unsigned integer");
      out.design_seed = z;
      saw_inline_design = saw_inline_design || z != 0;
    } else if (k == "design") {
      if (saw_design_file) return bad("at most one design= per spec");
      std::string derr;
      if (!load_design_ref_file(v, &out.design_nets, &out.design_rows,
                                &out.design_seed, &derr)) {
        if (error) *error = derr;
        return false;
      }
      saw_design_file = true;
    } else if (k == "mem_mb") {
      if (!parse_double_text(v, &d) || d < 0.0) return bad("a size >= 0");
      out.mem_mb = d;
    } else {
      if (error) *error = "unknown spec key \"" + k + "\"";
      return false;
    }
  }
  if (saw_design_file && saw_inline_design) {
    if (error) *error = "design= conflicts with nets=/rows=/chip_seed=";
    return false;
  }
  if (out.design_nets == 0 && (out.design_rows != 0 || out.design_seed != 0)) {
    if (error) *error = "rows=/chip_seed= require nets= (a per-job design)";
    return false;
  }
  *spec = std::move(out);
  return true;
}

bool load_design_ref_file(const std::string& path, std::size_t* nets,
                          std::size_t* rows, std::uint64_t* seed,
                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot read design file " + path;
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    if (error) *error = "empty design file " + path;
    return false;
  }
  std::istringstream lin(line);
  std::string magic;
  if (!(lin >> magic) || magic != "xtvds") {
    if (error) *error = "design file " + path + " is not an xtvds file";
    return false;
  }
  std::size_t n = 0, r = 0, s = 0;
  for (std::string tok; lin >> tok;) {
    const std::size_t eq = tok.find('=');
    const std::string k = eq == std::string::npos ? tok : tok.substr(0, eq);
    const std::string v = eq == std::string::npos ? "" : tok.substr(eq + 1);
    std::size_t z = 0;
    if (!parse_size_text(v, &z) ||
        (k != "nets" && k != "rows" && k != "seed")) {
      if (error) *error = "design file " + path + ": bad token \"" + tok + "\"";
      return false;
    }
    if (k == "nets") n = z;
    else if (k == "rows") r = z;
    else s = z;
  }
  if (n == 0) {
    if (error) *error = "design file " + path + " must set nets=N (N >= 1)";
    return false;
  }
  *nets = n;
  *rows = r;
  *seed = s;
  return true;
}

std::string JobSpec::to_text() const {
  std::ostringstream out;
  out << "threshold=" << fmt_double(options.glitch_threshold)
      << " latch_only=" << (options.latch_inputs_only ? 1 : 0)
      << " delay=" << (options.analyze_delay_change ? 1 : 0)
      << " screen=" << (options.use_noise_screen ? 1 : 0)
      << " em_limit=" << fmt_double(options.em_rms_limit)
      << " align=" << (options.glitch.align_aggressors ? 1 : 0)
      << " tstop=" << fmt_double(options.glitch.tstop)
      << " mor_order=" << options.glitch.mor.max_order
      << " certify=" << (options.certify ? 1 : 0)
      << " cert_tol=" << fmt_double(options.cert_rel_tol)
      << " cert_freqs=" << options.cert_freqs
      << " max_mor_order=" << options.max_mor_order
      << " mor_step=" << options.mor_order_step
      << " audit_fraction=" << fmt_double(options.audit_fraction)
      << " audit_seed=" << options.audit_seed
      << " cache_mb=" << fmt_double(options.model_cache_mb)
      << " canonical_cache=" << (options.canonical_cache ? 1 : 0)
      << " canonical_tol=" << fmt_double(options.canonical_cache_tol)
      << " cluster_deadline_ms=" << fmt_double(options.cluster_deadline_ms)
      << " cluster_mem_mb=" << fmt_double(options.cluster_mem_mb)
      << " nets=" << design_nets
      << " rows=" << design_rows
      << " chip_seed=" << design_seed
      << " mem_mb=" << fmt_double(mem_mb)
      << " processes=" << processes
      << " heartbeat_ms=" << fmt_double(heartbeat_ms)
      << " restarts=" << restarts
      << " batch_width=" << batch_width
      << " deadline_ms=" << fmt_double(deadline_ms)
      << " retries=" << retries;
  return out.str();
}

VerifierOptions JobSpec::to_options() const {
  VerifierOptions vo = options;
  vo.processes = processes;
  vo.shard_heartbeat_ms = heartbeat_ms;
  vo.max_shard_restarts = restarts;
  vo.batch_width = batch_width;  // 0 folds to the daemon default at launch
  return vo;
}

std::uint64_t JobSpec::options_hash() const {
  return options_result_hash(to_options());
}

namespace {

/// FNV-1a step over the 8 little-endian bytes of `v`.
std::uint64_t fnv_mix64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t JobSpec::key() const {
  std::uint64_t h = options_hash();
  if (!has_design_ref()) return h;  // resident design: key == journal hash
  h = fnv_mix64(h, 0x7874766473ull);  // "xtvds" tag: separates the domains
  h = fnv_mix64(h, design_nets);
  h = fnv_mix64(h, design_rows);
  h = fnv_mix64(h, design_seed);
  return h;
}

std::string job_key_hex(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, key);
  return buf;
}

bool parse_job_key(const std::string& hex, std::uint64_t* key) {
  if (hex.size() != 16) return false;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + hex.size()) return false;
  *key = v;
  return true;
}

JobPaths job_paths(const std::string& jobs_dir, std::uint64_t key) {
  const std::string base = jobs_dir + "/job_" + job_key_hex(key);
  JobPaths p;
  p.spec = base + ".spec";
  p.journal = base + ".xtvj";
  p.done = base + ".done";
  p.pid = base + ".pid";
  return p;
}

std::string serve_escape(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(s.size());
  char buf[4];
  for (std::size_t i = 0; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c <= 0x20 || c > 0x7e || c == '%' || (i == 0 && c == '-')) {
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

bool serve_unescape(const std::string& s, std::string* out) {
  out->clear();
  if (s == "-") return true;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) return false;
      char* end = nullptr;
      const char hex[3] = {s[i + 1], s[i + 2], '\0'};
      const long v = std::strtol(hex, &end, 16);
      if (end != hex + 2) return false;
      *out += static_cast<char>(v);
      i += 2;
    } else {
      *out += s[i];
    }
  }
  return true;
}

bool write_spec_file(const std::string& path, const JobSpec& spec,
                     std::size_t attempts, std::string* error) {
  std::ostringstream out;
  out << kSpecMagic << ' ' << job_key_hex(spec.key()) << ' ' << attempts
      << '\n'
      << spec.to_text() << '\n';
  return write_file_atomic(path, out.str(), error);
}

bool load_spec_file(const std::string& path, JobSpec* spec,
                    std::size_t* attempts, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string header, spec_text;
  if (!std::getline(in, header) || !std::getline(in, spec_text)) {
    if (error) *error = "truncated spec file " + path;
    return false;
  }
  std::istringstream hin(header);
  std::string magic, key_hex;
  std::size_t att = 0;
  if (!(hin >> magic >> key_hex >> att) || magic != kSpecMagic) {
    if (error) *error = "bad spec header in " + path;
    return false;
  }
  std::uint64_t key = 0;
  if (!parse_job_key(key_hex, &key)) {
    if (error) *error = "bad job key in " + path;
    return false;
  }
  JobSpec parsed;
  if (!JobSpec::parse(spec_text, &parsed, error)) return false;
  if (parsed.key() != key) {
    // The spec no longer hashes to the key it was filed under — the file
    // was tampered with or corrupted; refusing beats running the wrong
    // options against the keyed journal.
    if (error)
      *error = "spec in " + path + " hashes to " + job_key_hex(parsed.key()) +
               ", expected " + key_hex;
    return false;
  }
  *spec = std::move(parsed);
  if (attempts) *attempts = att;
  return true;
}

bool write_done_file(const std::string& path, std::uint64_t key,
                     JobState terminal, const std::string& summary,
                     std::string* error) {
  std::ostringstream out;
  out << kDoneMagic << ' ' << job_key_hex(key) << ' '
      << job_state_name(terminal) << ' ' << serve_escape(summary) << '\n';
  return write_file_atomic(path, out.str(), error);
}

bool load_done_file(const std::string& path, std::uint64_t* key,
                    JobState* terminal, std::string* summary) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  std::istringstream lin(line);
  std::string magic, key_hex, state_name, escaped;
  if (!(lin >> magic >> key_hex >> state_name >> escaped) ||
      magic != kDoneMagic)
    return false;
  std::uint64_t k = 0;
  JobState s;
  std::string text;
  if (!parse_job_key(key_hex, &k) || !parse_job_state(state_name, &s) ||
      !serve_unescape(escaped, &text))
    return false;
  if (s != JobState::kDone && s != JobState::kConceded) return false;
  if (key) *key = k;
  if (terminal) *terminal = s;
  if (summary) *summary = text;
  return true;
}

}  // namespace serve
}  // namespace xtv
