// Admission control for the verification service (DESIGN.md §13).
//
// The daemon's robustness envelope starts here: a bounded FIFO of
// admitted-but-not-running jobs, and the exponential-backoff schedule a
// failed attempt waits out before its next launch. Both are plain
// single-threaded data structures — the daemon is a single poll() loop
// (forking job runners requires an effectively single-threaded parent),
// so no locking, and all time flows in from the caller as a monotonic
// milliseconds reading instead of being sampled internally (which keeps
// the schedule unit-testable without sleeping).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace xtv {
namespace serve {

/// Exponential backoff with a hard ceiling: attempt k (0-based count of
/// prior failures) waits base_ms * factor^k, capped at max_ms.
struct BackoffPolicy {
  double base_ms = 500.0;
  double factor = 2.0;
  double max_ms = 8000.0;

  double delay_ms(std::size_t failures) const;
};

/// A bounded FIFO of job keys waiting for a scheduler slot, plus the
/// backoff bench of jobs waiting out a failed attempt.
///
/// Admission (`push`) is bounded: when `capacity` jobs are already
/// queued the push is refused and the caller answers the client with
/// kJobRejected/kQueueFull — explicit pushback instead of unbounded
/// growth. Requeueing after a failed attempt (`push_backoff`) is NOT
/// bounded: the job was already admitted, and dropping it now would
/// violate the no-silence contract.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is at capacity (the job is NOT admitted).
  bool push(std::uint64_t key);

  /// Benches an admitted job until `now_ms + policy.delay_ms(failures)`.
  void push_backoff(std::uint64_t key, std::size_t failures, double now_ms,
                    const BackoffPolicy& policy);

  /// Pops the next runnable job: ripe backoff jobs first (they are older
  /// by construction), then the FIFO head. False when nothing is ready.
  bool pop_ready(double now_ms, std::uint64_t* key);

  /// Requeues an admitted job at the FIFO head, ahead of everything else
  /// (NOT bounded). Used when a running job is shed back to queued under
  /// memory pressure: it must not lose its place to later arrivals.
  void push_front(std::uint64_t key);

  /// Fills `out` with every currently runnable key (ripe backoff first,
  /// then the FIFO in order) without removing anything — the scheduler
  /// picks one via the admission policy and `take`s it.
  void ready_keys(double now_ms, std::vector<std::uint64_t>* out) const;

  /// Removes one queued/benched entry for `key` (the scheduler claimed
  /// it). False if the key was not queued.
  bool take(std::uint64_t key);

  /// Removes every queued/benched entry for `key` (client cancelled or
  /// the job reached a terminal state through another path). Returns how
  /// many entries were dropped.
  std::size_t erase(std::uint64_t key);

  bool contains(std::uint64_t key) const;

  /// Jobs counted against the admission bound (FIFO + backoff bench:
  /// a benched job still owns its admission slot).
  std::size_t size() const { return fifo_.size() + backoff_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return size() >= capacity_; }

  /// Earliest instant a benched job becomes ripe (for the poll timeout);
  /// negative when the bench is empty.
  double next_ripe_ms() const;

 private:
  struct Benched {
    std::uint64_t key;
    double ripe_ms;
  };

  std::size_t capacity_;
  std::deque<std::uint64_t> fifo_;
  std::deque<Benched> backoff_;
};

}  // namespace serve
}  // namespace xtv
