// The verification service daemon (DESIGN.md §13).
//
// A long-lived process that owns one resident chip design and accepts
// verification jobs over a Unix-domain socket — and optionally a TCP
// listener (--listen host:port) — speaking the same xwf1 framing the
// shard workers use (core/wire.h). Each job is one ChipVerifier run,
// against the resident design or a per-job design reference carried in
// its spec; the daemon forks a single-purpose *job runner* per attempt,
// which executes verify() in process-shard mode (so a clean run
// finalizes a stable-order, bit-identical journal atomically) and streams
// per-victim findings back over a pipe as they certify. Up to
// --max-running runners execute concurrently under the cross-job
// ResourceGovernor (serve/governor.h).
//
// The robustness envelope:
//
//   admission   bounded queue; a full queue answers kJobRejected
//               ("queue-full") instead of growing without bound; specs
//               naming an unreadable design file or one larger than
//               --max-job-nets are rejected at admission
//   identity    job key = options hash of the spec'd options (mixed with
//               the design reference when one is set); the journal header
//               carries the bare options hash verify() stamps; resubmits
//               dedup onto the live (or finished) job and replay its
//               findings exactly once
//   retry       a dead/wedged/deadline-blown runner consumes one attempt;
//               the job waits out an exponential backoff, then relaunches
//               with resume=true so completed victims are never redone
//   concession  an exhausted retry budget never goes silent: the daemon
//               synthesizes pessimistic kShardCrashed records for every
//               unaccounted victim, finalizes the journal atomically, and
//               reports the job "conceded"
//   liveness    runners heartbeat through the shard supervisor's poll
//               loop; silence past 10x the heartbeat period (after a
//               startup grace covering the silent pruning phase) reaps
//               the runner's process group
//   memory      every launch debits a per-job reservation against the
//               --global-mem-soft-mb budget (largest-fitting job wins,
//               aging promotes skipped jobs — serve/governor.h); under
//               live RSS pressure the daemon *sheds* the youngest runner:
//               SIGTERM, attempt refunded, job back to queued at the
//               FIFO head — shrink the blast radius instead of OOMing
//   transport   TCP connections get per-connection read/write deadlines
//               (slow-loris eviction), an inbound buffer cap, a
//               connection cap answered with kJobRejected, idle
//               keepalive heartbeats, and latch-and-close on any corrupt
//               frame; framing and checksums are unchanged from the pipe
//   drain       SIGTERM/SIGINT stops admission, lets running jobs finish
//               (or kills them at the drain timeout — their journals keep
//               the progress), leaves queued jobs' spec files on disk for
//               the next start, and exits 0
//   recovery    startup sweeps a stale socket file (guarded by a
//               daemon.pid liveness check so two daemons never share a
//               jobs dir), then scans the jobs directory: finished jobs
//               are replayable, orphaned runners (from a SIGKILLed
//               daemon) are reaped, and interrupted jobs re-enter the
//               queue with their persisted attempt count — or are
//               conceded when the budget was already spent
//
// The daemon is deliberately single-threaded (one poll() loop): verify()
// in process mode forks, and fork duplicates only the calling thread, so
// a multi-threaded daemon could never safely launch in-process runners.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/wire.h"
#include "serve/governor.h"
#include "serve/job.h"
#include "serve/queue.h"

namespace xtv {
namespace serve {

struct DaemonOptions {
  std::string socket_path;  ///< Unix-domain listening socket
  std::string jobs_dir;     ///< spec/journal/done/pid files live here

  /// Optional TCP listener ("host:port"; port 0 = ephemeral — the bound
  /// endpoint is published to <jobs_dir>/daemon.tcp). Empty = Unix only.
  std::string listen_address;

  // --- Resident design (generated once at startup) ---
  std::size_t net_count = 800;
  std::size_t replicate_rows = 1;
  std::string cell_cache;  ///< characterization cache (empty = none)

  // --- Admission & scheduling ---
  std::size_t queue_capacity = 8;   ///< bounded admission queue
  std::size_t max_running = 1;      ///< concurrent job runners
  std::size_t default_processes = 2;  ///< shard workers when spec says 0
  std::size_t default_batch_width = 1;  ///< lockstep lanes when spec says 0
  double default_deadline_ms = 0.0;   ///< per-attempt wall clock (0 = off)
  long default_retries = 2;           ///< attempts after the first
  BackoffPolicy backoff;
  /// Largest per-job design accepted at admission (nets; 0 = unlimited).
  std::size_t max_job_nets = 50000;
  /// A queued job older than this is promoted ahead of better-packing
  /// candidates (anti-starvation; see serve/governor.h).
  double age_promote_ms = 5000.0;

  // --- Remote fan-out (DESIGN.md §14) ---
  /// xtv_worker endpoints ("host:port"). Non-empty routes every job's
  /// victims through the leased remote backend (serve/remote.h); the
  /// job runner degrades to local execution if every worker is lost.
  std::vector<std::string> workers;
  double worker_heartbeat_ms = 250.0;  ///< expected worker heartbeat period
  std::size_t unit_victims = 16;       ///< victims per leased work unit
  std::size_t max_unit_attempts = 4;   ///< lease attempts before quarantine

  // --- Supervision ---
  /// Startup grace before the stall check arms: a fresh runner is
  /// legitimately silent while pruning the coupling database.
  double runner_grace_ms = 30000.0;
  /// Cross-job memory budget (MiB; 0 = off): reservations gate launches,
  /// and live RSS above it sheds the youngest runner back to queued.
  double global_mem_soft_mb = 0.0;
  /// How long a drain waits for running jobs before SIGKILLing their
  /// process groups (0 = wait indefinitely).
  double drain_timeout_ms = 0.0;

  // --- TCP connection envelope ---
  std::size_t max_connections = 64;  ///< live client cap (Unix + TCP)
  /// A connection that stalls mid-frame (read side) or makes no write
  /// progress against a non-empty outbuf for this long is evicted (0 =
  /// never).
  double io_timeout_ms = 10000.0;
  /// Idle TCP connections get a kHeartbeat frame at this period so dead
  /// peers surface as write errors (0 = off; Unix sockets never need it).
  double keepalive_ms = 3000.0;
};

class ServeDaemon {
 public:
  explicit ServeDaemon(const DaemonOptions& options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Builds the resident design, binds the socket, recovers the jobs
  /// directory, and serves until a drain completes. Returns the process
  /// exit code (0 on a clean drain).
  int run();

 private:
  struct Job {
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::size_t attempts = 0;  ///< launches so far (persisted in the spec file)
    pid_t pid = -1;            ///< live runner (its own process group)
    int pipe_fd = -1;          ///< read end of the runner's frame pipe
    WireDecoder decoder;
    bool heard_any = false;    ///< a heartbeat/finding arrived this attempt
    double launched_ms = 0.0;
    double last_heard_ms = 0.0;
    double enqueued_ms = 0.0;  ///< when the job (re-)entered the queue (aging)
    double reserve_mb = 0.0;   ///< governor reservation while running
    bool kill_sent = false;    ///< SIGKILL issued; waiting for the reap
    bool shed_pending = false; ///< SIGTERMed under memory pressure; reap requeues
    double shed_sent_ms = 0.0; ///< when the shed SIGTERM went out (escalation)
    std::string kill_reason;   ///< why the supervisor killed it (for the retry log)
    std::string terminal_summary;
    /// Victim net -> journal payload, accumulated from live finding
    /// frames (and the final journal at terminal time). Feeds client
    /// replay so late subscribers miss nothing.
    std::map<std::size_t, std::string> findings;
  };

  struct Client {
    int fd = -1;
    bool tcp = false;          ///< TCP accept (gets keepalive + NODELAY)
    WireDecoder decoder;
    std::string outbuf;
    double last_rx_ms = 0.0;       ///< last byte read off the connection
    double last_tx_ms = 0.0;       ///< last frame queued for this client
    double last_progress_ms = 0.0; ///< last successful write() progress
    std::set<std::uint64_t> watching;  ///< job keys streamed to this client
    /// job key -> victims already sent: the exactly-once guard across
    /// replay and live streaming.
    std::map<std::uint64_t, std::set<std::size_t>> sent;
  };

  // Startup.
  void build_design();
  bool bind_socket(std::string* error);
  bool bind_tcp(std::string* error);
  void recover_jobs_dir();

  // Event handling.
  void handle_listen(int listen_fd, bool tcp);
  void handle_client_frames(Client& c, double now);
  void on_submit(Client& c, const std::string& payload);
  void on_query(Client& c, const std::string& payload);
  void handle_runner_frames(Job& job, double now);
  void reap_runners(double now);
  void supervise(double now);
  void maybe_shed(double now);
  void police_clients(double now);
  void schedule(double now);

  // Job lifecycle.
  bool launch(std::uint64_t key, Job& job, double now);
  int runner_main(const Job& job, int write_fd);  // child side; never returns
  void attempt_failed(std::uint64_t key, Job& job, double now,
                      const std::string& why);
  void concede_job(std::uint64_t key, Job& job, const std::string& why);
  void finalize_terminal(std::uint64_t key, Job& job);
  std::map<std::size_t, JournalRecord> collect_results(const Job& job) const;
  std::vector<std::size_t> candidates_for(const JobSpec& spec);
  void kill_runner(Job& job);
  bool memory_gate_open() const;
  double job_reserve_mb(const JobSpec& spec) const;

  // Client plumbing.
  void send_frame(Client& c, WireType type, const std::string& payload);
  void flush_client(Client& c);
  void stream_finding(std::uint64_t key, Job& job, std::size_t net,
                      const std::string& payload);

  DaemonOptions opt_;

  // Resident design, shared by every forked runner via fork inheritance.
  Technology tech_;
  CellLibrary library_;
  CharacterizedLibrary chars_;
  Extractor extractor_;
  ChipDesign design_;
  std::vector<NetSummary> summaries_;
  PruneResult pruned_;

  int listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int wake_read_fd_ = -1;   ///< self-pipe: signal handlers wake poll()
  int wake_write_fd_ = -1;
  bool draining_ = false;
  double drain_started_ms_ = -1.0;
  bool wrote_pid_file_ = false;  ///< we own <jobs_dir>/daemon.pid
  double last_shed_ms_ = -1e18;  ///< shed hysteresis clock

  AdmissionQueue queue_;
  ResourceGovernor governor_;
  std::map<std::uint64_t, Job> jobs_;
  std::vector<Client> clients_;
};

}  // namespace serve
}  // namespace xtv
