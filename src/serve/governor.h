// Cross-job memory governance for the serve daemon.
//
// The daemon runs up to --max-running concurrent job runners, each a forked
// process tree whose resident footprint the parent cannot cap directly.  The
// governor keeps an honest *reservation* ledger instead: every launched job
// debits an estimated footprint against the --global-mem-soft-mb budget, and
// the scheduler only admits jobs whose reservation still fits.  Reservations
// are estimates, so the daemon pairs the ledger with RSS-based pressure
// shedding (see ServeDaemon::maybe_shed) — the ledger prevents predictable
// overcommit, the shed path handles the surprises.
//
// Admission policy (pick_admission):
//   - budget disabled (soft_mb == 0): strict FIFO — oldest ready job wins.
//   - aging: any job that has waited past age_promote_ms is promoted; among
//     aged jobs the oldest wins, and if it does not fit the whole queue
//     stalls behind it (head-of-line blocking is the anti-starvation
//     guarantee: smaller late arrivals cannot overtake it forever).
//   - otherwise: the largest reservation that fits wins (best packing of the
//     budget), ties broken by age.
//   - a job whose reservation alone exceeds the entire budget is admitted
//     only when nothing else is running ("lone" admission): it gets the
//     machine to itself rather than never running, and the shed path
//     protects the host if the estimate was right.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace xtv {
namespace serve {

/// Reservation ledger: per-job estimated footprints debited against a soft
/// global budget.  soft_mb == 0 disables the budget (everything fits).
class ResourceGovernor {
 public:
  explicit ResourceGovernor(double soft_mb = 0.0) : soft_mb_(soft_mb) {}

  bool enabled() const { return soft_mb_ > 0.0; }
  double soft_mb() const { return soft_mb_; }
  double reserved_mb() const { return reserved_; }
  std::size_t held() const { return held_.size(); }

  /// Would a job with this reservation fit right now?  Oversized jobs
  /// (reservation > whole budget) fit only when the ledger is empty.
  bool fits(double mem_mb) const {
    if (!enabled()) return true;
    if (reserved_ + mem_mb <= soft_mb_) return true;
    return held_.empty() && mem_mb > soft_mb_;
  }

  /// Debit a reservation for `key`.  Re-reserving an already-held key
  /// replaces the old charge (relaunch after retry re-estimates).
  void reserve(std::uint64_t key, double mem_mb) {
    release(key);
    held_[key] = mem_mb;
    reserved_ += mem_mb;
  }

  /// Credit back `key`'s reservation; no-op when not held.
  void release(std::uint64_t key) {
    auto it = held_.find(key);
    if (it == held_.end()) return;
    reserved_ -= it->second;
    if (reserved_ < 0.0) reserved_ = 0.0;  // float drift guard
    held_.erase(it);
  }

 private:
  double soft_mb_ = 0.0;
  double reserved_ = 0.0;
  std::map<std::uint64_t, double> held_;
};

/// One ready-to-launch job as the admission policy sees it.
struct LaunchCandidate {
  std::uint64_t key = 0;
  double mem_mb = 0.0;       ///< reservation estimate
  double enqueued_ms = 0.0;  ///< when the job (re-)entered the queue
};

/// Index into `ready` of the job to launch now, or `kNoAdmission` if nothing
/// should launch (empty set, or an aged head-of-line job does not fit yet).
/// Pure function of its arguments — see the policy comment at the top.
inline constexpr std::size_t kNoAdmission = static_cast<std::size_t>(-1);
std::size_t pick_admission(const std::vector<LaunchCandidate>& ready,
                           double now_ms, double age_promote_ms,
                           const ResourceGovernor& governor);

}  // namespace serve
}  // namespace xtv
