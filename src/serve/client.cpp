#include "serve/client.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace xtv {
namespace serve {

namespace {

double now_ms() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

}  // namespace

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool parse_tcp_endpoint(const std::string& endpoint, std::string* host,
                        std::string* port) {
  std::string t = endpoint;
  bool forced = false;
  if (t.rfind("tcp:", 0) == 0) {
    t = t.substr(4);
    forced = true;
  } else if (t.find('/') != std::string::npos) {
    return false;  // a path is always a Unix socket
  }
  const std::size_t colon = t.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= t.size())
    return false;
  const std::string p = t.substr(colon + 1);
  if (!forced)
    for (char c : p)
      if (c < '0' || c > '9') return false;  // "a:b" without tcp: = a path
  if (host) *host = t.substr(0, colon);
  if (port) *port = p;
  return true;
}

bool ServeClient::connect(const std::string& endpoint, std::string* error) {
  close();

  std::string host, port;
  if (parse_tcp_endpoint(endpoint, &host, &port)) {
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (gai != 0) {
      if (error)
        *error = "cannot resolve " + endpoint + ": " + ::gai_strerror(gai);
      return false;
    }
    for (addrinfo* ai = res; ai; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                              ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        fd_ = fd;
        break;
      }
      ::close(fd);
    }
    ::freeaddrinfo(res);
    if (fd_ < 0) {
      if (error)
        *error = "connect " + endpoint + ": " + std::strerror(errno);
      return false;
    }
    decoder_ = WireDecoder();
    return true;
  }

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (endpoint.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + endpoint;
    return false;
  }
  std::strncpy(addr.sun_path, endpoint.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = "connect " + endpoint + ": " + std::strerror(errno);
    close();
    return false;
  }
  decoder_ = WireDecoder();
  return true;
}

bool ServeClient::send(WireType type, const std::string& payload,
                       std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  const std::string frame = wire_encode_frame(type, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      if (error) *error = std::string("write: ") + std::strerror(errno);
      return false;
    }
  }
  return true;
}

bool ServeClient::recv(WireFrame* frame, double timeout_ms,
                       std::string* error) {
  const double deadline = now_ms() + timeout_ms;
  for (;;) {
    if (decoder_.next(frame)) return true;
    if (decoder_.corrupt()) {
      if (error) *error = "corrupt frame stream from daemon";
      return false;
    }
    if (fd_ < 0) {
      if (error) *error = "not connected";
      return false;
    }
    const double remaining = deadline - now_ms();
    if (remaining <= 0.0) {
      if (error) *error = "timed out waiting for the daemon";
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining) + 1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      if (error) *error = "timed out waiting for the daemon";
      return false;
    }
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n == 0) {
      if (error) *error = "daemon closed the connection";
      return false;
    } else {
      if (error) *error = std::string("read: ") + std::strerror(errno);
      return false;
    }
  }
}

bool submit_and_wait(
    ServeClient& client, const JobSpec& spec, double timeout_ms,
    JobResult* result, std::string* error,
    const std::function<void(const JournalRecord&)>& on_finding) {
  std::string token = "c";  // two-step append: GCC 12 -Wrestrict false positive on operator+
  token += job_key_hex(spec.key());
  if (!client.send(WireType::kJobSubmit, token + " " + spec.to_text(),
                   error))
    return false;

  const double deadline = now_ms() + timeout_ms;
  JobResult out;

  // Phase 1: the accept/reject verdict for our token.
  for (;;) {
    WireFrame f;
    if (!client.recv(&f, deadline - now_ms(), error)) return false;
    std::istringstream in(f.payload);
    std::string got_token;
    in >> got_token;
    if (f.type == WireType::kJobRejected &&
        (got_token == token || got_token == "-")) {
      // "-" = connection-level rejection (e.g. conn-limit): not tied to
      // any token, but fatal for this submission all the same.
      std::string reason, detail_escaped, detail;
      in >> reason >> detail_escaped;
      serve_unescape(detail_escaped, &detail);
      if (error) *error = "rejected (" + reason + "): " + detail;
      return false;
    }
    if (f.type == WireType::kJobAccepted && got_token == token) {
      std::string hex;
      in >> hex;
      if (!parse_job_key(hex, &out.key)) {
        if (error) *error = "malformed accept frame: " + f.payload;
        return false;
      }
      break;
    }
    // Frames for other jobs this connection watches: ignore here.
  }

  // Phase 2: findings stream until the terminal verdict.
  const std::string hex = job_key_hex(out.key);
  for (;;) {
    WireFrame f;
    if (!client.recv(&f, deadline - now_ms(), error)) return false;
    std::istringstream in(f.payload);
    std::string got_hex;
    in >> got_hex;
    if (got_hex != hex) continue;
    if (f.type == WireType::kJobFinding) {
      const std::size_t sp = f.payload.find(' ');
      if (sp == std::string::npos) continue;
      JournalRecord rec;
      if (!journal_decode(f.payload.substr(sp + 1), rec)) continue;
      if (!out.findings.emplace(rec.finding.net, rec).second)
        ++out.duplicate_findings;
      else if (on_finding)
        on_finding(rec);
    } else if (f.type == WireType::kJobDone) {
      std::string verdict;
      in >> verdict;
      JobState s;
      if (!parse_job_state(verdict, &s)) {
        if (error) *error = "malformed done frame: " + f.payload;
        return false;
      }
      out.state = s;
      std::getline(in, out.summary);
      if (!out.summary.empty() && out.summary.front() == ' ')
        out.summary.erase(0, 1);
      break;
    }
  }
  if (result) *result = std::move(out);
  return true;
}

}  // namespace serve
}  // namespace xtv
