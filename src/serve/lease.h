// Leased work-unit distribution for the remote fan-out (DESIGN.md §14).
//
// The coordinator splits a job's un-journaled victims into contiguous
// stable-order *units* and leases each to exactly one connected worker at
// a time. This table is the pure bookkeeping core of that protocol — no
// sockets, no clocks of its own (callers pass `now_ms`), so every
// failure-policy decision is unit-testable deterministically:
//
//   ownership    a unit is kQueued, kLeased (by one holder, under one
//                attempt number), kQuarantined, or kDone; acquire() hands
//                out the lowest-id ready unit and bumps its attempt
//   idempotency  results and completions carry (unit, attempt); frames
//                from a lapsed lease — a partitioned-then-healed worker
//                flushing stale work — are classified kStale and dropped,
//                and a victim can settle at most once (kDuplicate)
//   finality     settled victims stay settled across reassignment: a
//                re-leased unit carries only its *remaining* victims, so
//                partial progress from a dead worker is never redone
//   backoff      a failed unit re-enters the queue after an exponential
//                per-unit backoff (base * 2^(failures-1), capped)
//   quarantine   a unit that died under two distinct holders — or burned
//                its attempt budget — is quarantined: the caller collects
//                its remaining victims via take_quarantined() and concedes
//                them locally (kShardCrashed + Devgan bound, PR 6
//                semantics) instead of feeding a poison unit to the fleet
//                forever
//   short completion
//                a kUnitDone whose lease still has unsettled victims
//                (result frames were dropped in transit) requeues the
//                remainder immediately WITHOUT charging the holder a
//                failure — lost frames are a transport fault, not
//                evidence the unit kills workers
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace xtv {
namespace serve {

struct LeaseOptions {
  /// Victims per work unit (the last unit takes the remainder).
  std::size_t unit_victims = 16;
  /// Total leases a unit may consume before it is quarantined.
  std::size_t max_unit_attempts = 4;
  /// Distinct holders a unit may die under before it is quarantined
  /// ("two distinct hosts" — holders are worker endpoints, so two workers
  /// on one machine still count separately).
  std::size_t quarantine_distinct_holders = 2;
  /// Exponential re-lease backoff after a failure: the n-th failure
  /// delays the unit backoff_base_ms * 2^(n-1), capped at backoff_max_ms.
  double backoff_base_ms = 200.0;
  double backoff_max_ms = 5000.0;
};

/// One lease handed to a worker: the unit, the attempt number that every
/// result/done frame must echo, and the victims still unsettled.
struct LeaseAssignment {
  std::size_t unit = 0;
  std::size_t attempt = 0;
  std::vector<std::size_t> victims;
};

enum class LeaseVerdict {
  kAccepted,     ///< live lease, fresh victim — count it
  kStale,        ///< unit/attempt does not match the live lease — drop
  kDuplicate,    ///< victim already settled — drop
  kUnknown,      ///< unit id out of range or victim not a member — drop
};

struct LeaseTableStats {
  std::size_t leases = 0;             ///< acquire() grants
  std::size_t reassignments = 0;      ///< grants beyond a unit's first
  std::size_t failures = 0;           ///< fail_unit/fail_holder events
  std::size_t stale_frames = 0;       ///< result/done frames from lapsed leases
  std::size_t duplicate_results = 0;  ///< settled-victim re-deliveries
  std::size_t short_completions = 0;  ///< kUnitDone with victims missing
  std::size_t units_quarantined = 0;
};

class LeaseTable {
 public:
  /// Slices `work` (victim nets, stable order) into ceil(n/unit_victims)
  /// contiguous units.
  LeaseTable(const std::vector<std::size_t>& work, const LeaseOptions& opt);

  std::size_t unit_count() const { return units_.size(); }
  std::size_t victims_total() const { return victims_total_; }
  std::size_t victims_settled() const { return victims_settled_; }

  /// Every victim settled (results accepted, quarantine taken, or
  /// drained) — the run's exit condition.
  bool all_settled() const { return victims_settled_ == victims_total_; }

  /// Units currently out on lease.
  std::size_t leased_count() const;

  /// Grants the lowest-id queued unit whose backoff has elapsed to
  /// `holder`, bumping its attempt. Returns false when nothing is ready
  /// (all leased, backing off, quarantined, or done).
  bool acquire(const std::string& holder, double now_ms,
               LeaseAssignment* out);

  /// Classifies one result frame; on kAccepted the victim is settled and
  /// stays settled forever.
  LeaseVerdict result(std::size_t unit, std::size_t attempt,
                      std::size_t victim);

  /// Classifies a unit-done frame. A matching lease with unsettled
  /// victims left is a short completion: the remainder requeues
  /// immediately and no failure is charged.
  LeaseVerdict complete(std::size_t unit, std::size_t attempt,
                        double now_ms);

  /// Fails the live lease on `unit` (lease expiry, read error, forced by
  /// the kLeaseExpiry fault site): charges the holder, requeues with
  /// backoff, or quarantines per the options. No-op unless leased.
  void fail_unit(std::size_t unit, double now_ms);

  /// Fails every unit leased to `holder` (connection loss, heartbeat
  /// silence, SIGKILLed worker).
  void fail_holder(const std::string& holder, double now_ms);

  /// Remaining victims of every unit quarantined since the last call;
  /// those victims are marked settled (the caller concedes them locally,
  /// so the table must not hand them out again).
  std::vector<std::size_t> take_quarantined();

  /// Every unsettled victim across queued/leased/backing-off units,
  /// marked settled — the all-workers-dead local fallback. Live leases
  /// are abandoned (late frames for them classify kStale).
  std::vector<std::size_t> drain_remaining();

  /// Earliest absolute time (ms) a queued unit becomes ready, 0 when one
  /// is ready now, or a negative value when no unit is queued — the
  /// coordinator's poll-timeout hint.
  double next_ready_ms(double now_ms) const;

  const LeaseTableStats& stats() const { return stats_; }

 private:
  enum class UnitState { kQueued, kLeased, kQuarantined, kDone };

  struct Unit {
    std::vector<std::size_t> victims;      ///< original stable-order slice
    std::set<std::size_t> remaining;       ///< not yet settled
    UnitState state = UnitState::kQueued;
    std::size_t attempt = 0;               ///< leases granted so far
    std::string holder;                    ///< live lease holder
    std::set<std::string> failed_holders;  ///< distinct holders it died under
    std::size_t failures = 0;
    double backoff_until_ms = 0.0;
    bool quarantine_taken = false;
  };

  void fail_locked(Unit& u, double now_ms);

  LeaseOptions opt_;
  std::vector<Unit> units_;
  std::map<std::size_t, std::size_t> victim_unit_;  ///< victim -> unit id
  std::size_t victims_total_ = 0;
  std::size_t victims_settled_ = 0;
  LeaseTableStats stats_;
};

}  // namespace serve
}  // namespace xtv
