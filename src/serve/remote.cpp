#include "serve/remote.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>

#include "cells/cell_library.h"
#include "cells/characterize.h"
#include "cells/tech.h"
#include "chipgen/dsp_chip.h"
#include "core/wire.h"
#include "extract/extractor.h"
#include "serve/client.h"
#include "serve/job.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/log.h"

namespace xtv {
namespace serve {

namespace {

constexpr std::size_t kNoUnit = static_cast<std::size_t>(-1);

double mono_ms() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool parse_u64(const std::string& tok, std::uint64_t* out, int base = 10) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, base);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_size(const std::string& tok, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(tok, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

/// Stamps a bound-only record as a quarantine concession — field-for-field
/// what the shard supervisor's stamp_concession writes (core/shard_exec.cpp),
/// so a quarantined victim looks the same whichever backend conceded it.
void stamp_concession(JournalRecord& rec, const std::string& why) {
  rec.screened = false;
  rec.finding.status = FindingStatus::kShardCrashed;
  rec.finding.error_code = StatusCode::kWorkerCrashed;
  rec.finding.error = "conceded to conservative bound: " + why;
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

namespace {

struct Peer {
  std::string endpoint;  ///< lease-holder identity
  ServeClient client;
  WireDecoder decoder;
  bool ready = false;        ///< setup handshake completed
  bool dead = false;
  double last_heard = 0.0;
  double probation_since = -1.0;  ///< leases expired; awaiting a fresh frame
  std::size_t unit = kNoUnit;     ///< live assignment
  std::size_t attempt = 0;
};

}  // namespace

std::map<std::size_t, JournalRecord> RemoteExecutor::run(
    const std::vector<std::size_t>& work, const ShardCallbacks& callbacks,
    ShardExecStats* stats) {
  // A worker can vanish between poll() and write(); the failure must come
  // back as EPIPE, not a process-killing signal.
  ::signal(SIGPIPE, SIG_IGN);

  std::map<std::size_t, JournalRecord> results;

  LeaseOptions lopt;
  lopt.unit_victims = opt_.unit_victims;
  lopt.max_unit_attempts = opt_.max_unit_attempts;
  lopt.backoff_base_ms = opt_.backoff_base_ms;
  lopt.backoff_max_ms = opt_.backoff_max_ms;
  LeaseTable lease(work, lopt);

  // Crash insurance: accepted results are appended (flush-every-1) to the
  // shard-0 journal, exactly where a process-shard worker would write
  // them — a killed coordinator resumes without redoing settled victims,
  // and verify()'s finalization unlinks the file after the stable-order
  // merge.
  std::unique_ptr<ResultJournal> insurance;
  if (!opt_.journal_path.empty()) {
    try {
      insurance = std::make_unique<ResultJournal>(
          journal_shard_path(opt_.journal_path, 0), /*resume=*/false,
          opt_.options_hash, /*flush_every=*/1);
      if (stats) stats->workers_spawned = 1;
    } catch (const std::exception& e) {
      logf(LogLevel::kWarn, "remote: insurance journal unavailable: %s",
           e.what());
    }
  }

  auto settle_record = [&](const JournalRecord& rec) {
    results[rec.finding.net] = rec;
    if (insurance) insurance->append(rec);
    if (callbacks.on_result) callbacks.on_result(rec);
  };

  auto concede_quarantined = [&]() {
    for (std::size_t v : lease.take_quarantined()) {
      if (stats) ++stats->victims_quarantined;
      logf(LogLevel::kWarn,
           "remote: victim %zu quarantined, conceding to local bound", v);
      auto rec = callbacks.analyze ? callbacks.analyze(v, /*bound_only=*/true)
                                   : std::nullopt;
      if (!rec) continue;  // ineligible victim: no record, like a skip
      stamp_concession(*rec, "work unit failed on distinct workers");
      settle_record(*rec);
    }
  };

  // --- Dial the fleet and replay the job spec to every worker. ---
  std::vector<std::unique_ptr<Peer>> peers;
  const double start = mono_ms();
  {
    char hb[64];
    std::snprintf(hb, sizeof hb, "%.17g", opt_.heartbeat_ms);
    const std::string setup = hash_hex(opt_.options_hash) + " " + hb + " " +
                              opt_.spec_text;
    for (const std::string& ep : opt_.workers) {
      auto p = std::make_unique<Peer>();
      p->endpoint = ep;
      std::string err;
      if (!p->client.connect(ep, &err) ||
          !p->client.send(WireType::kWorkerSetup, setup, &err)) {
        logf(LogLevel::kWarn, "remote: worker %s unreachable: %s",
             ep.c_str(), err.c_str());
        p->client.close();
        p->dead = true;
        ++rstats_.workers_lost;
        if (stats) ++stats->worker_crashes;
      }
      p->last_heard = mono_ms();
      peers.push_back(std::move(p));
    }
  }

  auto peer_lost = [&](Peer& p, const char* why) {
    if (p.dead) return;
    logf(LogLevel::kWarn, "remote: worker %s lost (%s)", p.endpoint.c_str(),
         why);
    p.client.close();
    p.dead = true;
    p.unit = kNoUnit;
    lease.fail_holder(p.endpoint, mono_ms());
    ++rstats_.workers_lost;
    if (stats) ++stats->worker_crashes;
  };

  auto expire_leases = [&](Peer& p, const char* why) {
    logf(LogLevel::kWarn, "remote: worker %s lease expired (%s)",
         p.endpoint.c_str(), why);
    lease.fail_holder(p.endpoint, mono_ms());
    p.unit = kNoUnit;
    if (p.probation_since < 0.0) p.probation_since = mono_ms();
    ++rstats_.lease_expiries;
    if (stats) ++stats->worker_crashes;
  };

  auto handle_frame = [&](Peer& p, const WireFrame& f) {
    p.last_heard = mono_ms();
    p.probation_since = -1.0;  // any verified frame re-admits the worker
    std::istringstream in(f.payload);
    switch (f.type) {
      case WireType::kWorkerReady: {
        std::string hex, pid;
        in >> hex >> pid;
        std::uint64_t theirs = 0;
        if (!parse_u64(hex, &theirs, 16) || theirs != opt_.options_hash) {
          // The worker validates first, so this means a broken worker.
          peer_lost(p, "ready-frame hash mismatch");
          return;
        }
        p.ready = true;
        ++rstats_.workers_connected;
        logf(LogLevel::kInfo, "remote: worker %s ready (pid %s)",
             p.endpoint.c_str(), pid.c_str());
        return;
      }
      case WireType::kWorkerReject: {
        std::string reason, detail;
        in >> reason >> detail;
        std::string plain;
        if (!serve_unescape(detail, &plain)) plain = detail;
        logf(LogLevel::kWarn, "remote: worker %s refused the job: %s %s",
             p.endpoint.c_str(), reason.c_str(), plain.c_str());
        ++rstats_.workers_rejected;
        peer_lost(p, "typed rejection");
        return;
      }
      case WireType::kHeartbeat:
        return;
      case WireType::kUnitResult: {
        std::string ustr, astr, tag;
        in >> ustr >> astr >> tag;
        std::size_t unit = 0, attempt = 0;
        if (!parse_size(ustr, &unit) || !parse_size(astr, &attempt)) return;
        if (tag == "r") {
          std::string payload;
          std::getline(in, payload);
          if (!payload.empty() && payload.front() == ' ')
            payload.erase(0, 1);
          JournalRecord rec;
          if (!journal_decode(payload, rec)) {
            peer_lost(p, "undecodable result payload");
            return;
          }
          const LeaseVerdict v = lease.result(unit, attempt, rec.finding.net);
          if (v == LeaseVerdict::kAccepted) settle_record(rec);
          else if (v == LeaseVerdict::kStale) ++rstats_.stale_frames;
        } else if (tag == "s") {
          std::string vstr;
          in >> vstr;
          std::size_t victim = 0;
          if (!parse_size(vstr, &victim)) return;
          const LeaseVerdict v = lease.result(unit, attempt, victim);
          if (v == LeaseVerdict::kStale) ++rstats_.stale_frames;
          // kAccepted: ineligible victim — settled with no record, the
          // exact in-process semantics of a skipped victim.
        }
        return;
      }
      case WireType::kUnitDone: {
        std::string ustr, astr;
        in >> ustr >> astr;
        std::size_t unit = 0, attempt = 0;
        if (!parse_size(ustr, &unit) || !parse_size(astr, &attempt)) return;
        const LeaseVerdict v = lease.complete(unit, attempt, mono_ms());
        if (v == LeaseVerdict::kStale) ++rstats_.stale_frames;
        if (p.unit == unit && p.attempt == attempt) p.unit = kNoUnit;
        return;
      }
      default:
        return;  // unexpected type: ignore, the checksum already verified
    }
  };

  // --- Main poll loop: assign, read, supervise. ---
  while (!lease.all_settled()) {
    concede_quarantined();
    if (lease.all_settled()) break;

    const double now = mono_ms();

    // Deterministic lease-expiry fault: expire the first live lease.
    if (XTV_INJECT_FAULT(FaultSite::kLeaseExpiry)) {
      for (auto& p : peers)
        if (!p->dead && p->unit != kNoUnit) {
          expire_leases(*p, "fault injection");
          break;
        }
    }

    // Graceful degradation: with every worker gone, the remaining victims
    // run locally in-process — slower, but every victim still settles
    // with an explicit status.
    std::size_t live = 0;
    for (auto& p : peers)
      if (!p->dead) ++live;
    if (live == 0) {
      const std::vector<std::size_t> rest = lease.drain_remaining();
      if (!rest.empty())
        logf(LogLevel::kWarn,
             "remote: all %zu workers lost; analyzing %zu victims locally",
             peers.size(), rest.size());
      for (std::size_t v : rest) {
        ++rstats_.victims_local;
        auto rec = callbacks.analyze
                       ? callbacks.analyze(v, /*bound_only=*/false)
                       : std::nullopt;
        if (rec) settle_record(*rec);
        if (callbacks.on_tick) callbacks.on_tick();
      }
      concede_quarantined();
      break;
    }

    // Hand the lowest ready unit to each idle, admitted worker.
    for (auto& p : peers) {
      if (p->dead || !p->ready || p->probation_since >= 0.0 ||
          p->unit != kNoUnit)
        continue;
      LeaseAssignment a;
      if (!lease.acquire(p->endpoint, now, &a)) break;  // nothing ready
      std::ostringstream out;
      out << a.unit << " " << a.attempt;
      for (std::size_t v : a.victims) out << " " << v;
      std::string err;
      if (XTV_INJECT_FAULT(FaultSite::kRemoteSend) ||
          !p->client.send(WireType::kUnitAssign, out.str(), &err)) {
        peer_lost(*p, "assign write failed");
        continue;
      }
      p->unit = a.unit;
      p->attempt = a.attempt;
    }

    // Poll every live connection.
    std::vector<pollfd> fds;
    std::vector<Peer*> fd_peers;
    for (auto& p : peers) {
      if (p->dead) continue;
      fds.push_back({p->client.fd(), POLLIN, 0});
      fd_peers.push_back(p.get());
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);

    for (std::size_t i = 0; i < fds.size(); ++i) {
      Peer& p = *fd_peers[i];
      if (p.dead || !(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      if (XTV_INJECT_FAULT(FaultSite::kRemoteRecv)) {
        peer_lost(p, "injected read fault");
        continue;
      }
      char buf[65536];
      const ssize_t n = ::read(fds[i].fd, buf, sizeof buf);
      if (n == 0) {
        peer_lost(p, "connection closed");
        continue;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        peer_lost(p, "read error");
        continue;
      }
      p.decoder.feed(buf, static_cast<std::size_t>(n));
      WireFrame frame;
      while (!p.dead && p.decoder.next(&frame)) handle_frame(p, frame);
      if (!p.dead && p.decoder.corrupt()) peer_lost(p, "corrupt stream");
    }

    // Supervision: heartbeat silence past 10x the period expires the
    // worker's leases but keeps the socket — a healed partition re-admits
    // it on the next frame. Silence through a second window means the
    // worker is wedged for good; holding its poll slot (and the operator's
    // hope) any longer helps nobody.
    if (opt_.heartbeat_ms > 0) {
      const double limit = 10.0 * opt_.heartbeat_ms;
      const double t = mono_ms();
      for (auto& p : peers) {
        if (p->dead) continue;
        if (!p->ready) {
          if (t - start > opt_.setup_timeout_ms)
            peer_lost(*p, "setup timeout");
          continue;
        }
        if (t - p->last_heard <= limit) continue;
        if (p->probation_since < 0.0) {
          expire_leases(*p, "heartbeat silence");
        } else if (t - p->probation_since > limit) {
          peer_lost(*p, "silent through probation");
        }
      }
    }

    if (callbacks.on_tick) callbacks.on_tick();
  }

  for (auto& p : peers) p->client.close();
  rstats_.lease = lease.stats();
  if (stats) stats->shard_restarts = lease.stats().reassignments;
  if (insurance) insurance->flush();
  return results;
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

namespace {

/// Everything a worker rebuilds per kWorkerSetup: the spec'd design and a
/// ready-to-run per-victim engine. Member order is construction order —
/// chars/extractor reference tech/library, Prepared references everything.
struct WorkerEngine {
  Technology tech;
  CellLibrary library;
  CharacterizedLibrary chars;
  Extractor extractor;
  ChipDesign design;
  VerifierOptions vo;
  ChipVerifier verifier;
  std::unique_ptr<ChipVerifier::Prepared> prepared;

  WorkerEngine(const JobSpec& spec, const std::string& cell_cache)
      : tech(Technology::default_250nm()),
        library(tech),
        chars(library),
        extractor(tech),
        verifier(extractor, chars) {
    if (!cell_cache.empty()) chars.load(cell_cache);
    DspChipOptions chip;
    chip.net_count = spec.design_nets;
    if (spec.design_rows != 0) chip.replicate_rows = spec.design_rows;
    if (spec.design_seed != 0) chip.seed = spec.design_seed;
    design = generate_dsp_chip(library, chip);
    vo = spec.to_options();
    // Scheduling state is the coordinator's business; the worker only
    // analyzes. (None of these enter options_result_hash.)
    vo.journal_path.clear();
    vo.resume = false;
    vo.processes = 0;
    vo.remote_backend = nullptr;
    prepared = std::make_unique<ChipVerifier::Prepared>(verifier, design, vo);
    if (!cell_cache.empty()) chars.save(cell_cache);
  }
};

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::size_t out = 0;
  return parse_size(v, &out) ? out : fallback;
}

/// One coordinator connection, setup through EOF.
void worker_serve_connection(int fd, const WorkerOptions& opt) {
  WireWriter writer(fd);
  WireDecoder decoder;
  std::unique_ptr<WorkerEngine> engine;

  // Heartbeat thread: shares the WireWriter (frames never interleave) and
  // is suppressed both before setup completes (period 0) and while a test
  // stall is active — a stalled worker must look dead to the coordinator.
  std::atomic<bool> stop{false};
  std::atomic<double> hb_period{0.0};
  std::atomic<double> stall_until{0.0};
  std::thread heartbeat([&] {
    std::uint64_t seq = 0;
    double next = 0.0;
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const double period = hb_period.load();
      if (period <= 0.0) continue;
      const double now = mono_ms();
      if (now < next || now < stall_until.load()) continue;
      next = now + period;
      if (!writer.send(WireType::kHeartbeat, std::to_string(++seq))) return;
    }
  });

  bool alive = true;
  bool stalled_once = false;     // XTV_TEST_WORKER_STALL_MS fires once
  std::size_t results_sent = 0;  // for the drop-every-nth test hook
  while (alive) {
    char buf[65536];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
    WireFrame frame;
    while (alive && decoder.next(&frame)) {
      switch (frame.type) {
        case WireType::kWorkerSetup: {
          std::istringstream in(frame.payload);
          std::string hex, hbstr;
          in >> hex >> hbstr;
          std::uint64_t coord_hash = 0;
          double period = 0.0;
          {
            char* end = nullptr;
            period = std::strtod(hbstr.c_str(), &end);
          }
          std::string spec_text;
          std::getline(in, spec_text);
          if (!spec_text.empty() && spec_text.front() == ' ')
            spec_text.erase(0, 1);

          JobSpec spec;
          std::string err;
          if (!parse_u64(hex, &coord_hash, 16) ||
              !JobSpec::parse(spec_text, &spec, &err)) {
            writer.send(WireType::kWorkerReject,
                        "bad-spec " + serve_escape(err));
            break;
          }
          if (!spec.has_design_ref()) {
            writer.send(WireType::kWorkerReject,
                        "no-design-ref " +
                            serve_escape("spec names no generated design; a "
                                         "worker has no resident design"));
            break;
          }
          try {
            engine = std::make_unique<WorkerEngine>(spec, opt.cell_cache);
          } catch (const std::exception& e) {
            engine.reset();
            writer.send(WireType::kWorkerReject,
                        "design-build-failed " + serve_escape(e.what()));
            break;
          }
          const std::uint64_t mine = options_result_hash(engine->vo);
          if (mine != coord_hash) {
            // The gate the whole merge rests on: findings computed under
            // different result-affecting options are incomparable.
            engine.reset();
            writer.send(WireType::kWorkerReject,
                        "options-hash-mismatch " +
                            serve_escape("mine " + hash_hex(mine) +
                                         " coordinator " + hash_hex(coord_hash)));
            break;
          }
          logf(LogLevel::kInfo,
               "xtv_worker: job accepted (%zu nets, hash %s)",
               engine->design.nets.size(), hash_hex(mine).c_str());
          if (!writer.send(WireType::kWorkerReady,
                           hash_hex(mine) + " " +
                               std::to_string(::getpid())))
            alive = false;
          hb_period.store(period);
          break;
        }
        case WireType::kUnitAssign: {
          if (!engine) break;  // assign before setup: coordinator bug
          std::istringstream in(frame.payload);
          std::string ustr, astr;
          in >> ustr >> astr;
          std::size_t unit = 0, attempt = 0;
          if (!parse_size(ustr, &unit) || !parse_size(astr, &attempt))
            break;

          if (env_size("XTV_TEST_WORKER_CRASH_UNIT", kNoUnit) == unit) {
            logf(LogLevel::kWarn,
                 "xtv_worker: TEST crash on unit %zu", unit);
            ::_exit(42);
          }
          // One stall per connection: the partitioned-then-healed worker
          // must make progress after it wakes, or the heal is untestable.
          const std::size_t stall_ms =
              stalled_once ? 0 : env_size("XTV_TEST_WORKER_STALL_MS", 0);
          if (stall_ms > 0) {
            stalled_once = true;
            stall_until.store(mono_ms() + static_cast<double>(stall_ms));
            while (mono_ms() < stall_until.load())
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
          const std::size_t drop_every =
              env_size("XTV_TEST_DROP_FRAME_EVERY", 0);

          const std::string prefix =
              std::to_string(unit) + " " + std::to_string(attempt);
          std::size_t streamed = 0;
          std::string vstr;
          while (alive && (in >> vstr)) {
            std::size_t victim = 0;
            if (!parse_size(vstr, &victim)) continue;
            std::string payload;
            if (victim >= engine->design.nets.size()) {
              payload = prefix + " s " + std::to_string(victim);
            } else {
              auto rec = engine->prepared->analyze(victim, false);
              payload = rec ? prefix + " r " + journal_encode(*rec)
                            : prefix + " s " + std::to_string(victim);
            }
            ++results_sent;
            if (drop_every > 0 && results_sent % drop_every == 0) continue;
            if (!writer.send(WireType::kUnitResult, payload)) {
              alive = false;
              break;
            }
            ++streamed;
          }
          if (alive &&
              !writer.send(WireType::kUnitDone,
                           prefix + " " + std::to_string(streamed)))
            alive = false;
          break;
        }
        case WireType::kHeartbeat:
          break;  // coordinator keepalive, nothing to do
        default:
          break;
      }
    }
    if (decoder.corrupt()) break;
  }

  stop.store(true);
  heartbeat.join();
}

}  // namespace

int run_worker(const WorkerOptions& opt) {
  ::signal(SIGPIPE, SIG_IGN);

  std::string host, port;
  if (!parse_tcp_endpoint(opt.listen, &host, &port)) {
    logf(LogLevel::kError, "xtv_worker: bad listen address '%s'",
         opt.listen.c_str());
    return 2;
  }

  addrinfo hints;
  std::memset(&hints, 0, sizeof hints);
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    logf(LogLevel::kError, "xtv_worker: cannot resolve '%s'",
         opt.listen.c_str());
    return 2;
  }
  int listen_fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    listen_fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (listen_fd < 0) continue;
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(listen_fd, 8) == 0)
      break;
    ::close(listen_fd);
    listen_fd = -1;
  }
  ::freeaddrinfo(res);
  if (listen_fd < 0) {
    logf(LogLevel::kError, "xtv_worker: cannot bind %s: %s",
         opt.listen.c_str(), std::strerror(errno));
    return 2;
  }

  // Resolve the actual port (the listen address may have asked for an
  // ephemeral one) and publish it atomically — a script reading the
  // endpoint file never sees a torn write.
  sockaddr_storage bound;
  socklen_t blen = sizeof bound;
  char bhost[NI_MAXHOST] = "127.0.0.1";
  char bport[NI_MAXSERV] = "0";
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0)
    ::getnameinfo(reinterpret_cast<sockaddr*>(&bound), blen, bhost,
                  sizeof bhost, bport, sizeof bport,
                  NI_NUMERICHOST | NI_NUMERICSERV);
  const std::string endpoint = std::string(bhost) + ":" + bport;
  if (!opt.endpoint_file.empty()) {
    std::string err;
    if (!write_file_atomic(opt.endpoint_file, endpoint + "\n", &err))
      logf(LogLevel::kWarn, "xtv_worker: endpoint file: %s", err.c_str());
  }
  logf(LogLevel::kInfo, "xtv_worker: listening on %s", endpoint.c_str());

  std::size_t served = 0;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    worker_serve_connection(fd, opt);
    ::close(fd);
    if (opt.max_coordinators != 0 && ++served >= opt.max_coordinators) break;
  }
  ::close(listen_fd);
  return 0;
}

}  // namespace serve
}  // namespace xtv
