#include "serve/governor.h"

namespace xtv {
namespace serve {

namespace {

bool older(const LaunchCandidate& a, const LaunchCandidate& b) {
  if (a.enqueued_ms != b.enqueued_ms) return a.enqueued_ms < b.enqueued_ms;
  return a.key < b.key;  // deterministic tiebreak
}

}  // namespace

std::size_t pick_admission(const std::vector<LaunchCandidate>& ready,
                           double now_ms, double age_promote_ms,
                           const ResourceGovernor& governor) {
  if (ready.empty()) return kNoAdmission;

  if (!governor.enabled()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i)
      if (older(ready[i], ready[best])) best = i;
    return best;
  }

  // Aging: the oldest job past the promotion threshold blocks the line.
  // Either it fits now, or nothing launches until running jobs free budget.
  if (age_promote_ms > 0.0) {
    std::size_t aged = kNoAdmission;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (now_ms - ready[i].enqueued_ms < age_promote_ms) continue;
      if (aged == kNoAdmission || older(ready[i], ready[aged])) aged = i;
    }
    if (aged != kNoAdmission)
      return governor.fits(ready[aged].mem_mb) ? aged : kNoAdmission;
  }

  // Best packing: the largest reservation that fits; ties go to the oldest.
  std::size_t best = kNoAdmission;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (!governor.fits(ready[i].mem_mb)) continue;
    if (best == kNoAdmission || ready[i].mem_mb > ready[best].mem_mb ||
        (ready[i].mem_mb == ready[best].mem_mb && older(ready[i], ready[best])))
      best = i;
  }
  return best;
}

}  // namespace serve
}  // namespace xtv
