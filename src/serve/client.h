// Blocking client for the verification service (serve/daemon.h).
//
// Speaks xwf1 frames over the daemon's Unix-domain socket or its TCP
// listener. Used by the `xtv_serve submit` CLI mode, the serve tests,
// and the chaos harness — all of which need the same loop: submit a
// spec, collect each streamed finding exactly once, and wait for the
// terminal done/conceded verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/journal.h"
#include "core/wire.h"
#include "serve/job.h"

namespace xtv {
namespace serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to a daemon endpoint. "host:port" or "tcp:host:port" (a
  /// colon-separated target with no '/') selects TCP; anything else is a
  /// Unix-domain socket path.
  bool connect(const std::string& endpoint, std::string* error);

  /// Sends one frame (EINTR-safe full write).
  bool send(WireType type, const std::string& payload, std::string* error);

  /// Blocking framed read. False on timeout, daemon EOF, or a corrupt
  /// stream (with `error` describing which).
  bool recv(WireFrame* frame, double timeout_ms, std::string* error);

  void close();
  bool connected() const { return fd_ >= 0; }

  /// Raw descriptor — the remote-fan-out coordinator (serve/remote.h)
  /// polls several worker connections at once and so cannot use the
  /// blocking single-socket recv() above.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  WireDecoder decoder_;
};

/// True when `endpoint` names a TCP target ("host:port" with a numeric
/// port, or an explicit "tcp:host:port"), splitting it into host/port.
/// False for Unix socket paths.
bool parse_tcp_endpoint(const std::string& endpoint, std::string* host,
                        std::string* port);

/// Everything a finished job streamed back.
struct JobResult {
  std::uint64_t key = 0;
  JobState state = JobState::kQueued;  ///< terminal: kDone or kConceded
  std::string summary;                 ///< daemon's terminal k=v summary
  std::map<std::size_t, JournalRecord> findings;  ///< by victim net
  /// Findings the daemon sent more than once for the same victim — the
  /// exactly-once contract says this must stay 0; the chaos harness
  /// asserts on it.
  std::size_t duplicate_findings = 0;
};

/// Submits `spec` and blocks until the daemon reports the job terminal,
/// collecting every streamed finding. `timeout_ms` bounds the whole wait.
/// False on rejection (queue-full, bad-spec, draining), timeout, or a
/// dropped connection — with the daemon's reason in `error`.
bool submit_and_wait(
    ServeClient& client, const JobSpec& spec, double timeout_ms,
    JobResult* result, std::string* error,
    const std::function<void(const JournalRecord&)>& on_finding = nullptr);

}  // namespace serve
}  // namespace xtv
