// 2-D lookup table with bilinear interpolation — the storage format for
// both NLDM-style timing tables (delay/slew vs input-slew x load) and the
// non-linear cell model's output-current surface I(Vin, Vout)
// (paper Section 4.2).
#pragma once

#include <cstddef>
#include <vector>

namespace xtv {

/// Rectangular-grid table z(x, y). Axes must be strictly increasing;
/// lookups clamp to the grid boundary (standard library-characterization
/// semantics).
class Table2D {
 public:
  Table2D() = default;

  /// `z` is row-major over (x index, y index): z[i * ys.size() + j].
  Table2D(std::vector<double> xs, std::vector<double> ys, std::vector<double> z);

  std::size_t x_size() const { return xs_.size(); }
  std::size_t y_size() const { return ys_.size(); }
  const std::vector<double>& x_axis() const { return xs_; }
  const std::vector<double>& y_axis() const { return ys_; }
  double z_at(std::size_t i, std::size_t j) const { return z_[i * ys_.size() + j]; }

  /// Bilinear interpolation, clamped to the grid.
  double lookup(double x, double y) const;

  /// Partial derivative dz/dy at (x, y) from the interpolation cell (the
  /// conductance of a current surface).
  double d_dy(double x, double y) const;

 private:
  /// Finds the cell [k, k+1) containing v (clamped) on an axis; also
  /// returns the interpolation fraction in [0, 1].
  static void locate(const std::vector<double>& axis, double v, std::size_t& k,
                     double& frac);

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> z_;
};

}  // namespace xtv
