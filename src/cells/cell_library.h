// Parametric transistor-level standard-cell library.
//
// The paper characterizes "50 different types of 0.25 µm cells" (Table 3)
// / "53 different 0.25 µm cells" (Table 4). We generate an equivalent
// library from structural templates (INV/BUF/NAND/NOR/AOI/OAI/TRIBUF/
// DFF/DLAT/DLY families x drive strengths), each instantiable as a
// Level-1 transistor netlist — the same netlists serve as the
// transistor-level golden reference and as the source for cell
// pre-characterization.
//
// Sequential cells (DFF/DLAT) are modeled structurally as input-stage +
// output-stage only (clocking is not exercised by crosstalk analysis; what
// matters is the input pin load they present as receivers and the drive of
// their output stage as aggressor/victim drivers).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cells/tech.h"
#include "netlist/circuit.h"

namespace xtv {

enum class CellFamily {
  kInv,
  kBuf,
  kNand2,
  kNand3,
  kNor2,
  kNor3,
  kAoi21,
  kOai21,
  kTribuf,
  kDff,
  kDlat,
  kDly,
};

/// Human-readable family name ("INV", "NAND2", ...).
std::string family_name(CellFamily family);

/// One cell type (master): family + drive strength.
class CellMaster {
 public:
  CellMaster(CellFamily family, double drive, const Technology& tech);

  const std::string& name() const { return name_; }           ///< e.g. "NAND2_X4"
  CellFamily family() const { return family_; }
  double drive() const { return drive_; }

  /// Input pin names in canonical order; the first is the timing-
  /// characterized (switching) pin.
  const std::vector<std::string>& input_pins() const { return inputs_; }
  /// The switching input used for characterization.
  const std::string& switching_pin() const { return inputs_.front(); }
  /// Output pin name ("Y", or "Q" for sequentials).
  const std::string& output_pin() const { return output_; }
  /// True if output falls when the switching pin rises.
  bool inverting() const { return inverting_; }
  /// Tri-state cells expose an enable pin ("EN"); empty otherwise.
  const std::string& enable_pin() const { return enable_; }

  /// Non-controlling tie level for a side (non-switching) input: true =
  /// tie to Vdd. Enable pins tie to their asserted level.
  bool tie_high(const std::string& pin) const;

  /// Instantiates the transistor netlist into `dst`. `pin_nodes` must map
  /// every input pin and the output pin to existing nodes; `vdd` is the
  /// supply node. Internal nodes are created fresh.
  void instantiate(Circuit& dst, const std::map<std::string, int>& pin_nodes,
                   int vdd) const;

  /// Analytic input pin capacitance estimate (sum of gate caps on the pin).
  double input_cap(const std::string& pin) const;

  /// Sum of drain parasitics on the output node (intrinsic output cap).
  double output_cap() const;

 private:
  struct MosSpec {
    MosType type;
    std::string d, g, s;  // symbolic node names: pins, "VDD", "GND", internal
    double w;             // meters
  };

  void build_template(const Technology& tech);
  void add_inverter(const std::string& in, const std::string& out, double wn,
                    double wp);

  CellFamily family_;
  double drive_;
  std::string name_;
  std::vector<std::string> inputs_;
  std::string output_;
  std::string enable_;
  bool inverting_ = true;
  std::map<std::string, bool> ties_;
  std::vector<MosSpec> mosfets_;
  Technology tech_;
};

/// The full generated library (53 masters, matching the paper's count).
class CellLibrary {
 public:
  explicit CellLibrary(const Technology& tech = Technology::default_250nm());

  std::size_t size() const { return masters_.size(); }
  const CellMaster& at(std::size_t i) const { return masters_.at(i); }
  /// Lookup by name; throws std::runtime_error if absent.
  const CellMaster& by_name(const std::string& name) const;
  /// Index lookup by name; -1 if absent.
  int find(const std::string& name) const;
  const Technology& tech() const { return tech_; }

  /// All masters in a family (ascending drive).
  std::vector<const CellMaster*> family(CellFamily family) const;

 private:
  Technology tech_;
  std::vector<CellMaster> masters_;
};

}  // namespace xtv
