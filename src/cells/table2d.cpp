#include "cells/table2d.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xtv {

Table2D::Table2D(std::vector<double> xs, std::vector<double> ys,
                 std::vector<double> z)
    : xs_(std::move(xs)), ys_(std::move(ys)), z_(std::move(z)) {
  if (xs_.empty() || ys_.empty() || z_.size() != xs_.size() * ys_.size())
    throw std::runtime_error("Table2D: inconsistent dimensions");
  for (std::size_t i = 1; i < xs_.size(); ++i)
    if (xs_[i] <= xs_[i - 1]) throw std::runtime_error("Table2D: x not increasing");
  for (std::size_t j = 1; j < ys_.size(); ++j)
    if (ys_[j] <= ys_[j - 1]) throw std::runtime_error("Table2D: y not increasing");
}

void Table2D::locate(const std::vector<double>& axis, double v, std::size_t& k,
                     double& frac) {
  if (axis.size() == 1) {
    k = 0;
    frac = 0.0;
    return;
  }
  if (v <= axis.front()) {
    k = 0;
    frac = 0.0;
    return;
  }
  if (v >= axis.back()) {
    k = axis.size() - 2;
    frac = 1.0;
    return;
  }
  const auto it = std::upper_bound(axis.begin(), axis.end(), v);
  k = static_cast<std::size_t>(it - axis.begin()) - 1;
  frac = (v - axis[k]) / (axis[k + 1] - axis[k]);
}

double Table2D::lookup(double x, double y) const {
  std::size_t i = 0, j = 0;
  double fx = 0.0, fy = 0.0;
  locate(xs_, x, i, fx);
  locate(ys_, y, j, fy);
  const std::size_t i1 = std::min(i + 1, xs_.size() - 1);
  const std::size_t j1 = std::min(j + 1, ys_.size() - 1);
  const double z00 = z_at(i, j);
  const double z01 = z_at(i, j1);
  const double z10 = z_at(i1, j);
  const double z11 = z_at(i1, j1);
  return (1 - fx) * ((1 - fy) * z00 + fy * z01) +
         fx * ((1 - fy) * z10 + fy * z11);
}

double Table2D::d_dy(double x, double y) const {
  if (ys_.size() == 1) return 0.0;
  std::size_t i = 0, j = 0;
  double fx = 0.0, fy = 0.0;
  locate(xs_, x, i, fx);
  locate(ys_, y, j, fy);
  const std::size_t i1 = std::min(i + 1, xs_.size() - 1);
  const double dy = ys_[j + 1] - ys_[j];
  const double slope0 = (z_at(i, j + 1) - z_at(i, j)) / dy;
  const double slope1 = (z_at(i1, j + 1) - z_at(i1, j)) / dy;
  return (1 - fx) * slope0 + fx * slope1;
}

}  // namespace xtv
