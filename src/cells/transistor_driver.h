// On-demand transistor-level driver model — the paper's stated future work
// ("extending it to transistor-level crosstalk analysis for higher
// accuracy", Section 6).
//
// Instead of a pre-characterized I(Vin, Vout) table, this OnePortDevice
// solves the cell's actual transistor netlist (DC, quasi-static) at every
// (input voltage, output voltage) the reduced-order transient visits,
// memoizing solutions on a fine lazy grid. It removes the table's
// interpolation error entirely while still running inside the fast MOR
// loop; the cost is a handful of small Newton solves per cluster, amortized
// by the cache.
#pragma once

#include <map>
#include <memory>

#include "cells/cell_library.h"
#include "netlist/circuit.h"

namespace xtv {

/// Quasi-static transistor-level one-port driver. The referenced master
/// and technology must outlive the device.
class TransistorDcDriver final : public OnePortDevice {
 public:
  /// `input` is the waveform at the cell's switching pin; side pins sit at
  /// their non-controlling ties, enable asserted. `grid_step` is the
  /// memoization resolution on both voltage axes (linear interpolation in
  /// between, so accuracy is second-order in the step).
  TransistorDcDriver(const CellMaster& master, const Technology& tech,
                     SourceWave input, double grid_step = 0.025);

  double current(double v, double t) const override;
  double conductance(double v, double t) const override;

  /// Number of distinct DC operating points solved so far (cache size).
  std::size_t solves() const { return cache_.size(); }

 private:
  /// Exact DC output current with the switching pin at vin and the output
  /// forced to vout (memoized on the snapped grid).
  double solve_current(double vin, double vout) const;
  double grid_current(long gi, long gj) const;

  const CellMaster& master_;
  Technology tech_;
  SourceWave input_;
  double step_;
  mutable std::map<std::pair<long, long>, double> cache_;
};

}  // namespace xtv
