#include "cells/tech.h"

namespace xtv {

Technology Technology::default_250nm() {
  Technology t;
  t.nmos.type = MosType::kNmos;
  t.nmos.vt0 = 0.50;
  t.nmos.kp = 110e-6;
  t.nmos.lambda = 0.05;
  t.nmos.cox = 6e-3;
  t.nmos.cov = 3e-10;
  t.nmos.cj = 1.2e-3;

  t.pmos.type = MosType::kPmos;
  t.pmos.vt0 = 0.55;
  t.pmos.kp = 45e-6;
  t.pmos.lambda = 0.06;
  t.pmos.cox = 6e-3;
  t.pmos.cov = 3e-10;
  t.pmos.cj = 1.2e-3;
  return t;
}

}  // namespace xtv
