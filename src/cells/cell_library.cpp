#include "cells/cell_library.h"

#include <cmath>
#include <stdexcept>

#include "spice/mosfet_eval.h"

namespace xtv {

std::string family_name(CellFamily family) {
  switch (family) {
    case CellFamily::kInv: return "INV";
    case CellFamily::kBuf: return "BUF";
    case CellFamily::kNand2: return "NAND2";
    case CellFamily::kNand3: return "NAND3";
    case CellFamily::kNor2: return "NOR2";
    case CellFamily::kNor3: return "NOR3";
    case CellFamily::kAoi21: return "AOI21";
    case CellFamily::kOai21: return "OAI21";
    case CellFamily::kTribuf: return "TRIBUF";
    case CellFamily::kDff: return "DFF";
    case CellFamily::kDlat: return "DLAT";
    case CellFamily::kDly: return "DLY";
  }
  return "?";
}

CellMaster::CellMaster(CellFamily family, double drive, const Technology& tech)
    : family_(family), drive_(drive), tech_(tech) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "_X%g", drive);
  name_ = family_name(family) + buf;
  build_template(tech);
}

void CellMaster::add_inverter(const std::string& in, const std::string& out,
                              double wn, double wp) {
  mosfets_.push_back({MosType::kNmos, out, in, "GND", wn});
  mosfets_.push_back({MosType::kPmos, out, in, "VDD", wp});
}

void CellMaster::build_template(const Technology& tech) {
  const double wn = drive_ * tech.wn_unit;
  const double wp = tech.beta_ratio * wn;
  output_ = "Y";
  switch (family_) {
    case CellFamily::kInv: {
      inputs_ = {"A"};
      add_inverter("A", "Y", wn, wp);
      inverting_ = true;
      break;
    }
    case CellFamily::kBuf: {
      inputs_ = {"A"};
      const double w1 = std::max(0.5, drive_ / 3.0) * tech.wn_unit;
      add_inverter("A", "i1", w1, tech.beta_ratio * w1);
      add_inverter("i1", "Y", wn, wp);
      inverting_ = false;
      break;
    }
    case CellFamily::kNand2: {
      inputs_ = {"A", "B"};
      ties_["B"] = true;  // non-controlling for NAND
      mosfets_.push_back({MosType::kNmos, "Y", "A", "i1", 2 * wn});
      mosfets_.push_back({MosType::kNmos, "i1", "B", "GND", 2 * wn});
      mosfets_.push_back({MosType::kPmos, "Y", "A", "VDD", wp});
      mosfets_.push_back({MosType::kPmos, "Y", "B", "VDD", wp});
      inverting_ = true;
      break;
    }
    case CellFamily::kNand3: {
      inputs_ = {"A", "B", "C"};
      ties_["B"] = true;
      ties_["C"] = true;
      mosfets_.push_back({MosType::kNmos, "Y", "A", "i1", 3 * wn});
      mosfets_.push_back({MosType::kNmos, "i1", "B", "i2", 3 * wn});
      mosfets_.push_back({MosType::kNmos, "i2", "C", "GND", 3 * wn});
      for (const char* g : {"A", "B", "C"})
        mosfets_.push_back({MosType::kPmos, "Y", g, "VDD", wp});
      inverting_ = true;
      break;
    }
    case CellFamily::kNor2: {
      inputs_ = {"A", "B"};
      ties_["B"] = false;  // non-controlling for NOR
      mosfets_.push_back({MosType::kNmos, "Y", "A", "GND", wn});
      mosfets_.push_back({MosType::kNmos, "Y", "B", "GND", wn});
      mosfets_.push_back({MosType::kPmos, "Y", "A", "i1", 2 * wp});
      mosfets_.push_back({MosType::kPmos, "i1", "B", "VDD", 2 * wp});
      inverting_ = true;
      break;
    }
    case CellFamily::kNor3: {
      inputs_ = {"A", "B", "C"};
      ties_["B"] = false;
      ties_["C"] = false;
      for (const char* g : {"A", "B", "C"})
        mosfets_.push_back({MosType::kNmos, "Y", g, "GND", wn});
      mosfets_.push_back({MosType::kPmos, "Y", "A", "i1", 3 * wp});
      mosfets_.push_back({MosType::kPmos, "i1", "B", "i2", 3 * wp});
      mosfets_.push_back({MosType::kPmos, "i2", "C", "VDD", 3 * wp});
      inverting_ = true;
      break;
    }
    case CellFamily::kAoi21: {
      // Y = !(A*B + C)
      inputs_ = {"A", "B", "C"};
      ties_["B"] = true;   // A*B controlled by A
      ties_["C"] = false;  // C branch off
      mosfets_.push_back({MosType::kNmos, "Y", "A", "i1", 2 * wn});
      mosfets_.push_back({MosType::kNmos, "i1", "B", "GND", 2 * wn});
      mosfets_.push_back({MosType::kNmos, "Y", "C", "GND", wn});
      mosfets_.push_back({MosType::kPmos, "i2", "A", "VDD", 2 * wp});
      mosfets_.push_back({MosType::kPmos, "i2", "B", "VDD", 2 * wp});
      mosfets_.push_back({MosType::kPmos, "Y", "C", "i2", 2 * wp});
      inverting_ = true;
      break;
    }
    case CellFamily::kOai21: {
      // Y = !((A+B) * C)
      inputs_ = {"A", "B", "C"};
      ties_["B"] = false;  // A+B controlled by A
      ties_["C"] = true;   // series NMOS on, parallel PMOS off
      mosfets_.push_back({MosType::kNmos, "Y", "A", "i1", 2 * wn});
      mosfets_.push_back({MosType::kNmos, "Y", "B", "i1", 2 * wn});
      mosfets_.push_back({MosType::kNmos, "i1", "C", "GND", 2 * wn});
      mosfets_.push_back({MosType::kPmos, "i2", "A", "VDD", 2 * wp});
      mosfets_.push_back({MosType::kPmos, "Y", "B", "i2", 2 * wp});
      mosfets_.push_back({MosType::kPmos, "Y", "C", "VDD", wp});
      inverting_ = true;
      break;
    }
    case CellFamily::kTribuf: {
      // Standard tri-state: NAND(A,EN) gates the PMOS, NOR(A,!EN) gates
      // the NMOS. Y = A when EN = 1, Hi-Z when EN = 0.
      inputs_ = {"A", "EN"};
      enable_ = "EN";
      ties_["EN"] = true;  // characterized enabled
      const double wi = std::max(0.5, drive_ / 3.0) * tech.wn_unit;
      const double wpi = tech.beta_ratio * wi;
      // enb = !EN
      add_inverter("EN", "enb", wi, wpi);
      // np = NAND(A, EN)
      mosfets_.push_back({MosType::kNmos, "np", "A", "i1", 2 * wi});
      mosfets_.push_back({MosType::kNmos, "i1", "EN", "GND", 2 * wi});
      mosfets_.push_back({MosType::kPmos, "np", "A", "VDD", wpi});
      mosfets_.push_back({MosType::kPmos, "np", "EN", "VDD", wpi});
      // nn = NOR(A, enb)
      mosfets_.push_back({MosType::kNmos, "nn", "A", "GND", wi});
      mosfets_.push_back({MosType::kNmos, "nn", "enb", "GND", wi});
      mosfets_.push_back({MosType::kPmos, "nn", "A", "i2", 2 * wpi});
      mosfets_.push_back({MosType::kPmos, "i2", "enb", "VDD", 2 * wpi});
      // Output stage.
      mosfets_.push_back({MosType::kPmos, "Y", "np", "VDD", wp});
      mosfets_.push_back({MosType::kNmos, "Y", "nn", "GND", wn});
      inverting_ = false;
      break;
    }
    case CellFamily::kDff:
    case CellFamily::kDlat: {
      // Structural input-stage + output-stage model (see header comment).
      inputs_ = {"D"};
      output_ = "Q";
      const double wi = std::max(0.5, drive_ / 2.0) * tech.wn_unit;
      add_inverter("D", "i1", wi, tech.beta_ratio * wi);
      add_inverter("i1", "Q", wn, wp);
      inverting_ = false;
      break;
    }
    case CellFamily::kDly: {
      inputs_ = {"A"};
      const double wi = 0.5 * tech.wn_unit;
      add_inverter("A", "i1", wi, tech.beta_ratio * wi);
      add_inverter("i1", "i2", wi, tech.beta_ratio * wi);
      add_inverter("i2", "i3", wi, tech.beta_ratio * wi);
      add_inverter("i3", "Y", wn, wp);
      inverting_ = false;
      break;
    }
  }
}

bool CellMaster::tie_high(const std::string& pin) const {
  const auto it = ties_.find(pin);
  if (it == ties_.end())
    throw std::runtime_error("CellMaster: pin '" + pin + "' has no tie level");
  return it->second;
}

void CellMaster::instantiate(Circuit& dst,
                             const std::map<std::string, int>& pin_nodes,
                             int vdd) const {
  // Deduplicate model cards by value.
  auto model_index = [&](const MosModel& card) {
    for (std::size_t i = 0; i < dst.models().size(); ++i) {
      const MosModel& m = dst.models()[i];
      if (m.type == card.type && m.vt0 == card.vt0 && m.kp == card.kp &&
          m.lambda == card.lambda && m.cox == card.cox && m.cov == card.cov &&
          m.cj == card.cj)
        return static_cast<int>(i);
    }
    return dst.add_model(card);
  };
  const int nm = model_index(tech_.nmos);
  const int pm = model_index(tech_.pmos);

  std::map<std::string, int> nodes = pin_nodes;
  nodes["VDD"] = vdd;
  nodes["GND"] = Circuit::ground();
  auto resolve = [&](const std::string& sym) {
    const auto it = nodes.find(sym);
    if (it != nodes.end()) return it->second;
    const int fresh = dst.add_node();
    nodes[sym] = fresh;
    return fresh;
  };
  // Validate required pins are provided.
  for (const auto& pin : inputs_)
    if (!pin_nodes.count(pin))
      throw std::runtime_error("CellMaster::instantiate: missing pin " + pin);
  if (!pin_nodes.count(output_))
    throw std::runtime_error("CellMaster::instantiate: missing pin " + output_);

  for (const auto& spec : mosfets_) {
    const int d = resolve(spec.d);
    const int g = resolve(spec.g);
    const int s = resolve(spec.s);
    dst.add_mosfet(d, g, s, spec.type == MosType::kNmos ? nm : pm, spec.w,
                   tech_.lmin);
  }
}

double CellMaster::input_cap(const std::string& pin) const {
  double total = 0.0;
  for (const auto& spec : mosfets_) {
    if (spec.g != pin) continue;
    const MosModel& card = spec.type == MosType::kNmos ? tech_.nmos : tech_.pmos;
    const MosfetCaps caps = mosfet_caps(card, spec.w, tech_.lmin);
    total += caps.cgs + caps.cgd;
  }
  return total;
}

double CellMaster::output_cap() const {
  double total = 0.0;
  for (const auto& spec : mosfets_) {
    const MosModel& card = spec.type == MosType::kNmos ? tech_.nmos : tech_.pmos;
    const MosfetCaps caps = mosfet_caps(card, spec.w, tech_.lmin);
    if (spec.d == output_) total += caps.cdb + caps.cgd;
    // Source-connected output (possible in swapped layouts): junction only.
    else if (spec.s == output_) total += caps.cdb;
  }
  return total;
}

CellLibrary::CellLibrary(const Technology& tech) : tech_(tech) {
  auto add_family = [&](CellFamily family, std::initializer_list<double> drives) {
    for (double d : drives) masters_.emplace_back(family, d, tech_);
  };
  add_family(CellFamily::kInv, {1, 2, 4, 8, 16, 32});
  add_family(CellFamily::kBuf, {1, 2, 4, 8, 16});
  add_family(CellFamily::kNand2, {1, 2, 4, 8, 16});
  add_family(CellFamily::kNand3, {1, 2, 4, 8});
  add_family(CellFamily::kNor2, {1, 2, 4, 8, 16});
  add_family(CellFamily::kNor3, {1, 2, 4, 8});
  add_family(CellFamily::kAoi21, {1, 2, 4, 8});
  add_family(CellFamily::kOai21, {1, 2, 4, 8});
  add_family(CellFamily::kTribuf, {1, 2, 4, 8, 16});
  add_family(CellFamily::kDff, {1, 2, 4, 8});
  add_family(CellFamily::kDlat, {1, 2, 4, 8});
  add_family(CellFamily::kDly, {1, 2, 4});
}

const CellMaster& CellLibrary::by_name(const std::string& name) const {
  const int i = find(name);
  if (i < 0) throw std::runtime_error("CellLibrary: unknown cell " + name);
  return masters_[static_cast<std::size_t>(i)];
}

int CellLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < masters_.size(); ++i)
    if (masters_[i].name() == name) return static_cast<int>(i);
  return -1;
}

std::vector<const CellMaster*> CellLibrary::family(CellFamily family) const {
  std::vector<const CellMaster*> out;
  for (const auto& m : masters_)
    if (m.family() == family) out.push_back(&m);
  return out;
}

}  // namespace xtv
