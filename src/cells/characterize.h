// Cell pre-characterization (paper Section 4).
//
// Runs the transistor-level cell netlists through the SPICE-class engine to
// produce, per cell:
//   * NLDM-style timing tables: delay and output slew vs (input slew, load)
//     — the "cell timing library" of Section 4.1;
//   * an effective linear drive resistance deduced from that timing data —
//     the Table-3 linear-resistor driver model;
//   * the non-linear cell model of Section 4.2: a DC output-current surface
//     I(Vin, Vout) (quasi-static) plus intrinsic output capacitance — the
//     "simple yet non-linear" driver used in Table 4 / Figures 6-7.
// Characterization is a one-time task per library; results are cached by
// cell name inside CharacterizedLibrary.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cells/cell_library.h"
#include "cells/table2d.h"

namespace xtv {

/// NLDM-style lookup: x axis = input slew (s), y axis = load cap (F).
struct TimingTable {
  Table2D delay;       ///< 50%-to-50% delay (s)
  Table2D output_slew; ///< 10%-90% output transition (s)
};

/// Everything derived from one cell master.
struct CellModel {
  std::string cell;            ///< master name
  double input_cap = 0.0;      ///< switching-pin load the cell presents (F)
  double output_cap = 0.0;     ///< intrinsic drain cap at the output (F)

  TimingTable rise;            ///< output rising
  TimingTable fall;            ///< output falling

  /// Effective linear drive resistances deduced from the timing tables
  /// (R = d(delay)/d(Cload) / ln 2), per output direction.
  double drive_resistance_rise = 0.0;
  double drive_resistance_fall = 0.0;

  /// Quasi-static output current surface: lookup(vin, vout) = current the
  /// cell injects INTO its output node with the switching pin at vin (V)
  /// and the output held at vout (V); other pins at their non-controlling
  /// ties, enable asserted.
  Table2D iv_surface;

  /// Dynamic calibration of the quasi-static surface (per output
  /// direction): multi-stage cells (BUF/TRIBUF/DFF/...) have internal
  /// stages the DC surface cannot see, so their real output transition is
  /// later and slower than the quasi-static response — by an amount that
  /// depends on input slew AND load. The switching input wave fed to the
  /// surface is warped by
  ///   t' = t_start + shift + (t - t_start) * stretch,
  /// where (shift, stretch) are characterized over the same (input slew,
  /// load) grid as the timing tables, by replaying the surface as a scalar
  /// ODE and matching the cell's own delay/output-slew tables. ~ (0, 1)
  /// everywhere for single-stage cells.
  Table2D warp_shift_rise;    ///< s
  Table2D warp_shift_fall;
  Table2D warp_stretch_rise;  ///< unitless, >= 1
  Table2D warp_stretch_fall;

  /// Input-warp parameters for a switching driver instance.
  struct Warp {
    double shift = 0.0;
    double stretch = 1.0;
  };
  /// Looks up the warp for an output transition of the given direction at
  /// an instance's input slew and total driven load (wire + receivers +
  /// coupling, excluding the model's own output_cap).
  Warp warp(bool output_rising, double input_slew, double load) const;
};

struct CharacterizeOptions {
  std::vector<double> input_slews = {0.05e-9, 0.2e-9, 0.8e-9};
  std::vector<double> load_caps = {5e-15, 20e-15, 80e-15, 240e-15};
  int iv_grid = 25;            ///< points per axis of the I-V surface
  double sim_dt = 2e-12;       ///< transient step for timing runs
};

/// Characterizes a single master. Throws if a timing measurement fails
/// (e.g. the output never completes its transition within the window).
CellModel characterize_cell(const CellMaster& master, const Technology& tech,
                            const CharacterizeOptions& options = {});

/// A cell library plus lazily-computed models, cached by name.
/// Characterization is the paper's "one-time task": the cache can be
/// persisted to disk and reloaded, so repeated tool runs skip it.
///
/// Thread-safe: the verifier's worker pool shares one instance, so every
/// cache access is serialized by an internal mutex. A cold-cache model()
/// holds the lock for the whole characterization — concurrent requests
/// for the same cell then characterize once, and references handed out
/// stay valid forever (std::map nodes are stable, entries never erased).
class CharacterizedLibrary {
 public:
  explicit CharacterizedLibrary(const CellLibrary& library,
                                const CharacterizeOptions& options = {});

  /// Returns (characterizing on first use) the model for a master.
  const CellModel& model(const std::string& cell_name);
  const CellLibrary& library() const { return library_; }

  /// True if a model is already cached (no characterization would run).
  bool has_model(const std::string& cell_name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.count(cell_name) > 0;
  }

  /// Writes every cached model to `path` (text format). Returns the number
  /// of models written.
  std::size_t save(const std::string& path) const;

  /// Loads models from `path` into the cache (overwriting duplicates).
  /// Returns the number loaded; 0 if the file does not exist or carries a
  /// stale/foreign magic. A file that *claims* to be a current cache but
  /// is truncated, malformed, or contains non-finite table entries throws
  /// NumericalError(kInvalidInput) naming the offending line — garbage
  /// models must never silently enter the analysis.
  std::size_t load(const std::string& path);

 private:
  const CellLibrary& library_;
  CharacterizeOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, CellModel> cache_;
};

}  // namespace xtv
