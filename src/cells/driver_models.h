// Driver models for signal-integrity analysis (paper Section 4).
//
// All three model classes implement OnePortDevice, so they plug equally
// into the golden SPICE-class engine and the reduced-order simulator —
// which is precisely how the paper's Tables 3/4 and Figures 6/7 compare
// model accuracy against transistor-level simulation.
#pragma once

#include <memory>
#include <optional>

#include "cells/characterize.h"
#include "netlist/circuit.h"

namespace xtv {

/// Section 4.1: linear-resistor (Thevenin) driver — a voltage waveform
/// behind the effective drive resistance deduced from the timing library.
class TheveninDriver final : public OnePortDevice {
 public:
  TheveninDriver(SourceWave voltage, double ohms);

  double current(double v, double t) const override;
  double conductance(double v, double t) const override;

  double resistance() const { return ohms_; }

 private:
  SourceWave voltage_;
  double ohms_;
};

/// Section 4.2: non-linear cell model — the pre-characterized quasi-static
/// output-current surface I(Vin, Vout) driven by the cell's input waveform.
/// For a quiet (holding) victim driver pass a DC input wave; for a
/// switching aggressor pass the input transition ramp. The surface is
/// shared (characterization is a one-time task).
class NonlinearTableDriver final : public OnePortDevice {
 public:
  /// `model` must outlive the driver (held by shared_ptr to the
  /// characterized model bundle). For a *switching* driver pass the warp
  /// obtained from CellModel::warp(output_rising, input_slew, load); the
  /// input wave is then delay-shifted and slew-stretched so the quasi-
  /// static surface reproduces the cell's real transient (multi-stage
  /// cells). Omit it (nullopt) for quiet holding drivers.
  NonlinearTableDriver(std::shared_ptr<const CellModel> model, SourceWave input,
                       std::optional<CellModel::Warp> warp = std::nullopt);

  double current(double v, double t) const override;
  double conductance(double v, double t) const override;

  /// Intrinsic output capacitance to add at the driven net.
  double output_cap() const { return model_->output_cap; }

 private:
  std::shared_ptr<const CellModel> model_;
  SourceWave input_;
};

}  // namespace xtv
