#include "cells/driver_models.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace xtv {

TheveninDriver::TheveninDriver(SourceWave voltage, double ohms)
    : voltage_(std::move(voltage)), ohms_(ohms) {
  if (ohms_ <= 0.0)
    throw std::runtime_error("TheveninDriver: resistance must be positive");
}

double TheveninDriver::current(double v, double t) const {
  return (voltage_.value(t) - v) / ohms_;
}

double TheveninDriver::conductance(double /*v*/, double /*t*/) const {
  return -1.0 / ohms_;
}

namespace {

/// Warps a switching wave: t' = mid + shift + (t - mid) * stretch, where
/// `mid` is the wave's 50% crossing. Anchoring at the midpoint keeps the
/// cell's switching instant in place under large stretches (the stretch
/// expands the transition symmetrically), which is what makes the
/// calibration well-conditioned: shift is simply the table-vs-quasi-static
/// delay difference.
SourceWave warp_wave(const SourceWave& wave, double shift, double stretch) {
  const auto& pts = wave.breakpoints();
  if (pts.size() <= 1 || (shift == 0.0 && stretch == 1.0)) return wave;
  const double v_mid = 0.5 * (pts.front().second + pts.back().second);
  const bool rising = pts.back().second > pts.front().second;
  // Locate the 50% crossing on the PWL.
  double mid = pts.front().first;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double v0 = pts[i - 1].second;
    const double v1 = pts[i].second;
    const bool crossed = rising ? (v0 <= v_mid && v1 >= v_mid)
                                : (v0 >= v_mid && v1 <= v_mid);
    if (crossed && v1 != v0) {
      mid = pts[i - 1].first +
            (v_mid - v0) / (v1 - v0) * (pts[i].first - pts[i - 1].first);
      break;
    }
  }
  std::vector<std::pair<double, double>> warped;
  warped.reserve(pts.size());
  double prev_t = -1e300;
  for (const auto& [t, v] : pts) {
    double tw = mid + shift + (t - mid) * stretch;
    tw = std::max(tw, 0.0);
    if (tw <= prev_t) tw = prev_t + 1e-15;  // keep strictly increasing
    warped.emplace_back(tw, v);
    prev_t = tw;
  }
  return SourceWave::pwl(std::move(warped));
}

}  // namespace

NonlinearTableDriver::NonlinearTableDriver(std::shared_ptr<const CellModel> model,
                                           SourceWave input,
                                           std::optional<CellModel::Warp> warp)
    : model_(std::move(model)), input_(std::move(input)) {
  if (!model_) throw std::runtime_error("NonlinearTableDriver: null model");
  if (warp.has_value()) input_ = warp_wave(input_, warp->shift, warp->stretch);
}

double NonlinearTableDriver::current(double v, double t) const {
  return model_->iv_surface.lookup(input_.value(t), v);
}

double NonlinearTableDriver::conductance(double v, double t) const {
  return model_->iv_surface.d_dy(input_.value(t), v);
}

}  // namespace xtv
