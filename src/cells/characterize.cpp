#include "cells/characterize.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "spice/simulator.h"
#include "util/atomic_file.h"
#include "util/resource.h"
#include "util/status.h"

namespace xtv {

namespace {

// Builds the measurement bench: supply, tied side pins, input source node,
// output node. Returns (input node, output node) and instantiates the cell.
struct Bench {
  Circuit circuit;
  int in = 0;
  int out = 0;
};

Bench make_bench(const CellMaster& master, const Technology& tech) {
  Bench b;
  const int vdd = b.circuit.add_node("vdd");
  b.circuit.add_vsource(vdd, Circuit::ground(), SourceWave::dc(tech.vdd));
  b.in = b.circuit.add_node("in");
  b.out = b.circuit.add_node("out");

  std::map<std::string, int> pins;
  pins[master.switching_pin()] = b.in;
  pins[master.output_pin()] = b.out;
  for (const auto& pin : master.input_pins()) {
    if (pin == master.switching_pin()) continue;
    const int tied = b.circuit.add_node("tie_" + pin);
    b.circuit.add_vsource(tied, Circuit::ground(),
                          SourceWave::dc(master.tie_high(pin) ? tech.vdd : 0.0));
    pins[pin] = tied;
  }
  master.instantiate(b.circuit, pins, vdd);
  return b;
}

struct TimingPoint {
  double delay = 0.0;
  double slew = 0.0;
};

TimingPoint measure_timing(const CellMaster& master, const Technology& tech,
                           bool output_rising, double input_slew, double load,
                           double dt) {
  Bench b = make_bench(master, tech);
  const bool input_rising = master.inverting() ? !output_rising : output_rising;
  const double t0 = 0.2e-9;
  b.circuit.add_vsource(b.in, Circuit::ground(),
                        input_rising
                            ? SourceWave::ramp(0.0, tech.vdd, t0, input_slew)
                            : SourceWave::ramp(tech.vdd, 0.0, t0, input_slew));
  b.circuit.add_capacitor(b.out, Circuit::ground(), load);

  Simulator sim(b.circuit);
  TransientOptions opt;
  opt.tstop = t0 + input_slew + 6e-9;
  opt.dt = std::max(dt, opt.tstop / 4000.0);
  const TransientResult res = sim.transient(opt, {b.in, b.out});

  const auto delay = measure_delay(res.probes[0], input_rising, res.probes[1],
                                   output_rising, 0.0, tech.vdd);
  const auto slew = res.probes[1].slew_10_90(0.0, tech.vdd, output_rising);
  if (!delay || !slew)
    throw std::runtime_error("characterize: " + master.name() +
                             " did not complete its output transition");
  TimingPoint p;
  p.delay = *delay;
  p.slew = *slew;
  return p;
}

}  // namespace

CellModel characterize_cell(const CellMaster& master, const Technology& tech,
                            const CharacterizeOptions& options) {
  CellModel model;
  model.cell = master.name();
  model.input_cap = master.input_cap(master.switching_pin());
  model.output_cap = master.output_cap();

  // --- Timing tables (Section 4.1's "cell timing library"). ---
  const auto& slews = options.input_slews;
  const auto& loads = options.load_caps;
  for (bool rising : {true, false}) {
    std::vector<double> delay_z(slews.size() * loads.size());
    std::vector<double> slew_z(slews.size() * loads.size());
    for (std::size_t i = 0; i < slews.size(); ++i) {
      for (std::size_t j = 0; j < loads.size(); ++j) {
        const TimingPoint p = measure_timing(master, tech, rising, slews[i],
                                             loads[j], options.sim_dt);
        delay_z[i * loads.size() + j] = p.delay;
        slew_z[i * loads.size() + j] = p.slew;
      }
    }
    TimingTable table{Table2D(slews, loads, delay_z), Table2D(slews, loads, slew_z)};
    if (rising)
      model.rise = table;
    else
      model.fall = table;
  }

  // --- Linear drive resistance from the library data (Section 4.1):
  //     delay ~ delay0 + ln(2) * R * Cload  =>  R = ddelay/dC / ln 2,
  //     taken at the fastest input slew over the outer load pair. ---
  auto drive_r = [&](const TimingTable& t) {
    const double d_lo = t.delay.lookup(slews.front(), loads.front());
    const double d_hi = t.delay.lookup(slews.front(), loads.back());
    return (d_hi - d_lo) / (loads.back() - loads.front()) / std::log(2.0);
  };
  model.drive_resistance_rise = drive_r(model.rise);
  model.drive_resistance_fall = drive_r(model.fall);

  // --- Non-linear cell model (Section 4.2): quasi-static output current
  //     surface I(Vin, Vout), measured with a forcing source at the output.
  const int n = options.iv_grid;
  std::vector<double> vin_axis(static_cast<std::size_t>(n));
  std::vector<double> vout_axis(static_cast<std::size_t>(n));
  const double lo = -0.5;
  const double hi = tech.vdd + 0.5;
  for (int k = 0; k < n; ++k) {
    vin_axis[static_cast<std::size_t>(k)] = lo + (hi - lo) * k / (n - 1);
    vout_axis[static_cast<std::size_t>(k)] = lo + (hi - lo) * k / (n - 1);
  }
  std::vector<double> iv(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      Bench b = make_bench(master, tech);
      b.circuit.add_vsource(b.in, Circuit::ground(),
                            SourceWave::dc(vin_axis[static_cast<std::size_t>(i)]));
      // The forcing source is the last vsource added; its branch current
      // (pos -> through source -> neg) equals the current the cell injects
      // into the output node.
      b.circuit.add_vsource(b.out, Circuit::ground(),
                            SourceWave::dc(vout_axis[static_cast<std::size_t>(j)]));
      Simulator sim(b.circuit);
      const Simulator::DcResult dc = sim.dc_full();
      iv[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(j)] = dc.vsource_currents.back();
    }
  }
  model.iv_surface = Table2D(vin_axis, vout_axis, std::move(iv));

  // --- Dynamic calibration: replay the quasi-static surface as a scalar
  //     ODE and solve, at every (input slew, load) grid point, for the
  //     input warp (shift, stretch) that reconciles it with the cell's own
  //     delay/output-slew tables. Multi-stage cells get stretch >> 1;
  //     single-stage cells stay near (0, 1).
  for (bool rising : {true, false}) {
    const bool input_rising = master.inverting() ? !rising : rising;
    const TimingTable& table = rising ? model.rise : model.fall;

    std::vector<double> shift_z(slews.size() * loads.size(), 0.0);
    std::vector<double> stretch_z(slews.size() * loads.size(), 1.0);

    for (std::size_t si = 0; si < slews.size(); ++si) {
      for (std::size_t lj = 0; lj < loads.size(); ++lj) {
        const double in_slew = slews[si];
        const double cload = loads[lj] + model.output_cap;

        // Integrate C dV/dt = I(vin(t), V); returns {50% delay, 10-90 slew}.
        auto qs_response = [&](double slew_eff)
            -> std::pair<std::optional<double>, std::optional<double>> {
          const double t0 = 0.1e-9;
          const double t_end = t0 + slew_eff + 10e-9;
          const double dt = 0.5e-12;
          const double settle = rising ? 0.99 * tech.vdd : 0.01 * tech.vdd;
          double v = rising ? 0.0 : tech.vdd;
          Waveform win, wout;
          for (double t = 0.0; t <= t_end; t += dt) {
            const double frac = std::clamp((t - t0) / slew_eff, 0.0, 1.0);
            const double vin =
                input_rising ? frac * tech.vdd : (1.0 - frac) * tech.vdd;
            win.append(t, vin);
            wout.append(t, v);
            v += dt * model.iv_surface.lookup(vin, v) / cload;
            if (frac >= 1.0 && (rising ? v > settle : v < settle)) break;
          }
          return {measure_delay(win, input_rising, wout, rising, 0.0, tech.vdd),
                  wout.slew_10_90(0.0, tech.vdd, rising)};
        };

        const double target_slew = table.output_slew.lookup(in_slew, loads[lj]);
        const auto base = qs_response(in_slew);
        if (!base.first || !base.second) continue;  // leave (0, 1)

        double stretch = 1.0;
        if (*base.second < target_slew) {
          double m_lo = 1.0, m_hi = 2.0;
          while (m_hi < 64.0) {
            const auto r = qs_response(in_slew * m_hi);
            if (r.second && *r.second >= target_slew) break;
            m_hi *= 2.0;
          }
          for (int it = 0; it < 12; ++it) {
            const double mid = 0.5 * (m_lo + m_hi);
            const auto r = qs_response(in_slew * mid);
            if (r.second && *r.second < target_slew)
              m_lo = mid;
            else
              m_hi = mid;
          }
          stretch = 0.5 * (m_lo + m_hi);
        }
        // Both delays are 50%-to-50% and the runtime warp anchors the
        // stretch at the input midpoint, so the shift is simply the
        // table-vs-quasi-static delay difference.
        const auto warped = qs_response(in_slew * stretch);
        const double shift =
            warped.first
                ? table.delay.lookup(in_slew, loads[lj]) - *warped.first
                : 0.0;
        shift_z[si * loads.size() + lj] = shift;
        stretch_z[si * loads.size() + lj] = stretch;
      }
    }
    if (rising) {
      model.warp_shift_rise = Table2D(slews, loads, std::move(shift_z));
      model.warp_stretch_rise = Table2D(slews, loads, std::move(stretch_z));
    } else {
      model.warp_shift_fall = Table2D(slews, loads, std::move(shift_z));
      model.warp_stretch_fall = Table2D(slews, loads, std::move(stretch_z));
    }
  }
  return model;
}

CellModel::Warp CellModel::warp(bool output_rising, double input_slew,
                                double load) const {
  Warp w;
  const Table2D& shift = output_rising ? warp_shift_rise : warp_shift_fall;
  const Table2D& stretch = output_rising ? warp_stretch_rise : warp_stretch_fall;
  if (shift.x_size() == 0 || stretch.x_size() == 0) return w;
  w.shift = shift.lookup(input_slew, load);
  w.stretch = std::max(stretch.lookup(input_slew, load), 1.0);
  return w;
}

CharacterizedLibrary::CharacterizedLibrary(const CellLibrary& library,
                                           const CharacterizeOptions& options)
    : library_(library), options_(options) {}

namespace {

void write_table(std::ostream& out, const std::string& name, const Table2D& t) {
  out << "table " << name << ' ' << t.x_size() << ' ' << t.y_size() << '\n';
  out.precision(17);
  for (double x : t.x_axis()) out << x << ' ';
  out << '\n';
  for (double y : t.y_axis()) out << y << ' ';
  out << '\n';
  for (std::size_t i = 0; i < t.x_size(); ++i)
    for (std::size_t j = 0; j < t.y_size(); ++j) out << t.z_at(i, j) << ' ';
  out << '\n';
}

/// Line-tracking token reader for the cache format: every rejection names
/// the offending `path:line` so a corrupt cache is diagnosable instead of
/// silently feeding garbage models into the analysis.
class CacheReader {
 public:
  CacheReader(std::istream& in, std::string path)
      : in_(in), path_(std::move(path)) {}

  std::size_t line() const { return line_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw NumericalError(StatusCode::kInvalidInput,
                         "cell cache " + path_ + ":" + std::to_string(line_) +
                             ": " + what);
  }

  /// Next whitespace-separated token; fails on EOF (truncated cache).
  std::string token(const char* what) {
    std::string tok;
    for (int c = in_.get(); c != std::char_traits<char>::eof(); c = in_.get()) {
      if (std::isspace(c)) {
        if (c == '\n') ++line_;
        if (!tok.empty()) return tok;
      } else {
        tok += static_cast<char>(c);
      }
    }
    if (!tok.empty()) return tok;
    fail(std::string("truncated cache (expected ") + what + ")");
  }

  double number(const char* what) {
    const std::string tok = token(what);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size())
      fail(std::string("malformed ") + what + " '" + tok + "'");
    if (!std::isfinite(v))
      fail(std::string("non-finite ") + what + " '" + tok + "'");
    return v;
  }

  std::size_t count(const char* what) {
    const std::string tok = token(what);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || tok.empty() || tok[0] == '-')
      fail(std::string("malformed ") + what + " '" + tok + "'");
    return static_cast<std::size_t>(v);
  }

 private:
  std::istream& in_;
  std::string path_;
  std::size_t line_ = 1;
};

Table2D read_table(CacheReader& in, const std::string& expect_name) {
  const std::string tag = in.token("table tag");
  const std::string name = in.token("table name");
  if (tag != "table" || name != expect_name)
    in.fail("bad table header '" + tag + ' ' + name + "' (expected " +
            expect_name + ")");
  const std::size_t nx = in.count("table x size");
  const std::size_t ny = in.count("table y size");
  if (nx == 0 || ny == 0 || nx > 4096 || ny > 4096)
    in.fail("implausible " + expect_name + " dimensions " +
            std::to_string(nx) + "x" + std::to_string(ny));
  std::vector<double> xs(nx), ys(ny), z(nx * ny);
  for (double& v : xs) v = in.number("axis value");
  for (double& v : ys) v = in.number("axis value");
  for (double& v : z) v = in.number("table entry");
  try {
    return Table2D(std::move(xs), std::move(ys), std::move(z));
  } catch (const std::exception& e) {
    in.fail("invalid " + expect_name + " table: " + e.what());
  }
}

}  // namespace

std::size_t CharacterizedLibrary::save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Atomic tmp+rename publish (util/atomic_file.h): several processes —
  // e.g. a fleet of xtv_worker daemons sharing one cache — may save and
  // load concurrently, and a reader must never see a truncated file that
  // still claims the current magic.
  std::ostringstream out;
  out << "xtv-cellmodels-v3 " << cache_.size() << '\n';
  out.precision(17);
  for (const auto& [name, m] : cache_) {
    out << "cell " << name << '\n';
    out << m.input_cap << ' ' << m.output_cap << ' '
        << m.drive_resistance_rise << ' ' << m.drive_resistance_fall << '\n';
    write_table(out, "rise_delay", m.rise.delay);
    write_table(out, "rise_slew", m.rise.output_slew);
    write_table(out, "fall_delay", m.fall.delay);
    write_table(out, "fall_slew", m.fall.output_slew);
    write_table(out, "iv", m.iv_surface);
    write_table(out, "warp_shift_rise", m.warp_shift_rise);
    write_table(out, "warp_shift_fall", m.warp_shift_fall);
    write_table(out, "warp_stretch_rise", m.warp_stretch_rise);
    write_table(out, "warp_stretch_fall", m.warp_stretch_fall);
  }
  std::string err;
  if (!write_file_atomic(path, out.str(), &err))
    throw std::runtime_error("cell cache: " + err);
  return cache_.size();
}

std::size_t CharacterizedLibrary::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string magic;
  in >> magic;
  if (magic != "xtv-cellmodels-v3") return 0;  // stale/foreign cache: ignore

  // The file claims to be a current cache: from here on every defect —
  // truncation, a malformed or non-finite entry, a bad header — is a hard
  // typed error carrying the offending line, never a silently-ingested
  // garbage model. The staged map keeps the live cache untouched when the
  // file turns out to be corrupt mid-record.
  CacheReader reader(in, path);
  const std::size_t count = reader.count("model count");
  std::map<std::string, CellModel> staged;
  for (std::size_t k = 0; k < count; ++k) {
    const std::string tag = reader.token("cell tag");
    if (tag != "cell") reader.fail("expected cell record, got '" + tag + "'");
    CellModel m;
    m.cell = reader.token("cell name");
    m.input_cap = reader.number("input_cap");
    m.output_cap = reader.number("output_cap");
    m.drive_resistance_rise = reader.number("drive_resistance_rise");
    m.drive_resistance_fall = reader.number("drive_resistance_fall");
    m.rise.delay = read_table(reader, "rise_delay");
    m.rise.output_slew = read_table(reader, "rise_slew");
    m.fall.delay = read_table(reader, "fall_delay");
    m.fall.output_slew = read_table(reader, "fall_slew");
    m.iv_surface = read_table(reader, "iv");
    m.warp_shift_rise = read_table(reader, "warp_shift_rise");
    m.warp_shift_fall = read_table(reader, "warp_shift_fall");
    m.warp_stretch_rise = read_table(reader, "warp_stretch_rise");
    m.warp_stretch_fall = read_table(reader, "warp_stretch_fall");
    staged.insert_or_assign(m.cell, std::move(m));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, m] : staged) cache_.insert_or_assign(name, std::move(m));
  return count;
}

const CellModel& CharacterizedLibrary::model(const std::string& cell_name) {
  // Held across a cold-cache characterization on purpose: concurrent
  // workers asking for the same cell must characterize it exactly once,
  // and the chip flow pre-warms via the on-disk cache anyway.
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(cell_name);
  if (it != cache_.end()) return it->second;
  // One-time shared work must not bill (or breach) whichever victim's
  // memory budget happens to trigger it — that would make a breach depend
  // on analysis order.
  resource::ClusterScope::Exemption exempt;
  const CellMaster& master = library_.by_name(cell_name);
  auto [ins, ok] =
      cache_.emplace(cell_name, characterize_cell(master, library_.tech(), options_));
  (void)ok;
  return ins->second;
}

}  // namespace xtv
