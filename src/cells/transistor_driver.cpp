#include "cells/transistor_driver.h"

#include <cmath>

#include "spice/simulator.h"

namespace xtv {

TransistorDcDriver::TransistorDcDriver(const CellMaster& master,
                                       const Technology& tech, SourceWave input,
                                       double grid_step)
    : master_(master), tech_(tech), input_(std::move(input)), step_(grid_step) {
  if (step_ <= 0.0)
    throw std::runtime_error("TransistorDcDriver: grid step must be positive");
}

double TransistorDcDriver::grid_current(long gi, long gj) const {
  const auto key = std::make_pair(gi, gj);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  // Build the DC bench for this grid point and solve the cell netlist.
  Circuit bench;
  const int vdd = bench.add_node("vdd");
  bench.add_vsource(vdd, Circuit::ground(), SourceWave::dc(tech_.vdd));
  const int in = bench.add_node("in");
  bench.add_vsource(in, Circuit::ground(),
                    SourceWave::dc(static_cast<double>(gi) * step_));
  const int out = bench.add_node("out");
  std::map<std::string, int> pins{{master_.switching_pin(), in},
                                  {master_.output_pin(), out}};
  for (const auto& pin : master_.input_pins()) {
    if (pin == master_.switching_pin()) continue;
    const int tied = bench.add_node();
    bench.add_vsource(tied, Circuit::ground(),
                      SourceWave::dc(master_.tie_high(pin) ? tech_.vdd : 0.0));
    pins[pin] = tied;
  }
  master_.instantiate(bench, pins, vdd);
  bench.add_vsource(out, Circuit::ground(),
                    SourceWave::dc(static_cast<double>(gj) * step_));
  Simulator sim(bench);
  // The forcing source is the last one added; its branch current is the
  // current the cell injects into the output node.
  const double i = sim.dc_full().vsource_currents.back();
  cache_.emplace(key, i);
  return i;
}

double TransistorDcDriver::solve_current(double vin, double vout) const {
  // Bilinear interpolation between the four surrounding grid solves.
  const double fi = vin / step_;
  const double fj = vout / step_;
  const long i0 = static_cast<long>(std::floor(fi));
  const long j0 = static_cast<long>(std::floor(fj));
  const double ti = fi - static_cast<double>(i0);
  const double tj = fj - static_cast<double>(j0);
  const double c00 = grid_current(i0, j0);
  const double c01 = grid_current(i0, j0 + 1);
  const double c10 = grid_current(i0 + 1, j0);
  const double c11 = grid_current(i0 + 1, j0 + 1);
  return (1 - ti) * ((1 - tj) * c00 + tj * c01) +
         ti * ((1 - tj) * c10 + tj * c11);
}

double TransistorDcDriver::current(double v, double t) const {
  return solve_current(input_.value(t), v);
}

double TransistorDcDriver::conductance(double v, double t) const {
  const double vin = input_.value(t);
  // Central difference on the interpolated surface (one grid step wide —
  // consistent with the interpolation error).
  return (solve_current(vin, v + 0.5 * step_) -
          solve_current(vin, v - 0.5 * step_)) /
         step_;
}

}  // namespace xtv
