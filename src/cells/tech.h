// 0.25 µm-class technology parameters.
//
// The paper's experiments run on a TI 0.25 µm process at Vdd = 3.0 V
// (Tables 3/4 say "Vdd = 3.0"). These values are representative textbook
// numbers for that node — the methodology results (model-vs-SPICE error
// shapes, speed-ups) do not depend on matching a specific foundry deck.
#pragma once

#include "netlist/circuit.h"

namespace xtv {

struct Technology {
  double vdd = 3.0;             ///< supply (V)
  double lmin = 0.25e-6;        ///< minimum channel length (m)
  double wn_unit = 0.8e-6;      ///< X1 NMOS width (m)
  double beta_ratio = 2.0;      ///< PMOS/NMOS width ratio for equal drive

  MosModel nmos;                ///< level-1 NMOS card
  MosModel pmos;                ///< level-1 PMOS card

  /// Interconnect rules (representative 0.25 µm intermediate metal).
  double wire_r_per_m = 0.175e6;     ///< series resistance (ohm/m) at min width
  double wire_cg_per_m = 40e-12;     ///< ground (area+fringe) cap (F/m)
  double wire_cc_per_m = 80e-12;     ///< lateral coupling cap (F/m) at min spacing
  double min_spacing = 0.4e-6;       ///< minimum line spacing (m)
  double min_width = 0.4e-6;         ///< minimum line width (m)

  /// Default technology instance.
  static Technology default_250nm();
};

}  // namespace xtv
