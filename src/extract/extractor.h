// Parasitic extraction over synthetic routed geometry.
//
// Stand-in for the commercial extraction flow the paper consumed (its
// input was "parasitic data from extraction ... in RC equivalent circuit
// form, with millions of resistors and capacitors"): per-unit-length RC
// rules applied to wire routes, with distributed segmentation and lateral
// coupling caps over the overlap windows between neighboring routes. The
// output RcNetworks have exactly the structure the SyMPVL/crosstalk flow
// consumes, so every downstream code path is exercised as in the original
// methodology.
#pragma once

#include <cstddef>
#include <vector>

#include "cells/tech.h"
#include "netlist/rc_network.h"

namespace xtv {

/// One routed net, abstracted as a straight wire.
struct NetRoute {
  double length = 0.0;  ///< m
  double width = 0.0;   ///< m; 0 = technology minimum
};

/// A parallel run between two routed nets: the window where they couple.
struct CouplingRun {
  std::size_t net_a = 0;
  std::size_t net_b = 0;
  double overlap = 0.0;   ///< coupled length (m)
  double spacing = 0.0;   ///< line-to-line spacing (m); 0 = minimum
  double offset_a = 0.0;  ///< window start along net_a (m from its driver)
  double offset_b = 0.0;  ///< window start along net_b (m from its driver)
};

/// Port layout of an extracted cluster: 2 ports per net, net-major:
/// port 2*k   = net k driver end,
/// port 2*k+1 = net k far (receiver) end.
struct ClusterPorts {
  static std::size_t driver(std::size_t net) { return 2 * net; }
  static std::size_t receiver(std::size_t net) { return 2 * net + 1; }
};

class Extractor {
 public:
  /// `max_seg_len` bounds the distributed-RC section length; smaller =
  /// more accurate and more nodes.
  explicit Extractor(const Technology& tech, double max_seg_len = 25e-6);

  /// Per-unit-length series resistance at a drawn width (ohm/m).
  double r_per_m(double width = 0.0) const;
  /// Per-unit-length ground (area + fringe) capacitance (F/m).
  double cg_per_m(double width = 0.0) const;
  /// Per-unit-length lateral coupling capacitance at a spacing (F/m);
  /// scales inversely with spacing from the minimum-spacing value.
  double cc_per_m(double spacing = 0.0) const;

  /// Extracts a single net; ports: [0] driver end, [1] far end.
  RcNetwork extract_net(const NetRoute& route) const;

  /// Extracts a coupled cluster. `nets[0]` is conventionally the victim.
  /// Ports follow ClusterPorts layout. Coupling caps are distributed over
  /// the overlap windows.
  RcNetwork extract_cluster(const std::vector<NetRoute>& nets,
                            const std::vector<CouplingRun>& runs) const;

  /// The paper's Figure-1 structure: victim wire between two aggressors
  /// (A1, V, A2), all of `length`, full-length overlap at minimum spacing.
  /// Net order: 0 = victim, 1 = A1, 2 = A2.
  RcNetwork extract_parallel3(double length) const;

  /// Lumped totals for the pruning database: total cap of a route
  /// (ground + all coupling), ground-only cap, and wire resistance.
  double route_ground_cap(const NetRoute& route) const;
  double route_resistance(const NetRoute& route) const;
  /// Coupling cap of one run (applies to both nets).
  double run_coupling_cap(const CouplingRun& run) const;

  const Technology& tech() const { return tech_; }

 private:
  std::size_t segment_count(double length) const;

  Technology tech_;
  double max_seg_len_;
};

}  // namespace xtv
