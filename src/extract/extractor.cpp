#include "extract/extractor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xtv {

Extractor::Extractor(const Technology& tech, double max_seg_len)
    : tech_(tech), max_seg_len_(max_seg_len) {
  if (max_seg_len_ <= 0.0)
    throw std::runtime_error("Extractor: segment length must be positive");
}

double Extractor::r_per_m(double width) const {
  const double w = width > 0.0 ? width : tech_.min_width;
  return tech_.wire_r_per_m * tech_.min_width / w;
}

double Extractor::cg_per_m(double width) const {
  const double w = width > 0.0 ? width : tech_.min_width;
  // Area term scales with width; fringe is roughly constant. Split the
  // rule value 60/40 between area and fringe at minimum width.
  return tech_.wire_cg_per_m * (0.6 * w / tech_.min_width + 0.4);
}

double Extractor::cc_per_m(double spacing) const {
  const double s = spacing > 0.0 ? spacing : tech_.min_spacing;
  return tech_.wire_cc_per_m * tech_.min_spacing / s;
}

std::size_t Extractor::segment_count(double length) const {
  const auto n = static_cast<std::size_t>(std::ceil(length / max_seg_len_));
  return std::clamp<std::size_t>(n, 1, 64);
}

RcNetwork Extractor::extract_net(const NetRoute& route) const {
  return extract_cluster({route}, {});
}

RcNetwork Extractor::extract_cluster(const std::vector<NetRoute>& nets,
                                     const std::vector<CouplingRun>& runs) const {
  if (nets.empty()) throw std::runtime_error("extract_cluster: no nets");
  for (const auto& n : nets)
    if (n.length <= 0.0)
      throw std::runtime_error("extract_cluster: net length must be positive");

  RcNetwork out;
  // Per net: node chain positions 0..segs (node i at i * L/segs).
  std::vector<std::vector<int>> chain(nets.size());
  std::vector<double> seg_len(nets.size());

  for (std::size_t k = 0; k < nets.size(); ++k) {
    const NetRoute& route = nets[k];
    const std::size_t segs = segment_count(route.length);
    seg_len[k] = route.length / static_cast<double>(segs);
    auto& nodes = chain[k];
    nodes.reserve(segs + 1);
    for (std::size_t i = 0; i <= segs; ++i)
      nodes.push_back(out.add_node("n" + std::to_string(k) + "_" + std::to_string(i)));

    const double r_seg = r_per_m(route.width) * seg_len[k];
    const double cg_seg = cg_per_m(route.width) * seg_len[k];
    for (std::size_t i = 0; i < segs; ++i)
      out.add_resistor(nodes[i], nodes[i + 1], r_seg);
    // Ground cap lumped at nodes: half segments at the two ends.
    for (std::size_t i = 0; i <= segs; ++i) {
      const double c = cg_seg * ((i == 0 || i == segs) ? 0.5 : 1.0);
      if (c > 0.0) out.add_capacitor(nodes[i], RcNetwork::kGround, c);
    }
  }

  // Coupling runs: distribute the window's coupling cap over the victim-
  // side nodes inside the window, each tied to the nearest aligned node of
  // the other net.
  for (const auto& run : runs) {
    if (run.net_a >= nets.size() || run.net_b >= nets.size() ||
        run.net_a == run.net_b)
      throw std::runtime_error("extract_cluster: bad coupling run nets");
    if (run.overlap <= 0.0) continue;
    const double total_cc = run_coupling_cap(run);

    const auto& na = chain[run.net_a];
    const auto& nb = chain[run.net_b];
    const double la = seg_len[run.net_a];
    const double lb = seg_len[run.net_b];

    // Nodes of net_a whose position falls inside [offset_a, offset_a+overlap].
    std::vector<std::size_t> window;
    for (std::size_t i = 0; i < na.size(); ++i) {
      const double pos = la * static_cast<double>(i);
      if (pos >= run.offset_a - 0.5 * la &&
          pos <= run.offset_a + run.overlap + 0.5 * la)
        window.push_back(i);
    }
    if (window.empty()) window.push_back(std::min<std::size_t>(na.size() - 1, 0));

    const double cc_each = total_cc / static_cast<double>(window.size());
    for (std::size_t i : window) {
      const double pos_a = la * static_cast<double>(i);
      const double pos_b = run.offset_b + (pos_a - run.offset_a);
      const auto j = static_cast<std::size_t>(std::clamp<long>(
          std::lround(pos_b / lb), 0, static_cast<long>(nb.size()) - 1));
      out.add_capacitor(na[i], nb[j], cc_each, /*coupling=*/true);
    }
  }

  // Ports: driver + receiver per net, net-major (ClusterPorts layout).
  for (std::size_t k = 0; k < nets.size(); ++k) {
    out.add_port(chain[k].front());
    out.add_port(chain[k].back());
  }
  return out;
}

RcNetwork Extractor::extract_parallel3(double length) const {
  const NetRoute wire{length, 0.0};
  // Victim (0) flanked by A1 (1) and A2 (2): two full-length runs at
  // minimum spacing.
  return extract_cluster(
      {wire, wire, wire},
      {{0, 1, length, 0.0, 0.0, 0.0}, {0, 2, length, 0.0, 0.0, 0.0}});
}

double Extractor::route_ground_cap(const NetRoute& route) const {
  return cg_per_m(route.width) * route.length;
}

double Extractor::route_resistance(const NetRoute& route) const {
  return r_per_m(route.width) * route.length;
}

double Extractor::run_coupling_cap(const CouplingRun& run) const {
  return cc_per_m(run.spacing) * run.overlap;
}

}  // namespace xtv
