#include "mor/reduced_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/dense_lu.h"
#include "linalg/sym_eigen.h"
#include "util/fault_injection.h"
#include "util/fp_guard.h"
#include "util/resource.h"
#include "util/status.h"

namespace xtv {

ReducedEigenSystem diagonalize_reduced(const ReducedModel& model) {
  // Diagonalize T = Q^T D Q once; the whole transient then runs in the
  // eigenbasis.
  ReducedEigenSystem sys;
  FpKernelGuard fp("reduced_eigen");
  const SymEigen eig = sym_eigen(model.t);
  fp.check();
  sys.d = eig.eigenvalues;
  // Clamp the tiny negative round-off eigenvalues a PSD T can exhibit; a
  // genuinely indefinite T would indicate a broken reduction and is
  // rejected (it would make the integrator unstable — the passivity
  // guarantee of the paper's ref. [4] is what we rely on here).
  double scale = 0.0;
  for (double v : sys.d) scale = std::max(scale, std::fabs(v));
  if (XTV_INJECT_FAULT(FaultSite::kPassivityCheck))
    throw NumericalError(StatusCode::kNotPassive,
                         "ReducedSimulator: injected passivity fault");
  for (double& v : sys.d) {
    if (v < -1e-9 * std::max(scale, 1e-300))
      throw NumericalError(StatusCode::kNotPassive,
                           "ReducedSimulator: T is not PSD (not passive)");
    v = std::max(v, 0.0);
  }
  sys.eta = matmul(eig.q, model.rho);
  return sys;
}

ReducedSimulator::ReducedSimulator(const ReducedModel& model)
    : ReducedSimulator(diagonalize_reduced(model)) {}

ReducedSimulator::ReducedSimulator(ReducedEigenSystem system)
    : d_(std::move(system.d)), eta_(std::move(system.eta)) {}

void ReducedSimulator::set_input(std::size_t port, SourceWave current) {
  if (port >= port_count())
    throw std::runtime_error("ReducedSimulator: bad input port");
  inputs_.insert_or_assign(port, std::move(current));
}

void ReducedSimulator::set_termination(std::size_t port,
                                       std::shared_ptr<const OnePortDevice> device) {
  if (port >= port_count())
    throw std::runtime_error("ReducedSimulator: bad termination port");
  if (!device) throw std::runtime_error("ReducedSimulator: null device");
  terminations_.insert_or_assign(port, std::move(device));
}

void ReducedSimulator::clear() {
  inputs_.clear();
  terminations_.clear();
}

Vector ReducedSimulator::input_currents(double t) const {
  Vector u(port_count(), 0.0);
  for (const auto& [port, wave] : inputs_) u[port] += wave.value(t);
  return u;
}

bool ReducedSimulator::newton_solve(Vector& x, double t, double alpha,
                                    const Vector& d_beta,
                                    const ReducedSimOptions& options,
                                    std::size_t& iterations) const {
  const std::size_t q = order();
  const std::size_t p = port_count();

  // Diagonal part Dd = I + alpha * D. Scratch buffers are reused across
  // calls (workspace doctrine: every extent is fully written before use).
  Vector& dd_inv = scratch_.dd_inv;
  dd_inv.assign(q, 0.0);
  for (std::size_t i = 0; i < q; ++i) dd_inv[i] = 1.0 / (1.0 + alpha * d_[i]);

  // Nonlinear port list (fixed across iterations).
  std::vector<std::size_t>& nl_ports = scratch_.nl_ports;
  nl_ports.clear();
  nl_ports.reserve(terminations_.size());
  for (const auto& [port, dev] : terminations_) {
    (void)dev;
    nl_ports.push_back(port);
  }
  const std::size_t m = nl_ports.size();

  const Vector u = input_currents(t);

  // Checked only on the converged path: a diverging iterate may overflow
  // transiently and still be rescued by a halved step, but a "converged"
  // solution with invalid/overflow evidence in the FP flags is poison.
  FpKernelGuard fp("reduced_newton");
  for (int iter = 0; iter < options.max_newton; ++iter) {
    ++iterations;
    fp.rearm();
    // Port voltages and total currents at the trial point.
    Vector& vports = scratch_.vports;
    matvec_transposed_into(eta_, x, vports);
    Vector& itotal = scratch_.itotal;
    itotal = u;
    Vector& g = scratch_.g;
    g.assign(m, 0.0);
    for (std::size_t k = 0; k < m; ++k) {
      const auto port = nl_ports[k];
      const auto& dev = terminations_.at(port);
      itotal[port] += dev->current(vports[port], t);
      g[k] = dev->conductance(vports[port], t);
    }

    // Residual F = (I + alpha D) x + D beta - eta * itotal.
    Vector& eta_i = scratch_.eta_i;
    matvec_into(eta_, itotal, eta_i);
    Vector& r = scratch_.r;  // r = -F (the Newton RHS)
    r.assign(q, 0.0);
    for (std::size_t i = 0; i < q; ++i)
      r[i] = eta_i[i] - ((1.0 + alpha * d_[i]) * x[i] + d_beta[i]);

    // Solve (Dd - U G U^T) dx = r with U = eta columns of the nonlinear
    // ports, via the m x m Woodbury system (I_m - S G) w = U^T Dd^{-1} r,
    // S = U^T Dd^{-1} U; then dx = Dd^{-1}(r + U G w).
    Vector& dx = scratch_.dx;
    dx.assign(q, 0.0);
    if (m == 0) {
      for (std::size_t i = 0; i < q; ++i) dx[i] = dd_inv[i] * r[i];
    } else {
      DenseMatrix s(m, m);
      Vector& srhs = scratch_.srhs;
      srhs.assign(m, 0.0);
      for (std::size_t a = 0; a < m; ++a) {
        for (std::size_t i = 0; i < q; ++i)
          srhs[a] += eta_(i, nl_ports[a]) * dd_inv[i] * r[i];
        for (std::size_t b = 0; b < m; ++b) {
          double acc = 0.0;
          for (std::size_t i = 0; i < q; ++i)
            acc += eta_(i, nl_ports[a]) * dd_inv[i] * eta_(i, nl_ports[b]);
          s(a, b) = acc;
        }
      }
      DenseMatrix msys(m, m);
      for (std::size_t a = 0; a < m; ++a)
        for (std::size_t b = 0; b < m; ++b)
          msys(a, b) = (a == b ? 1.0 : 0.0) - s(a, b) * g[b];
      const Vector w = DenseLu(msys).solve(srhs);
      Vector& rgw = scratch_.rgw;
      rgw = r;
      for (std::size_t k = 0; k < m; ++k)
        for (std::size_t i = 0; i < q; ++i)
          rgw[i] += eta_(i, nl_ports[k]) * g[k] * w[k];
      for (std::size_t i = 0; i < q; ++i) dx[i] = dd_inv[i] * rgw[i];
    }

    for (std::size_t i = 0; i < q; ++i) x[i] += dx[i];

    // Converged when the port-voltage change is negligible. A NaN dv must
    // not count as converged (fabs(NaN) > tol is false), so finiteness is
    // part of the convergence predicate.
    double max_dv = 0.0;
    bool finite = true;
    Vector& dv = scratch_.dv;
    matvec_transposed_into(eta_, dx, dv);
    for (std::size_t pp = 0; pp < p; ++pp) {
      finite = finite && std::isfinite(dv[pp]);
      max_dv = std::max(max_dv, std::fabs(dv[pp]));
    }
    if (finite && max_dv < options.v_abstol) {
      fp.check();
      return true;
    }
  }
  return false;
}

Vector ReducedSimulator::dc_port_voltages() {
  const std::size_t q = order();
  Vector x(q, 0.0);
  Vector zero(q, 0.0);
  ReducedSimOptions opts;
  opts.max_newton = 200;
  std::size_t iters = 0;
  if (!newton_solve(x, 0.0, 0.0, zero, opts, iters))
    throw NumericalError(StatusCode::kNewtonDivergence,
                         "ReducedSimulator: DC fixed point failed");
  return matvec_transposed(eta_, x);
}

ReducedSimResult ReducedSimulator::run(const ReducedSimOptions& options) {
  if (options.tstop <= 0.0)
    throw std::runtime_error("ReducedSimulator: tstop must be positive");
  if (XTV_INJECT_FAULT(FaultSite::kReducedNewton))
    throw NumericalError(StatusCode::kNewtonDivergence,
                         "ReducedSimulator: injected Newton divergence");
  poll_cancel(options.cancel, "ReducedSimulator");
  const double dt = options.dt > 0.0 ? options.dt : options.tstop / 2000.0;
  const std::size_t q = order();
  const std::size_t p = port_count();

  // Charge the expected waveform storage (2 doubles per sample per port)
  // up front, so an over-budget transient fails before the time loop runs
  // rather than after minutes of stepping.
  resource::ScopedCharge wave_bytes;
  wave_bytes.add((static_cast<std::size_t>(options.tstop / dt) + 2) * p * 2 *
                 sizeof(double));

  // DC start.
  Vector x(q, 0.0);
  {
    Vector zero(q, 0.0);
    ReducedSimOptions dc_opts = options;
    dc_opts.max_newton = 200;
    std::size_t iters = 0;
    if (!newton_solve(x, 0.0, 0.0, zero, dc_opts, iters))
      throw NumericalError(StatusCode::kNewtonDivergence,
                           "ReducedSimulator: DC fixed point failed");
  }
  Vector xdot(q, 0.0);  // steady state

  ReducedSimResult result;
  result.port_voltages.resize(p);
  const std::size_t expected_samples =
      static_cast<std::size_t>(options.tstop / dt) + 2;
  for (auto& wave : result.port_voltages) wave.reserve(expected_samples);
  auto record = [&](double t) {
    Vector& v = scratch_.rec;
    matvec_transposed_into(eta_, x, v);
    for (std::size_t pp = 0; pp < p; ++pp) result.port_voltages[pp].append(t, v[pp]);
  };
  record(0.0);

  double t = 0.0;
  Vector d_beta(q);
  Vector x_acc_prev(q, 0.0);  // previous accepted state (LTE proxy)
  double h_prev = 0.0;
  bool have_prev = false;
  while (t < options.tstop - 1e-18) {
    double h = std::min(dt, options.tstop - t);
    int halvings = 0;
    for (;;) {
      poll_cancel(options.cancel, "ReducedSimulator");
      const double a = (options.trapezoidal ? 2.0 : 1.0) / h;
      // beta_k: BE: -x_{k-1}/h; TRAP: -(2/h) x_{k-1} - xdot_{k-1}.
      for (std::size_t i = 0; i < q; ++i) {
        const double beta =
            options.trapezoidal ? (-a * x[i] - xdot[i]) : (-a * x[i]);
        d_beta[i] = d_[i] * beta;
      }
      Vector trial = x;
      std::size_t iters = 0;
      const bool ok = newton_solve(trial, t + h, a, d_beta, options, iters);
      result.newton_iterations += iters;

      // Step-size rejection on local-truncation blowup: second-difference
      // proxy on the port voltages, scaled for the uneven step pair.
      if (ok && options.lte_vtol > 0.0 && have_prev &&
          halvings < options.max_step_halvings) {
        const double r = h / h_prev;
        double lte = 0.0;
        Vector& vt = scratch_.lte_vt;
        Vector& vc = scratch_.lte_vc;
        Vector& vp = scratch_.lte_vp;
        matvec_transposed_into(eta_, trial, vt);
        matvec_transposed_into(eta_, x, vc);
        matvec_transposed_into(eta_, x_acc_prev, vp);
        for (std::size_t pp = 0; pp < p; ++pp)
          lte = std::max(lte,
                         std::fabs(vt[pp] - vc[pp] - r * (vc[pp] - vp[pp])));
        if (lte > options.lte_vtol) {
          ++halvings;
          ++result.step_rejections;
          h *= 0.5;
          continue;
        }
      }

      if (ok) {
        if (options.trapezoidal) {
          for (std::size_t i = 0; i < q; ++i)
            xdot[i] = a * (trial[i] - x[i]) - xdot[i];
        }
        x_acc_prev = x;
        h_prev = h;
        have_prev = true;
        x = trial;
        t += h;
        ++result.steps;
        record(t);
        break;
      }
      // Newton divergence: retry the same point with a halved step before
      // reporting the failure as a typed, recoverable condition.
      if (++halvings > options.max_step_halvings)
        throw NumericalError(StatusCode::kNewtonDivergence,
                             "ReducedSimulator: Newton failed at t=" +
                                 std::to_string(t));
      ++result.step_rejections;
      h *= 0.5;
    }
  }
  return result;
}

}  // namespace xtv
