#include "mor/sympvl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.h"
#include "linalg/dense_lu.h"
#include "linalg/sym_eigen.h"
#include "util/fault_injection.h"
#include "util/fp_guard.h"
#include "util/resource.h"
#include "util/status.h"

namespace xtv {

DenseMatrix ReducedModel::transfer(double s) const {
  const std::size_t q = order();
  // m = I + s T.
  DenseMatrix m(q, q);
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < q; ++j) m(i, j) = (i == j ? 1.0 : 0.0) + s * t(i, j);
  DenseLu lu(m);
  return matmul_at_b(rho, lu.solve(rho));
}

DenseMatrix ReducedModel::moment(unsigned k) const {
  DenseMatrix acc = rho;  // T^k rho accumulated column-wise
  for (unsigned i = 0; i < k; ++i) acc = matmul(t, acc);
  return matmul_at_b(rho, acc);
}

double ReducedModel::min_t_eigenvalue() const {
  if (t.rows() == 0) return 0.0;
  return sym_eigen(t).eigenvalues.front();
}

bool ReducedModel::is_passive(double tol) const {
  return min_t_eigenvalue() >= -tol;
}

namespace {

// Orthogonalizes `v` against the columns of `basis[0..count)` with two
// passes of modified Gram-Schmidt; returns the residual norm.
double orthogonalize(Vector& v, const std::vector<Vector>& basis) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& u : basis) {
      const double proj = dot(u, v);
      axpy(-proj, u, v);
    }
  }
  return norm2(v);
}

}  // namespace

ReducedModel sympvl_reduce(const DenseMatrix& g, const DenseMatrix& c,
                           const DenseMatrix& b, const SympvlOptions& options) {
  if (g.rows() != g.cols() || c.rows() != c.cols() || g.rows() != c.rows() ||
      b.rows() != g.rows())
    throw std::runtime_error("sympvl_reduce: inconsistent matrix shapes");
  const std::size_t n = g.rows();
  const std::size_t p = b.cols();
  if (p == 0) throw std::runtime_error("sympvl_reduce: no ports");
  if (XTV_INJECT_FAULT(FaultSite::kLanczosSweep))
    throw NumericalError(StatusCode::kLanczosBreakdown,
                         "sympvl_reduce: injected Krylov sweep fault");

  const std::size_t q_max =
      options.max_order > 0 ? std::min(options.max_order, n)
                            : std::min(4 * p, n);

  // Step 1: G = F^T F;  L = F^{-T} B. (Cholesky carries its own FP guard;
  // ours starts after it so neither clears the other's evidence.)
  Cholesky chol(g);
  FpKernelGuard fp("sympvl_reduce");
  const DenseMatrix l = chol.solve_ft(b);

  // Krylov storage charged against the cluster's memory budget: each
  // accepted basis vector later needs a matching A*v image in the
  // projection step, hence 2 n-vectors per accepted direction. The full
  // q_max reservation is charged up front (and shrunk to the accepted
  // basis after the sweep), so an over-budget reduction fails before any
  // Krylov work happens and incremental growth can never inflate the
  // accounted peak beyond the reservation.
  resource::ScopedCharge krylov_bytes;
  krylov_bytes.add(2 * n * q_max * sizeof(double));

  // A v = F^{-T} C F^{-1} v, applied without forming A.
  auto apply_a = [&](const Vector& v) {
    return chol.solve_ft(matvec(c, chol.solve_f(v)));
  };

  // Reference scale for deflation decisions.
  double l_scale = 0.0;
  for (std::size_t j = 0; j < p; ++j) l_scale = std::max(l_scale, norm2(l.column(j)));
  if (l_scale <= 0.0)
    throw NumericalError(StatusCode::kLanczosBreakdown,
                         "sympvl_reduce: zero input block (no port coupling)");
  const double defl = options.deflation_tol * l_scale;

  // Block Krylov sweep with full reorthogonalization + deflation. The
  // basis is reserved to its ceiling so push_back never reallocates, and
  // blocks are tracked as indices into it instead of copies.
  std::vector<Vector> basis;  // orthonormal columns of V
  basis.reserve(q_max);
  std::vector<std::size_t> last_block;  // most recent accepted block
  last_block.reserve(p);
  // Seed block: columns of L.
  for (std::size_t j = 0; j < p && basis.size() < q_max; ++j) {
    poll_cancel(options.cancel, "sympvl_reduce/seed");
    Vector v = l.column(j);
    const double r = orthogonalize(v, basis);
    if (r <= defl) continue;  // deflated: linearly dependent input column
    scale(v, 1.0 / r);
    basis.push_back(std::move(v));
    last_block.push_back(basis.size() - 1);
  }

  std::vector<std::size_t> next_block;
  next_block.reserve(p);
  while (basis.size() < q_max && !last_block.empty()) {
    next_block.clear();
    for (const std::size_t ui : last_block) {
      if (basis.size() >= q_max) break;
      poll_cancel(options.cancel, "sympvl_reduce/sweep");
      Vector v = apply_a(basis[ui]);
      const double pre = norm2(v);
      const double r = orthogonalize(v, basis);
      // Deflate when the new direction is negligible relative to what A
      // produced (local scale), or absolutely tiny.
      if (r <= options.deflation_tol * std::max(pre, 1e-300)) continue;
      scale(v, 1.0 / r);
      basis.push_back(std::move(v));
      next_block.push_back(basis.size() - 1);
    }
    std::swap(last_block, next_block);
  }

  const std::size_t q = basis.size();
  if (q == 0)
    throw NumericalError(StatusCode::kLanczosBreakdown,
                         "sympvl_reduce: empty Krylov basis");
  // Deflation accepted q <= q_max directions; return the unused part of
  // the reservation (the recorded peak keeps the honest high-water mark).
  krylov_bytes.shrink(2 * n * (q_max - q) * sizeof(double));

  // Project: T = V^T A V (then symmetrize), rho = V^T L.
  ReducedModel model;
  model.t = DenseMatrix(q, q);
  std::vector<Vector> av(q);
  for (std::size_t j = 0; j < q; ++j) av[j] = apply_a(basis[j]);
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < q; ++j) model.t(i, j) = dot(basis[i], av[j]);
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = i + 1; j < q; ++j) {
      const double s = 0.5 * (model.t(i, j) + model.t(j, i));
      model.t(i, j) = s;
      model.t(j, i) = s;
    }

  model.rho = DenseMatrix(q, p);
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < p; ++j) model.rho(i, j) = dot(basis[i], l.column(j));
  fp.check();
  return model;
}

ReducedModel sympvl_reduce(const RcNetwork& network, bool couple,
                           const SympvlOptions& options) {
  return sympvl_reduce(network.g_matrix(), network.c_matrix(couple),
                       network.b_matrix(), options);
}

DenseMatrix exact_moment(const DenseMatrix& g, const DenseMatrix& c,
                         const DenseMatrix& b, unsigned k) {
  DenseLu lu(g);
  DenseMatrix acc = lu.solve(b);  // G^{-1} B
  for (unsigned i = 0; i < k; ++i) acc = lu.solve(matmul(c, acc));
  return matmul_at_b(b, acc);
}

}  // namespace xtv
