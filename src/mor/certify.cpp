#include "mor/certify.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/shifted_solver.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace xtv {

namespace {

/// Fallback sample band when the caller provides none: post-pruning
/// clusters have time constants from tens of ps to a few ns, so shifts
/// spanning 1e8..1e12 (1/s) bracket the dynamics the transient resolves.
constexpr double kDefaultSMin = 1e8;
constexpr double kDefaultSMax = 1e12;

bool all_finite(const DenseMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j))) return false;
  return true;
}

}  // namespace

Certificate certify_reduced_model(const SparseMatrix& g, const SparseMatrix& c,
                                  const DenseMatrix& b, const ReducedModel& model,
                                  const CertifyOptions& options) {
  Certificate cert;
  cert.order_used = model.order();

  double s_lo = options.s_min > 0.0 ? options.s_min : kDefaultSMin;
  double s_hi = options.s_max > s_lo ? options.s_max
                                     : std::max(kDefaultSMax, 10.0 * s_lo);
  const std::size_t k = std::max<std::size_t>(options.num_freqs, 1);
  cert.freqs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double f = k > 1 ? static_cast<double>(i) / static_cast<double>(k - 1)
                           : 0.5;
    cert.freqs.push_back(s_lo * std::pow(s_hi / s_lo, f));
  }

  // Passivity/stability on the reduced pair: the symmetrized T must be PSD
  // (provable in exact arithmetic, re-checked numerically here because a
  // deflation-starved sweep can lose it to round-off). sym_eigen may throw
  // its typed kNoConvergence on a pathological T — that too is "this model
  // cannot be certified", not a run-stopper.
  try {
    if (XTV_INJECT_FAULT(FaultSite::kCertifyProbe))
      throw NumericalError(StatusCode::kCertificationFailed,
                           "certify_reduced_model: injected probe fault");
    cert.passivity_ok = model.min_t_eigenvalue() >= -options.passivity_tol;

    ShiftedSparseSolver exact(g, c);
    for (const double s : cert.freqs) {
      poll_cancel(options.cancel, "certify_reduced_model");
      const DenseMatrix h_exact = exact.transfer(s, b);
      const DenseMatrix h_reduced = model.transfer(s);
      if (!all_finite(h_reduced)) {
        // Bounded-port-response check: a pole on the probed axis means the
        // reduced model is unusable regardless of its eigenvalues.
        cert.passivity_ok = false;
        cert.max_rel_err = std::numeric_limits<double>::infinity();
        return cert;
      }
      const double scale = std::max(h_exact.frobenius_norm(), 1e-300);
      DenseMatrix diff(h_exact.rows(), h_exact.cols());
      for (std::size_t i = 0; i < diff.rows(); ++i)
        for (std::size_t j = 0; j < diff.cols(); ++j)
          diff(i, j) = h_exact(i, j) - h_reduced(i, j);
      cert.max_rel_err =
          std::max(cert.max_rel_err, diff.frobenius_norm() / scale);
    }
  } catch (const NumericalError& e) {
    if (e.code() == StatusCode::kDeadlineExceeded) throw;
    cert.probe_error = e.what();
    cert.passivity_ok = false;
    cert.max_rel_err = std::numeric_limits<double>::infinity();
  } catch (const std::exception& e) {
    cert.probe_error = e.what();
    cert.passivity_ok = false;
    cert.max_rel_err = std::numeric_limits<double>::infinity();
  }
  return cert;
}

Certificate certify_reduced_model(const RcNetwork& network,
                                  const ReducedModel& model, bool couple,
                                  const CertifyOptions& options) {
  return certify_reduced_model(network.g_sparse(), network.c_sparse(couple),
                               network.b_matrix(), model, options);
}

}  // namespace xtv
