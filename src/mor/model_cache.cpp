#include "mor/model_cache.h"

#include <algorithm>
#include <cstring>

namespace xtv {

namespace {

// Two independent FNV-1a style streams over the same byte sequence. The
// primary stream is canonical 64-bit FNV-1a (matching the journal's
// options hash); the secondary swaps in a different odd multiplier and
// seed so the pair behaves like a 128-bit digest for collision purposes.
struct FingerprintHasher {
  std::uint64_t lo = 1469598103934665603ull;         // FNV offset basis
  std::uint64_t hi = 0x9e3779b97f4a7c15ull;          // golden-ratio seed

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      lo = (lo ^ p[i]) * 1099511628211ull;           // FNV prime
      hi = (hi ^ p[i]) * 0xff51afd7ed558ccdull;      // odd mix multiplier
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    // Hash the exact bit pattern: the cache contract is bit-identity, so
    // the key must distinguish values that differ in any bit (and +0/-0,
    // which behave identically under the kernels, still key separately —
    // a false negative, never a false positive).
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void matrix(const DenseMatrix& m) {
    u64(m.rows());
    u64(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
      bytes(m.row(r), m.cols() * sizeof(double));
  }
};

std::size_t matrix_bytes(const DenseMatrix& m) {
  return m.rows() * m.cols() * sizeof(double);
}

}  // namespace

ClusterFingerprint cluster_fingerprint(const DenseMatrix& g,
                                       const DenseMatrix& c,
                                       const DenseMatrix& b,
                                       const SympvlOptions& mor, bool certify,
                                       double cert_rel_tol,
                                       std::size_t cert_freqs, double s_min,
                                       double s_max) {
  FingerprintHasher h;
  h.matrix(g);
  h.matrix(c);
  h.matrix(b);
  h.u64(mor.max_order);
  h.f64(mor.deflation_tol);
  h.u64(certify ? 1 : 0);
  if (certify) {
    h.f64(cert_rel_tol);
    h.u64(cert_freqs);
    h.f64(s_min);
    h.f64(s_max);
  }
  return ClusterFingerprint{h.hi, h.lo};
}

void CachedReducedModel::account() {
  bytes = sizeof(CachedReducedModel) + matrix_bytes(model.t) +
          matrix_bytes(model.rho) + matrix_bytes(eigen.eta) +
          eigen.d.size() * sizeof(double) +
          certificate.freqs.size() * sizeof(double) +
          certificate.probe_error.size();
}

ModelCache::ModelCache(std::size_t max_bytes, std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
  shard_budget_ = max_bytes == 0 ? 0 : std::max<std::size_t>(1, max_bytes / shard_count);
}

std::shared_ptr<const CachedReducedModel> ModelCache::lookup(
    const ClusterFingerprint& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->payload;
}

void ModelCache::insert(const ClusterFingerprint& key,
                        std::shared_ptr<const CachedReducedModel> payload) {
  if (!payload) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.find(key) != shard.index.end()) return;  // first wins
  shard.lru.push_front(Entry{key, std::move(payload)});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += shard.lru.front().payload->bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  // LRU eviction against the shard budget; the newest entry always stays
  // (an oversized payload occupies the shard alone rather than thrashing).
  while (shard_budget_ > 0 && shard.bytes > shard_budget_ &&
         shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.payload->bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ModelCache::Stats ModelCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.entries += shard->lru.size();
    s.bytes += shard->bytes;
  }
  return s;
}

}  // namespace xtv
