#include "mor/model_cache.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace xtv {

namespace {

// Two independent FNV-1a style streams over the same byte sequence. The
// primary stream is canonical 64-bit FNV-1a (matching the journal's
// options hash); the secondary swaps in a different odd multiplier and
// seed so the pair behaves like a 128-bit digest for collision purposes.
struct FingerprintHasher {
  std::uint64_t lo = 1469598103934665603ull;         // FNV offset basis
  std::uint64_t hi = 0x9e3779b97f4a7c15ull;          // golden-ratio seed

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      lo = (lo ^ p[i]) * 1099511628211ull;           // FNV prime
      hi = (hi ^ p[i]) * 0xff51afd7ed558ccdull;      // odd mix multiplier
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    // Hash the exact bit pattern: the cache contract is bit-identity, so
    // the key must distinguish values that differ in any bit (and +0/-0,
    // which behave identically under the kernels, still key separately —
    // a false negative, never a false positive).
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// Quantized hash: values within a relative `tol` of each other usually
  /// land in the same (mantissa bucket, exponent) pair. "Usually" because
  /// bucket and binade boundaries split near-equal values — a false
  /// negative, which canonical mode tolerates by design.
  void qf64(double v, double tol) {
    if (tol <= 0.0 || v == 0.0 || !std::isfinite(v)) {
      f64(v);
      return;
    }
    int exp = 0;
    const double m = std::frexp(v, &exp);  // |m| in [0.5, 1)
    u64(static_cast<std::uint64_t>(std::llround(m / tol)));
    u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(exp)));
  }
  void matrix(const DenseMatrix& m) {
    u64(m.rows());
    u64(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
      bytes(m.row(r), m.cols() * sizeof(double));
  }
  void options(const SympvlOptions& mor, bool certify, double cert_rel_tol,
               std::size_t cert_freqs, double s_min, double s_max) {
    u64(mor.max_order);
    f64(mor.deflation_tol);
    u64(certify ? 1 : 0);
    if (certify) {
      f64(cert_rel_tol);
      u64(cert_freqs);
      f64(s_min);
      f64(s_max);
    }
  }
};

std::size_t matrix_bytes(const DenseMatrix& m) {
  return m.rows() * m.cols() * sizeof(double);
}

}  // namespace

ClusterFingerprint cluster_fingerprint(const DenseMatrix& g,
                                       const DenseMatrix& c,
                                       const DenseMatrix& b,
                                       const SympvlOptions& mor, bool certify,
                                       double cert_rel_tol,
                                       std::size_t cert_freqs, double s_min,
                                       double s_max) {
  FingerprintHasher h;
  h.matrix(g);
  h.matrix(c);
  h.matrix(b);
  h.options(mor, certify, cert_rel_tol, cert_freqs, s_min, s_max);
  return ClusterFingerprint{h.hi, h.lo};
}

CanonicalKey canonical_cluster_fingerprint(
    const DenseMatrix& g, const DenseMatrix& c, const DenseMatrix& b,
    const std::vector<std::size_t>& net_node_begin, double tol,
    const SympvlOptions& mor, bool certify, double cert_rel_tol,
    std::size_t cert_freqs, double s_min, double s_max) {
  const std::size_t n = g.rows();
  const std::size_t nets =
      net_node_begin.empty() ? 0 : net_node_begin.size() - 1;
  assert(nets > 0 && net_node_begin.front() == 0 &&
         net_node_begin.back() == n && b.cols() == 2 * nets);

  // Sort signature per aggressor: everything about the aggressor that
  // does not depend on how the *other* aggressors are ordered — block
  // size, intra-block G/C entries, coupling to the (fixed) victim block,
  // and its own B columns — all quantized. Aggressor-aggressor couplings
  // are excluded here (they would be circular) but fully covered by the
  // permuted whole-pencil hash below.
  CanonicalKey out;
  const std::size_t agg_count = nets > 0 ? nets - 1 : 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sig(agg_count);
  const std::size_t v_begin = net_node_begin.empty() ? 0 : net_node_begin[0];
  const std::size_t v_end = nets > 0 ? net_node_begin[1] : 0;
  for (std::size_t a = 0; a < agg_count; ++a) {
    const std::size_t k = a + 1;  // cluster net index
    const std::size_t begin = net_node_begin[k];
    const std::size_t end = net_node_begin[k + 1];
    FingerprintHasher h;
    h.u64(end - begin);
    for (std::size_t i = begin; i < end; ++i)
      for (std::size_t j = begin; j < end; ++j) {
        h.qf64(g(i, j), tol);
        h.qf64(c(i, j), tol);
      }
    for (std::size_t i = begin; i < end; ++i)
      for (std::size_t j = v_begin; j < v_end; ++j) {
        h.qf64(g(i, j), tol);
        h.qf64(c(i, j), tol);
      }
    for (std::size_t i = begin; i < end; ++i) {
      h.qf64(b(i, 2 * k), tol);
      h.qf64(b(i, 2 * k + 1), tol);
    }
    sig[a] = {h.hi, h.lo};
  }
  out.agg_order.resize(agg_count);
  for (std::size_t a = 0; a < agg_count; ++a) out.agg_order[a] = a + 1;
  std::stable_sort(out.agg_order.begin(), out.agg_order.end(),
                   [&sig](std::size_t ka, std::size_t kb) {
                     return sig[ka - 1] < sig[kb - 1];
                   });

  // Canonical node/port order: victim block first (original order), then
  // aggressor blocks in signature order; hash the whole pencil — every
  // cross coupling included — through that permutation, quantized.
  std::vector<std::size_t> node_perm;
  node_perm.reserve(n);
  std::vector<std::size_t> port_perm;
  port_perm.reserve(2 * nets);
  for (std::size_t i = v_begin; i < v_end; ++i) node_perm.push_back(i);
  port_perm.push_back(0);
  port_perm.push_back(1);
  for (std::size_t k : out.agg_order) {
    for (std::size_t i = net_node_begin[k]; i < net_node_begin[k + 1]; ++i)
      node_perm.push_back(i);
    port_perm.push_back(2 * k);
    port_perm.push_back(2 * k + 1);
  }

  FingerprintHasher h;
  h.f64(tol);
  h.u64(nets);
  h.u64(v_end - v_begin);
  for (std::size_t k : out.agg_order)
    h.u64(net_node_begin[k + 1] - net_node_begin[k]);
  h.u64(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c2 = 0; c2 < n; ++c2) {
      h.qf64(g(node_perm[r], node_perm[c2]), tol);
      h.qf64(c(node_perm[r], node_perm[c2]), tol);
    }
  h.u64(b.cols());
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c2 = 0; c2 < port_perm.size(); ++c2)
      h.qf64(b(node_perm[r], port_perm[c2]), tol);
  h.options(mor, certify, cert_rel_tol, cert_freqs, s_min, s_max);
  out.key = ClusterFingerprint{h.hi, h.lo};
  return out;
}

void CachedReducedModel::account() {
  bytes = sizeof(CachedReducedModel) + matrix_bytes(model.t) +
          matrix_bytes(model.rho) + matrix_bytes(eigen.eta) +
          eigen.d.size() * sizeof(double) +
          certificate.freqs.size() * sizeof(double) +
          certificate.probe_error.size();
}

std::shared_ptr<CachedReducedModel> permute_payload_ports(
    const CachedReducedModel& payload,
    const std::vector<std::size_t>& port_from) {
  auto out = std::make_shared<CachedReducedModel>();
  out->model.t = payload.model.t;
  out->eigen.d = payload.eigen.d;
  const DenseMatrix& rho = payload.model.rho;
  assert(port_from.size() == rho.cols());
  DenseMatrix new_rho(rho.rows(), rho.cols());
  for (std::size_t r = 0; r < rho.rows(); ++r)
    for (std::size_t j = 0; j < rho.cols(); ++j)
      new_rho(r, j) = rho(r, port_from[j]);
  out->model.rho = std::move(new_rho);
  const DenseMatrix& eta = payload.eigen.eta;
  DenseMatrix new_eta(eta.rows(), eta.cols());
  for (std::size_t r = 0; r < eta.rows(); ++r)
    for (std::size_t j = 0; j < eta.cols(); ++j)
      new_eta(r, j) = eta(r, port_from[j]);
  out->eigen.eta = std::move(new_eta);
  out->have_certificate = false;
  out->certified = false;
  out->account();
  return out;
}

ModelCache::ModelCache(std::size_t max_bytes, std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
  shard_budget_ = max_bytes == 0 ? 0 : std::max<std::size_t>(1, max_bytes / shard_count);
  canonical_budget_ = max_bytes;
}

std::shared_ptr<const CachedReducedModel> ModelCache::lookup(
    const ClusterFingerprint& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->payload;
}

void ModelCache::insert(const ClusterFingerprint& key,
                        std::shared_ptr<const CachedReducedModel> payload) {
  if (!payload) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.find(key) != shard.index.end()) return;  // first wins
  shard.lru.push_front(Entry{key, std::move(payload)});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += shard.lru.front().payload->bytes;
  ++shard.insertions;
  // LRU eviction against the shard budget; the newest entry always stays
  // (an oversized payload occupies the shard alone rather than thrashing).
  while (shard_budget_ > 0 && shard.bytes > shard_budget_ &&
         shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.payload->bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::optional<ModelCache::CanonicalHit> ModelCache::canonical_lookup(
    const ClusterFingerprint& key) {
  std::lock_guard<std::mutex> lock(canonical_mutex_);
  auto it = canonical_index_.find(key);
  if (it == canonical_index_.end()) return std::nullopt;
  canonical_lru_.splice(canonical_lru_.begin(), canonical_lru_, it->second);
  return CanonicalHit{it->second->payload, it->second->agg_order};
}

void ModelCache::canonical_insert(
    const ClusterFingerprint& key, std::vector<std::size_t> agg_order,
    std::shared_ptr<const CachedReducedModel> payload) {
  if (!payload) return;
  std::lock_guard<std::mutex> lock(canonical_mutex_);
  if (canonical_index_.find(key) != canonical_index_.end()) return;
  canonical_lru_.push_front(
      CanonicalEntry{key, std::move(agg_order), std::move(payload)});
  canonical_index_.emplace(key, canonical_lru_.begin());
  canonical_bytes_ += canonical_lru_.front().payload->bytes;
  while (canonical_budget_ > 0 && canonical_bytes_ > canonical_budget_ &&
         canonical_lru_.size() > 1) {
    const CanonicalEntry& victim = canonical_lru_.back();
    canonical_bytes_ -= victim.payload->bytes;
    canonical_index_.erase(victim.key);
    canonical_lru_.pop_back();
  }
}

void ModelCache::count_canonical_hit() {
  std::lock_guard<std::mutex> lock(canonical_mutex_);
  ++canonical_hits_;
}

void ModelCache::count_canonical_cert_reject() {
  std::lock_guard<std::mutex> lock(canonical_mutex_);
  ++canonical_cert_rejects_;
}

ModelCache::Stats ModelCache::stats() const {
  // Consistent snapshot: acquire every shard lock (fixed index order, so
  // concurrent stats() calls cannot deadlock each other) plus the
  // canonical-index lock before reading any counter. A concurrent lookup
  // either fully precedes the snapshot or fully follows it — hits +
  // misses always equals the lookups observed, and byte/entry totals
  // always match the counters.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  std::lock_guard<std::mutex> canonical_lock(canonical_mutex_);
  Stats s;
  for (const auto& shard : shards_) {
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.insertions += shard->insertions;
    s.evictions += shard->evictions;
    s.entries += shard->lru.size();
    s.bytes += shard->bytes;
  }
  s.canonical_hits = canonical_hits_;
  s.canonical_cert_rejects = canonical_cert_rejects_;
  s.canonical_entries = canonical_lru_.size();
  return s;
}

}  // namespace xtv
