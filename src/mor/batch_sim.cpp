#include "mor/batch_sim.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "linalg/dense_matrix.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/fp_guard.h"
#include "util/resource.h"
#include "util/status.h"

namespace xtv {

namespace {

// In-place partial-pivot LU mirroring DenseLu (linalg/dense_lu.cpp)
// element for element — same pivot selection (strict >), same pivot_tol,
// same update order, same fault-injection poll and error strings — so a
// batched Woodbury solve is bit-identical to the scalar path's
// DenseLu(msys).solve(srhs) without the per-iteration matrix copy.
void lu_factor_inplace(double* lu, std::size_t n,
                       std::vector<std::size_t>& perm) {
  if (XTV_INJECT_FAULT(FaultSite::kDenseLuFactor))
    throw NumericalError(StatusCode::kSingularMatrix,
                         "DenseLu: injected factorization fault");
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::fabs(lu[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu[i * n + k]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best <= 1e-300)
      throw NumericalError(StatusCode::kSingularMatrix,
                           "DenseLu: matrix is singular");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu[k * n + c], lu[piv * n + c]);
      std::swap(perm[k], perm[piv]);
    }
    const double pivot = lu[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu[i * n + k] / pivot;
      lu[i * n + k] = m;
      if (m == 0.0) continue;
      const double* urow = lu + k * n;
      double* irow = lu + i * n;
      for (std::size_t c = k + 1; c < n; ++c) irow[c] -= m * urow[c];
    }
  }
}

void lu_solve_inplace(const double* lu, const std::size_t* perm,
                      std::size_t n, const Vector& b, Vector& x) {
  x.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm[i]];
    const double* row = lu + i * n;
    for (std::size_t j = 0; j < i; ++j) s -= row[j] * x[j];
    x[i] = s;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    const double* row = lu + ii * n;
    for (std::size_t j = ii + 1; j < n; ++j) s -= row[j] * x[j];
    x[ii] = s / row[ii];
  }
}

/// One lane's flattened system plus the integration state that the scalar
/// run() keeps in locals. LaneState lives in a deque (ScopedCharge is
/// not movable).
struct LaneState {
  // Flattened configuration: the simulator's maps walked once, into
  // arrays the inner loops index directly.
  std::size_t q = 0, p = 0, m = 0;
  const Vector* d = nullptr;
  const DenseMatrix* eta = nullptr;
  std::vector<std::pair<std::size_t, const SourceWave*>> inputs;
  std::vector<std::size_t> nl_ports;
  std::vector<const OnePortDevice*> nl_devs;
  double dt = 0.0;

  /// eta's nonlinear-port columns packed q x m row-major: the Woodbury
  /// loops read U contiguously instead of striding eta by p. Pure copies,
  /// so every accumulation sees the same values in the same order.
  Vector u_cols;
  /// Per-alpha system pieces. Dd^{-1} = (I + alpha D)^{-1} and
  /// S = U^T Dd^{-1} U depend only on alpha and the lane's fixed (d, eta,
  /// ports) — not on the Newton iterate — so they are recomputed only when
  /// alpha changes (a step halving, or the DC solve's alpha = 0). The
  /// uniform-h step sequence reuses them across every step and iteration.
  /// Recomputation is the scalar expression in the scalar loop order, so a
  /// cached S is bit-identical to the per-iteration rebuild.
  Vector dd_inv, s_alpha;
  double alpha_cached = std::numeric_limits<double>::quiet_NaN();

  // Integration state (the scalar run()'s loop variables).
  Vector x, xdot, x_acc_prev, d_beta, trial;
  double t = 0.0, h = 0.0, h_prev = 0.0;
  int halvings = 0;
  bool have_prev = false;
  /// True while a time point is being retried at halved steps; false
  /// between accepted points (the scalar outer/inner loop boundary).
  bool step_open = false;

  ReducedSimResult result;
  /// Charged against the lane's scope exactly as the scalar run() does;
  /// released at lane completion or failure (the scalar function-exit /
  /// unwind points).
  std::optional<resource::ScopedCharge> wave_bytes;

  bool active = false;
};

class Engine {
 public:
  explicit Engine(const std::vector<BatchLane>& lanes) : lanes_(lanes) {}

  std::vector<BatchLaneResult> run() {
    results_.resize(lanes_.size());
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      states_.emplace_back();
      lane_init(i);
    }
    // Lockstep rounds: one uninterrupted step attempt per active lane per
    // round, so every per-lane guard (FP flags, victim binding, scope
    // activation) opens and closes without another lane in between.
    for (;;) {
      bool any = false;
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (!states_[i].active) continue;
        any = true;
        lane_attempt(i);
      }
      if (!any) break;
    }
    return std::move(results_);
  }

 private:
  void lane_init(std::size_t idx) {
    LaneState& st = states_[idx];
    const BatchLane& lane = lanes_[idx];
    FaultInjector::ScopedVictim victim(lane.victim_net);
    resource::ClusterScope::Activation act(lane.scope);
    try {
      if (!lane.sim) throw std::runtime_error("run_batch: null simulator");
      if (XTV_INJECT_FAULT(FaultSite::kBatchLane)) {
        // Poisoned lane: run it on the untouched scalar engine instead.
        // The configured simulator was never mutated, so this is exactly
        // the scalar path for this victim.
        results_[idx].fell_back_scalar = true;
        results_[idx].result = lane.sim->run(lane.options);
        return;
      }
      const ReducedSimOptions& options = lane.options;
      // From here on: the scalar run() preamble, same order.
      if (options.tstop <= 0.0)
        throw std::runtime_error("ReducedSimulator: tstop must be positive");
      if (XTV_INJECT_FAULT(FaultSite::kReducedNewton))
        throw NumericalError(StatusCode::kNewtonDivergence,
                             "ReducedSimulator: injected Newton divergence");
      poll_cancel(options.cancel, "ReducedSimulator");
      st.dt = options.dt > 0.0 ? options.dt : options.tstop / 2000.0;

      st.q = lane.sim->order();
      st.p = lane.sim->port_count();
      st.d = &lane.sim->eigenvalues();
      st.eta = &lane.sim->port_modes();
      st.inputs.clear();
      st.inputs.reserve(lane.sim->inputs().size());
      for (const auto& [port, wave] : lane.sim->inputs())
        st.inputs.emplace_back(port, &wave);
      st.nl_ports.clear();
      st.nl_devs.clear();
      for (const auto& [port, dev] : lane.sim->terminations()) {
        st.nl_ports.push_back(port);
        st.nl_devs.push_back(dev.get());
      }
      st.m = st.nl_ports.size();
      st.u_cols.assign(st.q * st.m, 0.0);
      for (std::size_t i = 0; i < st.q; ++i)
        for (std::size_t k = 0; k < st.m; ++k)
          st.u_cols[i * st.m + k] = (*st.eta)(i, st.nl_ports[k]);

      st.wave_bytes.emplace();
      st.wave_bytes->add(
          (static_cast<std::size_t>(options.tstop / st.dt) + 2) * st.p * 2 *
          sizeof(double));

      // DC start (scalar: dc_opts = options with max_newton = 200).
      st.x.assign(st.q, 0.0);
      st.d_beta.assign(st.q, 0.0);
      {
        std::size_t iters = 0;
        if (!lane_newton(st, st.x, 0.0, 0.0, st.d_beta, 200,
                         options.v_abstol, iters))
          throw NumericalError(StatusCode::kNewtonDivergence,
                               "ReducedSimulator: DC fixed point failed");
      }
      st.xdot.assign(st.q, 0.0);

      st.result.port_voltages.resize(st.p);
      const std::size_t expected_samples =
          static_cast<std::size_t>(options.tstop / st.dt) + 2;
      for (auto& wave : st.result.port_voltages)
        wave.reserve(expected_samples);
      record(st, 0.0);

      st.t = 0.0;
      st.x_acc_prev.assign(st.q, 0.0);
      st.h_prev = 0.0;
      st.have_prev = false;
      st.step_open = false;
      st.active = true;
    } catch (...) {
      st.wave_bytes.reset();
      results_[idx].error = std::current_exception();
      st.active = false;
    }
  }

  /// One iteration of the scalar run()'s time loop: open a step if none
  /// is being retried, attempt it, accept/halve/fail exactly as the
  /// scalar inner loop does.
  void lane_attempt(std::size_t idx) {
    LaneState& st = states_[idx];
    const BatchLane& lane = lanes_[idx];
    const ReducedSimOptions& options = lane.options;
    FaultInjector::ScopedVictim victim(lane.victim_net);
    resource::ClusterScope::Activation act(lane.scope);
    try {
      if (!st.step_open) {
        // The scalar while-condition, rechecked between accepted points.
        if (!(st.t < options.tstop - 1e-18)) {
          complete(idx);
          return;
        }
        st.h = std::min(st.dt, options.tstop - st.t);
        st.halvings = 0;
        st.step_open = true;
      }
      poll_cancel(options.cancel, "ReducedSimulator");
      const double a = (options.trapezoidal ? 2.0 : 1.0) / st.h;
      const Vector& d = *st.d;
      for (std::size_t i = 0; i < st.q; ++i) {
        const double beta = options.trapezoidal
                                ? (-a * st.x[i] - st.xdot[i])
                                : (-a * st.x[i]);
        st.d_beta[i] = d[i] * beta;
      }
      st.trial = st.x;
      std::size_t iters = 0;
      const bool ok = lane_newton(st, st.trial, st.t + st.h, a, st.d_beta,
                                  options.max_newton, options.v_abstol, iters);
      st.result.newton_iterations += iters;

      if (ok && options.lte_vtol > 0.0 && st.have_prev &&
          st.halvings < options.max_step_halvings) {
        const double r = st.h / st.h_prev;
        double lte = 0.0;
        matvec_transposed_into(*st.eta, st.trial, lte_vt_);
        matvec_transposed_into(*st.eta, st.x, lte_vc_);
        matvec_transposed_into(*st.eta, st.x_acc_prev, lte_vp_);
        for (std::size_t pp = 0; pp < st.p; ++pp)
          lte = std::max(lte, std::fabs(lte_vt_[pp] - lte_vc_[pp] -
                                        r * (lte_vc_[pp] - lte_vp_[pp])));
        if (lte > options.lte_vtol) {
          ++st.halvings;
          ++st.result.step_rejections;
          st.h *= 0.5;
          return;
        }
      }

      if (ok) {
        if (options.trapezoidal) {
          for (std::size_t i = 0; i < st.q; ++i)
            st.xdot[i] = a * (st.trial[i] - st.x[i]) - st.xdot[i];
        }
        st.x_acc_prev = st.x;
        st.h_prev = st.h;
        st.have_prev = true;
        st.x = st.trial;
        st.t += st.h;
        ++st.result.steps;
        record(st, st.t);
        st.step_open = false;
        return;
      }
      if (++st.halvings > options.max_step_halvings)
        throw NumericalError(StatusCode::kNewtonDivergence,
                             "ReducedSimulator: Newton failed at t=" +
                                 std::to_string(st.t));
      ++st.result.step_rejections;
      st.h *= 0.5;
    } catch (...) {
      st.wave_bytes.reset();
      results_[idx].error = std::current_exception();
      st.active = false;
    }
  }

  /// ReducedSimulator::newton_solve, operation for operation, on engine
  /// scratch. Every extent is assign()ed before use, so sharing buffers
  /// across lanes cannot change any value.
  bool lane_newton(LaneState& st, Vector& x, double t, double alpha,
                   const Vector& d_beta, int max_newton, double v_abstol,
                   std::size_t& iterations) {
    const std::size_t q = st.q;
    const std::size_t p = st.p;
    const std::size_t m = st.m;
    const Vector& d = *st.d;
    const DenseMatrix& eta = *st.eta;

    // Refresh the per-alpha pieces only when alpha actually changed (the
    // != compares false against the NaN sentinel, forcing the first
    // build). On the uniform-h fast path this runs once per transient.
    if (!(alpha == st.alpha_cached)) {
      st.dd_inv.assign(q, 0.0);
      for (std::size_t i = 0; i < q; ++i)
        st.dd_inv[i] = 1.0 / (1.0 + alpha * d[i]);
      st.s_alpha.assign(m * m, 0.0);
      for (std::size_t a2 = 0; a2 < m; ++a2) {
        for (std::size_t b = 0; b < m; ++b) {
          double acc = 0.0;
          for (std::size_t i = 0; i < q; ++i)
            acc += st.u_cols[i * m + a2] * st.dd_inv[i] * st.u_cols[i * m + b];
          st.s_alpha[a2 * m + b] = acc;
        }
      }
      st.alpha_cached = alpha;
    }
    const Vector& dd_inv = st.dd_inv;

    u_.assign(p, 0.0);
    for (const auto& [port, wave] : st.inputs) u_[port] += wave->value(t);

    FpKernelGuard fp("reduced_newton");
    for (int iter = 0; iter < max_newton; ++iter) {
      ++iterations;
      fp.rearm();
      matvec_transposed_into(eta, x, vports_);
      itotal_ = u_;
      g_.assign(m, 0.0);
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t port = st.nl_ports[k];
        const OnePortDevice* dev = st.nl_devs[k];
        itotal_[port] += dev->current(vports_[port], t);
        g_[k] = dev->conductance(vports_[port], t);
      }

      matvec_into(eta, itotal_, eta_i_);
      r_.assign(q, 0.0);
      for (std::size_t i = 0; i < q; ++i)
        r_[i] = eta_i_[i] - ((1.0 + alpha * d[i]) * x[i] + d_beta[i]);

      dx_.assign(q, 0.0);
      if (m == 0) {
        for (std::size_t i = 0; i < q; ++i) dx_[i] = dd_inv[i] * r_[i];
      } else {
        // The scalar path charges three m x m DenseMatrix allocations per
        // iteration here (S, Msys, and DenseLu's copy). Replicate the
        // charges — without the allocations — so a marginal memory budget
        // breaches at the same program point with the same message. S
        // itself comes from the per-alpha cache above.
        const std::size_t mat_bytes = m * m * sizeof(double);
        resource::MemCharge charge_s(mat_bytes);
        srhs_.assign(m, 0.0);
        for (std::size_t a2 = 0; a2 < m; ++a2)
          for (std::size_t i = 0; i < q; ++i)
            srhs_[a2] += st.u_cols[i * m + a2] * dd_inv[i] * r_[i];
        resource::MemCharge charge_msys(mat_bytes);
        msys_.assign(m * m, 0.0);
        for (std::size_t a2 = 0; a2 < m; ++a2)
          for (std::size_t b = 0; b < m; ++b)
            msys_[a2 * m + b] =
                (a2 == b ? 1.0 : 0.0) - st.s_alpha[a2 * m + b] * g_[b];
        resource::MemCharge charge_lu(mat_bytes);
        lu_factor_inplace(msys_.data(), m, perm_);
        lu_solve_inplace(msys_.data(), perm_.data(), m, srhs_, w_);
        rgw_ = r_;
        for (std::size_t k = 0; k < m; ++k)
          for (std::size_t i = 0; i < q; ++i)
            rgw_[i] += st.u_cols[i * m + k] * g_[k] * w_[k];
        for (std::size_t i = 0; i < q; ++i) dx_[i] = dd_inv[i] * rgw_[i];
      }

      for (std::size_t i = 0; i < q; ++i) x[i] += dx_[i];

      double max_dv = 0.0;
      bool finite = true;
      matvec_transposed_into(eta, dx_, dv_);
      for (std::size_t pp = 0; pp < p; ++pp) {
        finite = finite && std::isfinite(dv_[pp]);
        max_dv = std::max(max_dv, std::fabs(dv_[pp]));
      }
      if (finite && max_dv < v_abstol) {
        fp.check();
        return true;
      }
    }
    return false;
  }

  void record(LaneState& st, double t) {
    matvec_transposed_into(*st.eta, st.x, rec_);
    for (std::size_t pp = 0; pp < st.p; ++pp)
      st.result.port_voltages[pp].append(t, rec_[pp]);
  }

  void complete(std::size_t idx) {
    LaneState& st = states_[idx];
    st.wave_bytes.reset();
    results_[idx].result = std::move(st.result);
    st.active = false;
  }

  const std::vector<BatchLane>& lanes_;
  std::deque<LaneState> states_;
  std::vector<BatchLaneResult> results_;

  // Engine scratch shared across lanes (each lane's step attempt fully
  // rewrites every extent it reads).
  Vector u_, vports_, itotal_, g_, eta_i_, r_, dx_, srhs_, rgw_, dv_;
  Vector rec_, lte_vt_, lte_vc_, lte_vp_;
  Vector msys_, w_;
  std::vector<std::size_t> perm_;
};

}  // namespace

std::vector<BatchLaneResult> run_batch(const std::vector<BatchLane>& lanes) {
  if (lanes.empty()) return {};
  return Engine(lanes).run();
}

}  // namespace xtv
