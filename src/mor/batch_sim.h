// Lockstep batch integration of reduced models (the SimulateReduced stage
// of several victims at once).
//
// The scalar ReducedSimulator (mor/reduced_sim.h) integrates one reduced
// system at a time; across a chip-scale run the SimulateReduced stage
// dominates wall-clock on cache-miss-heavy workloads, and most of its cost
// hides in per-call overhead: map walks to rebuild the nonlinear port
// list, a fresh Vector allocation for the input currents and the Newton
// trial every step attempt, and three charged DenseMatrix allocations per
// Newton iteration for the m x m Woodbury solve. BatchSimulator runs many
// victims' transients through one structure-of-arrays engine: each lane's
// configuration (input waves, nonlinear terminations) is flattened into
// sorted arrays once, every scratch extent is a reused engine buffer, and
// the Woodbury LU is factored in place — so the arithmetic per lane is
// *identical* to the scalar path, operation for operation, while the
// bookkeeping overhead is paid once per batch instead of once per step.
//
// Lockstep granularity is one step *attempt* per lane per round: a lane
// runs poll_cancel + Newton solve + accept-or-halve uninterrupted (its
// FpKernelGuard never brackets another lane's arithmetic), then yields.
// Per lane, the engine reproduces the scalar run() contract exactly:
//
//  - the same fault-injection polls in the same order, under the lane's
//    own FaultInjector::ScopedVictim binding;
//  - the same resource charges against the lane's own ClusterScope
//    (re-attached via ClusterScope::Activation for every lane section);
//  - the same cancellation polls against the lane's own CancelToken;
//  - the same exceptions with the same messages, captured per lane as an
//    exception_ptr so one diverging lane never disturbs its neighbors.
//
// The kBatchLane fault site poisons a lane before any batch arithmetic
// runs: the engine then falls back to the untouched scalar
// ReducedSimulator::run for that lane (fell_back_scalar), which is also
// the recovery path the pipeline uses — batching is an optimization, the
// scalar engine remains the semantic ground truth.
#pragma once

#include <cstdint>
#include <exception>
#include <vector>

#include "mor/reduced_sim.h"

namespace xtv {

namespace resource {
class ClusterScope;
}

/// One victim's reduced transient queued for lockstep integration. The
/// simulator must stay configured (inputs/terminations) and alive for the
/// duration of the batch run; the engine reads its system through the
/// const accessors and never mutates it except on the scalar-fallback
/// path, which calls run() exactly as the pipeline's scalar stage would.
struct BatchLane {
  ReducedSimulator* sim = nullptr;
  ReducedSimOptions options;
  /// Victim net id bound (FaultInjector::ScopedVictim) around every lane
  /// section, so injection decisions match a scalar run of this victim.
  std::uint64_t victim_net = 0;
  /// Accounting scope re-attached (ClusterScope::Activation) around every
  /// lane section; null = charges are unaccounted, as when no scope is
  /// active on the scalar path.
  resource::ClusterScope* scope = nullptr;
};

/// Per-lane outcome: exactly one of {result valid, error set}. A lane
/// that failed carries the same exception object the scalar path would
/// have thrown (deadline, Newton divergence, FP trap, resource breach...)
/// for the pipeline to rethrow into its normal retry ladder.
struct BatchLaneResult {
  ReducedSimResult result;
  std::exception_ptr error;
  /// True when the kBatchLane fault site fired for this lane and the
  /// result (or error) comes from the scalar ReducedSimulator::run
  /// fallback instead of the batch kernels.
  bool fell_back_scalar = false;
};

/// Runs every lane to completion (or failure) in lockstep rounds.
/// Results are positionally aligned with `lanes`.
std::vector<BatchLaneResult> run_batch(const std::vector<BatchLane>& lanes);

}  // namespace xtv
